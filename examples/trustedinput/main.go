// Trusted-input example (§6 "PAL Interrupt Handling"): the paper's
// motivating case for PAL interrupts is "future systems where a PAL
// requires human input from the keyboard" — a trusted path for secrets
// like PINs. This example builds a PIN-pad PAL: it registers one interrupt
// handler per key vector, enables interrupts, and accumulates keystrokes
// delivered as interrupts while it is parked. When enough digits arrive it
// compares the entry against a PIN sealed to its own identity and exposes
// only the accept/reject verdict.
//
// The OS schedules the PAL (and could withhold keystrokes — DoS is out of
// scope, §3.2) but never sees the PIN: the comparison state lives in the
// PAL's protected pages.
package main

import (
	"fmt"
	"log"
	"time"

	"minimaltcb/internal/core"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/platform"
)

// pinLength is how many key presses form an entry. Keys are interrupt
// vectors 0–7, so PINs are octal digits.
const pinLength = 4

// pinPadPAL: input = [bloblen:2][sealed PIN blob]. The PAL unseals the
// reference PIN, registers handlers for vectors 0..7, enables interrupts,
// and spins until `count` reaches pinLength; each handler stores its digit.
// Then it compares entry to the reference and outputs 1 (accept) or 0.
const pinPadPAL = `
	ldi	r0, inbuf
	ldi	r1, 1024
	svc	7
	ldi	r1, inbuf	; parse [bloblen:2][blob]
	loadb	r2, [r1]
	loadb	r3, [r1+1]
	ldi	r4, 8
	shl	r3, r4
	or	r2, r3
	ldi	r0, inbuf
	addi	r0, 2
	mov	r1, r2
	ldi	r2, pin
	svc	4		; unseal the reference PIN
	ldi	r3, 0
	cmp	r1, r3
	jnz	fail

	; register handlers key0..key7 for vectors 0..7
	ldi	r0, 0
	ldi	r1, key0
	svc	9
	ldi	r0, 1
	ldi	r1, key1
	svc	9
	ldi	r0, 2
	ldi	r1, key2
	svc	9
	ldi	r0, 3
	ldi	r1, key3
	svc	9
	ldi	r0, 4
	ldi	r1, key4
	svc	9
	ldi	r0, 5
	ldi	r1, key5
	svc	9
	ldi	r0, 6
	ldi	r1, key6
	svc	9
	ldi	r0, 7
	ldi	r1, key7
	svc	9
	ldi	r0, 1
	svc	10		; enable interrupts: the trusted path is open

wait:	ldi	r1, count	; park until 4 digits arrived
	load	r2, [r1]
	ldi	r3, 4
	cmp	r2, r3
	jnz	wait

	ldi	r0, 0
	svc	10		; close the trusted path before comparing
	ldi	r1, 0		; i
	ldi	r5, 1		; verdict, assume accept
cmploop:
	ldi	r2, entry
	add	r2, r1
	loadb	r3, [r2]
	ldi	r2, pin
	add	r2, r1
	loadb	r4, [r2]
	cmp	r3, r4
	jz	cmpnext
	ldi	r5, 0
cmpnext:
	addi	r1, 1
	ldi	r2, 4
	cmp	r1, r2
	jnz	cmploop
	; wipe entry and pin before output
	ldi	r1, pin
	ldi	r2, 0
	store	r2, [r1]
	ldi	r1, entry
	store	r2, [r1]
	ldi	r0, verdict
	storeb	r5, [r0]
	ldi	r1, 1
	svc	6
	ldi	r0, 0
	svc	0
fail:
	ldi	r0, 1
	svc	0

; each key handler appends its digit to entry[count++] and returns.
key0:	push	r1
	ldi	r1, 0
	jmp	record
key1:	push	r1
	ldi	r1, 1
	jmp	record
key2:	push	r1
	ldi	r1, 2
	jmp	record
key3:	push	r1
	ldi	r1, 3
	jmp	record
key4:	push	r1
	ldi	r1, 4
	jmp	record
key5:	push	r1
	ldi	r1, 5
	jmp	record
key6:	push	r1
	ldi	r1, 6
	jmp	record
key7:	push	r1
	ldi	r1, 7
	jmp	record
record:
	push	r2
	push	r3
	ldi	r2, count
	load	r3, [r2]
	ldi	r2, entry
	add	r2, r3
	storeb	r1, [r2]
	addi	r3, 1
	ldi	r2, count
	store	r3, [r2]
	pop	r3
	pop	r2
	pop	r1
	ret

count:	.word 0
entry:	.word 0
pin:	.space 16
verdict: .byte 0
	.align 4
inbuf:	.space 1024
stack:	.space 128
`

// enterPIN drives one PIN entry: launch the PAL, deliver the keystrokes as
// interrupts between scheduling slices, and collect the verdict.
func enterPIN(sys *core.System, p *core.PAL, blob []byte, keys []int) (bool, error) {
	mg := sys.SKSM
	secb, err := mg.NewSECB(p.Image, 0, 0)
	if err != nil {
		return false, err
	}
	input := make([]byte, 2+len(blob))
	input[0] = byte(len(blob))
	input[1] = byte(len(blob) >> 8)
	copy(input[2:], blob)
	secb.Input = input

	core1 := sys.Machine.CPUs[1]
	if err := mg.SLAUNCH(core1, secb); err != nil {
		return false, err
	}
	// Run in slices; between slices the "keyboard" raises interrupts.
	delivered := 0
	for i := 0; i < 10000; i++ {
		reason, err := core1.Run(20 * time.Microsecond)
		if err != nil {
			return false, fmt.Errorf("PAL fault: %w", err)
		}
		if reason == cpu.StopHalt {
			if err := mg.SFREE(core1, secb); err != nil {
				return false, err
			}
			if err := sys.Machine.TPM().FreeSePCR(secb.SePCRHandle); err != nil {
				return false, err
			}
			if err := mg.Release(secb); err != nil {
				return false, err
			}
			if len(secb.Output) != 1 {
				return false, fmt.Errorf("verdict output %x", secb.Output)
			}
			return secb.Output[0] == 1, nil
		}
		if delivered < len(keys) {
			if err := core1.DeliverInterrupt(keys[delivered]); err == nil {
				delivered++
			}
			// Masked delivery (before svc 10) is simply retried.
		}
	}
	return false, fmt.Errorf("PIN entry did not complete")
}

func main() {
	sys, err := core.NewSystem(platform.Recommended(platform.HPdc5750(), 2))
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("pin-pad", pinPadPAL)
	if err != nil {
		log.Fatal(err)
	}

	// Enroll: seal the reference PIN 3-1-4-1 to the PAL's identity. (Use
	// the same identity-priming trick as the other examples: seal under
	// a launched instance of the pad via its sePCR.)
	secb, err := sys.SKSM.NewSECB(p.Image, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SKSM.SLAUNCH(sys.Machine.CPUs[1], secb); err != nil {
		log.Fatal(err)
	}
	pin := []byte{3, 1, 4, 1}
	blob, err := sys.Machine.TPM().SealSePCR(secb.SePCRHandle, 1, pin)
	if err != nil {
		log.Fatal(err)
	}
	// Tear the enrollment instance down: with no input it exits(1) at
	// its unseal check; suspend-and-kill covers the spin case too.
	if reason, _ := sys.Machine.CPUs[1].Run(50 * time.Microsecond); reason == cpu.StopHalt {
		if err := sys.SKSM.SFREE(sys.Machine.CPUs[1], secb); err != nil {
			log.Fatal(err)
		}
		if err := sys.Machine.TPM().FreeSePCR(secb.SePCRHandle); err != nil {
			log.Fatal(err)
		}
	} else {
		_ = sys.SKSM.Suspend(sys.Machine.CPUs[1], secb)
		_ = sys.SKSM.SKILL(secb)
	}
	if err := sys.SKSM.Release(secb); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PIN sealed to the pad's identity (%d-byte blob)\n", len(blob))

	ok, err := enterPIN(sys, p, blob, []int{3, 1, 4, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entry 3-1-4-1 via interrupts: accept=%v\n", ok)
	if !ok {
		log.Fatal("correct PIN rejected")
	}

	ok, err = enterPIN(sys, p, blob, []int{2, 7, 2, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entry 2-7-2-7 via interrupts: accept=%v\n", ok)
	if ok {
		log.Fatal("wrong PIN accepted")
	}
	fmt.Println("the OS saw keystroke *timing* only; PIN and comparison stayed in the PAL")
}
