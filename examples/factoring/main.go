// Distributed factoring example (§4.1): a long-running computation — trial
// division of a semiprime — performs a bounded chunk of work per execution
// and carries its intermediate state across executions.
//
// On today's hardware each chunk is a full SEA session: SKINIT, TPM Unseal
// of the previous state, compute, TPM Seal of the new state. On the
// recommended hardware the same job is one SECB that yields between
// chunks: state stays in its secluded pages and the context switch costs a
// world switch. The example runs both and prints the gap — §5.7 measured
// on a real workload.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
)

const (
	factorP = 4999
	factorQ = 5003
	// N is the semiprime to factor.
	N = factorP * factorQ
	// chunk is how many candidates one execution tries before yielding.
	chunk = 500
)

// legacySource is the seal-state-per-session variant. Input: empty for the
// first session, else [bloblen:2][blob]. Output: [1][factor:4] when found,
// else [0][bloblen:2][blob'].
func legacySource() string {
	return fmt.Sprintf(`
	ldi	r0, inbuf
	ldi	r1, 2048
	svc	7		; r0 = input length
	ldi	r2, 0
	cmp	r0, r2
	jz	fresh
	ldi	r1, inbuf	; parse [bloblen:2][blob]
	loadb	r2, [r1]
	loadb	r3, [r1+1]
	ldi	r4, 8
	shl	r3, r4
	or	r2, r3
	ldi	r0, inbuf
	addi	r0, 2
	mov	r1, r2
	ldi	r2, state
	svc	4		; unseal previous candidate
	ldi	r3, 0
	cmp	r1, r3
	jnz	fail
	ldi	r1, state
	load	r5, [r1]
	jmp	havecand
fresh:
	ldi	r5, 3
havecand:
	ldi	r4, %d		; N low
	lui	r4, %d		; N high
	ldi	r3, %d		; chunk budget
loop:
	mov	r0, r4
	remu	r0, r5
	ldi	r2, 0
	cmp	r0, r2
	jz	found
	addi	r5, 2
	addi	r3, -1
	ldi	r2, 0
	cmp	r3, r2
	jnz	loop
	; chunk exhausted: seal the candidate and emit a continuation blob
	ldi	r1, state
	store	r5, [r1]
	ldi	r0, state
	ldi	r1, 4
	ldi	r2, blob
	svc	3		; r0 = blob length
	ldi	r1, outhdr
	ldi	r2, 0
	storeb	r2, [r1]	; found = 0
	storeb	r0, [r1+1]
	mov	r2, r0
	ldi	r3, 8
	shr	r2, r3
	storeb	r2, [r1+2]
	push	r0
	ldi	r0, outhdr
	ldi	r1, 3
	svc	6
	pop	r1
	ldi	r0, blob
	svc	6
	ldi	r0, 0
	svc	0
found:
	ldi	r1, outhdr
	ldi	r2, 1
	storeb	r2, [r1]
	ldi	r2, result
	store	r5, [r2]
	ldi	r0, outhdr
	ldi	r1, 1
	svc	6
	ldi	r0, result
	ldi	r1, 4
	svc	6
	ldi	r0, 0
	svc	0
fail:
	ldi	r0, 1
	svc	0
state:	.word 0
result:	.word 0
outhdr:	.space 3
	.align 4
inbuf:	.space 2048
blob:	.space 1024
stack:	.space 96
`, N&0xffff, N>>16, chunk)
}

// recommendedSource is the same computation as one resumable PAL: SYIELD
// between chunks, no sealing.
func recommendedSource() string {
	return fmt.Sprintf(`
	ldi	r5, 3
	ldi	r4, %d		; N low
	lui	r4, %d		; N high
outer:
	ldi	r3, %d		; chunk budget
loop:
	mov	r0, r4
	remu	r0, r5
	ldi	r2, 0
	cmp	r0, r2
	jz	found
	addi	r5, 2
	addi	r3, -1
	ldi	r2, 0
	cmp	r3, r2
	jnz	loop
	svc	1		; yield: hardware context switch, state stays put
	jmp	outer
found:
	ldi	r2, result
	store	r5, [r2]
	ldi	r0, result
	ldi	r1, 4
	svc	6
	ldi	r0, 0
	svc	0
result:	.word 0
stack:	.space 64
`, N&0xffff, N>>16, chunk)
}

func main() {
	fmt.Printf("factoring N = %d (= %d × %d), %d candidates per chunk\n\n",
		N, factorP, factorQ, chunk)

	// --- Today's hardware: one SEA session per chunk. ---
	sys, err := core.NewSystem(platform.HPdc5750())
	if err != nil {
		log.Fatal(err)
	}
	legacy, err := core.CompilePAL("factoring-legacy", legacySource())
	if err != nil {
		log.Fatal(err)
	}
	// sea.Chain drives the session-per-chunk continuation: each session's
	// output is either [1][factor:4] (done) or [0][bloblen:2][blob]
	// (continue with the sealed state).
	var factor uint32
	chain, err := sys.SEA.Chain(legacy.Image, nil,
		func(_ int, output []byte) ([]byte, bool, error) {
			if output[0] == 1 {
				factor = binary.LittleEndian.Uint32(output[1:5])
				return nil, true, nil
			}
			blobLen := binary.LittleEndian.Uint16(output[1:3])
			return output[1 : 3+blobLen], false, nil
		}, 100)
	if err != nil {
		log.Fatal(err)
	}
	sessions, legacyTotal := chain.Sessions, chain.Total
	if factor != factorP && factor != factorQ {
		log.Fatalf("wrong factor %d", factor)
	}
	fmt.Printf("[SEA]     factor %d found in %d sessions, %v of platform-wide stall\n",
		factor, sessions, legacyTotal)

	// --- Recommended hardware: one SECB, yields between chunks. ---
	rsys, err := core.NewSystem(platform.Recommended(platform.HPdc5750(), 2))
	if err != nil {
		log.Fatal(err)
	}
	rec, err := core.CompilePAL("factoring-rec", recommendedSource())
	if err != nil {
		log.Fatal(err)
	}
	res, err := rsys.RunRecommended(rec, nil, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	rfactor := binary.LittleEndian.Uint32(res.Output[:4])
	if rfactor != factor {
		log.Fatalf("recommended hardware found %d, legacy found %d", rfactor, factor)
	}
	fmt.Printf("[SLAUNCH] factor %d found in %d slices (%d resumes), %v on one core\n",
		rfactor, res.Slices, res.Resumes, res.Total)
	fmt.Printf("\nspeedup: %.0fx — the seal/unseal context switch is the whole story\n",
		float64(legacyTotal)/float64(res.Total))
}
