// Rootkit detector example (§4.1): a PAL checksums the (simulated) kernel
// text it is handed and extends its verdict into the dynamic PCR, so an
// external verifier learns — from the quote alone — that the genuine
// detector ran AND what it concluded. A compromised OS can refuse to run
// the detector, but it cannot forge a "clean" verdict.
package main

import (
	"fmt"
	"log"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// kernelTextSize is the size of the simulated kernel text section.
const kernelTextSize = 8192

// fnv1a mirrors the PAL's checksum so the golden value can be baked into
// the detector at build time.
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, v := range b {
		h ^= uint32(v)
		h *= 16777619
	}
	return h
}

// detectorSource builds the PAL with the golden checksum embedded: the
// expected hash is part of the measured image, so an attacker cannot swap
// in a different baseline without changing the PAL's attested identity.
func detectorSource(golden uint32) string {
	return fmt.Sprintf(`
	ldi	r0, inbuf
	ldi	r1, %d
	svc	7		; read kernel text; r0 = length
	mov	r4, r0
	ldi	r5, 0x9dc5	; FNV-1a basis
	lui	r5, 0x811c
	ldi	r0, inbuf
hash:	ldi	r2, 0
	cmp	r4, r2
	jz	done
	loadb	r2, [r0]
	xor	r5, r2
	ldi	r2, 0x0193
	lui	r2, 0x0100
	mul	r5, r2
	addi	r0, 1
	addi	r4, -1
	jmp	hash
done:
	ldi	r3, %d		; golden checksum (low)
	lui	r3, %d		; golden checksum (high)
	ldi	r1, verdict
	cmp	r5, r3
	jz	clean
	ldi	r2, 1		; 1 = INFECTED
	storeb	r2, [r1]
	jmp	report
clean:
	ldi	r2, 0		; 0 = clean
	storeb	r2, [r1]
report:
	ldi	r0, verdict	; extend the verdict into PCR 17: it becomes
	ldi	r1, 1		; part of the attestation, unforgeable by the OS
	svc	2
	ldi	r0, verdict
	ldi	r1, 1
	svc	6		; also output it for the local caller
	ldi	r0, 0
	svc	0
verdict: .byte 0
	.align 4
inbuf:	.space %d
stack:	.space 64
`, kernelTextSize, golden&0xffff, golden>>16, kernelTextSize)
}

// check runs the detector over kernelText and verifies the attested
// verdict end to end. It returns the verdict byte.
func check(sys *core.System, det *core.PAL, kernelText []byte, nonce []byte) (byte, error) {
	res, err := sys.RunLegacy(det, kernelText)
	if err != nil {
		return 0, err
	}
	if len(res.Output) != 1 {
		return 0, fmt.Errorf("detector output %x", res.Output)
	}
	verdict := res.Output[0]

	// External verification: quote PCR 17 and replay the claimed log.
	q, _, err := sys.SEA.Quote(nonce)
	if err != nil {
		return 0, err
	}
	logEntries := attest.Log{
		{PCR: 17, Description: det.Name, Measurement: det.Measurement()},
		{PCR: 17, Description: "verdict", Measurement: tpm.Measure([]byte{verdict})},
	}
	sys.Verifier.Approve(det.Name, det.Measurement())
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, q, logEntries, nonce); err != nil {
		return 0, fmt.Errorf("attestation failed: %w", err)
	}
	return verdict, nil
}

func main() {
	sys, err := core.NewSystem(platform.HPdc5750())
	if err != nil {
		log.Fatal(err)
	}

	// The "kernel text": deterministic bytes standing in for vmlinux.
	kernel := make([]byte, kernelTextSize)
	sim.NewRNG(0xfeed).Fill(kernel)
	golden := fnv1a(kernel)
	det, err := core.CompilePAL("rootkit-detector", detectorSource(golden))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector built: golden checksum %08x baked into a %d-byte PAL\n",
		golden, det.Image.Len())

	verdict, err := check(sys, det, kernel, []byte("scan-1"))
	if err != nil {
		log.Fatal(err)
	}
	if verdict != 0 {
		log.Fatal("pristine kernel flagged as infected")
	}
	fmt.Println("scan 1: kernel clean (verdict attested via PCR 17)")

	// The adversary patches a syscall handler.
	kernel[0x1234] ^= 0x90
	verdict, err = check(sys, det, kernel, []byte("scan-2"))
	if err != nil {
		log.Fatal(err)
	}
	if verdict != 1 {
		log.Fatal("rootkit not detected")
	}
	fmt.Println("scan 2: KERNEL MODIFIED — rootkit detected, verdict attested")

	// A forged "clean" verdict cannot verify: the quote covers the real
	// extension, so a log claiming verdict 0 fails replay.
	q, _, err := sys.SEA.Quote([]byte("scan-3"))
	if err != nil {
		log.Fatal(err)
	}
	forged := attest.Log{
		{PCR: 17, Description: det.Name, Measurement: det.Measurement()},
		{PCR: 17, Description: "verdict", Measurement: tpm.Measure([]byte{0})},
	}
	if _, err := sys.Verifier.VerifyPALQuote(sys.Cert, q, forged, []byte("scan-3")); err == nil {
		log.Fatal("SECURITY FAILURE: forged clean verdict verified")
	}
	fmt.Println("forged 'clean' log rejected by the verifier")
}
