// SSH password-handling example (§4.1): the server's password database
// entry (salt + salted hash) is sealed to a password-checking PAL. Login
// attempts are decided inside the PAL; the legacy SSH daemon — and the
// potentially root-level attacker inside it — never sees the salt, the
// hash, or the comparison. Only a verdict leaves the TCB.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
)

// sshPAL handles both phases. Input:
//
//	[0][pwlen:1][password]                    enroll: seal salt+hash
//	[1][bloblen:2][blob][attempt]             login: verdict 1/0
const sshPAL = `
	ldi	r0, inbuf
	ldi	r1, 2048
	svc	7
	mov	r6, r0		; input length
	ldi	r1, inbuf
	loadb	r2, [r1]
	ldi	r3, 1
	cmp	r2, r3
	jz	login

enroll:
	ldi	r0, record	; record = [salt:16][hash:4]
	ldi	r1, 16
	svc	5		; salt from the TPM RNG
	ldi	r1, inbuf
	loadb	r4, [r1+1]	; r4 = password length
	ldi	r3, inbuf
	addi	r3, 2		; r3 = password pointer
	call	hashcred	; r5 = FNV(salt || password at r3 len r4)
	ldi	r1, record
	store	r5, [r1+16]
	ldi	r0, record
	ldi	r1, 20
	ldi	r2, blob
	svc	3		; seal the record; r0 = blob length
	ldi	r1, outbuf	; emit [bloblen:2][blob]
	storeb	r0, [r1]
	mov	r2, r0
	ldi	r3, 8
	shr	r2, r3
	storeb	r2, [r1+1]
	push	r0
	ldi	r0, outbuf
	ldi	r1, 2
	svc	6
	pop	r1
	ldi	r0, blob
	svc	6
	ldi	r0, 0
	svc	0

login:
	loadb	r2, [r1+1]	; blob length
	loadb	r3, [r1+2]
	ldi	r4, 8
	shl	r3, r4
	or	r2, r3
	ldi	r0, inbuf
	addi	r0, 3
	mov	r1, r2
	push	r2
	ldi	r2, record
	svc	4		; unseal the credential record
	ldi	r3, 0
	cmp	r1, r3
	jnz	fail
	pop	r2
	ldi	r3, inbuf	; r3 = attempt pointer
	addi	r3, 3
	add	r3, r2
	mov	r4, r6		; r4 = attempt length
	addi	r4, -3
	sub	r4, r2
	call	hashcred	; r5 = FNV(salt || attempt)
	ldi	r1, record
	load	r2, [r1+16]	; stored hash
	ldi	r0, outbuf
	cmp	r5, r2
	jz	allow
	ldi	r2, 0
	storeb	r2, [r0]
	jmp	emit
allow:
	ldi	r2, 1
	storeb	r2, [r0]
emit:
	ldi	r1, 1
	svc	6		; verdict only; record never leaves the PAL
	ldi	r0, 0
	svc	0

fail:
	pop	r2
	ldi	r0, 1
	svc	0

hashcred: ; r5 = FNV-1a(record.salt[0:16] || bytes at r3 len r4); clobbers r0-r2
	ldi	r5, 0x9dc5
	lui	r5, 0x811c
	ldi	r0, record
	ldi	r1, 16
	call	mix
	mov	r0, r3
	mov	r1, r4
	call	mix
	ret

mix:	; fold r1 bytes at r0 into r5; clobbers r0-r2
	ldi	r2, 0
	cmp	r1, r2
	jz	mixdone
mixloop:
	loadb	r2, [r0]
	xor	r5, r2
	ldi	r2, 0x0193
	lui	r2, 0x0100
	mul	r5, r2
	addi	r0, 1
	addi	r1, -1
	ldi	r2, 0
	cmp	r1, r2
	jnz	mixloop
mixdone:
	ret

record:	.space 20
outbuf:	.space 2
	.align 4
inbuf:	.space 2048
blob:	.space 1024
stack:	.space 128
`

func enroll(sys *core.System, p *core.PAL, password string) ([]byte, error) {
	input := append([]byte{0, byte(len(password))}, password...)
	res, err := sys.RunLegacy(p, input)
	if err != nil {
		return nil, err
	}
	if res.ExitStatus != 0 {
		return nil, fmt.Errorf("enroll exited %d", res.ExitStatus)
	}
	n := binary.LittleEndian.Uint16(res.Output[:2])
	return res.Output[2 : 2+n], nil
}

func login(sys *core.System, p *core.PAL, blob []byte, attempt string) (bool, error) {
	input := []byte{1}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(blob)))
	input = append(input, l[:]...)
	input = append(input, blob...)
	input = append(input, attempt...)
	res, err := sys.RunLegacy(p, input)
	if err != nil {
		return false, err
	}
	if res.ExitStatus != 0 {
		return false, fmt.Errorf("login PAL exited %d", res.ExitStatus)
	}
	return res.Output[0] == 1, nil
}

func main() {
	sys, err := core.NewSystem(platform.HPdc5750())
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("ssh-password", sshPAL)
	if err != nil {
		log.Fatal(err)
	}

	blob, err := enroll(sys, p, "correct horse battery staple")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled: %d-byte sealed credential record (salt+hash never left the PAL)\n", len(blob))

	ok, err := login(sys, p, blob, "correct horse battery staple")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("login with correct password: allow=%v\n", ok)
	if !ok {
		log.Fatal("correct password rejected")
	}

	ok, err = login(sys, p, blob, "hunter2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("login with wrong password:   allow=%v\n", ok)
	if ok {
		log.Fatal("wrong password accepted")
	}

	// The OS can see only the sealed blob; the TPM will not unseal it
	// for any other code.
	rogue, err := core.CompilePAL("rogue", `
		ldi	r0, inbuf
		ldi	r1, 2048
		svc	7
		ldi	r1, inbuf
		loadb	r2, [r1+1]
		loadb	r3, [r1+2]
		ldi	r4, 8
		shl	r3, r4
		or	r2, r3
		ldi	r0, inbuf
		addi	r0, 3
		mov	r1, r2
		ldi	r2, out
		svc	4
		mov	r0, r1
		svc	0
	inbuf:	.space 2048
	out:	.space 64
	stack:	.space 64
	`)
	if err != nil {
		log.Fatal(err)
	}
	input := []byte{1}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(blob)))
	input = append(append(input, l[:]...), blob...)
	res, err := sys.RunLegacy(rogue, input)
	if err != nil {
		log.Fatal(err)
	}
	if res.ExitStatus == 0 {
		log.Fatal("SECURITY FAILURE: rogue PAL read the credential record")
	}
	fmt.Println("rogue PAL could not unseal the credential record")
}
