// Certificate authority example (§4.1): the CA's signing key exists in the
// clear only inside a late-launched PAL. One PAL binary serves two modes —
// key generation (seal the new key under the PAL's own identity) and
// certificate signing (unseal, MAC the request, erase) — so both sessions
// measure identically and the TPM releases the key only to this code.
//
// The demo also shows the negative case: a different PAL binary, launched
// with the same blob, cannot unseal the key.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
)

// caPAL is the CA's Piece of Application Logic. Input layout:
//
//	[0]            mode: 0 = generate key, 1 = sign
//	mode 1: [1:3]  sealed-blob length (little endian)
//	        [3:3+n]      sealed blob
//	        [3+n:]       certificate request (subject bytes)
//
// Mode 0 outputs [bloblen:2][blob]; mode 1 outputs the 4-byte signature
// (an FNV-1a MAC keyed with the unsealed 32-byte key — a stand-in for the
// RSA signature a real CA computes, with the same trust structure: the key
// never leaves the PAL).
const caPAL = `
	ldi	r0, inbuf
	ldi	r1, 4096
	svc	7		; read input; r0 = length
	mov	r6, r0
	ldi	r1, inbuf
	loadb	r2, [r1]	; mode
	ldi	r3, 1
	cmp	r2, r3
	jz	sign

generate:
	ldi	r0, key
	ldi	r1, 32
	svc	5		; key = TPM random
	ldi	r0, key
	ldi	r1, 32
	ldi	r2, blob
	svc	3		; seal(key) -> blob; r0 = blob length
	ldi	r1, lenbuf	; emit [len:2][blob]
	storeb	r0, [r1]
	mov	r2, r0
	ldi	r3, 8
	shr	r2, r3
	storeb	r2, [r1+1]
	push	r0
	ldi	r0, lenbuf
	ldi	r1, 2
	svc	6
	pop	r1
	ldi	r0, blob
	svc	6
	jmp	wipe

sign:
	loadb	r2, [r1+1]	; blob length lo
	loadb	r3, [r1+2]	; blob length hi
	ldi	r4, 8
	shl	r3, r4
	or	r2, r3		; r2 = blob length
	ldi	r0, inbuf
	addi	r0, 3
	mov	r1, r2
	push	r2
	ldi	r2, key
	svc	4		; unseal -> key; r1 = status
	ldi	r3, 0
	cmp	r1, r3
	jnz	fail
	pop	r2
	ldi	r3, inbuf	; r3 = subject pointer
	addi	r3, 3
	add	r3, r2
	mov	r4, r6		; r4 = subject length
	addi	r4, -3
	sub	r4, r2
	ldi	r5, 0x9dc5	; FNV-1a offset basis 0x811c9dc5
	lui	r5, 0x811c
	ldi	r0, key		; fold in the key...
	ldi	r1, 32
	call	mix
	mov	r0, r3		; ...then the certificate request
	mov	r1, r4
	call	mix
	ldi	r0, sig
	store	r5, [r0]
	ldi	r1, 4
	svc	6		; output signature
	jmp	wipe

fail:
	pop	r2
	ldi	r0, 1
	svc	0		; exit(1): unseal refused

wipe:	; erase the key before releasing memory (the PAL's duty, §5.5)
	ldi	r0, key
	ldi	r1, 0
	ldi	r2, 32
wipel:	storeb	r1, [r0]
	addi	r0, 1
	addi	r2, -1
	ldi	r3, 0
	cmp	r2, r3
	jnz	wipel
	ldi	r0, 0
	svc	0		; exit(0)

mix:	; fold r1 bytes at r0 into r5 with FNV-1a; clobbers r0-r2
	ldi	r2, 0
	cmp	r1, r2
	jz	mixdone
mixloop:
	loadb	r2, [r0]
	xor	r5, r2
	ldi	r2, 0x0193	; FNV prime 16777619
	lui	r2, 0x0100
	mul	r5, r2
	addi	r0, 1
	addi	r1, -1
	ldi	r2, 0
	cmp	r1, r2
	jnz	mixloop
mixdone:
	ret

lenbuf:	.space 2
	.align 4
inbuf:	.space 4096
blob:	.space 1024
key:	.space 32
sig:	.word 0
stack:	.space 128
`

// roguePAL is different code that receives the same blob and tries to
// unseal it.
const roguePAL = `
	ldi	r0, inbuf
	ldi	r1, 4096
	svc	7
	mov	r6, r0
	ldi	r1, inbuf
	loadb	r2, [r1+1]
	loadb	r3, [r1+2]
	ldi	r4, 8
	shl	r3, r4
	or	r2, r3
	ldi	r0, inbuf
	addi	r0, 3
	mov	r1, r2
	ldi	r2, out
	svc	4		; unseal attempt
	mov	r0, r1		; exit status = unseal status (1 = refused)
	svc	0
inbuf:	.space 4096
out:	.space 64
stack:	.space 64
`

func signRequest(sys *core.System, ca *core.PAL, blob []byte, subject string) ([]byte, error) {
	input := []byte{1}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(blob)))
	input = append(input, l[:]...)
	input = append(input, blob...)
	input = append(input, subject...)
	res, err := sys.RunLegacy(ca, input)
	if err != nil {
		return nil, err
	}
	if res.ExitStatus != 0 {
		return nil, fmt.Errorf("signing PAL exited %d", res.ExitStatus)
	}
	return res.Output, nil
}

func main() {
	sys, err := core.NewSystem(platform.HPdc5750())
	if err != nil {
		log.Fatal(err)
	}
	ca, err := core.CompilePAL("cert-authority", caPAL)
	if err != nil {
		log.Fatal(err)
	}

	// Session 1: generate and seal the CA key.
	gen, err := sys.RunLegacy(ca, []byte{0})
	if err != nil {
		log.Fatal(err)
	}
	blobLen := binary.LittleEndian.Uint16(gen.Output[:2])
	blob := gen.Output[2 : 2+blobLen]
	fmt.Printf("CA key generated and sealed: %d-byte blob (session took %v)\n",
		len(blob), gen.Total)

	// Sessions 2-3: sign certificate requests. Deterministic per subject.
	sigAlice, err := signRequest(sys, ca, blob, "CN=alice.example.org")
	if err != nil {
		log.Fatal(err)
	}
	sigAlice2, err := signRequest(sys, ca, blob, "CN=alice.example.org")
	if err != nil {
		log.Fatal(err)
	}
	sigMallory, err := signRequest(sys, ca, blob, "CN=mallory.example.org")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sign(alice)   = %x\n", sigAlice)
	fmt.Printf("sign(alice)   = %x (repeat — must match)\n", sigAlice2)
	fmt.Printf("sign(mallory) = %x (must differ)\n", sigMallory)
	if string(sigAlice) != string(sigAlice2) {
		log.Fatal("signature not deterministic")
	}
	if string(sigAlice) == string(sigMallory) {
		log.Fatal("different subjects produced the same signature")
	}

	// Prove to a relying party that the real CA code performed the
	// signing sessions. (The quote covers the current PCR 17 contents,
	// so it must be taken while the CA's measurement is still loaded.)
	name, _, err := sys.AttestLegacy(ca, []byte("ca-challenge"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attestation verified: signing sessions ran %q\n", name)

	// Attack: a rogue PAL is handed the blob. The TPM refuses to unseal
	// because PCR 17 holds the rogue's measurement, not the CA's.
	rogue, err := core.CompilePAL("rogue", roguePAL)
	if err != nil {
		log.Fatal(err)
	}
	input := []byte{1}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(blob)))
	input = append(append(input, l[:]...), blob...)
	res, err := sys.RunLegacy(rogue, input)
	if err != nil {
		log.Fatal(err)
	}
	if res.ExitStatus == 0 {
		log.Fatal("SECURITY FAILURE: rogue PAL unsealed the CA key")
	}
	fmt.Println("rogue PAL could not unseal the CA key (TPM policy refused)")
}
