// Distributed computing with attested workers — the deployment story
// behind the paper's factoring application (§4.1): a coordinator farms
// candidate ranges out to worker machines it does not trust, and accepts a
// worker's answer only if a TPM quote proves (a) the genuine worker PAL
// produced it and (b) the reported result is the one the PAL extended into
// its register. A worker whose OS lies about the result is caught by log
// replay against the quote.
//
// Workers are full simulated platforms answering over the remote
// attestation protocol (internal/attest) on the loopback.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/tpm"
)

const (
	semiP = 5087
	semiQ = 5101
	// semiN is the number to factor.
	semiN = semiP * semiQ
)

// workerPAL searches [start, start+span) for a divisor of N. It extends
// its 8-byte result record (found flag + divisor) into its sePCR before
// outputting it, making the result part of the attestation.
func workerPAL() string {
	return fmt.Sprintf(`
	ldi	r0, inbuf
	ldi	r1, 8
	svc	7		; input: [start:4][span:4]
	ldi	r1, inbuf
	load	r5, [r1]	; r5 = candidate
	load	r6, [r1+4]	; r6 = remaining
	ldi	r4, %d		; N low
	lui	r4, %d		; N high
loop:
	ldi	r2, 0
	cmp	r6, r2
	jz	notfound
	mov	r0, r4
	remu	r0, r5
	ldi	r2, 0
	cmp	r0, r2
	jz	found
	addi	r5, 2
	addi	r6, -1
	jmp	loop
found:
	ldi	r1, result
	ldi	r2, 1
	store	r2, [r1]
	store	r5, [r1+4]
	jmp	report
notfound:
	ldi	r1, result
	ldi	r2, 0
	store	r2, [r1]
	store	r2, [r1+4]
report:
	ldi	r0, result
	ldi	r1, 8
	svc	2		; extend the result into the sePCR: now attested
	ldi	r0, result
	ldi	r1, 8
	svc	6		; and output it for the (untrusted) worker OS
	ldi	r0, 0
	svc	0
result:	.space 8
inbuf:	.space 8
stack:	.space 64
`, semiN&0xffff, semiN>>16)
}

// worker is one remote platform: it runs the range PAL under recommended
// hardware and serves the evidence for its most recent run.
type worker struct {
	id   int
	sys  *core.System
	p    *core.PAL
	addr string
}

// newWorker boots a worker platform and starts its attestation endpoint.
func newWorker(id int, p *core.PAL) (*worker, error) {
	prof := platform.Recommended(platform.HPdc5750(), 2)
	prof.Seed = uint64(100 + id) // distinct TPM/AIK per worker
	sys, err := core.NewSystem(prof)
	if err != nil {
		return nil, err
	}
	return &worker{id: id, sys: sys, p: p}, nil
}

// runAndServe executes the range [start, start+span) and serves exactly
// one attestation challenge for the run. lie makes the worker's OS tamper
// with the reported output (the attack the quote catches).
func (w *worker) runAndServe(start, span uint32, lie bool) (result []byte, evidence attest.Responder, err error) {
	input := make([]byte, 8)
	binary.LittleEndian.PutUint32(input[0:4], start)
	binary.LittleEndian.PutUint32(input[4:8], span)

	mg := w.sys.SKSM
	secb, err := mg.NewSECB(w.p.Image, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	secb.Input = input
	core1 := w.sys.Machine.CPUs[1]
	if err := mg.RunToCompletion(core1, secb); err != nil {
		return nil, nil, err
	}
	result = append([]byte(nil), secb.Output...)
	if lie {
		// The compromised worker OS claims it found a factor.
		binary.LittleEndian.PutUint32(result[0:4], 1)
		binary.LittleEndian.PutUint32(result[4:8], 1235)
	}

	logEntries := attest.Log{
		{PCR: -1, Description: w.p.Name, Measurement: w.p.Measurement()},
		{PCR: -1, Description: "result", Measurement: tpm.Measure(result)},
	}
	responder := func(ch attest.Challenge) (*attest.Evidence, error) {
		q, err := mg.QuoteAfterExit(secb, ch.Nonce)
		if err != nil {
			return nil, err
		}
		return &attest.Evidence{Cert: w.sys.Cert, Quote: q, Log: logEntries}, nil
	}
	return result, responder, nil
}

// coordinator verifies one worker's answer end to end.
func verifyWorker(w *worker, result []byte, respond attest.Responder, nonce []byte, v *attest.Verifier) error {
	client, server := net.Pipe()
	go attest.ServeOne(server, respond)
	name, err := v.ChallengeAndVerify(client, nonce, true, 0)
	if err != nil {
		return err
	}
	if name != w.p.Name {
		return fmt.Errorf("attested name %q", name)
	}
	return nil
}

func main() {
	p, err := core.CompilePAL("range-worker", workerPAL())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factoring N = %d with attested remote workers; PAL measurement %x\n\n",
		semiN, p.Measurement())

	// The coordinator trusts each worker's Privacy CA (in this demo each
	// platform has its own CA; a real deployment shares one).
	const workers = 4
	const span = 1300
	var factor uint32
	for id := 0; id < workers; id++ {
		w, err := newWorker(id, p)
		if err != nil {
			log.Fatal(err)
		}
		start := uint32(3 + 2*span*uint32(id))
		result, respond, err := w.runAndServe(start, span, false)
		if err != nil {
			log.Fatal(err)
		}
		v := attest.NewVerifier(w.sys.CA.Public())
		v.Approve(p.Name, p.Measurement())
		nonce := []byte(fmt.Sprintf("work-unit-%d", id))
		if err := verifyWorker(w, result, respond, nonce, v); err != nil {
			log.Fatalf("worker %d attestation failed: %v", id, err)
		}
		found := binary.LittleEndian.Uint32(result[0:4]) == 1
		div := binary.LittleEndian.Uint32(result[4:8])
		fmt.Printf("worker %d: range [%d, +%d odd candidates): found=%v div=%d — attested ✓\n",
			id, start, span, found, div)
		if found {
			factor = div
		}
	}
	if factor != semiP && factor != semiQ {
		log.Fatalf("no worker found a factor (got %d)", factor)
	}
	fmt.Printf("\nfactor %d accepted: quote proves the genuine PAL computed it\n\n", factor)

	// The attack: a worker whose OS forges the result. The quote covers
	// what the PAL really extended, so log replay fails.
	w, err := newWorker(99, p)
	if err != nil {
		log.Fatal(err)
	}
	result, respond, err := w.runAndServe(3, 10, true)
	if err != nil {
		log.Fatal(err)
	}
	_ = result
	v := attest.NewVerifier(w.sys.CA.Public())
	v.Approve(p.Name, p.Measurement())
	if err := verifyWorker(w, result, respond, []byte("lying-unit"), v); err == nil {
		log.Fatal("SECURITY FAILURE: forged result attested")
	}
	fmt.Println("lying worker: forged result REJECTED (log does not replay to the quote)")
}
