// Multicore PAL example (§6 "Multicore PALs"): a single PAL runs on two
// cores at once. The untrusted OS joins a second core to the executing PAL
// — the join operation adds the core to the memory controller's
// access-control entries for the PAL's pages — and the two cores split a
// checksum over shared PAL memory, synchronizing through flags in that
// memory. Unjoined cores and DMA devices remain locked out throughout.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/core"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
)

const dataSize = 4096
const half = dataSize / 2

// multicorePAL: the first core through the entry claims the owner role,
// reads the input into shared memory and sums the first half; the joined
// worker sums the second half; the owner combines and outputs. Each core
// gets its own stack.
var multicorePAL = fmt.Sprintf(`
	ldi	r1, role
	load	r0, [r1]
	ldi	r2, 0
	cmp	r0, r2
	jnz	worker

	; ---- owner path ----
	ldi	r0, 1
	store	r0, [r1]	; claim the owner role
	ldi	r7, stack0_top
	ldi	r0, data
	ldi	r1, %d
	svc	7		; read the input block
	ldi	r0, data
	ldi	r1, %d
	call	sum
	ldi	r1, sum0
	store	r5, [r1]
	ldi	r0, done0
	ldi	r2, 1
	store	r2, [r0]
wait:	ldi	r0, done1	; spin until the worker posts its half
	load	r2, [r0]
	ldi	r3, 1
	cmp	r2, r3
	jnz	wait
	ldi	r1, sum0
	load	r0, [r1]
	ldi	r1, sum1
	load	r2, [r1]
	add	r0, r2
	ldi	r1, out
	store	r0, [r1]
	ldi	r0, out
	ldi	r1, 4
	svc	6
	ldi	r0, 0
	svc	0

	; ---- worker path (joined core) ----
worker:
	ldi	r7, stack1_top
waitin:	ldi	r0, done0	; wait for the owner to finish reading input
	load	r2, [r0]
	ldi	r3, 1
	cmp	r2, r3
	jnz	waitin
	ldi	r0, data
	ldi	r2, %d
	add	r0, r2
	ldi	r1, %d
	call	sum
	ldi	r1, sum1
	store	r5, [r1]
	ldi	r0, done1
	ldi	r2, 1
	store	r2, [r0]
park:	jmp	park		; worker parks until the OS stops scheduling it

sum:	; r5 = sum of r1 bytes at r0; clobbers r2
	ldi	r5, 0
sloop:	ldi	r2, 0
	cmp	r1, r2
	jz	sdone
	loadb	r2, [r0]
	add	r5, r2
	addi	r0, 1
	addi	r1, -1
	jmp	sloop
sdone:	ret

role:	.word 0
done0:	.word 0
done1:	.word 0
sum0:	.word 0
sum1:	.word 0
out:	.word 0
data:	.space %d
stack0:	.space 128
stack0_top:
stack1:	.space 128
stack1_top:
`, dataSize, half, half, half, dataSize)

func main() {
	prof := platform.Recommended(platform.HPdc5750(), 2)
	prof.NumCPUs = 4
	sys, err := core.NewSystem(prof)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("multicore-sum", multicorePAL)
	if err != nil {
		log.Fatal(err)
	}

	// Input block with a known checksum.
	input := make([]byte, dataSize)
	sim.NewRNG(0xabcd).Fill(input)
	var want uint32
	for _, b := range input {
		want += uint32(b)
	}

	mg := sys.SKSM
	secb, err := mg.NewSECB(p.Image, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	secb.Input = input

	owner := sys.Machine.CPUs[1]
	worker := sys.Machine.CPUs[2]
	if err := mg.SLAUNCH(owner, secb); err != nil {
		log.Fatal(err)
	}
	if err := mg.Join(worker, secb); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAL launched on CPU%d; CPU%d joined via the memory controller\n",
		owner.ID, worker.ID)

	// While the PAL runs on two cores, everything else stays locked out.
	if _, err := sys.Machine.Chipset.CPURead(3, secb.Region.Base, 16); err == nil {
		log.Fatal("SECURITY FAILURE: unjoined core read the PAL")
	}
	nic := chipset.NewDevice("nic", sys.Machine.Chipset)
	if _, err := nic.Read(secb.Region.Base, 16); err == nil {
		log.Fatal("SECURITY FAILURE: DMA read the multicore PAL")
	}
	fmt.Println("unjoined core and DMA device refused by the access-control table")

	// Interleave the two cores in time slices until the owner exits.
	const quantum = 20 * time.Microsecond
	done := false
	for rounds := 0; !done; rounds++ {
		if rounds > 10000 {
			log.Fatal("PAL did not converge")
		}
		reason, err := owner.Run(quantum)
		if err != nil {
			log.Fatalf("owner fault: %v", err)
		}
		if reason == cpu.StopHalt {
			done = true
			break
		}
		if _, err := worker.Run(quantum); err != nil {
			log.Fatalf("worker fault: %v", err)
		}
	}

	got := binary.LittleEndian.Uint32(secb.Output[:4])
	fmt.Printf("two-core checksum = %d (host reference %d)\n", got, want)
	if got != want {
		log.Fatal("checksum mismatch")
	}

	// Tear down: worker leaves, owner SFREEs, attestation still works.
	if err := mg.Leave(worker, secb); err != nil {
		log.Fatal(err)
	}
	if err := mg.SFREE(owner, secb); err != nil {
		log.Fatal(err)
	}
	nonce := []byte("multicore-nonce")
	q, err := mg.QuoteAfterExit(secb, nonce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sePCR quote generated over the multicore PAL (%d-byte signature)\n",
		len(q.Signature))
}
