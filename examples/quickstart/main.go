// Quickstart: build a simulated HP dc5750, compile a tiny PAL, execute it
// under both execution models the paper analyzes, and verify the
// attestation an external party would receive.
package main

import (
	"fmt"
	"log"

	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
)

const helloPAL = `
	; A minimal PAL: emit a greeting and exit. Everything outside these
	; few instructions — the OS, drivers, other cores — is outside the
	; TCB while this runs.
	ldi	r0, msg
	ldi	r1, 28
	svc	6		; output
	ldi	r0, 0
	svc	0		; exit(0)
msg:	.ascii "hello from a minimal TCB PAL"
`

func main() {
	// Today's hardware: AMD SVM + a Broadcom v1.2 TPM.
	sys, err := core.NewSystem(platform.HPdc5750())
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("quickstart", helloPAL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAL %q: %d bytes, measurement %x\n", p.Name, p.Image.Len(), p.Measurement())

	// 1. SEA on 2007 hardware: the whole platform stalls for the session.
	res, err := sys.RunLegacy(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[SEA / SKINIT]   output=%q  total=%v\n", res.Output, res.Total)
	for phase, d := range res.Breakdown {
		fmt.Printf("    %-10s %v\n", phase, d)
	}
	name, att, err := sys.AttestLegacy(p, []byte("quickstart-challenge-1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    attested as %q (quote took %v)\n", name, att.Total)

	// 2. The paper's recommended hardware: SLAUNCH + sePCRs.
	rsys, err := core.NewSystem(platform.Recommended(platform.HPdc5750(), 4))
	if err != nil {
		log.Fatal(err)
	}
	nonce := []byte("quickstart-challenge-2")
	rres, err := rsys.RunRecommended(p, nil, 0, nonce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[SLAUNCH]        output=%q  total=%v (legacy OS kept running)\n",
		rres.Output, rres.Total)
	rname, err := rsys.VerifyRecommended(p, rres, nonce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    attested as %q via sePCR quote\n", rname)
}
