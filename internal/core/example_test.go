package core_test

import (
	"fmt"
	"log"

	"minimaltcb/internal/core"
	"minimaltcb/internal/platform"
)

// Example runs the smallest possible PAL on the paper's primary test
// machine and prints its output.
func Example() {
	prof := platform.HPdc5750()
	prof.KeyBits = 1024 // small keys keep the example fast
	sys, err := core.NewSystem(prof)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("greeter", `
		ldi r0, msg
		ldi r1, 3
		svc 6
		ldi r0, 0
		svc 0
	msg:	.ascii "hi!"
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunLegacy(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", res.Output)
	// Output: hi!
}

// ExampleSystem_RunRecommended shows the paper's proposed architecture:
// the PAL yields twice and is resumed by hardware context switches instead
// of TPM seal/unseal round trips.
func ExampleSystem_RunRecommended() {
	prof := platform.Recommended(platform.HPdc5750(), 2)
	prof.KeyBits = 1024
	sys, err := core.NewSystem(prof)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("yielder", `
		svc 1
		svc 1
		ldi r0, 0
		svc 0
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunRecommended(p, nil, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slices=%d resumes=%d\n", res.Slices, res.Resumes)
	// Output: slices=3 resumes=2
}

// ExampleSystem_AttestLegacy shows the external-verification loop: the
// verifier approves the PAL's measurement and checks a TPM quote.
func ExampleSystem_AttestLegacy() {
	prof := platform.HPdc5750()
	prof.KeyBits = 1024
	sys, err := core.NewSystem(prof)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.CompilePAL("audited", "ldi r0, 0\nsvc 0")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunLegacy(p, nil); err != nil {
		log.Fatal(err)
	}
	name, _, err := sys.AttestLegacy(p, []byte("fresh nonce"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(name)
	// Output: audited
}
