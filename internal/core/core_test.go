package core

import (
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/platform"
)

func fastProfile() platform.Profile {
	p := platform.HPdc5750()
	p.KeyBits = 1024
	return p
}

func fastRecommended() platform.Profile {
	p := platform.Recommended(platform.HPdc5750(), 4)
	p.KeyBits = 1024
	return p
}

const helloSource = `
	ldi r0, msg
	ldi r1, 5
	svc 6
	ldi r0, 0
	svc 0
msg:	.ascii "hello"
`

func TestSystemLegacyRoundTrip(t *testing.T) {
	sys, err := NewSystem(fastProfile())
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompilePAL("hello", helloSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunLegacy(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "hello" || res.ExitStatus != 0 {
		t.Fatalf("output %q exit %d", res.Output, res.ExitStatus)
	}
	if res.Total <= 0 {
		t.Fatal("no time charged")
	}
	// Attestation round trip.
	name, att, err := sys.AttestLegacy(p, []byte("challenge-1"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "hello" || att.Quote == nil {
		t.Fatalf("attested name %q", name)
	}
}

func TestSystemRecommendedRoundTrip(t *testing.T) {
	sys, err := NewSystem(fastRecommended())
	if err != nil {
		t.Fatal(err)
	}
	if sys.SKSM == nil {
		t.Fatal("recommended hardware missing")
	}
	p, err := CompilePAL("hello", helloSource)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("challenge-2")
	res, err := sys.RunRecommended(p, nil, 0, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "hello" {
		t.Fatalf("output %q", res.Output)
	}
	name, err := sys.VerifyRecommended(p, res, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if name != "hello" {
		t.Fatalf("verified name %q", name)
	}
}

func TestRecommendedOnStockHardwareFails(t *testing.T) {
	sys, err := NewSystem(fastProfile())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := CompilePAL("x", "ldi r0, 0\nsvc 0")
	if _, err := sys.RunRecommended(p, nil, 0, nil); !errors.Is(err, ErrNoRecommendedHardware) {
		t.Fatalf("recommended run on stock hardware: %v", err)
	}
}

func TestRecommendedPreemptionCountsSlices(t *testing.T) {
	sys, err := NewSystem(fastRecommended())
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompilePAL("worker", `
		ldi r0, 0
		ldi r1, 2000
	loop:	addi r0, 1
		cmp r0, r1
		jnz loop
		ldi r0, 0
		svc 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunRecommended(p, nil, time.Microsecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slices < 2 || res.Resumes < 1 {
		t.Fatalf("slices %d resumes %d — preemption never fired", res.Slices, res.Resumes)
	}
}

func TestCompilePALErrors(t *testing.T) {
	if _, err := CompilePAL("bad", "not a program"); err == nil {
		t.Fatal("bad source compiled")
	}
}

func TestSystemWithoutTPM(t *testing.T) {
	p := platform.TyanN3600R()
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Verifier != nil || sys.Cert != nil {
		t.Fatal("TPM-less system has attestation state")
	}
	pl, _ := CompilePAL("x", "ldi r0, 0\nsvc 0")
	res, err := sys.RunLegacy(pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Log != nil {
		t.Fatal("TPM-less session produced a log")
	}
	if _, _, err := sys.AttestLegacy(pl, nil); err == nil {
		t.Fatal("attestation without TPM succeeded")
	}
}

func TestIntelSystemLog(t *testing.T) {
	p := platform.IntelTEP()
	p.KeyBits = 1024
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := CompilePAL("hello", helloSource)
	if _, err := sys.RunLegacy(pl, nil); err != nil {
		t.Fatal(err)
	}
	name, att, err := sys.AttestLegacy(pl, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "hello" {
		t.Fatalf("name %q", name)
	}
	// Intel logs two events: ACMod (PCR17) and PAL (PCR18).
	if len(att.Log) != 2 || att.Log[0].PCR != 17 || att.Log[1].PCR != 18 {
		t.Fatalf("log %v", att.Log)
	}
}

func TestPALMeasurementStable(t *testing.T) {
	a, _ := CompilePAL("x", helloSource)
	b, _ := CompilePAL("y", helloSource)
	if a.Measurement() != b.Measurement() {
		t.Fatal("same source, different measurement")
	}
	c, _ := CompilePAL("z", "ldi r0, 1\nsvc 0")
	if a.Measurement() == c.Measurement() {
		t.Fatal("different source, same measurement")
	}
}
