// Package core is the library's public face: it assembles a simulated
// platform, compiles PALs from assembler source, executes them under
// either execution model the paper analyzes — SEA on today's (2007)
// hardware, or the recommended SLAUNCH architecture — and runs the full
// external-verification loop (Privacy CA, quote, log replay).
//
// A minimal round trip:
//
//	sys, _ := core.NewSystem(platform.HPdc5750())
//	p, _ := core.CompilePAL("hello", `
//	        ldi r0, msg
//	        ldi r1, 5
//	        svc 6
//	        ldi r0, 0
//	        svc 0
//	msg:    .ascii "hello"
//	`)
//	res, _ := sys.RunLegacy(p, nil)
//	fmt.Printf("%s in %v\n", res.Output, res.Total)
package core

import (
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sea"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/sksm"
	"minimaltcb/internal/tpm"
)

// System is an assembled platform with both execution runtimes and the
// attestation infrastructure around it.
type System struct {
	// Machine is the simulated hardware.
	Machine *platform.Machine
	// Kernel is the untrusted OS.
	Kernel *osker.Kernel
	// SEA is the today's-hardware runtime (always available).
	SEA *sea.Runtime
	// SKSM is the recommended-hardware runtime; nil unless the profile
	// provisions sePCRs (use platform.Recommended).
	SKSM *sksm.Manager

	// CA, Cert and Verifier model the attestation ecosystem: a Privacy
	// CA that certified this platform's AIK, and an external verifier
	// trusting that CA. All nil on TPM-less platforms.
	CA       *attest.PrivacyCA
	Cert     *attest.AIKCert
	Verifier *attest.Verifier
}

// NewSystem assembles a platform and its attestation ecosystem.
func NewSystem(profile platform.Profile) (*System, error) {
	m, err := platform.New(profile)
	if err != nil {
		return nil, err
	}
	k := osker.NewKernel(m)
	sys := &System{
		Machine: m,
		Kernel:  k,
		SEA:     sea.NewRuntime(k),
	}
	if profile.NumSePCRs > 0 {
		mg, err := sksm.NewManager(k)
		if err != nil {
			return nil, err
		}
		sys.SKSM = mg
	}
	if m.Chipset.HasTPM() {
		bits := profile.KeyBits
		ca, err := attest.NewPrivacyCA(profile.Seed^0xca, bits)
		if err != nil {
			return nil, err
		}
		cert, err := ca.Certify(profile.Name, m.TPM().AIKPublic())
		if err != nil {
			return nil, err
		}
		sys.CA = ca
		sys.Cert = cert
		sys.Verifier = attest.NewVerifier(ca.Public())
	}
	return sys, nil
}

// PAL is a named, compiled Piece of Application Logic.
type PAL struct {
	// Name identifies the PAL to verifiers.
	Name string
	// Image is the built SLB image.
	Image pal.Image
}

// Measurement returns the PAL's attested identity: SHA-1 of its image.
func (p *PAL) Measurement() tpm.Digest { return tpm.Measure(p.Image.Bytes) }

// CompilePAL assembles PAL source (see internal/isa for the syntax and
// internal/cpu for the SVC ABI) into a launchable image.
func CompilePAL(name, source string) (*PAL, error) {
	im, err := pal.Build(source)
	if err != nil {
		return nil, fmt.Errorf("core: compiling %q: %w", name, err)
	}
	return &PAL{Name: name, Image: im}, nil
}

// Result reports one PAL execution.
type Result struct {
	// Output is what the PAL wrote to its output channel.
	Output []byte
	// ExitStatus is the PAL's exit code.
	ExitStatus uint32
	// Total is the end-to-end virtual time of the session.
	Total time.Duration
	// Breakdown decomposes the overhead by phase (SEA sessions only;
	// the phases match Figure 2's legend).
	Breakdown map[string]time.Duration
	// Slices and Resumes count scheduling slices and hardware resumes
	// (recommended-hardware sessions only).
	Slices, Resumes int
	// Quote is the attestation generated after the run, when requested.
	Quote *tpm.Quote
	// Log is the measurement log matching the quote.
	Log attest.Log
}

// ErrNoRecommendedHardware is returned when a recommended-hardware
// operation is attempted on a stock platform.
var ErrNoRecommendedHardware = errors.New("core: platform lacks the recommended hardware (build it with platform.Recommended)")

// RunLegacy executes the PAL under SEA on today's hardware: the whole
// platform suspends, the PAL is late launched, state crosses sessions only
// via TPM seal/unseal.
func (s *System) RunLegacy(p *PAL, input []byte) (*Result, error) {
	sess, err := s.SEA.Execute(p.Image, input)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Output:     sess.Output,
		ExitStatus: sess.ExitStatus,
		Total:      sess.Total,
		Breakdown:  sess.Breakdown,
	}
	if s.Machine.Chipset.HasTPM() {
		res.Log = s.legacyLog(p, sess)
	}
	return res, nil
}

// legacyLog reconstructs the event log for a SEA session.
func (s *System) legacyLog(p *PAL, sess *sea.Session) attest.Log {
	if s.Machine.ACMod != nil {
		// Intel: ACMod in 17, PAL in 18.
		return attest.Log{
			{PCR: 17, Description: "ACMod", Measurement: tpm.Measure(s.Machine.ACMod.Code)},
			{PCR: 18, Description: p.Name, Measurement: p.Measurement()},
		}
	}
	return attest.Log{{PCR: 17, Description: p.Name, Measurement: p.Measurement()}}
}

// AttestLegacy generates and verifies the attestation for the most recent
// SEA session of p. It returns the verified PAL name.
func (s *System) AttestLegacy(p *PAL, nonce []byte) (string, *Result, error) {
	if s.Verifier == nil {
		return "", nil, errors.New("core: no TPM, no attestation")
	}
	q, qd, err := s.SEA.Quote(nonce)
	if err != nil {
		return "", nil, err
	}
	res := &Result{Quote: q, Total: qd, Log: s.legacyLog(p, nil)}
	s.Verifier.Approve(p.Name, p.Measurement())
	name, err := s.Verifier.VerifyPALQuote(s.Cert, q, res.Log, nonce)
	return name, res, err
}

// RunRecommended executes the PAL under the proposed architecture:
// SLAUNCH with a SECB, hardware context switches at the given preemption
// quantum (0 = run to completion), concurrent with the legacy OS. The
// returned result carries a verified sePCR quote.
func (s *System) RunRecommended(p *PAL, input []byte, quantum time.Duration, nonce []byte) (*Result, error) {
	if s.SKSM == nil {
		return nil, ErrNoRecommendedHardware
	}
	secb, err := s.SKSM.NewSECB(p.Image, 1, quantum)
	if err != nil {
		return nil, err
	}
	secb.Input = input
	core := s.palCore()
	sw := sim.StartStopwatch(s.Machine.Clock)
	if err := s.SKSM.RunToCompletion(core, secb); err != nil {
		return nil, err
	}
	res := &Result{
		Output:     secb.Output,
		ExitStatus: secb.ExitStatus,
		Total:      sw.Elapsed(),
		Slices:     secb.Slices,
		Resumes:    secb.Resumes,
		Log:        attest.Log{{PCR: -1, Description: p.Name, Measurement: p.Measurement()}},
	}
	if nonce != nil {
		q, err := s.SKSM.QuoteAfterExit(secb, nonce)
		if err != nil {
			return nil, err
		}
		res.Quote = q
	} else if err := s.Machine.TPM().FreeSePCR(secb.SePCRHandle); err != nil {
		return nil, err
	}
	if err := s.SKSM.Release(secb); err != nil {
		return nil, err
	}
	return res, nil
}

// PALCore picks the core PALs run on: core 1 when available (core 0 stays
// with the legacy OS, Figure 4), else core 0. Long-running services
// (internal/palsvc) dispatch their SECBs to this core.
func (s *System) PALCore() *cpu.CPU {
	if len(s.Machine.CPUs) > 1 {
		return s.Machine.CPUs[1]
	}
	return s.Machine.CPUs[0]
}

// palCore is the internal alias RunRecommended uses.
func (s *System) palCore() *cpu.CPU { return s.PALCore() }

// VerifyRecommended validates a result's sePCR quote against the system's
// verifier, returning the approved PAL name.
func (s *System) VerifyRecommended(p *PAL, res *Result, nonce []byte) (string, error) {
	if s.Verifier == nil {
		return "", errors.New("core: no TPM, no attestation")
	}
	if res.Quote == nil {
		return "", errors.New("core: result carries no quote")
	}
	s.Verifier.Approve(p.Name, p.Measurement())
	return s.Verifier.VerifySePCRQuote(s.Cert, res.Quote, res.Log, nonce)
}
