package audit

import (
	"encoding/json"
	"net/http"
	"strconv"

	"minimaltcb/internal/obs"
)

// debugView is the JSON shape of /debug/audit: the log's identity, its
// newest signed head, and a (filterable, bounded) tail of events.
type debugView struct {
	Node      string    `json:"node,omitempty"`
	Size      uint64    `json:"size"`
	Dropped   uint64    `json:"dropped,omitempty"`
	Head      *TreeHead `json:"head,omitempty"`
	Truncated int       `json:"truncated,omitempty"`
	Events    []Event   `json:"events"`
}

// Handler serves the log for the debug mux. Query parameters mirror
// tcbaudit's filters: ?tenant=, ?trace=, ?image= (hex prefix), ?since=
// (sequence number), ?n= (tail length, default 256).
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if l == nil {
			http.Error(w, "audit log disabled", http.StatusNotFound)
			return
		}
		q := Query{Limit: 256}
		params := req.URL.Query()
		q.Tenant = params.Get("tenant")
		q.Image = params.Get("image")
		if v := params.Get("trace"); v != "" {
			id, err := obs.ParseTraceID(v)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			q.Trace = id
		}
		if v := params.Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			q.Since = n
		}
		if v := params.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			q.Limit = n
		}
		events, truncated := l.Select(q)
		view := debugView{
			Node:      l.Node(),
			Size:      l.Size(),
			Dropped:   l.Dropped(),
			Head:      l.Head(),
			Truncated: truncated,
			Events:    events,
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}
