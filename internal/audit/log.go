package audit

import (
	"bufio"
	"crypto/rsa"
	"crypto/sha1"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/sim"
)

// TreeHead is a signed commitment to the log's first Size events. Sig is a
// PKCS#1 v1.5 signature by the platform AIK over SHA-1 of SigningMessage
// (SHA-1 because that is the modeled TPM's hash mill — see tpm.Measure);
// it is empty when the log has no signer (a verifier-side or router log).
type TreeHead struct {
	Size   uint64 `json:"size"`
	Root   Hash   `json:"root"`
	Node   string `json:"node,omitempty"`
	VirtNS int64  `json:"virt_ns"`
	Sig    []byte `json:"sig,omitempty"`
}

// headDomain is the domain-separation prefix of every head signing message.
// TPM quote signatures commit to "QUOT"-prefixed digests, so the two signed
// object kinds can never be confused even under the same AIK.
const headDomain = "minimaltcb/audit/tree-head/v1\n"

// SigningMessage is the byte string the AIK signs: domain prefix, size,
// root, virtual timestamp, and the node name, all in fixed order.
func (h *TreeHead) SigningMessage() []byte {
	msg := make([]byte, 0, len(headDomain)+8+len(h.Root)+8+1+len(h.Node))
	msg = append(msg, headDomain...)
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], h.Size)
	msg = append(msg, u[:]...)
	msg = append(msg, h.Root[:]...)
	binary.BigEndian.PutUint64(u[:], uint64(h.VirtNS))
	msg = append(msg, u[:]...)
	msg = append(msg, byte(len(h.Node)))
	msg = append(msg, h.Node...)
	return msg
}

// VerifySignature checks the head's AIK signature. A nil pub accepts only
// unsigned heads; a signed head with a nil pub (or vice versa) fails.
func (h *TreeHead) VerifySignature(pub *rsa.PublicKey) error {
	if pub == nil {
		if len(h.Sig) != 0 {
			return fmt.Errorf("audit: head size=%d is signed but no AIK public key is available", h.Size)
		}
		return nil
	}
	if len(h.Sig) == 0 {
		return fmt.Errorf("audit: head size=%d is unsigned but the log has an AIK", h.Size)
	}
	d := sha1.Sum(h.SigningMessage())
	if err := verifyPKCS1v15SHA1(pub, d, h.Sig); err != nil {
		return fmt.Errorf("audit: head size=%d signature: %w", h.Size, err)
	}
	return nil
}

// HeadSigner is the platform signing oracle for tree heads. tpm.TPM
// implements it: SignAuditHead signs SHA-1 of the message with the AIK, and
// AIKPublic exposes the verification key that gets persisted alongside the
// log.
type HeadSigner interface {
	SignAuditHead(msg []byte) ([]byte, error)
	AIKPublic() *rsa.PublicKey
}

// Config configures a Log.
type Config struct {
	// Dir is where segments, heads and the AIK public key are persisted.
	// Empty keeps the log memory-only (tests, benchmarks).
	Dir string
	// Node names the emitting node; it is stamped into events that do not
	// carry one and into every tree head.
	Node string
	// SegmentEvents caps events per segment pair before rotation
	// (default 4096).
	SegmentEvents int
	// HeadEvery emits a (signed) tree head every that many appends
	// (default 256). Close always emits a final head covering the tail.
	HeadEvery int
}

// Filenames inside a log directory.
const (
	segPattern = "seg-%06d"
	headsFile  = "heads.jsonl"
	aikFile    = "aik.json"
)

const (
	defaultSegmentEvents = 4096
	defaultHeadEvery     = 256
)

// Log is the append-only audit log: an in-memory event store plus Merkle
// leaves, mirrored to JSONL (human/greppable) and binary (canonical bytes)
// segment files with crash-safe rotation, and a growing list of signed tree
// heads. All methods are safe for concurrent use and nil-safe on the
// receiver, so a disabled stack passes nil logs around freely.
type Log struct {
	cfg Config

	mu       sync.Mutex
	events   []Event
	leaves   []Hash
	heads    []TreeHead
	signer   HeadSigner
	dropped  uint64
	closed   bool
	lastHead uint64 // size covered by the newest head

	segIndex int // current segment number (1-based)
	segCount int // events in the current segment
	jsonlF   *os.File
	binF     *os.File
	jsonlW   *bufio.Writer
	binW     *bufio.Writer

	// Scratch buffer for canonical encoding, reused under mu.
	scratch []byte

	// Metric handles are nil-safe obs instruments; zero until BindRegistry.
	mEvents    *obs.Counter
	mRotations *obs.Counter
	mDropped   *obs.Counter
	mAppendH   *obs.Histogram
}

// Open creates or resumes a log. An existing directory is recovered: both
// files of every segment are scanned, a truncated tail (torn final record
// after a crash) is trimmed from both views, and appends resume at the next
// sequence number — so heads emitted before and after a restart chain into
// one consistent tree.
func Open(cfg Config) (*Log, error) {
	if cfg.SegmentEvents <= 0 {
		cfg.SegmentEvents = defaultSegmentEvents
	}
	if cfg.HeadEvery <= 0 {
		cfg.HeadEvery = defaultHeadEvery
	}
	l := &Log{cfg: cfg, segIndex: 1}
	if cfg.Dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// recover loads existing segments and heads, trimming a torn tail.
func (l *Log) recover() error {
	segs, err := listSegments(l.cfg.Dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		events, offJ, offB, err := readSegment(l.cfg.Dir, seg, i == len(segs)-1)
		if err != nil {
			return err
		}
		if i == len(segs)-1 {
			// Trim the torn tail so appends resume on a clean boundary.
			if err := os.Truncate(segPath(l.cfg.Dir, seg, ".jsonl"), offJ); err != nil {
				return fmt.Errorf("audit: %w", err)
			}
			if err := os.Truncate(segPath(l.cfg.Dir, seg, ".bin"), offB); err != nil {
				return fmt.Errorf("audit: %w", err)
			}
		}
		for _, e := range events {
			if e.Seq != uint64(len(l.events)) {
				return fmt.Errorf("audit: segment %d: seq %d where %d expected (gap or reorder)",
					seg, e.Seq, len(l.events))
			}
			l.scratch = e.Canonical(l.scratch[:0])
			l.leaves = append(l.leaves, LeafHash(l.scratch))
			l.events = append(l.events, e)
		}
		l.segIndex = seg
		l.segCount = len(events)
	}
	heads, err := readHeads(l.cfg.Dir)
	if err != nil {
		return err
	}
	// Heads beyond the recovered event count (their events were torn off)
	// are dropped; keeping them would make every future root inconsistent.
	for _, h := range heads {
		if h.Size <= uint64(len(l.events)) {
			l.heads = append(l.heads, h)
			l.lastHead = h.Size
		}
	}
	if len(l.heads) < len(heads) {
		if err := writeHeads(l.cfg.Dir, l.heads); err != nil {
			return err
		}
	}
	return nil
}

// openSegment opens the current segment files for appending.
func (l *Log) openSegment() error {
	base := segPath(l.cfg.Dir, l.segIndex, "")
	jf, err := os.OpenFile(base+".jsonl", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	bf, err := os.OpenFile(base+".bin", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		jf.Close()
		return fmt.Errorf("audit: %w", err)
	}
	l.jsonlF, l.binF = jf, bf
	l.jsonlW, l.binW = bufio.NewWriter(jf), bufio.NewWriter(bf)
	return nil
}

// SetSigner installs the head-signing oracle (idempotent: the first signer
// wins) and persists its AIK public key next to the segments so offline
// verification needs nothing but the directory. palsvc.New calls this with
// machine 0's TPM; attestd with its platform TPM.
func (l *Log) SetSigner(s HeadSigner) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.signer != nil {
		return
	}
	l.signer = s
	if l.cfg.Dir != "" {
		if err := appendAIK(filepath.Join(l.cfg.Dir, aikFile), s.AIKPublic()); err != nil {
			l.dropped++
			l.mDropped.Inc()
		}
	}
}

// BindRegistry registers the log's instruments on a metrics registry.
func (l *Log) BindRegistry(r *obs.Registry) {
	if l == nil || r == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mEvents = r.Counter("audit_events_total", "Events appended to the audit log.")
	l.mRotations = r.Counter("audit_segment_rotations_total", "Audit log segment rotations.")
	l.mDropped = r.Counter("audit_events_dropped_total", "Audit events dropped on persistence failure or append-after-close.")
	l.mAppendH = r.Histogram("audit_append_seconds", "Wall-clock audit append latency in seconds.", nil)
	r.GaugeFunc("audit_log_size", "Events currently in the audit log.",
		func() float64 { return float64(l.Size()) })
}

// Recorder returns an emission handle bound to a machine index and its
// virtual clock (either may be zero/nil for service-level events). A nil
// log yields a nil recorder, whose Record is a free no-op — the disabled
// fast path pinned at zero allocations.
func (l *Log) Recorder(clock *sim.Clock, machine int) *Recorder {
	if l == nil {
		return nil
	}
	return &Recorder{log: l, clock: clock, machine: machine}
}

// Recorder stamps machine identity and virtual time onto events before
// appending them. It is the type the emission hooks in sksm, palsvc and
// cluster hold.
type Recorder struct {
	log     *Log
	clock   *sim.Clock
	machine int
}

// Enabled reports whether records reach a live log.
func (r *Recorder) Enabled() bool { return r != nil && r.log != nil }

// Record stamps and appends one event. Nil receivers no-op without
// allocating, so call sites need no guard.
func (r *Recorder) Record(e Event) {
	if r == nil || r.log == nil {
		return
	}
	e.Machine = r.machine
	if r.clock != nil {
		e.VirtNS = int64(r.clock.Now())
	}
	r.log.Append(e)
}

// Append assigns the next sequence number, hashes the event into the tree,
// persists both views, and emits a signed head on the period boundary.
// Persistence failures are counted as drops but never block the pipeline —
// the event stays queryable in memory and the gap is visible to VerifyChain.
func (l *Log) Append(e Event) {
	if l == nil {
		return
	}
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.dropped++
		l.mDropped.Inc()
		l.mu.Unlock()
		return
	}
	e.Seq = uint64(len(l.events))
	if e.Node == "" {
		e.Node = l.cfg.Node
	}
	e.clamp()
	l.scratch = e.Canonical(l.scratch[:0])
	l.leaves = append(l.leaves, LeafHash(l.scratch))
	l.events = append(l.events, e)
	l.persistLocked(&e)
	if len(l.events)%l.cfg.HeadEvery == 0 {
		l.emitHeadLocked()
	}
	ev, hist := l.mEvents, l.mAppendH
	l.mu.Unlock()
	ev.Inc()
	hist.Observe(time.Since(start).Seconds())
}

// persistLocked writes the event's JSON line and binary frame (u32 length
// prefix + canonical bytes, already in l.scratch) and rotates segments.
func (l *Log) persistLocked(e *Event) {
	if l.cfg.Dir == "" {
		return
	}
	line, err := json.Marshal(e)
	if err == nil {
		_, err = l.jsonlW.Write(append(line, '\n'))
	}
	if err == nil {
		var u [4]byte
		binary.BigEndian.PutUint32(u[:], uint32(len(l.scratch)))
		if _, err = l.binW.Write(u[:]); err == nil {
			_, err = l.binW.Write(l.scratch)
		}
	}
	if err != nil {
		l.dropped++
		l.mDropped.Inc()
		return
	}
	l.segCount++
	if l.segCount >= l.cfg.SegmentEvents {
		l.rotateLocked()
	}
}

// rotateLocked flushes and closes the current segment pair and opens the
// next. A failed open leaves the log memory-only; subsequent appends count
// as dropped rather than crash the service.
func (l *Log) rotateLocked() {
	l.closeSegmentLocked()
	l.segIndex++
	l.segCount = 0
	if err := l.openSegment(); err != nil {
		l.jsonlW, l.binW = nil, nil
		l.cfg.Dir = ""
	}
	l.mRotations.Inc()
}

func (l *Log) closeSegmentLocked() {
	if l.jsonlW != nil {
		_ = l.jsonlW.Flush()
		_ = l.jsonlF.Close()
	}
	if l.binW != nil {
		_ = l.binW.Flush()
		_ = l.binF.Close()
	}
}

// emitHeadLocked computes the root over everything appended so far, signs
// it if a signer is installed, and appends it to heads.jsonl. Segment
// writers are flushed first: the signed head is the durability boundary.
func (l *Log) emitHeadLocked() {
	if uint64(len(l.events)) == l.lastHead {
		return
	}
	h := TreeHead{
		Size: uint64(len(l.events)),
		Root: MerkleRoot(l.leaves),
		Node: l.cfg.Node,
	}
	if n := len(l.events); n > 0 {
		h.VirtNS = l.events[n-1].VirtNS
	}
	if l.signer != nil {
		sig, err := l.signer.SignAuditHead(h.SigningMessage())
		if err != nil {
			l.dropped++
			l.mDropped.Inc()
			return
		}
		h.Sig = sig
	}
	l.heads = append(l.heads, h)
	l.lastHead = h.Size
	if l.cfg.Dir == "" {
		return
	}
	if l.jsonlW != nil {
		_ = l.jsonlW.Flush()
		_ = l.binW.Flush()
	}
	if err := appendHead(l.cfg.Dir, &h); err != nil {
		l.dropped++
		l.mDropped.Inc()
	}
}

// Sync forces a tree head over the current tail and flushes persistence.
func (l *Log) Sync() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.emitHeadLocked()
	}
}

// Close emits a final head covering the tail — so every persisted event is
// provable against a signed head — and closes the segment files. Appends
// after Close count as dropped.
func (l *Log) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.emitHeadLocked()
	l.closeSegmentLocked()
	l.closed = true
}

// Head returns the newest tree head, or nil before the first one.
func (l *Log) Head() *TreeHead {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.heads) == 0 {
		return nil
	}
	h := l.heads[len(l.heads)-1]
	return &h
}

// Size returns the number of events appended.
func (l *Log) Size() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.events))
}

// Dropped returns how many events failed to persist or arrived after Close.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Node returns the configured node name.
func (l *Log) Node() string {
	if l == nil {
		return ""
	}
	return l.cfg.Node
}

// Query selects events from a log. Zero fields match everything; Limit
// bounds the result to the newest matches (ascending order preserved).
type Query struct {
	Tenant string
	Trace  obs.TraceID
	// Image matches on the hex prefix of the event's Image digest.
	Image string
	// Since selects events with Seq >= Since.
	Since uint64
	Limit int
}

func (q *Query) match(e *Event) bool {
	if e.Seq < q.Since {
		return false
	}
	if q.Tenant != "" && e.Tenant != q.Tenant {
		return false
	}
	if !q.Trace.IsZero() && e.Trace != q.Trace {
		return false
	}
	if q.Image != "" && !strings.HasPrefix(e.Image.String(), strings.ToLower(q.Image)) {
		return false
	}
	return true
}

// Select returns matching events in sequence order and how many older
// matches the Limit cut off.
func (l *Log) Select(q Query) (events []Event, truncated int) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.events {
		if q.match(&l.events[i]) {
			events = append(events, l.events[i])
		}
	}
	if q.Limit > 0 && len(events) > q.Limit {
		truncated = len(events) - q.Limit
		events = events[truncated:]
	}
	return events, truncated
}

// FilterEvents applies a Query to an event slice loaded outside any live
// log (LoadDir output) — the offline twin of Select, with the same
// newest-matches Limit semantics.
func FilterEvents(events []Event, q Query) (matched []Event, truncated int) {
	for i := range events {
		if q.match(&events[i]) {
			matched = append(matched, events[i])
		}
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		truncated = len(matched) - q.Limit
		matched = matched[truncated:]
	}
	return matched, truncated
}

// Prove generates an inclusion proof for event seq against the newest head.
// It returns the proof, the head, and false when seq is not yet covered by
// any head.
func (l *Log) Prove(seq uint64) (proof []Hash, head *TreeHead, ok bool) {
	if l == nil {
		return nil, nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.heads) == 0 {
		return nil, nil, false
	}
	h := l.heads[len(l.heads)-1]
	if seq >= h.Size {
		return nil, nil, false
	}
	return InclusionProof(l.leaves[:h.Size], int(seq)), &h, true
}

// --- segment and head file I/O, shared with the offline verifier ---

func segPath(dir string, idx int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, idx)+ext)
}

// listSegments returns the segment indices present in dir, ascending, and
// checks they are contiguous from 1.
func listSegments(dir string) ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	var segs []int
	for _, m := range matches {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(m), segPattern+".jsonl", &idx); err == nil {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)
	for i, s := range segs {
		if s != i+1 {
			return nil, fmt.Errorf("audit: segment files not contiguous: missing seg-%06d", i+1)
		}
	}
	return segs, nil
}

// readSegment loads one segment pair. It returns the events whose JSON and
// binary records both parsed, plus the byte offsets just past the last good
// record in each file. tolerateTail permits a torn final record (crash
// recovery on the newest segment); earlier segments must be whole.
// A mismatch between the JSON event's canonical re-encoding and the stored
// binary frame is reported as an error — that is tamper evidence, not a
// torn write.
func readSegment(dir string, idx int, tolerateTail bool) (events []Event, jsonlOff, binOff int64, err error) {
	jb, err := os.ReadFile(segPath(dir, idx, ".jsonl"))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("audit: %w", err)
	}
	bb, err := os.ReadFile(segPath(dir, idx, ".bin"))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("audit: %w", err)
	}
	var scratch []byte
	jpos, bpos := int64(0), int64(0)
	for {
		// Next complete JSON line.
		rest := jb[jpos:]
		nl := -1
		for i, c := range rest {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // no complete line left
		}
		var e Event
		jerr := json.Unmarshal(rest[:nl], &e)
		// Next complete binary frame.
		var canonical []byte
		berr := error(nil)
		if int64(len(bb))-bpos < 4 {
			berr = fmt.Errorf("truncated frame header")
		} else {
			n := int64(binary.BigEndian.Uint32(bb[bpos:]))
			if int64(len(bb))-bpos-4 < n {
				berr = fmt.Errorf("truncated frame body")
			} else {
				canonical = bb[bpos+4 : bpos+4+n]
			}
		}
		if jerr != nil || berr != nil {
			if tolerateTail {
				break
			}
			return nil, 0, 0, fmt.Errorf("audit: segment %d corrupt at record %d (json: %v, bin: %v)",
				idx, len(events), jerr, berr)
		}
		scratch = e.Canonical(scratch[:0])
		if string(scratch) != string(canonical) {
			return nil, 0, 0, fmt.Errorf("audit: segment %d record %d: JSON and binary views disagree (tampering or split-brain write)",
				idx, len(events))
		}
		events = append(events, e)
		jpos += int64(nl) + 1
		bpos += 4 + int64(len(canonical))
	}
	return events, jpos, bpos, nil
}

func readHeads(dir string) ([]TreeHead, error) {
	b, err := os.ReadFile(filepath.Join(dir, headsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	var heads []TreeHead
	for _, line := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var h TreeHead
		if err := json.Unmarshal([]byte(line), &h); err != nil {
			// A torn final head line is recoverable; the next Sync rewrites.
			break
		}
		heads = append(heads, h)
	}
	return heads, nil
}

func appendHead(dir string, h *TreeHead) error {
	f, err := os.OpenFile(filepath.Join(dir, headsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	line, err := json.Marshal(h)
	if err != nil {
		return err
	}
	_, err = f.Write(append(line, '\n'))
	return err
}

func writeHeads(dir string, heads []TreeHead) error {
	var b []byte
	for i := range heads {
		line, err := json.Marshal(&heads[i])
		if err != nil {
			return err
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	return os.WriteFile(filepath.Join(dir, headsFile), b, 0o644)
}
