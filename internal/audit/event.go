// Package audit implements a tamper-evident, append-only transparency log
// for the trust-relevant lifecycle events of the minimal-TCB stack: launch
// measurements, sePCR state transitions, seal/unseal decisions, PAL faults
// and kills, admission rejections, and attestation outcomes on both ends of
// the protocol.
//
// Every event is serialized to a canonical binary form and chained into an
// RFC 6962-style Merkle tree. The log periodically emits tree heads signed
// by the platform AIK, so a verifier holding only the persisted segments
// and signed heads can prove, entirely offline, that (a) each event is
// included under a signed head and (b) successive heads are consistent —
// the log only ever grew. The Merkle machinery deliberately lives outside
// the modeled TCB: the paper's minimal-PAL argument (and Sanctorum's
// minimal-monitor framing) keeps evidence plumbing in untrusted code, with
// the AIK signature as the only trusted ingredient.
//
// The package depends only on obs (trace identity), sim (virtual clock) and
// the standard library; tpm, sksm, palsvc and cluster all layer on top.
package audit

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"minimaltcb/internal/obs"
)

// Event types recorded by the stack. The TPM-level types mirror the sePCR
// life cycle (tpm/sepcr.go); the service-level types mirror the admission
// and attestation pipelines.
const (
	// Emitted by sksm.Manager around PAL lifecycle transitions.
	EventSLaunch = "slaunch"   // late launch succeeded; Image = PAL measurement
	EventSFree   = "sfree"     // clean PAL exit (SFREE)
	EventFault   = "pal_fault" // PAL faulted; Detail carries the cause
	EventSKill   = "skill"     // SKILL issued against a wedged or faulted PAL

	// Emitted via the TPM audit hook on sePCR and sealing-storage commands.
	EventSePCRAlloc   = "sepcr_alloc"   // Free -> Exclusive; Value = post-extend value
	EventSePCRExtend  = "sepcr_extend"  // measurement extended; Value = new value
	EventSePCRRelease = "sepcr_release" // Exclusive -> Quote
	EventSePCRKill    = "sepcr_kill"    // kill marker extended, register freed
	EventSePCRQuote   = "sepcr_quote"   // attestation generated; Value = composite
	EventQuoteBatch   = "quote_batch"   // batch quote signed; Value = SHA1 of Merkle root, Handle = leaf count
	EventSePCRFree    = "sepcr_free"    // Quote -> Free without attestation
	EventSeal         = "seal"          // data sealed; Value = release value
	EventUnseal       = "unseal"        // unseal succeeded
	EventUnsealDenied = "unseal_denied" // unseal refused on sePCR mismatch
	EventLateLaunch   = "late_launch"   // SKINIT/SENTER measurement into PCR17; Value = PCR17

	// Emitted by the service and router control planes.
	EventAdmitReject = "admit_reject" // admission control refused a job; Detail = cause code
	EventRouteShed   = "route_shed"   // router shed a request with no live backend

	// Emitted by attestd on both ends of the remote-attestation protocol.
	EventChallenge  = "challenge"   // platform side answered a challenge; Value = quoted composite
	EventVerifyOK   = "verify_ok"   // verifier side accepted a quote; Detail = verified PAL name
	EventVerifyFail = "verify_fail" // verifier side rejected a quote; Detail = reason
)

// Digest20 is a hex-encoded 20-byte digest field (the TPM's SHA-1 width).
// It is a local type rather than tpm.Digest so the audit package stays
// below tpm in the import graph.
type Digest20 [20]byte

// IsZero reports whether the digest is all zeroes (field unset).
func (d Digest20) IsZero() bool { return d == Digest20{} }

// String renders the digest as lowercase hex; empty for the zero digest.
func (d Digest20) String() string {
	if d.IsZero() {
		return ""
	}
	return hex.EncodeToString(d[:])
}

// MarshalJSON encodes the digest as a hex string ("" when unset).
func (d Digest20) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON decodes a hex string; "" yields the zero digest.
func (d *Digest20) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("audit: digest must be a JSON string")
	}
	s := string(b[1 : len(b)-1])
	if s == "" {
		*d = Digest20{}
		return nil
	}
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(d) {
		return fmt.Errorf("audit: bad digest %q", s)
	}
	copy(d[:], raw)
	return nil
}

// Event is one trust-relevant lifecycle record. The JSON form is what the
// human-facing segment files, the wire op, and tcbaudit show; the canonical
// binary form (Canonical) is what gets hashed into the Merkle tree and
// persisted to the .bin segments. Wall-clock time is deliberately absent:
// under the virtual clock and seeded RNG the canonical bytes of a machine's
// event stream are replayable bit for bit, which is what lets the chaos
// soaks assert chain integrity across runs.
type Event struct {
	Seq     uint64      `json:"seq"`
	Type    string      `json:"type"`
	Node    string      `json:"node,omitempty"`
	Machine int         `json:"machine"`
	VirtNS  int64       `json:"virt_ns"`
	Tenant  string      `json:"tenant,omitempty"`
	Trace   obs.TraceID `json:"trace"`
	Image   Digest20    `json:"image"`
	Value   Digest20    `json:"value"`
	Handle  int         `json:"handle"`
	Detail  string      `json:"detail,omitempty"`
}

// Field-length caps keep canonical records bounded; Append clamps before
// encoding so the JSON and binary forms always agree.
const (
	maxShortField  = 255 // type, node, tenant
	maxDetailField = 512
)

func clampStr(s string, max int) string {
	if len(s) > max {
		return s[:max]
	}
	return s
}

// clamp bounds the variable-length fields in place.
func (e *Event) clamp() {
	e.Type = clampStr(e.Type, maxShortField)
	e.Node = clampStr(e.Node, maxShortField)
	e.Tenant = clampStr(e.Tenant, maxShortField)
	e.Detail = clampStr(e.Detail, maxDetailField)
}

// Canonical appends the canonical binary encoding (version 1) of the event
// to dst and returns the extended slice. The encoding is a fixed field
// order with big-endian integers and length-prefixed strings:
//
//	u64 seq | i64 machine | i64 virt_ns | u64 trace.hi | u64 trace.lo |
//	u8  len(type)   || type
//	u8  len(node)   || node
//	u8  len(tenant) || tenant
//	u16 len(detail) || detail
//	image[20] | value[20] | i64 handle
//
// This is the byte string that leaf hashes commit to and that the .bin
// segments persist, so any divergence between the JSON and binary views of
// a record is itself tamper evidence.
func (e *Event) Canonical(dst []byte) []byte {
	var u [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(u[:], v)
		dst = append(dst, u[:]...)
	}
	put64(e.Seq)
	put64(uint64(int64(e.Machine)))
	put64(uint64(e.VirtNS))
	put64(e.Trace.Hi)
	put64(e.Trace.Lo)
	dst = append(dst, byte(len(e.Type)))
	dst = append(dst, e.Type...)
	dst = append(dst, byte(len(e.Node)))
	dst = append(dst, e.Node...)
	dst = append(dst, byte(len(e.Tenant)))
	dst = append(dst, e.Tenant...)
	dst = append(dst, byte(len(e.Detail)>>8), byte(len(e.Detail)))
	dst = append(dst, e.Detail...)
	dst = append(dst, e.Image[:]...)
	dst = append(dst, e.Value[:]...)
	put64(uint64(int64(e.Handle)))
	return dst
}
