package audit

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func testLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return leaves
}

func TestMerkleRootBasics(t *testing.T) {
	if got, want := MerkleRoot(nil), Hash(sha256.Sum256(nil)); got != want {
		t.Fatalf("empty root %x, want sha256(nil) %x", got, want)
	}
	one := testLeaves(1)
	if MerkleRoot(one) != one[0] {
		t.Fatal("single-leaf root is not the leaf hash")
	}
	two := testLeaves(2)
	if MerkleRoot(two) != nodeHash(two[0], two[1]) {
		t.Fatal("two-leaf root is not node(l, r)")
	}
	// Domain separation: a leaf can't be confused with an interior node.
	if LeafHash([]byte("x")) == nodeHash(Hash{}, Hash{}) {
		t.Fatal("leaf and node prefixes collide")
	}
}

func TestInclusionProofAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := testLeaves(n)
		root := MerkleRoot(leaves)
		for i := 0; i < n; i++ {
			proof := InclusionProof(leaves, i)
			if !VerifyInclusion(leaves[i], i, n, proof, root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			if VerifyInclusion(leaves[(i+1)%n], i, n, proof, root) && n > 1 {
				t.Fatalf("n=%d i=%d: proof accepted for the wrong leaf", n, i)
			}
		}
	}
}

// TestInclusionProofInteriorFlip is the interior-node leg of the tamper
// matrix: a single bit flipped in any proof node must break verification.
func TestInclusionProofInteriorFlip(t *testing.T) {
	leaves := testLeaves(16)
	root := MerkleRoot(leaves)
	proof := InclusionProof(leaves, 5)
	for node := range proof {
		bad := make([]Hash, len(proof))
		copy(bad, proof)
		bad[node][0] ^= 0x01
		if VerifyInclusion(leaves[5], 5, 16, bad, root) {
			t.Fatalf("flip in proof node %d went undetected", node)
		}
	}
	badRoot := root
	badRoot[31] ^= 0x80
	if VerifyInclusion(leaves[5], 5, 16, proof, badRoot) {
		t.Fatal("flip in root went undetected")
	}
}

func TestConsistencyProofAllSizes(t *testing.T) {
	for n := 2; n <= 33; n++ {
		leaves := testLeaves(n)
		second := MerkleRoot(leaves)
		for m := 1; m < n; m++ {
			first := MerkleRoot(leaves[:m])
			proof := ConsistencyProof(leaves, m)
			if !VerifyConsistency(m, n, first, second, proof) {
				t.Fatalf("n=%d m=%d: valid consistency proof rejected", n, m)
			}
			// A different old root must not be consistent.
			badFirst := first
			badFirst[0] ^= 0xff
			if VerifyConsistency(m, n, badFirst, second, proof) {
				t.Fatalf("n=%d m=%d: forged old root accepted", n, m)
			}
			for node := range proof {
				bad := make([]Hash, len(proof))
				copy(bad, proof)
				bad[node][7] ^= 0x10
				if VerifyConsistency(m, n, first, second, bad) {
					t.Fatalf("n=%d m=%d: flip in consistency node %d undetected", n, m, node)
				}
			}
		}
	}
}

func TestConsistencySameAndTrivialSizes(t *testing.T) {
	leaves := testLeaves(8)
	root := MerkleRoot(leaves)
	if !VerifyConsistency(8, 8, root, root, nil) {
		t.Fatal("equal sizes with equal roots rejected")
	}
	other := root
	other[3] ^= 1
	if VerifyConsistency(8, 8, root, other, nil) {
		t.Fatal("equal sizes with different roots accepted")
	}
	if !VerifyConsistency(0, 8, Hash{}, root, nil) {
		t.Fatal("empty-first consistency rejected")
	}
}
