package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// newTestSigner builds a real simulated TPM (small key for speed) to sign
// heads — the same code path palsvc wires for machine 0.
func newTestSigner(t *testing.T) *tpm.TPM {
	t.Helper()
	clock := sim.NewClock()
	chip, err := tpm.New(clock, lpc.NewBus(clock, lpc.FullSpeed()), tpm.Config{KeyBits: 512, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func fillLog(t *testing.T, l *Log, n int, tenant string) {
	t.Helper()
	rec := l.Recorder(nil, 0)
	for i := 0; i < n; i++ {
		rec.Record(Event{Type: EventSePCRExtend, Handle: i % 8, Tenant: tenant,
			Detail: "round"})
	}
}

func mustVerify(t *testing.T, dir string) *Report {
	t.Helper()
	rep, err := VerifyChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("log does not verify: %v", err)
	}
	return rep
}

// TestPersistReopenAppend is the cross-restart consistency test: a log
// written in two sessions must verify as one chain, with consistency
// proofs holding between the pre- and post-restart heads.
func TestPersistReopenAppend(t *testing.T) {
	dir := t.TempDir()
	signer := newTestSigner(t)
	cfg := Config{Dir: dir, Node: "n0", SegmentEvents: 64, HeadEvery: 32}

	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSigner(signer)
	fillLog(t, l, 100, "alice")
	if l.Size() != 100 {
		t.Fatalf("size %d, want 100", l.Size())
	}
	l.Close()
	rep := mustVerify(t, dir)
	if rep.Events != 100 || rep.Uncovered != 0 {
		t.Fatalf("report %+v: want 100 events all covered", rep)
	}
	if rep.SignedHeads == 0 {
		t.Fatal("no signed heads")
	}
	if rep.Segments < 2 {
		t.Fatalf("%d segments, want rotation at 64 events", rep.Segments)
	}

	// Restart: sequence numbers continue, heads stay consistent.
	l, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSigner(signer)
	if l.Size() != 100 {
		t.Fatalf("recovered size %d, want 100", l.Size())
	}
	fillLog(t, l, 50, "bob")
	l.Close()
	rep = mustVerify(t, dir)
	if rep.Events != 150 || rep.Uncovered != 0 {
		t.Fatalf("report %+v: want 150 events all covered", rep)
	}

	events, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: restart broke contiguity", i, e.Seq)
		}
	}
	matched, _ := FilterEvents(events, Query{Tenant: "bob"})
	if len(matched) != 50 {
		t.Fatalf("%d bob events, want 50", len(matched))
	}
}

// TestCrashRecoveryTornTail simulates a crash mid-append: a partial final
// record in both views must be truncated away, not poison the log.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Node: "n0", SegmentEvents: 1024, HeadEvery: 8}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, l, 20, "alice")
	l.Close()

	// Tear the tail: half a JSON line and a length prefix promising more
	// bytes than exist.
	jl := filepath.Join(dir, "seg-000001.jsonl")
	f, err := os.OpenFile(jl, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":20,"type":"sepcr_ex`)
	f.Close()
	bin := filepath.Join(dir, "seg-000001.bin")
	fb, err := os.OpenFile(bin, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad})
	fb.Close()

	l, err = Open(cfg)
	if err != nil {
		t.Fatalf("torn tail not recovered: %v", err)
	}
	if l.Size() != 20 {
		t.Fatalf("recovered size %d, want 20", l.Size())
	}
	fillLog(t, l, 4, "alice")
	l.Close()
	rep := mustVerify(t, dir)
	if rep.Events != 24 || rep.Uncovered != 0 {
		t.Fatalf("report %+v after torn-tail recovery", rep)
	}
}

// tamperFile rewrites one file through fn and returns.
func tamperFile(t *testing.T, path string, fn func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeSealedLog creates a signed, closed log for the tamper matrix.
func writeSealedLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Node: "n0", HeadEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	l.SetSigner(newTestSigner(t))
	fillLog(t, l, 24, "alice")
	l.Close()
	mustVerify(t, dir)
	return dir
}

// The persisted-leaf leg: a byte flipped in a JSONL field diverges from
// the canonical binary mirror and breaks the recomputed root.
func TestTamperLeafField(t *testing.T) {
	dir := writeSealedLog(t)
	tamperFile(t, filepath.Join(dir, "seg-000001.jsonl"), func(b []byte) []byte {
		return bytes.Replace(b, []byte(`"alice"`), []byte(`"alicf"`), 1)
	})
	rep, err := VerifyChain(dir)
	if err == nil && rep.Err() == nil {
		t.Fatal("leaf tamper verified clean")
	}
}

// The binary-segment leg: flipping a payload byte in the .bin mirror is
// caught as divergence between the two views.
func TestTamperBinSegment(t *testing.T) {
	dir := writeSealedLog(t)
	tamperFile(t, filepath.Join(dir, "seg-000001.bin"), func(b []byte) []byte {
		b[len(b)/2] ^= 0x01
		return b
	})
	rep, err := VerifyChain(dir)
	if err == nil && rep.Err() == nil {
		t.Fatal("binary tamper verified clean")
	}
}

// The signed-head leg, twice: a flipped root must fail the recomputation
// check, and a flipped signature must fail AIK verification.
func TestTamperSignedHead(t *testing.T) {
	dir := writeSealedLog(t)
	heads := filepath.Join(dir, "heads.jsonl")
	orig, err := os.ReadFile(heads)
	if err != nil {
		t.Fatal(err)
	}

	// Root flip: swap a hex digit in the first head's root.
	tamperFile(t, heads, func(b []byte) []byte {
		s := string(b)
		i := strings.Index(s, `"root":"`)
		if i < 0 {
			t.Fatal("no root field in heads.jsonl")
		}
		j := i + len(`"root":"`)
		repl := byte('0')
		if s[j] == '0' {
			repl = '1'
		}
		return []byte(s[:j] + string(repl) + s[j+1:])
	})
	if rep, err := VerifyChain(dir); err == nil && rep.Err() == nil {
		t.Fatal("head-root tamper verified clean")
	}

	// Signature flip: restore, then corrupt the base64 sig payload.
	if err := os.WriteFile(heads, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	tamperFile(t, heads, func(b []byte) []byte {
		s := string(b)
		i := strings.Index(s, `"sig":"`)
		if i < 0 {
			t.Fatal("no sig field in heads.jsonl")
		}
		j := i + len(`"sig":"`)
		repl := byte('A')
		if s[j] == 'A' {
			repl = 'B'
		}
		return []byte(s[:j] + string(repl) + s[j+1:])
	})
	if rep, err := VerifyChain(dir); err == nil && rep.Err() == nil {
		t.Fatal("head-signature tamper verified clean")
	}
}

// A log that signs no heads must not pass for one that promised an AIK:
// dropping aik.json hides the signer, which VerifyChain flags because the
// heads still carry signatures.
// TestAIKRotationAcrossReopen: a restart mints a fresh AIK (a rebooted
// platform regenerates its key), and heads signed under the old key must
// keep verifying — aik.json accumulates one key per signer epoch.
func TestAIKRotationAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Node: "n0", HeadEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	l.SetSigner(newTestSigner(t))
	fillLog(t, l, 20, "alice")
	l.Close()

	l, err = Open(Config{Dir: dir, Node: "n0", HeadEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	rotated, err := tpm.New(clock, lpc.NewBus(clock, lpc.FullSpeed()), tpm.Config{KeyBits: 512, Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	l.SetSigner(rotated)
	fillLog(t, l, 20, "alice")
	l.Close()

	keys, err := ReadAIKs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("aik.json holds %d key(s) after rotation, want 2", len(keys))
	}
	rep := mustVerify(t, dir)
	if rep.Events != 40 || rep.SignedHeads < 2 {
		t.Fatalf("post-rotation report: %+v", rep)
	}
}

func TestTamperDropAIK(t *testing.T) {
	dir := writeSealedLog(t)
	if err := os.Remove(filepath.Join(dir, "aik.json")); err != nil {
		t.Fatal(err)
	}
	if rep, err := VerifyChain(dir); err == nil && rep.Err() == nil {
		t.Fatal("signed heads verified with no AIK on record")
	}
}

// TestDisabledRecordAllocs pins the audit-disabled fast path at zero
// allocations: a nil recorder's Record must compile down to a nil check.
func TestDisabledRecordAllocs(t *testing.T) {
	var rec *Recorder
	ev := Event{Type: EventSLaunch, Handle: 3, Tenant: "t"}
	if n := testing.AllocsPerRun(1000, func() {
		rec.Record(ev)
	}); n != 0 {
		t.Fatalf("nil-recorder Record allocates %v/op, want 0", n)
	}
}

func TestDroppedAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	rec := l.Recorder(nil, 0)
	rec.Record(Event{Type: EventSLaunch})
	l.Close()
	rec.Record(Event{Type: EventSLaunch})
	if l.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1 (append after close)", l.Dropped())
	}
}

func TestProveInclusionLive(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Node: "n0", HeadEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, l, 40, "alice")
	l.Sync()
	proof, head, ok := l.Prove(7)
	if !ok {
		t.Fatal("no proof for covered event")
	}
	events, _ := l.Select(Query{})
	leaf := LeafHash(events[7].Canonical(nil))
	if !VerifyInclusion(leaf, 7, int(head.Size), proof, head.Root) {
		t.Fatal("live inclusion proof rejected")
	}
	l.Close()
}

func BenchmarkAppendMemory(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Config{Dir: dir, Node: "bench", SegmentEvents: 1 << 20, HeadEvery: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := l.Recorder(nil, 0)
	ev := Event{Type: EventSePCRExtend, Handle: 1, Tenant: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(ev)
	}
}

func BenchmarkAppendDisabled(b *testing.B) {
	var rec *Recorder
	ev := Event{Type: EventSePCRExtend, Handle: 1, Tenant: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(ev)
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Config{Dir: dir, Node: "bench", HeadEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	rec := l.Recorder(nil, 0)
	for i := 0; i < 512; i++ {
		rec.Record(Event{Type: EventSePCRExtend, Handle: i % 8, Tenant: "bench"})
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := VerifyChain(dir)
		if err != nil || rep.Err() != nil {
			b.Fatal("bench log does not verify")
		}
	}
}
