package audit

import (
	"bytes"
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
)

// This file is the standalone verifier: everything needed to audit a log
// directory offline — no Log, no TPM, no network. tcbaudit -verify and the
// soak teardowns call VerifyChain; the pieces (LoadDir, VerifySignature,
// the proof verifiers in merkle.go) are exported for callers that want to
// check a single claim.

// verifyPKCS1v15SHA1 checks an AIK signature over a SHA-1 digest. The
// modeled TPM is a v1.2 device, whose signing mill is SHA-1/PKCS#1 v1.5 —
// the audit layer inherits that, and docs/AUDIT.md spells out the
// consequences.
func verifyPKCS1v15SHA1(pub *rsa.PublicKey, digest [sha1.Size]byte, sig []byte) error {
	return rsa.VerifyPKCS1v15(pub, crypto.SHA1, digest[:], sig)
}

// aikJSON is one persisted AIK public key. aik.json is JSONL, one key per
// line, append-only: a platform reboot (or AIK rotation) mints a fresh
// key, and heads signed under the old one must keep verifying — the file
// accumulates every key the log has ever been signed under.
type aikJSON struct {
	ModulusHex string `json:"modulus_hex"`
	Exponent   int    `json:"exponent"`
}

// appendAIK records pub in the log's key file unless it is already there.
func appendAIK(path string, pub *rsa.PublicKey) error {
	if pub == nil {
		return fmt.Errorf("audit: nil AIK public key")
	}
	existing, err := readAIKFile(path)
	if err != nil {
		return err
	}
	for _, k := range existing {
		if k.E == pub.E && k.N.Cmp(pub.N) == 0 {
			return nil
		}
	}
	b, err := json.Marshal(aikJSON{ModulusHex: pub.N.Text(16), Exponent: pub.E})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(b, '\n'))
	return err
}

func readAIKFile(path string) ([]*rsa.PublicKey, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	var keys []*rsa.PublicKey
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var a aikJSON
		if err := json.Unmarshal(line, &a); err != nil {
			return nil, fmt.Errorf("audit: aik.json: %w", err)
		}
		pub := &rsa.PublicKey{N: new(big.Int), E: a.Exponent}
		if _, ok := pub.N.SetString(a.ModulusHex, 16); !ok {
			return nil, fmt.Errorf("audit: aik.json: bad modulus")
		}
		keys = append(keys, pub)
	}
	return keys, nil
}

// ReadAIKs loads every AIK public key persisted next to a log's segments,
// oldest first. A missing file returns (nil, nil): the log is unsigned.
func ReadAIKs(dir string) ([]*rsa.PublicKey, error) {
	return readAIKFile(filepath.Join(dir, aikFile))
}

// ReadAIK loads the newest AIK public key, or (nil, nil) for an unsigned
// log. Verification against a log that outlived a platform reboot needs
// every key — use ReadAIKs.
func ReadAIK(dir string) (*rsa.PublicKey, error) {
	keys, err := ReadAIKs(dir)
	if err != nil || len(keys) == 0 {
		return nil, err
	}
	return keys[len(keys)-1], nil
}

// verifyHeadAnyKey accepts a head signed under any of the log's recorded
// AIKs: a restart mints a fresh key, and older heads stay bound to the key
// that was live when they were emitted.
func verifyHeadAnyKey(h *TreeHead, aiks []*rsa.PublicKey) error {
	if len(aiks) == 0 {
		return h.VerifySignature(nil)
	}
	var err error
	for _, pub := range aiks {
		if err = h.VerifySignature(pub); err == nil {
			return nil
		}
	}
	return err
}

// Report is the outcome of verifying a log directory. Problems is empty for
// a clean chain; Uncovered counts trailing events not yet under any head
// (possible only when the writer is still live — Close always seals the
// tail).
type Report struct {
	Dir         string
	Events      int
	Segments    int
	Heads       int
	SignedHeads int
	Uncovered   int
	Problems    []string
}

// Err returns a non-nil error when the chain failed verification.
func (r *Report) Err() error {
	if len(r.Problems) == 0 {
		return nil
	}
	return fmt.Errorf("audit: chain verification failed: %s (and %d more)",
		r.Problems[0], len(r.Problems)-1)
}

func (r *Report) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// String renders a one-line summary.
func (r *Report) String() string {
	state := "OK"
	if len(r.Problems) > 0 {
		state = fmt.Sprintf("FAILED (%d problems)", len(r.Problems))
	}
	return fmt.Sprintf("%s: %d events, %d segments, %d heads (%d signed), %d uncovered: %s",
		r.Dir, r.Events, r.Segments, r.Heads, r.SignedHeads, r.Uncovered, state)
}

// LoadDir reads every event persisted in a log directory, in sequence
// order, without verifying the chain — the query path of tcbaudit. Partial
// trailing records are skipped, matching crash-recovery semantics.
func LoadDir(dir string) ([]Event, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var all []Event
	for i, seg := range segs {
		events, _, _, err := readSegment(dir, seg, i == len(segs)-1)
		if err != nil {
			return nil, err
		}
		all = append(all, events...)
	}
	return all, nil
}

// VerifyChain audits a persisted log directory end to end:
//
//   - every segment's JSON and binary views agree byte for byte with the
//     canonical re-encoding (readSegment enforces this)
//   - sequence numbers are gapless from 0
//   - every tree head's root matches the recomputation over the canonical
//     leaves it covers, and its AIK signature verifies against aik.json
//   - consecutive heads are append-only consistent, proven by generating
//     and verifying an RFC 6962 consistency proof between them — this is
//     what makes cross-restart tampering (rewriting history between runs)
//     detectable
//   - every event covered by the newest head carries a valid inclusion
//     proof against that head
//
// Structural problems are accumulated in the Report rather than aborting,
// so one flipped byte yields a diagnosis, not just an error.
func VerifyChain(dir string) (*Report, error) {
	r := &Report{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r.Segments = len(segs)
	var (
		events  []Event
		leaves  []Hash
		scratch []byte
	)
	for i, seg := range segs {
		se, _, _, err := readSegment(dir, seg, i == len(segs)-1)
		if err != nil {
			// Corruption inside a segment: report and stop loading — leaf
			// hashes past this point would be guesses.
			r.problemf("%v", err)
			break
		}
		for _, e := range se {
			if e.Seq != uint64(len(events)) {
				r.problemf("segment %d: seq %d where %d expected (gap or reorder)", seg, e.Seq, len(events))
			}
			scratch = e.Canonical(scratch[:0])
			leaves = append(leaves, LeafHash(scratch))
			events = append(events, e)
		}
	}
	r.Events = len(events)

	aiks, err := ReadAIKs(dir)
	if err != nil {
		r.problemf("%v", err)
	}

	heads, err := readHeads(dir)
	if err != nil {
		return nil, err
	}
	r.Heads = len(heads)
	var prev *TreeHead
	for i := range heads {
		h := &heads[i]
		if len(h.Sig) != 0 {
			r.SignedHeads++
		}
		if h.Size > uint64(len(leaves)) {
			r.problemf("head %d covers %d events but only %d are persisted", i, h.Size, len(leaves))
			continue
		}
		if got := MerkleRoot(leaves[:h.Size]); got != h.Root {
			r.problemf("head %d (size %d): root %s does not match recomputation %s",
				i, h.Size, h.Root, got)
		}
		if err := verifyHeadAnyKey(h, aiks); err != nil {
			r.problemf("%v", err)
		}
		if prev != nil {
			if h.Size < prev.Size {
				r.problemf("head %d shrank: %d after %d (log rollback)", i, h.Size, prev.Size)
			} else {
				proof := ConsistencyProof(leaves[:h.Size], int(prev.Size))
				if !VerifyConsistency(int(prev.Size), int(h.Size), prev.Root, h.Root, proof) {
					r.problemf("heads %d->%d (sizes %d->%d) fail consistency: history rewritten",
						i-1, i, prev.Size, h.Size)
				}
			}
		}
		prev = h
	}

	if prev == nil {
		if len(events) > 0 {
			r.Uncovered = len(events)
			r.problemf("%d events but no tree head to prove them against", len(events))
		}
		return r, nil
	}
	r.Uncovered = len(events) - int(prev.Size)
	covered := leaves[:prev.Size]
	for i := range covered {
		proof := InclusionProof(covered, i)
		if !VerifyInclusion(covered[i], i, int(prev.Size), proof, prev.Root) {
			r.problemf("event %d fails inclusion against the newest head", i)
		}
	}
	return r, nil
}

// EventKey renders the stable identity of an event for cross-log
// correlation (tcbaudit cross-checks attestd's platform and verifier logs
// by trace).
func EventKey(e *Event) string {
	return fmt.Sprintf("%s/%s/%s", e.Node, e.Type, e.Trace)
}

// hexLeaf is a debugging helper: the leaf hash of an event's canonical
// form, as hex.
func hexLeaf(e *Event) string {
	h := LeafHash(e.Canonical(nil))
	return hex.EncodeToString(h[:])
}
