package audit

import "minimaltcb/internal/merkle"

// The RFC 6962 / RFC 9162 tree primitives moved to internal/merkle when
// batched sePCR quotes (internal/tpm) started needing the same machinery;
// the audit log keeps its historical names as aliases so persisted-segment
// replay code and tests read unchanged. Hash is a type alias — audit tree
// heads and merkle tree heads are interchangeable values, not conversions.

// Hash is a SHA-256 tree node.
type Hash = merkle.Hash

// LeafHash hashes one canonical record into its tree leaf.
func LeafHash(canonical []byte) Hash { return merkle.LeafHash(canonical) }

// nodeHash keeps the historical package-private spelling for tests.
func nodeHash(l, r Hash) Hash { return merkle.NodeHash(l, r) }

// MerkleRoot computes the RFC 6962 tree head over the given leaf hashes.
// The empty tree hashes the empty string.
func MerkleRoot(leaves []Hash) Hash { return merkle.Root(leaves) }

// InclusionProof builds the audit path for leaf index i in a tree over
// leaves (RFC 6962 §2.1.1). Nil for a single-leaf tree, where the leaf is
// the root.
func InclusionProof(leaves []Hash, i int) []Hash { return merkle.InclusionProof(leaves, i) }

// VerifyInclusion checks an audit path against a tree head, per the
// RFC 9162 §2.1.3.2 algorithm.
func VerifyInclusion(leaf Hash, index, size int, proof []Hash, root Hash) bool {
	return merkle.VerifyInclusion(leaf, index, size, proof, root)
}

// ConsistencyProof builds the proof that the tree over leaves[:m] is a
// prefix of the tree over all of leaves (RFC 6962 §2.1.2).
func ConsistencyProof(leaves []Hash, m int) []Hash { return merkle.ConsistencyProof(leaves, m) }

// VerifyConsistency checks that the tree of size second with head
// secondRoot is an append-only extension of the tree of size first with
// head firstRoot, per the RFC 9162 §2.1.4.2 algorithm.
func VerifyConsistency(first, second int, firstRoot, secondRoot Hash, proof []Hash) bool {
	return merkle.VerifyConsistency(first, second, firstRoot, secondRoot, proof)
}
