package obs

import (
	"testing"
	"time"

	"minimaltcb/internal/sim"
)

func TestNilHandlesAreSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.SetEnabled(true)
	if ctx := tr.NewTrace(); ctx != (Context{}) {
		t.Fatalf("nil tracer handed out trace %+v", ctx)
	}
	sp := tr.StartSpan(Context{}, "x", "y")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	sp.Attr("k", "v").Virt(time.Second).WallStart(time.Now())
	sp.End()
	sp.EndVirt(2 * time.Second)
	if sp.Context() != (Context{}) {
		t.Fatal("nil span context not zero")
	}
	tr.RecordSpan(Context{}, "x", "y", time.Now(), time.Second)
	tr.Event(Context{}, "x", "y", -1)
	if recs, dropped := tr.Snapshot(); recs != nil || dropped != 0 {
		t.Fatal("nil tracer snapshot not empty")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer non-empty")
	}

	var sc *Scope
	if sc.Enabled() || sc.Tracer() != nil {
		t.Fatal("nil scope enabled")
	}
	sc.Swap(Context{Trace: TraceID{Lo: 1}})
	if sc.Current() != (Context{}) {
		t.Fatal("nil scope carries context")
	}
	sc.End(sc.Start("x", "y"))
	sc.Event("x", "y")
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(false)
	if sp := tr.StartSpan(tr.NewTrace(), "a", "b"); sp != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	tr.RecordSpan(Context{}, "a", "b", time.Now(), time.Second)
	tr.Event(Context{}, "a", "b", -1)
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.Len())
	}
	// Re-enabling records again without losing the ring.
	tr.SetEnabled(true)
	tr.StartSpan(Context{}, "a", "b").End()
	if tr.Len() != 1 {
		t.Fatalf("re-enabled tracer recorded %d spans, want 1", tr.Len())
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartSpan(tr.NewTrace(), "job", "pipeline")
	child := tr.StartSpan(root.Context(), "execute", "pipeline")
	child.Attr("cpu", "1").End()
	root.End()

	recs, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d", dropped)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// The recorder appends at End, so the child lands first.
	c, r := recs[0], recs[1]
	if c.Name != "execute" || r.Name != "job" {
		t.Fatalf("order: %s, %s", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatalf("trace split: %d vs %d", c.Trace, r.Trace)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %d, root id %d", c.Parent, r.ID)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "cpu" || c.Attrs[0].Val != "1" {
		t.Fatalf("attrs %+v", c.Attrs)
	}
	if c.VirtStart != -1 || c.VirtDur != -1 {
		t.Fatalf("span without sim clock carries virtual time: %+v", c)
	}
	if c.WallDur < 0 {
		t.Fatalf("negative wall duration %d", c.WallDur)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	ctx := tr.NewTrace()
	for i := 0; i < 6; i++ {
		tr.Event(ctx, "e", "c", time.Duration(i))
	}
	recs, dropped := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if dropped != 2 {
		t.Fatalf("dropped %d, want 2", dropped)
	}
	// Oldest-first snapshot: the two earliest events are gone.
	if recs[0].VirtStart != 2 || recs[3].VirtStart != 5 {
		t.Fatalf("snapshot window [%d, %d], want [2, 5]", recs[0].VirtStart, recs[3].VirtStart)
	}
}

func TestScopeVirtualTimestamps(t *testing.T) {
	clock := sim.NewClock()
	tr := NewTracer(8)
	sc := NewScope(tr, clock)

	clock.Advance(100 * time.Nanosecond)
	sp := sc.Start("TPM_Extend", "tpm")
	clock.Advance(250 * time.Nanosecond)
	sc.End(sp)

	recs, _ := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.VirtStart != 100 {
		t.Fatalf("virt start %d, want 100", r.VirtStart)
	}
	if r.VirtDur != 250 {
		t.Fatalf("virt dur %d, want 250", r.VirtDur)
	}
}

func TestScopeSwapCarriesAmbientContext(t *testing.T) {
	tr := NewTracer(8)
	sc := NewScope(tr, nil)
	parent := tr.StartSpan(tr.NewTrace(), "execute", "pipeline")

	prev := sc.Swap(parent.Context())
	if prev != (Context{}) {
		t.Fatalf("initial ambient context %+v", prev)
	}
	inner := sc.Start("slice", "sksm")
	sc.End(inner)
	sc.Swap(prev)
	parent.End()

	recs, _ := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Parent != parent.Context().Span {
		t.Fatalf("inner parent %d, want %d", recs[0].Parent, parent.Context().Span)
	}
	if sc.Current() != (Context{}) {
		t.Fatal("ambient context not restored")
	}
}

func TestRecordSpanAndEvent(t *testing.T) {
	tr := NewTracer(8)
	ctx := tr.NewTrace()
	start := time.Now().Add(-5 * time.Millisecond)
	tr.RecordSpan(ctx, "queue", "pipeline", start, 5*time.Millisecond, String("k", "v"))
	tr.Event(ctx, "preempt", "sksm", 42*time.Nanosecond, Int("cpu", 1))

	recs, _ := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	q := recs[0]
	if q.Kind != KindSpan || q.WallDur != (5*time.Millisecond).Nanoseconds() {
		t.Fatalf("queue record %+v", q)
	}
	e := recs[1]
	if e.Kind != KindEvent || e.VirtStart != 42 {
		t.Fatalf("event record %+v", e)
	}
	if e.Attrs[0].Val != "1" {
		t.Fatalf("Int attr rendered %q", e.Attrs[0].Val)
	}
}

func TestNewTraceIDsAreUnique(t *testing.T) {
	tr := NewTracer(8)
	a, b := tr.NewTrace(), tr.NewTrace()
	if a.Trace == b.Trace {
		t.Fatalf("duplicate trace IDs %d", a.Trace)
	}
}
