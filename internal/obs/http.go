package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Health is the readiness state behind /healthz. The zero value is
// healthy; Fail flips the endpoint to 503 with a reason (service
// shutdown, listener death).
type Health struct {
	down   atomic.Bool
	reason atomic.Value // string
}

// Fail marks the process unhealthy.
func (h *Health) Fail(reason string) {
	if h == nil {
		return
	}
	h.reason.Store(reason)
	h.down.Store(true)
}

// Ready marks the process healthy again.
func (h *Health) Ready() {
	if h == nil {
		return
	}
	h.down.Store(false)
}

// Healthy reports the current state.
func (h *Health) Healthy() bool { return h == nil || !h.down.Load() }

// Reason returns the failure reason ("" while healthy).
func (h *Health) Reason() string {
	if h == nil || !h.down.Load() {
		return ""
	}
	if r, ok := h.reason.Load().(string); ok {
		return r
	}
	return "unhealthy"
}

// Endpoint is one extra route a daemon mounts on its debug mux alongside
// the standard set — palservd adds /debug/profile and /debug/crashes this
// way. Desc is the one-line description the index page lists.
type Endpoint struct {
	Path    string
	Desc    string
	Handler http.Handler
}

// NewDebugMux assembles the operational endpoints every daemon in this
// repository exposes:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      200 "ok" until health.Fail, then 503 + reason
//	/debug/trace  the tracer's ring buffer as JSONL (?trace=<id> keeps one
//	              trace; ?format=chrome for a Chrome/Perfetto trace-event
//	              document)
//	/debug/pprof  the standard Go profiler endpoints
//
// plus any daemon-specific extras, which the index page lists after the
// standard ones. Any of reg, tracer, health may be nil; the endpoints
// degrade gracefully (empty exposition, always-healthy, empty trace).
func NewDebugMux(reg *Registry, tracer *Tracer, health *Health, extras ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health.Healthy() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "unavailable: "+health.Reason(), http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		recs, dropped := tracer.Snapshot()
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := ParseTraceID(q)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			recs = FilterTrace(recs, id)
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, recs)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Dropped", fmt.Sprint(dropped))
		_ = WriteJSONL(w, recs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extras {
		mux.Handle(e.Path, e.Handler)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "minimaltcb debug server\n\n"+
			"  /metrics       Prometheus text exposition\n"+
			"  /healthz       readiness\n"+
			"  /debug/trace   span recorder dump (JSONL; ?trace=<id>, ?format=chrome)\n"+
			"  /debug/pprof/  Go profiler\n")
		for _, e := range extras {
			fmt.Fprintf(w, "  %-14s %s\n", e.Path, e.Desc)
		}
	})
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	srv *http.Server
	l   net.Listener
}

// ListenAndServeDebug binds addr (e.g. "127.0.0.1:7081"; ":0" for an
// ephemeral port) and serves h on it in a background goroutine.
func ListenAndServeDebug(addr string, h http.Handler) (*DebugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{srv: &http.Server{Handler: h}, l: l}
	go func() { _ = ds.srv.Serve(l) }()
	return ds, nil
}

// Addr returns the bound address.
func (ds *DebugServer) Addr() string { return ds.l.Addr().String() }

// Close stops the listener and in-flight handlers.
func (ds *DebugServer) Close() error { return ds.srv.Close() }
