// Package prof is an exact virtual-cycle profiler and fault flight
// recorder for the PAL execution stack.
//
// The paper's core contribution is a cost breakdown — Table 1 attributes
// late-launch latency to individual hardware steps — and the tracing layer
// (internal/obs) extends that story to spans: SLAUNCH, slices, TPM
// commands, pipeline stages. What spans cannot answer is *where inside a
// PAL* the virtual cycles go. This package closes that gap: a collector
// hooked into the internal/cpu interpreter attributes every charged
// instruction cycle to (PAL image hash, program counter) — exactly, not by
// sampling, since the simulator retires one instruction at a time — and
// every TPM/SKSM service call (seal, unseal, extend, SYIELD, ...) to its
// caller site with the virtual time the platform charged for it. Basic
// blocks are recovered from the image by static analysis at snapshot time,
// so the hot loop stays two integer adds and a bounds check.
//
// Collection is split in two tiers to stay off the locks:
//
//   - CPUProfiler is one machine's collector. It is deliberately
//     lock-free: like the simulator itself it is single-threaded by
//     design, touched only under whatever lock serializes the machine
//     (palsvc's per-machine mutex). The interpreter hook
//     (cpu.Profiler) lands here. Works identically with the decoded-
//     instruction cache on or off: the hook observes retirement, not
//     fetch.
//   - Profiler is the thread-safe aggregation root shared by all
//     machines: it hands out CPUProfilers and accumulates per-tenant
//     totals (palsvc calls JobDone after each job).
//
// A snapshot (Profile, see profile.go) merges every collector and renders
// three artifacts: folded-stack text for flamegraph tooling, an annotated
// disassembly with per-line cycle/heat columns, and JSON for
// /debug/profile and cmd/tcbprof.
//
// Profiling off is free: the CPU pays one nil check per retired
// instruction, sksm installs nothing, and the PR 3 zero-allocation fast
// path is untouched (see the AllocsPerRun pins in internal/cpu).
package prof

import (
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// pcCount accumulates the exact cycle/retire counters for one instruction
// slot (one 32-bit word of the PAL's region).
type pcCount struct {
	cycles int64 // virtual ns charged to instructions at this pc
	count  int64 // retirements
}

// svcKey identifies one service-call site: which service, called from
// which instruction.
type svcKey struct {
	num    uint16
	caller uint32
}

// svcCount accumulates one call site's totals.
type svcCount struct {
	calls int64
	virt  int64 // virtual ns spent inside the service handler
}

// imageRec is one PAL image's raw counters inside a CPUProfiler.
type imageRec struct {
	hash   tpm.Digest
	image  pal.Image
	region int // largest region size seen, bounds the pcs slice

	pcs  []pcCount
	svcs map[svcKey]*svcCount

	launches, resumes         int64
	slices                    int64
	preempts, yields, faults  int64
	quoteCalls, quoteVirtNs   int64

	// Compiled-tier split: cycles and retirements attributed through
	// the threaded-code tier (cpu.BlockProfiler) rather than the
	// interpreter. Always a subset of the pcs totals.
	compiledNs, compiledCount int64
}

// CPUProfiler collects exact per-instruction attribution for one machine.
//
// It is single-threaded by design, like the simulated machine it observes:
// every method — including SnapshotInto — must be called under whatever
// lock serializes that machine (internal/palsvc holds its per-machine
// mutex across both execution and snapshots). It implements cpu.Profiler.
type CPUProfiler struct {
	images map[tpm.Digest]*imageRec
	cur    *imageRec
}

var (
	_ cpu.Profiler      = (*CPUProfiler)(nil)
	_ cpu.BlockProfiler = (*CPUProfiler)(nil)
)

// Enter begins attributing cycles to the image identified by hash —
// called by sksm's SLAUNCH microcode when the PAL starts executing.
// regionSize is the PAL's full memory region (code + data + stack); the
// program counter ranges over it, not just over the image bytes.
func (p *CPUProfiler) Enter(hash tpm.Digest, image pal.Image, regionSize int, resumed bool) {
	if p == nil {
		return
	}
	r := p.images[hash]
	if r == nil {
		r = &imageRec{hash: hash, image: image, svcs: make(map[svcKey]*svcCount)}
		p.images[hash] = r
	}
	if need := (regionSize + isa.WordSize - 1) / isa.WordSize; need > len(r.pcs) {
		grown := make([]pcCount, need)
		copy(grown, r.pcs)
		r.pcs = grown
		r.region = regionSize
	}
	if resumed {
		r.resumes++
	} else {
		r.launches++
	}
	p.cur = r
}

// Leave stops attribution — called on suspend, SFREE, or fault.
func (p *CPUProfiler) Leave() {
	if p != nil {
		p.cur = nil
	}
}

// RetireInstr is the interpreter hook (cpu.Profiler): one retired
// instruction at pc, charged cost. This is the per-instruction hot path —
// two adds and a bounds check.
func (p *CPUProfiler) RetireInstr(pc uint32, op isa.Opcode, cost time.Duration) {
	if p == nil || p.cur == nil {
		return
	}
	r := p.cur
	i := int(pc / isa.WordSize)
	if i >= len(r.pcs) {
		return
	}
	e := &r.pcs[i]
	e.cycles += int64(cost)
	e.count++
}

// RetireCompiled is the threaded-code tier's hook (cpu.BlockProfiler):
// identical attribution to RetireInstr — same (pc, op, cost) for the same
// instruction — plus the compiled-vs-interpreted cycle split tcbprof -top
// reports.
func (p *CPUProfiler) RetireCompiled(pc uint32, op isa.Opcode, cost time.Duration) {
	if p == nil || p.cur == nil {
		return
	}
	r := p.cur
	r.compiledNs += int64(cost)
	r.compiledCount++
	i := int(pc / isa.WordSize)
	if i >= len(r.pcs) {
		return
	}
	e := &r.pcs[i]
	e.cycles += int64(cost)
	e.count++
}

// SvcCall attributes one completed service call (the PAL ABI of
// internal/cpu: seal, unseal, extend, SYIELD, ...) to its caller site.
// virt is the virtual time the platform charged inside the handler.
func (p *CPUProfiler) SvcCall(num uint16, callerPC uint32, virt time.Duration) {
	if p == nil || p.cur == nil {
		return
	}
	k := svcKey{num: num, caller: callerPC}
	c := p.cur.svcs[k]
	if c == nil {
		c = &svcCount{}
		p.cur.svcs[k] = c
	}
	c.calls++
	c.virt += int64(virt)
}

// NoteSlice records how one scheduling slice of the image ended.
func (p *CPUProfiler) NoteSlice(hash tpm.Digest, stop cpu.StopReason, faulted bool) {
	if p == nil {
		return
	}
	r := p.images[hash]
	if r == nil {
		return
	}
	r.slices++
	switch {
	case faulted:
		r.faults++
	case stop == cpu.StopPreempted:
		r.preempts++
	case stop == cpu.StopYield:
		r.yields++
	}
}

// NoteQuote attributes a post-exit sePCR quote's virtual time to the
// image. Quotes are issued by untrusted code after the PAL exits, so they
// have no caller site inside the PAL.
func (p *CPUProfiler) NoteQuote(hash tpm.Digest, virt time.Duration) {
	if p == nil {
		return
	}
	r := p.images[hash]
	if r == nil {
		return
	}
	r.quoteCalls++
	r.quoteVirtNs += int64(virt)
}

// HotPCs returns the image's top-n instruction slots by cycles — the
// partial profile a crash bundle embeds.
func (p *CPUProfiler) HotPCs(hash tpm.Digest, n int) []PCSample {
	if p == nil {
		return nil
	}
	r := p.images[hash]
	if r == nil {
		return nil
	}
	var out []PCSample
	for i := range r.pcs {
		if r.pcs[i].count > 0 {
			out = append(out, PCSample{
				PC:     uint32(i * isa.WordSize),
				Cycles: r.pcs[i].cycles,
				Count:  r.pcs[i].count,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// SnapshotInto merges this collector's raw counters into p, computing the
// sparse per-PC samples and service-call sites. Like every CPUProfiler
// method it must run under the machine's serialization.
func (c *CPUProfiler) SnapshotInto(p *Profile) {
	if c == nil || p == nil {
		return
	}
	for _, r := range c.images {
		ip := p.imageFor(hex.EncodeToString(r.hash[:]), r.image, r.region)
		ip.Launches += r.launches
		ip.Resumes += r.resumes
		ip.Slices += r.slices
		ip.Preempts += r.preempts
		ip.Yields += r.yields
		ip.Faults += r.faults
		ip.QuoteCalls += r.quoteCalls
		ip.QuoteVirtNs += r.quoteVirtNs
		ip.CompiledCyclesNs += r.compiledNs
		ip.CompiledRetired += r.compiledCount
		for i := range r.pcs {
			if r.pcs[i].count == 0 {
				continue
			}
			ip.addPC(PCSample{
				PC:     uint32(i * isa.WordSize),
				Cycles: r.pcs[i].cycles,
				Count:  r.pcs[i].count,
			})
		}
		for k, v := range r.svcs {
			ip.addSvc(SvcSample{
				Num:      k.num,
				Name:     SvcName(k.num),
				CallerPC: int64(k.caller),
				Calls:    v.calls,
				VirtNs:   v.virt,
			})
		}
	}
}

// SvcName names the well-known PAL ABI services for reports; unknown
// numbers render as svcN.
func SvcName(num uint16) string {
	switch num {
	case cpu.SvcNumExit:
		return "exit"
	case cpu.SvcNumYield:
		return "SYIELD"
	case cpu.SvcNumExtend:
		return "extend"
	case cpu.SvcNumSeal:
		return "seal"
	case cpu.SvcNumUnseal:
		return "unseal"
	case cpu.SvcNumRandom:
		return "random"
	case cpu.SvcNumOutput:
		return "output"
	case cpu.SvcNumInput:
		return "input"
	case cpu.SvcNumGetTime:
		return "gettime"
	}
	return "svc" + itoa(int(num))
}

// itoa avoids strconv for this one cold call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 && i > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// tenantStats is one tenant's accumulated totals inside the Profiler.
type tenantStats struct {
	jobs, faults, cycles int64
	images               map[string]struct{}
}

// JobInfo identifies the job whose PAL a machine is currently executing.
// The service sets it on the sksm.Manager (under the machine lock) so
// crash bundles carry the tenant and trace that hit the fault.
type JobInfo struct {
	Tenant  string
	Trace   obs.TraceID
	Machine int
}

// Profiler is the aggregation root: it owns the per-tenant ledger and
// hands out one CPUProfiler per machine. All methods are thread-safe and
// nil-receiver-safe (a nil *Profiler is profiling off).
type Profiler struct {
	mu      sync.Mutex
	tenants map[string]*tenantStats
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{tenants: make(map[string]*tenantStats)}
}

// NewCPU returns a fresh per-machine collector. Nil-safe: a nil profiler
// hands out a nil collector, which no-ops everywhere.
func (p *Profiler) NewCPU() *CPUProfiler {
	if p == nil {
		return nil
	}
	return &CPUProfiler{images: make(map[tpm.Digest]*imageRec)}
}

// JobDone accrues one finished job to its tenant: cycles is the job's
// execute-stage virtual time (instructions plus the TPM commands the PAL
// issued), faulted marks PAL faults.
func (p *Profiler) JobDone(tenant string, hash tpm.Digest, cycles time.Duration, faulted bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	t := p.tenants[tenant]
	if t == nil {
		t = &tenantStats{images: make(map[string]struct{})}
		p.tenants[tenant] = t
	}
	t.jobs++
	if faulted {
		t.faults++
	}
	t.cycles += int64(cycles)
	t.images[hex.EncodeToString(hash[:])] = struct{}{}
	p.mu.Unlock()
}

// TenantsInto copies the per-tenant ledger into a snapshot.
func (p *Profiler) TenantsInto(out *Profile) {
	if p == nil || out == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, t := range p.tenants {
		images := make([]string, 0, len(t.images))
		for h := range t.images {
			images = append(images, h)
		}
		sort.Strings(images)
		out.Tenants = append(out.Tenants, TenantStats{
			Name:     name,
			Jobs:     t.jobs,
			Faults:   t.faults,
			CyclesNs: t.cycles,
			Images:   images,
		})
	}
}
