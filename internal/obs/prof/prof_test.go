package prof

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// loopSource: entry block, a loop block, and an exit block — three leaders
// plus the synthetic beyond-image one.
const loopSource = `
	ldi	r0, 0
	ldi	r1, 3
loop:	addi	r0, 1
	cmp	r0, r1
	jnz	loop
	ldi	r0, 0
	svc	0
`

func testImage(t *testing.T) (pal.Image, tpm.Digest) {
	t.Helper()
	im, err := pal.Build(loopSource)
	if err != nil {
		t.Fatal(err)
	}
	return im, tpm.Measure(im.Bytes)
}

func TestLeadersAndBlockStart(t *testing.T) {
	im, _ := testImage(t)
	region := len(im.Bytes) + 64
	ls := leaders(im.Bytes, im.Entry, region)
	if len(ls) == 0 {
		t.Fatal("no leaders")
	}
	// Entry is a leader; the jnz target (loop) and fall-through are leaders;
	// the synthetic beyond-image leader exists because region > image.
	want := map[uint32]bool{
		uint32(im.Entry):                  true, // entry
		uint32(im.Entry) + 2*isa.WordSize: true, // loop target
		uint32(im.Entry) + 5*isa.WordSize: true, // after jnz
		uint32(len(im.Bytes)):             true, // beyond-image
	}
	got := map[uint32]bool{}
	for _, l := range ls {
		got[l] = true
	}
	for l := range want {
		if !got[l] {
			t.Fatalf("leader 0x%04x missing from %v", l, ls)
		}
	}
	// A PC inside the loop maps to the loop leader.
	loop := uint32(im.Entry) + 2*isa.WordSize
	if s := blockStart(ls, loop+isa.WordSize); s != loop {
		t.Fatalf("blockStart(loop+4) = 0x%04x, want 0x%04x", s, loop)
	}
	// A beyond-image PC maps to the synthetic leader.
	if s := blockStart(ls, uint32(len(im.Bytes))+8); s != uint32(len(im.Bytes)) {
		t.Fatalf("beyond-image blockStart = 0x%04x", s)
	}
	// All leaders are inside the region.
	for _, l := range ls {
		if int(l) >= region {
			t.Fatalf("leader 0x%04x outside region %d", l, region)
		}
	}
}

func TestCPUProfilerCollectAndSnapshot(t *testing.T) {
	im, hash := testImage(t)
	region := len(im.Bytes) + 64
	p := New()
	c := p.NewCPU()

	c.Enter(hash, im, region, false)
	pc := uint32(im.Entry)
	c.RetireInstr(pc, isa.OpLdi, 10*time.Nanosecond)
	c.RetireInstr(pc, isa.OpLdi, 10*time.Nanosecond)
	c.RetireInstr(pc+isa.WordSize, isa.OpLdi, 10*time.Nanosecond)
	c.SvcCall(cpu.SvcNumOutput, pc, 500*time.Nanosecond)
	c.SvcCall(cpu.SvcNumOutput, pc, 250*time.Nanosecond)
	c.NoteSlice(hash, cpu.StopYield, false)
	c.Leave()
	// Retirements while no PAL is entered are dropped, not misattributed.
	c.RetireInstr(pc, isa.OpLdi, 10*time.Nanosecond)
	c.Enter(hash, im, region, true) // resume
	c.NoteSlice(hash, cpu.StopHalt, false)
	c.Leave()
	c.NoteQuote(hash, 2*time.Microsecond)

	prof := NewProfile()
	c.SnapshotInto(prof)
	p.JobDone("alice", hash, 30*time.Nanosecond, false)
	p.TenantsInto(prof)
	prof.Finish()

	if len(prof.Images) != 1 {
		t.Fatalf("images %d", len(prof.Images))
	}
	ip := prof.Images[0]
	if ip.Hash != hex.EncodeToString(hashBytes(hash)) {
		t.Fatalf("hash %q", ip.Hash)
	}
	if ip.Instructions != 3 || ip.CyclesNs != 30 {
		t.Fatalf("instrs=%d cycles=%d, want 3/30", ip.Instructions, ip.CyclesNs)
	}
	if ip.Launches != 1 || ip.Resumes != 1 || ip.Slices != 2 || ip.Yields != 1 {
		t.Fatalf("launches=%d resumes=%d slices=%d yields=%d", ip.Launches, ip.Resumes, ip.Slices, ip.Yields)
	}
	if ip.QuoteCalls != 1 || ip.QuoteVirtNs != 2000 {
		t.Fatalf("quotes %d/%d", ip.QuoteCalls, ip.QuoteVirtNs)
	}
	if len(ip.PCs) != 2 || ip.PCs[0].Count != 2 || ip.PCs[0].Cycles != 20 {
		t.Fatalf("pcs %+v", ip.PCs)
	}
	if len(ip.Svcs) != 1 || ip.Svcs[0].Name != "output" || ip.Svcs[0].Calls != 2 || ip.Svcs[0].VirtNs != 750 {
		t.Fatalf("svcs %+v", ip.Svcs)
	}
	if len(ip.Blocks) == 0 {
		t.Fatal("no blocks recovered")
	}
	if len(prof.Tenants) != 1 || prof.Tenants[0].Name != "alice" || prof.Tenants[0].Jobs != 1 {
		t.Fatalf("tenants %+v", prof.Tenants)
	}
	if len(prof.Tenants[0].Images) != 1 || prof.Tenants[0].Images[0] != ip.Hash {
		t.Fatalf("tenant images %v", prof.Tenants[0].Images)
	}
}

func hashBytes(h tpm.Digest) []byte { return h[:] }

// TestSnapshotMergesCollectors: two machines that ran the same image merge
// additively into one ImageProfile.
func TestSnapshotMergesCollectors(t *testing.T) {
	im, hash := testImage(t)
	p := New()
	a, b := p.NewCPU(), p.NewCPU()
	for _, c := range []*CPUProfiler{a, b} {
		c.Enter(hash, im, len(im.Bytes), false)
		c.RetireInstr(uint32(im.Entry), isa.OpLdi, 7*time.Nanosecond)
		c.Leave()
	}
	prof := NewProfile()
	a.SnapshotInto(prof)
	b.SnapshotInto(prof)
	prof.Finish()
	if len(prof.Images) != 1 {
		t.Fatalf("images %d", len(prof.Images))
	}
	if prof.Images[0].Instructions != 2 || prof.Images[0].CyclesNs != 14 {
		t.Fatalf("merged %d instrs / %d ns", prof.Images[0].Instructions, prof.Images[0].CyclesNs)
	}
	if prof.Images[0].Launches != 2 {
		t.Fatalf("merged launches %d", prof.Images[0].Launches)
	}
}

func TestProfileJSONRoundTripAndArtifacts(t *testing.T) {
	im, hash := testImage(t)
	p := New()
	c := p.NewCPU()
	c.Enter(hash, im, len(im.Bytes)+32, false)
	for i := 0; i < 4; i++ {
		c.RetireInstr(uint32(im.Entry)+2*isa.WordSize, isa.OpAddi, 10*time.Nanosecond)
	}
	c.RetireInstr(uint32(im.Entry), isa.OpLdi, 10*time.Nanosecond)
	c.SvcCall(cpu.SvcNumSeal, uint32(im.Entry), time.Microsecond)
	c.Leave()
	prof := NewProfile()
	c.SnapshotInto(prof)
	prof.Finish()

	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back.Finish()
	if len(back.Images) != 1 || back.Images[0].Instructions != 5 {
		t.Fatalf("round trip lost samples: %+v", back.Images)
	}
	if !bytes.Equal(back.Images[0].Code, im.Bytes) {
		t.Fatal("round trip lost the code bytes")
	}

	// Folded stacks: the hot loop line carries its block and pc frames, the
	// seal call its svc frame.
	var folded bytes.Buffer
	if err := back.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	fs := folded.String()
	loop := uint32(im.Entry) + 2*isa.WordSize
	short := back.Images[0].ShortHash()
	for _, want := range []string{
		"pal-" + short + ";blk_0x",
		";pc_0x", ";svc_seal 1000",
	} {
		if !strings.Contains(fs, want) {
			t.Fatalf("folded output missing %q:\n%s", want, fs)
		}
	}
	wantLoop := "blk_0x0" // loop block frame appears
	_ = wantLoop
	if !strings.Contains(fs, "pc_0x"+hex4(loop)) {
		t.Fatalf("folded output missing loop pc 0x%04x:\n%s", loop, fs)
	}

	// Annotated disassembly: instruction text, counts, and heat bars.
	var ann bytes.Buffer
	if err := back.Images[0].WriteAnnotated(&ann); err != nil {
		t.Fatal(err)
	}
	as := ann.String()
	for _, want := range []string{"addi", "40", "####", "seal", "service calls:"} {
		if !strings.Contains(as, want) {
			t.Fatalf("annotated output missing %q:\n%s", want, as)
		}
	}

	// Top blocks: the loop block dominates.
	var top bytes.Buffer
	back.WriteTopBlocks(&top, 3)
	if !strings.Contains(top.String(), "pal-"+short) {
		t.Fatalf("top blocks missing image:\n%s", top.String())
	}
}

func hex4(v uint32) string {
	const digits = "0123456789abcdef"
	return string([]byte{digits[v>>12&0xf], digits[v>>8&0xf], digits[v>>4&0xf], digits[v&0xf]})
}

func TestSvcName(t *testing.T) {
	cases := map[uint16]string{
		cpu.SvcNumExit: "exit", cpu.SvcNumYield: "SYIELD", cpu.SvcNumSeal: "seal",
		cpu.SvcNumUnseal: "unseal", cpu.SvcNumOutput: "output", 99: "svc99",
	}
	for num, want := range cases {
		if got := SvcName(num); got != want {
			t.Fatalf("SvcName(%d) = %q, want %q", num, got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profiler
	c := p.NewCPU()
	if c != nil {
		t.Fatal("nil profiler handed out a collector")
	}
	im, hash := testImage(t)
	c.Enter(hash, im, 64, false)
	c.RetireInstr(0, isa.OpNop, time.Nanosecond)
	c.SvcCall(0, 0, 0)
	c.NoteSlice(hash, cpu.StopHalt, false)
	c.NoteQuote(hash, 0)
	c.Leave()
	if got := c.HotPCs(hash, 4); got != nil {
		t.Fatalf("nil collector returned samples %v", got)
	}
	c.SnapshotInto(NewProfile())
	p.JobDone("x", hash, 0, false)
	p.TenantsInto(NewProfile())

	var r *FlightRecorder
	if id := r.Record(&CrashBundle{}); id != 0 {
		t.Fatalf("nil recorder recorded id %d", id)
	}
	if r.Bundles() != nil || r.Err() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestFlightRecorderPersistAndRead(t *testing.T) {
	dir := t.TempDir()
	r := NewFlightRecorder(filepath.Join(dir, "crashes"), nil)
	id1 := r.Record(&CrashBundle{Reason: "fault", Tenant: "alice", Error: "divide by zero"})
	id2 := r.Record(&CrashBundle{Reason: "skill", Tenant: "bob"})
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids %d %d", id1, id2)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	got := r.Bundles()
	if len(got) != 2 || got[0].Reason != "fault" || got[1].Reason != "skill" {
		t.Fatalf("bundles %+v", got)
	}
	if got[0].WallNs == 0 {
		t.Fatal("bundle not wall-stamped")
	}

	f, err := os.Open(filepath.Join(dir, "crashes", "crashes.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadCrashes(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Tenant != "alice" || back[0].Error != "divide by zero" {
		t.Fatalf("read back %+v", back)
	}

	var buf bytes.Buffer
	WriteCrash(&buf, back[0])
	for _, want := range []string{"crash #1", "reason=fault", `tenant="alice"`, "divide by zero"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("crash render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestFlightRecorderRingLimit(t *testing.T) {
	r := NewFlightRecorder("", nil)
	for i := 0; i < defaultBundleLimit+5; i++ {
		r.Record(&CrashBundle{Reason: "fault"})
	}
	got := r.Bundles()
	if len(got) != defaultBundleLimit {
		t.Fatalf("retained %d bundles, want %d", len(got), defaultBundleLimit)
	}
	// Oldest were evicted: the first retained bundle is number 6.
	if got[0].ID != 6 {
		t.Fatalf("oldest retained id %d, want 6", got[0].ID)
	}
}

func TestProfileHandler(t *testing.T) {
	im, hash := testImage(t)
	build := func() *Profile {
		p := New()
		c := p.NewCPU()
		c.Enter(hash, im, len(im.Bytes), false)
		c.RetireInstr(uint32(im.Entry), isa.OpLdi, 10*time.Nanosecond)
		c.Leave()
		out := NewProfile()
		c.SnapshotInto(out)
		out.Finish()
		return out
	}

	h := Handler(build)
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/profile", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"images"`) {
		t.Fatalf("json: %d %s", rec.Code, rec.Body.String())
	}
	if p, err := ReadProfile(rec.Body); err != nil || len(p.Images) != 1 {
		t.Fatalf("served JSON unparsable: %v", err)
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/profile?format=folded", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), ";pc_0x") {
		t.Fatalf("folded: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/profile?format=annotated", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ldi") {
		t.Fatalf("annotated: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/profile?format=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bogus format: %d", rec.Code)
	}

	off := Handler(func() *Profile { return nil })
	rec = httptest.NewRecorder()
	off(rec, httptest.NewRequest("GET", "/debug/profile", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled: %d", rec.Code)
	}
}

func TestCrashHandler(t *testing.T) {
	r := NewFlightRecorder("", nil)
	r.Record(&CrashBundle{Reason: "fault", Tenant: "alice"})
	r.Record(&CrashBundle{Reason: "skill", Tenant: "bob"})

	h := r.Handler()
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/crashes", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var back []*CrashBundle
	if err := json.Unmarshal(rec.Body.Bytes(), &back); err != nil || len(back) != 2 {
		t.Fatalf("array parse: %v (%d bundles)", err, len(back))
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/crashes?id=2", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"skill"`) || strings.Contains(rec.Body.String(), `"fault"`) {
		t.Fatalf("id filter: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/crashes?id=99", nil))
	if rec.Code != 404 {
		t.Fatalf("missing id: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/crashes?format=text", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "crash #1") {
		t.Fatalf("text: %d %s", rec.Code, rec.Body.String())
	}

	var off *FlightRecorder
	rec = httptest.NewRecorder()
	off.Handler()(rec, httptest.NewRequest("GET", "/debug/crashes", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled: %d", rec.Code)
	}
}
