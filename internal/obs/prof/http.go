package prof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// HTTP faces of the profiler and flight recorder, mounted as extra
// endpoints on the obs debug mux (obs.Endpoint).

// Handler serves the profile at /debug/profile. snapshot is called per
// request (palsvc.Service.Profile); a nil result means profiling is off.
//
//	/debug/profile                    JSON (the tcbprof input format)
//	/debug/profile?format=folded      folded stacks (flamegraph.pl input)
//	/debug/profile?format=annotated   annotated disassembly
//	    [&image=<hash prefix>]        restrict annotation to one image
func Handler(snapshot func() *Profile) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p := snapshot()
		if p == nil {
			http.Error(w, "profiling disabled", http.StatusNotFound)
			return
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			_ = p.WriteJSON(w)
		case "folded":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = p.WriteFolded(w)
		case "annotated":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			prefix := r.URL.Query().Get("image")
			n := 0
			for _, ip := range p.Images {
				if prefix != "" && !strings.HasPrefix(ip.Hash, prefix) {
					continue
				}
				if n > 0 {
					fmt.Fprintln(w)
				}
				_ = ip.WriteAnnotated(w)
				n++
			}
			if n == 0 {
				fmt.Fprintf(w, "no image matches %q\n", prefix)
			}
		default:
			http.Error(w, "unknown format (want json, folded, or annotated)", http.StatusBadRequest)
		}
	}
}

// Handler serves the retained crash bundles at /debug/crashes: a JSON
// array, or one bundle with ?id=N; ?format=text renders the human view.
func (r *FlightRecorder) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		bundles := r.Bundles()
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			var match []*CrashBundle
			for _, b := range bundles {
				if b.ID == id {
					match = append(match, b)
				}
			}
			if len(match) == 0 {
				http.Error(w, "no such crash", http.StatusNotFound)
				return
			}
			bundles = match
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, b := range bundles {
				WriteCrash(w, b)
			}
			if err := r.Err(); err != nil {
				fmt.Fprintf(w, "persistence error: %v\n", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := r.Err(); err != nil {
			w.Header().Set("X-Crash-Persist-Error", err.Error())
		}
		writeJSONArray(w, bundles)
	}
}

// writeJSONArray streams bundles as a JSON array, one bundle per line for
// greppability.
func writeJSONArray(w http.ResponseWriter, bundles []*CrashBundle) {
	fmt.Fprint(w, "[")
	for i, b := range bundles {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, "\n")
		line, err := json.Marshal(b)
		if err != nil {
			continue
		}
		_, _ = w.Write(line)
	}
	fmt.Fprint(w, "\n]\n")
}
