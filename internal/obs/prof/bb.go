package prof

import (
	"encoding/binary"
	"sort"

	"minimaltcb/internal/isa"
)

// Basic-block recovery. The runtime collector records plain per-PC
// counters so the interpreter hot path stays trivial; block structure is
// a static property of the image bytes and is recomputed here at snapshot
// time. A leader is the entry point, any branch/call target, or the
// instruction following a control transfer; a block spans from its leader
// to the next one.

// leaders returns the sorted, deduplicated block-leader offsets of the
// code image. regionSize bounds the PC space: PALs can execute out of
// their data/stack area too (self-modifying or generated code), so one
// synthetic leader at the image end catches every beyond-image PC.
func leaders(code []byte, entry uint16, regionSize int) []uint32 {
	set := map[uint32]struct{}{uint32(entry): {}}
	limit := uint32(len(code))
	for off := 0; off+isa.WordSize <= len(code); off += isa.WordSize {
		in, err := isa.Decode(binary.LittleEndian.Uint32(code[off:]))
		if err != nil {
			continue // data word
		}
		next := uint32(off + isa.WordSize)
		switch in.Op {
		case isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJc, isa.OpJnc, isa.OpJn, isa.OpCall:
			if t := uint32(in.Imm); t < limit {
				set[t] = struct{}{}
			}
			set[next] = struct{}{}
		case isa.OpJmpr, isa.OpRet, isa.OpHalt:
			set[next] = struct{}{}
		}
	}
	if regionSize > len(code) {
		// Everything past the measured image is one "beyond-image" block.
		set[limit] = struct{}{}
	}
	out := make([]uint32, 0, len(set))
	for l := range set {
		if int(l) < regionSize {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockStart maps a PC to its containing block's leader: the greatest
// leader ≤ pc. ls must be sorted ascending and non-empty for meaningful
// answers; a pc before the first leader maps to the first leader.
func blockStart(ls []uint32, pc uint32) uint32 {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] > pc })
	if i == 0 {
		if len(ls) == 0 {
			return 0
		}
		return ls[0]
	}
	return ls[i-1]
}
