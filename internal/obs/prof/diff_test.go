package prof_test

// Full-machine tests: the profiler must be a pure observer. Running the
// same workload with collection on and off must produce bit-identical
// outputs, virtual clock values, and trace records; and a forced PAL fault
// must leave a complete crash bundle behind.

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/obs/prof"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sksm"
	"minimaltcb/internal/tpm"
)

// workSource yields five times (exercising suspend/resume and the SYIELD
// service site), then outputs and exits — enough surface to notice any
// profiler-induced perturbation.
const workSource = `
	ldi	r0, 0
	ldi	r1, 5
loop:	addi	r0, 1
	svc	1
	cmp	r0, r1
	jnz	loop
	ldi	r0, msg
	ldi	r1, 4
	svc	6
	ldi	r0, 0
	svc	0
msg:	.ascii "done"
stack:	.space 64
`

func newTracedManager(t *testing.T) (*sksm.Manager, *obs.Tracer) {
	t.Helper()
	p := platform.Recommended(platform.HPdc5750(), 2)
	p.KeyBits = 1024
	p.Seed = 42
	p.NumCPUs = 2
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := sksm.NewManager(osker.NewKernel(m))
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(0)
	mg.Trace = obs.NewScope(tracer, m.Clock)
	return mg, tracer
}

type runResult struct {
	output []byte
	exit   uint32
	virt   time.Duration
	recs   []obs.Record
}

// runWorkload drives workSource to completion plus a post-exit quote on a
// fresh platform, with or without a profiler collector attached.
func runWorkload(t *testing.T, profiled bool) (runResult, *prof.CPUProfiler) {
	t.Helper()
	mg, tracer := newTracedManager(t)
	var collector *prof.CPUProfiler
	if profiled {
		collector = prof.New().NewCPU()
		mg.Prof = collector
	}
	im := pal.MustBuild(workSource)
	// Pre-warm the global measurement memo so both runs record the same
	// measure_cache trace attribute regardless of test order.
	tpm.MeasureMemoized(im.Bytes)
	s, err := mg.NewSECB(im, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	core := mg.Kernel.Machine.CPUs[1]
	if err := mg.RunToCompletion(core, s); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.QuoteAfterExit(s, []byte("nonce")); err != nil {
		t.Fatal(err)
	}
	if err := mg.Release(s); err != nil {
		t.Fatal(err)
	}
	recs, _ := tracer.Snapshot()
	// Wall-clock fields are genuinely nondeterministic; everything else —
	// names, categories, attributes, virtual timestamps, IDs — must match
	// bit for bit.
	for i := range recs {
		recs[i].WallStart, recs[i].WallDur = 0, 0
	}
	return runResult{
		output: s.Output,
		exit:   s.ExitStatus,
		virt:   mg.Kernel.Machine.Clock.Now(),
		recs:   recs,
	}, collector
}

func TestProfilerChangesNothingObservable(t *testing.T) {
	off, _ := runWorkload(t, false)
	on, collector := runWorkload(t, true)

	if string(on.output) != string(off.output) || on.exit != off.exit {
		t.Fatalf("PAL results diverge: %q/%d vs %q/%d", on.output, on.exit, off.output, off.exit)
	}
	if on.virt != off.virt {
		t.Fatalf("virtual clocks diverge: %v (profiled) vs %v (off)", on.virt, off.virt)
	}
	if len(on.recs) != len(off.recs) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(on.recs), len(off.recs))
	}
	for i := range on.recs {
		if !reflect.DeepEqual(on.recs[i], off.recs[i]) {
			t.Fatalf("trace record %d diverges:\n  profiled %+v\n  off      %+v", i, on.recs[i], off.recs[i])
		}
	}

	// And the profiled run actually collected: the full picture of the
	// workload — launch, five resumes, the SYIELD/output/exit call sites,
	// and the post-exit quote.
	p := prof.NewProfile()
	collector.SnapshotInto(p)
	p.Finish()
	if len(p.Images) != 1 {
		t.Fatalf("images %d", len(p.Images))
	}
	ip := p.Images[0]
	if ip.Launches != 1 || ip.Resumes != 5 || ip.Slices != 6 || ip.Yields != 5 {
		t.Fatalf("launches=%d resumes=%d slices=%d yields=%d", ip.Launches, ip.Resumes, ip.Slices, ip.Yields)
	}
	if ip.Instructions == 0 || ip.CyclesNs == 0 {
		t.Fatal("no instruction attribution")
	}
	if ip.QuoteCalls != 1 || ip.QuoteVirtNs == 0 {
		t.Fatalf("quote attribution %d/%d", ip.QuoteCalls, ip.QuoteVirtNs)
	}
	svcs := map[string]int64{}
	for _, s := range ip.Svcs {
		svcs[s.Name] += s.Calls
	}
	if svcs["SYIELD"] != 5 || svcs["output"] != 1 || svcs["exit"] != 1 {
		t.Fatalf("service sites %v", svcs)
	}
	// Every service caller site is a real svc instruction's address.
	for _, s := range ip.Svcs {
		if s.CallerPC < 0 || int(s.CallerPC)%isa.WordSize != 0 {
			t.Fatalf("bad caller pc %d", s.CallerPC)
		}
	}
}

// faultSource divides by zero three instructions in.
const faultSource = `
	ldi	r0, 1
	ldi	r1, 0
	divu	r0, r1
`

func TestFaultProducesCrashBundle(t *testing.T) {
	mg, tracer := newTracedManager(t)
	dir := t.TempDir()
	collector := prof.New().NewCPU()
	mg.Prof = collector
	mg.Flight = prof.NewFlightRecorder(dir, tracer)
	mg.Job = prof.JobInfo{Tenant: "alice", Trace: obs.TraceID{Lo: 7}, Machine: 3}

	im := pal.MustBuild(faultSource)
	s, err := mg.NewSECB(im, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s); err == nil {
		t.Fatal("faulting PAL ran clean")
	}

	bundles := mg.Flight.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("%d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if s.CrashID != b.ID {
		t.Fatalf("SECB crash id %d, bundle id %d", s.CrashID, b.ID)
	}
	if b.Reason != "fault" || !strings.Contains(b.Error, "divide by zero") {
		t.Fatalf("reason %q error %q", b.Reason, b.Error)
	}
	if b.Tenant != "alice" || b.Trace != (obs.TraceID{Lo: 7}) || b.Machine != 3 || b.CPU != 1 {
		t.Fatalf("job identity %q/%d/%d/%d", b.Tenant, b.Trace, b.Machine, b.CPU)
	}
	if b.Image != hex.EncodeToString(s.Measurement[:]) {
		t.Fatalf("image %q", b.Image)
	}
	// The saved registers are the fault-time state: PC still on the divu.
	wantPC := uint32(im.Entry) + 2*isa.WordSize
	if b.Regs.PC != wantPC {
		t.Fatalf("saved pc 0x%04x, want 0x%04x (the divu)", b.Regs.PC, wantPC)
	}
	if b.Regs.Regs[0] != 1 || b.Regs.Regs[1] != 0 {
		t.Fatalf("saved regs %v", b.Regs.Regs)
	}
	// sePCR bank occupancy: the faulted PAL still holds its register.
	if b.SePCR < 0 || len(b.SePCRBank) != mg.Kernel.Machine.TPM().NumSePCRs() {
		t.Fatalf("sepcr %d bank %v", b.SePCR, b.SePCRBank)
	}
	// Memory map: the suspended PAL's pages are secluded (NONE), visible
	// both in the platform-wide counts and the per-page region detail.
	if b.Memory.PagesNone == 0 || len(b.Memory.RegionPages) == 0 {
		t.Fatalf("memory map %+v", b.Memory)
	}
	for _, pg := range b.Memory.RegionPages {
		if pg.State != "NONE" {
			t.Fatalf("region page %d state %q, want NONE", pg.Page, pg.State)
		}
	}
	if len(b.HotPCs) == 0 {
		t.Fatal("no partial profile in the bundle")
	}
	if len(b.TraceTail) == 0 {
		t.Fatal("no trace tail in the bundle")
	}

	// SKILL after the fault must not record the incident twice.
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
	if n := len(mg.Flight.Bundles()); n != 1 {
		t.Fatalf("%d bundles after SKILL, want 1 (dedup by CrashID)", n)
	}

	// The bundle was persisted and round-trips through the jsonl reader.
	f, err := os.Open(filepath.Join(dir, "crashes.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := prof.ReadCrashes(f)
	if err != nil || len(back) != 1 {
		t.Fatalf("persisted read: %v (%d)", err, len(back))
	}
	if back[0].Regs.PC != wantPC || back[0].Tenant != "alice" {
		t.Fatalf("persisted bundle lost fields: %+v", back[0])
	}
}

func TestSkillOfHealthyPALRecordsViolationBundle(t *testing.T) {
	mg, tracer := newTracedManager(t)
	mg.Flight = prof.NewFlightRecorder("", tracer)
	im := pal.MustBuild("svc 1\nldi r0, 0\nsvc 0")
	s, err := mg.NewSECB(im, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatal(err)
	}
	// The OS declares the suspended (healthy) PAL misbehaving.
	if err := mg.SKILL(s); err != nil {
		t.Fatal(err)
	}
	bundles := mg.Flight.Bundles()
	if len(bundles) != 1 || bundles[0].Reason != "skill" {
		t.Fatalf("bundles %+v", bundles)
	}
	if bundles[0].Error != "" {
		t.Fatalf("violation bundle has error %q", bundles[0].Error)
	}
	if s.CrashID != bundles[0].ID {
		t.Fatal("SECB not stamped with the bundle id")
	}
}

// TestProfilerOffRecordsNothing guards the off-switch: a manager without a
// collector must leave no attribution anywhere.
func TestProfilerOffRecordsNothing(t *testing.T) {
	mg, _ := newTracedManager(t)
	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	s, err := mg.NewSECB(im, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RunSlice(mg.Kernel.Machine.CPUs[1], s); err != nil {
		t.Fatal(err)
	}
	if got := mg.Prof.HotPCs(tpm.Measure(im.Bytes), 4); got != nil {
		t.Fatalf("nil collector produced samples %v", got)
	}
	var _ cpu.StopReason // keep the cpu import honest about its purpose
}
