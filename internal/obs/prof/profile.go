package prof

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"minimaltcb/internal/isa"
	"minimaltcb/internal/pal"
)

// Profile is a merged snapshot of every collector plus the per-tenant
// ledger — the JSON document /debug/profile serves and cmd/tcbprof reads.
// The schema is documented in docs/PROFILING.md.
type Profile struct {
	Images  []*ImageProfile `json:"images"`
	Tenants []TenantStats   `json:"tenants,omitempty"`
	// Machines carries per-machine execution-engine statistics (decode
	// cache, threaded-code tier) — state of the simulator, not of any
	// one image, so it sits beside the attribution data.
	Machines []MachineExecStats `json:"machines,omitempty"`

	byHash map[string]*ImageProfile
}

// MachineExecStats is one machine's execution-engine counters, summed
// over its CPUs: the decoded-instruction cache and the threaded-code
// (block compile) tier.
type MachineExecStats struct {
	Machine int `json:"machine"`

	DecodeHits             int64 `json:"decode_hits"`
	DecodeMisses           int64 `json:"decode_misses"`
	DecodeBoundarySkips    int64 `json:"decode_boundary_skips,omitempty"`
	DecodeVersionEvictions int64 `json:"decode_version_evictions,omitempty"`

	BlocksCompiled     int64 `json:"blocks_compiled"`
	BlockExecs         int64 `json:"block_execs"`
	CompiledInstrs     int64 `json:"compiled_instrs"`
	BlockBailouts      int64 `json:"block_bailouts,omitempty"`
	BlockInvalidations int64 `json:"block_invalidations,omitempty"`
}

// ImageProfile is one PAL image's merged attribution. Code carries the
// full SLB bytes (base64 in JSON) so tcbprof can disassemble offline
// without the original source.
type ImageProfile struct {
	Hash       string `json:"image"`
	Code       []byte `json:"code,omitempty"`
	Entry      uint16 `json:"entry"`
	RegionSize int    `json:"region_size"`

	CyclesNs     int64 `json:"cycles_ns"`
	Instructions int64 `json:"instructions"`
	// CompiledCyclesNs and CompiledRetired are the subset of the totals
	// retired through the threaded-code tier; the remainder ran in the
	// interpreter.
	CompiledCyclesNs int64 `json:"compiled_cycles_ns,omitempty"`
	CompiledRetired  int64 `json:"compiled_retired,omitempty"`
	Launches         int64 `json:"launches"`
	Resumes      int64 `json:"resumes,omitempty"`
	Slices       int64 `json:"slices"`
	Preempts     int64 `json:"preempts,omitempty"`
	Yields       int64 `json:"yields,omitempty"`
	Faults       int64 `json:"faults,omitempty"`
	QuoteCalls   int64 `json:"quote_calls,omitempty"`
	QuoteVirtNs  int64 `json:"quote_virt_ns,omitempty"`

	PCs    []PCSample    `json:"pcs"`
	Blocks []BlockSample `json:"blocks,omitempty"`
	Svcs   []SvcSample   `json:"svcs,omitempty"`

	pcIndex map[uint32]int
}

// PCSample is the exact counters of one instruction slot.
type PCSample struct {
	PC     uint32 `json:"pc"`
	Cycles int64  `json:"cycles_ns"`
	Count  int64  `json:"count"`
}

// BlockSample aggregates one basic block [Start, End).
type BlockSample struct {
	Start  uint32 `json:"start"`
	End    uint32 `json:"end"`
	Cycles int64  `json:"cycles_ns"`
	Count  int64  `json:"count"` // retirements inside the block
	Instrs int    `json:"instrs"`
}

// SvcSample is one service call site's totals. CallerPC is −1 for calls
// issued outside the PAL (the post-exit quote).
type SvcSample struct {
	Name     string `json:"name"`
	Num      uint16 `json:"num"`
	CallerPC int64  `json:"caller_pc"`
	Calls    int64  `json:"calls"`
	VirtNs   int64  `json:"virt_ns"`
}

// TenantStats is one tenant's job-level totals.
type TenantStats struct {
	Name     string   `json:"name"`
	Jobs     int64    `json:"jobs"`
	Faults   int64    `json:"faults,omitempty"`
	CyclesNs int64    `json:"cycles_ns"`
	Images   []string `json:"images,omitempty"`
}

// NewProfile returns an empty snapshot ready for SnapshotInto/TenantsInto.
func NewProfile() *Profile {
	return &Profile{byHash: make(map[string]*ImageProfile)}
}

// imageFor returns (creating if needed) the merged record for hash.
// Collectors on different machines may have seen the same image; samples
// merge additively.
func (p *Profile) imageFor(hash string, image pal.Image, regionSize int) *ImageProfile {
	ip := p.byHash[hash]
	if ip == nil {
		ip = &ImageProfile{
			Hash:    hash,
			Code:    image.Bytes,
			Entry:   image.Entry,
			pcIndex: make(map[uint32]int),
		}
		p.byHash[hash] = ip
		p.Images = append(p.Images, ip)
	}
	if regionSize > ip.RegionSize {
		ip.RegionSize = regionSize
	}
	return ip
}

func (ip *ImageProfile) addPC(s PCSample) {
	if i, ok := ip.pcIndex[s.PC]; ok {
		ip.PCs[i].Cycles += s.Cycles
		ip.PCs[i].Count += s.Count
		return
	}
	ip.pcIndex[s.PC] = len(ip.PCs)
	ip.PCs = append(ip.PCs, s)
}

func (ip *ImageProfile) addSvc(s SvcSample) {
	for i := range ip.Svcs {
		if ip.Svcs[i].Num == s.Num && ip.Svcs[i].CallerPC == s.CallerPC {
			ip.Svcs[i].Calls += s.Calls
			ip.Svcs[i].VirtNs += s.VirtNs
			return
		}
	}
	ip.Svcs = append(ip.Svcs, s)
}

// Finish totals the merged samples, recovers basic blocks from the image
// bytes, and puts every slice in its canonical order (images by cycles
// descending, samples by address). Call once, after the last merge.
func (p *Profile) Finish() {
	for _, ip := range p.Images {
		sort.Slice(ip.PCs, func(i, j int) bool { return ip.PCs[i].PC < ip.PCs[j].PC })
		sort.Slice(ip.Svcs, func(i, j int) bool {
			if ip.Svcs[i].CallerPC != ip.Svcs[j].CallerPC {
				return ip.Svcs[i].CallerPC < ip.Svcs[j].CallerPC
			}
			return ip.Svcs[i].Num < ip.Svcs[j].Num
		})
		ip.CyclesNs, ip.Instructions = 0, 0
		for _, s := range ip.PCs {
			ip.CyclesNs += s.Cycles
			ip.Instructions += s.Count
		}
		ip.computeBlocks()
	}
	sort.Slice(p.Images, func(i, j int) bool {
		if p.Images[i].CyclesNs != p.Images[j].CyclesNs {
			return p.Images[i].CyclesNs > p.Images[j].CyclesNs
		}
		return p.Images[i].Hash < p.Images[j].Hash
	})
	sort.Slice(p.Tenants, func(i, j int) bool {
		if p.Tenants[i].CyclesNs != p.Tenants[j].CyclesNs {
			return p.Tenants[i].CyclesNs > p.Tenants[j].CyclesNs
		}
		return p.Tenants[i].Name < p.Tenants[j].Name
	})
}

// computeBlocks folds the (sorted) PC samples into basic blocks.
func (ip *ImageProfile) computeBlocks() {
	ls := leaders(ip.Code, ip.Entry, ip.RegionSize)
	if len(ls) == 0 {
		ip.Blocks = nil
		return
	}
	byStart := make(map[uint32]*BlockSample)
	for _, s := range ip.PCs {
		start := blockStart(ls, s.PC)
		b := byStart[start]
		if b == nil {
			b = &BlockSample{Start: start, End: ip.blockEnd(ls, start)}
			byStart[start] = b
		}
		b.Cycles += s.Cycles
		b.Count += s.Count
		b.Instrs++
	}
	ip.Blocks = ip.Blocks[:0]
	for _, b := range byStart {
		ip.Blocks = append(ip.Blocks, *b)
	}
	sort.Slice(ip.Blocks, func(i, j int) bool { return ip.Blocks[i].Start < ip.Blocks[j].Start })
}

// blockEnd returns the first leader after start, or the region end.
func (ip *ImageProfile) blockEnd(ls []uint32, start uint32) uint32 {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] > start })
	if i < len(ls) {
		return ls[i]
	}
	return uint32(ip.RegionSize)
}

// ShortHash is the image hash abbreviated for display.
func (ip *ImageProfile) ShortHash() string {
	if len(ip.Hash) > 8 {
		return ip.Hash[:8]
	}
	return ip.Hash
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfile parses a profile previously written by WriteJSON (or served
// by /debug/profile).
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("prof: parse profile: %w", err)
	}
	return &p, nil
}

// WriteFolded renders the profile as folded stacks — one
// `frame;frame;frame <count>` line per leaf, the input format of
// flamegraph.pl and compatible viewers. The stack is
// image → basic block → instruction, with service time as a fourth frame
// under its caller and post-exit quotes as a synthetic quote frame. Counts
// are virtual nanoseconds.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, ip := range p.Images {
		ls := leaders(ip.Code, ip.Entry, ip.RegionSize)
		img := "pal-" + ip.ShortHash()
		for _, s := range ip.PCs {
			if s.Cycles == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s;blk_0x%04x;pc_0x%04x %d\n",
				img, blockStart(ls, s.PC), s.PC, s.Cycles); err != nil {
				return err
			}
		}
		for _, s := range ip.Svcs {
			if s.VirtNs == 0 {
				continue
			}
			if s.CallerPC < 0 {
				if _, err := fmt.Fprintf(w, "%s;%s %d\n", img, s.Name, s.VirtNs); err != nil {
					return err
				}
				continue
			}
			pc := uint32(s.CallerPC)
			if _, err := fmt.Fprintf(w, "%s;blk_0x%04x;pc_0x%04x;svc_%s %d\n",
				img, blockStart(ls, pc), pc, s.Name, s.VirtNs); err != nil {
				return err
			}
		}
		if ip.QuoteVirtNs > 0 {
			if _, err := fmt.Fprintf(w, "%s;quote %d\n", img, ip.QuoteVirtNs); err != nil {
				return err
			}
		}
	}
	return nil
}

const heatWidth = 20

// heatBar renders a proportional bar for cycles out of total.
func heatBar(cycles, total int64) string {
	if total <= 0 || cycles <= 0 {
		return strings.Repeat(".", heatWidth)
	}
	n := int(cycles * heatWidth / total)
	if n == 0 {
		n = 1
	}
	if n > heatWidth {
		n = heatWidth
	}
	return strings.Repeat("#", n) + strings.Repeat(".", heatWidth-n)
}

// WriteAnnotated renders the image's disassembly with per-line cycle,
// count, and heat columns. Samples beyond the measured image (execution
// out of the data/stack area) are summarized after the listing.
func (ip *ImageProfile) WriteAnnotated(w io.Writer) error {
	byPC := make(map[uint32]PCSample, len(ip.PCs))
	var beyondCycles, beyondCount int64
	for _, s := range ip.PCs {
		if int(s.PC) >= len(ip.Code) {
			beyondCycles += s.Cycles
			beyondCount += s.Count
			continue
		}
		byPC[s.PC] = s
	}
	fmt.Fprintf(w, "pal-%s  entry=0x%04x  %d bytes  %d cycles(ns)  %d instrs\n",
		ip.ShortHash(), ip.Entry, len(ip.Code), ip.CyclesNs, ip.Instructions)
	fmt.Fprintf(w, "%6s %14s %10s %-*s  %s\n", "pc", "cycles(ns)", "count", heatWidth, "heat", "instruction")
	for off := 0; off+isa.WordSize <= len(ip.Code); off += isa.WordSize {
		word := binary.LittleEndian.Uint32(ip.Code[off:])
		text := fmt.Sprintf(".word 0x%08x", word)
		if in, err := isa.Decode(word); err == nil {
			text = in.String()
		}
		s := byPC[uint32(off)]
		if s.Count == 0 {
			fmt.Fprintf(w, "%04x   %14s %10s %-*s  %s\n", off, "", "", heatWidth, "", text)
			continue
		}
		fmt.Fprintf(w, "%04x   %14d %10d %s  %s\n",
			off, s.Cycles, s.Count, heatBar(s.Cycles, ip.CyclesNs), text)
	}
	if beyondCount > 0 {
		fmt.Fprintf(w, "beyond-image execution: %d cycles(ns), %d instrs (region %d bytes)\n",
			beyondCycles, beyondCount, ip.RegionSize)
	}
	if len(ip.Svcs) > 0 {
		fmt.Fprintf(w, "service calls:\n")
		for _, s := range ip.Svcs {
			caller := "(untrusted)"
			if s.CallerPC >= 0 {
				caller = fmt.Sprintf("pc 0x%04x", uint32(s.CallerPC))
			}
			fmt.Fprintf(w, "  %-8s from %-10s calls=%-6d virt_ns=%d\n", s.Name, caller, s.Calls, s.VirtNs)
		}
	}
	return nil
}

// hotBlock pairs a block with its image for cross-image ranking.
type hotBlock struct {
	Image *ImageProfile
	Block BlockSample
}

// topBlocks ranks all images' basic blocks by cycles.
func (p *Profile) topBlocks(n int) []hotBlock {
	var all []hotBlock
	for _, ip := range p.Images {
		for _, b := range ip.Blocks {
			all = append(all, hotBlock{Image: ip, Block: b})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Block.Cycles > all[j].Block.Cycles })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// WriteTopBlocks renders the n hottest basic blocks across all images.
func (p *Profile) WriteTopBlocks(w io.Writer, n int) {
	var total int64
	for _, ip := range p.Images {
		total += ip.CyclesNs
	}
	fmt.Fprintf(w, "%-14s %-19s %14s %10s %7s\n", "image", "block", "cycles(ns)", "count", "share")
	for _, hb := range p.topBlocks(n) {
		pct := 0.0
		if total > 0 {
			pct = float64(hb.Block.Cycles) / float64(total) * 100
		}
		fmt.Fprintf(w, "%-14s [0x%04x,0x%04x)%5s %14d %10d %6.1f%%\n",
			"pal-"+hb.Image.ShortHash(), hb.Block.Start, hb.Block.End, "",
			hb.Block.Cycles, hb.Block.Count, pct)
	}
}

// WriteSummary renders the per-tenant totals and each tenant's share of
// hot blocks — the digest palservd appends to a loadgen report so capacity
// runs double as profiling runs.
func (p *Profile) WriteSummary(w io.Writer, topN int) {
	for _, t := range p.Tenants {
		fmt.Fprintf(w, "tenant %-12s jobs=%-6d faults=%-4d vcycles_ns=%d\n",
			t.Name, t.Jobs, t.Faults, t.CyclesNs)
	}
	if len(p.Images) == 0 {
		return
	}
	// Execution-tier split: how many of the charged cycles retired
	// through compiled blocks vs the interpreter.
	var total, compiled int64
	for _, ip := range p.Images {
		total += ip.CyclesNs
		compiled += ip.CompiledCyclesNs
	}
	if total > 0 {
		fmt.Fprintf(w, "tiers: compiled=%dns (%.1f%%) interpreted=%dns (%.1f%%)\n",
			compiled, 100*float64(compiled)/float64(total),
			total-compiled, 100*float64(total-compiled)/float64(total))
	}
	fmt.Fprintf(w, "top %d hot blocks:\n", topN)
	p.WriteTopBlocks(w, topN)
}
