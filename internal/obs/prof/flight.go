package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/obs"
)

// The fault flight recorder. A PAL fault in production is the worst
// debugging position this stack can put an operator in: the SKSM zeroes
// the PAL's pages on SKILL (by design — that is the security property),
// so by the time anyone looks, the evidence is gone. The flight recorder
// snapshots everything the platform still legitimately knows at the
// moment of the fault — the architectural state the hardware saved into
// the SECB, sePCR bank occupancy, the memory-ownership map, the tail of
// the trace ring, and the faulting image's partial cycle profile — into a
// CrashBundle, before the kill path destroys it.

// RegionInfo describes the faulting PAL's memory layout (its SLB
// placement) inside a bundle.
type RegionInfo struct {
	Base     uint32 `json:"base"`
	Size     int    `json:"size"`
	Entry    uint16 `json:"entry"`
	SECBBase uint32 `json:"secb_base,omitempty"`
}

// PageInfo is one page of the PAL's region in the memory-ownership map.
type PageInfo struct {
	Page    int    `json:"page"`
	State   string `json:"state"`
	Version uint32 `json:"version"`
}

// MemMap summarizes chipset memory ownership at fault time: platform-wide
// counts by access state, plus per-page detail for the PAL's own region.
type MemMap struct {
	PagesAll    int        `json:"pages_all"`    // open-access pages
	PagesNone   int        `json:"pages_none"`   // secluded pages
	PagesOwned  int        `json:"pages_owned"`  // pages bound to some CPU
	RegionPages []PageInfo `json:"region_pages,omitempty"`
}

// CrashBundle is one recorded fault: everything /debug/crashes serves and
// tcbprof -crash renders. Layout is documented in docs/PROFILING.md.
type CrashBundle struct {
	ID      uint64 `json:"id"`
	WallNs  int64  `json:"wall_ns"`
	VirtNs  int64  `json:"virt_ns"`
	Reason  string `json:"reason"` // "fault" or "skill"
	Error   string `json:"error,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Trace   obs.TraceID `json:"trace"`
	Machine int    `json:"machine"`
	CPU     int    `json:"cpu"`
	Image   string `json:"image"`
	Slices  int    `json:"slices"`
	Resumes int    `json:"resumes,omitempty"`
	SePCR   int    `json:"sepcr"`

	Regs      cpu.ArchState `json:"regs"`
	Region    RegionInfo    `json:"region"`
	SePCRBank []string      `json:"sepcr_bank,omitempty"`
	Memory    MemMap        `json:"memory"`
	HotPCs    []PCSample    `json:"hot_pcs,omitempty"`
	TraceTail []obs.Record  `json:"trace_tail,omitempty"`
}

// FlightRecorder keeps the last crashes in memory for /debug/crashes and,
// when given a directory, appends each bundle as one JSON line to
// crashes.jsonl in it. All methods are thread-safe and nil-receiver-safe
// (a nil recorder is the feature turned off).
type FlightRecorder struct {
	mu      sync.Mutex
	seq     uint64
	bundles []*CrashBundle
	limit   int
	dir     string
	tracer  *obs.Tracer
	tail    int
	werr    error // first persistence failure, reported by /debug/crashes
}

const (
	defaultBundleLimit = 64 // in-memory bundles retained
	defaultTraceTail   = 48 // trace ring records embedded per bundle
)

// NewFlightRecorder returns a recorder keeping bundles in memory; dir, if
// non-empty, additionally persists each bundle to <dir>/crashes.jsonl.
// tracer, if non-nil, supplies the trace-tail snapshot (may be nil when
// tracing is off — bundles then carry no tail).
func NewFlightRecorder(dir string, tracer *obs.Tracer) *FlightRecorder {
	return &FlightRecorder{
		limit:  defaultBundleLimit,
		dir:    dir,
		tracer: tracer,
		tail:   defaultTraceTail,
	}
}

// Record stamps, stores, and persists the bundle, returning its ID (IDs
// start at 1; 0 means "not recorded" and is what a nil recorder returns).
func (r *FlightRecorder) Record(b *CrashBundle) uint64 {
	if r == nil || b == nil {
		return 0
	}
	if recs, _ := r.tracer.Snapshot(); len(recs) > 0 {
		if len(recs) > r.tail {
			recs = recs[len(recs)-r.tail:]
		}
		b.TraceTail = recs
	}
	r.mu.Lock()
	r.seq++
	b.ID = r.seq
	b.WallNs = time.Now().UnixNano()
	r.bundles = append(r.bundles, b)
	if len(r.bundles) > r.limit {
		r.bundles = r.bundles[len(r.bundles)-r.limit:]
	}
	if r.dir != "" {
		if err := appendJSONL(filepath.Join(r.dir, "crashes.jsonl"), b); err != nil && r.werr == nil {
			r.werr = err
		}
	}
	r.mu.Unlock()
	return b.ID
}

// appendJSONL appends one JSON line to path, creating the file (and its
// directory) on first use. Crashes are cold, so open-per-record is fine.
func appendJSONL(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		return err
	}
	return f.Close()
}

// Bundles returns the retained bundles, oldest first.
func (r *FlightRecorder) Bundles() []*CrashBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*CrashBundle(nil), r.bundles...)
}

// Err returns the first persistence failure, if any.
func (r *FlightRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.werr
}

// ReadCrashes parses a crashes.jsonl stream.
func ReadCrashes(rd io.Reader) ([]*CrashBundle, error) {
	var out []*CrashBundle
	dec := json.NewDecoder(rd)
	for dec.More() {
		var b CrashBundle
		if err := dec.Decode(&b); err != nil {
			return out, fmt.Errorf("prof: parse crash bundle %d: %w", len(out)+1, err)
		}
		out = append(out, &b)
	}
	return out, nil
}

// WriteCrash renders one bundle human-readably (the tcbprof -crash view).
func WriteCrash(w io.Writer, b *CrashBundle) {
	fmt.Fprintf(w, "crash #%d  reason=%s  wall=%s  virt_ns=%d\n",
		b.ID, b.Reason, time.Unix(0, b.WallNs).UTC().Format(time.RFC3339Nano), b.VirtNs)
	if b.Error != "" {
		fmt.Fprintf(w, "  error:   %s\n", b.Error)
	}
	fmt.Fprintf(w, "  job:     tenant=%q trace=%s machine=%d cpu=%d\n", b.Tenant, b.Trace, b.Machine, b.CPU)
	fmt.Fprintf(w, "  pal:     image=%s slices=%d resumes=%d sepcr=%d\n", short(b.Image), b.Slices, b.Resumes, b.SePCR)
	fmt.Fprintf(w, "  region:  base=0x%08x size=%d entry=0x%04x secb=0x%08x\n",
		b.Region.Base, b.Region.Size, b.Region.Entry, b.Region.SECBBase)
	fmt.Fprintf(w, "  regs:    pc=0x%04x", b.Regs.PC)
	for i, v := range b.Regs.Regs {
		fmt.Fprintf(w, " r%d=0x%08x", i, v)
	}
	fmt.Fprintf(w, "\n  flags:   Z=%v C=%v N=%v intr=%v\n", b.Regs.FlagZ, b.Regs.FlagC, b.Regs.FlagN, b.Regs.IntrEnabled)
	if len(b.SePCRBank) > 0 {
		fmt.Fprintf(w, "  sepcrs: ")
		for i, s := range b.SePCRBank {
			fmt.Fprintf(w, " %d=%s", i, s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  memory:  all=%d none=%d cpu-owned=%d pages; region pages:", b.Memory.PagesAll, b.Memory.PagesNone, b.Memory.PagesOwned)
	for _, pg := range b.Memory.RegionPages {
		fmt.Fprintf(w, " %d:%s(v%d)", pg.Page, pg.State, pg.Version)
	}
	fmt.Fprintln(w)
	if len(b.HotPCs) > 0 {
		fmt.Fprintf(w, "  hot pcs:")
		for _, s := range b.HotPCs {
			fmt.Fprintf(w, " 0x%04x(%dns/%d)", s.PC, s.Cycles, s.Count)
		}
		fmt.Fprintln(w)
	}
	if len(b.TraceTail) > 0 {
		fmt.Fprintf(w, "  trace tail (%d records):\n", len(b.TraceTail))
		for _, rec := range b.TraceTail {
			fmt.Fprintf(w, "    %-5s trace=%-4s %-20s cat=%-10s virt_ns=%d\n",
				rec.Kind, rec.Trace, rec.Name, rec.Cat, rec.VirtStart)
		}
	}
}

func short(h string) string {
	if len(h) > 8 {
		return h[:8]
	}
	return h
}
