package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindSpan, Trace: TraceID{Lo: 1}, ID: 2, Parent: 1, Name: "execute", Cat: "pipeline",
			WallStart: 1000, WallDur: 500, VirtStart: 100, VirtDur: 50,
			Attrs: []Attr{{Key: "cpu", Val: "1"}}},
		{Kind: KindSpan, Trace: TraceID{Lo: 1}, ID: 3, Name: "sePCR.Exclusive", Cat: CatSePCR,
			WallStart: 1100, WallDur: 200, VirtStart: 110, VirtDur: 20,
			Attrs: []Attr{{Key: "handle", Val: "0"}}},
		{Kind: KindEvent, Trace: TraceID{Lo: 1}, ID: 4, Parent: 2, Name: "SYIELD", Cat: "sksm",
			WallStart: 1200, VirtStart: 120, VirtDur: -1},
		{Kind: KindSpan, Trace: TraceID{Lo: 2}, ID: 5, Name: "verify", Cat: "pipeline",
			WallStart: 2000, WallDur: 300, VirtStart: -1, VirtDur: -1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", recs, got)
	}
}

func TestReadJSONLSkipsBlanksReportsBadLine(t *testing.T) {
	in := "\n" + `{"kind":"span","name":"a","cat":"c"}` + "\n\n" + `{"kind":` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v does not name line 4", err)
	}
	good := "\n" + `{"kind":"span","name":"a","cat":"c"}` + "\n"
	recs, err := ReadJSONL(strings.NewReader(good))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

// chromeDoc mirrors the trace-event document shape for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   *float64       `json:"dur"`
		PID   int            `json:"pid"`
		TID   uint64         `json:"tid"`
		ID    string         `json:"id"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}

	var (
		metaNames   []string
		sawComplete bool
		sawInstant  bool
		asyncBegin  bool
		asyncEnd    bool
		virtCopy    bool
	)
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			if n, ok := ev.Args["name"].(string); ok {
				metaNames = append(metaNames, n)
			}
		case "X":
			sawComplete = true
			if ev.PID == chromePIDVirt && ev.Name == "execute" {
				virtCopy = true
				if ev.TS != 0.1 { // 100 ns = 0.1 µs
					t.Fatalf("virtual execute at ts %v µs, want 0.1", ev.TS)
				}
			}
			if ev.Dur == nil {
				t.Fatalf("complete event %s without dur", ev.Name)
			}
		case "i":
			sawInstant = true
		case "b":
			asyncBegin = ev.ID == "sepcr-0"
		case "e":
			asyncEnd = ev.ID == "sepcr-0"
		}
	}
	if len(metaNames) != 2 {
		t.Fatalf("process metadata %v", metaNames)
	}
	if !sawComplete || !sawInstant {
		t.Fatalf("complete=%v instant=%v", sawComplete, sawInstant)
	}
	if !asyncBegin || !asyncEnd {
		t.Fatalf("sePCR async pair missing: b=%v e=%v", asyncBegin, asyncEnd)
	}
	if !virtCopy {
		t.Fatal("no virtual-timeline rendering of the execute span")
	}

	// Wall timestamps are rebased to the earliest record.
	minTS := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" || ev.PID != chromePIDWall {
			continue
		}
		if minTS < 0 || ev.TS < minTS {
			minTS = ev.TS
		}
	}
	if minTS != 0 {
		t.Fatalf("earliest wall event at %v µs, want 0", minTS)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 { // just the two process_name records
		t.Fatalf("%d events for empty input", len(doc.TraceEvents))
	}
}

func TestChromeTraceSePCROrdering(t *testing.T) {
	// An Exclusive span recorded before the Quote span of the same handle
	// must keep that order among async begins after the stable sort.
	now := time.Now().UnixNano()
	recs := []Record{
		{Kind: KindSpan, Trace: TraceID{Lo: 1}, ID: 1, Name: "sePCR.Exclusive", Cat: CatSePCR,
			WallStart: now, WallDur: 100, Attrs: []Attr{{Key: "handle", Val: "3"}}},
		{Kind: KindSpan, Trace: TraceID{Lo: 1}, ID: 2, Name: "sePCR.Quote", Cat: CatSePCR,
			WallStart: now + 100, WallDur: 50, Attrs: []Attr{{Key: "handle", Val: "3"}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var begins []string
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "b" {
			begins = append(begins, ev.Name)
		}
	}
	want := []string{"sePCR.Exclusive", "sePCR.Quote"}
	if !reflect.DeepEqual(begins, want) {
		t.Fatalf("async begin order %v, want %v", begins, want)
	}
}
