package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSONL writes one Record per line — the recorder's canonical dump
// format, served by /debug/trace and consumed by cmd/tcbtrace and
// ReadJSONL.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL trace dump, skipping blank lines. It fails on
// the first malformed line, reporting its 1-based number.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Chrome trace-event export. The dump loads in Perfetto (ui.perfetto.dev)
// or chrome://tracing and renders the stack twice:
//
//   - pid 1 "wall clock": every span at its real timestamp, one thread
//     (tid) per trace — this is where queueing, lock arbitration and
//     verification time are visible;
//   - pid 2 "virtual clock": spans that carry sim time, at their virtual
//     timestamps — this is what the simulated hardware charged.
//
// sePCR life-cycle spans (category "sepcr") outlive the call frames that
// open and close them, so they are emitted as async begin/end pairs keyed
// by register handle rather than as complete events.
const (
	chromePIDWall = 1
	chromePIDVirt = 2

	// CatSePCR marks sePCR life-cycle spans for async rendering.
	CatSePCR = "sepcr"
)

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTID flattens a TraceID into the viewer's uint64 thread ID: one
// lane per trace. Local IDs keep their small sequential value; cluster IDs
// fold the node word in so two nodes' trace #1 land on distinct lanes.
func chromeTID(t TraceID) uint64 {
	if t.Hi == 0 {
		return t.Lo
	}
	return t.Lo ^ (t.Hi<<1 | t.Hi>>63)
}

// WriteChromeTrace renders records as a Chrome trace-event JSON document.
// Wall timestamps are rebased to the earliest record so the viewer opens
// at t=0. Stitched records (Record.Node set) get one wall/virtual pid pair
// per node, so a cross-process trace shows router and backend lanes side
// by side; unstitched dumps keep the classic two-process layout.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	var events []chromeEvent
	meta := func(pid int, name string) chromeEvent {
		return chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name},
		}
	}

	// Assign each node a pid pair in order of first appearance. The
	// unnamed node keeps pids 1/2 and the historical lane names.
	nodePID := map[string]int{"": chromePIDWall}
	events = append(events, meta(chromePIDWall, "wall clock"), meta(chromePIDVirt, "virtual clock"))
	for i := range recs {
		node := recs[i].Node
		if _, ok := nodePID[node]; ok {
			continue
		}
		pid := chromePIDWall + 2*len(nodePID)
		nodePID[node] = pid
		events = append(events,
			meta(pid, "wall clock — "+node),
			meta(pid+1, "virtual clock — "+node))
	}

	base := int64(0)
	for i := range recs {
		if i == 0 || recs[i].WallStart < base {
			base = recs[i].WallStart
		}
	}

	micros := func(ns int64) float64 { return float64(ns) / 1e3 }
	for i := range recs {
		r := &recs[i]
		args := map[string]any{
			"trace": r.Trace, "span": r.ID, "parent": r.Parent,
			"wall_dur_ns": r.WallDur,
		}
		if r.VirtStart >= 0 {
			args["virt_start_ns"] = r.VirtStart
			args["virt_dur_ns"] = r.VirtDur
		}
		if r.Node != "" {
			args["node"] = r.Node
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Val
		}

		wallPID := nodePID[r.Node]
		tid := chromeTID(r.Trace)
		switch {
		case r.Kind == KindEvent:
			events = append(events, chromeEvent{
				Name: r.Name, Cat: r.Cat, Phase: "i", Scope: "t",
				TS: micros(r.WallStart - base), PID: wallPID, TID: tid, Args: args,
			})
		case r.Cat == CatSePCR:
			// Async pair: visible even though the span crosses call
			// frames and machine-lock sections.
			id := r.Name
			for _, a := range r.Attrs {
				if a.Key == "handle" {
					id = "sepcr-" + a.Val
				}
			}
			events = append(events,
				chromeEvent{Name: r.Name, Cat: r.Cat, Phase: "b", ID: id,
					TS: micros(r.WallStart - base), PID: wallPID, TID: tid, Args: args},
				chromeEvent{Name: r.Name, Cat: r.Cat, Phase: "e", ID: id,
					TS: micros(r.WallStart - base + r.WallDur), PID: wallPID, TID: tid})
		default:
			dur := micros(r.WallDur)
			events = append(events, chromeEvent{
				Name: r.Name, Cat: r.Cat, Phase: "X",
				TS: micros(r.WallStart - base), Dur: &dur,
				PID: wallPID, TID: tid, Args: args,
			})
		}

		// Second rendering on the virtual timeline for spans that carry
		// sim time.
		if r.Kind == KindSpan && r.VirtStart >= 0 && r.Cat != CatSePCR {
			vdur := micros(max64(r.VirtDur, 0))
			events = append(events, chromeEvent{
				Name: r.Name, Cat: r.Cat, Phase: "X",
				TS: micros(r.VirtStart), Dur: &vdur,
				PID: wallPID + 1, TID: tid, Args: args,
			})
		}
	}

	// Deterministic output: viewer-irrelevant, diff-relevant.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].PID != events[j].PID {
			return events[i].PID < events[j].PID
		}
		return events[i].TS < events[j].TS
	})

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
