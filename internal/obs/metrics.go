package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a hand-rolled, stdlib-only subset of the Prometheus client
// model: counters, gauges (direct or callback-backed), and cumulative
// histograms, rendered in text exposition format 0.0.4 by WriteText. It
// exists so the debug servers in cmd/palservd and cmd/attestd can serve
// /metrics without pulling in a dependency the container doesn't have.

// Label is one metric label pair.
type Label struct{ Name, Value string }

// LatencyBuckets are the default histogram bounds for stage latencies, in
// seconds. They span sub-microsecond virtual SLAUNCH transitions up to the
// multi-second seal/unseal stalls of 2007 TPMs.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 25e-3, 0.1, 0.5, 1, 2.5, 10,
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Registry holds metric families in registration order.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

type family struct {
	name, help, kind string
	series           map[string]*series
	order            []string
}

type series struct {
	labels string // rendered {k="v",...} suffix, "" for none

	bits atomic.Uint64  // float64 bits (counter/gauge value)
	fn   func() float64 // callback-backed counter/gauge, nil otherwise
	hist *histo         // histogram state, nil otherwise
	// ex, when set, is sampled at scrape time and rendered as an
	// OpenMetrics-style exemplar (` # {trace_id="..."} value`) after the
	// sample line — how a p99 gauge points at the trace that caused it.
	ex func() (traceID string, value float64, ok bool)
}

type histo struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, +Inf implicit in count
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels builds the canonical sorted {k="v"} suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register finds or creates the (family, series) pair, enforcing that one
// name keeps one type and one help string.
func (r *Registry) register(name, help, kind string, labels []Label) *series {
	if !metricNameRE.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !labelNameRE.MatchString(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing value. A nil *Counter is a no-op.
type Counter struct{ s *series }

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.register(name, help, "counter", labels)}
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — for components that already keep their own monotonic counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", labels).fn = fn
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored (counters
// are monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// Gauge is a value that can go up and down. A nil *Gauge is a no-op.
type Gauge struct{ s *series }

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.register(name, help, "gauge", labels)}
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", labels).fn = fn
}

// GaugeFuncExemplar registers a callback gauge that also carries an
// exemplar: ex is sampled at scrape time and, when it reports ok, the
// sample line is annotated OpenMetrics-style with the trace that exhibited
// the value — the drill-down link from a quantile to a stitchable trace.
func (r *Registry) GaugeFuncExemplar(name, help string, fn func() float64,
	ex func() (traceID string, value float64, ok bool), labels ...Label) {
	if r == nil {
		return
	}
	s := r.register(name, help, "gauge", labels)
	s.fn = fn
	s.ex = ex
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Histogram accumulates observations into cumulative buckets. A nil
// *Histogram is a no-op.
type Histogram struct{ s *series }

// Histogram registers a histogram with the given upper bounds (seconds by
// Prometheus convention; +Inf is implicit). Bounds must be sorted
// ascending; nil bounds default to LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly ascending for " + name)
		}
	}
	s := r.register(name, help, "histogram", labels)
	if s.hist == nil {
		s.hist = &histo{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	}
	return &Histogram{s: s}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil || h.s.hist == nil {
		return
	}
	hs := h.s.hist
	// First bucket whose bound >= v (cumulative counts are summed at
	// exposition time, so each observation lands in exactly one slot).
	i := sort.SearchFloat64s(hs.bounds, v)
	if i < len(hs.counts) {
		hs.counts[i].Add(1)
	}
	hs.count.Add(1)
	addFloat(&hs.sum, v)
}

// addFloat CAS-adds a float64 delta onto atomic bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text exposition format
// 0.0.4: families in registration order, each with # HELP and # TYPE
// headers and its series in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	if s.hist != nil {
		hs := s.hist
		cum := uint64(0)
		for i, b := range hs.bounds {
			cum += hs.counts[i].Load()
			if err := histLine(w, f.name, s.labels, formatFloat(b), cum); err != nil {
				return err
			}
		}
		total := hs.count.Load()
		if err := histLine(w, f.name, s.labels, "+Inf", total); err != nil {
			return err
		}
		sum := math.Float64frombits(hs.sum.Load())
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, total)
		return err
	}
	v := math.Float64frombits(s.bits.Load())
	if s.fn != nil {
		v = s.fn()
	}
	if s.ex != nil {
		if trace, exv, ok := s.ex(); ok {
			_, err := fmt.Fprintf(w, "%s%s %s # {trace_id=\"%s\"} %s\n",
				f.name, s.labels, formatFloat(v), escapeLabel(trace), formatFloat(exv))
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(v))
	return err
}

// RegisterTracerMetrics exposes the trace recorder's health on reg so
// scrapers can tell when the ring is eating history: obs_trace_dropped_total
// counts overwritten records (a rising value means the ring is too small
// for the span rate) and obs_trace_ring_size reports its capacity. Safe
// with a nil tracer (both series read zero) and a no-op on a nil registry.
func RegisterTracerMetrics(reg *Registry, t *Tracer) {
	reg.CounterFunc("obs_trace_dropped_total",
		"Trace records overwritten by the bounded ring recorder.",
		func() float64 { return float64(t.Dropped()) })
	reg.GaugeFunc("obs_trace_ring_size",
		"Capacity of the trace ring recorder, in records.",
		func() float64 { return float64(t.Capacity()) })
}

// RegisterLatencyQuantiles exposes a latency distribution that lives
// outside the registry (e.g. an exact sim.Sample) as one gauge family with
// a quantile label, sampled from fn at scrape time. Histograms are the
// right tool when the registry owns the observations; this is for
// components — like the cluster router — that already keep an exact sample
// and want its p50/p95/p99/max on /metrics without double bookkeeping. fn
// is called once per series per scrape, so it must be cheap and
// lock-consistent per call (cross-quantile skew between two calls in one
// scrape is acceptable by contract). No-op on a nil registry.
func RegisterLatencyQuantiles(reg *Registry, name, help string, fn func() (p50, p95, p99, max float64)) {
	if reg == nil {
		return
	}
	pick := func(sel func(p50, p95, p99, max float64) float64) func() float64 {
		return func() float64 { return sel(fn()) }
	}
	reg.GaugeFunc(name, help, pick(func(p50, _, _, _ float64) float64 { return p50 }),
		Label{Name: "quantile", Value: "0.5"})
	reg.GaugeFunc(name, help, pick(func(_, p95, _, _ float64) float64 { return p95 }),
		Label{Name: "quantile", Value: "0.95"})
	reg.GaugeFunc(name, help, pick(func(_, _, p99, _ float64) float64 { return p99 }),
		Label{Name: "quantile", Value: "0.99"})
	reg.GaugeFunc(name, help, pick(func(_, _, _, max float64) float64 { return max }),
		Label{Name: "quantile", Value: "1.0"})
}

// histLine writes one cumulative bucket line, splicing le into any
// existing label set.
func histLine(w io.Writer, name, labels, le string, count uint64) error {
	leLabel := `le="` + le + `"`
	if labels == "" {
		labels = "{" + leLabel + "}"
	} else {
		labels = strings.TrimSuffix(labels, "}") + "," + leLabel + "}"
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, count)
	return err
}
