package obs

import (
	"sort"
	"time"
)

// Cross-node span stitching. A cluster trace is recorded into one ring per
// process — the router's and each backend's — on clocks that need not
// agree. The collector fetches every ring over the wire protocol's trace
// op, measures each fetch's round trip, and aligns each node's wall clock
// to its own using the RTT midpoint (the classic NTP offset estimate: the
// remote timestamp was taken, on average, half a round trip after the
// request left). The residual error is bounded by half the RTT asymmetry —
// microseconds on a LAN, far below the millisecond-scale spans being
// attributed.

// NodeDump is one process's contribution to a stitched trace.
type NodeDump struct {
	// Node names the process (its wire address, or "router"). It is
	// stamped onto records whose Node is still empty, so re-stitching an
	// already-stitched dump preserves the original lanes.
	Node string
	// Records is the node's ring snapshot (already trace-filtered).
	Records []Record
	// Dropped counts records the node's ring had already overwritten.
	Dropped uint64
	// Offset is the node's clock minus the collector's clock (see
	// ClockOffset); it is subtracted from every wall timestamp.
	Offset time.Duration
}

// ClockOffset estimates a remote clock's offset from the local one:
// remoteNow is the remote's wall clock in Unix nanoseconds, sampled
// between the local times sent and received. Positive means the remote
// clock runs ahead.
func ClockOffset(sent, received time.Time, remoteNow int64) time.Duration {
	mid := sent.UnixNano() + (received.UnixNano()-sent.UnixNano())/2
	return time.Duration(remoteNow - mid)
}

// Stitch merges per-node ring dumps into one skew-corrected timeline:
// every record is shifted onto the collector's clock, tagged with its
// node, and the result is sorted by corrected wall start (stable, so a
// node's equal-timestamp records keep their ring order). Span IDs remain
// globally unique across nodes because every daemon rebases its span
// sequence on a node epoch (Tracer.SetNode), so parent links resolve
// across process boundaries without rewriting.
func Stitch(dumps []NodeDump) []Record {
	var out []Record
	for _, d := range dumps {
		for _, r := range d.Records {
			r.WallStart -= d.Offset.Nanoseconds()
			if r.Node == "" {
				r.Node = d.Node
			}
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallStart < out[j].WallStart })
	return out
}

// FilterTrace keeps the records belonging to one trace.
func FilterTrace(recs []Record, id TraceID) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	return out
}
