// Package obs is the observability layer for the PAL execution stack: a
// stdlib-only structured tracer whose spans and events carry **dual
// timestamps** — wall-clock time and virtual sim.Clock time — plus a
// hand-rolled Prometheus-style metrics registry (metrics.go), exporters
// for JSONL and the Chrome trace-event format (export.go), and an embedded
// debug HTTP server (http.go).
//
// The paper's entire argument is a latency story: ~200 ms SKINIT sessions
// and >1 s seal/unseal context switches on 2007 TPMs versus the ~1 µs
// SLAUNCH/sePCR design. Reproducing that argument requires seeing where
// both kinds of time go. Every span therefore records when it happened in
// real time (what the service's tenants experience: queueing, lock
// arbitration, RSA verification) and in virtual time (what the simulated
// hardware charges: TPM command latency, world switches, instruction
// execution). A span with VirtStart < 0 happened outside any simulated
// machine and has no virtual component.
//
// Recording is a bounded ring buffer behind one short mutex. The disabled
// path is a single atomic load returning nil, and every method of the
// handle types is nil-receiver-safe, so instrumentation can stay compiled
// into the hot paths at negligible cost (see bench_test.go and the <5%
// loadgen budget in ISSUE 2).
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"minimaltcb/internal/sim"
)

// Record kinds.
const (
	// KindSpan is a completed interval.
	KindSpan = "span"
	// KindEvent is an instant annotation.
	KindEvent = "event"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Int renders an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: strconv.Itoa(v)} }

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Val: v} }

// Context identifies a position in a trace: which trace a new span belongs
// to and which span is its parent. The zero Context parents a span at the
// root of the anonymous trace 0 (untraced sessions, e.g. a bare attestd
// quote, still record spans there).
type Context struct {
	Trace TraceID `json:"trace"`
	Span  uint64  `json:"span"`
}

// Record is one entry in the recorder: a completed span or an instant
// event, JSONL-encodable as-is. Durations are -1 when the corresponding
// clock does not apply (events have no duration; spans outside a simulated
// machine have no virtual time).
type Record struct {
	Kind   string  `json:"kind"`
	Trace  TraceID `json:"trace"`
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Cat    string  `json:"cat"`
	// Node names the process the record came from. It is empty at record
	// time; the cross-node stitcher (stitch.go) tags it while merging
	// multi-process rings so renderers can show per-node lanes.
	Node string `json:"node,omitempty"`
	// WallStart is absolute wall time in Unix nanoseconds; WallDur the
	// wall duration in nanoseconds.
	WallStart int64 `json:"wall_start_ns"`
	WallDur   int64 `json:"wall_dur_ns"`
	// VirtStart/VirtDur are virtual sim.Clock nanoseconds, or -1 when the
	// span ran outside any simulated machine.
	VirtStart int64  `json:"virt_start_ns"`
	VirtDur   int64  `json:"virt_dur_ns"`
	Attrs     []Attr `json:"attrs,omitempty"`
}

// Tracer allocates trace/span IDs and records completed spans into a
// bounded ring buffer. The zero capacity default keeps the last 8192
// records; older records are overwritten and counted as dropped.
//
// A nil *Tracer is a valid, permanently disabled tracer.
type Tracer struct {
	enabled  atomic.Bool
	spanSeq  atomic.Uint64
	traceSeq atomic.Uint64
	node     atomic.Uint64 // high word of minted TraceIDs; 0 = local-only

	mu      sync.Mutex
	ring    []Record
	next    int // ring index of the next write
	n       int // records currently stored
	dropped uint64
}

// DefaultCapacity is the recorder size NewTracer uses for capacity <= 0.
const DefaultCapacity = 8192

// NewTracer returns an enabled tracer whose ring holds capacity records
// (DefaultCapacity if <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{ring: make([]Record, capacity)}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether the tracer records anything. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns recording on or off. Disabling does not discard
// already-recorded spans. Nil-safe.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// NewTrace allocates a fresh trace ID (e.g. one per PAL job) and returns
// its root context. Nil-safe: a nil tracer hands out the zero Context.
func (t *Tracer) NewTrace() Context {
	if t == nil {
		return Context{}
	}
	return Context{Trace: TraceID{Hi: t.node.Load(), Lo: t.traceSeq.Add(1)}}
}

// SetNode installs the tracer's node epoch (see NewNodeID): minted trace
// IDs carry it in the high word, and the span-ID sequence is rebased onto
// a node-derived offset so spans from different processes stay unique
// inside one stitched trace. The default node 0 preserves the small
// sequential IDs deterministic tests and differential replay rely on.
// Nil-safe; call before the tracer is shared.
func (t *Tracer) SetNode(id uint64) {
	if t == nil {
		return
	}
	t.node.Store(id)
	t.spanSeq.Store((id & 0xffffffff) << 32)
}

// Node returns the installed node epoch (0 for a local-only tracer).
func (t *Tracer) Node() uint64 {
	if t == nil {
		return 0
	}
	return t.node.Load()
}

// append stores one finished record, overwriting the oldest when full.
func (t *Tracer) append(r Record) {
	t.mu.Lock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Snapshot copies the recorded spans oldest-first and reports how many
// older records the ring has already overwritten. Nil-safe.
func (t *Tracer) Snapshot() (recs []Record, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	recs = make([]Record, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		recs = append(recs, t.ring[(start+i)%len(t.ring)])
	}
	return recs, t.dropped
}

// Len reports how many records the ring currently holds. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Capacity reports the ring size — how many records the recorder retains
// before overwriting. Nil-safe.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dropped reports how many records the ring has overwritten. Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StartSpan opens a span under ctx with its wall clock running. The caller
// attaches virtual time via Span.Virt/EndVirt when a sim clock applies.
// Returns nil (a valid no-op handle) when disabled.
func (t *Tracer) StartSpan(ctx Context, name, cat string) *Span {
	if !t.Enabled() {
		return nil
	}
	return &Span{
		t: t,
		rec: Record{
			Kind:      KindSpan,
			Trace:     ctx.Trace,
			ID:        t.spanSeq.Add(1),
			Parent:    ctx.Span,
			Name:      name,
			Cat:       cat,
			WallStart: time.Now().UnixNano(),
			VirtStart: -1,
			VirtDur:   -1,
		},
	}
}

// RecordSpan appends a span after the fact — for intervals whose start was
// only bookmarked, like a job's stay in the submission queue. Virtual
// timestamps are recorded as absent.
func (t *Tracer) RecordSpan(ctx Context, name, cat string, wallStart time.Time, wallDur time.Duration, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	if wallDur < 0 {
		wallDur = 0
	}
	t.append(Record{
		Kind:      KindSpan,
		Trace:     ctx.Trace,
		ID:        t.spanSeq.Add(1),
		Parent:    ctx.Span,
		Name:      name,
		Cat:       cat,
		WallStart: wallStart.UnixNano(),
		WallDur:   wallDur.Nanoseconds(),
		VirtStart: -1,
		VirtDur:   -1,
		Attrs:     attrs,
	})
}

// Event records an instant annotation under ctx. virt is the virtual
// timestamp, or a negative value when no simulated clock applies.
func (t *Tracer) Event(ctx Context, name, cat string, virt time.Duration, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	v := int64(-1)
	if virt >= 0 {
		v = virt.Nanoseconds()
	}
	t.append(Record{
		Kind:      KindEvent,
		Trace:     ctx.Trace,
		ID:        t.spanSeq.Add(1),
		Parent:    ctx.Span,
		Name:      name,
		Cat:       cat,
		WallStart: time.Now().UnixNano(),
		VirtStart: v,
		VirtDur:   -1,
		Attrs:     attrs,
	})
}

// Span is an open interval. All methods are nil-receiver-safe so disabled
// tracing costs only the nil checks.
type Span struct {
	t   *Tracer
	rec Record
}

// Context returns the context under which children of this span nest.
// A nil span yields the zero Context.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.rec.Trace, Span: s.rec.ID}
}

// Attr annotates the span. Returns s for chaining.
func (s *Span) Attr(key, val string) *Span {
	if s != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Val: val})
	}
	return s
}

// AttrInt annotates the span with an integer, formatting it only when the
// span is live — hot paths use this so a disabled tracer never pays for
// string conversion.
func (s *Span) AttrInt(key string, v int) *Span {
	if s != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Val: strconv.Itoa(v)})
	}
	return s
}

// Virt marks the span's virtual start time.
func (s *Span) Virt(start time.Duration) *Span {
	if s != nil {
		s.rec.VirtStart = start.Nanoseconds()
	}
	return s
}

// WallStart overrides the wall start (for spans reconstructed after the
// fact).
func (s *Span) WallStart(t time.Time) *Span {
	if s != nil {
		s.rec.WallStart = t.UnixNano()
	}
	return s
}

// End closes the span's wall interval and records it. If Virt was set but
// EndVirt never called, the virtual duration is recorded as zero.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.WallDur = time.Now().UnixNano() - s.rec.WallStart
	if s.rec.WallDur < 0 {
		s.rec.WallDur = 0
	}
	if s.rec.VirtStart >= 0 && s.rec.VirtDur < 0 {
		s.rec.VirtDur = 0
	}
	s.t.append(s.rec)
}

// EndVirt closes both clocks: the virtual duration is virtEnd minus the
// Virt start, and the wall interval ends now.
func (s *Span) EndVirt(virtEnd time.Duration) {
	if s == nil {
		return
	}
	if s.rec.VirtStart >= 0 {
		s.rec.VirtDur = virtEnd.Nanoseconds() - s.rec.VirtStart
		if s.rec.VirtDur < 0 {
			s.rec.VirtDur = 0
		}
	}
	s.End()
}

// Scope binds a tracer to one simulated machine: its clock supplies the
// virtual timestamps, and an ambient Context carries the current parent
// span through layers whose signatures predate tracing (sksm.Manager,
// tpm.TPM). The service sets the ambient context under the same machine
// lock that serializes all access to the simulator, so the internal mutex
// exists only to keep the race detector satisfied on the debug paths.
//
// A nil *Scope is a valid disabled scope.
type Scope struct {
	tracer *Tracer
	clock  *sim.Clock

	mu  sync.Mutex
	cur Context
}

// NewScope binds tracer and clock. Either may be nil (nil clock: spans get
// wall time only).
func NewScope(t *Tracer, c *sim.Clock) *Scope {
	return &Scope{tracer: t, clock: c}
}

// Tracer returns the underlying tracer (nil for a nil scope).
func (sc *Scope) Tracer() *Tracer {
	if sc == nil {
		return nil
	}
	return sc.tracer
}

// Enabled reports whether spans started on this scope record anything.
func (sc *Scope) Enabled() bool { return sc != nil && sc.tracer.Enabled() }

// Swap installs ctx as the ambient parent context and returns the previous
// one, for the enter/restore pattern:
//
//	prev := scope.Swap(span.Context())
//	defer scope.Swap(prev)
func (sc *Scope) Swap(ctx Context) Context {
	// When the tracer is off every span is nil and every context zero, so
	// the ambient context carries no information — skip the mutex.
	if sc == nil || !sc.tracer.Enabled() {
		return Context{}
	}
	sc.mu.Lock()
	prev := sc.cur
	sc.cur = ctx
	sc.mu.Unlock()
	return prev
}

// Current returns the ambient context.
func (sc *Scope) Current() Context {
	if sc == nil {
		return Context{}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cur
}

// Start opens a span under the ambient context with both clocks running.
func (sc *Scope) Start(name, cat string) *Span {
	if !sc.Enabled() {
		return nil
	}
	sp := sc.tracer.StartSpan(sc.Current(), name, cat)
	if sp != nil && sc.clock != nil {
		sp.Virt(sc.clock.Now())
	}
	return sp
}

// End closes a span started on this scope, reading the virtual end time
// from the scope's clock.
func (sc *Scope) End(sp *Span) {
	if sp == nil {
		return
	}
	if sc != nil && sc.clock != nil {
		sp.EndVirt(sc.clock.Now())
		return
	}
	sp.End()
}

// Event records an instant event under the ambient context at the current
// virtual time.
func (sc *Scope) Event(name, cat string, attrs ...Attr) {
	if !sc.Enabled() {
		return
	}
	virt := time.Duration(-1)
	if sc.clock != nil {
		virt = sc.clock.Now()
	}
	sc.tracer.Event(sc.Current(), name, cat, virt, attrs...)
}
