package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Per-tenant SLO accounting. The tracker classifies every finished request
// as good or bad (failed, or slower than the latency target), keeps the
// ratio over several sliding windows, and reports it as a burn rate: how
// many times faster than "exactly on objective" the tenant's error budget
// is being spent. Burn rate 1.0 consumes the budget exactly at the
// objective's pace; 14.4 on a 99% objective is the classic page-now
// threshold. Multi-window gauges (default 1m/5m/30m) let alerting combine
// a fast and a slow window, and every tenant's p99 carries an exemplar
// trace ID so the slow tail is immediately stitchable.
//
// A nil *SLOTracker is valid and permanently off: Observe on nil is a
// bare receiver check, keeping the job hot path allocation-free when SLO
// accounting is disabled (see the allocation pin in internal/palsvc).

// sloBuckets is the number of rotating sub-buckets per window: staleness
// resolution is window/sloBuckets.
const sloBuckets = 16

// SLOConfig parameterizes a tracker.
type SLOConfig struct {
	// Objective is the target good-request fraction, e.g. 0.99.
	// Defaults to 0.99.
	Objective float64
	// LatencyTarget classifies slow-but-successful requests as bad.
	// Defaults to 250ms. <0 disables latency classification.
	LatencyTarget time.Duration
	// Windows are the sliding windows burn rates are reported over.
	// Defaults to 1m, 5m, 30m.
	Windows []time.Duration
	// SampleSize is the per-tenant ring of recent latencies backing the
	// p50/p99 gauges and exemplars. Defaults to 512.
	SampleSize int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.LatencyTarget == 0 {
		c.LatencyTarget = 250 * time.Millisecond
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 512
	}
	return c
}

// sloBucket is one rotating slot of a window; epoch is the absolute bucket
// number it was last written for, so stale slots are detected lazily.
type sloBucket struct {
	epoch     int64
	good, bad uint64
}

// sloWindow is one sliding window: sloBuckets rotating slots of
// width/sloBuckets each.
type sloWindow struct {
	width  time.Duration
	bucket time.Duration
	slots  [sloBuckets]sloBucket
}

func (w *sloWindow) observe(now time.Time, bad bool) {
	epoch := now.UnixNano() / int64(w.bucket)
	s := &w.slots[epoch%sloBuckets]
	if s.epoch != epoch {
		*s = sloBucket{epoch: epoch}
	}
	if bad {
		s.bad++
	} else {
		s.good++
	}
}

// totals sums the slots still inside the window ending at now.
func (w *sloWindow) totals(now time.Time) (good, bad uint64) {
	epoch := now.UnixNano() / int64(w.bucket)
	for i := range w.slots {
		if s := &w.slots[i]; s.epoch > epoch-sloBuckets && s.epoch <= epoch {
			good += s.good
			bad += s.bad
		}
	}
	return good, bad
}

// latSample is one recent request in a tenant's quantile ring.
type latSample struct {
	d     time.Duration
	trace TraceID
}

// tenantSLO is one tenant's accounting state.
type tenantSLO struct {
	good, bad uint64 // lifetime totals
	windows   []*sloWindow
	ring      []latSample // recent latencies, ring buffer
	next, n   int
}

// SLOTracker is the windowed per-tenant error-budget accountant.
type SLOTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	tenants map[string]*tenantSLO
	order   []string
	now     func() time.Time // test hook

	reg    *Registry
	prefix string
}

// NewSLOTracker returns a tracker with cfg's defaults applied.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), tenants: map[string]*tenantSLO{}, now: time.Now}
}

// Config returns the tracker's effective (defaulted) configuration.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// Bind attaches a registry: every tenant seen from now on (and every
// tenant already seen) gets burn-rate gauges per window and p50/p99
// latency gauges, the p99 carrying an exemplar trace ID. prefix namespaces
// the family names ("palsvc" → palsvc_slo_burn_rate). Call before or
// after observations; registration is idempotent.
func (t *SLOTracker) Bind(reg *Registry, prefix string) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	t.reg = reg
	t.prefix = prefix
	known := append([]string(nil), t.order...)
	t.mu.Unlock()
	for _, tenant := range known {
		t.bindTenant(tenant)
	}
}

// bindTenant registers one tenant's gauge series. Called without t.mu held:
// scrape callbacks take t.mu under the registry lock, so registration must
// take the locks in the same registry-then-tracker order.
func (t *SLOTracker) bindTenant(tenant string) {
	t.mu.Lock()
	reg, prefix := t.reg, t.prefix
	t.mu.Unlock()
	if reg == nil {
		return
	}
	lbl := Label{Name: "tenant", Value: tenant}
	for _, w := range t.cfg.Windows {
		w := w
		reg.GaugeFunc(prefix+"_slo_burn_rate",
			"Error-budget burn rate per tenant and window (1.0 = spending exactly at the objective's pace).",
			func() float64 { return t.burnRate(tenant, w) },
			lbl, Label{Name: "window", Value: w.String()})
	}
	reg.CounterFunc(prefix+"_slo_requests_total",
		"Requests classified by the SLO tracker for this tenant.",
		func() float64 { g, b := t.lifetime(tenant); return float64(g + b) }, lbl)
	reg.CounterFunc(prefix+"_slo_bad_total",
		"Requests that failed or missed the latency target for this tenant.",
		func() float64 { _, b := t.lifetime(tenant); return float64(b) }, lbl)
	reg.GaugeFunc(prefix+"_slo_latency_seconds",
		"Recent request latency per tenant, by quantile (p99 carries an exemplar trace ID).",
		func() float64 { d, _ := t.quantile(tenant, 0.50); return d.Seconds() },
		lbl, Label{Name: "quantile", Value: "0.5"})
	reg.GaugeFuncExemplar(prefix+"_slo_latency_seconds",
		"Recent request latency per tenant, by quantile (p99 carries an exemplar trace ID).",
		func() float64 { d, _ := t.quantile(tenant, 0.99); return d.Seconds() },
		func() (string, float64, bool) {
			d, trace := t.quantile(tenant, 0.99)
			if trace.IsZero() {
				return "", 0, false
			}
			return trace.String(), d.Seconds(), true
		},
		lbl, Label{Name: "quantile", Value: "0.99"})
}

// Observe classifies one finished request. Nil-safe and allocation-free on
// a nil tracker; trace may be zero when tracing is off.
func (t *SLOTracker) Observe(tenant string, latency time.Duration, failed bool, trace TraceID) {
	if t == nil {
		return
	}
	bad := failed || (t.cfg.LatencyTarget > 0 && latency > t.cfg.LatencyTarget)
	t.mu.Lock()
	ts, isNew := t.tenants[tenant], false
	if ts == nil {
		ts = &tenantSLO{ring: make([]latSample, t.cfg.SampleSize)}
		for _, w := range t.cfg.Windows {
			ts.windows = append(ts.windows, &sloWindow{width: w, bucket: w / sloBuckets})
		}
		t.tenants[tenant] = ts
		t.order = append(t.order, tenant)
		isNew = t.reg != nil
	}
	now := t.now()
	if bad {
		ts.bad++
	} else {
		ts.good++
	}
	for _, w := range ts.windows {
		w.observe(now, bad)
	}
	ts.ring[ts.next] = latSample{d: latency, trace: trace}
	ts.next = (ts.next + 1) % len(ts.ring)
	if ts.n < len(ts.ring) {
		ts.n++
	}
	t.mu.Unlock()
	if isNew {
		t.bindTenant(tenant)
	}
}

// burnRate computes one tenant's burn over the window ending now:
// bad-ratio divided by the budget (1 - objective). Zero-traffic windows
// burn nothing.
func (t *SLOTracker) burnRate(tenant string, window time.Duration) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tenants[tenant]
	if ts == nil {
		return 0
	}
	for _, w := range ts.windows {
		if w.width == window {
			good, bad := w.totals(t.now())
			if good+bad == 0 {
				return 0
			}
			ratio := float64(bad) / float64(good+bad)
			return ratio / (1 - t.cfg.Objective)
		}
	}
	return 0
}

func (t *SLOTracker) lifetime(tenant string) (good, bad uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.tenants[tenant]; ts != nil {
		return ts.good, ts.bad
	}
	return 0, 0
}

// quantile returns the q-th latency quantile over the tenant's recent ring
// and the trace ID of the sample holding that rank — the exemplar.
func (t *SLOTracker) quantile(tenant string, q float64) (time.Duration, TraceID) {
	if t == nil {
		return 0, TraceID{}
	}
	t.mu.Lock()
	ts := t.tenants[tenant]
	if ts == nil || ts.n == 0 {
		t.mu.Unlock()
		return 0, TraceID{}
	}
	samples := make([]latSample, ts.n)
	start := ts.next - ts.n
	if start < 0 {
		start += len(ts.ring)
	}
	for i := 0; i < ts.n; i++ {
		samples[i] = ts.ring[(start+i)%len(ts.ring)]
	}
	t.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i].d < samples[j].d })
	rank := int(q * float64(len(samples)-1))
	return samples[rank].d, samples[rank].trace
}

// TenantSLO is one tenant's row in the snapshot (/debug/slo).
type TenantSLO struct {
	Tenant   string             `json:"tenant"`
	Requests uint64             `json:"requests"`
	Bad      uint64             `json:"bad"`
	P50      time.Duration      `json:"p50_ns"`
	P99      time.Duration      `json:"p99_ns"`
	P99Trace string             `json:"p99_trace,omitempty"`
	Burn     map[string]float64 `json:"burn_rate"` // window → burn
}

// SLOSnapshot is the full tracker state.
type SLOSnapshot struct {
	Objective     float64       `json:"objective"`
	LatencyTarget time.Duration `json:"latency_target_ns"`
	Windows       []string      `json:"windows"`
	Tenants       []TenantSLO   `json:"tenants"`
}

// Snapshot assembles the current per-tenant view, tenants in first-seen
// order. Nil-safe.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	t.mu.Lock()
	tenants := append([]string(nil), t.order...)
	t.mu.Unlock()
	snap := SLOSnapshot{Objective: t.cfg.Objective, LatencyTarget: t.cfg.LatencyTarget}
	for _, w := range t.cfg.Windows {
		snap.Windows = append(snap.Windows, w.String())
	}
	for _, tenant := range tenants {
		good, bad := t.lifetime(tenant)
		p50, _ := t.quantile(tenant, 0.50)
		p99, trace := t.quantile(tenant, 0.99)
		row := TenantSLO{
			Tenant: tenant, Requests: good + bad, Bad: bad,
			P50: p50, P99: p99, Burn: map[string]float64{},
		}
		if !trace.IsZero() {
			row.P99Trace = trace.String()
		}
		for _, w := range t.cfg.Windows {
			row.Burn[w.String()] = t.burnRate(tenant, w)
		}
		snap.Tenants = append(snap.Tenants, row)
	}
	return snap
}

// Handler serves the snapshot as JSON — the /debug/slo endpoint.
func (t *SLOTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot())
	})
}
