package obs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// TraceID is a 128-bit trace identifier. The low word is a process-local
// sequence number; the high word carries the node epoch SetNode installs,
// so traces minted on different processes never collide once a daemon has
// called SetNode(NewNodeID()).
//
// A purely local TraceID (Hi == 0) keeps the compact decimal rendering the
// repo has used since ISSUE 2 — in JSON dumps, flight-recorder bundles and
// tcbtrace output alike — so deterministic differential tests and old
// trace files stay readable. A cluster TraceID renders as 32 hex digits.
type TraceID struct {
	Hi uint64
	Lo uint64
}

// IsZero reports whether t is the anonymous trace 0.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the compact form: decimal when the high word is zero,
// 32 hex digits otherwise. ParseTraceID inverts both.
func (t TraceID) String() string {
	if t.Hi == 0 {
		return strconv.FormatUint(t.Lo, 10)
	}
	return fmt.Sprintf("%016x%016x", t.Hi, t.Lo)
}

// ParseTraceID inverts TraceID.String: a 32-hex-digit string parses as the
// full 128 bits; anything shorter parses as decimal first, then as up to 16
// hex digits (so copy-pasting a truncated hex ID still works).
func ParseTraceID(s string) (TraceID, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	if s == "" {
		return TraceID{}, fmt.Errorf("obs: empty trace id")
	}
	if len(s) == 32 {
		hi, err := strconv.ParseUint(s[:16], 16, 64)
		if err != nil {
			return TraceID{}, fmt.Errorf("obs: bad trace id %q: %v", s, err)
		}
		lo, err := strconv.ParseUint(s[16:], 16, 64)
		if err != nil {
			return TraceID{}, fmt.Errorf("obs: bad trace id %q: %v", s, err)
		}
		return TraceID{Hi: hi, Lo: lo}, nil
	}
	if lo, err := strconv.ParseUint(s, 10, 64); err == nil {
		return TraceID{Lo: lo}, nil
	}
	if len(s) <= 16 {
		if lo, err := strconv.ParseUint(s, 16, 64); err == nil {
			return TraceID{Lo: lo}, nil
		}
	}
	return TraceID{}, fmt.Errorf("obs: bad trace id %q", s)
}

// MarshalJSON emits a bare number for local IDs — byte-for-byte what the
// pre-cluster encoder wrote — and a quoted 32-hex string for cluster IDs.
func (t TraceID) MarshalJSON() ([]byte, error) {
	if t.Hi == 0 {
		return strconv.AppendUint(nil, t.Lo, 10), nil
	}
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts both encodings.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		id, err := ParseTraceID(string(b[1 : len(b)-1]))
		if err != nil {
			return err
		}
		*t = id
		return nil
	}
	lo, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("obs: bad trace id %s: %v", b, err)
	}
	*t = TraceID{Lo: lo}
	return nil
}

// NewNodeID derives a process-unique node epoch for Tracer.SetNode: the
// boot wall clock mixed with the pid, diffused through a splitmix64 round
// so two daemons started the same nanosecond on one host still diverge.
// Daemons call this once at startup; tests that need deterministic IDs
// simply never install a node.
func NewNodeID() uint64 {
	x := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e9b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
