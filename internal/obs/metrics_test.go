package obs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// checkSampleLine validates one non-comment exposition line against the
// text-format grammar subset this repo emits: metric{label="v",...} value.
func checkSampleLine(line string) error {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !metricNameRE.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "} ")
		if end < 0 {
			return fmt.Errorf("unterminated label set")
		}
		labels := rest[1:end]
		for _, pair := range splitLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !labelNameRE.MatchString(k) && k != "le" {
				return fmt.Errorf("bad label pair %q", pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return fmt.Errorf("unquoted label value %q", v)
			}
		}
		rest = rest[end+1:]
	}
	value := strings.TrimSpace(rest)
	if value == "+Inf" || value == "-Inf" || value == "NaN" {
		return nil
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		return fmt.Errorf("bad sample value %q: %v", value, err)
	}
	return nil
}

// splitLabels splits a rendered label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func exposition(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// mustLine asserts the exposition contains the exact line.
func mustLine(t *testing.T, text, line string) {
	t.Helper()
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("exposition missing line %q:\n%s", line, text)
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Fatalf("counter value %v", c.Value())
	}
	text := exposition(t, r)
	mustLine(t, text, "# HELP jobs_total Total jobs.")
	mustLine(t, text, "# TYPE jobs_total counter")
	mustLine(t, text, "jobs_total 3")
}

func TestLabeledSeriesShareOneFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("rej_total", "Rejections.", Label{Name: "cause", Value: "queue_full"}).Inc()
	r.Counter("rej_total", "Rejections.", Label{Name: "cause", Value: "bank"}).Add(2)
	text := exposition(t, r)
	if strings.Count(text, "# TYPE rej_total counter") != 1 {
		t.Fatalf("family headers duplicated:\n%s", text)
	}
	mustLine(t, text, `rej_total{cause="queue_full"} 1`)
	mustLine(t, text, `rej_total{cause="bank"} 2`)
}

func TestGaugeAndCallbacks(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge %v", g.Value())
	}
	n := 7.0
	r.GaugeFunc("live", "Sampled.", func() float64 { return n })
	r.CounterFunc("served_total", "Sampled counter.", func() float64 { return 11 })
	text := exposition(t, r)
	mustLine(t, text, "depth 3")
	mustLine(t, text, "live 7")
	mustLine(t, text, "served_total 11")
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	text := exposition(t, r)
	mustLine(t, text, "# TYPE lat_seconds histogram")
	mustLine(t, text, `lat_seconds_bucket{le="0.1"} 1`)
	mustLine(t, text, `lat_seconds_bucket{le="1"} 3`)
	mustLine(t, text, `lat_seconds_bucket{le="10"} 4`)
	mustLine(t, text, `lat_seconds_bucket{le="+Inf"} 5`)
	mustLine(t, text, "lat_seconds_count 5")
	if !strings.Contains(text, "lat_seconds_sum 106.05") {
		t.Fatalf("sum missing:\n%s", text)
	}
}

func TestHistogramLabelSplicesLe(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "Stages.", []float64{1},
		Label{Name: "stage", Value: "execute"})
	h.Observe(0.5)
	text := exposition(t, r)
	mustLine(t, text, `stage_seconds_bucket{stage="execute",le="1"} 1`)
	mustLine(t, text, `stage_seconds_bucket{stage="execute",le="+Inf"} 1`)
	mustLine(t, text, `stage_seconds_count{stage="execute"} 1`)
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{Name: "p", Value: `a"b\c` + "\n"}).Inc()
	text := exposition(t, r)
	mustLine(t, text, `esc_total{p="a\"b\\c\n"} 1`)
}

func TestInvalidNamesAndTypeClashesPanic(t *testing.T) {
	r := NewRegistry()
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("bad metric name", func() { r.Counter("1bad", "") })
	expectPanic("bad label name", func() { r.Counter("ok_total", "", Label{Name: "0x", Value: "v"}) })
	r.Counter("twice", "")
	expectPanic("type clash", func() { r.Gauge("twice", "") })
	expectPanic("unsorted bounds", func() { r.Histogram("h_seconds", "", []float64{2, 1}) })
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c_seconds", "", nil).Observe(1)
	r.CounterFunc("d_total", "", func() float64 { return 1 })
	r.GaugeFunc("e", "", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestExpositionParses runs a minimal line-shape parser over a fully
// populated registry: every non-comment line must be `name{labels} value`
// with a parseable float value — the contract a Prometheus scraper needs.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs.").Add(3)
	r.Gauge("depth", "Depth.").Set(2)
	r.Histogram("lat_seconds", "Latency.", nil, Label{Name: "stage", Value: "q"}).Observe(0.01)
	for i, line := range strings.Split(exposition(t, r), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if err := checkSampleLine(line); err != nil {
			t.Fatalf("line %d %q: %v", i+1, line, err)
		}
	}
}

func TestRegisterTracerMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(4)
	RegisterTracerMetrics(reg, tr)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obs_trace_ring_size 4", "obs_trace_dropped_total 0"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}

	// Overflow the ring: the dropped counter must rise with it.
	ctx := tr.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Event(ctx, "e", "test", 0)
	}
	b.Reset()
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_trace_dropped_total 6") {
		t.Fatalf("dropped counter did not track the ring:\n%s", b.String())
	}
}

// A nil tracer still registers both series, reading zero — the debug stack
// wires metrics and tracing independently.
func TestRegisterTracerMetricsNilTracer(t *testing.T) {
	reg := NewRegistry()
	RegisterTracerMetrics(reg, nil)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obs_trace_ring_size 0", "obs_trace_dropped_total 0"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("nil-tracer exposition missing %q:\n%s", want, b.String())
		}
	}
}
