package obs

import (
	"testing"
	"time"

	"minimaltcb/internal/sim"
)

// The disabled paths are what every hot loop in sksm/tpm/palsvc pays when
// tracing is compiled in but off — ISSUE 2 budgets them at <5% of loadgen
// throughput, so they must stay at nil-check cost.

func BenchmarkStartSpanDisabled(b *testing.B) {
	tr := NewTracer(64)
	tr.SetEnabled(false)
	ctx := Context{Trace: TraceID{Lo: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(ctx, "x", "y")
		sp.Attr("k", "v")
		sp.End()
	}
}

func BenchmarkScopeDisabled(b *testing.B) {
	var sc *Scope // a machine with no tracer carries a nil scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := sc.Start("x", "y")
		sc.End(sp)
	}
}

func BenchmarkScopeEnabled(b *testing.B) {
	sc := NewScope(NewTracer(1024), sim.NewClock())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := sc.Start("x", "y")
		sc.End(sp)
	}
}

func BenchmarkEventEnabled(b *testing.B) {
	tr := NewTracer(1024)
	ctx := tr.NewTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event(ctx, "x", "y", time.Duration(i))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

// The SLO tracker rides the job-completion path: disabled it must cost one
// nil check, enabled it stays on per-tenant fixed-size state.

func BenchmarkSLOObserveDisabled(b *testing.B) {
	var t *SLOTracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Observe("tenant", time.Millisecond, false, TraceID{Lo: 1})
	}
}

func BenchmarkSLOObserveEnabled(b *testing.B) {
	t := NewSLOTracker(SLOConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Observe("tenant", time.Millisecond, i%100 == 0, TraceID{Lo: uint64(i)})
	}
}

// TraceID parse/format run once per wire request on traced clusters.

func BenchmarkTraceIDString(b *testing.B) {
	id := TraceID{Hi: 0xabcdef0123456789, Lo: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = id.String()
	}
}

func BenchmarkTraceIDParse(b *testing.B) {
	s := TraceID{Hi: 0xabcdef0123456789, Lo: 42}.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTraceID(s); err != nil {
			b.Fatal(err)
		}
	}
}
