package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func debugFixture(t *testing.T) (*httptest.Server, *Registry, *Tracer, *Health) {
	t.Helper()
	reg := NewRegistry()
	tracer := NewTracer(64)
	health := &Health{}
	srv := httptest.NewServer(NewDebugMux(reg, tracer, health))
	t.Cleanup(srv.Close)
	return srv, reg, tracer, health
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	srv, reg, _, _ := debugFixture(t)
	reg.Counter("palsvc_jobs_submitted_total", "Jobs.").Add(4)
	reg.Histogram("palsvc_stage_duration_seconds", "Stages.", nil,
		Label{Name: "stage", Value: "execute"}).Observe(0.002)

	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "palsvc_jobs_submitted_total 4") {
		t.Fatalf("counter missing:\n%s", body)
	}
	if !strings.Contains(body, `palsvc_stage_duration_seconds_bucket{stage="execute",le="+Inf"} 1`) {
		t.Fatalf("histogram missing:\n%s", body)
	}
	// Every sample line must parse.
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if err := checkSampleLine(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
}

func TestHealthzFlipsTo503(t *testing.T) {
	srv, _, _, health := debugFixture(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: status %d body %q", resp.StatusCode, body)
	}

	health.Fail("shutting down")
	resp, body = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed health: status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "shutting down") {
		t.Fatalf("reason missing from %q", body)
	}

	health.Ready()
	resp, _ = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered health: status %d", resp.StatusCode)
	}
}

func TestDebugTraceRoundTripsJSONL(t *testing.T) {
	srv, _, tracer, _ := debugFixture(t)
	ctx := tracer.NewTrace()
	tracer.StartSpan(ctx, "execute", "pipeline").Attr("cpu", "0").End()
	tracer.Event(ctx, "SYIELD", "sksm", 5*time.Nanosecond)

	resp, body := get(t, srv.URL+"/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Dropped") != "0" {
		t.Fatalf("dropped header %q", resp.Header.Get("X-Trace-Dropped"))
	}
	recs, err := ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if len(recs) != 2 || recs[0].Name != "execute" || recs[1].Name != "SYIELD" {
		t.Fatalf("records %+v", recs)
	}
}

func TestDebugTraceChromeFormat(t *testing.T) {
	srv, _, tracer, _ := debugFixture(t)
	tracer.StartSpan(tracer.NewTrace(), "quote", "pipeline").End()
	resp, body := get(t, srv.URL+"/debug/trace?format=chrome")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) < 3 {
		t.Fatalf("%d trace events", len(doc.TraceEvents))
	}
}

func TestDebugIndexAndPprof(t *testing.T) {
	srv, _, _, _ := debugFixture(t)
	resp, body := get(t, srv.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/debug/trace") {
		t.Fatalf("index: %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, srv.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", resp.StatusCode)
	}
}

func TestDebugMuxNilComponents(t *testing.T) {
	srv := httptest.NewServer(NewDebugMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/healthz", "/debug/trace"} {
		resp, _ := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s with nil components: status %d", path, resp.StatusCode)
		}
	}
}

func TestListenAndServeDebug(t *testing.T) {
	ds, err := ListenAndServeDebug("127.0.0.1:0", NewDebugMux(nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, _ := get(t, "http://"+ds.Addr()+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ds.Addr() + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
