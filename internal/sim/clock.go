// Package sim provides the simulation substrate shared by every hardware
// model in this repository: a virtual clock, per-component timelines,
// run-statistics helpers, and a deterministic random source.
//
// All hardware latencies in the simulator are expressed as virtual
// time.Duration values charged against a Clock. Nothing in the simulator
// sleeps; "time" is pure accounting, which keeps experiments deterministic
// and lets a full PAL session that would take seconds of wall-clock time on
// 2007 hardware run in microseconds of real time.
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value is a clock at time zero, ready to
// use. Clock is not safe for concurrent use; the simulator is structured as
// a deterministic single-threaded discrete-event loop.
type Clock struct {
	now time.Duration
	// skewed accumulates drift injected via Skew, so experiments can
	// report how far a replica's clock was pushed.
	skewed time.Duration
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from simulation start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Advance panics if d is negative:
// virtual time never flows backwards, and a negative charge always indicates
// a bug in a timing model.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to the absolute virtual time t. It is a
// no-op if t is in the past; this makes it convenient for synchronizing a
// component timeline with another that has raced ahead.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only test harnesses and the benchmark
// driver call this, between independent trials.
func (c *Clock) Reset() { c.now, c.skewed = 0, 0 }

// Skew advances the clock by d and separately accounts it as injected
// drift (internal/chaos models per-machine clock skew with it). Like
// Advance it panics on negative d: skew only ever moves a replica ahead —
// rewinding virtual time would break every open Stopwatch interval.
func (c *Clock) Skew(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock skew %v", d))
	}
	c.now += d
	c.skewed += d
}

// Skewed reports the total injected drift accumulated via Skew.
func (c *Clock) Skewed() time.Duration { return c.skewed }

// Stopwatch measures an interval of virtual time on a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins an interval measurement at the clock's current time.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the virtual time accumulated since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Timeline tracks the busy time of one component (typically a CPU core) on
// top of a shared clock. The paper's concurrency results hinge on which
// cores are stalled during which operations, so each core keeps its own
// availability horizon.
type Timeline struct {
	// BusyUntil is the absolute virtual time at which the component
	// becomes free again.
	BusyUntil time.Duration
	// Busy accumulates total busy time, for utilization reporting.
	Busy time.Duration
}

// Occupy marks the component busy for d starting no earlier than `from`,
// and returns the time at which the work completes.
func (t *Timeline) Occupy(from, d time.Duration) time.Duration {
	start := from
	if t.BusyUntil > start {
		start = t.BusyUntil
	}
	t.BusyUntil = start + d
	t.Busy += d
	return t.BusyUntil
}

// Utilization returns the fraction of the window [0, horizon] the component
// spent busy. It reports 0 for a non-positive horizon.
func (t *Timeline) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(t.Busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}
