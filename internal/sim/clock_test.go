package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Millisecond)
	c.Advance(250 * time.Microsecond)
	if got, want := c.Now(), 3250*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-time.Nanosecond)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(10 * time.Millisecond)
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("AdvanceTo forward: got %v", c.Now())
	}
	c.AdvanceTo(5 * time.Millisecond) // in the past: no-op
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("AdvanceTo backward moved the clock: %v", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset clock at %v", c.Now())
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.Advance(time.Millisecond)
	sw := StartStopwatch(c)
	c.Advance(7 * time.Millisecond)
	if got := sw.Elapsed(); got != 7*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 7ms", got)
	}
}

// Property: the clock is monotone under any sequence of non-negative
// advances, and its final reading equals the sum of the advances.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		var sum time.Duration
		prev := c.Now()
		for _, s := range steps {
			d := time.Duration(s) * time.Microsecond
			c.Advance(d)
			sum += d
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineOccupySequential(t *testing.T) {
	var tl Timeline
	end := tl.Occupy(0, 10*time.Millisecond)
	if end != 10*time.Millisecond {
		t.Fatalf("first occupy ends at %v", end)
	}
	// A request arriving at t=5ms must queue behind the busy window.
	end = tl.Occupy(5*time.Millisecond, 10*time.Millisecond)
	if end != 20*time.Millisecond {
		t.Fatalf("queued occupy ends at %v, want 20ms", end)
	}
	if tl.Busy != 20*time.Millisecond {
		t.Fatalf("busy total %v, want 20ms", tl.Busy)
	}
}

func TestTimelineOccupyIdleGap(t *testing.T) {
	var tl Timeline
	tl.Occupy(0, time.Millisecond)
	end := tl.Occupy(10*time.Millisecond, 2*time.Millisecond)
	if end != 12*time.Millisecond {
		t.Fatalf("occupy after gap ends at %v, want 12ms", end)
	}
	if tl.Busy != 3*time.Millisecond {
		t.Fatalf("busy total %v, want 3ms (gap must not count)", tl.Busy)
	}
}

func TestTimelineUtilization(t *testing.T) {
	var tl Timeline
	tl.Occupy(0, 25*time.Millisecond)
	if u := tl.Utilization(100 * time.Millisecond); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
	if u := tl.Utilization(0); u != 0 {
		t.Fatalf("utilization over zero horizon = %v, want 0", u)
	}
	if u := tl.Utilization(10 * time.Millisecond); u != 1 {
		t.Fatalf("utilization clamps to 1, got %v", u)
	}
}

// Property: BusyUntil never decreases across any sequence of Occupy calls.
func TestTimelineBusyUntilMonotoneProperty(t *testing.T) {
	f := func(reqs []struct{ From, Dur uint16 }) bool {
		var tl Timeline
		prev := tl.BusyUntil
		for _, r := range reqs {
			tl.Occupy(time.Duration(r.From)*time.Microsecond,
				time.Duration(r.Dur)*time.Microsecond)
			if tl.BusyUntil < prev {
				return false
			}
			prev = tl.BusyUntil
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
