package sim

import "encoding/binary"

// RNG is a small deterministic pseudo-random generator (SplitMix64). The
// simulator uses it for noise injection in timing models and for TPM
// GetRandom output so that every experiment is exactly reproducible from a
// seed. It is not, and does not need to be, cryptographically strong: the
// only cryptographic randomness the system consumes (RSA key generation)
// comes from crypto/rand via a seeded stream in the TPM package.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum-of-uniforms (Irwin–Hall) method, which is plenty for timing jitter.
func (r *RNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Fill writes pseudo-random bytes into p.
func (r *RNG) Fill(p []byte) {
	var buf [8]byte
	for len(p) > 0 {
		binary.LittleEndian.PutUint64(buf[:], r.Uint64())
		n := copy(p, buf[:])
		p = p[n:]
	}
}

// Read implements io.Reader, never returning an error. This lets the RNG
// stand in wherever a randomness stream is needed deterministically.
func (r *RNG) Read(p []byte) (int, error) {
	r.Fill(p)
	return len(p), nil
}
