package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between distinct seeds", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(0).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGNormRoughlyCentered(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.NormFloat64()
	}
	mean := sum / n
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
}

func TestRNGFillAndRead(t *testing.T) {
	r := NewRNG(3)
	buf := make([]byte, 37)
	n, err := r.Read(buf)
	if err != nil || n != 37 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Read produced all-zero bytes")
	}
}

// Property: Fill is deterministic per seed and length.
func TestRNGFillDeterministicProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		a := make([]byte, int(n))
		b := make([]byte, int(n))
		NewRNG(seed).Fill(a)
		NewRNG(seed).Fill(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
