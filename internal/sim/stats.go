package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates duration observations across repeated trials of an
// experiment and reports the summary statistics the paper publishes
// (averages over 100 runs in Figure 2, averages with standard deviation over
// 20 trials in Figure 3 and Table 2).
type Sample struct {
	values []time.Duration
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) { s.values = append(s.values, d) }

// N returns the number of observations recorded.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.values {
		sum += v
	}
	return sum / time.Duration(len(s.values))
}

// Stdev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Sample) Stdev() time.Duration {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, v := range s.values {
		d := float64(v) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Min returns the smallest observation, or 0 if empty.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or 0 if empty.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy; it returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	return s.Percentiles(p)[0]
}

// Percentiles computes several percentiles with a single sort — callers
// summarizing a distribution (mean/p50/p95/p99) would otherwise re-sort
// the sample once per rank. Degenerate samples are well-defined: an empty
// sample yields all zeros, a single observation yields that value at every
// rank, and p outside [0, 100] (including NaN) clamps to the extremes.
func (s *Sample) Percentiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(s.values) == 0 {
		return out
	}
	sorted := make([]time.Duration, len(s.values))
	copy(sorted, s.values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		switch {
		case !(p > 0): // includes NaN
			out[i] = sorted[0]
		case p >= 100:
			out[i] = sorted[len(sorted)-1]
		default:
			rank := int(math.Ceil(p / 100 * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			if rank > len(sorted) {
				rank = len(sorted)
			}
			out[i] = sorted[rank-1]
		}
	}
	return out
}

// Millis formats a duration as fractional milliseconds with two decimals,
// the unit every table in the paper uses.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// Micros formats a duration as fractional microseconds with four decimals,
// matching Table 2's precision.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.4f", float64(d)/float64(time.Microsecond))
}
