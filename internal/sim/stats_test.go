package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Stdev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	if s.Percentile(50) != 0 {
		t.Fatal("empty sample percentile must be 0")
	}
}

func TestSampleMean(t *testing.T) {
	var s Sample
	for _, v := range []time.Duration{10, 20, 30} {
		s.Add(v * time.Millisecond)
	}
	if got := s.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", got)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSampleStdev(t *testing.T) {
	var s Sample
	// Values 2,4,4,4,5,5,7,9 have sample stdev sqrt(32/7) ≈ 2.138.
	for _, v := range []time.Duration{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v * time.Second)
	}
	got := float64(s.Stdev()) / float64(time.Second)
	if got < 2.13 || got > 2.15 {
		t.Fatalf("stdev = %v s, want ≈2.138 s", got)
	}
}

func TestSampleStdevSingleValue(t *testing.T) {
	var s Sample
	s.Add(time.Second)
	if s.Stdev() != 0 {
		t.Fatal("stdev of single observation must be 0")
	}
}

func TestSampleMinMax(t *testing.T) {
	var s Sample
	for _, v := range []time.Duration{5, 1, 9, 3} {
		s.Add(v)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSamplePercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
}

func TestSamplePercentilesBatch(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i))
	}
	got := s.Percentiles(50, 95, 99)
	want := []time.Duration{50, 95, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The batch must agree with the single-rank method.
	for _, p := range []float64{0, 1, 25, 50, 99, 100} {
		if b := s.Percentiles(p)[0]; b != s.Percentile(p) {
			t.Fatalf("Percentiles(%v) = %v, Percentile = %v", p, b, s.Percentile(p))
		}
	}
}

func TestSamplePercentilesDegenerate(t *testing.T) {
	var empty Sample
	for i, v := range empty.Percentiles(50, 95, 99) {
		if v != 0 {
			t.Fatalf("empty sample rank %d = %v", i, v)
		}
	}

	var one Sample
	one.Add(7 * time.Millisecond)
	for i, v := range one.Percentiles(0, 50, 100) {
		if v != 7*time.Millisecond {
			t.Fatalf("single-value sample rank %d = %v", i, v)
		}
	}

	// Out-of-range and NaN ranks clamp to the extremes; no index panics.
	var s Sample
	s.Add(1)
	s.Add(2)
	got := s.Percentiles(-50, math.NaN(), 150)
	if got[0] != 1 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("clamped ranks = %v", got)
	}

	if out := s.Percentiles(); len(out) != 0 {
		t.Fatalf("no-rank call returned %v", out)
	}
}

// Property: Min <= Mean <= Max for any non-empty sample, and the mean of n
// copies of x is x.
func TestSampleOrderingProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleConstantProperty(t *testing.T) {
	f := func(x uint32, n uint8) bool {
		if n == 0 {
			return true
		}
		var s Sample
		for i := 0; i < int(n); i++ {
			s.Add(time.Duration(x))
		}
		return s.Mean() == time.Duration(x) && s.Stdev() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMillisFormatting(t *testing.T) {
	if got := Millis(177520 * time.Microsecond); got != "177.52" {
		t.Fatalf("Millis = %q, want 177.52", got)
	}
	if got := Millis(0); got != "0.00" {
		t.Fatalf("Millis(0) = %q", got)
	}
}

func TestMicrosFormatting(t *testing.T) {
	if got := Micros(558 * time.Nanosecond); got != "0.5580" {
		t.Fatalf("Micros = %q, want 0.5580", got)
	}
}
