package chipset

import "fmt"

// Device models a DMA-capable add-on card — the paper's threat model
// explicitly grants the attacker "a DMA-capable Ethernet card with access
// to the PCI bus" (§3.2). Attack tests drive reads and writes through a
// Device at a protected PAL's memory and assert refusal.
type Device struct {
	name string
	chip *Chipset

	// Reads/Writes count successful transfers; Denied counts refusals.
	Reads, Writes, Denied int
}

// NewDevice attaches a named DMA device to the chipset.
func NewDevice(name string, chip *Chipset) *Device {
	return &Device{name: name, chip: chip}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Read issues a DMA read.
func (d *Device) Read(addr uint32, n int) ([]byte, error) {
	b, err := d.chip.DMARead(addr, n)
	if err != nil {
		d.Denied++
		return nil, fmt.Errorf("%s: %w", d.name, err)
	}
	d.Reads++
	return b, nil
}

// Write issues a DMA write.
func (d *Device) Write(addr uint32, b []byte) error {
	if err := d.chip.DMAWrite(addr, b); err != nil {
		d.Denied++
		return fmt.Errorf("%s: %w", d.name, err)
	}
	d.Writes++
	return nil
}
