// Package chipset models the north and south bridges of the simulated
// platform: every memory request — from a CPU or from a DMA-capable device —
// is routed through the memory controller, which consults the per-page
// access-control table and the DEV bit vector before letting it through.
//
// This is where the paper's isolation property is enforced mechanically: a
// compromised OS on another core, or a malicious PCI device issuing DMA,
// goes through exactly this path and is refused (§3.2, §5.2).
package chipset

import (
	"fmt"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// Chipset ties together memory, the LPC bus and the TPM.
type Chipset struct {
	clock *sim.Clock
	mem   *mem.Memory
	bus   *lpc.Bus
	tpm   *tpm.TPM // nil on TPM-less platforms (Tyan n3600R)

	// DeniedCPU / DeniedDMA count refused requests, for attack tests and
	// reporting.
	DeniedCPU int
	DeniedDMA int
}

// New builds a chipset. The TPM may be nil for platforms without one.
func New(clock *sim.Clock, m *mem.Memory, bus *lpc.Bus, chip *tpm.TPM) *Chipset {
	return &Chipset{clock: clock, mem: m, bus: bus, tpm: chip}
}

// Clock returns the platform clock.
func (c *Chipset) Clock() *sim.Clock { return c.clock }

// Memory returns the physical memory (raw access for hardware microcode).
func (c *Chipset) Memory() *mem.Memory { return c.mem }

// Bus returns the LPC bus.
func (c *Chipset) Bus() *lpc.Bus { return c.bus }

// TPM returns the TPM, or nil if the platform has none.
func (c *Chipset) TPM() *tpm.TPM { return c.tpm }

// HasTPM reports whether a TPM is attached.
func (c *Chipset) HasTPM() bool { return c.tpm != nil }

// checkCPURange verifies every page in [addr, addr+n) is accessible to cpu.
// It iterates the page range directly rather than materializing a page list:
// this runs on every memory access the interpreter makes.
func (c *Chipset) checkCPURange(cpu int, addr uint32, n int) error {
	if n <= 0 {
		return nil
	}
	first := mem.PageOf(addr)
	last := mem.PageOf(addr + uint32(n) - 1)
	for p := first; p <= last; p++ {
		if err := c.mem.CheckCPU(p, cpu); err != nil {
			c.DeniedCPU++
			return err
		}
	}
	return nil
}

// CPURead performs a CPU-originated memory read. Every request carries the
// initiating CPU's identity, as on real front-side buses (agent IDs, §5.2).
// The result is a fresh copy the caller may retain; zero-allocation paths
// use CPUReadInto or CPUView.
func (c *Chipset) CPURead(cpu int, addr uint32, n int) ([]byte, error) {
	if err := c.checkCPURange(cpu, addr, n); err != nil {
		return nil, err
	}
	return c.mem.ReadRaw(addr, n)
}

// CPUReadInto performs a checked CPU read into a caller-supplied buffer,
// allocating nothing. The same access-control table consultation as CPURead
// applies.
func (c *Chipset) CPUReadInto(cpu int, addr uint32, dst []byte) error {
	if err := c.checkCPURange(cpu, addr, len(dst)); err != nil {
		return err
	}
	return c.mem.ReadInto(dst, addr)
}

// CPUView performs a checked CPU read and returns a bounded read-only
// subslice aliasing physical memory when the range lies in one backing
// chunk; ok is false when it does not (fall back to CPUReadInto). The view
// must not be written through or retained across writes.
func (c *Chipset) CPUView(cpu int, addr uint32, n int) (b []byte, ok bool, err error) {
	if err := c.checkCPURange(cpu, addr, n); err != nil {
		return nil, false, err
	}
	b, ok = c.mem.View(addr, n)
	return b, ok, nil
}

// CPUReadWord performs a checked 32-bit little-endian read without
// allocating — the instruction-fetch and load path.
func (c *Chipset) CPUReadWord(cpu int, addr uint32) (uint32, error) {
	if err := c.checkCPURange(cpu, addr, 4); err != nil {
		return 0, err
	}
	return c.mem.ReadWordRaw(addr)
}

// CPUWriteWord performs a checked 32-bit little-endian write without
// allocating — the store path.
func (c *Chipset) CPUWriteWord(cpu int, addr uint32, v uint32) error {
	if err := c.checkCPURange(cpu, addr, 4); err != nil {
		return err
	}
	return c.mem.WriteWordRaw(addr, v)
}

// CPUReadByte performs a checked single-byte read without allocating.
func (c *Chipset) CPUReadByte(cpu int, addr uint32) (byte, error) {
	if err := c.checkCPURange(cpu, addr, 1); err != nil {
		return 0, err
	}
	return c.mem.ReadByteRaw(addr)
}

// CPUWriteByte performs a checked single-byte write without allocating.
func (c *Chipset) CPUWriteByte(cpu int, addr uint32, v byte) error {
	if err := c.checkCPURange(cpu, addr, 1); err != nil {
		return err
	}
	return c.mem.WriteByteRaw(addr, v)
}

// CPUWrite performs a CPU-originated memory write.
func (c *Chipset) CPUWrite(cpu int, addr uint32, b []byte) error {
	if err := c.checkCPURange(cpu, addr, len(b)); err != nil {
		return err
	}
	return c.mem.WriteRaw(addr, b)
}

// checkDMARange verifies every page in [addr, addr+n) admits DMA.
func (c *Chipset) checkDMARange(addr uint32, n int) error {
	if n <= 0 {
		return nil
	}
	first := mem.PageOf(addr)
	last := mem.PageOf(addr + uint32(n) - 1)
	for p := first; p <= last; p++ {
		if err := c.mem.CheckDMA(p); err != nil {
			c.DeniedDMA++
			return err
		}
	}
	return nil
}

// DMARead performs a device-originated read; refused for pages that are
// DEV-protected or not in the ALL state.
func (c *Chipset) DMARead(addr uint32, n int) ([]byte, error) {
	if err := c.checkDMARange(addr, n); err != nil {
		return nil, err
	}
	return c.mem.ReadRaw(addr, n)
}

// DMAWrite performs a device-originated write under the same checks.
func (c *Chipset) DMAWrite(addr uint32, b []byte) error {
	if err := c.checkDMARange(addr, len(b)); err != nil {
		return err
	}
	return c.mem.WriteRaw(addr, b)
}

// ProtectRegion claims every page of r for cpu (SLAUNCH's table update,
// §5.6). On any failure the already-claimed pages are rolled back to the
// exact state they held before — critically, a page that was NONE (a
// suspended PAL's) returns to NONE, never to ALL, so a maliciously crafted
// SECB whose region straddles a suspended PAL and a busy page cannot use
// the failure path to expose the suspended PAL's memory.
func (c *Chipset) ProtectRegion(r mem.Region, cpu int) error {
	if r.Size <= 0 {
		return nil
	}
	first, last := r.FirstPage(), r.LastPage()
	// Prior states live on the stack for ordinary (≤ 64 KB + change)
	// regions; append only spills for pathologically large ones.
	var priorBuf [32]mem.PageState
	prior := priorBuf[:0]
	for p := first; p <= last; p++ {
		st, err := c.mem.State(p)
		if err == nil {
			prior = append(prior, st)
			err = c.mem.Claim(p, cpu)
		}
		if err != nil {
			for q := first; q < p; q++ {
				if prior[q-first] == mem.AccessNone {
					_ = c.mem.Seclude(q, cpu)
				} else {
					_ = c.mem.Release(q, cpu)
				}
			}
			return fmt.Errorf("chipset: protect region: %w", err)
		}
	}
	return nil
}

// SecludeRegion moves every page of r from cpu ownership to NONE (PAL
// suspend).
func (c *Chipset) SecludeRegion(r mem.Region, cpu int) error {
	if r.Size <= 0 {
		return nil
	}
	for p, last := r.FirstPage(), r.LastPage(); p <= last; p++ {
		if err := c.mem.Seclude(p, cpu); err != nil {
			return fmt.Errorf("chipset: seclude region: %w", err)
		}
	}
	return nil
}

// ReleaseRegion returns every page of r to ALL (SFREE/SKILL).
func (c *Chipset) ReleaseRegion(r mem.Region, cpu int) error {
	if r.Size <= 0 {
		return nil
	}
	for p, last := r.FirstPage(), r.LastPage(); p <= last; p++ {
		if err := c.mem.Release(p, cpu); err != nil {
			return fmt.Errorf("chipset: release region: %w", err)
		}
	}
	return nil
}

// ShareRegion grants joiner access to every page of r alongside owner —
// the §6 multicore-PAL join. Partial failures roll back.
func (c *Chipset) ShareRegion(r mem.Region, owner, joiner int) error {
	if r.Size <= 0 {
		return nil
	}
	first, last := r.FirstPage(), r.LastPage()
	for p := first; p <= last; p++ {
		if err := c.mem.Share(p, owner, joiner); err != nil {
			for q := first; q < p; q++ {
				_ = c.mem.Unshare(q, joiner)
			}
			return fmt.Errorf("chipset: share region: %w", err)
		}
	}
	return nil
}

// UnshareRegion revokes joiner's access to every page of r.
func (c *Chipset) UnshareRegion(r mem.Region, joiner int) error {
	if r.Size <= 0 {
		return nil
	}
	for p, last := r.FirstPage(), r.LastPage(); p <= last; p++ {
		if err := c.mem.Unshare(p, joiner); err != nil {
			return err
		}
	}
	return nil
}

// SetDEVRegion sets or clears the DEV bits covering r (SKINIT's DMA
// protection for the SLB).
func (c *Chipset) SetDEVRegion(r mem.Region, protected bool) error {
	if r.Size <= 0 {
		return nil
	}
	for p, last := r.FirstPage(), r.LastPage(); p <= last; p++ {
		if err := c.mem.SetDEV(p, protected); err != nil {
			return err
		}
	}
	return nil
}

// RegionState reports the common access state of a region, or an error if
// its pages disagree (useful for assertions and debugging).
func (c *Chipset) RegionState(r mem.Region) (mem.PageState, error) {
	if r.Size <= 0 {
		return mem.AccessAll, nil
	}
	firstPage, lastPage := r.FirstPage(), r.LastPage()
	first, err := c.mem.State(firstPage)
	if err != nil {
		return 0, err
	}
	for p := firstPage + 1; p <= lastPage; p++ {
		st, err := c.mem.State(p)
		if err != nil {
			return 0, err
		}
		if st != first {
			return 0, fmt.Errorf("chipset: region pages disagree: page %d is %v, page %d is %v",
				firstPage, first, p, st)
		}
	}
	return first, nil
}
