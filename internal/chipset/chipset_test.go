package chipset

import (
	"errors"
	"testing"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

func testChipset(t *testing.T, pages int) *Chipset {
	t.Helper()
	clock := sim.NewClock()
	m := mem.New(pages * mem.PageSize)
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := tpm.New(clock, bus, tpm.Config{KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return New(clock, m, bus, chip)
}

func TestCPUReadWriteOnAllPages(t *testing.T) {
	c := testChipset(t, 4)
	if err := c.CPUWrite(0, 100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := c.CPURead(1, 100, 3) // different CPU, page is ALL
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("got % x", got)
	}
}

func TestProtectRegionIsolatesFromOtherCPUs(t *testing.T) {
	c := testChipset(t, 8)
	r := mem.RegionForPages(2, 2)
	if err := c.ProtectRegion(r, 0); err != nil {
		t.Fatal(err)
	}
	// Owner works.
	if err := c.CPUWrite(0, r.Base, []byte("pal state")); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	// Other CPU refused and counted.
	if _, err := c.CPURead(1, r.Base, 4); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("foreign read: %v", err)
	}
	if c.DeniedCPU != 1 {
		t.Fatalf("DeniedCPU = %d", c.DeniedCPU)
	}
	// A read spanning from an ALL page into the region is refused too.
	if _, err := c.CPURead(1, r.Base-8, 16); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("spanning read: %v", err)
	}
}

func TestProtectRegionRollsBackOnConflict(t *testing.T) {
	c := testChipset(t, 8)
	// CPU 1 owns page 3.
	if err := c.ProtectRegion(mem.RegionForPages(3, 1), 1); err != nil {
		t.Fatal(err)
	}
	// CPU 0 tries to protect pages 2–4; page 3 conflicts.
	err := c.ProtectRegion(mem.RegionForPages(2, 3), 0)
	if !errors.Is(err, mem.ErrPageBusy) {
		t.Fatalf("overlapping protect: %v", err)
	}
	// Page 2 must have been rolled back to ALL.
	st, _ := c.Memory().State(2)
	if st != mem.AccessAll {
		t.Fatalf("page 2 state %v after rollback, want ALL", st)
	}
	// Page 3 still owned by CPU 1.
	st, _ = c.Memory().State(3)
	if st != mem.PageState(1) {
		t.Fatalf("page 3 state %v, want CPU1", st)
	}
}

func TestProtectRegionRollbackPreservesNONE(t *testing.T) {
	// Attack from §5 considerations: a crafted region straddling a
	// suspended PAL's NONE pages and a busy page must not, via the
	// failure path, return the NONE pages to ALL.
	c := testChipset(t, 8)
	// Pages 2-3: a suspended PAL (CPU1 owned, then secluded).
	victim := mem.RegionForPages(2, 2)
	if err := c.ProtectRegion(victim, 1); err != nil {
		t.Fatal(err)
	}
	c.CPUWrite(1, victim.Base, []byte("victim secrets"))
	if err := c.SecludeRegion(victim, 1); err != nil {
		t.Fatal(err)
	}
	// Page 4: busy with another PAL.
	if err := c.ProtectRegion(mem.RegionForPages(4, 1), 2); err != nil {
		t.Fatal(err)
	}
	// The attacker's forged region: [2,5) claims the NONE pages, then
	// fails on the CPU2-owned page.
	err := c.ProtectRegion(mem.RegionForPages(2, 3), 3)
	if !errors.Is(err, mem.ErrPageBusy) {
		t.Fatalf("forged protect: %v", err)
	}
	// The suspended PAL's pages must be NONE again — not ALL.
	for _, p := range victim.Pages() {
		st, _ := c.Memory().State(p)
		if st != mem.AccessNone {
			t.Fatalf("page %d leaked to %v after failed protect", p, st)
		}
	}
	// And the secrets are still unreadable.
	if _, err := c.CPURead(3, victim.Base, 14); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("suspended PAL readable after failed protect: %v", err)
	}
}

func TestSecludeAndResume(t *testing.T) {
	c := testChipset(t, 4)
	r := mem.RegionForPages(1, 2)
	c.ProtectRegion(r, 0)
	c.CPUWrite(0, r.Base, []byte("suspended pal state"))
	if err := c.SecludeRegion(r, 0); err != nil {
		t.Fatal(err)
	}
	// Nobody can touch NONE pages — not even the former owner.
	if _, err := c.CPURead(0, r.Base, 4); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("read of secluded region: %v", err)
	}
	// Resume on another CPU: state intact.
	if err := c.ProtectRegion(r, 1); err != nil {
		t.Fatal(err)
	}
	got, err := c.CPURead(1, r.Base, 19)
	if err != nil || string(got) != "suspended pal state" {
		t.Fatalf("resumed read: %q, %v", got, err)
	}
}

func TestDMAAttackOnPALMemory(t *testing.T) {
	c := testChipset(t, 4)
	nic := NewDevice("evil-nic", c)
	r := mem.RegionForPages(1, 1)
	c.CPUWrite(0, r.Base, []byte("secret"))
	c.ProtectRegion(r, 0)

	if _, err := nic.Read(r.Base, 6); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA read of PAL memory: %v", err)
	}
	if err := nic.Write(r.Base, []byte("owned!")); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA write of PAL memory: %v", err)
	}
	if nic.Denied != 2 || c.DeniedDMA != 2 {
		t.Fatalf("denied counters: device %d chipset %d", nic.Denied, c.DeniedDMA)
	}
	// Contents untouched.
	got, _ := c.Memory().ReadRaw(r.Base, 6)
	if string(got) != "secret" {
		t.Fatalf("PAL memory corrupted: %q", got)
	}
}

func TestDMADEVProtection(t *testing.T) {
	c := testChipset(t, 4)
	nic := NewDevice("nic", c)
	r := mem.RegionForPages(2, 1)
	// SKINIT-style: page stays ALL but DEV bit set.
	c.SetDEVRegion(r, true)
	if _, err := nic.Read(r.Base, 4); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA past DEV: %v", err)
	}
	c.SetDEVRegion(r, false)
	if _, err := nic.Read(r.Base, 4); err != nil {
		t.Fatalf("DMA after DEV clear: %v", err)
	}
	if nic.Reads != 1 {
		t.Fatalf("Reads = %d", nic.Reads)
	}
}

func TestDMANormalTraffic(t *testing.T) {
	c := testChipset(t, 4)
	nic := NewDevice("nic", c)
	if err := nic.Write(0, []byte("packet")); err != nil {
		t.Fatal(err)
	}
	got, err := nic.Read(0, 6)
	if err != nil || string(got) != "packet" {
		t.Fatalf("DMA roundtrip: %q, %v", got, err)
	}
	if nic.Writes != 1 || nic.Reads != 1 || nic.Denied != 0 {
		t.Fatalf("counters: %d/%d/%d", nic.Writes, nic.Reads, nic.Denied)
	}
	if nic.Name() != "nic" {
		t.Fatalf("Name = %q", nic.Name())
	}
}

func TestReleaseRegionRestoresAll(t *testing.T) {
	c := testChipset(t, 4)
	r := mem.RegionForPages(1, 2)
	c.ProtectRegion(r, 0)
	if err := c.ReleaseRegion(r, 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.RegionState(r)
	if err != nil || st != mem.AccessAll {
		t.Fatalf("region state %v, %v", st, err)
	}
	// And other CPUs can use it again.
	if err := c.CPUWrite(3, r.Base, []byte("reused")); err != nil {
		t.Fatal(err)
	}
}

func TestRegionStateDisagreement(t *testing.T) {
	c := testChipset(t, 4)
	c.ProtectRegion(mem.RegionForPages(1, 1), 0)
	if _, err := c.RegionState(mem.RegionForPages(0, 2)); err == nil {
		t.Fatal("mixed region state not reported")
	}
	st, err := c.RegionState(mem.Region{})
	if err != nil || st != mem.AccessAll {
		t.Fatalf("empty region: %v %v", st, err)
	}
}

func TestHasTPM(t *testing.T) {
	c := testChipset(t, 1)
	if !c.HasTPM() || c.TPM() == nil {
		t.Fatal("TPM missing")
	}
	clock := sim.NewClock()
	noTPM := New(clock, mem.New(mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	if noTPM.HasTPM() {
		t.Fatal("TPM-less chipset claims a TPM")
	}
}

func TestCPUAccessZeroLength(t *testing.T) {
	c := testChipset(t, 2)
	c.ProtectRegion(mem.RegionForPages(0, 1), 0)
	// Zero-length access never faults, even at protected addresses.
	if err := c.CPUWrite(1, 0, nil); err != nil {
		t.Fatalf("zero-length write: %v", err)
	}
	if _, err := c.CPURead(1, 0, 0); err != nil {
		t.Fatalf("zero-length read: %v", err)
	}
}
