package chipset

import (
	"testing"
)

// TestCPUReadIntoSteadyStateAllocs pins the copy-free read path: once the
// destination buffer exists and the touched chunks are materialized,
// CPUReadInto must not allocate per call. This is what lets instruction
// fetch and SLB streaming run without per-step garbage.
func TestCPUReadIntoSteadyStateAllocs(t *testing.T) {
	cs := testChipset(t, 16)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	if err := cs.Memory().WriteRaw(0x2000, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := cs.CPUReadInto(0, 0x2000, dst); err != nil { // warm
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		err = cs.CPUReadInto(0, 0x2000, dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("CPUReadInto allocates %v allocs/op, want 0", allocs)
	}
	for i, b := range dst {
		if b != byte(i) {
			t.Fatalf("dst[%d] = %d, want %d", i, b, byte(i))
		}
	}
}

// TestCPUViewSteadyStateAllocs pins the zero-copy subslice variant.
func TestCPUViewSteadyStateAllocs(t *testing.T) {
	cs := testChipset(t, 16)
	if err := cs.Memory().WriteRaw(0x2000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.CPUView(0, 0x2000, 4); err != nil { // warm
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		_, _, err = cs.CPUView(0, 0x2000, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("CPUView allocates %v allocs/op, want 0", allocs)
	}
	b, ok, err := cs.CPUView(0, 0x2000, 4)
	if err != nil || !ok {
		t.Fatalf("view: ok=%v err=%v", ok, err)
	}
	if b[0] != 1 || b[3] != 4 {
		t.Fatalf("view contents %v", b)
	}
}

// ZeroRange after writes must leave the range all-zero, exactly as a
// write of zeros would, while releasing chunk storage where it can.
func TestZeroRangeMatchesZeroWrite(t *testing.T) {
	cs := testChipset(t, 16)
	if err := cs.Memory().WriteRaw(0x1000, []byte{0xaa, 0xbb, 0xcc}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Memory().ZeroRange(0x1000, 3); err != nil {
		t.Fatal(err)
	}
	got, err := cs.Memory().ReadRaw(0x1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after ZeroRange, want 0", i, b)
		}
	}
}
