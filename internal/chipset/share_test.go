package chipset

import (
	"errors"
	"testing"

	"minimaltcb/internal/mem"
)

func TestShareRegionGrantsAndRollsBack(t *testing.T) {
	c := testChipset(t, 8)
	r := mem.RegionForPages(2, 2)
	if err := c.ProtectRegion(r, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ShareRegion(r, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CPURead(2, r.Base, 8); err != nil {
		t.Fatalf("joined CPU read: %v", err)
	}
	if err := c.UnshareRegion(r, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CPURead(2, r.Base, 8); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("read after unshare: %v", err)
	}

	// Rollback: region partially owned by someone else — nothing shared.
	r2 := mem.RegionForPages(4, 2)
	if err := c.ProtectRegion(mem.RegionForPages(4, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ProtectRegion(mem.RegionForPages(5, 1), 3); err != nil {
		t.Fatal(err)
	}
	if err := c.ShareRegion(r2, 1, 2); err == nil {
		t.Fatal("mixed-owner share succeeded")
	}
	if c.Memory().SharedWith(4, 2) {
		t.Fatal("rollback left a share behind")
	}
}

func TestChipsetAccessors(t *testing.T) {
	c := testChipset(t, 1)
	if c.Clock() == nil || c.Bus() == nil {
		t.Fatal("nil accessors")
	}
}

func TestRegionOpsErrorPaths(t *testing.T) {
	c := testChipset(t, 4)
	// Seclude of unowned pages errors.
	if err := c.SecludeRegion(mem.RegionForPages(0, 1), 1); err == nil {
		t.Fatal("seclude of ALL pages succeeded")
	}
	// Release by non-owner errors.
	c.ProtectRegion(mem.RegionForPages(1, 1), 1)
	if err := c.ReleaseRegion(mem.RegionForPages(1, 1), 2); err == nil {
		t.Fatal("release by non-owner succeeded")
	}
	// DEV out of range errors.
	if err := c.SetDEVRegion(mem.Region{Base: 1 << 30, Size: 8}, true); err == nil {
		t.Fatal("DEV out of range succeeded")
	}
	// CPUWrite denial path.
	if err := c.CPUWrite(2, mem.RegionForPages(1, 1).Base, []byte{1}); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("CPUWrite to owned page: %v", err)
	}
}
