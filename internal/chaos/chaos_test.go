package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// drive pulls n decisions from every hook of one machine in a fixed order
// and returns the injector's replay-stable schedule.
func drive(seed uint64, p Profile, n int) []Event {
	in := New(seed, p)
	th := in.TPMHook(0)
	sh := in.SKSMHook(0)
	mh := in.MachineHook(0)
	for i := 0; i < n; i++ {
		_, _ = th.TPMCommand("TPM_SEPCR_Extend")
		_ = sh.SliceQuantum(100 * time.Microsecond)
		_ = sh.SliceFault()
		_ = mh.Wedge()
		_ = mh.Skew()
	}
	return in.Schedule()
}

func TestSameSeedSameSchedule(t *testing.T) {
	p := named["soak"]
	a := drive(12345, p, 500)
	b := drive(12345, p, 500)
	if len(a) == 0 {
		t.Fatal("soak profile injected nothing over 500 rounds")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules: %d vs %d events", len(a), len(b))
	}
	c := drive(54321, p, 500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestSiteStreamsAreIndependent verifies the determinism contract the
// package doc promises: the k-th decision at a site does not depend on how
// other sites are interleaved between its draws.
func TestSiteStreamsAreIndependent(t *testing.T) {
	p := Profile{TPMFailRate: 0.3, PALFaultRate: 0.3}
	// Run A: strict alternation between the two sites.
	a := New(99, p)
	ath, ash := a.TPMHook(0), a.SKSMHook(0)
	for i := 0; i < 200; i++ {
		_, _ = ath.TPMCommand("TPM_Quote")
		_ = ash.SliceFault()
	}
	// Run B: all TPM draws first, then all slice-fault draws.
	b := New(99, p)
	bth, bsh := b.TPMHook(0), b.SKSMHook(0)
	for i := 0; i < 200; i++ {
		_, _ = bth.TPMCommand("TPM_Quote")
	}
	for i := 0; i < 200; i++ {
		_ = bsh.SliceFault()
	}
	as, bs := a.Schedule(), b.Schedule()
	// Seq differs by construction; the (Site, Kind, N) schedule must not.
	norm := func(evs []Event) []Event {
		out := make([]Event, len(evs))
		for i, e := range evs {
			e.Seq = 0
			out[i] = e
		}
		return out
	}
	if !reflect.DeepEqual(norm(as), norm(bs)) {
		t.Fatalf("interleaving changed the fault schedule: %d vs %d events", len(as), len(bs))
	}
}

func TestMachinesGetDistinctStreams(t *testing.T) {
	p := Profile{TPMFailRate: 0.5}
	in := New(7, p)
	h0, h1 := in.TPMHook(0), in.TPMHook(1)
	var fired0, fired1 []uint64
	for i := 0; i < 100; i++ {
		if _, err := h0.TPMCommand("x"); err != nil {
			fired0 = append(fired0, uint64(i))
		}
		if _, err := h1.TPMCommand("x"); err != nil {
			fired1 = append(fired1, uint64(i))
		}
	}
	if len(fired0) == 0 || len(fired1) == 0 {
		t.Fatal("expected faults on both machines at rate 0.5")
	}
	if reflect.DeepEqual(fired0, fired1) {
		t.Fatal("machines 0 and 1 drew identical fault patterns; streams are not domain-separated")
	}
}

func TestCountBasedFirstFaults(t *testing.T) {
	in := New(1, Profile{TPMFailFirst: 3})
	h := in.TPMHook(0)
	for i := 0; i < 3; i++ {
		if _, err := h.TPMCommand("cmd"); err == nil {
			t.Fatalf("decision %d: want injected fault, got nil", i)
		}
	}
	if _, err := h.TPMCommand("cmd"); err != nil {
		t.Fatalf("decision 3: want nil after first-N exhausted, got %v", err)
	}
	if got := in.Counts()["tpm_fail"]; got != 3 {
		t.Fatalf("Counts[tpm_fail] = %d, want 3", got)
	}
}

func TestInjectedErrorContract(t *testing.T) {
	in := New(1, Profile{PALFaultFirst: 1})
	err := in.SKSMHook(2).SliceFault()
	if err == nil {
		t.Fatal("want an injected fault")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	var r interface{ Retryable() bool }
	if !errors.As(err, &r) || !r.Retryable() {
		t.Fatalf("injected fault %v is not marked retryable", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "palfault/2" || ie.N != 0 {
		t.Fatalf("unexpected injected error identity: %+v", ie)
	}
}

func TestStormNeverLengthensQuantum(t *testing.T) {
	in := New(1, Profile{StormRate: 1, StormQuantum: 50 * time.Microsecond})
	h := in.SKSMHook(0)
	if got := h.SliceQuantum(10 * time.Microsecond); got != 10*time.Microsecond {
		t.Fatalf("storm lengthened a 10µs quantum to %v", got)
	}
	if got := h.SliceQuantum(0); got != 50*time.Microsecond {
		t.Fatalf("storm on run-to-completion quantum: got %v, want 50µs", got)
	}
	if got := h.SliceQuantum(time.Millisecond); got != 50*time.Microsecond {
		t.Fatalf("storm on 1ms quantum: got %v, want 50µs", got)
	}
}

func TestParseProfile(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		check   func(Profile) bool
	}{
		{in: "soak", check: func(p Profile) bool { return p == named["soak"] }},
		{in: "off", check: func(p Profile) bool { return !p.Enabled() }},
		{in: "soak,tpm_fail=0.2", check: func(p Profile) bool {
			want := named["soak"]
			want.TPMFailRate = 0.2
			return p == want
		}},
		{in: "tpm_fail_first=5,wedge=0.1,wedge_for=3ms", check: func(p Profile) bool {
			return p.TPMFailFirst == 5 && p.WedgeRate == 0.1 && p.WedgeFor == 3*time.Millisecond
		}},
		{in: "nonsense", wantErr: true},
		{in: "soak,tpm_fail=2", wantErr: true}, // rate out of [0,1]
		{in: "soak,wedge_for=-1s", wantErr: true},
		{in: "soak,bogus_key=1", wantErr: true},
		{in: "soak,tpm_fail", wantErr: true}, // missing value
	}
	for _, tc := range cases {
		p, err := ParseProfile(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseProfile(%q): want error, got %+v", tc.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", tc.in, err)
			continue
		}
		if !tc.check(p) {
			t.Errorf("ParseProfile(%q) = %+v: check failed", tc.in, p)
		}
	}
}

func TestProfileStringOffAndOn(t *testing.T) {
	if got := (Profile{}).String(); got != "off" {
		t.Fatalf("zero profile String() = %q, want off", got)
	}
	if got := named["soak"].String(); got == "off" || got == "" {
		t.Fatalf("soak profile String() = %q", got)
	}
}
