package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Profile describes which fault classes an Injector draws from and how
// often. The zero Profile injects nothing.
type Profile struct {
	// TPMFailRate is the probability a fallible TPM command fails with an
	// InjectedError; TPMFailFirst makes the first N commands per machine
	// fail deterministically (count-based, for regression tests).
	TPMFailRate  float64
	TPMFailFirst int
	// TPMStallRate/TPMStall stall a TPM command by TPMStall of virtual
	// time before it executes — the glitching-chip behaviour that Figure 3
	// timing profiles only model the average of.
	TPMStallRate float64
	TPMStall     time.Duration
	// PALFaultRate declares a spurious PAL fault after a non-terminal
	// slice; PALFaultFirst is its deterministic count-based sibling.
	PALFaultRate  float64
	PALFaultFirst int
	// StormRate/StormQuantum collapse a slice's preemption quantum to
	// StormQuantum — a slice-expiry storm that multiplies suspend/resume
	// world switches without starving progress (the core always retires at
	// least one instruction per slice).
	StormRate    float64
	StormQuantum time.Duration
	// WedgeRate/WedgeFor wedge a replica: it holds the TPM arbitration
	// (the machine lock) for WedgeFor of wall-clock time before running a
	// job.
	WedgeRate float64
	WedgeFor  time.Duration
	// SkewRate/SkewBy advance the replica's virtual clock by SkewBy before
	// a job, modeling per-machine clock drift.
	SkewRate float64
	SkewBy   time.Duration
}

// Enabled reports whether the profile can inject anything at all.
func (p Profile) Enabled() bool {
	return p.TPMFailRate > 0 || p.TPMFailFirst > 0 ||
		(p.TPMStallRate > 0 && p.TPMStall > 0) ||
		p.PALFaultRate > 0 || p.PALFaultFirst > 0 ||
		(p.StormRate > 0 && p.StormQuantum > 0) ||
		(p.WedgeRate > 0 && p.WedgeFor > 0) ||
		(p.SkewRate > 0 && p.SkewBy > 0)
}

// Named profiles. "soak" is the non-trivial profile `make soak` asserts
// zero-loss under: TPM faults + replica wedges + slice storms together.
var named = map[string]Profile{
	"off": {},
	"light": {
		TPMFailRate: 0.02, TPMStallRate: 0.05, TPMStall: 200 * time.Microsecond,
		PALFaultRate: 0.02, StormRate: 0.05, StormQuantum: 2 * time.Microsecond,
	},
	"heavy": {
		TPMFailRate: 0.10, TPMStallRate: 0.15, TPMStall: 500 * time.Microsecond,
		PALFaultRate: 0.10, StormRate: 0.20, StormQuantum: 1 * time.Microsecond,
		WedgeRate: 0.05, WedgeFor: 2 * time.Millisecond,
		SkewRate: 0.05, SkewBy: 1 * time.Millisecond,
	},
	"tpm": {
		TPMFailRate: 0.15, TPMStallRate: 0.25, TPMStall: 1 * time.Millisecond,
	},
	"storm": {
		StormRate: 0.5, StormQuantum: 1 * time.Microsecond,
	},
	"soak": {
		TPMFailRate: 0.05, TPMStallRate: 0.10, TPMStall: 200 * time.Microsecond,
		PALFaultRate: 0.05, StormRate: 0.15, StormQuantum: 2 * time.Microsecond,
		WedgeRate: 0.03, WedgeFor: 1 * time.Millisecond,
		SkewRate: 0.05, SkewBy: 500 * time.Microsecond,
	},
}

// Names lists the named profiles (for flag help).
func Names() []string {
	return []string{"off", "light", "heavy", "tpm", "storm", "soak"}
}

// ParseProfile parses a -chaos-profile value: a profile name ("soak"),
// optionally followed by comma-separated key=value overrides
// ("soak,tpm_fail=0.2,wedge_for=5ms"), or overrides alone on top of "off".
// Rate keys take floats in [0,1]; duration keys take Go durations; *_first
// keys take integers.
func ParseProfile(s string) (Profile, error) {
	p := Profile{}
	parts := strings.Split(s, ",")
	start := 0
	if len(parts) > 0 && !strings.Contains(parts[0], "=") {
		name := strings.TrimSpace(parts[0])
		if name != "" {
			base, ok := named[name]
			if !ok {
				return Profile{}, fmt.Errorf("chaos: unknown profile %q (have %s)",
					name, strings.Join(Names(), ", "))
			}
			p = base
		}
		start = 1
	}
	for _, kv := range parts[start:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: bad override %q (want key=value)", kv)
		}
		if err := p.set(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return Profile{}, err
		}
	}
	return p, nil
}

// set applies one key=value override.
func (p *Profile) set(key, val string) error {
	rate := func(dst *float64) error {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("chaos: %s wants a rate in [0,1], got %q", key, val)
		}
		*dst = f
		return nil
	}
	dur := func(dst *time.Duration) error {
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("chaos: %s wants a non-negative duration, got %q", key, val)
		}
		*dst = d
		return nil
	}
	count := func(dst *int) error {
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("chaos: %s wants a non-negative integer, got %q", key, val)
		}
		*dst = n
		return nil
	}
	switch key {
	case "tpm_fail":
		return rate(&p.TPMFailRate)
	case "tpm_fail_first":
		return count(&p.TPMFailFirst)
	case "tpm_stall":
		return rate(&p.TPMStallRate)
	case "tpm_stall_for":
		return dur(&p.TPMStall)
	case "pal_fault":
		return rate(&p.PALFaultRate)
	case "pal_fault_first":
		return count(&p.PALFaultFirst)
	case "storm":
		return rate(&p.StormRate)
	case "storm_quantum":
		return dur(&p.StormQuantum)
	case "wedge":
		return rate(&p.WedgeRate)
	case "wedge_for":
		return dur(&p.WedgeFor)
	case "skew":
		return rate(&p.SkewRate)
	case "skew_by":
		return dur(&p.SkewBy)
	default:
		return fmt.Errorf("chaos: unknown profile key %q", key)
	}
}

// String renders the non-zero fields, for startup banners.
func (p Profile) String() string {
	if !p.Enabled() {
		return "off"
	}
	var b strings.Builder
	add := func(format string, args ...any) {
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, format, args...)
	}
	if p.TPMFailRate > 0 {
		add("tpm_fail=%g", p.TPMFailRate)
	}
	if p.TPMFailFirst > 0 {
		add("tpm_fail_first=%d", p.TPMFailFirst)
	}
	if p.TPMStallRate > 0 && p.TPMStall > 0 {
		add("tpm_stall=%g/%v", p.TPMStallRate, p.TPMStall)
	}
	if p.PALFaultRate > 0 {
		add("pal_fault=%g", p.PALFaultRate)
	}
	if p.PALFaultFirst > 0 {
		add("pal_fault_first=%d", p.PALFaultFirst)
	}
	if p.StormRate > 0 && p.StormQuantum > 0 {
		add("storm=%g/%v", p.StormRate, p.StormQuantum)
	}
	if p.WedgeRate > 0 && p.WedgeFor > 0 {
		add("wedge=%g/%v", p.WedgeRate, p.WedgeFor)
	}
	if p.SkewRate > 0 && p.SkewBy > 0 {
		add("skew=%g/%v", p.SkewRate, p.SkewBy)
	}
	return b.String()
}
