// Package chaos is a deterministic, seed-driven fault injector for the PAL
// execution stack. It threads through seams the real stack already exposes —
// TPM command failures and stalls (tpm.FaultHook), spurious PAL faults and
// slice-expiry storms (sksm.ChaosHook), wedged platform replicas and clock
// skew (consulted by palsvc) — so that the interrupt/kill/resume paths the
// paper's §5 life cycle (SLAUNCH/SYIELD/SKILL) depends on are exercised
// systematically instead of only on hardware accidents.
//
// Determinism is the whole point: every fault decision is drawn from a
// per-site SplitMix64 stream seeded with seed ⊕ hash(site), and each site
// keeps its own decision counter. The k-th decision at a given site is
// therefore a pure function of (seed, profile, site, k), independent of
// goroutine interleaving — two runs with the same seed and the same
// single-threaded schedule produce bit-identical fault schedules, which is
// what turns a flaky-looking soak failure into a replayable regression test
// (see docs/RESILIENCE.md).
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"minimaltcb/internal/sim"
)

// ErrInjected is the errors.Is target every injected fault matches.
var ErrInjected = errors.New("chaos: injected fault")

// InjectedError is the concrete error an injection site returns. It is
// retryable by construction: an injected fault models a transient condition
// (a glitching TPM, a spurious PAL fault), so supervisors are expected to
// retry and the error chain must carry that bit.
type InjectedError struct {
	// Site is the decision stream that fired ("tpmfail/0", "palfault/1"...).
	Site string
	// Cmd is the TPM command name for TPM-site faults, "" elsewhere.
	Cmd string
	// N is the site-local decision index that fired, for replay: the same
	// seed fires the same N at the same site.
	N uint64
}

func (e *InjectedError) Error() string {
	if e.Cmd != "" {
		return fmt.Sprintf("chaos: injected fault at %s #%d (%s)", e.Site, e.N, e.Cmd)
	}
	return fmt.Sprintf("chaos: injected fault at %s #%d", e.Site, e.N)
}

// Retryable marks every injected fault as transient (see palsvc.Retryable).
func (e *InjectedError) Retryable() bool { return true }

// Is makes errors.Is(err, chaos.ErrInjected) match.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Event is one recorded fault decision that fired.
type Event struct {
	// Seq is the global record order. It depends on goroutine interleaving
	// and is informational; Site+N is the replay-stable identity.
	Seq int `json:"seq"`
	// Site is the decision stream ("tpmfail/0", "storm/2", ...).
	Site string `json:"site"`
	// Kind is the fault class ("tpm_fail", "tpm_stall", "pal_fault",
	// "storm", "wedge", "skew").
	Kind string `json:"kind"`
	// Cmd is the TPM command the fault hit, when applicable.
	Cmd string `json:"cmd,omitempty"`
	// N is the site-local decision index.
	N uint64 `json:"n"`
	// Dur is the stall/wedge/skew magnitude for duration-valued faults.
	Dur time.Duration `json:"dur_ns,omitempty"`
}

// site is one decision stream: its own RNG and its own counter.
type site struct {
	rng *sim.RNG
	n   uint64
}

// Injector hands out fault decisions. Safe for concurrent use; determinism
// is per site, not per wall-clock order (see the package comment).
type Injector struct {
	seed    uint64
	profile Profile

	mu     sync.Mutex
	sites  map[string]*site
	events []Event
	counts map[string]uint64
}

// New builds an injector for a seed and profile.
func New(seed uint64, p Profile) *Injector {
	return &Injector{
		seed:    seed,
		profile: p,
		sites:   make(map[string]*site),
		counts:  make(map[string]uint64),
	}
}

// Seed returns the injector's seed — print it so any run can be replayed.
func (in *Injector) Seed() uint64 { return in.seed }

// Profile returns the active fault profile.
func (in *Injector) Profile() Profile { return in.profile }

// fnv64a hashes a site name for seed domain separation.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// decide draws the next decision at a site: deterministic-first faults
// (first > 0) fire unconditionally for the first `first` decisions, then
// the rate applies. It returns whether the fault fires and the site-local
// decision index.
func (in *Injector) decide(siteName string, rate float64, first int) (bool, uint64) {
	in.mu.Lock()
	st := in.sites[siteName]
	if st == nil {
		st = &site{rng: sim.NewRNG(in.seed ^ fnv64a(siteName))}
		in.sites[siteName] = st
	}
	n := st.n
	st.n++
	hit := false
	if first > 0 && n < uint64(first) {
		hit = true
	} else if rate > 0 && st.rng.Float64() < rate {
		hit = true
	}
	in.mu.Unlock()
	return hit, n
}

// record appends a fired fault to the event log and bumps its kind counter.
func (in *Injector) record(ev Event) {
	in.mu.Lock()
	ev.Seq = len(in.events)
	in.events = append(in.events, ev)
	in.counts[ev.Kind]++
	in.mu.Unlock()
}

// Schedule returns the fired fault events ordered by (Site, N) — the
// replay-stable view two same-seed runs can be compared on. The Seq field
// preserves the observed global order for debugging.
func (in *Injector) Schedule() []Event {
	in.mu.Lock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].N < out[j].N
	})
	return out
}

// Counts returns how many faults fired per kind.
func (in *Injector) Counts() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// TPMHook returns the per-machine TPM fault hook (satisfies tpm.FaultHook).
func (in *Injector) TPMHook(machine int) *TPMHook {
	return &TPMHook{in: in, machine: machine}
}

// SKSMHook returns the per-machine scheduler hook (satisfies sksm.ChaosHook).
func (in *Injector) SKSMHook(machine int) *SKSMHook {
	return &SKSMHook{in: in, machine: machine}
}

// MachineHook returns the per-machine replica hook palsvc consults for
// wedges and clock skew.
func (in *Injector) MachineHook(machine int) *MachineHook {
	return &MachineHook{in: in, machine: machine}
}

// TPMHook injects command failures and stalls into one machine's TPM. Two
// independent decision streams per machine: tpmfail/N and tpmstall/N.
type TPMHook struct {
	in      *Injector
	machine int
}

// TPMCommand is consulted once per fallible TPM command. It returns an
// extra stall to charge against the machine's virtual clock and/or an error
// that fails the command before it takes effect. Cleanup commands
// (TPM_SEPCR_Free, TPM_SEPCR_Kill, ReleaseSePCR) are never consulted — the
// zero-leak invariant must stay provable under injection.
func (h *TPMHook) TPMCommand(cmd string) (time.Duration, error) {
	p := &h.in.profile
	var stall time.Duration
	if p.TPMStallRate > 0 && p.TPMStall > 0 {
		siteName := fmt.Sprintf("tpmstall/%d", h.machine)
		if hit, n := h.in.decide(siteName, p.TPMStallRate, 0); hit {
			stall = p.TPMStall
			h.in.record(Event{Site: siteName, Kind: "tpm_stall", Cmd: cmd, N: n, Dur: stall})
		}
	}
	if p.TPMFailRate > 0 || p.TPMFailFirst > 0 {
		siteName := fmt.Sprintf("tpmfail/%d", h.machine)
		if hit, n := h.in.decide(siteName, p.TPMFailRate, p.TPMFailFirst); hit {
			h.in.record(Event{Site: siteName, Kind: "tpm_fail", Cmd: cmd, N: n})
			return stall, &InjectedError{Site: siteName, Cmd: cmd, N: n}
		}
	}
	return stall, nil
}

// SKSMHook injects scheduler-level faults into one machine's SLAUNCH
// microcode: slice-expiry storms (a slice's preemption quantum collapses to
// StormQuantum, multiplying suspend/resume world switches) and spurious PAL
// faults after a slice.
type SKSMHook struct {
	in      *Injector
	machine int
}

// SliceQuantum may shrink the configured preemption quantum for one slice.
func (h *SKSMHook) SliceQuantum(q time.Duration) time.Duration {
	p := &h.in.profile
	if p.StormRate <= 0 || p.StormQuantum <= 0 {
		return q
	}
	siteName := fmt.Sprintf("storm/%d", h.machine)
	if hit, n := h.in.decide(siteName, p.StormRate, 0); hit {
		if q <= 0 || p.StormQuantum < q {
			h.in.record(Event{Site: siteName, Kind: "storm", N: n, Dur: p.StormQuantum})
			return p.StormQuantum
		}
	}
	return q
}

// SliceFault may declare a spurious PAL fault after a non-terminal slice.
// The manager then follows its real fault path: suspend, flight-record,
// wrap in ErrPALFault — exactly what a hardware-detected violation does.
func (h *SKSMHook) SliceFault() error {
	p := &h.in.profile
	if p.PALFaultRate <= 0 && p.PALFaultFirst <= 0 {
		return nil
	}
	siteName := fmt.Sprintf("palfault/%d", h.machine)
	if hit, n := h.in.decide(siteName, p.PALFaultRate, p.PALFaultFirst); hit {
		h.in.record(Event{Site: siteName, Kind: "pal_fault", N: n})
		return &InjectedError{Site: siteName, N: n}
	}
	return nil
}

// MachineHook injects replica-level faults palsvc consults per job while
// holding the machine lock: wedges (the replica sits on the TPM arbitration
// for WedgeFor of wall-clock time) and virtual clock skew.
type MachineHook struct {
	in      *Injector
	machine int
}

// Wedge returns a wall-clock stall to apply while holding the machine lock,
// or 0.
func (h *MachineHook) Wedge() time.Duration {
	p := &h.in.profile
	if p.WedgeRate <= 0 || p.WedgeFor <= 0 {
		return 0
	}
	siteName := fmt.Sprintf("wedge/%d", h.machine)
	if hit, n := h.in.decide(siteName, p.WedgeRate, 0); hit {
		h.in.record(Event{Site: siteName, Kind: "wedge", N: n, Dur: p.WedgeFor})
		return p.WedgeFor
	}
	return 0
}

// Skew returns a virtual-clock skew to apply to the replica, or 0.
func (h *MachineHook) Skew() time.Duration {
	p := &h.in.profile
	if p.SkewRate <= 0 || p.SkewBy <= 0 {
		return 0
	}
	siteName := fmt.Sprintf("skew/%d", h.machine)
	if hit, n := h.in.decide(siteName, p.SkewRate, 0); hit {
		h.in.record(Event{Site: siteName, Kind: "skew", N: n, Dur: p.SkewBy})
		return p.SkewBy
	}
	return 0
}
