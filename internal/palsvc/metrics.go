package palsvc

import (
	"fmt"
	"sync"
	"time"

	"minimaltcb/internal/sim"
)

// StageStats summarizes one pipeline stage's latency distribution. For the
// Execute and QuoteGen stages the durations are virtual time on the
// machine's sim clock; for QueueWait, ArbWait and Verify they are
// wall-clock. JSON-encodable for the wire protocol's stats op.
type StageStats struct {
	N    int           `json:"n"`
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Max  time.Duration `json:"max_ns"`
}

func (s StageStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.N, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Metrics is a point-in-time snapshot of the service.
type Metrics struct {
	// Counters over the service lifetime.
	Submitted        uint64 `json:"submitted"`
	Admitted         uint64 `json:"admitted"`
	Rejected         uint64 `json:"rejected"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`

	// QueueDepth is the number of jobs waiting in the submission queue
	// at snapshot time.
	QueueDepth int `json:"queue_depth"`

	// SePCRCapacity is the total bank size across machines;
	// SePCROccupancy the currently admitted jobs holding (or reserved
	// for) a register; MaxSePCROccupancy the high-water mark. The
	// admission invariant is MaxSePCROccupancy <= SePCRCapacity.
	SePCRCapacity     int `json:"sepcr_capacity"`
	SePCROccupancy    int `json:"sepcr_occupancy"`
	MaxSePCROccupancy int `json:"sepcr_occupancy_max"`

	// Image-cache and verifier-memo effectiveness.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	VerifyMemoHits   uint64 `json:"verify_memo_hits"`
	VerifyMemoMisses uint64 `json:"verify_memo_misses"`

	// Per-stage latency distributions.
	QueueWait StageStats `json:"queue_wait"`
	ArbWait   StageStats `json:"arb_wait"`
	Execute   StageStats `json:"execute"`
	QuoteGen  StageStats `json:"quote_gen"`
	Verify    StageStats `json:"verify"`
}

// metrics is the service's internal mutable state behind Metrics.
type metrics struct {
	mu sync.Mutex

	submitted, admitted, rejected    uint64
	completed, failed, deadlineEx    uint64
	occupancy, maxOccupancy          int
	queueWait, arbWait, exec, quote, verify sim.Sample
}

func (m *metrics) incSubmitted() { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *metrics) incRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) incCompleted() { m.mu.Lock(); m.completed++; m.mu.Unlock() }
func (m *metrics) incFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) incDeadline()  { m.mu.Lock(); m.deadlineEx++; m.mu.Unlock() }

// admitOne records a successful admission and bumps the occupancy gauge.
func (m *metrics) admitOne() {
	m.mu.Lock()
	m.admitted++
	m.occupancy++
	if m.occupancy > m.maxOccupancy {
		m.maxOccupancy = m.occupancy
	}
	m.mu.Unlock()
}

// releaseOne drops the occupancy gauge when a job's register is free again.
func (m *metrics) releaseOne() {
	m.mu.Lock()
	m.occupancy--
	m.mu.Unlock()
}

func (m *metrics) observeQueue(d time.Duration)  { m.mu.Lock(); m.queueWait.Add(d); m.mu.Unlock() }
func (m *metrics) observeArb(d time.Duration)    { m.mu.Lock(); m.arbWait.Add(d); m.mu.Unlock() }
func (m *metrics) observeExec(d time.Duration)   { m.mu.Lock(); m.exec.Add(d); m.mu.Unlock() }
func (m *metrics) observeQuote(d time.Duration)  { m.mu.Lock(); m.quote.Add(d); m.mu.Unlock() }
func (m *metrics) observeVerify(d time.Duration) { m.mu.Lock(); m.verify.Add(d); m.mu.Unlock() }

func stageOf(s *sim.Sample) StageStats {
	return StageStats{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

// Metrics returns a consistent snapshot of the service's counters, gauges
// and latency distributions.
func (s *Service) Metrics() Metrics {
	m := s.metrics
	m.mu.Lock()
	out := Metrics{
		Submitted:         m.submitted,
		Admitted:          m.admitted,
		Rejected:          m.rejected,
		Completed:         m.completed,
		Failed:            m.failed,
		DeadlineExceeded:  m.deadlineEx,
		SePCRCapacity:     s.bank,
		SePCROccupancy:    m.occupancy,
		MaxSePCROccupancy: m.maxOccupancy,
		QueueWait:         stageOf(&m.queueWait),
		ArbWait:           stageOf(&m.arbWait),
		Execute:           stageOf(&m.exec),
		QuoteGen:          stageOf(&m.quote),
		Verify:            stageOf(&m.verify),
	}
	m.mu.Unlock()
	out.QueueDepth = len(s.queue)
	out.CacheHits, out.CacheMisses = s.cache.stats()
	for _, mc := range s.machines {
		h, miss := mc.sys.Verifier.MemoStats()
		out.VerifyMemoHits += h
		out.VerifyMemoMisses += miss
	}
	return out
}
