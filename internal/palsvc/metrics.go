package palsvc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/sim"
)

// StageStats summarizes one pipeline stage's latency distribution. For the
// Execute and QuoteGen stages the durations are virtual time on the
// machine's sim clock; for QueueWait, ArbWait and Verify they are
// wall-clock. JSON-encodable for the wire protocol's stats op.
type StageStats struct {
	N    int           `json:"n"`
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Max  time.Duration `json:"max_ns"`
}

func (s StageStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.N, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Metrics is a point-in-time snapshot of the service.
type Metrics struct {
	// Counters over the service lifetime. Rejected splits by cause:
	// RejectedQueueFull counts ErrQueueFull backpressure at Submit,
	// RejectedBank counts ErrBankExhausted under AdmitReject, and
	// RejectedShed counts ErrShedding while the whole fleet was
	// quarantined. The terminal counters partition the accepted work:
	// Submitted == Completed + Failed + DeadlineExceeded + RejectedBank +
	// RejectedShed once the queue drains (queue-full rejections happen
	// before Submitted is counted). Retried counts extra attempts, which
	// deliberately move no terminal counter.
	Submitted         uint64 `json:"submitted"`
	Admitted          uint64 `json:"admitted"`
	Rejected          uint64 `json:"rejected"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedBank      uint64 `json:"rejected_bank_exhausted"`
	RejectedShed      uint64 `json:"rejected_shed"`
	Completed         uint64 `json:"completed"`
	Failed            uint64 `json:"failed"`
	DeadlineExceeded  uint64 `json:"deadline_exceeded"`
	// Retried counts supervisor retries; Quarantines counts replica
	// quarantine trips.
	Retried     uint64 `json:"retried"`
	Quarantines uint64 `json:"quarantines"`

	// QueueDepth is the number of jobs waiting in the submission queue
	// at snapshot time.
	QueueDepth int `json:"queue_depth"`

	// SePCRCapacity is the total bank size across machines;
	// SePCROccupancy the currently admitted jobs holding (or reserved
	// for) a register; MaxSePCROccupancy the high-water mark. The
	// admission invariant is MaxSePCROccupancy <= SePCRCapacity.
	SePCRCapacity     int `json:"sepcr_capacity"`
	SePCROccupancy    int `json:"sepcr_occupancy"`
	MaxSePCROccupancy int `json:"sepcr_occupancy_max"`

	// Quote-batching effectiveness: QuoteBatches counts signed batch
	// quotes, BatchedJobs the jobs those batches covered, MaxBatchSize
	// the largest batch signed, and QuoteSigns the AIK signatures spent
	// in the quote stage — one per one-shot quote, one per batch, so
	// QuoteSigns << BatchedJobs is the amortization working. All zero
	// (and absent from the wire) when batching is disabled.
	QuoteBatches uint64 `json:"quote_batches,omitempty"`
	BatchedJobs  uint64 `json:"batched_jobs,omitempty"`
	MaxBatchSize int    `json:"max_batch_size,omitempty"`
	QuoteSigns   uint64 `json:"quote_signs,omitempty"`

	// Image-cache and verifier-memo effectiveness.
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	VerifyMemoHits   uint64 `json:"verify_memo_hits"`
	VerifyMemoMisses uint64 `json:"verify_memo_misses"`

	// Per-stage latency distributions.
	QueueWait StageStats `json:"queue_wait"`
	ArbWait   StageStats `json:"arb_wait"`
	Execute   StageStats `json:"execute"`
	QuoteGen  StageStats `json:"quote_gen"`
	Verify    StageStats `json:"verify"`
}

// metrics is the service's internal mutable state behind Metrics. When the
// service is built with an obs.Registry (Config.Registry), hooks mirrors
// every update into Prometheus-style instruments at event time.
type metrics struct {
	mu sync.Mutex

	submitted, admitted, rejected           uint64
	rejQueueFull, rejBank, rejShed          uint64
	completed, failed, deadlineEx           uint64
	retried, quarantines                    uint64
	batches, batchedJobs, quoteSigns        uint64
	maxBatch                                int
	occupancy, maxOccupancy                 int
	queueWait, arbWait, exec, quote, verify sim.Sample

	// hooks is a value, not a pointer: its zero value holds nil instrument
	// handles, and every obs handle method no-ops on nil, so a service
	// built without a Registry pays only nil checks here.
	hooks obsHooks
}

func (m *metrics) incSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
	m.hooks.submitted.Inc()
}

// incRejected records a rejection attributed to its cause (the wire
// protocol and the Prometheus exposition both break rejections out).
func (m *metrics) incRejected(err error) {
	m.mu.Lock()
	m.rejected++
	var c *obs.Counter
	switch {
	case errors.Is(err, ErrQueueFull):
		m.rejQueueFull++
		c = m.hooks.rejQueueFull
	case errors.Is(err, ErrBankExhausted):
		m.rejBank++
		c = m.hooks.rejBank
	case errors.Is(err, ErrShedding):
		m.rejShed++
		c = m.hooks.rejShed
	}
	m.mu.Unlock()
	c.Inc()
}

func (m *metrics) incCompleted() { m.mu.Lock(); m.completed++; m.mu.Unlock(); m.hooks.completed.Inc() }
func (m *metrics) incFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock(); m.hooks.failed.Inc() }
func (m *metrics) incDeadline()  { m.mu.Lock(); m.deadlineEx++; m.mu.Unlock(); m.hooks.deadline.Inc() }
func (m *metrics) incRetried()   { m.mu.Lock(); m.retried++; m.mu.Unlock(); m.hooks.retried.Inc() }

func (m *metrics) incQuarantine() {
	m.mu.Lock()
	m.quarantines++
	m.mu.Unlock()
	m.hooks.quarantines.Inc()
}

// admitOne records a successful admission and bumps the occupancy gauge.
func (m *metrics) admitOne() {
	m.mu.Lock()
	m.admitted++
	m.occupancy++
	if m.occupancy > m.maxOccupancy {
		m.maxOccupancy = m.occupancy
	}
	m.mu.Unlock()
	m.hooks.admitted.Inc()
}

// releaseOne drops the occupancy gauge when a job's register is free again.
func (m *metrics) releaseOne() {
	m.mu.Lock()
	m.occupancy--
	m.mu.Unlock()
}

// noteBatch records one batch flush of n jobs; ok reports whether the
// TPM signed it (a failed batch never reached the signature, so it
// spent no RSA and counts toward nothing).
func (m *metrics) noteBatch(n int, ok bool) {
	if !ok {
		return
	}
	m.mu.Lock()
	m.batches++
	m.batchedJobs += uint64(n)
	m.quoteSigns++
	if n > m.maxBatch {
		m.maxBatch = n
	}
	m.mu.Unlock()
	m.hooks.batchesC.Inc()
	m.hooks.batchJobsC.Add(float64(n))
	m.hooks.signsC.Inc()
}

// noteSign records the one AIK signature a one-shot quote spends.
func (m *metrics) noteSign() {
	m.mu.Lock()
	m.quoteSigns++
	m.mu.Unlock()
	m.hooks.signsC.Inc()
}

func (m *metrics) observeQueue(d time.Duration) {
	m.mu.Lock()
	m.queueWait.Add(d)
	m.mu.Unlock()
	m.hooks.queueH.Observe(d.Seconds())
}

func (m *metrics) observeArb(d time.Duration) {
	m.mu.Lock()
	m.arbWait.Add(d)
	m.mu.Unlock()
	m.hooks.arbH.Observe(d.Seconds())
}

func (m *metrics) observeExec(d time.Duration) {
	m.mu.Lock()
	m.exec.Add(d)
	m.mu.Unlock()
	m.hooks.execH.Observe(d.Seconds())
}

func (m *metrics) observeQuote(d time.Duration) {
	m.mu.Lock()
	m.quote.Add(d)
	m.mu.Unlock()
	m.hooks.quoteH.Observe(d.Seconds())
}

func (m *metrics) observeVerify(d time.Duration) {
	m.mu.Lock()
	m.verify.Add(d)
	m.mu.Unlock()
	m.hooks.verifyH.Observe(d.Seconds())
}

// stageOf summarizes a sample with one sort for all three ranks. The
// degenerate cases are well-defined (see sim.Sample.Percentiles): n=0
// reports all zeros, n=1 reports Mean=P50=P95=P99=Max.
func stageOf(s *sim.Sample) StageStats {
	ps := s.Percentiles(50, 95, 99)
	return StageStats{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  ps[0],
		P95:  ps[1],
		P99:  ps[2],
		Max:  s.Max(),
	}
}

// StageStatsOf summarizes a latency sample into the wire-encodable
// StageStats form — exported so internal/cluster can report its
// router-measured distributions in the same shape the service uses.
func StageStatsOf(s *sim.Sample) StageStats { return stageOf(s) }

// Metrics returns a consistent snapshot of the service's counters, gauges
// and latency distributions.
func (s *Service) Metrics() Metrics {
	m := s.metrics
	m.mu.Lock()
	out := Metrics{
		Submitted:         m.submitted,
		Admitted:          m.admitted,
		Rejected:          m.rejected,
		RejectedQueueFull: m.rejQueueFull,
		RejectedBank:      m.rejBank,
		RejectedShed:      m.rejShed,
		Completed:         m.completed,
		Failed:            m.failed,
		DeadlineExceeded:  m.deadlineEx,
		Retried:           m.retried,
		Quarantines:       m.quarantines,
		QuoteBatches:      m.batches,
		BatchedJobs:       m.batchedJobs,
		MaxBatchSize:      m.maxBatch,
		QuoteSigns:        m.quoteSigns,
		SePCRCapacity:     s.bank,
		SePCROccupancy:    m.occupancy,
		MaxSePCROccupancy: m.maxOccupancy,
		QueueWait:         stageOf(&m.queueWait),
		ArbWait:           stageOf(&m.arbWait),
		Execute:           stageOf(&m.exec),
		QuoteGen:          stageOf(&m.quote),
		Verify:            stageOf(&m.verify),
	}
	m.mu.Unlock()
	out.QueueDepth = len(s.queue)
	out.CacheHits, out.CacheMisses = s.cache.stats()
	for _, mc := range s.machines {
		h, miss := mc.sys.Verifier.MemoStats()
		out.VerifyMemoHits += h
		out.VerifyMemoMisses += miss
	}
	return out
}
