package palsvc

import (
	"sync"

	"minimaltcb/internal/core"
	"minimaltcb/internal/tpm"
)

// palCache caches compiled PAL images keyed by the measurement digest of
// their source text, so repeated tenants skip the assembler entirely. The
// key is a digest of the *source* (the image — and hence the attested
// measurement — is a pure function of it): tenants submitting
// byte-identical source share one image and one attested identity.
type palCache struct {
	mu     sync.Mutex
	byKey  map[tpm.Digest]*core.PAL
	hits   uint64
	misses uint64
}

func newPALCache() *palCache {
	return &palCache{byKey: map[tpm.Digest]*core.PAL{}}
}

// get returns the cached PAL for source, compiling and inserting it on a
// miss. Compilation happens outside the lock so a large assembly job never
// stalls cache hits; a racing duplicate compile is harmless (the image is
// deterministic) and the first insert wins.
func (c *palCache) get(name, source string) (*core.PAL, error) {
	key := tpm.Measure([]byte(source))
	c.mu.Lock()
	if p, ok := c.byKey[key]; ok {
		c.hits++
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	p, err := core.CompilePAL(name, source)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	if prior, ok := c.byKey[key]; ok {
		p = prior
	} else {
		c.byKey[key] = p
	}
	c.mu.Unlock()
	return p, nil
}

func (c *palCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
