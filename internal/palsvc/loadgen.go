package palsvc

import (
	"fmt"
	"sync"
	"time"

	"minimaltcb/internal/sim"
)

// LoadConfig drives the built-in load generator: N client connections
// submitting the same job in a loop, optionally paced to an aggregate
// request rate.
type LoadConfig struct {
	// Addr is the palsvc server to hammer.
	Addr string
	// Clients is the number of concurrent client connections; default 4.
	Clients int
	// Rate is the aggregate request rate across all clients in requests
	// per second; <= 0 means submit as fast as responses come back.
	Rate float64
	// Duration bounds the run; default 2s.
	Duration time.Duration

	// The job every request submits.
	Name       string
	Source     string
	Input      []byte
	DeadlineMS int64
	NoAttest   bool
}

// LoadReport summarizes one load-generator run.
type LoadReport struct {
	Clients int
	Sent    int
	OK      int
	// Rejected counts responses whose retryable bit was set: admission
	// rejections (queue full / bank exhausted / shed) plus jobs whose
	// retry budget the server exhausted on a transient fault — either
	// way, the client is invited to resubmit.
	Rejected int
	// Rejection breakdown by wire code, so a capacity experiment can tell
	// submission backpressure from sePCR-bank exhaustion from fleet-wide
	// quarantine shedding at a glance. (Retry-budget exhaustion carries
	// no admission code and lands in none of the three.)
	RejectedQueueFull int
	RejectedBank      int
	RejectedShed      int
	DeadlineExceeded  int // non-retryable deadline expiries
	Failed            int // everything else
	Elapsed           time.Duration
	Throughput        float64 // successful jobs per wall-clock second
	Latency           StageStats
}

func (r LoadReport) String() string {
	return fmt.Sprintf(
		"clients=%d sent=%d ok=%d rejected=%d (queue_full=%d bank_exhausted=%d shed=%d) deadline_exceeded=%d failed=%d elapsed=%v throughput=%.1f jobs/s\nlatency: %v",
		r.Clients, r.Sent, r.OK, r.Rejected, r.RejectedQueueFull, r.RejectedBank, r.RejectedShed,
		r.DeadlineExceeded, r.Failed, r.Elapsed, r.Throughput, r.Latency)
}

// RunLoad runs the load generator against cfg.Addr and reports aggregate
// throughput and end-to-end request latency (wall-clock, as a tenant sees
// it).
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Clients) / cfg.Rate * float64(time.Second))
	}
	req := WireRequest{
		Name:       cfg.Name,
		Source:     cfg.Source,
		Input:      cfg.Input,
		DeadlineMS: cfg.DeadlineMS,
		NoAttest:   cfg.NoAttest,
	}

	var (
		mu      sync.Mutex
		lat     sim.Sample
		rep     = LoadReport{Clients: cfg.Clients}
		wg      sync.WaitGroup
		start   = time.Now()
		stop    = start.Add(cfg.Duration)
		dialErr error
	)
	for i := 0; i < cfg.Clients; i++ {
		cl, err := Dial(cfg.Addr)
		if err != nil {
			mu.Lock()
			dialErr = err
			mu.Unlock()
			break
		}
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			defer cl.Close()
			for time.Now().Before(stop) {
				t0 := time.Now()
				resp, err := cl.Run(&req)
				d := time.Since(t0)
				mu.Lock()
				rep.Sent++
				switch {
				case err != nil:
					rep.Failed++
					mu.Unlock()
					return // connection-level error: this client is done
				case resp.OK:
					rep.OK++
					lat.Add(d)
				case resp.Retryable:
					rep.Rejected++
					switch resp.Code {
					case CodeQueueFull:
						rep.RejectedQueueFull++
					case CodeBankExhausted:
						rep.RejectedBank++
					case CodeShed:
						rep.RejectedShed++
					}
				case resp.Code == CodeDeadline:
					rep.DeadlineExceeded++
				default:
					rep.Failed++
				}
				mu.Unlock()
				if pace > 0 {
					if sleep := pace - d; sleep > 0 {
						time.Sleep(sleep)
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	if dialErr != nil && rep.Sent == 0 {
		return nil, fmt.Errorf("palsvc: load generator dial: %w", dialErr)
	}
	rep.Elapsed = time.Since(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.OK) / secs
	}
	rep.Latency = stageOf(&lat)
	return &rep, nil
}
