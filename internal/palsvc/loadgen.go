package palsvc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"minimaltcb/internal/sim"
)

// LoadConfig drives the built-in load generator. Two arrival models are
// supported:
//
//   - closed loop (default): Clients connections each submit back-to-back,
//     optionally paced so the aggregate rate approximates Rate. Offered load
//     sinks when the server slows down — fine for capacity probing, wrong
//     for latency measurement under overload.
//   - open loop (OpenLoop=true, requires Rate > 0): arrivals fire on a fixed
//     schedule regardless of how the server is doing, the model a
//     million-client fleet actually presents. Requests draw connections from
//     a pool of Clients reused connections; latency is measured from the
//     scheduled arrival, so time spent waiting for a free connection counts
//     against the server, exactly as a tenant would experience it.
//
// Tenants > 1 splits the workload into that many distinct tenants, each with
// its own name, its own source variant (so cluster routing by image
// measurement spreads them across shards instead of pinning every request to
// one), and — in open-loop mode — its own arrival pacer: per-tenant rate
// shaping is TenantRate when set, Rate/Tenants otherwise.
type LoadConfig struct {
	// Addr is the palsvc (or palrouter) server to hammer.
	Addr string
	// Clients is the number of concurrent client connections; default 4.
	// In open-loop mode this is the connection-pool size bounding in-flight
	// requests.
	Clients int
	// Rate is the aggregate request rate across all clients in requests
	// per second; <= 0 means submit as fast as responses come back
	// (closed loop only).
	Rate float64
	// OpenLoop switches to fixed-arrival-rate mode; it requires Rate > 0.
	OpenLoop bool
	// Tenants is the number of distinct tenants the load is split across;
	// <= 1 means a single tenant submitting Name/Source verbatim.
	Tenants int
	// TenantRate, when > 0, caps each tenant's arrival rate in open-loop
	// mode (default Rate/Tenants).
	TenantRate float64
	// DialTimeout bounds each connection's dial+handshake and every round
	// trip (see Dial); 0 keeps the legacy block-forever behaviour.
	DialTimeout time.Duration
	// Duration bounds the run; default 2s.
	Duration time.Duration

	// The job every request submits.
	Name       string
	Source     string
	Input      []byte
	DeadlineMS int64
	NoAttest   bool
}

// BackendLoad is the per-backend slice of a LoadReport, keyed on the
// WireResponse.Backend a routing front-end stamps into each answer.
type BackendLoad struct {
	Sent             int `json:"sent"`
	OK               int `json:"ok"`
	Rejected         int `json:"rejected"`
	DeadlineExceeded int `json:"deadline_exceeded"`
	Failed           int `json:"failed"`
}

// LoadReport summarizes one load-generator run.
type LoadReport struct {
	Clients int
	Tenants int
	Sent    int
	OK      int
	// Rejected counts responses whose retryable bit was set: admission
	// rejections (queue full / bank exhausted / shed) plus jobs whose
	// retry budget the server exhausted on a transient fault — either
	// way, the client is invited to resubmit.
	Rejected int
	// Rejection breakdown by wire code, so a capacity experiment can tell
	// submission backpressure from sePCR-bank exhaustion from fleet-wide
	// quarantine shedding at a glance. (Retry-budget exhaustion carries
	// no admission code and lands in none of the three.)
	RejectedQueueFull int
	RejectedBank      int
	RejectedShed      int
	DeadlineExceeded  int // non-retryable deadline expiries
	Failed            int // non-retryable job errors
	// ConnErrors counts transport-level failures (dial, timeout, torn
	// connection) — the outcomes that mean a request got *no* classified
	// answer. The cluster failover soak asserts this stays zero: a router
	// absorbing a backend death must never surface it to tenants.
	ConnErrors int
	Elapsed    time.Duration
	Throughput float64 // successful jobs per wall-clock second
	Latency    StageStats
	// PerBackend breaks outcomes down by the serving backend for runs
	// pointed at a cluster front-end; empty for a direct palservd run.
	PerBackend map[string]*BackendLoad
	// Slowest holds each tenant's slowest classified requests (slowest
	// first, at most loadSlowestK), each carrying the trace ID the server
	// echoed so the tail is immediately stitchable: paste it into
	// /debug/trace?trace=<id> or `tcbtrace -stitch ... -trace <id>`.
	Slowest map[string][]SlowRequest
}

// loadSlowestK bounds how many slow requests are kept per tenant.
const loadSlowestK = 3

// SlowRequest is one entry in LoadReport.Slowest.
type SlowRequest struct {
	Latency time.Duration `json:"latency_ns"`
	// TraceID is the server-echoed trace of this request ("" when the
	// server traces nothing).
	TraceID string `json:"trace_id,omitempty"`
}

func (r LoadReport) String() string {
	s := fmt.Sprintf(
		"clients=%d tenants=%d sent=%d ok=%d rejected=%d (queue_full=%d bank_exhausted=%d shed=%d) deadline_exceeded=%d failed=%d conn_errors=%d elapsed=%v throughput=%.1f jobs/s\nlatency: %v",
		r.Clients, r.Tenants, r.Sent, r.OK, r.Rejected, r.RejectedQueueFull, r.RejectedBank, r.RejectedShed,
		r.DeadlineExceeded, r.Failed, r.ConnErrors, r.Elapsed, r.Throughput, r.Latency)
	var b strings.Builder
	b.WriteString(s)
	if len(r.PerBackend) > 0 {
		addrs := make([]string, 0, len(r.PerBackend))
		for a := range r.PerBackend {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			bl := r.PerBackend[a]
			fmt.Fprintf(&b, "\nbackend %s: sent=%d ok=%d rejected=%d deadline_exceeded=%d failed=%d",
				a, bl.Sent, bl.OK, bl.Rejected, bl.DeadlineExceeded, bl.Failed)
		}
	}
	if len(r.Slowest) > 0 {
		tenants := make([]string, 0, len(r.Slowest))
		for t := range r.Slowest {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			fmt.Fprintf(&b, "\nslowest [%s]:", t)
			for _, sr := range r.Slowest[t] {
				fmt.Fprintf(&b, " %v", sr.Latency.Round(time.Microsecond))
				if sr.TraceID != "" {
					fmt.Fprintf(&b, " trace=%s", sr.TraceID)
				}
				b.WriteString(";")
			}
		}
	}
	return b.String()
}

// loadState is the shared accumulator all request goroutines report into.
type loadState struct {
	mu  sync.Mutex
	lat sim.Sample
	rep LoadReport
}

// record classifies one finished request. A nil resp with non-nil err is a
// transport failure; everything else got a classified answer and competes
// for the tenant's slowest-k slots (with its echoed trace ID, so the tail
// is stitchable).
func (st *loadState) record(tenant string, resp *WireResponse, err error, d time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.rep.Sent++
	if err == nil && resp != nil {
		st.noteSlow(tenant, d, resp.TraceID)
	}
	var bl *BackendLoad
	if resp != nil && resp.Backend != "" {
		if st.rep.PerBackend == nil {
			st.rep.PerBackend = make(map[string]*BackendLoad)
		}
		bl = st.rep.PerBackend[resp.Backend]
		if bl == nil {
			bl = &BackendLoad{}
			st.rep.PerBackend[resp.Backend] = bl
		}
		bl.Sent++
	}
	switch {
	case err != nil:
		st.rep.ConnErrors++
	case resp.OK:
		st.rep.OK++
		st.lat.Add(d)
		if bl != nil {
			bl.OK++
		}
	case resp.Retryable:
		st.rep.Rejected++
		switch resp.Code {
		case CodeQueueFull:
			st.rep.RejectedQueueFull++
		case CodeBankExhausted:
			st.rep.RejectedBank++
		case CodeShed:
			st.rep.RejectedShed++
		}
		if bl != nil {
			bl.Rejected++
		}
	case resp.Code == CodeDeadline:
		st.rep.DeadlineExceeded++
		if bl != nil {
			bl.DeadlineExceeded++
		}
	default:
		st.rep.Failed++
		if bl != nil {
			bl.Failed++
		}
	}
}

// noteSlow inserts one classified request into the tenant's slowest-k
// list (slowest first). Called with st.mu held.
func (st *loadState) noteSlow(tenant string, d time.Duration, trace string) {
	if st.rep.Slowest == nil {
		st.rep.Slowest = make(map[string][]SlowRequest)
	}
	l := append(st.rep.Slowest[tenant], SlowRequest{Latency: d, TraceID: trace})
	sort.Slice(l, func(i, j int) bool { return l[i].Latency > l[j].Latency })
	if len(l) > loadSlowestK {
		l = l[:loadSlowestK]
	}
	st.rep.Slowest[tenant] = l
}

// tenantJob derives tenant i's request. Each tenant beyond the first gets a
// distinct name and a source variant extended with unreachable, named data:
// the image (and therefore the measurement the attestation chain binds and a
// cluster router hashes) differs per tenant, so multi-tenant load actually
// exercises placement instead of collapsing onto one shard's cache.
func tenantJob(cfg *LoadConfig, i int) WireRequest {
	req := WireRequest{
		Name:       cfg.Name,
		Source:     cfg.Source,
		Input:      cfg.Input,
		DeadlineMS: cfg.DeadlineMS,
		NoAttest:   cfg.NoAttest,
	}
	if cfg.Tenants > 1 {
		req.Name = fmt.Sprintf("%s-t%d", cfg.Name, i)
		req.Source = fmt.Sprintf("%s\ntenant%d:\t.ascii %q\n", cfg.Source, i, fmt.Sprintf("t%d", i))
	}
	// The explicit tenant identity rides the wire as SLO-accounting
	// baggage on every hop (palsvc and the cluster router both key their
	// burn-rate trackers on it).
	req.Tenant = req.Name
	return req
}

// RunLoad runs the load generator against cfg.Addr and reports aggregate
// throughput and end-to-end request latency (wall-clock, as a tenant sees
// it).
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.OpenLoop && cfg.Rate <= 0 {
		return nil, fmt.Errorf("palsvc: open-loop load requires a positive Rate")
	}
	st := &loadState{}
	st.rep.Clients = cfg.Clients
	st.rep.Tenants = cfg.Tenants
	start := time.Now()
	var err error
	if cfg.OpenLoop {
		err = runOpenLoop(&cfg, st, start)
	} else {
		err = runClosedLoop(&cfg, st, start)
	}
	if err != nil {
		return nil, err
	}
	st.rep.Elapsed = time.Since(start)
	if secs := st.rep.Elapsed.Seconds(); secs > 0 {
		st.rep.Throughput = float64(st.rep.OK) / secs
	}
	st.rep.Latency = stageOf(&st.lat)
	return &st.rep, nil
}

// runClosedLoop is the original model: one goroutine per connection,
// back-to-back requests, optional pacing. Tenants are assigned to
// connections round-robin.
func runClosedLoop(cfg *LoadConfig, st *loadState, start time.Time) error {
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Clients) / cfg.Rate * float64(time.Second))
	}
	stop := start.Add(cfg.Duration)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		dialErr error
	)
	for i := 0; i < cfg.Clients; i++ {
		cl, err := Dial(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			mu.Lock()
			dialErr = err
			mu.Unlock()
			break
		}
		req := tenantJob(cfg, i%cfg.Tenants)
		wg.Add(1)
		go func(cl *Client, req WireRequest) {
			defer wg.Done()
			defer cl.Close()
			for time.Now().Before(stop) {
				t0 := time.Now()
				resp, err := cl.Run(&req)
				d := time.Since(t0)
				st.record(req.Tenant, resp, err, d)
				if err != nil {
					return // connection-level error: this client is done
				}
				if pace > 0 {
					if sleep := pace - d; sleep > 0 {
						time.Sleep(sleep)
					}
				}
			}
		}(cl, req)
	}
	wg.Wait()
	st.mu.Lock()
	sent := st.rep.Sent
	st.mu.Unlock()
	if dialErr != nil && sent == 0 {
		return fmt.Errorf("palsvc: load generator dial: %w", dialErr)
	}
	return nil
}

// runOpenLoop fires arrivals on a fixed per-tenant schedule and serves them
// from a shared connection pool of cfg.Clients reused connections. An
// arrival that cannot get a connection waits for one — and that wait counts
// in its latency, because its clock starts at the *scheduled* arrival.
func runOpenLoop(cfg *LoadConfig, st *loadState, start time.Time) error {
	perTenant := cfg.TenantRate
	if perTenant <= 0 {
		perTenant = cfg.Rate / float64(cfg.Tenants)
	}
	if perTenant <= 0 {
		return fmt.Errorf("palsvc: open-loop per-tenant rate must be positive")
	}
	interval := time.Duration(float64(time.Second) / perTenant)
	if interval <= 0 {
		interval = time.Microsecond
	}

	// The pool: pre-dialed connections recycled across requests. A
	// connection that suffers a transport error is replaced by a fresh
	// dial on its next checkout, so one torn conn does not shrink the
	// pool for the rest of the run.
	pool := make(chan *Client, cfg.Clients)
	dialed := 0
	for i := 0; i < cfg.Clients; i++ {
		cl, err := Dial(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			if dialed == 0 {
				return fmt.Errorf("palsvc: load generator dial: %w", err)
			}
			break
		}
		dialed++
		pool <- cl
	}
	for i := dialed; i < cfg.Clients; i++ {
		pool <- nil // placeholder: checkout re-dials lazily
	}

	stop := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		req := tenantJob(cfg, t)
		wg.Add(1)
		go func(req WireRequest) {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			var inflight sync.WaitGroup
			for now := range tick.C {
				if now.After(stop) {
					break
				}
				sched := now
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					cl := <-pool
					if cl == nil {
						var err error
						cl, err = Dial(cfg.Addr, cfg.DialTimeout)
						if err != nil {
							st.record(req.Tenant, nil, err, 0)
							pool <- nil
							return
						}
					}
					resp, err := cl.Run(&req)
					st.record(req.Tenant, resp, err, time.Since(sched))
					if err != nil {
						_ = cl.Close()
						pool <- nil // replaced on next checkout
						return
					}
					pool <- cl
				}()
			}
			inflight.Wait()
		}(req)
	}
	wg.Wait()
	for i := 0; i < cfg.Clients; i++ {
		if cl := <-pool; cl != nil {
			_ = cl.Close()
		}
	}
	return nil
}
