package palsvc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"op":"ping"}`)
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("round trip %q, want %q", got, body)
	}
}

func TestReadFrameRejectsOversizedHeader(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized header error %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsEmptyFrame(t *testing.T) {
	var hdr [4]byte
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("complete payload")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFrame(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteFrameRejectsOversizedBody(t *testing.T) {
	err := WriteFrame(&bytes.Buffer{}, make([]byte, MaxFrame+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized body error %v, want ErrFrameTooLarge", err)
	}
}

// startServer brings up a Service behind a loopback TCP listener and
// returns its address.
func startServer(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	s := newTestService(t, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = s.Serve(l, 30*time.Second) }()
	return s, l.Addr().String()
}

func TestWireRunStatsPing(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Run(&WireRequest{Name: "hello", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run failed: %s", resp.Err)
	}
	if string(resp.Output) != "hello" || resp.VerifiedAs != "hello" {
		t.Fatalf("output %q verified %q", resp.Output, resp.VerifiedAs)
	}
	if resp.ExecuteNS <= 0 {
		t.Fatal("no virtual execution time reported")
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 || stats.SePCRCapacity != 4 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestWireUnknownOp(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.roundTrip(&WireRequest{Op: "explode"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Err == "" {
		t.Fatalf("unknown op answered %+v", resp)
	}
}

func TestWireMalformedJSONKeepsConnectionUsable(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("bad request")) {
		t.Fatalf("response %s", body)
	}
	// The connection survives a malformed request.
	cl := &Client{conn: conn}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestWireRetryableFlagOnQueueFull(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 1, QueueDepth: 1})
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Saturate from parallel connections until one response comes back
	// with the retryable flag.
	var wg sync.WaitGroup
	sawRetryable := make(chan struct{}, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c2, err := Dial(addr, 0)
			if err != nil {
				return
			}
			defer c2.Close()
			for j := 0; j < 4; j++ {
				resp, err := c2.Run(&WireRequest{Name: "slow", Source: slowSource})
				if err != nil {
					return
				}
				if !resp.OK && resp.Retryable {
					select {
					case sawRetryable <- struct{}{}:
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-sawRetryable:
	default:
		t.Skip("queue never filled on this host")
	}
}

func TestWireConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{Profile: testProfile(4), Workers: 8, QueueDepth: 128})
	const clients = 8
	var wg sync.WaitGroup
	errC := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr, 0)
			if err != nil {
				errC <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 5; j++ {
				resp, err := cl.Run(&WireRequest{Name: "hello", Source: helloSource})
				if err != nil {
					errC <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if !resp.OK {
					errC <- fmt.Errorf("client %d: %s", i, resp.Err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Error(err)
	}
	if m := s.Metrics(); m.Completed != clients*5 {
		t.Fatalf("completed %d, want %d", m.Completed, clients*5)
	}
}
