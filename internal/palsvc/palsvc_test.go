package palsvc

import (
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/platform"
)

// testProfile is the recommended HP dc5750 with a small RSA modulus so CA
// and AIK generation stay fast under -race.
func testProfile(sePCRs int) platform.Profile {
	p := platform.Recommended(platform.HPdc5750(), sePCRs)
	p.KeyBits = 1024
	p.Seed = 42
	return p
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Profile.Name == "" {
		cfg.Profile = testProfile(4)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

const helloSource = `
	ldi r0, msg
	ldi r1, 5
	svc 6
	ldi r0, 0
	svc 0
msg:	.ascii "hello"
`

const echoSource = `
	ldi r0, buf
	ldi r1, 32
	svc 7
	mov r1, r0
	ldi r0, buf
	svc 6
	ldi r0, 0
	svc 0
buf:	.ascii "--------------------------------"
`

// slowSource busy-loops for 2<<16 = 131072 iterations — a few milliseconds
// of wall-clock simulation, long enough to hold its sePCR while other jobs
// contend.
const slowSource = `
	ldi r0, 0
	ldi r1, 0
	lui r1, 2
loop:	addi r0, 1
	cmp r0, r1
	jnz loop
	ldi r0, 0
	svc 0
`

func TestRunEndToEnd(t *testing.T) {
	s := newTestService(t, Config{})
	res, err := s.Run(Job{Name: "hello", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if string(res.Output) != "hello" {
		t.Fatalf("output %q, want %q", res.Output, "hello")
	}
	if res.VerifiedAs != "hello" {
		t.Fatalf("verified as %q, want %q", res.VerifiedAs, "hello")
	}
	if res.Execute <= 0 {
		t.Fatal("no virtual execution time charged")
	}
	m := s.Metrics()
	if m.Submitted != 1 || m.Admitted != 1 || m.Completed != 1 {
		t.Fatalf("metrics %+v", m)
	}
	if m.MaxSePCROccupancy != 1 {
		t.Fatalf("max occupancy %d, want 1", m.MaxSePCROccupancy)
	}
}

func TestInputDelivered(t *testing.T) {
	s := newTestService(t, Config{})
	res, err := s.Run(Job{Name: "echo", Source: echoSource, Input: []byte("ping pong")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if string(res.Output) != "ping pong" {
		t.Fatalf("echo output %q", res.Output)
	}
}

func TestImageCacheHits(t *testing.T) {
	s := newTestService(t, Config{})
	for i := 0; i < 5; i++ {
		if res, err := s.Run(Job{Name: "hello", Source: helloSource}); err != nil || res.Err != nil {
			t.Fatal(err, res)
		}
	}
	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Fatalf("cache misses %d, want 1", m.CacheMisses)
	}
	if m.CacheHits != 4 {
		t.Fatalf("cache hits %d, want 4", m.CacheHits)
	}
	// Every verification after the first reuses the memoized AIK-cert
	// check.
	if m.VerifyMemoHits == 0 {
		t.Fatal("verifier memo never hit")
	}
}

func TestNoAttestSkipsVerification(t *testing.T) {
	s := newTestService(t, Config{})
	res, err := s.Run(Job{Name: "hello", Source: helloSource, NoAttest: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.VerifiedAs != "" {
		t.Fatalf("NoAttest job verified as %q", res.VerifiedAs)
	}
	if res.QuoteGen != 0 || res.Verify != 0 {
		t.Fatalf("NoAttest job charged quote/verify time: %v %v", res.QuoteGen, res.Verify)
	}
	// The register must still come back: a second job has capacity.
	if res, err := s.Run(Job{Name: "hello", Source: helloSource}); err != nil || res.Err != nil {
		t.Fatal(err, res)
	}
}

func TestBadSourceFailsJob(t *testing.T) {
	s := newTestService(t, Config{})
	res, err := s.Run(Job{Name: "bad", Source: "not a program"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("bad source ran")
	}
	if IsRetryable(res.Err) {
		t.Fatal("compile error marked retryable")
	}
	if m := s.Metrics(); m.Failed != 1 {
		t.Fatalf("failed count %d, want 1", m.Failed)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Config{})
	if _, err := s.Submit(Job{}); err == nil {
		t.Fatal("empty job accepted")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// One worker, queue of 2: the worker picks up the first slow job and
	// the queue absorbs two more; the fourth submission must bounce.
	s := newTestService(t, Config{Workers: 1, QueueDepth: 2})
	var tickets []*Ticket
	var rejected error
	for i := 0; i < 10; i++ {
		tk, err := s.Submit(Job{Name: "slow", Source: slowSource})
		if err != nil {
			rejected = err
			break
		}
		tickets = append(tickets, tk)
	}
	if rejected == nil {
		t.Fatal("bounded queue never pushed back")
	}
	if !errors.Is(rejected, ErrQueueFull) {
		t.Fatalf("rejection error %v, want ErrQueueFull", rejected)
	}
	if !IsRetryable(rejected) {
		t.Fatal("queue-full rejection not retryable")
	}
	for _, tk := range tickets {
		if res := tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if m := s.Metrics(); m.Rejected == 0 {
		t.Fatalf("metrics counted no rejections: %+v", m)
	}
}

func TestDeadlineExceededAccounted(t *testing.T) {
	// One worker stuck behind a slow job; the jobs queued after it carry
	// deadlines that expire while they wait.
	s := newTestService(t, Config{Workers: 1, QueueDepth: 16})
	slow, err := s.Submit(Job{Name: "slow", Source: slowSource})
	if err != nil {
		t.Fatal(err)
	}
	const K = 4
	var doomed []*Ticket
	for i := 0; i < K; i++ {
		tk, err := s.Submit(Job{
			Name:     "hello",
			Source:   helloSource,
			Deadline: time.Now().Add(time.Millisecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		doomed = append(doomed, tk)
	}
	time.Sleep(5 * time.Millisecond) // let every deadline lapse in queue
	if res := slow.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, tk := range doomed {
		res := tk.Wait()
		if !errors.Is(res.Err, ErrDeadlineExceeded) {
			t.Fatalf("job %d error %v, want ErrDeadlineExceeded", i, res.Err)
		}
	}
	if m := s.Metrics(); m.DeadlineExceeded != K {
		t.Fatalf("DeadlineExceeded = %d, want %d", m.DeadlineExceeded, K)
	}
}

func TestAdmitRejectWhenBankExhausted(t *testing.T) {
	// Bank of 1 and a reject policy: while the slow job holds the only
	// sePCR, a second job must fail fast with a retryable error.
	s := newTestService(t, Config{
		Profile:   testProfile(1),
		Workers:   2,
		Admission: AdmitReject,
	})
	slow, err := s.Submit(Job{Name: "slow", Source: slowSource})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var sawReject bool
	for time.Now().Before(deadline) && !sawReject {
		res, err := s.Run(Job{Name: "hello", Source: helloSource})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err == nil {
			// The slow job already finished — too late to collide.
			break
		}
		if !errors.Is(res.Err, ErrBankExhausted) {
			t.Fatalf("error %v, want ErrBankExhausted", res.Err)
		}
		if !IsRetryable(res.Err) {
			t.Fatal("bank-exhausted rejection not retryable")
		}
		sawReject = true
	}
	if res := slow.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if !sawReject {
		t.Skip("slow PAL finished before any probe collided (very fast host)")
	}
	if m := s.Metrics(); m.Rejected == 0 {
		t.Fatalf("metrics counted no rejections: %+v", m)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s := newTestService(t, Config{})
	if res, err := s.Run(Job{Name: "hello", Source: helloSource}); err != nil || res.Err != nil {
		t.Fatal(err, res)
	}
	s.Close()
	if _, err := s.Submit(Job{Name: "hello", Source: helloSource}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestCloseDrainsQueue(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 32})
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := s.Submit(Job{Name: "hello", Source: helloSource})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.Close()
	for _, tk := range tickets {
		if res := tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if m := s.Metrics(); m.Completed != 8 {
		t.Fatalf("completed %d, want 8", m.Completed)
	}
}

func TestMultiMachineSpreadsLoad(t *testing.T) {
	s := newTestService(t, Config{
		Profile:  testProfile(2),
		Machines: 2,
		Workers:  4,
	})
	if s.Bank() != 4 {
		t.Fatalf("bank %d, want 4", s.Bank())
	}
	var tickets []*Ticket
	for i := 0; i < 12; i++ {
		tk, err := s.Submit(Job{Name: "slow", Source: slowSource})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	used := map[int]bool{}
	for _, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		used[res.Machine] = true
	}
	if len(used) != 2 {
		t.Fatalf("machines used %v, want both replicas", used)
	}
}

func TestTicketDoneChannel(t *testing.T) {
	s := newTestService(t, Config{})
	tk, err := s.Submit(Job{Name: "hello", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-tk.Done():
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("result never delivered")
	}
}
