package palsvc

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/audit"
	"minimaltcb/internal/chaos"
	"minimaltcb/internal/obs/prof"
)

// These tests drive the service through internal/chaos: supervised retry,
// replica quarantine and shedding, deadline kills mid-execute, and the
// zero-loss/zero-leak soak. Count-based fault profiles (TPMFailFirst,
// PALFaultFirst) fire unconditionally for the first N decisions, which
// makes the assertions exact rather than probabilistic.

// spinSource busy-loops for 64<<16 ≈ 4.2M iterations — far longer than any
// deadline these tests set, so a mid-execute kill is the only way out.
const spinSource = `
	ldi r0, 0
	ldi r1, 0
	lui r1, 64
loop:	addi r0, 1
	cmp r0, r1
	jnz loop
	ldi r0, 0
	svc 0
`

func TestRetryRecoversFromInjectedTPMFault(t *testing.T) {
	s := newTestService(t, Config{
		Machines: 1, Workers: 1,
		Chaos: chaos.New(7, chaos.Profile{TPMFailFirst: 1}),
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond, MaxBackoff: 500 * time.Microsecond},
	})
	res, err := s.Run(Job{Name: "retry", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("supervised job failed despite retries: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one injected failure, one success)", res.Attempts)
	}
	if string(res.Output) != "hello" {
		t.Fatalf("output %q", res.Output)
	}
	m := s.Metrics()
	if m.Completed != 1 || m.Failed != 0 || m.Retried != 1 {
		t.Fatalf("metrics completed=%d failed=%d retried=%d, want 1/0/1",
			m.Completed, m.Failed, m.Retried)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedFaultTerminalWithoutRetryPolicy(t *testing.T) {
	s := newTestService(t, Config{
		Machines: 1, Workers: 1,
		Chaos: chaos.New(7, chaos.Profile{TPMFailFirst: 1}),
	})
	res, err := s.Run(Job{Name: "no-retry", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("injected TPM fault did not fail the job")
	}
	// The injected cause must survive the wrap chain: errors.Is finds the
	// sentinel and Retryable finds the Retryable() bit, so a tenant (or the
	// supervisor) can classify without string matching.
	if !errors.Is(res.Err, chaos.ErrInjected) {
		t.Fatalf("errors.Is(err, chaos.ErrInjected) = false for %v", res.Err)
	}
	if !Retryable(res.Err) {
		t.Fatalf("injected fault not retryable through the chain: %v", res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 with no retry policy", res.Attempts)
	}
	m := s.Metrics()
	if m.Failed != 1 || m.Retried != 0 {
		t.Fatalf("metrics failed=%d retried=%d, want 1/0", m.Failed, m.Retried)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineKillsMidExecute pins the satellite fix: the deadline is
// checked at every slice boundary, so a spinning PAL is SKILLed mid-run and
// its sePCR and pages come back — not just at the pipeline seams.
func TestDeadlineKillsMidExecute(t *testing.T) {
	s := newTestService(t, Config{Machines: 1, Workers: 1})
	res, err := s.Run(Job{
		Name:     "spin",
		Source:   spinSource,
		Deadline: time.Now().Add(15 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("spinning job with 15ms deadline: err = %v, want ErrDeadlineExceeded", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "mid-execute") {
		t.Fatalf("deadline fired at a pipeline seam, not mid-execute: %v", res.Err)
	}
	m := s.Metrics()
	if m.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", m.DeadlineExceeded)
	}
	// The killed PAL's register and pages must be back: LeakCheck proves
	// it, and a follow-up job proves the service still works.
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(Job{Name: "after", Source: helloSource})
	if err != nil || res.Err != nil {
		t.Fatalf("service wedged after a mid-execute kill: %v / %v", err, res.Err)
	}
}

func TestResolveDeadline(t *testing.T) {
	now := time.Now()
	explicit := now.Add(3 * time.Second)
	cases := []struct {
		name string
		job  Job
		def  time.Duration
		want time.Time
	}{
		{"explicit wins over default", Job{Deadline: explicit}, time.Minute, explicit},
		{"explicit without default", Job{Deadline: explicit}, 0, explicit},
		{"default fills zero deadline", Job{}, time.Minute, now.Add(time.Minute)},
		{"both zero means none", Job{}, 0, time.Time{}},
	}
	for _, tc := range cases {
		if got := resolveDeadline(tc.job, now, tc.def); !got.Equal(tc.want) {
			t.Errorf("%s: resolveDeadline = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestQuarantineShedsThenRecovers(t *testing.T) {
	s := newTestService(t, Config{
		Machines: 1, Workers: 1,
		Chaos:      chaos.New(3, chaos.Profile{TPMFailFirst: 2}),
		Supervisor: SupervisorPolicy{QuarantineAfter: 2, QuarantineFor: 300 * time.Millisecond},
	})
	// Two consecutive injected faults trip the only replica into
	// quarantine.
	for i := 0; i < 2; i++ {
		res, err := s.Run(Job{Name: "victim", Source: helloSource})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err == nil {
			t.Fatalf("job %d: want injected failure", i)
		}
	}
	// With the whole fleet quarantined the service sheds rather than
	// queueing against a sick replica; the rejection is retryable.
	res, err := s.Run(Job{Name: "shed-me", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrShedding) {
		t.Fatalf("all-quarantined: err = %v, want ErrShedding", res.Err)
	}
	if !Retryable(res.Err) {
		t.Fatal("shed-load rejection must be retryable")
	}
	if ErrorCode(res.Err) != CodeShed {
		t.Fatalf("shed wire code %q, want %q", ErrorCode(res.Err), CodeShed)
	}
	// The quarantine expires and the replica rejoins admission.
	time.Sleep(400 * time.Millisecond)
	res, err = s.Run(Job{Name: "recovered", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("replica never recovered from quarantine: %v", res.Err)
	}
	m := s.Metrics()
	if m.Quarantines != 1 || m.RejectedShed != 1 || m.Completed != 1 || m.Failed != 2 {
		t.Fatalf("metrics quarantines=%d shed=%d completed=%d failed=%d, want 1/1/1/2",
			m.Quarantines, m.RejectedShed, m.Completed, m.Failed)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// replayOutcome is the per-job tuple two same-seed runs are compared on.
type replayOutcome struct {
	Err      string
	Attempts int
	Slices   int
	Exit     uint32
}

// runReplay executes a fixed single-worker, single-machine job sequence
// under a seeded injector and returns everything determinism covers.
func runReplay(t *testing.T, seed uint64) ([]replayOutcome, []chaos.Event, map[string]uint64, Metrics) {
	t.Helper()
	inj := chaos.New(seed, chaos.Profile{
		TPMFailRate:  0.2,
		PALFaultRate: 0.2,
		StormRate:    0.5,
		StormQuantum: 20 * time.Microsecond,
	})
	s := newTestService(t, Config{
		Machines: 1, Workers: 1,
		Quantum: 50 * time.Microsecond,
		Chaos:   inj,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: 20 * time.Microsecond, MaxBackoff: 100 * time.Microsecond},
	})
	var outs []replayOutcome
	for i := 0; i < 16; i++ {
		res, err := s.Run(Job{Name: "replay", Source: slowSource})
		if err != nil {
			t.Fatal(err)
		}
		o := replayOutcome{Attempts: res.Attempts, Slices: res.Slices, Exit: res.ExitStatus}
		if res.Err != nil {
			o.Err = res.Err.Error()
		}
		outs = append(outs, o)
	}
	return outs, inj.Schedule(), inj.Counts(), s.Metrics()
}

// TestSeedReplayIsDeterministic is the replay contract end to end: two runs
// with the same chaos seed over the same job sequence produce bit-identical
// fault schedules, per-job outcomes, and terminal counters.
func TestSeedReplayIsDeterministic(t *testing.T) {
	out1, sched1, counts1, m1 := runReplay(t, 99)
	out2, sched2, counts2, m2 := runReplay(t, 99)
	if !reflect.DeepEqual(sched1, sched2) {
		t.Fatalf("fault schedules diverged: %d vs %d events", len(sched1), len(sched2))
	}
	if len(sched1) == 0 {
		t.Fatal("profile injected nothing; the replay comparison is vacuous")
	}
	if !reflect.DeepEqual(counts1, counts2) {
		t.Fatalf("fault counts diverged: %v vs %v", counts1, counts2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("per-job outcomes diverged:\nrun1: %+v\nrun2: %+v", out1, out2)
	}
	type counters struct{ Completed, Failed, Retried, DeadlineExceeded uint64 }
	c1 := counters{m1.Completed, m1.Failed, m1.Retried, m1.DeadlineExceeded}
	c2 := counters{m2.Completed, m2.Failed, m2.Retried, m2.DeadlineExceeded}
	if c1 != c2 {
		t.Fatalf("terminal counters diverged: %+v vs %+v", c1, c2)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// TestSoakZeroLossUnderChaos is the acceptance soak (`make soak` runs it
// with a longer duration): a non-trivial fault profile against a
// multi-replica service over real TCP, asserting that every accepted job
// reaches exactly one terminal counter, nothing leaks, and every injected
// PAL fault left exactly one clean crash bundle. Tunables:
//
//	CHAOS_SOAK_PROFILE   chaos profile string   (default "soak")
//	CHAOS_SOAK_DURATION  load duration          (default "1200ms")
//	CHAOS_SOAK_SEED      injector seed          (default 1)
func TestSoakZeroLossUnderChaos(t *testing.T) {
	p, err := chaos.ParseProfile(envOr("CHAOS_SOAK_PROFILE", "soak"))
	if err != nil {
		t.Fatalf("CHAOS_SOAK_PROFILE: %v", err)
	}
	dur, err := time.ParseDuration(envOr("CHAOS_SOAK_DURATION", "1200ms"))
	if err != nil {
		t.Fatalf("CHAOS_SOAK_DURATION: %v", err)
	}
	seed, err := strconv.ParseUint(envOr("CHAOS_SOAK_SEED", "1"), 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SOAK_SEED: %v", err)
	}

	inj := chaos.New(seed, p)
	crashDir := t.TempDir()
	rec := prof.NewFlightRecorder(crashDir, nil)

	// The audit log rides the whole soak; the cleanup below runs after the
	// service's own Close (LIFO), seals the final head, and replays every
	// proof — chaos must leave zero gaps and zero unverifiable entries.
	auditDir := t.TempDir()
	alog, err := audit.Open(audit.Config{Dir: auditDir, Node: "soak", HeadEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		alog.Close()
		if alog.Dropped() != 0 {
			t.Errorf("audit log dropped %d events during the soak", alog.Dropped())
		}
		arep, err := audit.VerifyChain(auditDir)
		if err != nil {
			t.Errorf("audit verify: %v", err)
			return
		}
		if err := arep.Err(); err != nil {
			t.Errorf("audit log does not verify after soak: %v", err)
		}
		if arep.Uncovered != 0 {
			t.Errorf("%d audit events not covered by the final head", arep.Uncovered)
		}
		if arep.Events == 0 {
			t.Error("soak produced no audit events")
		}
	})

	s := newTestService(t, Config{
		Machines: 2, Workers: 8,
		Quantum:    50 * time.Microsecond, // multi-slice jobs: storms and spurious faults get traction
		Chaos:      inj,
		Retry:      DefaultRetryPolicy(),
		Supervisor: SupervisorPolicy{QuarantineAfter: 4, QuarantineFor: 5 * time.Millisecond},
		Flight:     rec,
		Audit:      alog,
		Batch:      DefaultBatchPolicy(), // the soak runs the batched pipeline
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l, 30*time.Second) }()

	rep, err := RunLoad(LoadConfig{
		Addr: l.Addr().String(), Clients: 6, Duration: dur,
		Name: "soak", Source: slowSource, Input: []byte("soak"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak seed %d profile [%v]: %v", seed, p, rep)
	t.Logf("injected: %v", inj.Counts())

	// Client view: every request got exactly one classified answer.
	if got := rep.OK + rep.Rejected + rep.DeadlineExceeded + rep.Failed; got != rep.Sent {
		t.Fatalf("lost responses: sent=%d but outcomes sum to %d", rep.Sent, got)
	}
	if rep.OK == 0 {
		t.Fatal("no job ever completed under the soak profile")
	}

	// Server view: terminal counters partition everything submitted —
	// zero lost jobs even with retries, quarantines and shedding in play.
	m := s.Metrics()
	if got := m.Completed + m.Failed + m.DeadlineExceeded + m.RejectedBank + m.RejectedShed; got != m.Submitted {
		t.Fatalf("terminal counters (%d) do not partition Submitted (%d): %+v", got, m.Submitted, m)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("resource leak after soak: %v", err)
	}

	// Batched-attestation hygiene: batching was on for the whole soak, so
	// batches actually formed, the rotating replay window stayed bounded,
	// and no challenge nonce was ever presented twice — chaos-driven
	// retries must re-challenge, never replay.
	if m.Completed > 0 && m.QuoteBatches == 0 {
		t.Error("soak completed jobs but never formed a batch quote")
	}
	for i, mach := range s.machines {
		if n := mach.sys.Verifier.NonceWindowSize(); n > attest.NonceWindowBound {
			t.Errorf("machine %d: nonce window grew to %d, above bound %d", i, n, attest.NonceWindowBound)
		}
		if r := mach.sys.Verifier.NonceReplays(); r != 0 {
			t.Errorf("machine %d: verifier rejected %d replayed nonces during the soak", i, r)
		}
	}

	counts := inj.Counts()
	if p.Enabled() {
		var total uint64
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			t.Fatal("soak ran with zero injected faults; the profile or sites are dead")
		}
	}

	// Flight-recorder hygiene: every injected PAL fault produced exactly
	// one persisted bundle (no drops, no duplicates from the SKILL path),
	// and every bundle round-trips as JSON.
	if err := rec.Err(); err != nil {
		t.Fatalf("flight recorder persistence failure: %v", err)
	}
	var faultBundles uint64
	f, err := os.Open(filepath.Join(crashDir, "crashes.jsonl"))
	switch {
	case err == nil:
		defer f.Close()
		bundles, err := prof.ReadCrashes(f)
		if err != nil {
			t.Fatalf("corrupt crash bundle: %v", err)
		}
		for _, b := range bundles {
			if b.Reason == "fault" {
				faultBundles++
			}
		}
	case os.IsNotExist(err):
		// No faults fired (e.g. an override profile without pal_fault).
	default:
		t.Fatal(err)
	}
	if faultBundles != counts["pal_fault"] {
		t.Fatalf("flight recorder captured %d fault bundles for %d injected PAL faults",
			faultBundles, counts["pal_fault"])
	}
}
