package palsvc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/obs"
)

// Wire protocol: each message is a 4-byte big-endian length followed by a
// JSON body. The same framing runs in both directions; a connection carries
// any number of request/response pairs in order.

// MaxFrame bounds a single frame body; anything larger is rejected before
// allocation so a hostile peer cannot make the service reserve gigabytes
// from four header bytes.
const MaxFrame = 1 << 20

// ErrFrameTooLarge reports a frame header exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("palsvc: frame exceeds size limit")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting empty and oversized
// bodies.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("palsvc: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: header claims %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("palsvc: truncated frame: %w", err)
	}
	return body, nil
}

// Wire ops.
const (
	OpRun    = "run"
	OpStats  = "stats"
	OpPing   = "ping"
	OpHealth = "health"
	// OpTrace dumps the server's span ring (optionally filtered to one
	// trace ID) together with the server's wall clock, so a collector can
	// align multi-process rings by RTT midpoint. Old servers answer it
	// with an unknown-op error; callers degrade by skipping the node.
	OpTrace = "trace"
	// OpAudit queries the server's tamper-evident audit log: a bounded
	// tail of events (filterable by tenant, trace, image-hash prefix and
	// sequence number) plus the newest signed tree head. A router answers
	// it with the fleet view — its own log plus one nested dump per live
	// backend. Old servers answer with an unknown-op error; callers
	// degrade by skipping the node, same as trace.
	OpAudit = "audit"
)

// maxTraceDump bounds how many records one trace response carries: newest
// first wins, and TraceDump.Truncated reports what was cut. 2048 records
// of typical size stay comfortably inside MaxFrame.
const maxTraceDump = 2048

// maxAuditDump bounds how many audit events one response carries (newest
// matches win; AuditDump.Truncated reports the cut). Events are a few
// hundred JSON bytes, so 1024 stays far inside MaxFrame even with a
// router's per-backend nesting.
const maxAuditDump = 1024

// HealthInfo is the health op's payload: the admission-relevant view of a
// server, cheap enough for a router to poll every few hundred milliseconds.
// Unlike the stats op it never takes the metrics mutex and never touches a
// busy machine's lock — a wedged replica shows up as zero free capacity, not
// as a hung probe.
type HealthInfo struct {
	// QueueDepth and QueueCap describe the submission queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// FreeSePCRs is the number of unreserved Free registers across replicas
	// whose locks could be probed without blocking; Bank is total capacity.
	FreeSePCRs int `json:"free_sepcrs"`
	Bank       int `json:"bank"`
	// Replicas and QuarantinedReplicas count platform replicas and how many
	// the supervisor currently holds in quarantine.
	Replicas            int `json:"replicas"`
	QuarantinedReplicas int `json:"quarantined_replicas"`
	// Shedding reports that every replica is quarantined: the server is
	// rejecting all work with shed_load, so a router should drain it.
	Shedding bool `json:"shedding"`
	// Degraded is set client-side when the peer predates the health op and
	// the probe fell back to synthesizing this from the stats op.
	Degraded bool `json:"degraded,omitempty"`
}

// WireRequest is one client request.
type WireRequest struct {
	Op         string `json:"op"`
	Name       string `json:"name,omitempty"`
	Source     string `json:"source,omitempty"`
	Input      []byte `json:"input,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	NoAttest   bool   `json:"no_attest,omitempty"`

	// Propagated trace context (all optional; absent fields keep the old
	// wire shape, and old servers ignore unknown fields by JSON contract).
	// TraceID is the compact obs.TraceID form — decimal or 32 hex digits;
	// on a run request the server adopts it instead of minting a root, so
	// the job's pipeline spans join the caller's trace. ParentSpan is the
	// caller-side span the server's spans nest under. Tenant is baggage:
	// the accounting identity for SLO tracking, defaulting to Name. On a
	// trace request, TraceID is the dump filter instead.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan uint64 `json:"parent_span,omitempty"`
	Tenant     string `json:"tenant,omitempty"`

	// Audit-op filters (ignored by every other op): Image matches on the
	// hex prefix of the event's PAL measurement, Since selects events with
	// seq >= Since, Limit bounds the tail (0 means the server cap). Tenant
	// and TraceID double as audit filters on this op.
	Image string `json:"image,omitempty"`
	Since uint64 `json:"since,omitempty"`
	Limit int    `json:"limit,omitempty"`
}

// TraceDump is the trace op's payload: one node's (or, from a router, a
// whole fleet's already-stitched) span records plus the clock sample and
// loss accounting a collector needs.
type TraceDump struct {
	// NowNS is the answering node's wall clock when the dump was taken,
	// in Unix nanoseconds — the collector's skew-correction sample.
	NowNS int64 `json:"now_ns"`
	// Dropped counts records the ring had already overwritten.
	Dropped uint64 `json:"dropped,omitempty"`
	// Truncated counts records cut from this response to honor MaxFrame.
	Truncated int          `json:"truncated,omitempty"`
	Records   []obs.Record `json:"records"`
}

// AuditDump is the audit op's payload: one node's bounded event tail plus
// the newest signed tree head — enough for tcbaudit to show recent history
// and for a verifier to pin it. From a router, Nodes nests one dump per
// live backend (the fleet view with per-node signed heads) and the outer
// dump describes the router's own control-plane log.
type AuditDump struct {
	Node    string          `json:"node,omitempty"`
	Size    uint64          `json:"size"`
	Dropped uint64          `json:"dropped,omitempty"`
	Head    *audit.TreeHead `json:"head,omitempty"`
	// Truncated counts older matches cut to honor the response bound.
	Truncated int           `json:"truncated,omitempty"`
	Events    []audit.Event `json:"events"`
	Nodes     []AuditDump   `json:"nodes,omitempty"`
}

// WireResponse is the server's answer.
type WireResponse struct {
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
	// Code is a stable machine-readable cause for Err (see ErrorCode):
	// "queue_full", "bank_exhausted", "shed_load", "deadline_exceeded",
	// "closed" or "error". Empty on success.
	Code string `json:"code,omitempty"`

	Output     []byte `json:"output,omitempty"`
	ExitStatus uint32 `json:"exit_status,omitempty"`
	VerifiedAs string `json:"verified_as,omitempty"`
	// Attempts mirrors JobResult.Attempts: how many pipeline passes the
	// supervisor spent on the job (1 = no retries).
	Attempts int `json:"attempts,omitempty"`
	// BatchSize mirrors JobResult.BatchSize: how many jobs shared the
	// quote that attested this one. Absent (0) when the server quoted
	// one-shot or predates batching — old clients ignore the field by the
	// protocol's unknown-field contract.
	BatchSize int `json:"batch_size,omitempty"`
	// Backend is the backend address that served the request when it was
	// routed through a cluster front-end (cmd/palrouter); empty when the
	// answer came straight from a palservd.
	Backend string `json:"backend,omitempty"`

	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	ArbWaitNS   int64 `json:"arb_wait_ns,omitempty"`
	ExecuteNS   int64 `json:"execute_ns,omitempty"`
	QuoteGenNS  int64 `json:"quote_gen_ns,omitempty"`
	VerifyNS    int64 `json:"verify_ns,omitempty"`

	Stats  *Metrics    `json:"stats,omitempty"`
	Health *HealthInfo `json:"health,omitempty"`
	Trace  *TraceDump  `json:"trace,omitempty"`
	Audit  *AuditDump  `json:"audit,omitempty"`

	// TraceID echoes the trace the job ran under (propagated or
	// server-minted), so callers can report and stitch it later.
	TraceID string `json:"trace_id,omitempty"`
}

// Serve accepts connections on l until the listener closes, handling each
// connection in its own goroutine. connTimeout bounds each request
// read/response write (0 means no per-request deadline). Serve returns the
// accept error that ended the loop.
func (s *Service) Serve(l net.Listener, connTimeout time.Duration) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			// A panicking handler must not leak the connection or kill
			// the whole server.
			defer func() {
				if r := recover(); r != nil {
					_ = c.Close()
				}
			}()
			defer c.Close()
			s.serveConn(c, connTimeout)
		}(conn)
	}
}

// serveConn runs the request loop for one connection until the peer closes
// or a framing/deadline error occurs.
func (s *Service) serveConn(c net.Conn, connTimeout time.Duration) {
	for {
		if connTimeout > 0 {
			_ = c.SetDeadline(time.Now().Add(connTimeout))
		}
		body, err := ReadFrame(c)
		if err != nil {
			return
		}
		var req WireRequest
		resp := &WireResponse{}
		if err := json.Unmarshal(body, &req); err != nil {
			resp.Err = "bad request: " + err.Error()
		} else {
			resp = s.dispatch(&req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := WriteFrame(c, out); err != nil {
			return
		}
	}
}

// dispatch executes one wire request against the service.
func (s *Service) dispatch(req *WireRequest) *WireResponse {
	switch req.Op {
	case OpPing:
		return &WireResponse{OK: true}
	case OpStats:
		m := s.Metrics()
		return &WireResponse{OK: true, Stats: &m}
	case OpHealth:
		h := s.Health()
		return &WireResponse{OK: true, Health: &h}
	case OpTrace:
		return s.traceDump(req)
	case OpAudit:
		return s.auditDump(req)
	case OpRun:
		j := Job{Name: req.Name, Source: req.Source, Input: req.Input, NoAttest: req.NoAttest,
			Tenant: req.Tenant, Trace: wireTraceContext(req)}
		if req.DeadlineMS != 0 {
			// A negative deadline resolves to a time in the past and fails
			// with deadline_exceeded, matching the local-API contract.
			// Treating it as "no deadline" (the old > 0 check) silently
			// granted DefaultDeadline — or unbounded time — to a request
			// that asked for none at all.
			j.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
		}
		res, err := s.Run(j)
		if err != nil {
			return &WireResponse{Err: err.Error(), Retryable: IsRetryable(err), Code: ErrorCode(err)}
		}
		resp := &WireResponse{
			Output:      res.Output,
			ExitStatus:  res.ExitStatus,
			VerifiedAs:  res.VerifiedAs,
			Attempts:    res.Attempts,
			BatchSize:   res.BatchSize,
			QueueWaitNS: res.QueueWait.Nanoseconds(),
			ArbWaitNS:   res.ArbWait.Nanoseconds(),
			ExecuteNS:   res.Execute.Nanoseconds(),
			QuoteGenNS:  res.QuoteGen.Nanoseconds(),
			VerifyNS:    res.Verify.Nanoseconds(),
		}
		if res.Err != nil {
			resp.Err = res.Err.Error()
			resp.Retryable = IsRetryable(res.Err)
			resp.Code = ErrorCode(res.Err)
		} else {
			resp.OK = true
		}
		if !res.Trace.IsZero() {
			resp.TraceID = res.Trace.String()
		}
		return resp
	default:
		return &WireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// wireTraceContext parses a request's propagated trace context. Absent or
// malformed fields yield the zero Context (the server mints its own root);
// the empty-string fast path keeps the hot run dispatch allocation-free.
func wireTraceContext(req *WireRequest) obs.Context {
	if req.TraceID == "" {
		return obs.Context{}
	}
	id, err := obs.ParseTraceID(req.TraceID)
	if err != nil || id.IsZero() {
		return obs.Context{}
	}
	return obs.Context{Trace: id, Span: req.ParentSpan}
}

// traceDump answers the trace op from the service's own ring.
func (s *Service) traceDump(req *WireRequest) *WireResponse {
	recs, dropped := s.tracer.Snapshot()
	if req.TraceID != "" {
		id, err := obs.ParseTraceID(req.TraceID)
		if err != nil {
			return &WireResponse{Err: err.Error()}
		}
		recs = obs.FilterTrace(recs, id)
	}
	return &WireResponse{OK: true, Trace: BoundTraceDump(recs, dropped)}
}

// auditDump answers the audit op from the service's log: the filtered,
// bounded event tail plus the newest signed tree head. A service built
// without an audit log answers with an error, which callers treat like an
// unknown op (skip the node).
func (s *Service) auditDump(req *WireRequest) *WireResponse {
	if s.cfg.Audit == nil {
		return &WireResponse{Err: "palsvc: audit log disabled"}
	}
	q := audit.Query{Tenant: req.Tenant, Image: req.Image, Since: req.Since, Limit: req.Limit}
	if q.Limit <= 0 || q.Limit > maxAuditDump {
		q.Limit = maxAuditDump
	}
	if req.TraceID != "" {
		id, err := obs.ParseTraceID(req.TraceID)
		if err != nil {
			return &WireResponse{Err: err.Error()}
		}
		q.Trace = id
	}
	// Seal the tail before dumping: the reported head must cover every
	// event in the dump, even when the log is mid-segment. Sync is a
	// no-op when the newest head is already current.
	s.cfg.Audit.Sync()
	events, truncated := s.cfg.Audit.Select(q)
	return &WireResponse{OK: true, Audit: &AuditDump{
		Node:      s.cfg.Audit.Node(),
		Size:      s.cfg.Audit.Size(),
		Dropped:   s.cfg.Audit.Dropped(),
		Head:      s.cfg.Audit.Head(),
		Truncated: truncated,
		Events:    events,
	}}
}

// BoundTraceDump packages records as a trace-op payload, keeping the
// newest maxTraceDump records and reporting the cut in Truncated. The
// router reuses it to bound stitched multi-node dumps to one wire frame.
func BoundTraceDump(recs []obs.Record, dropped uint64) *TraceDump {
	dump := &TraceDump{NowNS: time.Now().UnixNano(), Dropped: dropped, Records: recs}
	if len(recs) > maxTraceDump {
		dump.Truncated = len(recs) - maxTraceDump
		dump.Records = recs[len(recs)-maxTraceDump:]
	}
	return dump
}

// Client is a tenant-side connection to a palsvc server.
type Client struct {
	conn    net.Conn
	timeout time.Duration // per-roundTrip deadline; 0 = none
}

// Dial connects to a palsvc server. A positive timeout bounds the TCP
// connect (net.DialTimeout), a ping handshake proving the peer actually
// speaks the protocol, and — unless overridden with SetTimeout — every
// subsequent round trip. A zero timeout preserves the original
// block-forever behaviour and skips the handshake; routers and probers must
// always pass one, because a black-holed backend would otherwise hang the
// caller indefinitely.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, timeout: timeout}
	if timeout > 0 {
		// Handshake under the same budget: a listener that accepts but
		// never answers (black hole, half-dead process) fails here, not at
		// the first real request.
		if err := c.Ping(); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("palsvc: dial handshake with %s: %w", addr, err)
		}
	}
	return c, nil
}

// SetTimeout replaces the per-roundTrip deadline established at Dial
// (0 disables it).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req *WireRequest) (*WireResponse, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, body); err != nil {
		return nil, err
	}
	out, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	var resp WireResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Do sends one raw request and returns the raw response — the forwarding
// primitive cmd/palrouter proxies through. Unlike Run it never rewrites
// req.Op, so a router can relay stats/health/ping verbatim.
func (c *Client) Do(req *WireRequest) (*WireResponse, error) {
	return c.roundTrip(req)
}

// Run submits a job over the wire and waits for its result.
func (c *Client) Run(req *WireRequest) (*WireResponse, error) {
	r := *req
	r.Op = OpRun
	return c.roundTrip(&r)
}

// Stats fetches the server's metrics snapshot.
func (c *Client) Stats() (*Metrics, error) {
	resp, err := c.roundTrip(&WireRequest{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Stats == nil {
		return nil, fmt.Errorf("palsvc: stats failed: %s", resp.Err)
	}
	return resp.Stats, nil
}

// Health fetches the server's admission-relevant health snapshot. Servers
// that predate the health op answer it with an unknown-op error; Health then
// degrades gracefully by synthesizing the snapshot from the stats op
// (Degraded is set), so a mixed-version fleet stays probeable.
func (c *Client) Health() (*HealthInfo, error) {
	resp, err := c.roundTrip(&WireRequest{Op: OpHealth})
	if err != nil {
		return nil, err
	}
	if resp.OK && resp.Health != nil {
		return resp.Health, nil
	}
	stats, err := c.Stats()
	if err != nil {
		return nil, fmt.Errorf("palsvc: health probe fallback: %w", err)
	}
	free := stats.SePCRCapacity - stats.SePCROccupancy
	if free < 0 {
		free = 0
	}
	return &HealthInfo{
		QueueDepth: stats.QueueDepth,
		FreeSePCRs: free,
		Bank:       stats.SePCRCapacity,
		Degraded:   true,
	}, nil
}

// Trace fetches the server's span ring (filter narrows it to one trace ID,
// "" dumps everything) and estimates the server's clock offset from the
// local one using the RTT midpoint of this very round trip — the input
// obs.Stitch needs to merge multi-process rings onto one timeline. Old
// servers answer with an unknown-op error, which surfaces here as err.
func (c *Client) Trace(filter string) (*TraceDump, time.Duration, error) {
	sent := time.Now()
	resp, err := c.roundTrip(&WireRequest{Op: OpTrace, TraceID: filter})
	received := time.Now()
	if err != nil {
		return nil, 0, err
	}
	if !resp.OK || resp.Trace == nil {
		return nil, 0, fmt.Errorf("palsvc: trace dump failed: %s", resp.Err)
	}
	return resp.Trace, obs.ClockOffset(sent, received, resp.Trace.NowNS), nil
}

// Audit queries the server's tamper-evident audit log. The request's
// Tenant/TraceID/Image/Since/Limit fields filter the event tail; a zero
// request fetches the newest events and the latest signed head. Old
// servers (and servers running without a log) answer with an error, which
// surfaces here — fleet callers skip such nodes.
func (c *Client) Audit(req *WireRequest) (*AuditDump, error) {
	r := *req
	r.Op = OpAudit
	resp, err := c.roundTrip(&r)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Audit == nil {
		return nil, fmt.Errorf("palsvc: audit query failed: %s", resp.Err)
	}
	return resp.Audit, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(&WireRequest{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("palsvc: ping failed: %s", resp.Err)
	}
	return nil
}
