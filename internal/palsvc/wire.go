package palsvc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Wire protocol: each message is a 4-byte big-endian length followed by a
// JSON body. The same framing runs in both directions; a connection carries
// any number of request/response pairs in order.

// MaxFrame bounds a single frame body; anything larger is rejected before
// allocation so a hostile peer cannot make the service reserve gigabytes
// from four header bytes.
const MaxFrame = 1 << 20

// ErrFrameTooLarge reports a frame header exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("palsvc: frame exceeds size limit")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting empty and oversized
// bodies.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("palsvc: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: header claims %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("palsvc: truncated frame: %w", err)
	}
	return body, nil
}

// Wire ops.
const (
	OpRun   = "run"
	OpStats = "stats"
	OpPing  = "ping"
)

// WireRequest is one client request.
type WireRequest struct {
	Op         string `json:"op"`
	Name       string `json:"name,omitempty"`
	Source     string `json:"source,omitempty"`
	Input      []byte `json:"input,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	NoAttest   bool   `json:"no_attest,omitempty"`
}

// WireResponse is the server's answer.
type WireResponse struct {
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
	// Code is a stable machine-readable cause for Err (see ErrorCode):
	// "queue_full", "bank_exhausted", "shed_load", "deadline_exceeded",
	// "closed" or "error". Empty on success.
	Code string `json:"code,omitempty"`

	Output     []byte `json:"output,omitempty"`
	ExitStatus uint32 `json:"exit_status,omitempty"`
	VerifiedAs string `json:"verified_as,omitempty"`
	// Attempts mirrors JobResult.Attempts: how many pipeline passes the
	// supervisor spent on the job (1 = no retries).
	Attempts int `json:"attempts,omitempty"`

	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	ArbWaitNS   int64 `json:"arb_wait_ns,omitempty"`
	ExecuteNS   int64 `json:"execute_ns,omitempty"`
	QuoteGenNS  int64 `json:"quote_gen_ns,omitempty"`
	VerifyNS    int64 `json:"verify_ns,omitempty"`

	Stats *Metrics `json:"stats,omitempty"`
}

// Serve accepts connections on l until the listener closes, handling each
// connection in its own goroutine. connTimeout bounds each request
// read/response write (0 means no per-request deadline). Serve returns the
// accept error that ended the loop.
func (s *Service) Serve(l net.Listener, connTimeout time.Duration) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			// A panicking handler must not leak the connection or kill
			// the whole server.
			defer func() {
				if r := recover(); r != nil {
					_ = c.Close()
				}
			}()
			defer c.Close()
			s.serveConn(c, connTimeout)
		}(conn)
	}
}

// serveConn runs the request loop for one connection until the peer closes
// or a framing/deadline error occurs.
func (s *Service) serveConn(c net.Conn, connTimeout time.Duration) {
	for {
		if connTimeout > 0 {
			_ = c.SetDeadline(time.Now().Add(connTimeout))
		}
		body, err := ReadFrame(c)
		if err != nil {
			return
		}
		var req WireRequest
		resp := &WireResponse{}
		if err := json.Unmarshal(body, &req); err != nil {
			resp.Err = "bad request: " + err.Error()
		} else {
			resp = s.dispatch(&req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := WriteFrame(c, out); err != nil {
			return
		}
	}
}

// dispatch executes one wire request against the service.
func (s *Service) dispatch(req *WireRequest) *WireResponse {
	switch req.Op {
	case OpPing:
		return &WireResponse{OK: true}
	case OpStats:
		m := s.Metrics()
		return &WireResponse{OK: true, Stats: &m}
	case OpRun:
		j := Job{Name: req.Name, Source: req.Source, Input: req.Input, NoAttest: req.NoAttest}
		if req.DeadlineMS != 0 {
			// A negative deadline resolves to a time in the past and fails
			// with deadline_exceeded, matching the local-API contract.
			// Treating it as "no deadline" (the old > 0 check) silently
			// granted DefaultDeadline — or unbounded time — to a request
			// that asked for none at all.
			j.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
		}
		res, err := s.Run(j)
		if err != nil {
			return &WireResponse{Err: err.Error(), Retryable: IsRetryable(err), Code: ErrorCode(err)}
		}
		resp := &WireResponse{
			Output:      res.Output,
			ExitStatus:  res.ExitStatus,
			VerifiedAs:  res.VerifiedAs,
			Attempts:    res.Attempts,
			QueueWaitNS: res.QueueWait.Nanoseconds(),
			ArbWaitNS:   res.ArbWait.Nanoseconds(),
			ExecuteNS:   res.Execute.Nanoseconds(),
			QuoteGenNS:  res.QuoteGen.Nanoseconds(),
			VerifyNS:    res.Verify.Nanoseconds(),
		}
		if res.Err != nil {
			resp.Err = res.Err.Error()
			resp.Retryable = IsRetryable(res.Err)
			resp.Code = ErrorCode(res.Err)
		} else {
			resp.OK = true
		}
		return resp
	default:
		return &WireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a tenant-side connection to a palsvc server.
type Client struct {
	conn net.Conn
}

// Dial connects to a palsvc server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req *WireRequest) (*WireResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, body); err != nil {
		return nil, err
	}
	out, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	var resp WireResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Run submits a job over the wire and waits for its result.
func (c *Client) Run(req *WireRequest) (*WireResponse, error) {
	r := *req
	r.Op = OpRun
	return c.roundTrip(&r)
}

// Stats fetches the server's metrics snapshot.
func (c *Client) Stats() (*Metrics, error) {
	resp, err := c.roundTrip(&WireRequest{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Stats == nil {
		return nil, fmt.Errorf("palsvc: stats failed: %s", resp.Err)
	}
	return resp.Stats, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(&WireRequest{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("palsvc: ping failed: %s", resp.Err)
	}
	return nil
}
