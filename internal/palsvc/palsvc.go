// Package palsvc turns the one-shot simulator sessions of internal/core
// into a long-running, multi-tenant PAL-execution service — the runtime
// layer the paper's §5 recommendations exist to enable: PALs executing
// concurrently with (and isolated from) everything else, with admission
// bounded by the TPM's sePCR bank (§5.6).
//
// The pipeline per job is queue → admit → execute → quote → verify:
//
//   - a bounded submission queue provides backpressure (ErrQueueFull) and
//     per-request deadlines;
//   - admission control reads the live sePCR bank through
//     sksm.Manager.FreeSePCRs and never lets more jobs hold registers than
//     the bank provides — the 𝑛+1-th concurrent PAL either waits
//     (AdmitQueue) or is rejected with a retryable error (AdmitReject),
//     exactly the SLAUNCH failure-code contract of §5.4.1;
//   - a worker pool multiplexes jobs across one or more platform replicas.
//     Each machine is a single-threaded simulator, so a per-machine mutex
//     plays the role of the hardware TPM arbitration of §5.4.5: execution
//     and quote generation serialize on it, while verification (pure
//     public-key cryptography, off-platform by definition) runs fully in
//     parallel;
//   - the result layer caches compiled PAL images by source digest and
//     relies on internal/attest's memoized verifier so repeated tenants
//     skip assembler and RSA work.
//
// Metrics (counters, queue depth, sePCR occupancy, per-stage latency
// distributions over sim time) are available programmatically via
// Service.Metrics and over the wire via the stats op of the length-prefixed
// protocol in wire.go, which cmd/palservd fronts with a TCP server and a
// built-in load generator.
package palsvc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/audit"
	"minimaltcb/internal/chaos"
	"minimaltcb/internal/core"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/obs/prof"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/sksm"
	"minimaltcb/internal/tpm"
)

// AdmissionPolicy selects what happens when every sePCR is occupied.
type AdmissionPolicy int

const (
	// AdmitQueue makes jobs wait (bounded by their deadline) for a
	// register to free up.
	AdmitQueue AdmissionPolicy = iota
	// AdmitReject fails jobs immediately with ErrBankExhausted, leaving
	// the retry decision to the tenant.
	AdmitReject
)

// Config assembles a Service.
type Config struct {
	// Profile is the platform every replica is built from. It must
	// provision sePCRs (wrap it in platform.Recommended).
	Profile platform.Profile
	// Machines is the number of platform replicas; default 1.
	Machines int
	// Workers is the worker-pool size; default 2× the total sePCR bank.
	Workers int
	// QueueDepth bounds the submission queue; default 64.
	QueueDepth int
	// Quantum is the SLAUNCH preemption quantum (virtual time); 0 runs
	// each PAL to completion in one slice.
	Quantum time.Duration
	// DefaultDeadline applies to jobs submitted without one; 0 means no
	// deadline.
	DefaultDeadline time.Duration
	// Admission selects the bank-exhaustion behaviour.
	Admission AdmissionPolicy
	// Tracer, when non-nil, records one trace per job: pipeline-stage
	// spans plus the sksm/tpm spans nested under them through each
	// machine's obs.Scope. A nil Tracer compiles the instrumentation out
	// to nil checks.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives Prometheus-style instruments
	// (job counters, sePCR occupancy gauges, stage-latency histograms)
	// mirrored from the service's internal metrics.
	Registry *obs.Registry
	// Profiler, when non-nil, enables the exact virtual-cycle profiler:
	// each machine gets its own collector wired into its SKSM manager,
	// per-tenant totals accrue here, and Service.Profile snapshots the
	// merged result. Nil keeps the interpreter's profiler-off fast path.
	Profiler *prof.Profiler
	// Flight, when non-nil, records a crash bundle for every PAL fault or
	// violation SKILL across all machines.
	Flight *prof.FlightRecorder
	// Retry, when MaxAttempts > 1, makes workers retry jobs that fail
	// with a Retryable error, with capped jittered backoff bounded by the
	// job's deadline. The zero value disables retries.
	Retry RetryPolicy
	// Supervisor, when QuarantineAfter > 0, quarantines replicas after
	// repeated consecutive faults so admission routes around them; when
	// every replica is quarantined the service sheds load (ErrShedding).
	// The zero value disables quarantine.
	Supervisor SupervisorPolicy
	// Chaos, when non-nil, threads the fault injector through every
	// replica: TPM command faults/stalls, spurious PAL faults and slice
	// storms, wedges and clock skew. Nil (production) costs nil checks.
	Chaos *chaos.Injector
	// SLO, when non-nil, receives one per-tenant observation per finished
	// job (latency from submission to delivery, failure classification,
	// exemplar trace ID). Nil costs a nil check on the delivery path.
	SLO *obs.SLOTracker
	// DisableBlockCompile turns the CPUs' threaded-code tier off on every
	// replica, forcing pure interpretation — the differential-debugging
	// escape hatch palservd exposes as -block-compile=false. The zero
	// value keeps the tier on (the CPU default).
	DisableBlockCompile bool
	// Batch, when MaxSize > 1, enables the per-machine pipelined quote
	// batcher (batcher.go): completed jobs are attested in batches of up
	// to MaxSize with one AIK signature over a Merkle root, verified over
	// a per-machine quote session. The zero value keeps the one-shot
	// quote path, byte-identical to the pre-batching pipeline.
	Batch BatchPolicy
	// Audit, when non-nil, records every trust-relevant lifecycle event —
	// launch measurements, sePCR transitions, seal/unseal decisions, PAL
	// faults and kills, admission rejections — into the tamper-evident
	// Merkle log (internal/audit). New installs a per-machine recorder on
	// each replica's SKSM manager and TPM, and machine 0's TPM becomes the
	// log's AIK head signer. Nil (the default) costs one nil check per
	// event site.
	Audit *audit.Log
}

// RetryPolicy caps the worker supervisor's retries of retryable failures.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per job; <= 1 means no retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff, plus up to 50% deterministic jitter.
	// Zero values default to 250µs and 5ms. The backoff is bounded by
	// the job's deadline: when the remaining budget cannot cover the
	// delay, the job fails with its last error instead of sleeping.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy is what palservd enables alongside chaos injection.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 250 * time.Microsecond, MaxBackoff: 5 * time.Millisecond}
}

// SupervisorPolicy trips a replica into quarantine after
// QuarantineAfter consecutive machine-attributable faults; the replica
// rejoins admission after QuarantineFor of wall-clock time.
type SupervisorPolicy struct {
	QuarantineAfter int
	QuarantineFor   time.Duration
}

// DefaultSupervisorPolicy pairs with DefaultRetryPolicy under chaos.
func DefaultSupervisorPolicy() SupervisorPolicy {
	return SupervisorPolicy{QuarantineAfter: 5, QuarantineFor: 25 * time.Millisecond}
}

// machine is one platform replica plus the lock that stands in for the
// hardware arbitration serializing access to the (single-threaded)
// simulated platform.
type machine struct {
	id  int
	sys *core.System
	mu  sync.Mutex
	// scope carries the ambient trace context into the sksm/tpm layers;
	// it is swapped under mu, the same lock that serializes all simulator
	// access. Nil when the service has no tracer.
	scope *obs.Scope
	// pending counts admitted jobs that have not yet SLAUNCHed — their
	// registers are still Free in the TPM, so the live-bank reading must
	// subtract them. Guarded by mu.
	pending int
	// prof is this machine's cycle collector (nil when profiling is off).
	// Like the simulator it observes, it is touched only under mu —
	// including snapshots (Service.Profile).
	prof *prof.CPUProfiler
	// chaos is this replica's wedge/skew hook (nil when chaos is off).
	chaos *chaos.MachineHook
	// basePages is the kernel allocator's free-page count right after
	// assembly — the level LeakCheck expects once all jobs drain.
	basePages int

	// Quote-batching state (nil/zero when Config.Batch is disabled).
	// batchCh feeds the machine's batcher goroutine; session and sessID
	// are the lazily-opened quote session, touched only by that goroutine
	// (workers receive the session over the outcome channel, so the
	// channel send orders every access).
	batchCh chan *quoteItem
	session *attest.Session
	sessID  uint64

	// Supervision state, guarded by supMu rather than mu so admission
	// probes never contend with the simulator lock.
	supMu            sync.Mutex
	consecFaults     int
	quarantinedUntil time.Time
}

// quarantined reports whether the replica is sitting out admission.
func (m *machine) quarantined(now time.Time) bool {
	m.supMu.Lock()
	defer m.supMu.Unlock()
	return now.Before(m.quarantinedUntil)
}

// tryReserve implements one admission probe: if the machine is idle enough
// to answer and its live bank has an unreserved Free register, reserve it.
// A machine whose lock is held (a PAL is executing or quoting) reports no
// capacity for this probe — callers loop or reject per policy.
func (m *machine) tryReserve() bool {
	if !m.mu.TryLock() {
		return false
	}
	defer m.mu.Unlock()
	if m.sys.SKSM.FreeSePCRs()-m.pending <= 0 {
		return false
	}
	m.pending++
	return true
}

// task is a queued job.
type task struct {
	job      Job
	ticket   *Ticket
	enqueued time.Time
	deadline time.Time // zero = none
	// root is the job's trace root span (nil when tracing is off); every
	// pipeline-stage span nests under it.
	root *obs.Span
}

// Service is a concurrent multi-tenant PAL-execution service.
type Service struct {
	cfg      Config
	machines []*machine
	bank     int // total sePCRs across machines
	queue    chan *task
	freed    chan struct{} // admission wakeup, capacity 1
	cache    *palCache
	metrics  *metrics
	tracer   *obs.Tracer // nil when tracing is off
	// auditRec records service-level events (admission rejections) with no
	// machine identity; nil when auditing is off.
	auditRec *audit.Recorder
	nonceSeq atomic.Uint64

	// jitter feeds retry-backoff jitter; deterministic (seeded from the
	// chaos seed when present) so same-seed runs back off identically.
	jitterMu sync.Mutex
	jitter   *sim.RNG

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
	// batchWg tracks the per-machine batcher goroutines; they outlive the
	// workers (which block on batch outcomes) and drain after them.
	batchWg sync.WaitGroup
}

// New assembles the platform replicas and starts the worker pool.
func New(cfg Config) (*Service, error) {
	if cfg.Profile.NumSePCRs <= 0 {
		return nil, errors.New("palsvc: profile provisions no sePCRs; wrap it in platform.Recommended")
	}
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * cfg.Machines * cfg.Profile.NumSePCRs
	}
	jitterSeed := uint64(0x6a17)
	if cfg.Chaos != nil {
		jitterSeed ^= cfg.Chaos.Seed()
	}
	s := &Service{
		cfg:     cfg,
		queue:   make(chan *task, cfg.QueueDepth),
		freed:   make(chan struct{}, 1),
		cache:   newPALCache(),
		metrics: &metrics{},
		tracer:  cfg.Tracer,
		jitter:  sim.NewRNG(jitterSeed),
	}
	for i := 0; i < cfg.Machines; i++ {
		sys, err := core.NewSystem(cfg.Profile)
		if err != nil {
			return nil, fmt.Errorf("palsvc: building machine %d: %w", i, err)
		}
		if sys.SKSM == nil || sys.Verifier == nil {
			return nil, errors.New("palsvc: profile lacks recommended hardware or a TPM")
		}
		m := &machine{id: i, sys: sys}
		if cfg.Tracer != nil {
			// One scope per machine: its clock stamps the virtual
			// timestamps, and the sksm/tpm layers pick up the ambient
			// context the execute/quote phases swap in under m.mu.
			m.scope = obs.NewScope(cfg.Tracer, sys.Machine.Clock)
			sys.SKSM.Trace = m.scope
			sys.Machine.TPM().SetTrace(m.scope)
		}
		if cfg.Profiler != nil {
			m.prof = cfg.Profiler.NewCPU()
			sys.SKSM.Prof = m.prof
		}
		sys.SKSM.Flight = cfg.Flight
		if cfg.Audit != nil {
			// The manager stamps Job identity onto every event the chip
			// reports; both hooks fire under m.mu, the lock that already
			// serializes the machine's TPM commands.
			sys.SKSM.Audit = cfg.Audit.Recorder(sys.Machine.Clock, i)
			sys.Machine.TPM().SetAuditHook(sys.SKSM)
		}
		if cfg.Chaos != nil {
			// One hook set per replica: each gets its own deterministic
			// decision streams, so the fault schedule on machine i does
			// not depend on how many jobs machine j ran.
			sys.Machine.InstallFaults(cfg.Chaos.TPMHook(i))
			sys.SKSM.Chaos = cfg.Chaos.SKSMHook(i)
			m.chaos = cfg.Chaos.MachineHook(i)
		}
		if cfg.DisableBlockCompile {
			for _, core := range sys.Machine.CPUs {
				core.SetBlockCompile(false)
			}
		}
		m.basePages = sys.SKSM.Kernel.Alloc.FreePages()
		s.machines = append(s.machines, m)
		s.bank += sys.Machine.TPM().NumSePCRs()
	}
	if cfg.Audit != nil {
		// Machine 0's AIK anchors the log's tree heads; the service-level
		// recorder (admission rejections) carries no machine or virtual
		// clock — those events happen before any machine is chosen.
		cfg.Audit.SetSigner(s.machines[0].sys.Machine.TPM())
		s.auditRec = cfg.Audit.Recorder(nil, -1)
	}
	if cfg.Batch.enabled() {
		if s.cfg.Batch.MaxWait <= 0 {
			s.cfg.Batch.MaxWait = 200 * time.Microsecond
		}
		for _, m := range s.machines {
			m.batchCh = make(chan *quoteItem, cfg.Batch.MaxSize)
			s.batchWg.Add(1)
			go s.batcher(m)
		}
	}
	s.bindRegistry(cfg.Registry)
	cfg.SLO.Bind(cfg.Registry, "palsvc")
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Bank returns the total sePCR capacity across all replicas.
func (s *Service) Bank() int { return s.bank }

// Submit enqueues a job. It returns immediately with a Ticket, ErrQueueFull
// when the bounded queue is at capacity (retryable backpressure), or
// ErrClosed after Close.
func (s *Service) Submit(j Job) (*Ticket, error) {
	if j.Source == "" {
		return nil, errors.New("palsvc: job has no source")
	}
	if j.Name == "" {
		j.Name = "pal"
	}
	now := time.Now()
	t := &task{job: j, ticket: newTicket(), enqueued: now,
		deadline: resolveDeadline(j, now, s.cfg.DefaultDeadline)}
	if s.tracer.Enabled() {
		// One trace per job; the root span covers the job's whole stay in
		// the service and every stage span nests under it. A propagated
		// context (router or tenant hop) is adopted so the job joins the
		// caller's trace; otherwise the service mints a fresh root.
		ctx := j.Trace
		if ctx.Trace.IsZero() {
			ctx = s.tracer.NewTrace()
		}
		t.root = s.tracer.StartSpan(ctx, "job", "pipeline").
			Attr("name", j.Name)
		if j.Tenant != "" && j.Tenant != j.Name {
			t.root.Attr("tenant", j.Tenant)
		}
	}

	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.queue <- t:
		s.metrics.incSubmitted()
		return t.ticket, nil
	default:
		err := fmt.Errorf("%w: depth %d", ErrQueueFull, cap(s.queue))
		s.metrics.incRejected(err)
		s.auditReject(t, err)
		t.root.Attr("error", err.Error()).End()
		return nil, err
	}
}

// Run submits a job and waits for its result — the synchronous convenience
// path cmd/palservd and tests use.
func (s *Service) Run(j Job) (*JobResult, error) {
	tk, err := s.Submit(j)
	if err != nil {
		return nil, err
	}
	return tk.Wait(), nil
}

// Close stops accepting submissions, drains every queued job, and waits
// for the workers to finish. Safe to call more than once.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	// Workers first: each blocks at most Batch.MaxWait on its final batch
	// outcome, which the (still running) batchers deliver. Only then do
	// the batch channels close — no worker can send on a closed channel.
	s.wg.Wait()
	for _, m := range s.machines {
		if m.batchCh != nil {
			close(m.batchCh)
		}
	}
	s.batchWg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.handle(t)
	}
}

// fail finalizes a job with an error.
func (s *Service) fail(t *task, res *JobResult, err error) {
	res.Err = err
	s.finish(t, res)
}

// finish closes the job's root trace span and delivers the result.
func (s *Service) finish(t *task, res *JobResult) {
	if t.root != nil {
		res.Trace = t.root.Context().Trace
		if res.Err != nil {
			t.root.Attr("error", res.Err.Error())
		}
		if res.Machine >= 0 {
			t.root.Attr("machine", fmt.Sprint(res.Machine))
		}
		t.root.End()
	}
	t.ticket.deliver(res)
}

func (s *Service) handle(t *task) {
	res := &JobResult{Name: t.job.Name, Machine: -1, QueueWait: time.Since(t.enqueued)}
	s.metrics.observeQueue(res.QueueWait)
	rctx := t.root.Context()
	// The queue stay is recorded after the fact: its start was bookmarked
	// at Submit and its duration is attributed wall-clock only.
	s.tracer.RecordSpan(rctx, "queue", "pipeline", t.enqueued, res.QueueWait)

	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		s.deliver(t, res, fmt.Errorf("%w: expired in queue after %v", ErrDeadlineExceeded, res.QueueWait))
		return
	}

	p, err := s.cache.get(t.job.Name, t.job.Source)
	if err != nil {
		s.deliver(t, res, err)
		return
	}

	// Supervised retry loop: retryable failures (injected TPM faults,
	// spurious PAL faults, bank exhaustion, shedding) are retried up to
	// Retry.MaxAttempts with capped jittered backoff, always bounded by
	// the job's deadline. Each attempt re-runs admission, so a retry is
	// free to land on a different (healthy) replica.
	max := s.cfg.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		err = s.attempt(t, p, res)
		if err == nil || attempt >= max || !Retryable(err) {
			break
		}
		if !s.backoff(attempt, t.deadline) {
			break // the remaining deadline budget cannot cover the delay
		}
		s.metrics.incRetried()
	}
	s.deliver(t, res, err)
}

// deliver classifies the job's terminal outcome into exactly one metrics
// counter and finalizes the ticket. Centralizing the classification here —
// rather than at each failure site inside an attempt — is what keeps the
// counters an exact partition of Submitted under retries: an attempt that
// fails and is retried moves no terminal counter.
func (s *Service) deliver(t *task, res *JobResult, err error) {
	switch {
	case err == nil:
		s.metrics.incCompleted()
	case errors.Is(err, ErrDeadlineExceeded):
		s.metrics.incDeadline()
	case errors.Is(err, ErrBankExhausted), errors.Is(err, ErrShedding):
		s.metrics.incRejected(err)
		s.auditReject(t, err)
	default:
		s.metrics.incFailed()
	}
	s.jobDone(t, err)
	if err != nil {
		s.fail(t, res, err)
		return
	}
	s.finish(t, res)
}

// auditReject records an admission rejection in the audit log — the
// "every trust decision is on the record" half of admission control: a
// verifier can later prove the service refused work rather than silently
// dropping it. Nil recorder (auditing off) costs one nil check.
func (s *Service) auditReject(t *task, err error) {
	if s.auditRec == nil {
		return
	}
	tenant := t.job.Tenant
	if tenant == "" {
		tenant = t.job.Name
	}
	trace := t.root.Context().Trace
	if trace.IsZero() {
		trace = t.job.Trace.Trace
	}
	s.auditRec.Record(audit.Event{
		Type:   audit.EventAdmitReject,
		Handle: -1,
		Tenant: tenant,
		Trace:  trace,
		Detail: ErrorCode(err),
	})
}

// jobDone feeds the per-tenant SLO tracker with the job's terminal
// outcome: end-to-end latency from submission, failure classification, and
// the trace ID as the drill-down exemplar. Nil SLO costs one nil check.
func (s *Service) jobDone(t *task, err error) {
	if s.cfg.SLO == nil {
		return
	}
	tenant := t.job.Tenant
	if tenant == "" {
		tenant = t.job.Name
	}
	s.cfg.SLO.Observe(tenant, time.Since(t.enqueued), err != nil, t.root.Context().Trace)
}

// attempt drives one pass of admit → execute → quote → verify. It returns
// the attempt's error without touching terminal counters (deliver owns
// those); per-stage latency histograms are still observed per attempt.
func (s *Service) attempt(t *task, p *core.PAL, res *JobResult) error {
	rctx := t.root.Context()
	admitSp := s.tracer.StartSpan(rctx, "admit", "pipeline")
	m, err := s.admit(t)
	if err != nil {
		admitSp.Attr("error", err.Error()).End()
		return err
	}
	admitSp.Attr("machine", fmt.Sprint(m.id)).End()
	s.metrics.admitOne()
	return s.execute(m, t, p, res)
}

// admit finds a machine with live sePCR capacity, per the configured
// policy. On success the returned machine carries one reservation
// (machine.pending) the execute phase converts into a real SLAUNCH
// allocation.
func (s *Service) admit(t *task) (*machine, error) {
	for {
		healthy := 0
		now := time.Now()
		for _, m := range s.machines {
			if m.quarantined(now) {
				continue
			}
			healthy++
			if m.tryReserve() {
				return m, nil
			}
		}
		if healthy == 0 {
			// Graceful degradation: with the whole fleet quarantined,
			// queueing would only build a backlog against sick replicas.
			// Shed instead — the error is retryable, and quarantines
			// expire, so resubmission is the right tenant response.
			return nil, fmt.Errorf("%w (%d replicas)", ErrShedding, len(s.machines))
		}
		if s.cfg.Admission == AdmitReject {
			return nil, fmt.Errorf("%w: all %d sePCRs occupied", ErrBankExhausted, s.bank)
		}
		var deadlineC <-chan time.Time
		if !t.deadline.IsZero() {
			d := time.Until(t.deadline)
			if d <= 0 {
				return nil, fmt.Errorf("%w: while waiting for a sePCR", ErrDeadlineExceeded)
			}
			deadlineC = time.After(d)
		}
		select {
		case <-s.freed:
		case <-time.After(200 * time.Microsecond):
			// Poll fallback: a freed signal can be consumed by another
			// waiter, so never rely on it exclusively.
		case <-deadlineC:
			return nil, fmt.Errorf("%w: while waiting for a sePCR", ErrDeadlineExceeded)
		}
	}
}

// releaseSlot returns a job's admission slot to the bank and wakes one
// waiter.
func (s *Service) releaseSlot() {
	s.metrics.releaseOne()
	select {
	case s.freed <- struct{}{}:
	default:
	}
}

// nextNonce returns a service-unique attestation nonce.
func (s *Service) nextNonce() []byte {
	return []byte(fmt.Sprintf("palsvc-nonce-%d", s.nonceSeq.Add(1)))
}

// defaultDeadlineQuantum is the virtual preemption quantum execute imposes
// on deadline-bearing jobs when Config.Quantum is zero. SKILL only accepts
// suspended PALs and suspension only happens at slice boundaries, so a
// run-to-completion job with a deadline would otherwise be unkillable
// mid-execute: a spinning PAL could blow through its deadline unchecked.
const defaultDeadlineQuantum = 100 * time.Microsecond

// execute drives the admitted job through execute → quote → verify. The
// machine lock is held only for the phases that touch the simulated
// platform; verification runs lock-free so it overlaps other jobs'
// execution. Terminal metrics counters are deliver's job, not execute's.
func (s *Service) execute(m *machine, t *task, p *core.PAL, res *JobResult) error {
	res.Machine = m.id
	sys := m.sys
	rctx := t.root.Context()

	// EXECUTE — under the machine lock (the TPM-arbitration stand-in).
	arbStart := time.Now()
	m.mu.Lock()
	res.ArbWait = time.Since(arbStart)
	s.metrics.observeArb(res.ArbWait)
	s.tracer.RecordSpan(rctx, "arb_wait", "pipeline", arbStart, res.ArbWait)
	if m.chaos != nil {
		// A wedged replica sits on its lock making no progress: admission
		// probes (TryLock) fail over to other replicas and arb waits grow —
		// the same symptoms a stuck machine shows in production. Skew
		// pushes the replica's virtual clock ahead before the stopwatch
		// starts, so drift shows up in absolute timelines, not latencies.
		if d := m.chaos.Wedge(); d > 0 {
			time.Sleep(d)
		}
		if d := m.chaos.Skew(); d > 0 {
			sys.Machine.Clock.Skew(d)
		}
	}
	// The execute span is swapped in as the machine's ambient context so
	// the sksm slice/instruction spans (and the TPM commands under them)
	// nest inside it. Swaps happen under m.mu, which serializes all
	// simulator access.
	execSp := s.tracer.StartSpan(rctx, "execute", "pipeline")
	if execSp != nil {
		execSp.Virt(sys.Machine.Clock.Now())
	}
	prevCtx := m.scope.Swap(execSp.Context())
	m.pending-- // the reservation becomes a real SLAUNCH allocation now
	quantum := s.cfg.Quantum
	if quantum <= 0 && !t.deadline.IsZero() {
		quantum = defaultDeadlineQuantum
	}
	secb, err := sys.SKSM.NewSECB(p.Image, 1, quantum)
	if err != nil {
		m.scope.Swap(prevCtx)
		execSp.Attr("error", err.Error()).EndVirt(sys.Machine.Clock.Now())
		m.mu.Unlock()
		s.releaseSlot()
		s.noteMachineFault(m)
		return fmt.Errorf("palsvc: allocating SECB: %w", err)
	}
	secb.Input = t.job.Input
	if s.cfg.Flight != nil || s.cfg.Audit != nil {
		// Stamp the job identity for crash bundles and audit events;
		// cleared below before the lock drops so a later unrelated SKILL
		// is not misattributed. Tenant falls back to the job name, same as
		// the SLO tracker's attribution.
		ten := t.job.Tenant
		if ten == "" {
			ten = t.job.Name
		}
		sys.SKSM.Job = prof.JobInfo{Tenant: ten, Trace: rctx.Trace, Machine: m.id}
	}
	sw := sim.StartStopwatch(sys.Machine.Clock)
	runErr := s.runBounded(m, t, secb)
	res.Execute = sw.Elapsed()
	s.metrics.observeExec(res.Execute)
	if s.cfg.Profiler != nil {
		h, _ := tpm.MeasureMemoized(p.Image.Bytes)
		s.cfg.Profiler.JobDone(t.job.Name, h, res.Execute, runErr != nil)
	}
	if runErr != nil {
		// Reclaim whatever the failed run left behind. A faulted or
		// deadline-expired PAL sits suspended holding its register: SKILL
		// reclaims the register (kill marker extended, §5.5) and Release
		// the pages. A PAL whose SLAUNCH never succeeded is still in
		// Start: it holds no register, only pages.
		switch secb.State {
		case sksm.StateSuspend:
			if kerr := sys.SKSM.SKILL(secb); kerr == nil {
				_ = sys.SKSM.Release(secb)
			}
		case sksm.StateStart:
			_ = sys.SKSM.Release(secb)
		}
		sys.SKSM.Job = prof.JobInfo{}
		m.scope.Swap(prevCtx)
		execSp.Attr("error", runErr.Error()).EndVirt(sys.Machine.Clock.Now())
		m.mu.Unlock()
		s.releaseSlot()
		if errors.Is(runErr, ErrDeadlineExceeded) {
			// The job ran out of budget; the machine did nothing wrong.
			return runErr
		}
		s.noteMachineFault(m)
		return fmt.Errorf("palsvc: PAL execution: %w", runErr)
	}
	res.Output = secb.Output
	res.ExitStatus = secb.ExitStatus
	res.Slices = secb.Slices
	res.Resumes = secb.Resumes
	sys.SKSM.Job = prof.JobInfo{}
	m.scope.Swap(prevCtx)
	if execSp != nil {
		execSp.Attr("slices", fmt.Sprint(secb.Slices)).EndVirt(sys.Machine.Clock.Now())
	}
	m.mu.Unlock()
	// The register is now parked in the Quote state: this job still
	// occupies its sePCR until untrusted code quotes or frees it
	// (§5.4.3) — that occupancy is exactly what admission counts.

	if t.job.NoAttest {
		err := s.freeUnquoted(m, t, secb)
		s.releaseSlot()
		if err != nil {
			s.noteMachineFault(m)
			return fmt.Errorf("palsvc: freeing sePCR: %w", err)
		}
		s.noteMachineOK(m)
		return nil
	}

	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		// Expired between execute and quote. The register must not stay
		// parked in Quote forever: free it unquoted, exactly like the
		// NoAttest path, so the bank recovers even though the job lost.
		ferr := s.freeUnquoted(m, t, secb)
		s.releaseSlot()
		if ferr != nil {
			s.noteMachineFault(m)
			return fmt.Errorf("palsvc: freeing sePCR after deadline: %w", ferr)
		}
		return fmt.Errorf("%w: before quote", ErrDeadlineExceeded)
	}

	if m.batchCh != nil {
		// Batched attestation: hand the parked register to the machine's
		// batcher and verify the returned inclusion proof (batcher.go).
		return s.quoteBatched(m, t, p, res, secb)
	}

	// QUOTE — back under the machine lock for the TPM command.
	nonce := s.nextNonce()
	m.mu.Lock()
	quoteSp := s.tracer.StartSpan(rctx, "quote", "pipeline")
	if quoteSp != nil {
		quoteSp.Virt(sys.Machine.Clock.Now())
	}
	prevCtx = m.scope.Swap(quoteSp.Context())
	swq := sim.StartStopwatch(sys.Machine.Clock)
	q, qerr := sys.SKSM.QuoteAfterExit(secb, nonce)
	res.QuoteGen = swq.Elapsed()
	if qerr != nil {
		// A failed quote leaves the register parked in Quote (injected
		// TPM faults fire before the signature): free it unquoted so the
		// bank recovers before the supervisor retries the job.
		_ = sys.Machine.TPM().FreeSePCR(secb.SePCRHandle)
	}
	relErr := sys.SKSM.Release(secb)
	m.scope.Swap(prevCtx)
	if qerr != nil {
		quoteSp.Attr("error", qerr.Error())
	}
	if quoteSp != nil {
		quoteSp.EndVirt(sys.Machine.Clock.Now())
	}
	m.mu.Unlock()
	s.releaseSlot() // the register is Free again
	s.metrics.observeQuote(res.QuoteGen)
	if qerr != nil {
		s.noteMachineFault(m)
		return fmt.Errorf("palsvc: quoting: %w", qerr)
	}
	if relErr != nil {
		s.noteMachineFault(m)
		return fmt.Errorf("palsvc: releasing SECB: %w", relErr)
	}
	s.metrics.noteSign()
	s.noteMachineOK(m)

	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		// Expired between quote and verify: the register is already Free,
		// so only the job's outcome is lost, not capacity.
		return fmt.Errorf("%w: before verify", ErrDeadlineExceeded)
	}

	// VERIFY — pure public-key cryptography, no platform access: runs
	// concurrently with other jobs' execution. The memoized verifier
	// makes the repeated-tenant case cheap.
	vStart := time.Now()
	verifySp := s.tracer.StartSpan(rctx, "verify", "pipeline")
	sys.Verifier.Approve(t.job.Name, p.Measurement())
	log := attest.Log{{PCR: -1, Description: t.job.Name, Measurement: p.Measurement()}}
	name, verr := sys.Verifier.VerifySePCRQuote(sys.Cert, q, log, nonce)
	res.Verify = time.Since(vStart)
	s.metrics.observeVerify(res.Verify)
	if verr != nil {
		verifySp.Attr("error", verr.Error()).End()
		return fmt.Errorf("palsvc: quote verification: %w", verr)
	}
	verifySp.Attr("verified_as", name).End()
	res.VerifiedAs = name
	return nil
}

// runBounded drives the PAL to completion like sksm.RunToCompletion, but
// for deadline-bearing jobs it rechecks the wall clock at every slice
// boundary, so ErrDeadlineExceeded fires mid-execute instead of only at
// the pipeline seams. The caller holds m.mu.
func (s *Service) runBounded(m *machine, t *task, secb *sksm.SECB) error {
	c := m.sys.PALCore()
	if t.deadline.IsZero() {
		return m.sys.SKSM.RunToCompletion(c, secb)
	}
	for secb.State != sksm.StateDone {
		if time.Now().After(t.deadline) {
			return fmt.Errorf("%w: mid-execute after %d slices", ErrDeadlineExceeded, secb.Slices)
		}
		if _, err := m.sys.SKSM.RunSlice(c, secb); err != nil {
			return err
		}
	}
	return nil
}

// freeUnquoted returns a finished-but-unattested PAL's resources: the
// sePCR via TPM_SEPCR_Free (§5.4.3) and the SECB pages via Release. Used
// by NoAttest jobs and by deadline expiries between execute and quote.
func (s *Service) freeUnquoted(m *machine, t *task, secb *sksm.SECB) error {
	m.mu.Lock()
	prev := m.scope.Swap(t.root.Context())
	err := m.sys.Machine.TPM().FreeSePCR(secb.SePCRHandle)
	if rerr := m.sys.SKSM.Release(secb); err == nil {
		err = rerr
	}
	m.scope.Swap(prev)
	m.mu.Unlock()
	return err
}

// noteMachineFault records one machine-attributable fault against m and
// trips it into quarantine after SupervisorPolicy.QuarantineAfter
// consecutive ones. Injected chaos faults are deliberately
// indistinguishable from organic ones here: the supervisor reacts to
// symptoms, not causes.
func (s *Service) noteMachineFault(m *machine) {
	p := s.cfg.Supervisor
	if p.QuarantineAfter <= 0 {
		return
	}
	m.supMu.Lock()
	defer m.supMu.Unlock()
	m.consecFaults++
	if m.consecFaults >= p.QuarantineAfter {
		m.consecFaults = 0
		m.quarantinedUntil = time.Now().Add(p.QuarantineFor)
		s.metrics.incQuarantine()
	}
}

// noteMachineOK resets m's consecutive-fault streak after a clean pass
// through the machine-touching phases.
func (s *Service) noteMachineOK(m *machine) {
	if s.cfg.Supervisor.QuarantineAfter <= 0 {
		return
	}
	m.supMu.Lock()
	m.consecFaults = 0
	m.supMu.Unlock()
}

// backoff sleeps the capped, jittered delay that precedes attempt+1. It
// returns false — without sleeping — when the job's deadline cannot cover
// the delay: failing fast with the last real error beats burning the rest
// of the budget asleep and failing with ErrDeadlineExceeded anyway.
func (s *Service) backoff(attempt int, deadline time.Time) bool {
	p := s.cfg.Retry
	base, ceil := p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = 250 * time.Microsecond
	}
	if ceil <= 0 {
		ceil = 5 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d <= 0 || d > ceil {
		d = ceil
	}
	// Up to 50% jitter decorrelates retry storms; it comes from the
	// service's seeded RNG so same-seed chaos runs back off identically.
	s.jitterMu.Lock()
	d += time.Duration(s.jitter.Intn(int(d/2) + 1))
	s.jitterMu.Unlock()
	if !deadline.IsZero() && time.Until(deadline) <= d {
		return false
	}
	time.Sleep(d)
	return true
}

// Health is the non-blocking admission-relevant snapshot behind the wire
// protocol's health op. It deliberately uses TryLock the same way admission
// probes do: a machine whose lock is held (a PAL executing or quoting, or a
// wedged replica sitting on it) contributes zero free registers rather than
// stalling the probe — which is exactly the capacity signal a router needs
// from a sick node.
func (s *Service) Health() HealthInfo {
	h := HealthInfo{
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Bank:       s.bank,
		Replicas:   len(s.machines),
	}
	now := time.Now()
	for _, m := range s.machines {
		if m.quarantined(now) {
			h.QuarantinedReplicas++
			continue
		}
		if m.mu.TryLock() {
			if free := m.sys.SKSM.FreeSePCRs() - m.pending; free > 0 {
				h.FreeSePCRs += free
			}
			m.mu.Unlock()
		}
	}
	h.Shedding = len(s.machines) > 0 && h.QuarantinedReplicas == len(s.machines)
	return h
}

// LeakCheck verifies, once all submitted jobs have drained, that every
// resource the service hands out came back: all sePCRs Free in every
// replica's bank and every kernel page returned to the allocator. The soak
// test runs it after thousands of fault-injected jobs; a non-nil error
// means some failure path leaked.
func (s *Service) LeakCheck() error {
	for _, m := range s.machines {
		m.mu.Lock()
		free := m.sys.SKSM.FreeSePCRs()
		total := m.sys.Machine.TPM().NumSePCRs()
		pages := m.sys.SKSM.Kernel.Alloc.FreePages()
		pending := m.pending
		m.mu.Unlock()
		if free != total {
			return fmt.Errorf("palsvc: machine %d leaked sePCRs: %d free of %d", m.id, free, total)
		}
		if pages != m.basePages {
			return fmt.Errorf("palsvc: machine %d leaked pages: %d free, expected %d", m.id, pages, m.basePages)
		}
		if pending != 0 {
			return fmt.Errorf("palsvc: machine %d has %d stuck reservations", m.id, pending)
		}
	}
	return nil
}
