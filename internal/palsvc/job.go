package palsvc

import (
	"errors"
	"time"

	"minimaltcb/internal/obs"
)

// Job is one PAL-execution request from a tenant.
type Job struct {
	// Name identifies the tenant's PAL to the verifier. Tenants
	// submitting byte-identical source share one cached image and
	// therefore one attested identity — code, not names, is what the
	// attestation chain binds.
	Name string
	// Source is PAL assembler source (see internal/isa); it is compiled
	// through the service's image cache.
	Source string
	// Input is delivered on the PAL's input channel (svc 7).
	Input []byte
	// Deadline bounds the job's whole stay in the service, in wall-clock
	// time (queueing and admission happen in real time; only execution
	// is simulated). Zero means Config.DefaultDeadline, which may itself
	// be zero (no deadline).
	Deadline time.Time
	// NoAttest skips quote generation and verification; the sePCR is
	// freed unquoted via TPM_SEPCR_Free (§5.4.3).
	NoAttest bool
	// Trace is the propagated trace context the job's pipeline spans
	// adopt: a router or tenant that already opened a trace passes it so
	// every hop lands in one tree. Zero means the service mints a fresh
	// root trace (when tracing is on).
	Trace obs.Context
	// Tenant is the accounting identity for SLO tracking. Empty defaults
	// to Name.
	Tenant string
}

// JobResult reports one completed (or failed) job.
type JobResult struct {
	// Name echoes the job's name.
	Name string
	// Machine is the index of the platform replica that ran the PAL.
	Machine int
	// Output is what the PAL wrote to its output channel.
	Output []byte
	// ExitStatus is the PAL's exit code.
	ExitStatus uint32
	// VerifiedAs is the approved PAL name the quote verification
	// returned; empty when NoAttest was set.
	VerifiedAs string
	// Slices and Resumes count scheduling slices and hardware resumes.
	Slices, Resumes int
	// Attempts counts pipeline attempts: 1 means the job succeeded (or
	// failed terminally) first try; higher values mean the supervisor
	// retried retryable failures (Config.Retry).
	Attempts int
	// BatchSize is the number of jobs the quote covering this one
	// attested (Config.Batch); 0 when the job quoted one-shot or skipped
	// attestation.
	BatchSize int
	// Trace is the trace the job's spans were recorded under — propagated
	// from Job.Trace or freshly minted. Zero when tracing is off.
	Trace obs.TraceID

	// Per-stage latencies. QueueWait, ArbWait and Verify are wall-clock
	// (they happen in real time); Execute and QuoteGen are virtual time
	// charged to the machine's sim clock.
	QueueWait time.Duration
	ArbWait   time.Duration
	Execute   time.Duration
	QuoteGen  time.Duration
	Verify    time.Duration

	// Err is nil on success. Use IsRetryable to decide whether
	// resubmission can help.
	Err error
}

// Ticket is the caller's handle on a submitted job.
type Ticket struct {
	done chan *JobResult
}

func newTicket() *Ticket { return &Ticket{done: make(chan *JobResult, 1)} }

// deliver hands the result to the waiting caller. Each ticket is delivered
// exactly once.
func (t *Ticket) deliver(r *JobResult) { t.done <- r }

// Done returns a channel that receives the job's result exactly once.
func (t *Ticket) Done() <-chan *JobResult { return t.done }

// Wait blocks until the job finishes and returns its result.
func (t *Ticket) Wait() *JobResult { return <-t.done }

// retryableError marks conditions that are expected to clear on their own —
// full queue, exhausted sePCR bank — so tenants know resubmission is the
// right response.
type retryableError struct{ msg string }

func (e *retryableError) Error() string   { return e.msg }
func (e *retryableError) Retryable() bool { return true }

// Service errors.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("palsvc: service closed")
	// ErrQueueFull reports backpressure: the bounded submission queue is
	// at capacity. Retryable.
	ErrQueueFull error = &retryableError{"palsvc: submission queue full"}
	// ErrBankExhausted reports that admission control found every sePCR
	// occupied (§5.6) under the AdmitReject policy. Retryable.
	ErrBankExhausted error = &retryableError{"palsvc: sePCR bank exhausted"}
	// ErrDeadlineExceeded reports that the job's deadline expired before
	// it finished — in the queue, waiting for a register, or (since the
	// chaos PR) at any per-stage wait across execute/quote/verify.
	ErrDeadlineExceeded = errors.New("palsvc: job deadline exceeded")
	// ErrShedding reports graceful degradation: every platform replica is
	// quarantined after repeated faults, so the service sheds load rather
	// than queueing jobs against a sick fleet. Retryable.
	ErrShedding error = &retryableError{"palsvc: shedding load: all replicas quarantined"}
)

// Retryable reports whether err (anywhere in its chain) marks a transient
// condition that a later resubmission can clear. It is the one place the
// Retryable() contract is decided — call sites must never string-match
// error text. The bit crosses the wire as WireResponse.Retryable.
func Retryable(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// IsRetryable is the original name for Retryable, kept for callers.
func IsRetryable(err error) bool { return Retryable(err) }

// resolveDeadline is the one place the Job.Deadline zero-value and
// Config.DefaultDeadline interact: an explicit deadline always wins; a
// zero deadline means DefaultDeadline measured from now, which may itself
// be zero (no deadline). Both intake paths — local Submit and the wire
// protocol's dispatch — resolve through it, so no code path can treat a
// caller-set zero deadline as "unbounded" while a default is configured.
func resolveDeadline(j Job, now time.Time, def time.Duration) time.Time {
	if !j.Deadline.IsZero() {
		return j.Deadline
	}
	if def > 0 {
		return now.Add(def)
	}
	return time.Time{}
}
