package palsvc

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"minimaltcb/internal/audit"
)

// runBatchLoad submits n concurrent jobs and returns their results.
func runBatchLoad(t *testing.T, s *Service, n int) []*JobResult {
	t.Helper()
	results := make([]*JobResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run(Job{Name: "hello", Source: helloSource})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	return results
}

func TestBatchedPipelineEndToEnd(t *testing.T) {
	s := newTestService(t, Config{
		Batch: BatchPolicy{MaxSize: 4, MaxWait: 2 * time.Millisecond},
	})
	const jobs = 24
	results := runBatchLoad(t, s, jobs)
	for i, res := range results {
		if res == nil {
			continue // already reported
		}
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.VerifiedAs != "hello" {
			t.Fatalf("job %d verified as %q", i, res.VerifiedAs)
		}
		if string(res.Output) != "hello" {
			t.Fatalf("job %d output %q", i, res.Output)
		}
		if res.BatchSize < 1 || res.BatchSize > 4 {
			t.Fatalf("job %d batch size %d, want 1..4", i, res.BatchSize)
		}
	}
	m := s.Metrics()
	if m.Completed != jobs {
		t.Fatalf("completed %d, want %d", m.Completed, jobs)
	}
	if m.QuoteBatches == 0 || m.BatchedJobs != jobs {
		t.Fatalf("batches=%d batched_jobs=%d, want >0 and %d", m.QuoteBatches, m.BatchedJobs, jobs)
	}
	// The acceptance criterion: one AIK signature per batch, so far fewer
	// signatures than jobs.
	if m.QuoteSigns != m.QuoteBatches {
		t.Fatalf("quote_signs=%d, want one per batch (%d)", m.QuoteSigns, m.QuoteBatches)
	}
	if m.QuoteSigns >= jobs {
		t.Fatalf("quote_signs=%d for %d jobs: batching amortized nothing", m.QuoteSigns, jobs)
	}
	if m.MaxBatchSize < 2 {
		t.Fatalf("max batch size %d: 24 concurrent jobs never coalesced", m.MaxBatchSize)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedSessionAmortizesVerifierRSA pins the sessionful half: after
// the first flush opens the machine's quote session, later batches are
// authenticated by HMAC alone — the verifier memo sees no new misses.
func TestBatchedSessionAmortizesVerifierRSA(t *testing.T) {
	s := newTestService(t, Config{
		Machines: 1,
		Batch:    BatchPolicy{MaxSize: 4, MaxWait: time.Millisecond},
	})
	runBatchLoad(t, s, 8)
	m := s.machines[0]
	if m.sessID == 0 || m.session == nil {
		t.Fatal("no quote session opened after batched load")
	}
	_, missesBefore := m.sys.Verifier.MemoStats()
	runBatchLoad(t, s, 8)
	if _, misses := m.sys.Verifier.MemoStats(); misses != missesBefore {
		t.Fatalf("sessionful batches performed %d RSA verifications, want 0", misses-missesBefore)
	}
	if m.session.Batches() < 2 {
		t.Fatalf("session authenticated %d batches, want >= 2", m.session.Batches())
	}
}

// retryableQuoteFault fails the first n TPM_Quote commands with a
// retryable error, mimicking a transient chip glitch at exactly the
// batch-signature moment.
type retryableQuoteFault struct {
	mu   sync.Mutex
	left int
}

type transientErr struct{}

func (transientErr) Error() string   { return "injected transient quote fault" }
func (transientErr) Retryable() bool { return true }

func (f *retryableQuoteFault) TPMCommand(name string) (time.Duration, error) {
	if name != "TPM_Quote" {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left > 0 {
		f.left--
		return 0, transientErr{}
	}
	return 0, nil
}

// TestBatchedQuoteFaultRetries mirrors the one-shot chaos contract: an
// injected TPM_Quote fault fails the whole batch retryably, frees every
// register (no leaks), and the supervisor retries carry every job to
// completion.
func TestBatchedQuoteFaultRetries(t *testing.T) {
	s := newTestService(t, Config{
		Retry: RetryPolicy{MaxAttempts: 6},
		Batch: BatchPolicy{MaxSize: 3, MaxWait: time.Millisecond},
	})
	s.machines[0].sys.Machine.InstallFaults(&retryableQuoteFault{left: 2})
	results := runBatchLoad(t, s, 12)
	for i, res := range results {
		if res != nil && res.Err != nil {
			t.Fatalf("job %d failed despite retries: %v", i, res.Err)
		}
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Completed != 12 {
		t.Fatalf("completed %d, want 12", m.Completed)
	}
	if m.Retried == 0 {
		t.Fatal("injected quote faults caused no retries")
	}
}

// TestBatchingDisabledKeepsOneShotPath pins the zero-value contract: no
// batcher goroutines, BatchSize absent from results and stats, and one
// signature per job.
func TestBatchingDisabledKeepsOneShotPath(t *testing.T) {
	s := newTestService(t, Config{})
	for _, m := range s.machines {
		if m.batchCh != nil {
			t.Fatal("batch channel exists with batching disabled")
		}
	}
	results := runBatchLoad(t, s, 6)
	for i, res := range results {
		if res == nil || res.Err != nil {
			t.Fatalf("job %d: %v", i, res)
		}
		if res.BatchSize != 0 {
			t.Fatalf("job %d batch size %d on the one-shot path", i, res.BatchSize)
		}
	}
	m := s.Metrics()
	if m.QuoteBatches != 0 || m.BatchedJobs != 0 {
		t.Fatalf("batch counters moved: %+v", m)
	}
	if m.QuoteSigns != m.Completed {
		t.Fatalf("quote_signs=%d completed=%d, want one signature per job", m.QuoteSigns, m.Completed)
	}
}

// TestBatchSizeOnWire checks the wire protocol carries the batch size and
// that an unbatched response stays byte-compatible (no batch_size key).
func TestBatchSizeOnWire(t *testing.T) {
	resp := WireResponse{OK: true, VerifiedAs: "hello"}
	out, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "batch_size") {
		t.Fatalf("unbatched response leaks batch_size: %s", out)
	}
	// Legacy compat the other way: a response without the field decodes
	// to BatchSize 0, and one with it round-trips.
	var legacy WireResponse
	if err := json.Unmarshal([]byte(`{"ok":true,"verified_as":"x"}`), &legacy); err != nil || legacy.BatchSize != 0 {
		t.Fatalf("legacy decode: %v, batch=%d", err, legacy.BatchSize)
	}
	resp.BatchSize = 5
	out, _ = json.Marshal(&resp)
	var back WireResponse
	if err := json.Unmarshal(out, &back); err != nil || back.BatchSize != 5 {
		t.Fatalf("round trip: %v, batch=%d", err, back.BatchSize)
	}
}

// TestBatchingDisabledAllocFree pins the cost batching adds to the
// one-shot hot path when disabled: the routing check is a nil compare
// and the sign counter allocates nothing.
func TestBatchingDisabledAllocFree(t *testing.T) {
	var m metrics
	if n := testing.AllocsPerRun(200, m.noteSign); n != 0 {
		t.Fatalf("noteSign allocates %v per call", n)
	}
	p := BatchPolicy{}
	if n := testing.AllocsPerRun(200, func() {
		if p.enabled() {
			t.Fatal("zero policy enabled")
		}
	}); n != 0 {
		t.Fatalf("policy check allocates %v per call", n)
	}
}

// TestBatchedAuditLogChains: with batching on, the audit log records one
// quote_batch event per signed batch alongside the per-register quote
// events, and the whole log still verifies.
func TestBatchedAuditLogChains(t *testing.T) {
	dir := t.TempDir()
	alog, err := audit.Open(audit.Config{Dir: dir, Node: "test", HeadEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{
		Audit: alog,
		Batch: BatchPolicy{MaxSize: 4, MaxWait: time.Millisecond},
	})
	runBatchLoad(t, s, 12)
	var batchEvents, quoteEvents int
	events, _ := alog.Select(audit.Query{Limit: 4096})
	for _, e := range events {
		switch e.Type {
		case audit.EventQuoteBatch:
			batchEvents++
		case audit.EventSePCRQuote:
			quoteEvents++
		}
	}
	m := s.Metrics()
	if uint64(batchEvents) != m.QuoteBatches {
		t.Fatalf("%d quote_batch events for %d batches", batchEvents, m.QuoteBatches)
	}
	if uint64(quoteEvents) != m.BatchedJobs {
		t.Fatalf("%d sepcr_quote events for %d batched jobs", quoteEvents, m.BatchedJobs)
	}
	// The persisted log must still verify end to end: close the service
	// (final events), seal the log, replay every proof.
	s.Close()
	alog.Close()
	rep, err := audit.VerifyChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("audit log does not verify with batching on: %v", err)
	}
}

// TestBatchedCloseDrains: closing with jobs still queued flushes every
// in-flight batch and loses nothing.
func TestBatchedCloseDrains(t *testing.T) {
	s := newTestService(t, Config{
		Batch: BatchPolicy{MaxSize: 8, MaxWait: 5 * time.Millisecond},
	})
	var tickets []*Ticket
	for i := 0; i < 10; i++ {
		tk, err := s.Submit(Job{Name: fmt.Sprintf("j%d", i), Source: helloSource})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.Close()
	for i, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			t.Fatalf("job %d lost at close: %v", i, res.Err)
		}
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
