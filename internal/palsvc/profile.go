package palsvc

import "minimaltcb/internal/obs/prof"

// Profile snapshots the service's merged virtual-cycle profile: each
// machine's collector is read under that machine's lock (the same
// serialization that guards execution), the per-tenant ledger is copied
// in, and the result is finished (basic blocks recovered, samples in
// canonical order). Returns nil when the service was built without a
// Profiler. Safe to call concurrently with job execution — a snapshot
// simply waits its turn on each machine like any other job.
func (s *Service) Profile() *prof.Profile {
	if s.cfg.Profiler == nil {
		return nil
	}
	p := prof.NewProfile()
	for _, m := range s.machines {
		if m.prof == nil {
			continue
		}
		m.mu.Lock()
		m.prof.SnapshotInto(p)
		m.mu.Unlock()
	}
	s.cfg.Profiler.TenantsInto(p)
	p.Finish()
	return p
}
