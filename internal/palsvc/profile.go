package palsvc

import "minimaltcb/internal/obs/prof"

// Profile snapshots the service's merged virtual-cycle profile: each
// machine's collector is read under that machine's lock (the same
// serialization that guards execution), the per-tenant ledger is copied
// in, and the result is finished (basic blocks recovered, samples in
// canonical order). Returns nil when the service was built without a
// Profiler. Safe to call concurrently with job execution — a snapshot
// simply waits its turn on each machine like any other job.
func (s *Service) Profile() *prof.Profile {
	if s.cfg.Profiler == nil {
		return nil
	}
	p := prof.NewProfile()
	for i, m := range s.machines {
		m.mu.Lock()
		if m.prof != nil {
			m.prof.SnapshotInto(p)
		}
		// Execution-engine counters summed over the machine's cores. The
		// decode-cache stats are plain fields guarded by the machine lock
		// we already hold; the threaded-code stats are atomics.
		ms := prof.MachineExecStats{Machine: i}
		for _, core := range m.sys.Machine.CPUs {
			ds := core.DecodeCacheStatsSnapshot()
			ms.DecodeHits += ds.Hits
			ms.DecodeMisses += ds.Misses
			ms.DecodeBoundarySkips += ds.BoundarySkips
			ms.DecodeVersionEvictions += ds.VersionEvictions
			ts := core.TCodeStatsSnapshot()
			ms.BlocksCompiled += ts.Compiled
			ms.BlockExecs += ts.Execs
			ms.CompiledInstrs += ts.Instrs
			ms.BlockBailouts += ts.Bailouts
			ms.BlockInvalidations += ts.Invalidations
		}
		m.mu.Unlock()
		p.Machines = append(p.Machines, ms)
	}
	s.cfg.Profiler.TenantsInto(p)
	p.Finish()
	return p
}
