package palsvc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/sim"
)

// TestStageStatsDegenerateCases pins the summary semantics for tiny
// samples: empty reports zeros everywhere, one observation reports itself
// at every rank, and no sample size panics.
func TestStageStatsDegenerateCases(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name string
		obs  []time.Duration
		want StageStats
	}{
		{
			name: "empty",
			obs:  nil,
			want: StageStats{},
		},
		{
			name: "single",
			obs:  []time.Duration{ms(7)},
			want: StageStats{N: 1, Mean: ms(7), P50: ms(7), P95: ms(7), P99: ms(7), Max: ms(7)},
		},
		{
			name: "two",
			obs:  []time.Duration{ms(10), ms(20)},
			want: StageStats{N: 2, Mean: ms(15), P50: ms(10), P95: ms(20), P99: ms(20), Max: ms(20)},
		},
		{
			name: "unsorted input",
			obs:  []time.Duration{ms(30), ms(10), ms(20)},
			want: StageStats{N: 3, Mean: ms(20), P50: ms(20), P95: ms(30), P99: ms(30), Max: ms(30)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s sim.Sample
			for _, d := range tc.obs {
				s.Add(d)
			}
			got := stageOf(&s)
			if got != tc.want {
				t.Fatalf("stageOf = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestErrorCode(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrQueueFull, CodeQueueFull},
		{fmt.Errorf("wrap: %w", ErrQueueFull), CodeQueueFull},
		{ErrBankExhausted, CodeBankExhausted},
		{ErrDeadlineExceeded, CodeDeadline},
		{ErrClosed, CodeClosed},
		{errors.New("boom"), CodeError},
	}
	for _, tc := range cases {
		if got := ErrorCode(tc.err); got != tc.want {
			t.Fatalf("ErrorCode(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestRejectionCauseCounters(t *testing.T) {
	var m metrics
	m.incRejected(fmt.Errorf("w: %w", ErrQueueFull))
	m.incRejected(ErrBankExhausted)
	m.incRejected(ErrBankExhausted)
	m.incRejected(errors.New("other"))
	if m.rejected != 4 || m.rejQueueFull != 1 || m.rejBank != 2 {
		t.Fatalf("rejected=%d queue=%d bank=%d", m.rejected, m.rejQueueFull, m.rejBank)
	}
}

// TestTracedJobSpans runs one attested job under a tracer and checks the
// acceptance-criterion shape: pipeline spans exist, the execute span
// carries virtual time, and the sePCR life cycle appears as an Exclusive
// span followed by a Quote span on the same handle.
func TestTracedJobSpans(t *testing.T) {
	tracer := obs.NewTracer(1024)
	s := newTestService(t, Config{Tracer: tracer})
	res, err := s.Run(Job{Name: "traced", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	recs, dropped := tracer.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d records", dropped)
	}
	byName := map[string][]obs.Record{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, name := range []string{"job", "queue", "admit", "execute", "quote", "verify"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %q span in trace (have %v)", name, names(recs))
		}
	}
	exec := byName["execute"][0]
	if exec.VirtStart < 0 || exec.VirtDur < 0 {
		t.Fatalf("execute span has no virtual time: %+v", exec)
	}
	if exec.WallDur < 0 {
		t.Fatalf("execute span has no wall time: %+v", exec)
	}

	// The pipeline spans all belong to the job's trace, parented at the
	// root span.
	root := byName["job"][0]
	for _, name := range []string{"queue", "admit", "execute", "quote", "verify"} {
		sp := byName[name][0]
		if sp.Trace != root.Trace {
			t.Fatalf("%s span in trace %d, root in %d", name, sp.Trace, root.Trace)
		}
		if sp.Parent != root.ID {
			t.Fatalf("%s span parent %d, root id %d", name, sp.Parent, root.ID)
		}
	}

	// sksm and tpm layers nested through the ambient scope context.
	if len(byName["slice"]) == 0 {
		t.Fatalf("no sksm slice span (have %v)", names(recs))
	}
	if len(byName["TPM_Quote"]) == 0 {
		t.Fatalf("no TPM_Quote span (have %v)", names(recs))
	}

	// sePCR life cycle: Exclusive recorded before Quote, same handle,
	// both carrying wall and virtual durations.
	var lifecycle []obs.Record
	for _, r := range recs {
		if r.Cat == obs.CatSePCR && r.Kind == obs.KindSpan {
			lifecycle = append(lifecycle, r)
		}
	}
	if len(lifecycle) != 2 {
		t.Fatalf("sePCR lifecycle spans = %d, want 2 (Exclusive, Quote)", len(lifecycle))
	}
	if lifecycle[0].Name != "sePCR.Exclusive" || lifecycle[1].Name != "sePCR.Quote" {
		t.Fatalf("lifecycle order %s, %s", lifecycle[0].Name, lifecycle[1].Name)
	}
	if attr(lifecycle[0], "handle") != attr(lifecycle[1], "handle") {
		t.Fatalf("lifecycle handles differ: %+v vs %+v", lifecycle[0].Attrs, lifecycle[1].Attrs)
	}
	for _, r := range lifecycle {
		if r.VirtStart < 0 || r.VirtDur < 0 || r.WallDur < 0 {
			t.Fatalf("lifecycle span missing a clock: %+v", r)
		}
	}
	// And the final Free event marks the register's return to the bank.
	if len(byName["sePCR.Free"]) == 0 {
		t.Fatalf("no sePCR.Free event (have %v)", names(recs))
	}
}

func TestNoAttestTraceFreesWithoutQuote(t *testing.T) {
	tracer := obs.NewTracer(1024)
	s := newTestService(t, Config{Tracer: tracer})
	if _, err := s.Run(Job{Name: "noattest", Source: helloSource, NoAttest: true}); err != nil {
		t.Fatal(err)
	}
	recs, _ := tracer.Snapshot()
	// The register still parks in the Quote *state* after exit (§5.4.3 —
	// quote-or-free is untrusted code's choice), but no TPM_Quote command
	// may run and no verify stage may appear.
	for _, r := range recs {
		if r.Name == "TPM_Quote" || r.Name == "verify" {
			t.Fatalf("NoAttest job produced %s", r.Name)
		}
	}
	found := false
	for _, r := range recs {
		if r.Name == "sePCR.Free" {
			found = true
		}
	}
	if !found {
		t.Fatal("NoAttest job never freed its sePCR in the trace")
	}
}

// TestRegistryExposition runs jobs against a service bound to a registry
// and checks the counters and stage histograms scrape correctly.
func TestRegistryExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestService(t, Config{Registry: reg, QueueDepth: 1, Workers: 1})
	if _, err := s.Run(Job{Name: "m", Source: helloSource}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"palsvc_jobs_submitted_total 1",
		"palsvc_jobs_admitted_total 1",
		"palsvc_jobs_completed_total 1",
		`palsvc_stage_duration_seconds_count{clock="virtual",stage="execute"} 1`,
		`palsvc_stage_duration_seconds_count{clock="wall",stage="verify"} 1`,
		"palsvc_sepcr_capacity 4",
		"palsvc_sepcr_occupancy 0",
		"palsvc_sepcr_occupancy_max 1",
		"palsvc_image_cache_misses_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRejectionCauseInMetricsSnapshot(t *testing.T) {
	s := newTestService(t, Config{Admission: AdmitReject, Workers: 2})
	// Saturate the bank with slow jobs, then watch one get bank-rejected.
	var tickets []*Ticket
	for i := 0; i < s.Bank(); i++ {
		tk, err := s.Submit(Job{Name: "slow", Source: slowSource})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	sawBank := false
	for i := 0; i < 200 && !sawBank; i++ {
		res, err := s.Run(Job{Name: "quick", Source: helloSource, NoAttest: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil && errors.Is(res.Err, ErrBankExhausted) {
			sawBank = true
		}
		time.Sleep(time.Millisecond)
	}
	for _, tk := range tickets {
		tk.Wait()
	}
	m := s.Metrics()
	if !sawBank {
		t.Skip("bank never saturated on this run")
	}
	if m.RejectedBank == 0 {
		t.Fatalf("RejectedBank = 0 with %d rejections", m.Rejected)
	}
	if m.Rejected < m.RejectedBank+m.RejectedQueueFull {
		t.Fatalf("cause split %d+%d exceeds total %d",
			m.RejectedBank, m.RejectedQueueFull, m.Rejected)
	}
}

func names(recs []obs.Record) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range recs {
		if !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, r.Name)
		}
	}
	return out
}

func attr(r obs.Record, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// BenchmarkJobTracerOff / BenchmarkJobTracerPresent measure the end-to-end
// job path with no tracer versus a compiled-in-but-disabled tracer — the
// <5% overhead budget of ISSUE 2.
func benchService(b *testing.B, cfg Config) *Service {
	b.Helper()
	cfg.Profile = testProfile(4)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	// One warm job primes the one-time caches (decode cache, memory
	// chunks, buffer pools) so the timed loop measures steady state.
	if _, err := s.Run(Job{Name: "warm", Source: helloSource, NoAttest: true}); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkJobTracerOff(b *testing.B) {
	s := benchService(b, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(Job{Name: "b", Source: helloSource, NoAttest: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobTracerDisabled(b *testing.B) {
	tracer := obs.NewTracer(1024)
	tracer.SetEnabled(false)
	s := benchService(b, Config{Tracer: tracer})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(Job{Name: "b", Source: helloSource, NoAttest: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobTracerEnabled(b *testing.B) {
	tracer := obs.NewTracer(obs.DefaultCapacity)
	s := benchService(b, Config{Tracer: tracer})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(Job{Name: "b", Source: helloSource, NoAttest: true}); err != nil {
			b.Fatal(err)
		}
	}
}
