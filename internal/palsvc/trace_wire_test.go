package palsvc

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"minimaltcb/internal/obs"
)

// startTracedServer is startServer with a live tracer installed.
func startTracedServer(t *testing.T) (*Service, *obs.Tracer, string) {
	t.Helper()
	tracer := obs.NewTracer(0)
	s, addr := startServer(t, Config{Tracer: tracer})
	return s, tracer, addr
}

// TestWireTracePropagation: a run request carrying a trace context must run
// the job's pipeline spans under that exact trace, nested under the given
// parent span, and echo the trace ID back.
func TestWireTracePropagation(t *testing.T) {
	_, tracer, addr := startTracedServer(t)
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	want := obs.TraceID{Hi: 0xabcdef0123456789, Lo: 42}
	resp, err := cl.Run(&WireRequest{
		Name: "hello", Source: helloSource,
		TraceID: want.String(), ParentSpan: 777, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run failed: %s", resp.Err)
	}
	if resp.TraceID != want.String() {
		t.Fatalf("echoed trace %q, want %q", resp.TraceID, want)
	}
	recs, _ := tracer.Snapshot()
	recs = obs.FilterTrace(recs, want)
	if len(recs) == 0 {
		t.Fatal("no spans recorded under the propagated trace")
	}
	var job *obs.Record
	for i := range recs {
		if recs[i].Name == "job" && recs[i].Cat == "pipeline" {
			job = &recs[i]
		}
	}
	if job == nil {
		t.Fatalf("no job span under propagated trace (got %d records)", len(recs))
	}
	if job.Parent != 777 {
		t.Fatalf("job span parent %d, want the propagated 777", job.Parent)
	}
	var tenant string
	for _, a := range job.Attrs {
		if a.Key == "tenant" {
			tenant = a.Val
		}
	}
	if tenant != "acme" {
		t.Fatalf("job span tenant attr %q, want %q", tenant, "acme")
	}
}

// TestWireTraceRootSynthesized: an old-style run request without trace
// fields against a traced server mints a fresh root and still echoes it —
// forward compatibility for old clients.
func TestWireTraceRootSynthesized(t *testing.T) {
	_, tracer, addr := startTracedServer(t)
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Run(&WireRequest{Name: "hello", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run failed: %s", resp.Err)
	}
	if resp.TraceID == "" {
		t.Fatal("traced server did not echo a synthesized root trace")
	}
	id, err := obs.ParseTraceID(resp.TraceID)
	if err != nil || id.IsZero() {
		t.Fatalf("echoed trace %q does not parse: %v", resp.TraceID, err)
	}
	recs, _ := tracer.Snapshot()
	if len(obs.FilterTrace(recs, id)) == 0 {
		t.Fatalf("no spans under the synthesized root %s", id)
	}
}

// TestWireTraceOpDump: the trace op returns the ring with a clock sample,
// honors the trace filter, and rejects malformed filters.
func TestWireTraceOpDump(t *testing.T) {
	_, _, addr := startTracedServer(t)
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Run(&WireRequest{Name: "hello", Source: helloSource})
	if err != nil || !resp.OK {
		t.Fatalf("run: %v %s", err, resp.Err)
	}
	dump, offset, err := cl.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Records) == 0 {
		t.Fatal("empty trace dump after a traced run")
	}
	if dump.NowNS == 0 {
		t.Fatal("trace dump carries no clock sample")
	}
	// Same process, same clock: the RTT-midpoint estimate must be tiny.
	if offset < -time.Second || offset > time.Second {
		t.Fatalf("same-process clock offset estimate %v", offset)
	}
	filtered, _, err := cl.Trace(resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Records) == 0 {
		t.Fatal("filtered dump lost the run's spans")
	}
	id, _ := obs.ParseTraceID(resp.TraceID)
	for _, r := range filtered.Records {
		if r.Trace != id {
			t.Fatalf("filtered dump leaked trace %v (want only %v)", r.Trace, id)
		}
	}
	if _, _, err := cl.Trace("not-a-trace-id!"); err == nil {
		t.Fatal("malformed trace filter accepted")
	}
}

// legacyServer mimics a pre-trace palservd build: it decodes only the old
// request fields (encoding/json drops unknown keys, which is exactly what
// an old binary does), answers run with a canned success, and reports an
// unknown op for everything it postdates.
func legacyServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					body, err := ReadFrame(c)
					if err != nil {
						return
					}
					var req struct {
						Op   string `json:"op"`
						Name string `json:"name"`
					}
					var resp map[string]any
					if err := json.Unmarshal(body, &req); err != nil {
						resp = map[string]any{"err": err.Error()}
					} else if req.Op == "run" {
						resp = map[string]any{"ok": true, "output": []byte(req.Name)}
					} else {
						resp = map[string]any{"err": `palsvc: unknown op "` + req.Op + `"`}
					}
					out, _ := json.Marshal(resp)
					if err := WriteFrame(c, out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestWireTraceFieldsIgnoredByOldServer: a new client sending trace context
// to an old server still gets its answer — the extra JSON fields are
// silently dropped and no trace ID comes back. Backward compatibility in
// the new-client → old-server direction.
func TestWireTraceFieldsIgnoredByOldServer(t *testing.T) {
	addr := legacyServer(t)
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Run(&WireRequest{
		Name: "legacy", Source: helloSource,
		TraceID: "00000000000000010000000000000002", ParentSpan: 9, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("old server rejected a traced request: %s", resp.Err)
	}
	if resp.TraceID != "" {
		t.Fatalf("old server echoed a trace ID %q", resp.TraceID)
	}
}

// TestWireTraceOpOldServerGraceful: Client.Trace against a pre-trace build
// surfaces the unknown-op answer as a plain error, not a panic or a hang.
func TestWireTraceOpOldServerGraceful(t *testing.T) {
	addr := legacyServer(t)
	cl, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Trace(""); err == nil {
		t.Fatal("trace op against an old server succeeded")
	}
}

// TestTracingDisabledAllocFree pins the disabled observability path at zero
// allocations: parsing the (absent) wire trace context, the nil-tracer span
// handles around the job pipeline, and the nil SLO tracker must all compile
// down to nil checks. This is the contract that lets the instrumentation
// stay in the hot path unconditionally.
func TestTracingDisabledAllocFree(t *testing.T) {
	var tracer *obs.Tracer
	var slo *obs.SLOTracker
	req := &WireRequest{Op: OpRun, Name: "hot", Source: "src"}
	allocs := testing.AllocsPerRun(200, func() {
		ctx := wireTraceContext(req)
		sp := tracer.StartSpan(ctx, "job", "pipeline")
		sp.Attr("name", req.Name)
		sp.AttrInt("attempt", 1)
		child := tracer.StartSpan(sp.Context(), "execute", "pipeline")
		child.End()
		sp.End()
		slo.Observe(req.Name, time.Millisecond, false, ctx.Trace)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing/SLO path allocates %.1f per op, want 0", allocs)
	}
}
