package palsvc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPropertyAdmissionNeverExceedsBank is the acceptance stress test: many
// concurrent jobs pushed through one platform whose sePCR bank holds 8,
// with the invariant that the service never lets more simultaneous PALs
// hold registers than the bank provides. Occupancy is tracked by the
// service's own gauge, whose high-water mark must stay within the bank.
func TestPropertyAdmissionNeverExceedsBank(t *testing.T) {
	const (
		bank = 8
		jobs = 120
	)
	s := newTestService(t, Config{
		Profile:    testProfile(bank),
		Workers:    16,
		QueueDepth: 256,
	})

	// Mix of fast and slow sources so register-holding times vary.
	sources := []struct {
		name, src string
	}{
		{"hello", helloSource},
		{"slow", slowSource},
		{"echo", echoSource},
	}

	var wg sync.WaitGroup
	errC := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := sources[i%len(sources)]
			// Submissions race against a bounded queue: retry on
			// backpressure, which is exactly what the retryable error
			// contract tells tenants to do.
			for {
				res, err := s.Run(Job{
					Name:   src.name,
					Source: src.src,
					Input:  []byte("stress"),
				})
				if err != nil {
					if IsRetryable(err) {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					errC <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				if res.Err != nil {
					errC <- fmt.Errorf("job %d: %w", i, res.Err)
					return
				}
				if src.name == "hello" && string(res.Output) != "hello" {
					errC <- fmt.Errorf("job %d: output %q", i, res.Output)
				}
				return
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Error(err)
	}

	m := s.Metrics()
	if m.MaxSePCROccupancy > bank {
		t.Fatalf("admission invariant violated: max occupancy %d > bank %d",
			m.MaxSePCROccupancy, bank)
	}
	if m.MaxSePCROccupancy == 0 {
		t.Fatal("occupancy gauge never moved")
	}
	if m.Completed != jobs {
		t.Fatalf("completed %d of %d (admitted %d, failed %d, deadline %d)",
			m.Completed, jobs, m.Admitted, m.Failed, m.DeadlineExceeded)
	}
	if m.Admitted != jobs {
		t.Fatalf("admitted %d, want %d", m.Admitted, jobs)
	}
	if m.SePCROccupancy != 0 {
		t.Fatalf("occupancy %d after drain, want 0", m.SePCROccupancy)
	}
	t.Logf("max occupancy %d/%d, queue-wait p95 %v, exec p95 %v (virtual)",
		m.MaxSePCROccupancy, bank, m.QueueWait.P95, m.Execute.P95)
}

// TestPropertyRejectedJobsAreRetryable drives the AdmitReject policy to
// exhaustion with a tiny bank and checks that every rejection carries the
// retryable marker and that retrying eventually lands every job.
func TestPropertyRejectedJobsAreRetryable(t *testing.T) {
	const jobs = 40
	s := newTestService(t, Config{
		Profile:    testProfile(2),
		Workers:    8,
		QueueDepth: 64,
		Admission:  AdmitReject,
	})

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		rejects   int
		completed int
	)
	errC := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				res, err := s.Run(Job{Name: "slow", Source: slowSource})
				if err != nil {
					if IsRetryable(err) {
						time.Sleep(time.Millisecond)
						continue
					}
					errC <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				if res.Err != nil {
					if !IsRetryable(res.Err) {
						errC <- fmt.Errorf("job %d: non-retryable %w", i, res.Err)
						return
					}
					if !errors.Is(res.Err, ErrBankExhausted) {
						errC <- fmt.Errorf("job %d: retryable but not ErrBankExhausted: %w", i, res.Err)
						return
					}
					mu.Lock()
					rejects++
					mu.Unlock()
					time.Sleep(time.Millisecond)
					continue
				}
				mu.Lock()
				completed++
				mu.Unlock()
				return
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Error(err)
	}
	if completed != jobs {
		t.Fatalf("completed %d, want %d", completed, jobs)
	}
	m := s.Metrics()
	if m.MaxSePCROccupancy > 2 {
		t.Fatalf("max occupancy %d > bank 2", m.MaxSePCROccupancy)
	}
	t.Logf("retry loop saw %d bank-exhausted rejections before all %d jobs landed", rejects, jobs)
}
