package palsvc

import (
	"errors"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/obs"
)

// obsHooks mirrors the service's internal metrics into Prometheus-style
// instruments at event time, so a /metrics scrape never has to take the
// metrics mutex for the hot counters. Every field is a nil-safe handle: a
// service built without a Registry keeps the zero obsHooks, whose nil
// instrument handles make every update a no-op.
type obsHooks struct {
	submitted    *obs.Counter
	admitted     *obs.Counter
	rejQueueFull *obs.Counter
	rejBank      *obs.Counter
	rejShed      *obs.Counter
	completed    *obs.Counter
	failed       *obs.Counter
	deadline     *obs.Counter
	retried      *obs.Counter
	quarantines  *obs.Counter
	batchesC     *obs.Counter
	batchJobsC   *obs.Counter
	signsC       *obs.Counter

	queueH  *obs.Histogram
	arbH    *obs.Histogram
	execH   *obs.Histogram
	quoteH  *obs.Histogram
	verifyH *obs.Histogram
}

// bindRegistry registers the service's instruments and wires the
// scrape-time callbacks. Counter families use the standard _total suffix;
// rejections carry a cause label so queue backpressure and sePCR-bank
// exhaustion are distinguishable on a dashboard without the wire stats op.
// Stage latencies share one histogram family keyed by stage and by which
// clock the duration was measured on (wall for queue/arbitration/verify,
// virtual sim time for execute/quote_gen) — mixing the two in one series
// would make every quantile meaningless.
func (s *Service) bindRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	stage := func(name, clock string) *obs.Histogram {
		return r.Histogram("palsvc_stage_duration_seconds",
			"Per-stage job latency in seconds, labeled by pipeline stage and by the clock (wall or virtual sim time) it was measured on.",
			nil,
			obs.Label{Name: "stage", Value: name}, obs.Label{Name: "clock", Value: clock})
	}
	s.metrics.hooks = obsHooks{
		submitted: r.Counter("palsvc_jobs_submitted_total", "Jobs accepted into the submission queue."),
		admitted:  r.Counter("palsvc_jobs_admitted_total", "Jobs granted an sePCR reservation by admission control."),
		rejQueueFull: r.Counter("palsvc_jobs_rejected_total", "Jobs rejected, by cause.",
			obs.Label{Name: "cause", Value: "queue_full"}),
		rejBank: r.Counter("palsvc_jobs_rejected_total", "Jobs rejected, by cause.",
			obs.Label{Name: "cause", Value: "bank_exhausted"}),
		rejShed: r.Counter("palsvc_jobs_rejected_total", "Jobs rejected, by cause.",
			obs.Label{Name: "cause", Value: "shed_load"}),
		completed:   r.Counter("palsvc_jobs_completed_total", "Jobs that finished successfully."),
		failed:      r.Counter("palsvc_jobs_failed_total", "Jobs that finished with an error."),
		deadline:    r.Counter("palsvc_jobs_deadline_exceeded_total", "Jobs whose deadline expired at any pipeline stage."),
		retried:     r.Counter("palsvc_jobs_retried_total", "Supervisor retries of retryable job failures."),
		quarantines: r.Counter("palsvc_machine_quarantines_total", "Replica quarantine trips after repeated consecutive faults."),
		batchesC:    r.Counter("palsvc_quote_batches_total", "Batch quotes signed (one AIK signature each)."),
		batchJobsC:  r.Counter("palsvc_quote_batched_jobs_total", "Jobs attested inside batch quotes."),
		signsC:      r.Counter("palsvc_quote_signs_total", "AIK signatures spent in the quote stage (one per one-shot quote, one per batch)."),

		queueH:  stage("queue_wait", "wall"),
		arbH:    stage("arb_wait", "wall"),
		execH:   stage("execute", "virtual"),
		quoteH:  stage("quote_gen", "virtual"),
		verifyH: stage("verify", "wall"),
	}

	r.GaugeFunc("palsvc_queue_depth", "Jobs waiting in the submission queue.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("palsvc_sepcr_capacity", "Total sePCR bank size across machines.",
		func() float64 { return float64(s.bank) })
	r.GaugeFunc("palsvc_sepcr_occupancy", "Jobs currently holding (or reserved for) an sePCR.",
		func() float64 {
			m := s.metrics
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.occupancy)
		})
	r.GaugeFunc("palsvc_sepcr_occupancy_max", "High-water mark of sePCR occupancy.",
		func() float64 {
			m := s.metrics
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.maxOccupancy)
		})
	r.CounterFunc("palsvc_image_cache_hits_total", "PAL image cache hits.",
		func() float64 { h, _ := s.cache.stats(); return float64(h) })
	r.CounterFunc("palsvc_image_cache_misses_total", "PAL image cache misses (assembler runs).",
		func() float64 { _, m := s.cache.stats(); return float64(m) })
	// Threaded-code tier counters: the CPU keeps them as atomics, so the
	// scrape reads safely without taking any machine lock.
	r.CounterFunc("palsvc_blocks_compiled_total", "Basic blocks compiled to threaded code across machines.",
		func() float64 { return float64(s.tcodeStats(func(t cpu.TCodeStats) int64 { return t.Compiled })) })
	r.CounterFunc("palsvc_block_bailouts_total", "Compiled-block bailouts to the interpreter (quantum budget or mid-block invalidation).",
		func() float64 { return float64(s.tcodeStats(func(t cpu.TCodeStats) int64 { return t.Bailouts })) })
	r.CounterFunc("palsvc_block_invalidations_total", "Compiled blocks discarded after content or permission changes.",
		func() float64 { return float64(s.tcodeStats(func(t cpu.TCodeStats) int64 { return t.Invalidations })) })
	r.CounterFunc("palsvc_verify_memo_hits_total", "Verifier memo hits across machines.",
		func() float64 {
			var n uint64
			for _, mc := range s.machines {
				h, _ := mc.sys.Verifier.MemoStats()
				n += h
			}
			return float64(n)
		})
	r.CounterFunc("palsvc_verify_memo_misses_total", "Verifier memo misses (full RSA verifications).",
		func() float64 {
			var n uint64
			for _, mc := range s.machines {
				_, m := mc.sys.Verifier.MemoStats()
				n += m
			}
			return float64(n)
		})
}

// tcodeStats sums one threaded-code tier counter across every core of every
// machine. The per-CPU counters are atomics, so the sum is safe to take from
// a scrape goroutine without the machine locks; it is a consistent-enough
// monotonic view for a counter time series.
func (s *Service) tcodeStats(sel func(cpu.TCodeStats) int64) int64 {
	var n int64
	for _, mc := range s.machines {
		for _, core := range mc.sys.Machine.CPUs {
			n += sel(core.TCodeStatsSnapshot())
		}
	}
	return n
}

// ErrorCode maps a job error to the stable cause string the wire protocol
// reports (WireResponse.Code) and the load generator aggregates by.
// Unrecognized errors report "error"; nil reports "".
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, ErrBankExhausted):
		return CodeBankExhausted
	case errors.Is(err, ErrShedding):
		return CodeShed
	case errors.Is(err, ErrDeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, ErrClosed):
		return CodeClosed
	default:
		return CodeError
	}
}

// Stable wire error codes.
const (
	CodeQueueFull     = "queue_full"
	CodeBankExhausted = "bank_exhausted"
	CodeShed          = "shed_load"
	CodeDeadline      = "deadline_exceeded"
	CodeClosed        = "closed"
	CodeError         = "error"
)
