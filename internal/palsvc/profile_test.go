package palsvc

import (
	"strings"
	"testing"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/obs/prof"
)

// crashSource divides by zero — the canonical forced PAL fault.
const crashSource = `
	ldi r0, 1
	ldi r1, 0
	divu r0, r1
`

// extendSource extends the PAL's sePCR — a TPM-backed service, so its call
// site carries real virtual time (unlike output/exit, which are free).
const extendSource = `
	ldi r0, msg
	ldi r1, 4
	svc 2
	ldi r0, 0
	svc 0
msg:	.ascii "data"
`

func TestServiceProfileAttributesTenants(t *testing.T) {
	profiler := prof.New()
	s := newTestService(t, Config{Profiler: profiler})

	for i := 0; i < 2; i++ {
		if res, err := s.Run(Job{Name: "alice", Source: helloSource}); err != nil || res.Err != nil {
			t.Fatalf("alice job %d: %v %v", i, err, res.Err)
		}
	}
	if res, err := s.Run(Job{Name: "bob", Source: echoSource, Input: []byte("ping")}); err != nil || res.Err != nil {
		t.Fatalf("bob job: %v %v", err, res.Err)
	}
	if res, err := s.Run(Job{Name: "carol", Source: extendSource, NoAttest: true}); err != nil || res.Err != nil {
		t.Fatalf("carol job: %v %v", err, res.Err)
	}

	p := s.Profile()
	if p == nil {
		t.Fatal("Profile() nil with a profiler configured")
	}
	tenants := map[string]TenantLookup{}
	for _, ts := range p.Tenants {
		tenants[ts.Name] = TenantLookup{jobs: ts.Jobs, cycles: ts.CyclesNs, images: ts.Images}
	}
	a, b := tenants["alice"], tenants["bob"]
	if a.jobs != 2 || b.jobs != 1 || tenants["carol"].jobs != 1 {
		t.Fatalf("tenant jobs alice=%d bob=%d carol=%d", a.jobs, b.jobs, tenants["carol"].jobs)
	}
	if a.cycles <= 0 || b.cycles <= 0 {
		t.Fatalf("tenant cycles alice=%d bob=%d", a.cycles, b.cycles)
	}
	if len(a.images) != 1 || len(b.images) != 1 || a.images[0] == b.images[0] {
		t.Fatalf("tenant images alice=%v bob=%v", a.images, b.images)
	}
	// Every PAL image shows up with instruction attribution, and the
	// tenants' image hashes resolve into the image table.
	if len(p.Images) != 3 {
		t.Fatalf("%d images profiled, want 3", len(p.Images))
	}
	for _, ip := range p.Images {
		if ip.Instructions == 0 || ip.CyclesNs == 0 || len(ip.Blocks) == 0 {
			t.Fatalf("image %s has no attribution: %+v", ip.ShortHash(), ip)
		}
		if ip.Launches != ip.Slices {
			t.Fatalf("image %s launches=%d slices=%d (quantum 0 runs one slice)", ip.ShortHash(), ip.Launches, ip.Slices)
		}
	}

	// The report artifacts render from a service snapshot.
	var folded, summary strings.Builder
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(folded.String(), ";svc_extend ") {
		t.Fatalf("folded output missing service frame:\n%s", folded.String())
	}
	p.WriteSummary(&summary, 3)
	for _, want := range []string{"tenant alice", "jobs=2", "top 3 hot blocks:"} {
		if !strings.Contains(summary.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, summary.String())
		}
	}
}

// TenantLookup is a test-local view of one tenant's profile row.
type TenantLookup struct {
	jobs   int64
	cycles int64
	images []string
}

func TestServiceProfileNilWithoutProfiler(t *testing.T) {
	s := newTestService(t, Config{})
	if res, err := s.Run(Job{Name: "hello", Source: helloSource}); err != nil || res.Err != nil {
		t.Fatalf("job: %v %v", err, res.Err)
	}
	if p := s.Profile(); p != nil {
		t.Fatalf("Profile() = %+v without a profiler", p)
	}
}

// TestServiceFaultRecordsCrashBundle runs a faulting PAL through the full
// service and checks the flight recorder captured the job's identity.
func TestServiceFaultRecordsCrashBundle(t *testing.T) {
	tracer := obs.NewTracer(0)
	flight := prof.NewFlightRecorder("", tracer)
	profiler := prof.New()
	s := newTestService(t, Config{Tracer: tracer, Profiler: profiler, Flight: flight})

	res, err := s.Run(Job{Name: "crashy", Source: crashSource})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("faulting job reported success")
	}

	bundles := flight.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("%d crash bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Reason != "fault" || b.Tenant != "crashy" {
		t.Fatalf("bundle reason=%q tenant=%q", b.Reason, b.Tenant)
	}
	if b.Trace.IsZero() {
		t.Fatal("bundle not linked to the job's trace")
	}
	if b.Machine != res.Machine {
		t.Fatalf("bundle machine %d, job ran on %d", b.Machine, res.Machine)
	}
	if len(b.HotPCs) == 0 || len(b.TraceTail) == 0 {
		t.Fatalf("bundle missing partial profile or trace tail: %+v", b)
	}
	// The tenant ledger still accrues the faulted job.
	p := s.Profile()
	for _, ts := range p.Tenants {
		if ts.Name == "crashy" {
			if ts.Jobs != 1 || ts.Faults != 1 {
				t.Fatalf("crashy ledger jobs=%d faults=%d", ts.Jobs, ts.Faults)
			}
			return
		}
	}
	t.Fatal("no ledger row for the faulted tenant")
}
