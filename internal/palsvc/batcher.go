package palsvc

import (
	"fmt"
	"time"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/core"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/sksm"
	"minimaltcb/internal/tpm"
)

// The pipelined quote batcher decouples quote generation from the per-job
// machine-lock round trip. Without it every job pays one TPM_Quote — one
// AIK RSA signature — under the machine mutex (the §5.4.5 arbitration
// stand-in). With it, each machine runs one batcher goroutine: workers
// whose PALs finished execution hand their parked registers to the
// batcher, which collects up to Batch.MaxSize of them (lingering at most
// Batch.MaxWait for stragglers) and attests the whole set with a single
// TPM_SEPCR_QuoteBatch — one signature over the Merkle root of every
// job's composite. Each worker gets back its leaf's inclusion proof and
// verifies it lock-free, in parallel, exactly like the one-shot path.
//
// The batcher also owns the machine's quote session: the first flush
// opens one (one extra AIK signature and one verifier-side RSA verify),
// and every later batch rides the HMAC channel — zero RSA on the
// verifier in steady state. A failed session open degrades to stateless
// batch verification and is retried on the next flush.

// BatchPolicy configures the per-machine quote batcher.
type BatchPolicy struct {
	// MaxSize bounds how many jobs one batch quote covers. Values <= 1
	// disable batching: every job quotes individually, byte-identical to
	// the pre-batching pipeline.
	MaxSize int
	// MaxWait bounds how long the batcher lingers for stragglers after
	// the first job arrives; the timer never delays a full batch. Zero
	// defaults to 200µs.
	MaxWait time.Duration
}

func (p BatchPolicy) enabled() bool { return p.MaxSize > 1 }

// DefaultBatchPolicy is what palservd enables with -quote-batch.
func DefaultBatchPolicy() BatchPolicy {
	return BatchPolicy{MaxSize: 8, MaxWait: 200 * time.Microsecond}
}

// quoteItem is one job's hand-off from its worker to the machine's
// batcher: the register parked in Quote state, and a channel the batcher
// answers on once the batch is signed.
type quoteItem struct {
	t    *task
	secb *sksm.SECB
	res  *JobResult
	done chan quoteOutcome // buffered; the batcher never blocks here
}

// quoteOutcome is the batcher's answer: the signed batch plus this job's
// leaf position and nonce, or the batch-level error. sess is the
// verification session the batch is bound to (nil = verify stateless);
// it rides the channel so workers never race the batcher on machine
// session state.
type quoteOutcome struct {
	q     *tpm.BatchQuote
	idx   int
	nonce []byte
	sess  *attest.Session
	err   error
}

// quoteBatched is the worker side of the batched QUOTE stage: hand the
// parked register to the machine's batcher, wait for the signed batch,
// then verify this job's inclusion proof lock-free. The caller has
// dropped m.mu; the register is in Quote state and still counted by
// admission until the batcher frees it.
func (s *Service) quoteBatched(m *machine, t *task, p *core.PAL, res *JobResult, secb *sksm.SECB) error {
	it := &quoteItem{t: t, secb: secb, res: res, done: make(chan quoteOutcome, 1)}
	m.batchCh <- it
	out := <-it.done
	if out.err != nil {
		return out.err
	}
	return s.verifyBatched(m, t, p, res, out)
}

// batcher is the per-machine collection loop. One goroutine per machine:
// the first arrival starts the MaxWait linger timer, a full batch
// flushes immediately, and channel close (service shutdown) flushes
// whatever was collected before exiting.
func (s *Service) batcher(m *machine) {
	defer s.batchWg.Done()
	maxSize := s.cfg.Batch.MaxSize
	for {
		first, ok := <-m.batchCh
		if !ok {
			return
		}
		items := []*quoteItem{first}
		timer := time.NewTimer(s.cfg.Batch.MaxWait)
	collect:
		for len(items) < maxSize {
			select {
			case it, ok := <-m.batchCh:
				if !ok {
					break collect
				}
				items = append(items, it)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.flushBatch(m, items)
	}
}

// flushBatch signs one batch under a single machine-lock acquisition:
// lazily open the quote session, one TPM_SEPCR_QuoteBatch over every
// collected register, release the SECBs, then fan the entries back to
// the waiting workers. On a failed batch every register is freed
// unquoted (the TPM's injection point sits before the signature, so
// failed batches leave registers parked in Quote) and every job gets
// the same retryable error — with its verifier nonce unconsumed, the
// supervisor retry can reuse it.
func (s *Service) flushBatch(m *machine, items []*quoteItem) {
	sys := m.sys
	n := len(items)
	nonces := make([][]byte, n)
	secbs := make([]*sksm.SECB, n)
	for i, it := range items {
		nonces[i] = s.nextNonce()
		secbs[i] = it.secb
	}
	batchNonce := s.nextNonce()

	m.mu.Lock()
	if m.session == nil {
		s.openQuoteSession(m)
	}
	spans := make([]*obs.Span, n)
	for i, it := range items {
		spans[i] = s.tracer.StartSpan(it.t.root.Context(), "quote", "pipeline")
		if spans[i] != nil {
			spans[i].Virt(sys.Machine.Clock.Now())
			spans[i].Attr("batch", fmt.Sprint(n))
		}
	}
	prevCtx := m.scope.Swap(spans[0].Context())
	sw := sim.StartStopwatch(sys.Machine.Clock)
	q, qerr := sys.SKSM.QuoteBatchAfterExit(secbs, nonces, batchNonce, m.sessID)
	elapsed := sw.Elapsed()
	if qerr != nil {
		for _, sb := range secbs {
			_ = sys.Machine.TPM().FreeSePCR(sb.SePCRHandle)
		}
	}
	var relErr error
	for _, sb := range secbs {
		if e := sys.SKSM.Release(sb); relErr == nil {
			relErr = e
		}
	}
	m.scope.Swap(prevCtx)
	for _, sp := range spans {
		if sp == nil {
			continue
		}
		if qerr != nil {
			sp.Attr("error", qerr.Error())
		}
		sp.EndVirt(sys.Machine.Clock.Now())
	}
	m.mu.Unlock()
	for range items {
		s.releaseSlot() // every register is Free again
	}

	// The amortized accounting is the point: each job is charged its
	// even share of the one batch quote, and the histogram records what
	// a job actually paid — which is what the loadgen p99 measures.
	per := elapsed / time.Duration(n)
	for _, it := range items {
		it.res.QuoteGen = per
		s.metrics.observeQuote(per)
	}
	s.metrics.noteBatch(n, qerr == nil)

	if qerr != nil {
		s.noteMachineFault(m)
		err := fmt.Errorf("palsvc: batched quoting: %w", qerr)
		for _, it := range items {
			it.done <- quoteOutcome{err: err}
		}
		return
	}
	if relErr != nil {
		s.noteMachineFault(m)
		err := fmt.Errorf("palsvc: releasing SECB: %w", relErr)
		for _, it := range items {
			it.done <- quoteOutcome{err: err}
		}
		return
	}
	s.noteMachineOK(m)
	for i, it := range items {
		it.done <- quoteOutcome{q: q, idx: i, nonce: nonces[i], sess: m.session}
	}
}

// openQuoteSession establishes the machine's quote session: the TPM
// mints the HMAC key and signs the grant, the verifier checks it once.
// Called under m.mu from the batcher goroutine only. Failure (an
// injected TPM fault on the session-open command) leaves the machine
// sessionless — batches verify stateless, and the next flush retries.
func (s *Service) openQuoteSession(m *machine) {
	nonce := s.nextNonce()
	grant, err := m.sys.Machine.TPM().OpenQuoteSession(nonce)
	if err != nil {
		return
	}
	sess, err := m.sys.Verifier.NewSession(m.sys.Cert, grant, nonce)
	if err != nil {
		return
	}
	m.session = sess
	m.sessID = grant.ID
}

// verifyBatched is the batched VERIFY stage: check this job's inclusion
// proof against the signed root (over the session's HMAC channel when
// one is open), replay the event log, and consume the per-job nonce.
// Pure public-key/hash work — no machine lock, so it overlaps other
// jobs' execution exactly like the one-shot verify.
func (s *Service) verifyBatched(m *machine, t *task, p *core.PAL, res *JobResult, out quoteOutcome) error {
	sys := m.sys
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		return fmt.Errorf("%w: before verify", ErrDeadlineExceeded)
	}
	vStart := time.Now()
	verifySp := s.tracer.StartSpan(t.root.Context(), "verify", "pipeline")
	sys.Verifier.Approve(t.job.Name, p.Measurement())
	log := attest.Log{{PCR: -1, Description: t.job.Name, Measurement: p.Measurement()}}
	var name string
	var verr error
	if out.sess != nil && out.q.SessionID != 0 {
		name, verr = out.sess.VerifyBatchedQuote(out.q, out.idx, log, out.nonce)
	} else {
		name, verr = sys.Verifier.VerifyBatchedQuote(sys.Cert, out.q, out.idx, log, out.nonce)
	}
	res.Verify = time.Since(vStart)
	s.metrics.observeVerify(res.Verify)
	if verr != nil {
		verifySp.Attr("error", verr.Error()).End()
		return fmt.Errorf("palsvc: quote verification: %w", verr)
	}
	verifySp.Attr("verified_as", name).Attr("batch", fmt.Sprint(out.q.Count)).End()
	res.VerifiedAs = name
	res.BatchSize = out.q.Count
	return nil
}
