// Package pal defines the on-disk/in-memory image format of a Piece of
// Application Logic and helpers for building one from assembler source.
//
// The image follows AMD's Secure Loader Block layout (§2.2.1): the first
// two 16-bit little-endian words are the image's total length and its entry
// point offset, both of which must lie within [0, 64 KB). The late-launch
// measurement covers the entire image, header included, so the header bytes
// are part of the PAL's attested identity.
package pal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"unsafe"

	"minimaltcb/internal/isa"
)

// HeaderSize is the SLB header length: length word + entry word.
const HeaderSize = 4

// MaxImageSize is the architectural SLB limit (64 KB on AMD; Intel's MPT
// default covers 512 KB, but the paper's experiments stay within 64 KB).
const MaxImageSize = 1 << 16

// Image is a built PAL ready to be placed in memory and launched.
type Image struct {
	// Bytes is the full SLB image, header included.
	Bytes []byte
	// Entry is the entry-point offset from the image base.
	Entry uint16
}

// Len returns the image length in bytes.
func (im Image) Len() int { return len(im.Bytes) }

// Built images are memoized by source text: assembly is a pure function of
// the source, experiment sweeps and service jobs rebuild the same handful
// of programs constantly, and returning the identical Image gives
// downstream consumers (tpm.MeasureMemoized, the palsvc image cache) a
// stable slice identity. Image bytes are immutable by contract — nothing
// in the tree writes to Image.Bytes after Build. The cache is bounded.
var (
	buildMu    sync.Mutex
	buildCache = map[string]Image{}
)

const buildCacheLimit = 1024

// Build assembles PAL source into an SLB image. The source is laid out
// after the 4-byte header, so label arithmetic inside the source is
// automatically correct; execution starts at the first byte after the
// header. Identical source returns the identical (shared, immutable) image.
func Build(src string) (Image, error) {
	buildMu.Lock()
	im, ok := buildCache[src]
	buildMu.Unlock()
	if ok {
		return im, nil
	}
	full := "slb_header: .space 4\n" + src
	code, err := isa.Assemble(full)
	if err != nil {
		return Image{}, err
	}
	im, err = FromCode(code[HeaderSize:], HeaderSize)
	if err != nil {
		return Image{}, err
	}
	buildMu.Lock()
	if len(buildCache) >= buildCacheLimit {
		buildCache = map[string]Image{}
	}
	buildCache[src] = im
	buildMu.Unlock()
	return im, nil
}

// MustBuild is Build for statically known-good sources; it panics on error.
func MustBuild(src string) Image {
	im, err := Build(src)
	if err != nil {
		panic(err)
	}
	return im
}

// FromCode wraps raw code bytes in an SLB header. entry is the offset of
// the first instruction measured from the image base (i.e. HeaderSize for
// code that starts immediately after the header).
func FromCode(code []byte, entry uint16) (Image, error) {
	total := HeaderSize + len(code)
	if total > MaxImageSize {
		return Image{}, fmt.Errorf("pal: image %d bytes exceeds the %d-byte SLB limit", total, MaxImageSize)
	}
	if int(entry) >= total {
		return Image{}, fmt.Errorf("pal: entry %d beyond image end %d", entry, total)
	}
	img := make([]byte, total)
	binary.LittleEndian.PutUint16(img[0:2], uint16(total))
	binary.LittleEndian.PutUint16(img[2:4], entry)
	copy(img[HeaderSize:], code)
	return Image{Bytes: img, Entry: entry}, nil
}

// Padded images are memoized by (source image identity, size); Table 1's
// sweep pads the same base PAL to the same ladder of sizes every trial.
type padKey struct {
	ptr  *byte
	n    int
	size int
}

var (
	padMu    sync.Mutex
	padCache = map[padKey]Image{}
)

// Pad returns the image zero-padded to exactly size bytes (the header's
// length field is updated to match). Table 1's sweep launches the same
// trivial PAL at 4/8/16/32/64 KB this way. Results are shared and
// immutable, like Build's.
func (im Image) Pad(size int) (Image, error) {
	if size < len(im.Bytes) {
		return Image{}, fmt.Errorf("pal: cannot pad %d-byte image down to %d", len(im.Bytes), size)
	}
	if size > MaxImageSize {
		return Image{}, fmt.Errorf("pal: padded size %d exceeds the %d-byte SLB limit", size, MaxImageSize)
	}
	k := padKey{ptr: unsafe.SliceData(im.Bytes), n: len(im.Bytes), size: size}
	padMu.Lock()
	out, ok := padCache[k]
	padMu.Unlock()
	if ok {
		return out, nil
	}
	b := make([]byte, size)
	copy(b, im.Bytes)
	binary.LittleEndian.PutUint16(b[0:2], uint16(size%MaxImageSize))
	out = Image{Bytes: b, Entry: im.Entry}
	padMu.Lock()
	if len(padCache) >= buildCacheLimit {
		padCache = map[padKey]Image{}
	}
	padCache[k] = out
	padMu.Unlock()
	return out, nil
}

// ParseHeader reads and validates an SLB header from the start of raw.
func ParseHeader(raw []byte) (length int, entry uint16, err error) {
	if len(raw) < HeaderSize {
		return 0, 0, fmt.Errorf("pal: image shorter than header")
	}
	l := int(binary.LittleEndian.Uint16(raw[0:2]))
	if l == 0 {
		l = MaxImageSize // length field wraps at 64 KB
	}
	entry = binary.LittleEndian.Uint16(raw[2:4])
	if l < HeaderSize {
		return 0, 0, fmt.Errorf("pal: declared length %d below header size", l)
	}
	if int(entry) >= l {
		return 0, 0, fmt.Errorf("pal: entry %d beyond declared length %d", entry, l)
	}
	return l, entry, nil
}
