package pal

import "testing"

// FuzzParseHeader checks header parsing is total and self-consistent: any
// accepted header's declared length covers its entry point.
func FuzzParseHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 4, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{4, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		length, entry, err := ParseHeader(raw)
		if err != nil {
			return
		}
		if length < HeaderSize || length > MaxImageSize {
			t.Fatalf("accepted length %d out of range", length)
		}
		if int(entry) >= length {
			t.Fatalf("accepted entry %d beyond length %d", entry, length)
		}
	})
}

// FuzzBuild checks the builder never panics and always emits a parseable
// header whose declared length equals the image size.
func FuzzBuild(f *testing.F) {
	f.Add("halt")
	f.Add("ldi r0, data\nhalt\ndata: .word 7")
	f.Add(".space 100")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Build(src)
		if err != nil {
			return
		}
		length, entry, err := ParseHeader(im.Bytes)
		if err != nil {
			t.Fatalf("built image has bad header: %v", err)
		}
		if length != im.Len() {
			t.Fatalf("declared %d, actual %d", length, im.Len())
		}
		if entry != im.Entry {
			t.Fatalf("entry mismatch")
		}
	})
}
