package pal

import (
	"encoding/binary"
	"strings"
	"testing"

	"minimaltcb/internal/isa"
)

func TestBuildProducesValidHeader(t *testing.T) {
	im, err := Build(`
		ldi r0, 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	length, entry, err := ParseHeader(im.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if length != len(im.Bytes) {
		t.Fatalf("declared length %d, actual %d", length, len(im.Bytes))
	}
	if entry != HeaderSize || im.Entry != HeaderSize {
		t.Fatalf("entry %d, want %d", entry, HeaderSize)
	}
	// The code after the header must decode to the assembled program.
	prog, err := isa.DecodeProgram(im.Bytes[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Op != isa.OpLdi || prog[1].Op != isa.OpHalt {
		t.Fatalf("program %v", prog)
	}
}

func TestBuildLabelArithmeticAccountsForHeader(t *testing.T) {
	im, err := Build(`
		ldi r0, data
		halt
	data:
		.word 42
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := isa.DecodeProgram(im.Bytes[HeaderSize : HeaderSize+8])
	// data sits after header (4) + two instructions (8) = offset 12.
	if prog[0].Imm != 12 {
		t.Fatalf("data label = %d, want 12 (header-adjusted)", prog[0].Imm)
	}
	// And the word is really there.
	if binary.LittleEndian.Uint32(im.Bytes[12:]) != 42 {
		t.Fatal("data not at label offset")
	}
}

func TestBuildBadSource(t *testing.T) {
	if _, err := Build("bogus instruction"); err == nil {
		t.Fatal("bad source built")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	MustBuild("nonsense!")
}

func TestFromCodeTooLarge(t *testing.T) {
	if _, err := FromCode(make([]byte, MaxImageSize), HeaderSize); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestFromCodeBadEntry(t *testing.T) {
	if _, err := FromCode([]byte{1, 2, 3, 4}, 200); err == nil {
		t.Fatal("entry beyond image accepted")
	}
}

func TestPad(t *testing.T) {
	im := MustBuild("halt")
	padded, err := im.Pad(4096)
	if err != nil {
		t.Fatal(err)
	}
	if padded.Len() != 4096 {
		t.Fatalf("padded length %d", padded.Len())
	}
	length, entry, err := ParseHeader(padded.Bytes)
	if err != nil || length != 4096 || entry != HeaderSize {
		t.Fatalf("padded header: %d %d %v", length, entry, err)
	}
	// Original code preserved.
	prog, _ := isa.DecodeProgram(padded.Bytes[HeaderSize : HeaderSize+4])
	if prog[0].Op != isa.OpHalt {
		t.Fatal("code lost in padding")
	}
}

func TestPadToFull64KB(t *testing.T) {
	im := MustBuild("halt")
	padded, err := im.Pad(MaxImageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Length field wraps to 0 at exactly 64 KB; ParseHeader must read it
	// back as the full size.
	length, _, err := ParseHeader(padded.Bytes)
	if err != nil || length != MaxImageSize {
		t.Fatalf("64KB header: %d, %v", length, err)
	}
}

func TestPadErrors(t *testing.T) {
	im := MustBuild("halt\nhalt\nhalt")
	if _, err := im.Pad(4); err == nil {
		t.Fatal("pad below current size accepted")
	}
	if _, err := im.Pad(MaxImageSize + 1); err == nil {
		t.Fatal("pad beyond SLB limit accepted")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2},
		{2, 0, 0, 0},   // declared length 2 < header
		{10, 0, 50, 0}, // entry 50 beyond length 10
	}
	for _, raw := range cases {
		if _, _, err := ParseHeader(raw); err == nil {
			t.Fatalf("ParseHeader(% x) succeeded", raw)
		}
	}
}

func TestBuildRespectsSLBLimit(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".space 65534\n")
	if _, err := Build(sb.String()); err == nil {
		t.Fatal("image beyond 64 KB built")
	}
}
