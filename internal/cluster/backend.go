package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/sim"
)

// BackendState is the router's view of one backend, driven by the health
// prober and by request outcomes.
type BackendState int32

const (
	// StateHealthy: in the ring, accepting work.
	StateHealthy BackendState = iota
	// StateSaturated: in the ring — alive and authoritative about its own
	// admission — but its last answer or health probe showed no free
	// capacity, so routed work is likely to be stolen onward. Purely
	// informational (metrics, /debug/cluster); the backend's own admission
	// control remains the source of truth per request.
	StateSaturated
	// StateDraining: drained from the ring because the backend reported
	// fleet-wide quarantine (shed_load on every job). Still probed; rejoins
	// when its replicas recover.
	StateDraining
	// StateDown: drained from the ring after consecutive transport
	// failures (probe or request): the process is wedged, partitioned, or
	// dead. Still probed; rejoins on probe success.
	StateDown
)

func (s BackendState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSaturated:
		return "saturated"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// backend is one palservd replica behind the router: its connection pool,
// prober-maintained health view, and routing counters.
type backend struct {
	addr        string
	poolSize    int
	dialTimeout time.Duration
	reqTimeout  time.Duration

	// pool holds idle, reusable connections. A connection that suffers a
	// transport error is closed rather than returned, so the pool never
	// recycles a torn stream; marking the backend down drains it entirely.
	pool chan *palsvc.Client

	mu          sync.Mutex
	state       BackendState
	consecFails int               // consecutive transport failures (probe or request)
	lastHealth  palsvc.HealthInfo // most recent successful probe
	lastStats   *palsvc.Metrics   // most recent stats snapshot
	lastProbe   time.Time         // when lastHealth was taken
	lat         sim.Sample        // router-measured end-to-end latency, this backend

	// Routing counters (atomic: bumped on the request path, read by
	// /metrics scrapes and /debug/cluster).
	routed    atomic.Uint64 // requests answered by this backend as primary
	stolen    atomic.Uint64 // requests answered by this backend as a steal target
	rejects   atomic.Uint64 // admission rejections this backend returned
	transport atomic.Uint64 // transport errors talking to this backend
	batched   atomic.Uint64 // answered run requests attested inside a batch quote
}

func newBackend(addr string, poolSize int, dialTimeout, reqTimeout time.Duration) *backend {
	return &backend{
		addr:        addr,
		poolSize:    poolSize,
		dialTimeout: dialTimeout,
		reqTimeout:  reqTimeout,
		pool:        make(chan *palsvc.Client, poolSize),
	}
}

// get checks out a pooled connection or dials a fresh one. Dialing is
// bounded by the backend's dial timeout and includes the ping handshake, so
// a black-holed backend fails fast instead of hanging the router's worker.
func (b *backend) get() (*palsvc.Client, error) {
	select {
	case c := <-b.pool:
		return c, nil
	default:
	}
	c, err := palsvc.Dial(b.addr, b.dialTimeout)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(b.reqTimeout)
	return c, nil
}

// put returns a healthy connection to the pool, closing it when full.
func (b *backend) put(c *palsvc.Client) {
	select {
	case b.pool <- c:
	default:
		_ = c.Close()
	}
}

// drainPool closes every idle connection — called when the backend goes
// down so later requests do not burn attempts on known-dead streams.
func (b *backend) drainPool() {
	for {
		select {
		case c := <-b.pool:
			_ = c.Close()
		default:
			return
		}
	}
}

// State returns the current state.
func (b *backend) State() BackendState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// observe records one answered request's end-to-end latency.
func (b *backend) observe(d time.Duration) {
	b.mu.Lock()
	b.lat.Add(d)
	b.mu.Unlock()
}

// latency snapshots the per-backend latency distribution.
func (b *backend) latency() palsvc.StageStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return palsvc.StageStatsOf(&b.lat)
}

// health returns the prober's last successful snapshot and its age.
func (b *backend) health() (palsvc.HealthInfo, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastHealth, b.lastProbe
}

// stats returns the prober's last stats snapshot (nil before the first).
func (b *backend) stats() *palsvc.Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastStats
}
