package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/platform"
)

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// testProfile mirrors palsvc's test fixture: the recommended HP dc5750 with
// a small RSA modulus so CA and AIK generation stay fast under -race.
func testProfile(sePCRs int) platform.Profile {
	p := platform.Recommended(platform.HPdc5750(), sePCRs)
	p.KeyBits = 1024
	p.Seed = 42
	return p
}

const helloSource = `
	ldi r0, msg
	ldi r1, 5
	svc 6
	ldi r0, 0
	svc 0
msg:	.ascii "hello"
`

// slowSource busy-loops for 2<<16 iterations — a few milliseconds, enough
// to contend for sePCRs under load.
const slowSource = `
	ldi r0, 0
	ldi r1, 0
	lui r1, 2
loop:	addi r0, 1
	cmp r0, r1
	jnz loop
	ldi r0, 0
	svc 0
`

// spinSource busy-loops for 16384<<16 ≈ 1.07G iterations — far past any
// test's patience, so a hog job holds its sePCR until its deadline kills
// it (the backend needs a Quantum for the wedge kill to preempt).
const spinSource = `
	ldi r0, 0
	ldi r1, 0
	lui r1, 16384
loop:	addi r0, 1
	cmp r0, r1
	jnz loop
	ldi r0, 0
	svc 0
`

// hogJob is a spinner that occupies one sePCR for about holdFor and is then
// wedge-killed by its deadline, releasing the register.
func hogJob(holdFor time.Duration) palsvc.Job {
	return palsvc.Job{Name: "hog", Source: spinSource, NoAttest: true, Deadline: time.Now().Add(holdFor)}
}

// killableListener wraps a listener and tracks accepted connections so a
// test can simulate a backend crash: Kill closes the listener and every
// live connection at once, while the Service behind it keeps running (its
// in-flight jobs still drain — the crash is of the *network* presence,
// which is what the router observes).
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	dead  bool
}

func newKillableListener(t *testing.T) *killableListener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	return &killableListener{Listener: l, conns: make(map[net.Conn]struct{})}
}

func (k *killableListener) Accept() (net.Conn, error) {
	c, err := k.Listener.Accept()
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		_ = c.Close()
		return nil, net.ErrClosed
	}
	k.conns[c] = struct{}{}
	k.mu.Unlock()
	return c, nil
}

func (k *killableListener) Kill() {
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		return
	}
	k.dead = true
	conns := make([]net.Conn, 0, len(k.conns))
	for c := range k.conns {
		conns = append(conns, c)
	}
	k.mu.Unlock()
	_ = k.Listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

// startBackend brings up a real palsvc Service behind a killable loopback
// listener and returns both.
func startBackend(t *testing.T, cfg palsvc.Config) (*palsvc.Service, *killableListener) {
	t.Helper()
	if cfg.Profile.Name == "" {
		cfg.Profile = testProfile(4)
	}
	s, err := palsvc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kl := newKillableListener(t)
	t.Cleanup(func() { kl.Kill(); s.Close() })
	go func() { _ = s.Serve(kl, 30*time.Second) }()
	return s, kl
}

// newTestRouter builds a Router over the given backends with fast probe
// settings; mutate may tweak the config before New.
func newTestRouter(t *testing.T, addrs []string, mutate func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Backends:      addrs,
		PoolSize:      4,
		DialTimeout:   time.Second,
		ProbeInterval: 10 * time.Millisecond,
		ProbeFails:    3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// serveRouter exposes a router on loopback TCP, the way tenants reach it.
func serveRouter(t *testing.T, r *Router) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = r.Serve(l, 30*time.Second) }()
	return l.Addr().String()
}

// sourceForPrimary appends unreachable data variants to helloSource until
// the router's placement puts the image on want — how tests aim a job at a
// specific shard without reaching into the ring.
func sourceForPrimary(t *testing.T, r *Router, want string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		src := fmt.Sprintf("%sv%d:\t.ascii \"variant\"\n", helloSource, i)
		if p := r.Placement(src); len(p) > 0 && p[0] == want {
			return src
		}
	}
	t.Fatalf("no source variant maps to %s", want)
	return ""
}

// waitFor polls cond every few milliseconds until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// stubBackend is a hand-rolled wire server with canned health/stats
// answers: the shape of a foreign or pre-health palservd build.
type stubBackend struct {
	l  net.Listener
	mu sync.Mutex
	// health nil simulates an old server: the health op answers with an
	// unknown-op error and clients must fall back to stats.
	health *palsvc.HealthInfo
	stats  palsvc.Metrics
}

func startStub(t *testing.T, health *palsvc.HealthInfo, stats palsvc.Metrics) *stubBackend {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	s := &stubBackend{l: l, health: health, stats: stats}
	t.Cleanup(func() { l.Close() })
	go s.serve()
	return s
}

func (s *stubBackend) addr() string { return s.l.Addr().String() }

func (s *stubBackend) setHealth(h *palsvc.HealthInfo) {
	s.mu.Lock()
	s.health = h
	s.mu.Unlock()
}

func (s *stubBackend) serve() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			for {
				body, err := palsvc.ReadFrame(c)
				if err != nil {
					return
				}
				var req palsvc.WireRequest
				resp := &palsvc.WireResponse{}
				if err := json.Unmarshal(body, &req); err != nil {
					resp.Err = err.Error()
				} else {
					resp = s.answer(&req)
				}
				out, err := json.Marshal(resp)
				if err != nil {
					return
				}
				if err := palsvc.WriteFrame(c, out); err != nil {
					return
				}
			}
		}(conn)
	}
}

func (s *stubBackend) answer(req *palsvc.WireRequest) *palsvc.WireResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case palsvc.OpPing:
		return &palsvc.WireResponse{OK: true}
	case palsvc.OpStats:
		st := s.stats
		return &palsvc.WireResponse{OK: true, Stats: &st}
	case palsvc.OpHealth:
		if s.health == nil {
			return &palsvc.WireResponse{Err: fmt.Sprintf("palsvc: unknown op %q", req.Op)}
		}
		h := *s.health
		return &palsvc.WireResponse{OK: true, Health: &h}
	default:
		return &palsvc.WireResponse{Err: "stub: unsupported op"}
	}
}
