package cluster

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
)

// tracedBackend is startBackend with a node-scoped tracer installed, the
// way a real palservd process runs (cmd/palservd calls SetNode at boot).
func tracedBackend(t *testing.T, node uint64) (*palsvc.Service, *killableListener, *obs.Tracer) {
	t.Helper()
	tr := obs.NewTracer(0)
	tr.SetNode(node)
	s, kl := startBackend(t, palsvc.Config{Tracer: tr})
	return s, kl, tr
}

// TestClusterTraceStitch is the tentpole integration test: one tenant job
// routed across a 3-backend fleet with a mid-walk failover, then stitched
// from every node's ring into a single skew-corrected trace. The stitched
// timeline must hold the router's route/forward spans and failover event,
// the serving backend's pipeline spans, and the sksm/tpm spans below them —
// all under one trace ID, with every child interval nested inside its
// parent's after clock correction.
func TestClusterTraceStitch(t *testing.T) {
	_, klA, _ := tracedBackend(t, 0x11)
	_, klB, _ := tracedBackend(t, 0x22)
	_, klC, _ := tracedBackend(t, 0x33)
	addrs := []string{klA.Addr().String(), klB.Addr().String(), klC.Addr().String()}

	tracer := obs.NewTracer(0)
	tracer.SetNode(0xAA)
	reg := obs.NewRegistry()
	slo := obs.NewSLOTracker(obs.SLOConfig{})
	r := newTestRouter(t, addrs, func(c *Config) {
		c.Tracer = tracer
		c.SLO = slo
		c.Registry = reg
		// Slow probes: the killed primary must still be in the ring when
		// the request walks it, so the failover happens on the request
		// path, not in a prober.
		c.ProbeInterval = 500 * time.Millisecond
	})
	addr := serveRouter(t, r)

	src := sourceForPrimary(t, r, addrs[0])
	klA.Kill() // the primary dies before the job arrives: mid-walk failover

	cl, err := palsvc.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Run(&palsvc.WireRequest{Name: "stitch", Source: src, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("routed run failed: %s", resp.Err)
	}
	if resp.Backend == addrs[0] {
		t.Fatal("job answered by the killed primary")
	}
	id, err := obs.ParseTraceID(resp.TraceID)
	if err != nil || id.IsZero() {
		t.Fatalf("echoed trace %q does not parse: %v", resp.TraceID, err)
	}

	dump, err := r.StitchTrace(resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	recs := dump.Records
	if len(recs) == 0 {
		t.Fatal("stitched dump is empty")
	}

	nodes := map[string]bool{}
	var (
		routeSpans, fwdOK, fwdErr int
		failoverEvents            int
		pipeline                  = map[string]bool{}
		sawSksm, sawTpm           bool
	)
	attr := func(rec obs.Record, key string) string {
		for _, a := range rec.Attrs {
			if a.Key == key {
				return a.Val
			}
		}
		return ""
	}
	for _, rec := range recs {
		if rec.Trace != id {
			t.Fatalf("stitched dump leaked trace %v (want only %v)", rec.Trace, id)
		}
		if rec.Node == "" {
			t.Fatalf("record %s/%s not tagged with a node", rec.Cat, rec.Name)
		}
		nodes[rec.Node] = true
		switch {
		case rec.Cat == "cluster" && rec.Name == "route":
			routeSpans++
		case rec.Cat == "cluster" && rec.Name == "forward":
			switch attr(rec, "outcome") {
			case "ok":
				fwdOK++
				if attr(rec, "backend") != resp.Backend {
					t.Fatalf("forward ok span backend %q, want %q", attr(rec, "backend"), resp.Backend)
				}
			case "transport_error":
				fwdErr++
				if attr(rec, "backend") != addrs[0] {
					t.Fatalf("transport_error forward backend %q, want the killed %q", attr(rec, "backend"), addrs[0])
				}
			}
		case rec.Cat == "cluster" && rec.Name == "failover" && rec.Kind == obs.KindEvent:
			failoverEvents++
		case rec.Cat == "pipeline" && rec.Kind == obs.KindSpan:
			pipeline[rec.Name] = true
		case rec.Cat == "sksm":
			sawSksm = true
		case rec.Cat == "tpm":
			sawTpm = true
		}
	}
	if !nodes["router"] || !nodes[resp.Backend] {
		t.Fatalf("stitched nodes %v, want router and %s", nodes, resp.Backend)
	}
	if routeSpans != 1 || fwdOK != 1 || fwdErr != 1 || failoverEvents != 1 {
		t.Fatalf("router spans route=%d forward(ok)=%d forward(transport_error)=%d failover=%d, want 1 each",
			routeSpans, fwdOK, fwdErr, failoverEvents)
	}
	for _, stage := range []string{"job", "execute", "quote", "verify"} {
		if !pipeline[stage] {
			t.Fatalf("stitched trace lacks pipeline span %q (have %v)", stage, pipeline)
		}
	}
	if !sawSksm || !sawTpm {
		t.Fatalf("stitched trace lacks hardware spans: sksm=%v tpm=%v", sawSksm, sawTpm)
	}

	// Every parent link must resolve across process boundaries, and after
	// skew correction each child interval must nest inside its parent's.
	spans := map[uint64]obs.Record{}
	for _, rec := range recs {
		if rec.Kind == obs.KindSpan {
			spans[rec.ID] = rec
		}
	}
	const eps = int64(5 * time.Millisecond)
	for _, rec := range recs {
		if rec.Parent == 0 {
			continue
		}
		p, ok := spans[rec.Parent]
		if !ok {
			t.Fatalf("%s/%s has dangling parent %d", rec.Cat, rec.Name, rec.Parent)
		}
		if rec.WallStart < p.WallStart-eps {
			t.Fatalf("%s/%s starts %v before its parent %s/%s", rec.Cat, rec.Name,
				time.Duration(p.WallStart-rec.WallStart), p.Cat, p.Name)
		}
		if rec.Kind == obs.KindSpan {
			end, pend := rec.WallStart+rec.WallDur, p.WallStart+p.WallDur
			if end > pend+eps {
				t.Fatalf("%s/%s ends %v after its parent %s/%s", rec.Cat, rec.Name,
					time.Duration(end-pend), p.Cat, p.Name)
			}
		}
	}

	// The SLO tracker saw the routed request under its wire tenant, with
	// the trace as its latency exemplar, and the bound registry exposes
	// the burn-rate gauges plus the OpenMetrics exemplar on p99.
	snap := slo.Snapshot()
	var acme *obs.TenantSLO
	for i := range snap.Tenants {
		if snap.Tenants[i].Tenant == "acme" {
			acme = &snap.Tenants[i]
		}
	}
	if acme == nil || acme.Requests != 1 {
		t.Fatalf("SLO snapshot missing tenant acme: %+v", snap.Tenants)
	}
	if acme.P99Trace != resp.TraceID {
		t.Fatalf("p99 exemplar %q, want %q", acme.P99Trace, resp.TraceID)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`cluster_slo_burn_rate{tenant="acme",window="1m0s"}`,
		`cluster_slo_requests_total{tenant="acme"} 1`,
		`# {trace_id="` + resp.TraceID + `"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// legacyBackend is the wire shape of a pre-trace palservd: it answers ping,
// stats, and run (dropping the unknown trace/tenant JSON fields exactly as
// an old decoder would), and reports an unknown op for health and trace.
func legacyBackend(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					body, err := palsvc.ReadFrame(c)
					if err != nil {
						return
					}
					var req struct {
						Op string `json:"op"`
					}
					var resp map[string]any
					if err := json.Unmarshal(body, &req); err != nil {
						resp = map[string]any{"err": err.Error()}
					} else {
						switch req.Op {
						case "ping":
							resp = map[string]any{"ok": true}
						case "stats":
							resp = map[string]any{"ok": true, "stats": &palsvc.Metrics{}}
						case "run":
							resp = map[string]any{"ok": true, "output": []byte("legacy")}
						default:
							resp = map[string]any{"err": `palsvc: unknown op "` + req.Op + `"`}
						}
					}
					out, _ := json.Marshal(resp)
					if err := palsvc.WriteFrame(c, out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestClusterTraceOldBackendCompat: a traced router over an old backend
// still routes (the backend drops the propagated fields), still hands the
// tenant a trace ID (the router's own spans exist even if the backend's
// don't), and StitchTrace degrades to the nodes that answered instead of
// failing outright.
func TestClusterTraceOldBackendCompat(t *testing.T) {
	legacy := legacyBackend(t)
	tracer := obs.NewTracer(0)
	tracer.SetNode(0xBB)
	r := newTestRouter(t, []string{legacy}, func(c *Config) {
		c.Tracer = tracer
		c.SLO = obs.NewSLOTracker(obs.SLOConfig{})
		c.ProbeInterval = time.Second
	})
	addr := serveRouter(t, r)

	cl, err := palsvc.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Run(&palsvc.WireRequest{Name: "old", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run via old backend failed: %s", resp.Err)
	}
	if resp.TraceID == "" {
		t.Fatal("router did not stamp its trace onto an old backend's answer")
	}

	dump, err := r.StitchTrace(resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Records) == 0 {
		t.Fatal("stitch over an old fleet lost the router's own spans")
	}
	for _, rec := range dump.Records {
		if rec.Node != "router" {
			t.Fatalf("old backend contributed record %s/%s from node %q", rec.Cat, rec.Name, rec.Node)
		}
	}
}
