package cluster

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
	"minimaltcb/internal/sim"
)

// metrics is the router's own mutable state: cluster-level routing counters
// and the end-to-end latency distribution measured at the routing layer
// (queue wait inside a backend included — it is what a tenant sees).
type metrics struct {
	mu       sync.Mutex
	routedOK uint64 // answered requests, any backend, OK
	routed   uint64 // answered requests, any backend, any outcome
	stolen   uint64 // answers that came from a steal target, not the primary
	shed     uint64 // cluster-wide shed_load answers
	downed   uint64 // backends drained after transport failures
	drained  uint64 // backends drained on reported fleet-wide quarantine
	rejoined uint64 // backends re-added to the ring after recovery
	lat      sim.Sample
}

func (m *metrics) observe(d time.Duration, ok bool) {
	m.mu.Lock()
	m.routed++
	if ok {
		m.routedOK++
	}
	m.lat.Add(d)
	m.mu.Unlock()
}

func (m *metrics) incStolen()   { m.mu.Lock(); m.stolen++; m.mu.Unlock() }
func (m *metrics) incShed()     { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *metrics) incDowned()   { m.mu.Lock(); m.downed++; m.mu.Unlock() }
func (m *metrics) incDrained()  { m.mu.Lock(); m.drained++; m.mu.Unlock() }
func (m *metrics) incRejoined() { m.mu.Lock(); m.rejoined++; m.mu.Unlock() }

// BackendSnapshot is one backend's row in the cluster snapshot.
type BackendSnapshot struct {
	Addr        string            `json:"addr"`
	State       string            `json:"state"`
	InRing      bool              `json:"in_ring"`
	ConsecFails int               `json:"consec_fails"`
	LastProbe   time.Time         `json:"last_probe,omitempty"`
	Health      palsvc.HealthInfo `json:"health"`
	Routed      uint64            `json:"routed"`
	Stolen      uint64            `json:"stolen"`
	Rejects     uint64            `json:"rejects"`
	Transport   uint64            `json:"transport_errors"`
	Batched     uint64            `json:"batched,omitempty"`
	Latency     palsvc.StageStats `json:"latency"`
	Stats       *palsvc.Metrics   `json:"stats,omitempty"`
}

// Snapshot is the router's full observable state, served on /debug/cluster.
type Snapshot struct {
	RingMembers []string          `json:"ring_members"`
	Routed      uint64            `json:"routed"`
	RoutedOK    uint64            `json:"routed_ok"`
	Stolen      uint64            `json:"stolen"`
	Shed        uint64            `json:"shed"`
	Downed      uint64            `json:"backends_downed"`
	Drained     uint64            `json:"backends_drained"`
	Rejoined    uint64            `json:"backends_rejoined"`
	Latency     palsvc.StageStats `json:"latency"`
	Backends    []BackendSnapshot `json:"backends"`
	Cluster     palsvc.Metrics    `json:"cluster_stats"`
}

// Snapshot assembles the current cluster view.
func (r *Router) Snapshot() Snapshot {
	m := r.metrics
	m.mu.Lock()
	snap := Snapshot{
		RingMembers: nil,
		Routed:      m.routed,
		RoutedOK:    m.routedOK,
		Stolen:      m.stolen,
		Shed:        m.shed,
		Downed:      m.downed,
		Drained:     m.drained,
		Rejoined:    m.rejoined,
		Latency:     palsvc.StageStatsOf(&m.lat),
	}
	m.mu.Unlock()
	snap.RingMembers = r.ring.Members()
	for _, b := range r.backends {
		b.mu.Lock()
		bs := BackendSnapshot{
			Addr:        b.addr,
			State:       b.state.String(),
			ConsecFails: b.consecFails,
			LastProbe:   b.lastProbe,
			Health:      b.lastHealth,
			Latency:     palsvc.StageStatsOf(&b.lat),
			Stats:       b.lastStats,
		}
		b.mu.Unlock()
		bs.InRing = r.ring.Has(b.addr)
		bs.Routed = b.routed.Load()
		bs.Stolen = b.stolen.Load()
		bs.Rejects = b.rejects.Load()
		bs.Transport = b.transport.Load()
		bs.Batched = b.batched.Load()
		snap.Backends = append(snap.Backends, bs)
	}
	snap.Cluster = r.ClusterStats()
	return snap
}

// DebugHandler serves the snapshot as JSON — the /debug/cluster endpoint.
func (r *Router) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// bindRegistry exposes the router's cluster-level instruments: routing and
// resilience counters, per-backend routing counters and state gauges, the
// router-measured end-to-end latency quantiles (the cluster p50/p99 the
// acceptance run reads), and the aggregated per-backend job counters.
// Everything is callback-backed: a scrape reads live values, the request
// path pays nothing extra.
func (r *Router) bindRegistry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := r.metrics
	counter := func(name, help string, read func(*metrics) uint64) {
		reg.CounterFunc(name, help, func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(read(m))
		})
	}
	counter("cluster_requests_routed_total", "Run requests answered by some backend.",
		func(m *metrics) uint64 { return m.routed })
	counter("cluster_requests_ok_total", "Run requests answered successfully.",
		func(m *metrics) uint64 { return m.routedOK })
	counter("cluster_requests_stolen_total", "Run requests answered by a steal target after the primary saturated or failed.",
		func(m *metrics) uint64 { return m.stolen })
	counter("cluster_requests_shed_total", "Run requests shed because every placement candidate rejected or was unreachable.",
		func(m *metrics) uint64 { return m.shed })
	counter("cluster_backends_downed_total", "Backends drained from the ring after consecutive transport failures.",
		func(m *metrics) uint64 { return m.downed })
	counter("cluster_backends_drained_total", "Backends drained from the ring after reporting fleet-wide quarantine.",
		func(m *metrics) uint64 { return m.drained })
	counter("cluster_backends_rejoined_total", "Backends re-added to the ring after recovery.",
		func(m *metrics) uint64 { return m.rejoined })

	reg.GaugeFunc("cluster_ring_size", "Backends currently in the consistent-hash ring.",
		func() float64 { return float64(r.ring.Size()) })

	obs.RegisterLatencyQuantiles(reg, "cluster_request_latency_seconds",
		"Router-measured end-to-end request latency, by quantile.",
		func() (p50, p95, p99, max float64) {
			m.mu.Lock()
			defer m.mu.Unlock()
			ps := m.lat.Percentiles(50, 95, 99)
			return ps[0].Seconds(), ps[1].Seconds(), ps[2].Seconds(), m.lat.Max().Seconds()
		})

	for _, b := range r.backends {
		b := b
		lbl := obs.Label{Name: "backend", Value: b.addr}
		reg.CounterFunc("cluster_backend_routed_total",
			"Requests answered by this backend as its primary placement.",
			func() float64 { return float64(b.routed.Load()) }, lbl)
		reg.CounterFunc("cluster_backend_stolen_total",
			"Requests answered by this backend as a work-stealing target.",
			func() float64 { return float64(b.stolen.Load()) }, lbl)
		reg.CounterFunc("cluster_backend_rejects_total",
			"Admission rejections this backend returned.",
			func() float64 { return float64(b.rejects.Load()) }, lbl)
		reg.CounterFunc("cluster_backend_transport_errors_total",
			"Transport failures (dial, timeout, torn connection) against this backend.",
			func() float64 { return float64(b.transport.Load()) }, lbl)
		reg.CounterFunc("cluster_backend_batched_total",
			"Answered run requests this backend attested inside a batch quote.",
			func() float64 { return float64(b.batched.Load()) }, lbl)
		reg.GaugeFunc("cluster_backend_state",
			"Backend state: 0 healthy, 1 saturated, 2 draining, 3 down.",
			func() float64 { return float64(b.State()) }, lbl)
		reg.GaugeFunc("cluster_backend_free_sepcrs",
			"Free sePCRs the backend reported on its last health probe.",
			func() float64 { h, _ := b.health(); return float64(h.FreeSePCRs) }, lbl)
	}

	// Aggregated job counters: the cluster-wide view of the per-backend
	// palsvc metrics, summed at scrape time from the probers' snapshots.
	agg := func(name, help string, read func(*palsvc.Metrics) uint64) {
		reg.CounterFunc(name, help, func() float64 {
			var n uint64
			for _, b := range r.backends {
				if s := b.stats(); s != nil {
					n += read(s)
				}
			}
			return float64(n)
		})
	}
	agg("cluster_jobs_submitted_total", "Jobs submitted across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.Submitted })
	agg("cluster_jobs_completed_total", "Jobs completed across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.Completed })
	agg("cluster_quote_batches_total", "Batch quotes signed across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.QuoteBatches })
	agg("cluster_quote_signs_total", "AIK signatures spent in the quote stage across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.QuoteSigns })
	agg("cluster_jobs_failed_total", "Jobs failed across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.Failed })
	agg("cluster_jobs_retried_total", "Supervisor retries across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.Retried })
	agg("cluster_machine_quarantines_total", "Replica quarantine trips across all backends (prober-sampled).",
		func(m *palsvc.Metrics) uint64 { return m.Quarantines })
}
