package cluster

import (
	"fmt"
	"testing"
)

func ringAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:7080", i+1)
	}
	return addrs
}

func ringKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = RouteKey(fmt.Sprintf("job source variant %d", i))
	}
	return keys
}

func TestRingDistribution(t *testing.T) {
	const backends, keys = 8, 10000
	r := NewRing(0)
	for _, a := range ringAddrs(backends) {
		r.Add(a)
	}
	counts := make(map[string]int)
	for _, k := range ringKeys(keys) {
		counts[r.Primary(k)]++
	}
	if len(counts) != backends {
		t.Fatalf("keys landed on %d backends, want all %d", len(counts), backends)
	}
	// With 64 vnodes per backend the shares won't be exactly keys/backends,
	// but every backend must carry a meaningful fraction of its fair share.
	fair := keys / backends
	for a, n := range counts {
		if n < fair/3 || n > fair*3 {
			t.Errorf("backend %s owns %d keys, outside [%d, %d] around fair share %d",
				a, n, fair/3, fair*3, fair)
		}
	}
}

// TestRingStabilityOnLeave is the consistent-hashing contract the router's
// cache affinity rests on: removing one of N backends remaps exactly the
// keys that backend owned — everything else keeps its primary, so the other
// N-1 image caches stay hot — and that ownership share is small (the issue's
// acceptance bound: at most 2/N of all keys).
func TestRingStabilityOnLeave(t *testing.T) {
	const backends, nkeys = 8, 10000
	addrs := ringAddrs(backends)
	r := NewRing(0)
	for _, a := range addrs {
		r.Add(a)
	}
	keys := ringKeys(nkeys)
	before := make([]string, nkeys)
	for i, k := range keys {
		before[i] = r.Primary(k)
	}

	victim := addrs[3]
	r.Remove(victim)
	var owned, remapped int
	for i, k := range keys {
		after := r.Primary(k)
		if before[i] == victim {
			owned++
			if after == victim {
				t.Fatalf("key %d still maps to removed backend %s", i, victim)
			}
			continue
		}
		if after != before[i] {
			remapped++
		}
	}
	if remapped != 0 {
		t.Errorf("%d keys not owned by the removed backend changed primaries", remapped)
	}
	if limit := 2 * nkeys / backends; owned > limit {
		t.Errorf("removed backend owned %d/%d keys, above the 2/N bound %d", owned, nkeys, limit)
	}
	if owned == 0 {
		t.Error("removed backend owned zero keys; the ring never placed anything on it")
	}

	// Re-adding it restores the original placement exactly.
	r.Add(victim)
	for i, k := range keys {
		if got := r.Primary(k); got != before[i] {
			t.Fatalf("after rejoin key %d maps to %s, want original %s", i, got, before[i])
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(0)
	addrs := ringAddrs(4)
	for _, a := range addrs {
		r.Add(a)
	}
	for _, k := range ringKeys(64) {
		got := r.Successors(k, 10) // more than the membership: must cap at 4
		if len(got) != len(addrs) {
			t.Fatalf("Successors returned %d members, want %d", len(got), len(addrs))
		}
		seen := make(map[string]bool)
		for _, a := range got {
			if seen[a] {
				t.Fatalf("Successors repeated %s: %v", a, got)
			}
			seen[a] = true
		}
		if got[0] != r.Primary(k) {
			t.Fatalf("Successors[0] = %s, want Primary %s", got[0], r.Primary(k))
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Primary(42); got != "" {
		t.Fatalf("empty ring Primary = %q, want empty", got)
	}
	if got := r.Successors(42, 3); len(got) != 0 {
		t.Fatalf("empty ring Successors = %v, want none", got)
	}
}
