// Package cluster shards PAL jobs across multiple palservd backends behind
// one front-end speaking the same length-prefixed wire protocol
// (internal/palsvc/wire.go) on both sides — the distribution fabric the
// paper's single-machine measurements stop short of, and the SoK on
// hardware TEEs frames as the real scaling problem: many isolated execution
// units behind a routing/attestation layer.
//
// Placement is a consistent-hash ring keyed by the job's image measurement
// (the same digest palsvc's image cache keys on), so repeated submissions of
// one PAL land on one shard and keep its decode/measure/verify caches hot.
// When that shard's sePCR bank or queue saturates, the router performs
// bounded work stealing — walking the ring to the next distinct backend
// instead of rejecting — and only when every live backend has rejected does
// it return the typed, retryable shed_load rejection cluster-wide. A health
// prober drives PR5's resilience signals across nodes: backends that stop
// answering (wedged, killed) or report fleet-wide quarantine are drained
// from the ring and rejoin when they recover.
package cluster

import (
	"sort"
	"sync"

	"minimaltcb/internal/tpm"
)

// DefaultVNodes is the virtual-node count per backend. 64 points per
// backend keeps the keyspace split within a few percent of even for
// single-digit cluster sizes while the ring stays small enough that a
// membership change rebuilds it in microseconds.
const DefaultVNodes = 64

// fnv64a is the ring's hash: stdlib-only, stable across runs (placement
// must not depend on process randomness — a restarted router has to agree
// with its predecessor about where images live).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// RouteKey hashes a job's placement identity. The digest is the PAL
// *source* measurement — exactly the key palsvc's image cache uses — so
// affinity follows the attested identity, not the tenant name: two tenants
// submitting byte-identical source share a shard and its warm caches.
func RouteKey(source string) uint64 {
	d := tpm.Measure([]byte(source))
	return fnv64a(d[:])
}

// mix64 is a 64-bit finalizer (the MurmurHash3 constants) applied to
// virtual-node hashes. FNV's avalanche on the *last* bytes of short keys is
// weak, and vnode keys differ only in their index suffix — without the
// finalizer a backend's 64 points clump and the keyspace splits up to 5x
// uneven.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	addr string
}

// Ring is a consistent-hash ring over backend addresses. Membership changes
// (Add/Remove) rebuild the sorted point list; lookups are a binary search
// under a read lock. Removing a backend remaps only the keys that hashed to
// its virtual nodes — ~1/N of the keyspace — which is the property the
// stability test pins.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point
	member map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// backend (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

// Add inserts a backend's virtual nodes. Adding a present member is a
// no-op.
func (r *Ring) Add(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[addr] {
		return
	}
	r.member[addr] = true
	for i := 0; i < r.vnodes; i++ {
		key := []byte(addr)
		key = append(key, '#', byte(i), byte(i>>8))
		r.points = append(r.points, point{hash: mix64(fnv64a(key)), addr: addr})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove drains a backend's virtual nodes. Removing an absent member is a
// no-op.
func (r *Ring) Remove(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[addr] {
		return
	}
	delete(r.member, addr)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.addr != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(addr string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.member[addr]
}

// Members returns the live backends in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for a := range r.member {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Size returns the live-member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Successors returns up to n distinct backends clockwise from key: the
// primary placement first, then the work-stealing fallbacks in ring order.
// The ordering is a pure function of (membership, key), so every request
// for one image walks the same failover chain and steals still benefit from
// whatever cache heat earlier steals built.
func (r *Ring) Successors(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}

// Primary returns the first successor, or "" on an empty ring.
func (r *Ring) Primary(key uint64) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}
