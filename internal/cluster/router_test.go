package cluster

import (
	"testing"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/palsvc"
)

// TestRouterAffinity pins the tentpole routing property: every submission
// of one image lands on the same backend — the ring's primary for that
// source — so that backend's decode/measure/verify caches take every hit.
func TestRouterAffinity(t *testing.T) {
	sA, lA := startBackend(t, palsvc.Config{})
	sB, lB := startBackend(t, palsvc.Config{})
	r := newTestRouter(t, []string{lA.Addr().String(), lB.Addr().String()}, nil)
	addr := serveRouter(t, r)

	cl, err := palsvc.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	want := r.Placement(helloSource)
	if len(want) != 2 {
		t.Fatalf("placement chain %v, want both backends", want)
	}
	const runs = 6
	for i := 0; i < runs; i++ {
		resp, err := cl.Run(&palsvc.WireRequest{Name: "affine", Source: helloSource})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("run %d failed: %s", i, resp.Err)
		}
		if resp.Backend != want[0] {
			t.Fatalf("run %d served by %s, want primary %s", i, resp.Backend, want[0])
		}
		if string(resp.Output) != "hello" {
			t.Fatalf("run %d output %q", i, resp.Output)
		}
	}

	// The affinity is what keeps one image cache hot: the primary compiled
	// the source once and served the rest from cache; the other backend
	// never saw it.
	primary, other := sA, sB
	if want[0] == lB.Addr().String() {
		primary, other = sB, sA
	}
	pm, om := primary.Metrics(), other.Metrics()
	if pm.CacheMisses != 1 || pm.CacheHits < runs-1 {
		t.Errorf("primary cache hits=%d misses=%d, want %d/1", pm.CacheHits, pm.CacheMisses, runs-1)
	}
	if om.Submitted != 0 {
		t.Errorf("non-primary backend saw %d submissions, want 0", om.Submitted)
	}

	snap := r.Snapshot()
	if snap.Routed != runs || snap.RoutedOK != runs || snap.Stolen != 0 {
		t.Errorf("snapshot routed=%d ok=%d stolen=%d, want %d/%d/0", snap.Routed, snap.RoutedOK, snap.Stolen, runs, runs)
	}
}

// TestRouterStealsOnSaturation saturates a job's primary shard (bank of one,
// reject admission, register held by a spinner) and checks the router
// transparently re-places the job on the next ring successor instead of
// surfacing the rejection.
func TestRouterStealsOnSaturation(t *testing.T) {
	cfg := palsvc.Config{Profile: testProfile(1), Admission: palsvc.AdmitReject, Quantum: 50 * time.Microsecond}
	sA, lA := startBackend(t, cfg)
	sB, lB := startBackend(t, cfg)
	addrA, addrB := lA.Addr().String(), lB.Addr().String()
	r := newTestRouter(t, []string{addrA, addrB}, nil)
	addr := serveRouter(t, r)

	src := sourceForPrimary(t, r, addrA)

	// Wedge A's only sePCR with a spinner submitted directly; its deadline
	// releases the register once the test is done with it.
	tk, err := sA.Submit(hogJob(1500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "spinner to hold A's register", func() bool {
		return sA.Metrics().SePCROccupancy == 1
	})

	cl, err := palsvc.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Run(&palsvc.WireRequest{Name: "stolen", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("steal run failed: %s (code %s)", resp.Err, resp.Code)
	}
	if resp.Backend != addrB {
		t.Fatalf("served by %s, want steal target %s", resp.Backend, addrB)
	}

	snap := r.Snapshot()
	if snap.Stolen != 1 {
		t.Errorf("snapshot stolen=%d, want 1", snap.Stolen)
	}
	for _, b := range snap.Backends {
		switch b.Addr {
		case addrA:
			if b.Rejects == 0 {
				t.Errorf("primary %s recorded no rejects", addrA)
			}
		case addrB:
			if b.Stolen != 1 {
				t.Errorf("steal target %s stolen=%d, want 1", addrB, b.Stolen)
			}
		}
	}
	if m := sB.Metrics(); m.Completed == 0 {
		t.Error("steal target completed nothing")
	}
	tk.Wait() // deadline-killed; the outcome is the wedge test's concern
}

// TestRouterShedsWhenRingExhausted pins the cluster-wide shed contract:
// only when every placement candidate has rejected does the tenant see a
// rejection, and it is the typed, retryable shed_load regardless of what
// the individual backends answered.
func TestRouterShedsWhenRingExhausted(t *testing.T) {
	cfg := palsvc.Config{Profile: testProfile(1), Admission: palsvc.AdmitReject, Quantum: 50 * time.Microsecond}
	sA, lA := startBackend(t, cfg)
	routerLog, err := audit.Open(audit.Config{Dir: t.TempDir(), Node: "router"})
	if err != nil {
		t.Fatal(err)
	}
	defer routerLog.Close()
	r := newTestRouter(t, []string{lA.Addr().String()}, func(c *Config) {
		c.Audit = routerLog
	})
	addr := serveRouter(t, r)

	tk, err := sA.Submit(hogJob(1500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "spinner to hold the register", func() bool {
		return sA.Metrics().SePCROccupancy == 1
	})

	cl, err := palsvc.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Run(&palsvc.WireRequest{Name: "shed-me", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("run succeeded with the whole ring saturated")
	}
	if !resp.Retryable {
		t.Error("cluster shed not marked retryable")
	}
	if resp.Code != palsvc.CodeShed {
		t.Errorf("shed code %q, want %q (backend said bank_exhausted; the cluster decision rewrites it)", resp.Code, palsvc.CodeShed)
	}
	if resp.Backend != "" {
		t.Errorf("shed response attributed to backend %q, want none", resp.Backend)
	}
	if snap := r.Snapshot(); snap.Shed != 1 {
		t.Errorf("snapshot shed=%d, want 1", snap.Shed)
	}

	// The cluster-wide refusal is a trust decision: it must be on the
	// router's audit record, and the audit wire op must surface it (outer
	// dump) along with the backend's own log (nested).
	shedEvents, _ := routerLog.Select(audit.Query{})
	var sawShed bool
	for _, e := range shedEvents {
		if e.Type == audit.EventRouteShed {
			sawShed = true
		}
	}
	if !sawShed {
		t.Errorf("no %s event in the router audit log (%d events)", audit.EventRouteShed, len(shedEvents))
	}
	dump, err := cl.Audit(&palsvc.WireRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if dump.Node != "router" {
		t.Errorf("audit op outer node %q, want router", dump.Node)
	}
	if len(dump.Nodes) != 0 {
		// The single backend has no audit log configured, so the fleet
		// view carries no nested dumps — reaching it must not error.
		t.Errorf("unexpected nested dumps: %d", len(dump.Nodes))
	}

	tk.Wait() // deadline-killed, register freed

	// Capacity back: the same image now runs — the shed really was
	// retryable.
	waitFor(t, 5*time.Second, "register to free", func() bool {
		return sA.Metrics().SePCROccupancy == 0
	})
	resp, err = cl.Run(&palsvc.WireRequest{Name: "shed-me", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("post-shed retry failed: %s", resp.Err)
	}
}

// TestProberDrainsSheddingBackend feeds the router a backend reporting
// fleet-wide quarantine (PR5's shed signal) and checks the prober drains it
// from the ring, counts its replicas as quarantined cluster-wide, and
// rejoins it when it recovers.
func TestProberDrainsSheddingBackend(t *testing.T) {
	_, lA := startBackend(t, palsvc.Config{})
	stub := startStub(t, &palsvc.HealthInfo{
		Replicas: 2, QuarantinedReplicas: 2, Bank: 8, QueueCap: 64, Shedding: true,
	}, palsvc.Metrics{})
	r := newTestRouter(t, []string{lA.Addr().String(), stub.addr()}, nil)

	waitFor(t, 5*time.Second, "shedding backend to drain", func() bool {
		return !r.Ring().Has(stub.addr())
	})
	if snap := r.Snapshot(); snap.Drained == 0 {
		t.Error("drain not counted")
	}
	h := r.ClusterHealth()
	if h.QuarantinedReplicas < 2 {
		t.Errorf("cluster health quarantined=%d, want the drained backend's 2 replicas counted", h.QuarantinedReplicas)
	}
	if h.Shedding {
		t.Error("cluster marked shedding with a healthy backend still in the ring")
	}

	// Placement must avoid the drained backend entirely.
	for i := 0; i < 32; i++ {
		for _, a := range r.Placement(sourceForPrimary(t, r, lA.Addr().String())) {
			if a == stub.addr() {
				t.Fatal("drained backend still in a placement chain")
			}
		}
	}

	// Recovery: quarantine expired, replicas back.
	stub.setHealth(&palsvc.HealthInfo{Replicas: 2, Bank: 8, QueueCap: 64, FreeSePCRs: 8})
	waitFor(t, 5*time.Second, "recovered backend to rejoin", func() bool {
		return r.Ring().Has(stub.addr())
	})
	if snap := r.Snapshot(); snap.Rejoined == 0 {
		t.Error("rejoin not counted")
	}
}

// TestProberHealthFallbackOldServer points the router (and a bare client)
// at a server that predates the health op: the probe must degrade to the
// stats op instead of failing, and the backend stays in the ring.
func TestProberHealthFallbackOldServer(t *testing.T) {
	stub := startStub(t, nil, palsvc.Metrics{
		QueueDepth: 3, SePCRCapacity: 8, SePCROccupancy: 2,
	})

	// Client-level: Health() synthesizes a degraded HealthInfo from stats.
	cl, err := palsvc.Dial(stub.addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Health()
	if err != nil {
		t.Fatalf("health fallback failed: %v", err)
	}
	if !h.Degraded {
		t.Error("fallback HealthInfo not marked degraded")
	}
	if h.QueueDepth != 3 || h.FreeSePCRs != 6 || h.Bank != 8 {
		t.Errorf("fallback health %+v, want queue=3 free=6 bank=8", h)
	}

	// Router-level: the prober keeps the old server in rotation.
	r := newTestRouter(t, []string{stub.addr()}, nil)
	waitFor(t, 5*time.Second, "prober to record a degraded health snapshot", func() bool {
		for _, b := range r.Snapshot().Backends {
			if b.Addr == stub.addr() && b.Health.Degraded {
				return true
			}
		}
		return false
	})
	if !r.Ring().Has(stub.addr()) {
		t.Error("old server drained from the ring despite answering stats")
	}
}

// TestRouterFailsOverDeadBackend kills one backend's network presence and
// checks requests keyed to it are served by the survivor with no
// tenant-visible error, and the dead backend is drained after ProbeFails.
func TestRouterFailsOverDeadBackend(t *testing.T) {
	_, lA := startBackend(t, palsvc.Config{})
	sB, lB := startBackend(t, palsvc.Config{})
	addrA, addrB := lA.Addr().String(), lB.Addr().String()
	r := newTestRouter(t, []string{addrA, addrB}, nil)
	addr := serveRouter(t, r)
	src := sourceForPrimary(t, r, addrA)

	lA.Kill()

	cl, err := palsvc.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Run(&palsvc.WireRequest{Name: "failover", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("failover run rejected: %s (code %s)", resp.Err, resp.Code)
	}
	if resp.Backend != addrB {
		t.Fatalf("served by %s, want survivor %s", resp.Backend, addrB)
	}
	if sB.Metrics().Completed == 0 {
		t.Error("survivor completed nothing")
	}

	waitFor(t, 5*time.Second, "dead backend to leave the ring", func() bool {
		return !r.Ring().Has(addrA)
	})
	snap := r.Snapshot()
	if snap.Downed == 0 {
		t.Error("down transition not counted")
	}
	for _, b := range snap.Backends {
		if b.Addr == addrA && b.State != StateDown.String() {
			t.Errorf("dead backend state %s, want %s", b.State, StateDown)
		}
	}
}

// TestClusterAggregation drives jobs through the router and checks the
// stats and health ops answer with fleet-wide sums.
func TestClusterAggregation(t *testing.T) {
	sA, lA := startBackend(t, palsvc.Config{})
	sB, lB := startBackend(t, palsvc.Config{})
	r := newTestRouter(t, []string{lA.Addr().String(), lB.Addr().String()}, nil)
	addr := serveRouter(t, r)

	cl, err := palsvc.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One image pinned to each backend so both sides contribute.
	for _, src := range []string{
		sourceForPrimary(t, r, lA.Addr().String()),
		sourceForPrimary(t, r, lB.Addr().String()),
	} {
		for i := 0; i < 3; i++ {
			resp, err := cl.Run(&palsvc.WireRequest{Name: "agg", Source: src})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.OK {
				t.Fatalf("run failed: %s", resp.Err)
			}
		}
	}

	wantSub := sA.Metrics().Submitted + sB.Metrics().Submitted
	if wantSub != 6 {
		t.Fatalf("backends submitted %d jobs total, want 6", wantSub)
	}
	// Stats are prober-sampled; wait for a cycle to observe the final state.
	waitFor(t, 5*time.Second, "prober to sample final stats", func() bool {
		m, err := cl.Stats()
		return err == nil && m.Submitted == wantSub
	})
	m, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 6 || m.Submitted != 6 {
		t.Errorf("cluster stats submitted=%d completed=%d, want 6/6", m.Submitted, m.Completed)
	}
	if m.Execute.N != 6 {
		t.Errorf("merged execute stage n=%d, want 6", m.Execute.N)
	}

	h, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Replicas != 2 {
		t.Errorf("cluster health replicas=%d, want 2", h.Replicas)
	}
	if h.Bank != sA.Bank()+sB.Bank() {
		t.Errorf("cluster health bank=%d, want %d", h.Bank, sA.Bank()+sB.Bank())
	}
	if h.Shedding {
		t.Error("cluster health shedding with both backends live")
	}
}
