package cluster

import (
	"fmt"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/chaos"
	"minimaltcb/internal/palsvc"
)

// TestClusterFailoverSoak is the cluster's accountability gate, the
// fleet-level twin of palsvc's TestSoakZeroLossUnderChaos: three backends
// under the PR5 fault mix behind one router, multi-tenant open load, and one
// backend's network presence killed mid-run. It pins the failover contract:
//
//   - tenants see zero transport errors — the router absorbs the death
//   - every request gets exactly one classified answer
//   - every backend's terminal counters still partition its Submitted
//     (no job lost inside any node, killed one included)
//   - the dead backend is marked Down and drained from the ring
//   - no backend leaks sePCRs or arbitration slots
//
// Tunables:
//
//	CLUSTER_SOAK_PROFILE   chaos profile per backend  (default "soak")
//	CLUSTER_SOAK_DURATION  load duration              (default "1200ms")
//	CLUSTER_SOAK_SEED      injector seed              (default 1)
func TestClusterFailoverSoak(t *testing.T) {
	p, err := chaos.ParseProfile(envOr("CLUSTER_SOAK_PROFILE", "soak"))
	if err != nil {
		t.Fatalf("CLUSTER_SOAK_PROFILE: %v", err)
	}
	dur, err := time.ParseDuration(envOr("CLUSTER_SOAK_DURATION", "1200ms"))
	if err != nil {
		t.Fatalf("CLUSTER_SOAK_DURATION: %v", err)
	}
	seed, err := strconv.ParseUint(envOr("CLUSTER_SOAK_SEED", "1"), 10, 64)
	if err != nil {
		t.Fatalf("CLUSTER_SOAK_SEED: %v", err)
	}

	const nBackends = 3

	// Every node gets its own tamper-evident audit log — the three
	// backends (AIK-signed heads) plus the router (unsigned, control
	// plane). The cleanup is registered before the backends', so it runs
	// after every service has closed and sealed its final head: the whole
	// fleet's logs, the killed node's included, must replay offline with
	// zero gaps and zero unverifiable entries.
	auditRoot := t.TempDir()
	var auditLogs []*audit.Log
	var auditDirs []string
	t.Cleanup(func() {
		for i, l := range auditLogs {
			l.Close()
			if l.Dropped() != 0 {
				t.Errorf("audit log %s dropped %d events", auditDirs[i], l.Dropped())
			}
			arep, err := audit.VerifyChain(auditDirs[i])
			if err != nil {
				t.Errorf("audit verify %s: %v", auditDirs[i], err)
				continue
			}
			if err := arep.Err(); err != nil {
				t.Errorf("audit log %s does not verify after soak: %v", auditDirs[i], err)
			}
			if arep.Uncovered != 0 {
				t.Errorf("audit log %s: %d events not covered by the final head", auditDirs[i], arep.Uncovered)
			}
		}
	})
	openAudit := func(node string) *audit.Log {
		dir := filepath.Join(auditRoot, node)
		l, err := audit.Open(audit.Config{Dir: dir, Node: node, HeadEvery: 64})
		if err != nil {
			t.Fatal(err)
		}
		auditLogs = append(auditLogs, l)
		auditDirs = append(auditDirs, dir)
		return l
	}

	var (
		services  []*palsvc.Service
		listeners []*killableListener
		addrs     []string
	)
	for i := 0; i < nBackends; i++ {
		s, l := startBackend(t, palsvc.Config{
			Machines: 2, Workers: 8,
			Quantum:    50 * time.Microsecond,
			Chaos:      chaos.New(seed+uint64(i), p),
			Retry:      palsvc.DefaultRetryPolicy(),
			Supervisor: palsvc.SupervisorPolicy{QuarantineAfter: 4, QuarantineFor: 5 * time.Millisecond},
			Audit:      openAudit(fmt.Sprintf("backend-%d", i)),
			Batch:      palsvc.DefaultBatchPolicy(), // every backend runs the batched pipeline
		})
		services = append(services, s)
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	routerLog := openAudit("router")
	r := newTestRouter(t, addrs, func(c *Config) {
		c.RequestTimeout = 10 * time.Second
		c.Audit = routerLog
	})
	addr := serveRouter(t, r)

	// Kill one backend's network a third of the way in — long before the
	// run ends, so the cluster demonstrably keeps serving after the loss.
	victim := addrs[nBackends-1]
	killed := time.AfterFunc(dur/3, func() { listeners[nBackends-1].Kill() })
	defer killed.Stop()

	rep, err := palsvc.RunLoad(palsvc.LoadConfig{
		Addr: addr, Clients: 6, Tenants: 4, Duration: dur,
		DialTimeout: 5 * time.Second,
		Name:        "csoak", Source: slowSource, Input: []byte("soak"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cluster soak seed %d profile [%v]: %v", seed, p, rep)

	// Tenant view: the router never surfaced the backend death as a
	// transport failure, and every request got exactly one classified
	// answer.
	if rep.ConnErrors != 0 {
		t.Fatalf("tenants saw %d transport errors; the router leaked a backend failure", rep.ConnErrors)
	}
	if got := rep.OK + rep.Rejected + rep.DeadlineExceeded + rep.Failed; got != rep.Sent {
		t.Fatalf("lost responses: sent=%d but outcomes sum to %d", rep.Sent, got)
	}
	if rep.OK == 0 {
		t.Fatal("no job ever completed under the cluster soak")
	}
	if len(rep.PerBackend) == 0 {
		t.Fatal("router stamped no Backend fields; per-backend breakdown empty")
	}

	// The victim must be detected, marked Down, and drained.
	waitFor(t, 5*time.Second, "victim to leave the ring", func() bool {
		return !r.Ring().Has(victim)
	})
	snap := r.Snapshot()
	if snap.Downed == 0 {
		t.Error("no down transition counted after killing a backend")
	}
	for _, b := range snap.Backends {
		if b.Addr == victim && b.State != StateDown.String() {
			t.Errorf("victim state %s, want %s", b.State, StateDown)
		}
	}

	// The cluster still serves after the loss: a fresh tenant runs a job
	// end to end.
	cl, err := palsvc.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Run(&palsvc.WireRequest{Name: "after", Source: helloSource})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("post-kill run failed: %s (code %s)", resp.Err, resp.Code)
	}
	if resp.Backend == victim {
		t.Fatalf("post-kill run served by the dead backend %s", victim)
	}

	// Fleet audit view over the wire: the router aggregates the surviving
	// backends' logs, each under its own AIK-signed head; the dead node is
	// skipped, not fatal.
	fleet, err := r.FleetAudit(&palsvc.WireRequest{Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Nodes) < nBackends-1 {
		t.Errorf("fleet audit reached %d backend logs, want at least %d", len(fleet.Nodes), nBackends-1)
	}
	// A backend the balancer never picked has a legitimately empty log;
	// every backend that recorded anything must present a signed head
	// covering its tail, and at least one must have recorded something.
	signed := 0
	for _, nd := range fleet.Nodes {
		if nd.Size == 0 {
			continue
		}
		if nd.Head == nil {
			t.Errorf("fleet audit: backend %s has no tree head over %d events", nd.Node, nd.Size)
			continue
		}
		if len(nd.Head.Sig) == 0 {
			t.Errorf("fleet audit: backend %s head is unsigned", nd.Node)
			continue
		}
		if nd.Head.Size != nd.Size {
			t.Errorf("fleet audit: backend %s head covers %d of %d events", nd.Node, nd.Head.Size, nd.Size)
			continue
		}
		signed++
	}
	if signed == 0 {
		t.Error("fleet audit: no backend presented a signed head over a non-empty log")
	}

	// Server view, every node including the killed one (its service is
	// still running — only its network died): wait for queues to drain,
	// then check the terminal counters partition Submitted and nothing
	// leaked.
	for i, s := range services {
		s := s
		waitFor(t, 10*time.Second, "backend queue to drain", func() bool {
			m := s.Metrics()
			done := m.Completed + m.Failed + m.DeadlineExceeded + m.RejectedBank + m.RejectedShed
			return done == m.Submitted && m.SePCROccupancy == 0
		})
		m := s.Metrics()
		if got := m.Completed + m.Failed + m.DeadlineExceeded + m.RejectedBank + m.RejectedShed; got != m.Submitted {
			t.Errorf("backend %d terminal counters (%d) do not partition Submitted (%d)", i, got, m.Submitted)
		}
		if err := s.LeakCheck(); err != nil {
			t.Errorf("backend %d leaked after soak: %v", i, err)
		}
	}

	// Batching was on for every backend: batches formed somewhere in the
	// fleet, and the router observed batch-attested answers on the wire.
	var fleetBatches, fleetJobs uint64
	for _, s := range services {
		m := s.Metrics()
		fleetBatches += m.QuoteBatches
		fleetJobs += m.BatchedJobs
	}
	if fleetBatches == 0 {
		t.Error("no backend ever formed a batch quote during the cluster soak")
	}
	var wireBatched uint64
	for _, b := range snap.Backends {
		wireBatched += b.Batched
	}
	if fleetJobs > 0 && wireBatched == 0 {
		t.Errorf("backends batched %d jobs but the router saw batch_size on none of its answers", fleetJobs)
	}

	t.Logf("cluster snapshot: routed=%d ok=%d stolen=%d shed=%d downed=%d drained=%d rejoined=%d",
		snap.Routed, snap.RoutedOK, snap.Stolen, snap.Shed, snap.Downed, snap.Drained, snap.Rejoined)
}
