package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"minimaltcb/internal/audit"
	"minimaltcb/internal/obs"
	"minimaltcb/internal/palsvc"
)

// Config assembles a Router.
type Config struct {
	// Backends are the palservd addresses the router shards across. At
	// least one is required.
	Backends []string
	// VNodes is the consistent-hash virtual-node count per backend
	// (0 = DefaultVNodes).
	VNodes int
	// StealDepth bounds work stealing: a job saturated off its primary may
	// try up to this many further ring successors before the router sheds
	// it. 0 defaults to len(Backends)-1 (the whole ring); negative
	// disables stealing entirely.
	StealDepth int
	// PoolSize is the idle-connection pool per backend; default 8.
	PoolSize int
	// DialTimeout bounds backend dial+handshake; default 2s.
	DialTimeout time.Duration
	// RequestTimeout bounds each forwarded round trip; default 30s. This
	// is the lever that turns a wedged backend into a fast failover
	// instead of a hung tenant.
	RequestTimeout time.Duration
	// ProbeInterval is the health-prober period per backend; default
	// 100ms.
	ProbeInterval time.Duration
	// ProbeFails is the consecutive-transport-failure threshold (probe or
	// request) that marks a backend Down and drains it from the ring;
	// default 3.
	ProbeFails int
	// Registry, when non-nil, receives the router's cluster-level
	// instruments (see bindRegistry in metrics.go).
	Registry *obs.Registry
	// Tracer, when non-nil, records routing spans: one "route" span per
	// run request with a "forward" child per placement attempt, plus
	// "steal"/"failover" events as the walk continues past a backend. The
	// router adopts the tenant's propagated trace context (or mints a
	// root) and forwards it to backends, so a stitched cluster trace shows
	// the whole path. The trace wire op answers with a stitched
	// multi-node dump (see StitchTrace). Nil keeps routing unchanged and
	// passes tenant trace fields through verbatim.
	Tracer *obs.Tracer
	// SLO, when non-nil, accrues per-tenant burn-rate accounting at the
	// routing layer: every terminal answer (and every shed) is one
	// observation against the tenant's error budget, timed end-to-end as
	// the tenant experiences it. Bound to Registry under the "cluster"
	// prefix.
	SLO *obs.SLOTracker
	// Audit, when non-nil, is the router's own control-plane audit log: it
	// records cluster-level shed decisions (the only trust-relevant event
	// the router itself originates — a refusal to run work) and anchors the
	// fleet view the audit wire op answers with. Router heads are unsigned
	// (the router has no TPM); per-backend heads stay AIK-signed by their
	// own nodes. Nil disables router auditing.
	Audit *audit.Log
}

// ErrNoBackends is returned by New for an empty backend list.
var ErrNoBackends = errors.New("cluster: no backends configured")

// Router fronts a fleet of palservd backends with the palservd wire
// protocol: clients dial it exactly as they would a single server.
type Router struct {
	cfg      Config
	ring     *Ring
	backends []*backend
	byAddr   map[string]*backend
	metrics  *metrics
	auditRec *audit.Recorder // nil when Config.Audit is nil

	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// New validates cfg, builds the ring with every backend live, and starts
// one prober per backend. Backends that are down at start are detected and
// drained by their probers within ProbeFails*ProbeInterval.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, ErrNoBackends
	}
	if cfg.StealDepth == 0 {
		cfg.StealDepth = len(cfg.Backends) - 1
	}
	if cfg.StealDepth < 0 {
		cfg.StealDepth = 0
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	if cfg.ProbeFails <= 0 {
		cfg.ProbeFails = 3
	}
	r := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes),
		byAddr:  make(map[string]*backend, len(cfg.Backends)),
		metrics: &metrics{},
		stop:    make(chan struct{}),
	}
	for _, addr := range cfg.Backends {
		if _, dup := r.byAddr[addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %s", addr)
		}
		b := newBackend(addr, cfg.PoolSize, cfg.DialTimeout, cfg.RequestTimeout)
		r.backends = append(r.backends, b)
		r.byAddr[addr] = b
		// Optimistic start: every backend begins in the ring so the first
		// requests don't wait a probe cycle; a dead one costs its prober
		// ProbeFails intervals and its requesters one transport error each
		// (which steal onward) before it drains.
		r.ring.Add(addr)
	}
	r.auditRec = cfg.Audit.Recorder(nil, -1)
	r.bindRegistry(cfg.Registry)
	cfg.SLO.Bind(cfg.Registry, "cluster")
	for _, b := range r.backends {
		r.wg.Add(1)
		go r.probe(b)
	}
	return r, nil
}

// Close stops the probers and closes every pooled connection.
func (r *Router) Close() {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	r.closeMu.Unlock()
	r.wg.Wait()
	for _, b := range r.backends {
		b.drainPool()
	}
}

// Backends returns the configured backend addresses.
func (r *Router) Backends() []string { return append([]string(nil), r.cfg.Backends...) }

// Ring exposes the live ring (tests and /debug/cluster use it).
func (r *Router) Ring() *Ring { return r.ring }

// Placement returns the failover chain (primary first) the router would
// walk for a job with the given source right now.
func (r *Router) Placement(source string) []string {
	return r.ring.Successors(RouteKey(source), 1+r.cfg.StealDepth)
}

// Serve accepts tenant connections until the listener closes, mirroring
// palsvc.Service.Serve: one goroutine per connection, connTimeout bounding
// each request read/response write.
func (r *Router) Serve(l net.Listener, connTimeout time.Duration) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer func() {
				if rec := recover(); rec != nil {
					_ = c.Close()
				}
			}()
			defer c.Close()
			r.serveConn(c, connTimeout)
		}(conn)
	}
}

func (r *Router) serveConn(c net.Conn, connTimeout time.Duration) {
	for {
		if connTimeout > 0 {
			_ = c.SetDeadline(time.Now().Add(connTimeout))
		}
		body, err := palsvc.ReadFrame(c)
		if err != nil {
			return
		}
		var req palsvc.WireRequest
		resp := &palsvc.WireResponse{}
		if err := json.Unmarshal(body, &req); err != nil {
			resp.Err = "bad request: " + err.Error()
		} else {
			resp = r.dispatch(&req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := palsvc.WriteFrame(c, out); err != nil {
			return
		}
	}
}

// dispatch answers one wire request: run is routed, ping answered locally,
// stats and health aggregated cluster-wide.
func (r *Router) dispatch(req *palsvc.WireRequest) *palsvc.WireResponse {
	switch req.Op {
	case palsvc.OpPing:
		return &palsvc.WireResponse{OK: true}
	case palsvc.OpHealth:
		h := r.ClusterHealth()
		return &palsvc.WireResponse{OK: true, Health: &h}
	case palsvc.OpStats:
		m := r.ClusterStats()
		return &palsvc.WireResponse{OK: true, Stats: &m}
	case palsvc.OpRun:
		return r.route(req)
	case palsvc.OpTrace:
		return r.traceOp(req)
	case palsvc.OpAudit:
		return r.auditOp(req)
	default:
		return &palsvc.WireResponse{Err: fmt.Sprintf("cluster: unknown op %q", req.Op)}
	}
}

// stealableReject reports whether a backend's answer is a pre-execution
// admission rejection the router may transparently retry elsewhere. Only
// these are safe to steal: the job never ran, so re-submitting it cannot
// double-execute. A retryable *job* failure (e.g. an injected fault that
// exhausted the backend's own retry budget) is delivered to the tenant
// as-is — the backend already spent supervised attempts on it.
func stealableReject(resp *palsvc.WireResponse) bool {
	if resp.OK || !resp.Retryable {
		return false
	}
	switch resp.Code {
	case palsvc.CodeQueueFull, palsvc.CodeBankExhausted, palsvc.CodeShed:
		return true
	}
	return false
}

// route is the placement walk: try the primary, steal clockwise on
// admission rejection or transport failure, shed only when the whole chain
// is exhausted. Transport failures mid-request are retried on the next
// backend — PAL jobs are idempotent (execution is deterministic and
// attestation nonces are per-attempt), so at-least-once on a torn
// connection trades no correctness for zero tenant-visible loss.
func (r *Router) route(req *palsvc.WireRequest) *palsvc.WireResponse {
	t0 := time.Now()
	tenant := req.Tenant
	if tenant == "" {
		tenant = req.Name
	}
	// Adopt the tenant's propagated trace context or mint a root. The
	// route span parents every forward span, and each forward span in turn
	// parents the chosen backend's pipeline spans — one tree across
	// processes. With no tracer the request (including any tenant-set
	// trace fields) forwards untouched.
	var route *obs.Span
	if r.cfg.Tracer.Enabled() {
		ctx := routeTraceContext(req)
		if ctx.Trace.IsZero() {
			ctx = r.cfg.Tracer.NewTrace()
		}
		route = r.cfg.Tracer.StartSpan(ctx, "route", "cluster").Attr("name", req.Name)
		if tenant != "" && tenant != req.Name {
			route.Attr("tenant", tenant)
		}
	}
	key := RouteKey(req.Source)
	cands := r.ring.Successors(key, 1+r.cfg.StealDepth)
	var lastReject *palsvc.WireResponse
	for i, addr := range cands {
		b := r.byAddr[addr]
		if b == nil {
			continue
		}
		fwd := req
		var fs *obs.Span
		if route != nil {
			fs = r.cfg.Tracer.StartSpan(route.Context(), "forward", "cluster").
				Attr("backend", addr).AttrInt("attempt", i+1)
			cp := *req
			cp.TraceID = route.Context().Trace.String()
			cp.ParentSpan = fs.Context().Span
			fwd = &cp
		}
		resp, err := r.forward(b, fwd)
		if err != nil {
			if fs != nil {
				fs.Attr("outcome", "transport_error").Attr("err", err.Error()).End()
				r.cfg.Tracer.Event(route.Context(), "failover", "cluster", -1,
					obs.String("backend", addr), obs.String("err", err.Error()))
			}
			r.noteTransportFail(b)
			continue
		}
		r.noteTransportOK(b)
		if stealableReject(resp) {
			if fs != nil {
				fs.Attr("outcome", "reject").Attr("code", resp.Code).End()
				r.cfg.Tracer.Event(route.Context(), "steal", "cluster", -1,
					obs.String("backend", addr), obs.String("code", resp.Code))
			}
			b.rejects.Add(1)
			r.setSaturated(b, true)
			lastReject = resp
			continue
		}
		// Terminal answer: success, job error, or deadline — deliver it.
		r.setSaturated(b, false)
		if i == 0 {
			b.routed.Add(1)
		} else {
			b.stolen.Add(1)
			r.metrics.incStolen()
		}
		if resp.BatchSize > 0 {
			b.batched.Add(1)
		}
		d := time.Since(t0)
		b.observe(d)
		r.metrics.observe(d, resp.OK)
		resp.Backend = b.addr
		if fs != nil {
			outcome := "ok"
			if !resp.OK {
				outcome = "error"
			}
			fs.Attr("outcome", outcome).End()
			route.Attr("backend", b.addr).Attr("outcome", outcome).End()
			if resp.TraceID == "" {
				// Old backend without trace support: the router still
				// echoes the trace so tenants can look up their spans.
				resp.TraceID = route.Context().Trace.String()
			}
		}
		r.cfg.SLO.Observe(tenant, d, !resp.OK, route.Context().Trace)
		return resp
	}
	// Whole ring saturated, drained, or unreachable: the cluster-level
	// shed_load contract. Retryable — quarantines expire, probes re-add
	// recovered backends — so resubmission is the right tenant response.
	r.metrics.incShed()
	r.cfg.SLO.Observe(tenant, time.Since(t0), true, route.Context().Trace)
	if r.auditRec != nil {
		// A cluster-wide refusal to run work is a trust decision: put it
		// on the record with the tenant and trace so an auditor can prove
		// the job was shed, not silently dropped.
		r.auditRec.Record(audit.Event{
			Type:   audit.EventRouteShed,
			Handle: -1,
			Tenant: tenant,
			Trace:  route.Context().Trace,
			Detail: fmt.Sprintf("candidates=%d", len(cands)),
		})
	}
	if route != nil {
		route.Attr("outcome", "shed").End()
	}
	if lastReject != nil {
		// Preserve the most informative rejection but stamp it as a
		// cluster-wide decision, not one backend's.
		lastReject.Backend = ""
		lastReject.Code = palsvc.CodeShed
		lastReject.Err = fmt.Sprintf("cluster: shedding load: all %d placement candidates rejected (last: %s)",
			len(cands), lastReject.Err)
		if route != nil {
			lastReject.TraceID = route.Context().Trace.String()
		}
		return lastReject
	}
	resp := &palsvc.WireResponse{
		Err:       fmt.Sprintf("cluster: shedding load: no live backend (%d configured, %d in ring)", len(r.backends), r.ring.Size()),
		Retryable: true,
		Code:      palsvc.CodeShed,
	}
	if route != nil {
		resp.TraceID = route.Context().Trace.String()
	}
	return resp
}

// routeTraceContext parses a request's propagated trace context; absent or
// malformed fields yield the zero Context and the router mints a root.
func routeTraceContext(req *palsvc.WireRequest) obs.Context {
	if req.TraceID == "" {
		return obs.Context{}
	}
	id, err := obs.ParseTraceID(req.TraceID)
	if err != nil || id.IsZero() {
		return obs.Context{}
	}
	return obs.Context{Trace: id, Span: req.ParentSpan}
}

// traceOp answers the trace wire op with a stitched cluster-wide dump.
func (r *Router) traceOp(req *palsvc.WireRequest) *palsvc.WireResponse {
	dump, err := r.StitchTrace(req.TraceID)
	if err != nil {
		return &palsvc.WireResponse{Err: err.Error()}
	}
	return &palsvc.WireResponse{OK: true, Trace: dump}
}

// StitchTrace merges the router's own span ring with every reachable
// backend's (fetched over the trace op, each aligned onto the router's
// clock by its fetch's RTT midpoint — see obs.ClockOffset) into one
// skew-corrected timeline. filter, when non-empty, keeps one trace.
// Backends that are unreachable or predate the trace op are skipped: a
// partial stitch of the nodes that answered beats no stitch.
func (r *Router) StitchTrace(filter string) (*palsvc.TraceDump, error) {
	var id obs.TraceID
	if filter != "" {
		var err error
		id, err = obs.ParseTraceID(filter)
		if err != nil {
			return nil, err
		}
		filter = id.String()
	}
	recs, dropped := r.cfg.Tracer.Snapshot()
	if !id.IsZero() {
		recs = obs.FilterTrace(recs, id)
	}
	dumps := []obs.NodeDump{{Node: "router", Records: recs, Dropped: dropped}}
	truncated := 0
	for _, b := range r.backends {
		c, err := b.get()
		if err != nil {
			continue
		}
		bd, offset, err := c.Trace(filter)
		if err != nil {
			// Old build without the trace op, or a torn fetch: drop the
			// connection (its state is unknown) and stitch without it.
			_ = c.Close()
			continue
		}
		b.put(c)
		truncated += bd.Truncated
		dumps = append(dumps, obs.NodeDump{Node: b.addr, Records: bd.Records, Dropped: bd.Dropped, Offset: offset})
	}
	var droppedTotal uint64
	for _, d := range dumps {
		droppedTotal += d.Dropped
	}
	out := palsvc.BoundTraceDump(obs.Stitch(dumps), droppedTotal)
	out.Truncated += truncated
	return out, nil
}

// auditOp answers the audit wire op with the fleet view.
func (r *Router) auditOp(req *palsvc.WireRequest) *palsvc.WireResponse {
	dump, err := r.FleetAudit(req)
	if err != nil {
		return &palsvc.WireResponse{Err: err.Error()}
	}
	return &palsvc.WireResponse{OK: true, Audit: dump}
}

// FleetAudit aggregates per-backend audit logs into one fleet view: the
// outer dump is the router's own control-plane log (unsigned heads), and
// Nodes carries one dump per reachable backend, each with that node's
// AIK-signed head — the per-node roots of trust stay distinct; the router
// never re-signs or merges trees. Backends that are unreachable, predate
// the audit op, or run without a log are skipped: a partial fleet view of
// the nodes that answered beats none, the same contract as StitchTrace.
func (r *Router) FleetAudit(req *palsvc.WireRequest) (*palsvc.AuditDump, error) {
	out := &palsvc.AuditDump{Node: "router"}
	if r.cfg.Audit != nil {
		q := audit.Query{Tenant: req.Tenant, Image: req.Image, Since: req.Since, Limit: req.Limit}
		if q.Limit <= 0 {
			q.Limit = 256
		}
		if req.TraceID != "" {
			id, err := obs.ParseTraceID(req.TraceID)
			if err != nil {
				return nil, err
			}
			q.Trace = id
		}
		// Seal the tail first so the dumped head covers every event,
		// mirroring the backend-side contract in palsvc.auditDump.
		r.cfg.Audit.Sync()
		events, truncated := r.cfg.Audit.Select(q)
		out.Node = r.cfg.Audit.Node()
		out.Size = r.cfg.Audit.Size()
		out.Dropped = r.cfg.Audit.Dropped()
		out.Head = r.cfg.Audit.Head()
		out.Truncated = truncated
		out.Events = events
	}
	// Bound each backend's slice so the nested fleet answer stays inside
	// one wire frame even on a wide cluster.
	fwd := *req
	if fwd.Limit <= 0 || fwd.Limit > 256 {
		fwd.Limit = 256
	}
	for _, b := range r.backends {
		c, err := b.get()
		if err != nil {
			continue
		}
		bd, err := c.Audit(&fwd)
		if err != nil {
			_ = c.Close()
			continue
		}
		b.put(c)
		if bd.Node == "" {
			bd.Node = b.addr
		}
		out.Nodes = append(out.Nodes, *bd)
	}
	return out, nil
}

// forward sends req to b over a pooled connection. The connection is only
// recycled after a clean round trip; any error closes it.
func (r *Router) forward(b *backend, req *palsvc.WireRequest) (*palsvc.WireResponse, error) {
	c, err := b.get()
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(req)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	b.put(c)
	return resp, nil
}

// noteTransportFail counts one transport failure against b and drains it
// from the ring at the threshold — the request-path twin of the prober's
// detection, so a dead backend stops receiving primaries after ProbeFails
// torn requests even between probe ticks.
func (r *Router) noteTransportFail(b *backend) {
	b.transport.Add(1)
	b.mu.Lock()
	b.consecFails++
	trip := b.consecFails >= r.cfg.ProbeFails && b.state != StateDown
	if trip {
		b.state = StateDown
	}
	b.mu.Unlock()
	if trip {
		r.ring.Remove(b.addr)
		b.drainPool()
		r.metrics.incDowned()
	}
}

// noteTransportOK resets b's failure streak after any clean round trip.
func (r *Router) noteTransportOK(b *backend) {
	b.mu.Lock()
	b.consecFails = 0
	b.mu.Unlock()
}

// setSaturated flips the informational Healthy<->Saturated state; Down and
// Draining are owned by the transport/probe paths and never touched here.
func (r *Router) setSaturated(b *backend, sat bool) {
	b.mu.Lock()
	switch {
	case sat && b.state == StateHealthy:
		b.state = StateSaturated
	case !sat && b.state == StateSaturated:
		b.state = StateHealthy
	}
	b.mu.Unlock()
}

// probe is one backend's health loop: every ProbeInterval it runs the wire
// health op (falling back to stats against pre-health servers) and a stats
// fetch on a pooled connection, then reconciles ring membership:
//
//   - transport failure        → consecFails++; Down + drain at threshold
//   - health says Shedding     → Draining + drain (replicas quarantined)
//   - healthy answer           → reset fails, rejoin ring if absent
func (r *Router) probe(b *backend) {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		r.probeOnce(b)
	}
}

// probeOnce runs a single probe cycle against b.
func (r *Router) probeOnce(b *backend) {
	c, err := b.get()
	if err != nil {
		r.noteTransportFail(b)
		return
	}
	h, err := c.Health()
	if err != nil {
		_ = c.Close()
		r.noteTransportFail(b)
		return
	}
	stats, statsErr := c.Stats()
	if statsErr != nil {
		_ = c.Close()
		r.noteTransportFail(b)
		return
	}
	b.put(c)
	r.noteTransportOK(b)

	b.mu.Lock()
	b.lastHealth = *h
	b.lastStats = stats
	b.lastProbe = time.Now()
	prev := b.state
	switch {
	case h.Shedding:
		b.state = StateDraining
	case h.FreeSePCRs == 0 && h.QueueDepth >= h.QueueCap && h.QueueCap > 0:
		b.state = StateSaturated
	default:
		b.state = StateHealthy
	}
	next := b.state
	b.mu.Unlock()

	switch {
	case next == StateDraining && prev != StateDraining:
		r.ring.Remove(b.addr)
		r.metrics.incDrained()
	case next != StateDraining && !r.ring.Has(b.addr):
		r.ring.Add(b.addr)
		if prev == StateDown || prev == StateDraining {
			r.metrics.incRejoined()
		}
	}
}

// ClusterHealth aggregates the fleet's admission capacity: the sum of every
// in-ring backend's last health snapshot, with drained backends' replicas
// counted as quarantined. Shedding is true only when the ring is empty —
// the same condition route answers shed_load for.
func (r *Router) ClusterHealth() palsvc.HealthInfo {
	var out palsvc.HealthInfo
	for _, b := range r.backends {
		h, at := b.health()
		state := b.State()
		if at.IsZero() {
			// Never successfully probed: count nothing but its existence.
			if state == StateDown {
				continue
			}
			continue
		}
		out.Replicas += h.Replicas
		out.QueueCap += h.QueueCap
		if state == StateDown || state == StateDraining {
			out.QuarantinedReplicas += h.Replicas
			continue
		}
		out.QueueDepth += h.QueueDepth
		out.FreeSePCRs += h.FreeSePCRs
		out.Bank += h.Bank
		out.QuarantinedReplicas += h.QuarantinedReplicas
	}
	out.Shedding = r.ring.Size() == 0
	return out
}

// ClusterStats sums every backend's last stats snapshot into one
// cluster-level Metrics. Counters add exactly; stage latency distributions
// cannot be merged from summaries, so each stage reports the
// observation-weighted mean of the backends' means, the max of maxes, and
// weighted means of the percentile points — good enough for a dashboard,
// with the exact router-measured end-to-end distribution available from
// Snapshot/ /metrics. Backends never probed contribute nothing.
func (r *Router) ClusterStats() palsvc.Metrics {
	var out palsvc.Metrics
	var snaps []*palsvc.Metrics
	for _, b := range r.backends {
		if m := b.stats(); m != nil {
			snaps = append(snaps, m)
		}
	}
	for _, m := range snaps {
		out.Submitted += m.Submitted
		out.Admitted += m.Admitted
		out.Rejected += m.Rejected
		out.RejectedQueueFull += m.RejectedQueueFull
		out.RejectedBank += m.RejectedBank
		out.RejectedShed += m.RejectedShed
		out.Completed += m.Completed
		out.Failed += m.Failed
		out.DeadlineExceeded += m.DeadlineExceeded
		out.Retried += m.Retried
		out.Quarantines += m.Quarantines
		out.QueueDepth += m.QueueDepth
		out.SePCRCapacity += m.SePCRCapacity
		out.SePCROccupancy += m.SePCROccupancy
		out.MaxSePCROccupancy += m.MaxSePCROccupancy
		out.CacheHits += m.CacheHits
		out.CacheMisses += m.CacheMisses
		out.VerifyMemoHits += m.VerifyMemoHits
		out.VerifyMemoMisses += m.VerifyMemoMisses
		out.QuoteBatches += m.QuoteBatches
		out.BatchedJobs += m.BatchedJobs
		out.QuoteSigns += m.QuoteSigns
		if m.MaxBatchSize > out.MaxBatchSize {
			out.MaxBatchSize = m.MaxBatchSize
		}
	}
	out.QueueWait = mergeStage(snaps, func(m *palsvc.Metrics) palsvc.StageStats { return m.QueueWait })
	out.ArbWait = mergeStage(snaps, func(m *palsvc.Metrics) palsvc.StageStats { return m.ArbWait })
	out.Execute = mergeStage(snaps, func(m *palsvc.Metrics) palsvc.StageStats { return m.Execute })
	out.QuoteGen = mergeStage(snaps, func(m *palsvc.Metrics) palsvc.StageStats { return m.QuoteGen })
	out.Verify = mergeStage(snaps, func(m *palsvc.Metrics) palsvc.StageStats { return m.Verify })
	return out
}

// mergeStage combines per-backend stage summaries, weighting by
// observation count.
func mergeStage(snaps []*palsvc.Metrics, pick func(*palsvc.Metrics) palsvc.StageStats) palsvc.StageStats {
	var out palsvc.StageStats
	var n int64
	var mean, p50, p95, p99 float64
	for _, m := range snaps {
		s := pick(m)
		if s.N == 0 {
			continue
		}
		w := int64(s.N)
		n += w
		mean += float64(s.Mean) * float64(w)
		p50 += float64(s.P50) * float64(w)
		p95 += float64(s.P95) * float64(w)
		p99 += float64(s.P99) * float64(w)
		if s.Max > out.Max {
			out.Max = s.Max
		}
	}
	if n == 0 {
		return out
	}
	out.N = int(n)
	out.Mean = time.Duration(mean / float64(n))
	out.P50 = time.Duration(p50 / float64(n))
	out.P95 = time.Duration(p95 / float64(n))
	out.P99 = time.Duration(p99 / float64(n))
	return out
}
