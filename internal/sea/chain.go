package sea

import (
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/pal"
)

// Chain automates the continuation pattern nearly every long-running SEA
// application uses on today's hardware (§4.1's distributed-computing
// shape): run a session, let the application inspect the output — which
// typically carries a sealed continuation blob — and either feed the next
// session or stop. The paper's distributed factoring and our
// examples/factoring are instances.

// ErrChainTooLong is returned when maxSessions elapse without completion.
var ErrChainTooLong = errors.New("sea: session chain exceeded its session budget")

// ChainStep inspects one session's output and returns the next session's
// input, or done=true to stop the chain. Returning an error aborts.
type ChainStep func(sessionIndex int, output []byte) (next []byte, done bool, err error)

// ChainResult aggregates a completed chain.
type ChainResult struct {
	// Sessions is how many sessions ran.
	Sessions int
	// Total is the summed virtual time of all sessions — all of it
	// whole-platform stall on today's hardware.
	Total time.Duration
	// Last is the final session.
	Last *Session
}

// Chain runs image repeatedly under SEA, threading inputs via step, until
// step reports done or maxSessions sessions have run (0 means a default
// budget of 1000).
func (rt *Runtime) Chain(image pal.Image, first []byte, step ChainStep, maxSessions int) (*ChainResult, error) {
	if maxSessions <= 0 {
		maxSessions = 1000
	}
	res := &ChainResult{}
	input := first
	for res.Sessions < maxSessions {
		s, err := rt.Execute(image, input)
		if err != nil {
			return res, err
		}
		res.Sessions++
		res.Total += s.Total
		res.Last = s
		if s.ExitStatus != 0 {
			return res, fmt.Errorf("sea: chain session %d exited %d", res.Sessions, s.ExitStatus)
		}
		next, done, err := step(res.Sessions-1, s.Output)
		if err != nil {
			return res, err
		}
		if done {
			return res, nil
		}
		input = next
	}
	return res, ErrChainTooLong
}
