package sea

import (
	"fmt"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// tpmTime accumulates time spent inside TPM service calls so the exec
// phase can be reported net of TPM phases (Figure 2 stacks them
// separately).
// It lives on Session; see the field access in Execute.

// service implements the PAL ABI for SEA sessions. Seal and unseal bind to
// the dynamic PCRs holding this PAL's late-launch measurement, so sealed
// state is released only to the same PAL code (§3.3).
func (s *Session) service(c *cpu.CPU, num uint16) (cpu.SvcAction, error) {
	m := s.rt.Kernel.Machine
	switch num {
	case cpu.SvcNumExit:
		s.ExitStatus = c.Regs[0]
		return cpu.SvcExit, nil

	case cpu.SvcNumYield:
		// On today's hardware a yield ends the session; state survival
		// is the PAL's job via seal (§5.7 "resume is achieved by
		// executing late launch again").
		return cpu.SvcYield, nil

	case cpu.SvcNumExtend:
		if !m.Chipset.HasTPM() {
			return 0, fmt.Errorf("sea: SVC extend without TPM")
		}
		data, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
		if err != nil {
			return 0, err
		}
		sw := sim.StartStopwatch(m.Clock)
		_, err = m.TPM().Extend(tpm.FirstDynamicPCR, tpm.Measure(data))
		s.charge("Extend", sw.Elapsed())
		return cpu.SvcContinue, err

	case cpu.SvcNumSeal:
		if !m.Chipset.HasTPM() {
			return 0, fmt.Errorf("sea: SVC seal without TPM")
		}
		data, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
		if err != nil {
			return 0, err
		}
		sw := sim.StartStopwatch(m.Clock)
		blob, err := m.TPM().Seal(s.rt.sealSelection(), data)
		s.charge(PhaseSeal, sw.Elapsed())
		if err != nil {
			return 0, err
		}
		if err := c.WriteBytes(c.Regs[2], blob); err != nil {
			return 0, err
		}
		c.Regs[0] = uint32(len(blob))
		return cpu.SvcContinue, nil

	case cpu.SvcNumUnseal:
		if !m.Chipset.HasTPM() {
			return 0, fmt.Errorf("sea: SVC unseal without TPM")
		}
		blob, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
		if err != nil {
			return 0, err
		}
		sw := sim.StartStopwatch(m.Clock)
		data, uerr := m.TPM().Unseal(blob)
		s.charge(PhaseUnseal, sw.Elapsed())
		if uerr != nil {
			// Policy mismatch is PAL-visible, not a fault: the PAL
			// decides how to proceed (e.g. refuse to run).
			c.Regs[0] = 0
			c.Regs[1] = 1
			return cpu.SvcContinue, nil
		}
		if err := c.WriteBytes(c.Regs[2], data); err != nil {
			return 0, err
		}
		c.Regs[0] = uint32(len(data))
		c.Regs[1] = 0
		return cpu.SvcContinue, nil

	case cpu.SvcNumRandom:
		if !m.Chipset.HasTPM() {
			return 0, fmt.Errorf("sea: SVC random without TPM")
		}
		n := int(c.Regs[1])
		sw := sim.StartStopwatch(m.Clock)
		b, err := m.TPM().GetRandom(n)
		s.charge("GetRandom", sw.Elapsed())
		if err != nil {
			return 0, err
		}
		if err := c.WriteBytes(c.Regs[0], b); err != nil {
			return 0, err
		}
		return cpu.SvcContinue, nil

	case cpu.SvcNumOutput:
		b, err := c.ReadBytes(c.Regs[0], int(c.Regs[1]))
		if err != nil {
			return 0, err
		}
		s.Output = append(s.Output, b...)
		return cpu.SvcContinue, nil

	case cpu.SvcNumInput:
		n := int(c.Regs[1])
		if n > len(s.Input) {
			n = len(s.Input)
		}
		if err := c.WriteBytes(c.Regs[0], s.Input[:n]); err != nil {
			return 0, err
		}
		c.Regs[0] = uint32(n)
		return cpu.SvcContinue, nil

	case cpu.SvcNumGetTime:
		c.Regs[0] = uint32(m.Clock.Now())
		return cpu.SvcContinue, nil
	}
	return 0, fmt.Errorf("sea: unknown service %d", num)
}

// charge books TPM time under a phase and into the tpmTime total.
func (s *Session) charge(phase string, d time.Duration) {
	s.Breakdown[phase] += d
	s.tpmTime += d
}
