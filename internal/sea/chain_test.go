package sea

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"minimaltcb/internal/pal"
)

// chainPAL counts up by one per session, carrying the counter in a sealed
// blob. Output: [done:1][bloblen:2][blob]. done=1 when the counter hits 4.
const chainPAL = `
	ldi	r0, inbuf
	ldi	r1, 1024
	svc	7
	ldi	r2, 0
	cmp	r0, r2
	jz	first
	ldi	r1, inbuf	; parse [bloblen:2][blob]
	loadb	r2, [r1]
	loadb	r3, [r1+1]
	ldi	r4, 8
	shl	r3, r4
	or	r2, r3
	ldi	r0, inbuf
	addi	r0, 2
	mov	r1, r2
	ldi	r2, state
	svc	4
	ldi	r3, 0
	cmp	r1, r3
	jnz	fail
	ldi	r1, state
	load	r5, [r1]
	jmp	haveval
first:
	ldi	r5, 0
haveval:
	addi	r5, 1
	ldi	r1, state
	store	r5, [r1]
	ldi	r6, 4
	cmp	r5, r6
	jz	finish
	; continue: output [0][len:2][blob]
	ldi	r0, state
	ldi	r1, 4
	ldi	r2, blob
	svc	3
	ldi	r1, hdr
	ldi	r2, 0
	storeb	r2, [r1]
	storeb	r0, [r1+1]
	mov	r2, r0
	ldi	r3, 8
	shr	r2, r3
	storeb	r2, [r1+2]
	push	r0
	ldi	r0, hdr
	ldi	r1, 3
	svc	6
	pop	r1
	ldi	r0, blob
	svc	6
	ldi	r0, 0
	svc	0
finish:
	ldi	r1, hdr
	ldi	r2, 1
	storeb	r2, [r1]
	ldi	r0, hdr
	ldi	r1, 1
	svc	6
	ldi	r0, state
	ldi	r1, 4
	svc	6
	ldi	r0, 0
	svc	0
fail:
	ldi	r0, 1
	svc	0
state:	.word 0
hdr:	.space 3
	.align 4
inbuf:	.space 1024
blob:	.space 768
stack:	.space 96
`

// chainStep parses the chain PAL's output convention.
func chainStep(_ int, output []byte) ([]byte, bool, error) {
	if len(output) == 0 {
		return nil, false, errors.New("empty output")
	}
	if output[0] == 1 {
		return nil, true, nil
	}
	n := binary.LittleEndian.Uint16(output[1:3])
	return output[1 : 3+n], false, nil
}

func TestChainRunsToCompletion(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(chainPAL)
	res, err := rt.Chain(im, nil, chainStep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 4 {
		t.Fatalf("sessions = %d, want 4", res.Sessions)
	}
	// Final output carries done flag + the counter value 4.
	if res.Last.Output[0] != 1 {
		t.Fatal("last session not marked done")
	}
	if binary.LittleEndian.Uint32(res.Last.Output[1:5]) != 4 {
		t.Fatalf("final counter %d", binary.LittleEndian.Uint32(res.Last.Output[1:5]))
	}
	// Each of the 4 sessions pays the full late-launch + TPM toll.
	if res.Total < 4*res.Last.Breakdown[PhaseLaunch] {
		t.Fatalf("total %v too small for 4 launches", res.Total)
	}
}

func TestChainBudget(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(chainPAL)
	_, err := rt.Chain(im, nil, chainStep, 2)
	if !errors.Is(err, ErrChainTooLong) {
		t.Fatalf("budget overrun: %v", err)
	}
}

func TestChainStepErrorAborts(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(chainPAL)
	boom := fmt.Errorf("application rejects output")
	res, err := rt.Chain(im, nil, func(int, []byte) ([]byte, bool, error) {
		return nil, false, boom
	}, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if res.Sessions != 1 {
		t.Fatalf("sessions = %d", res.Sessions)
	}
}

func TestChainPALFailureSurfaces(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	// A PAL that always exits 1.
	im := pal.MustBuild("ldi r0, 1\nsvc 0")
	_, err := rt.Chain(im, nil, chainStep, 0)
	if err == nil {
		t.Fatal("failing chain session unreported")
	}
}
