package sea

import (
	"fmt"

	"minimaltcb/internal/pal"
)

// This file provides the two generic PALs of §4.1, whose overheads Figure 2
// decomposes. Nearly every practical SEA application is one of these two
// shapes:
//
//   - PAL Gen launches, generates application data (here: TPM-random
//     bytes, standing in for key generation), seals it under its own
//     late-launch identity, outputs the sealed blob, and exits.
//
//   - PAL Use launches, unseals state from a previous session, operates on
//     it, optionally reseals, outputs, and exits.
//
// The paper's certificate authority, SSH password handler, rootkit
// detector and distributed-factoring applications (examples/) are concrete
// instances of these flows.

// GenPayload is the amount of state PAL Gen creates and seals: 1 KB, the
// convention that puts the Broadcom Seal at its published 20.01 ms.
const GenPayload = 1024

// blobCapacity is the PAL-side buffer reserved for sealed blobs; a sealed
// 1 KB payload plus envelope fits comfortably.
const blobCapacity = 2048

// palGenSource is the PAL Gen program.
const palGenSource = `
	; PAL Gen: generate 1 KB of data, seal it, output the blob.
	ldi	r0, data
	ldi	r1, 1024
	svc	5		; TPM GetRandom -> data
	ldi	r0, data
	ldi	r1, 1024
	ldi	r2, blob
	svc	3		; TPM Seal(data) -> blob, r0 = blob len
	mov	r1, r0
	ldi	r0, blob
	svc	6		; output blob
	ldi	r0, 0
	svc	0		; exit(0)
data:	.space 1024
blob:	.space 2048
stack:	.space 128
`

// palUseSource is the PAL Use program. reseal selects whether the modified
// state is sealed again before exit (the distributed-computing pattern) or
// simply discarded (the signing-key pattern).
func palUseSource(reseal bool) string {
	resealCode := ""
	if reseal {
		resealCode = `
	ldi	r0, data
	ldi	r1, 1024
	ldi	r2, blob
	svc	3		; TPM Seal(modified data) -> blob
	mov	r1, r0
	ldi	r0, blob
	svc	6		; output new blob
`
	}
	return `
	; PAL Use: read blob, unseal, modify state, optionally reseal.
	ldi	r0, blob
	ldi	r1, 2048
	svc	7		; input -> blob, r0 = blob len
	mov	r1, r0
	ldi	r0, blob
	ldi	r2, data
	svc	4		; TPM Unseal(blob) -> data; r1 = status
	ldi	r3, 0
	cmp	r1, r3
	jnz	fail
	; operate on the state: increment the first byte.
	ldi	r4, data
	loadb	r5, [r4]
	addi	r5, 1
	storeb	r5, [r4]
` + resealCode + `
	ldi	r0, 0
	svc	0		; exit(0)
fail:
	ldi	r0, 1
	svc	0		; exit(1): unseal refused
data:	.space 1024
blob:	.space 2048
stack:	.space 128
`
}

// BuildPALGen assembles the generic PAL Gen image, padded to the full
// 64 KB SLB — Figure 2's sessions "use the full 64 KB supported by AMD".
func BuildPALGen() pal.Image {
	im, err := pal.MustBuild(palGenSource).Pad(pal.MaxImageSize)
	if err != nil {
		panic(err)
	}
	return im
}

// BuildPALUse assembles the generic PAL Use image at the full 64 KB SLB.
func BuildPALUse(reseal bool) pal.Image {
	im, err := pal.MustBuild(palUseSource(reseal)).Pad(pal.MaxImageSize)
	if err != nil {
		panic(err)
	}
	return im
}

// SealForImage seals data to the late-launch identity of image: it
// launches the image (setting the dynamic PCRs), performs the seal, and
// tears the session down without running the PAL. Experiments use it to
// provision the prior-session state PAL Use consumes.
func (rt *Runtime) SealForImage(image pal.Image, data []byte) ([]byte, error) {
	k := rt.Kernel
	m := k.Machine
	region, err := k.PlaceImage(image.Bytes, 0)
	if err != nil {
		return nil, err
	}
	defer func() {
		m.Chipset.SetDEVRegion(region, false)
		k.ReleaseRegion(region)
	}()
	if _, err := m.LateLaunch(m.BootCPU(), region.Base); err != nil {
		return nil, err
	}
	return m.TPM().Seal(rt.sealSelection(), data)
}

// RunPALGen executes the PAL Gen flow and returns the session (whose
// Output is the sealed blob).
func (rt *Runtime) RunPALGen() (*Session, error) {
	s, err := rt.Execute(BuildPALGen(), nil)
	if err != nil {
		return s, err
	}
	if s.ExitStatus != 0 {
		return s, fmt.Errorf("sea: PAL Gen exited with status %d", s.ExitStatus)
	}
	if len(s.Output) == 0 {
		return s, fmt.Errorf("sea: PAL Gen produced no sealed blob")
	}
	return s, nil
}

// RunPALUse executes the PAL Use flow over a blob from a previous PAL Gen
// (or PAL Use) session.
func (rt *Runtime) RunPALUse(blob []byte, reseal bool) (*Session, error) {
	s, err := rt.Execute(BuildPALUse(reseal), blob)
	if err != nil {
		return s, err
	}
	if s.ExitStatus != 0 {
		return s, fmt.Errorf("sea: PAL Use exited with status %d (unseal refused?)", s.ExitStatus)
	}
	return s, nil
}
