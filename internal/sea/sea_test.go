package sea

import (
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/tpm"
)

// fastProfile is an HP dc5750 with small keys for test speed.
func fastProfile() platform.Profile {
	p := platform.HPdc5750()
	p.KeyBits = 1024
	return p
}

func newRuntime(t *testing.T, p platform.Profile) *Runtime {
	t.Helper()
	m, err := platform.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(osker.NewKernel(m))
}

func TestExecuteSimplePAL(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(`
		ldi r0, out
		ldi r1, 5
		svc 6         ; output "hello"
		ldi r0, 0
		svc 0
	out:	.ascii "hello"
	`)
	s, err := rt.Execute(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Output) != "hello" {
		t.Fatalf("output %q", s.Output)
	}
	if s.ExitStatus != 0 {
		t.Fatalf("exit %d", s.ExitStatus)
	}
	// PCR 17 holds the image measurement chain.
	pcr17, _ := rt.Kernel.Machine.TPM().PCRValue(17)
	if pcr17 != tpm.ExtendDigest(tpm.Digest{}, tpm.Measure(im.Bytes)) {
		t.Fatal("PCR17 does not reflect the PAL image")
	}
}

func TestExecuteSuspendsAndResumesLegacy(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	if _, err := rt.Execute(im, nil); err != nil {
		t.Fatal(err)
	}
	if rt.Kernel.Suspended() {
		t.Fatal("legacy environment still suspended after session")
	}
	if rt.Kernel.Suspends != 1 {
		t.Fatalf("suspends = %d", rt.Kernel.Suspends)
	}
}

func TestExecuteFreesRegion(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	before := rt.Kernel.Alloc.FreePages()
	im := pal.MustBuild("ldi r0, 0\nsvc 0")
	s, err := rt.Execute(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Kernel.Alloc.FreePages() != before {
		t.Fatal("session leaked pages")
	}
	// DEV protection dropped.
	for _, p := range s.Region.Pages() {
		if on, _ := rt.Kernel.Machine.Chipset.Memory().DEV(p); on {
			t.Fatal("DEV bit leaked after session")
		}
	}
}

func TestCrashedPALLeavesNoSecretsBehind(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(`
		ldi r0, 1
		ldi r1, 0
		divu r0, r1	; crash while a secret sits in memory
	secret:	.ascii "crown jewels"
	`)
	s, err := rt.Execute(im, nil)
	if !errors.Is(err, ErrPALFault) {
		t.Fatalf("expected fault, got %v", err)
	}
	// The pages are back in the OS pool; they must read as zeros.
	b, rerr := rt.Kernel.Machine.Chipset.CPURead(0, s.Region.Base, s.Region.Size)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x survived into the free pool", i, v)
		}
	}
}

func TestExecuteFaultingPAL(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(`
		ldi r0, 1
		ldi r1, 0
		divu r0, r1
	`)
	_, err := rt.Execute(im, nil)
	if !errors.Is(err, ErrPALFault) {
		t.Fatalf("faulting PAL: %v", err)
	}
	if rt.Kernel.Suspended() {
		t.Fatal("legacy environment leaked suspended after fault")
	}
}

func TestPALGenProducesUnsealableBlob(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	s, err := rt.RunPALGen()
	if err != nil {
		t.Fatal(err)
	}
	blob := s.Output
	// The blob unseals on-TPM while PCR17 still holds the Gen PAL's
	// measurement... but PAL Use has a different measurement, so the
	// interesting property is checked in TestPALUseFlow. Here: blob is
	// sealed (opaque) and non-trivial.
	if len(blob) < GenPayload {
		t.Fatalf("blob only %d bytes", len(blob))
	}
	if s.Breakdown[PhaseSeal] == 0 || s.Breakdown[PhaseLaunch] == 0 {
		t.Fatalf("breakdown incomplete: %v", s.Breakdown)
	}
}

func TestPALUseRoundTrip(t *testing.T) {
	// PAL Gen and PAL Use are *different* code, so Use cannot unseal
	// Gen's blob (different PCR 17). The realistic flow — and what the
	// paper's PAL Use benchmarks — is Use unsealing its *own* prior
	// state. Seed that state by sealing under Use's measurement.
	rt := newRuntime(t, fastProfile())
	m := rt.Kernel.Machine

	// First PAL Use session with a blob sealed to PAL Use's identity:
	// launch once to set PCR17, seal state, and capture the blob.
	useImage := BuildPALUse(true)
	// Prime: run a session of the Use PAL that will fail to unseal junk
	// — instead, seal directly while its measurement is in PCR17.
	core := m.BootCPU()
	region, err := rt.Kernel.PlaceImage(useImage.Bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LateLaunch(core, region.Base); err != nil {
		t.Fatal(err)
	}
	state := make([]byte, GenPayload)
	state[0] = 41
	blob, err := m.TPM().Seal(rt.sealSelection(), state)
	if err != nil {
		t.Fatal(err)
	}
	m.Chipset.SetDEVRegion(region, false)
	rt.Kernel.ReleaseRegion(region)

	// Now the measured PAL Use flow: unseal, increment, reseal.
	s, err := rt.RunPALUse(blob, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.ExitStatus != 0 {
		t.Fatalf("exit %d", s.ExitStatus)
	}
	// Output is the resealed blob; unseal it directly to verify the
	// increment (PCR17 still holds PAL Use's measurement).
	got, err := m.TPM().Unseal(s.Output)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("state[0] = %d, want 42", got[0])
	}
	// Breakdown covers launch + unseal + seal.
	for _, phase := range []string{PhaseLaunch, PhaseUnseal, PhaseSeal} {
		if s.Breakdown[phase] == 0 {
			t.Fatalf("phase %s missing: %v", phase, s.Breakdown)
		}
	}
}

func TestPALUseRefusesForeignBlob(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	// Blob sealed by PAL Gen (different measurement).
	gen, err := rt.RunPALGen()
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.RunPALUse(gen.Output, false)
	if err == nil {
		t.Fatal("PAL Use unsealed another PAL's state")
	}
}

// Figure 2 calibration: PAL Gen ≈ 200 ms, Quote ≈ 950 ms, PAL Use > 1 s on
// the HP dc5750 with the Broadcom TPM.
func TestFigure2Shape(t *testing.T) {
	rt := newRuntime(t, fastProfile())

	gen, err := rt.RunPALGen()
	if err != nil {
		t.Fatal(err)
	}
	genMS := float64(gen.Total) / float64(time.Millisecond)
	if genMS < 190 || genMS > 215 {
		t.Errorf("PAL Gen total = %.1f ms, want ≈200", genMS)
	}
	// SKINIT dominates launch: 177.52 ms ± jitterless.
	launchMS := float64(gen.Breakdown[PhaseLaunch]) / float64(time.Millisecond)
	if launchMS < 170 || launchMS > 185 {
		t.Errorf("launch phase = %.1f ms, want ≈177.5", launchMS)
	}

	_, qd, err := rt.Quote([]byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	quoteMS := float64(qd) / float64(time.Millisecond)
	if quoteMS < 930 || quoteMS > 970 {
		t.Errorf("Quote = %.1f ms, want ≈949", quoteMS)
	}

	// PAL Use with reseal: SKINIT + Unseal + Seal > 1 s.
	core := rt.Kernel.Machine.BootCPU()
	useImage := BuildPALUse(true)
	region, _ := rt.Kernel.PlaceImage(useImage.Bytes, 0)
	rt.Kernel.Machine.LateLaunch(core, region.Base)
	state := make([]byte, GenPayload)
	blob, _ := rt.Kernel.Machine.TPM().Seal(rt.sealSelection(), state)
	rt.Kernel.Machine.Chipset.SetDEVRegion(region, false)
	rt.Kernel.ReleaseRegion(region)

	use, err := rt.RunPALUse(blob, true)
	if err != nil {
		t.Fatal(err)
	}
	useMS := float64(use.Total) / float64(time.Millisecond)
	if useMS < 1000 || useMS > 1200 {
		t.Errorf("PAL Use total = %.1f ms, want 1000–1200 (\"over a second\")", useMS)
	}
}

func TestSessionStallsWholePlatform(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	if _, err := rt.RunPALGen(); err != nil {
		t.Fatal(err)
	}
	// Both CPUs' timelines must show the stall — SEA on today's hardware
	// halts everything (§4.2).
	total := rt.Kernel.Machine.Clock.Now()
	for i, c := range rt.Kernel.Machine.CPUs {
		if c.Timeline.Busy < total/2 {
			t.Errorf("CPU%d busy %v of %v — platform not stalled", i, c.Timeline.Busy, total)
		}
	}
}

func TestQuoteVerifiesAgainstAIK(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	if _, err := rt.RunPALGen(); err != nil {
		t.Fatal(err)
	}
	q, _, err := rt.Quote([]byte("challenge"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.VerifyQuote(rt.Kernel.Machine.TPM().AIKPublic(), q); err != nil {
		t.Fatalf("quote rejected: %v", err)
	}
}

func TestQuoteWithoutTPM(t *testing.T) {
	p := platform.TyanN3600R()
	rt := newRuntime(t, p)
	if _, _, err := rt.Quote(nil); err == nil {
		t.Fatal("quote on TPM-less platform succeeded")
	}
}

func TestIntelSessionSealsToBothPCRs(t *testing.T) {
	p := platform.IntelTEP()
	p.KeyBits = 1024
	rt := newRuntime(t, p)
	if got := rt.sealSelection(); len(got) != 2 || got[0] != 17 || got[1] != 18 {
		t.Fatalf("Intel seal selection %v", got)
	}
	s, err := rt.RunPALGen()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Output) == 0 {
		t.Fatal("no blob")
	}
	// SENTER path sets both PCRs.
	pcr18, _ := rt.Kernel.Machine.TPM().PCRValue(18)
	if pcr18 == (tpm.Digest{}) {
		t.Fatal("PCR18 untouched after SENTER session")
	}
}
