// Package sea implements the Secure Execution Architecture on *today's*
// (2007) hardware, the system whose overheads Section 4 of the paper
// measures: a kernel-module-style driver suspends the untrusted OS, late
// launches a PAL with SKINIT/SENTER, serves the PAL's TPM needs (seal,
// unseal, extend, random) against the dynamic PCRs, and resumes the OS when
// the PAL exits. PAL state that must survive across sessions is protected
// with TPM sealed storage — the context-switch mechanism whose cost
// motivates the paper's hardware recommendations.
package sea

import (
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// Runtime drives SEA sessions on one machine.
type Runtime struct {
	Kernel *osker.Kernel
}

// NewRuntime installs the SEA driver into an untrusted kernel.
func NewRuntime(k *osker.Kernel) *Runtime { return &Runtime{Kernel: k} }

// Phase names used in Session.Breakdown, matching Figure 2's legend.
const (
	PhaseLaunch = "SKINIT" // includes SENTER on Intel machines
	PhaseSeal   = "Seal"
	PhaseUnseal = "Unseal"
	PhaseQuote  = "Quote"
	PhaseExec   = "PAL exec"
)

// Session is one PAL execution on today's hardware.
type Session struct {
	rt     *Runtime
	cpu    *cpu.CPU
	Image  pal.Image
	Region mem.Region
	Launch *cpu.LaunchResult

	// Input is presented to the PAL via SvcNumInput; Output collects
	// SvcNumOutput bytes.
	Input  []byte
	Output []byte

	// Breakdown maps phase names to accumulated virtual time, the
	// decomposition Figure 2 charts.
	Breakdown map[string]time.Duration
	// Total is the end-to-end session overhead.
	Total time.Duration
	// ExitStatus is r0 at SvcNumExit.
	ExitStatus uint32

	// tpmTime accumulates time spent in TPM service calls, so PhaseExec
	// can be reported net of the separately-charted TPM phases.
	tpmTime time.Duration
}

// ErrPALFault wraps a PAL crash.
var ErrPALFault = errors.New("sea: PAL faulted")

// sealSelection is the PCR set PAL state is bound to: PCR 17 on AMD, 17+18
// on Intel (§3.3).
func (rt *Runtime) sealSelection() tpm.Selection {
	if rt.Kernel.Machine.Profile.CPUParams.Vendor == cpu.Intel {
		return tpm.Selection{17, 18}
	}
	return tpm.Selection{17}
}

// Execute suspends the legacy environment, late launches the image, runs
// the PAL to completion, and resumes the legacy environment. The whole
// platform is stalled for the session's duration — SEA's fundamental
// concurrency cost on today's hardware (§4.2).
func (rt *Runtime) Execute(image pal.Image, input []byte) (*Session, error) {
	k := rt.Kernel
	m := k.Machine
	s := &Session{
		rt:        rt,
		Image:     image,
		Input:     input,
		Breakdown: map[string]time.Duration{},
	}
	total := sim.StartStopwatch(m.Clock)

	region, err := k.PlaceImage(image.Bytes, 0)
	if err != nil {
		return nil, err
	}
	s.Region = region
	defer func() {
		// The driver zeroes the PAL's memory before handing the pages
		// back to the OS pool. Well-behaved PALs erase their own
		// secrets (§3.3), but a crashed PAL must not leak through the
		// allocator either.
		m.Chipset.Memory().ZeroRange(region.Base, region.Size)
		m.Chipset.SetDEVRegion(region, false)
		k.ReleaseRegion(region)
	}()

	// Deferred in this order so that, on any return path, the legacy OS
	// resumes first and the session total then covers the whole window
	// including that resume (defers run LIFO).
	defer s.finish(total)
	k.SuspendLegacy()
	defer k.ResumeLegacy()

	core := m.BootCPU()
	s.cpu = core

	sw := sim.StartStopwatch(m.Clock)
	launch, err := m.LateLaunch(core, region.Base)
	if err != nil {
		return nil, fmt.Errorf("sea: late launch: %w", err)
	}
	s.Launch = launch
	s.Breakdown[PhaseLaunch] = sw.Elapsed()

	core.SetService(s.service)
	sw = sim.StartStopwatch(m.Clock)
	reason, err := core.Run(0)
	s.Breakdown[PhaseExec] += sw.Elapsed() - s.tpmTime
	if err != nil {
		return s, fmt.Errorf("%w: %v", ErrPALFault, err)
	}
	if reason != cpu.StopHalt {
		return s, fmt.Errorf("%w: unexpected stop %v", ErrPALFault, reason)
	}
	core.ClearMicroarchState()
	return s, nil
}

// finish closes the books: total time, whole-platform stall accounting.
func (s *Session) finish(total sim.Stopwatch) {
	s.Total = total.Elapsed()
	s.rt.Kernel.StallAllCPUs(s.Total)
}

// Quote produces the attestation an external party needs, over the dynamic
// PCRs holding the PAL measurement. The paper charts this separately in
// Figure 2 because it can run after the OS resumes.
func (rt *Runtime) Quote(nonce []byte) (*tpm.Quote, time.Duration, error) {
	m := rt.Kernel.Machine
	if !m.Chipset.HasTPM() {
		return nil, 0, errors.New("sea: no TPM on this platform")
	}
	sw := sim.StartStopwatch(m.Clock)
	q, err := m.TPM().QuoteCommand(rt.sealSelection(), nonce)
	if err != nil {
		return nil, 0, err
	}
	return q, sw.Elapsed(), nil
}
