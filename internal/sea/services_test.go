package sea

import (
	"errors"
	"testing"

	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
)

// TPM-dependent services must fault the PAL on TPM-less platforms rather
// than silently succeed.
func TestTPMServicesFaultWithoutTPM(t *testing.T) {
	rt := newRuntime(t, platform.TyanN3600R())
	for _, svc := range []int{2, 3, 4, 5} {
		im := pal.MustBuild("svc " + string(rune('0'+svc)) + "\nldi r0, 0\nsvc 0")
		_, err := rt.Execute(im, nil)
		if !errors.Is(err, ErrPALFault) {
			t.Errorf("svc %d without TPM: %v", svc, err)
		}
	}
}

func TestUnknownServiceFaults(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild("svc 99")
	if _, err := rt.Execute(im, nil); !errors.Is(err, ErrPALFault) {
		t.Fatalf("unknown service: %v", err)
	}
}

func TestInputTruncation(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	// The PAL asks for up to 4 bytes; the host supplies 10.
	im := pal.MustBuild(`
		ldi	r0, buf
		ldi	r1, 4
		svc	7
		mov	r1, r0	; r1 = bytes copied
		ldi	r0, buf
		svc	6
		ldi	r0, 0
		svc	0
	buf:	.space 16
	`)
	s, err := rt.Execute(im, []byte("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Output) != "0123" {
		t.Fatalf("output %q, want truncated read... got full input?", s.Output)
	}
}

func TestGetTimeService(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(`
		svc	8
		ldi	r1, out
		store	r0, [r1]
		ldi	r0, out
		ldi	r1, 4
		svc	6
		ldi	r0, 0
		svc	0
	out:	.word 0
	`)
	s, err := rt.Execute(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := uint32(s.Output[0]) | uint32(s.Output[1])<<8 | uint32(s.Output[2])<<16 | uint32(s.Output[3])<<24
	// The launch alone costs ~ms of virtual time before the PAL reads
	// the clock, so the value must be well above zero.
	if v == 0 {
		t.Fatal("PAL read zero virtual time after a late launch")
	}
}

func TestExtendServiceChangesPCR17(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(`
		ldi	r0, data
		ldi	r1, 5
		svc	2
		ldi	r0, 0
		svc	0
	data:	.ascii "input"
	`)
	before17 := func() [20]byte {
		v, _ := rt.Kernel.Machine.TPM().PCRValue(17)
		return v
	}
	if _, err := rt.Execute(im, nil); err != nil {
		t.Fatal(err)
	}
	after := before17()
	// PCR17 = extend(extend(0, PAL), input-measurement) — two links.
	launchOnly := pal.MustBuild("ldi r0, 0\nsvc 0")
	if _, err := rt.Execute(launchOnly, nil); err != nil {
		t.Fatal(err)
	}
	other := before17()
	if after == other {
		t.Fatal("svc 2 left no trace in PCR17")
	}
}

// A service call with a bad pointer faults cleanly.
func TestServiceBadPointerFaults(t *testing.T) {
	rt := newRuntime(t, fastProfile())
	im := pal.MustBuild(`
		ldi	r0, 0xff00	; outside the image
		ldi	r1, 64
		svc	6
	`)
	if _, err := rt.Execute(im, nil); !errors.Is(err, ErrPALFault) {
		t.Fatalf("bad output pointer: %v", err)
	}
}
