package experiments

import (
	"fmt"
	"io"
	"time"

	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// Figure3Ops are the charted operations, in the paper's x-axis order.
var Figure3Ops = []string{"PCR Extend", "Seal", "Quote", "Unseal", "GetRand 128B"}

// Figure3Cell is one bar: mean and standard deviation over the trials.
type Figure3Cell struct {
	Mean, Stdev time.Duration
}

// Figure3Row is one TPM's set of bars.
type Figure3Row struct {
	TPM   string
	Cells map[string]Figure3Cell
}

// Figure3 reproduces "Figure 3. TPM benchmarks" across the four measured
// chips: PCR Extend, Seal, Quote, Unseal and GetRandom(128 B), with error
// bars over Trials runs (the paper uses 20).
func Figure3(cfg Config) ([]Figure3Row, error) {
	cfg = cfg.withDefaults()
	machines := []platform.Profile{
		platform.LenovoT60(),
		platform.HPdc5750(),
		platform.AMDInfineonWS(),
		platform.IntelTEP(),
	}
	rows := make([]Figure3Row, 0, len(machines))
	for _, p := range machines {
		p.KeyBits = cfg.KeyBits
		p.Seed = cfg.Seed
		m, err := platform.New(p)
		if err != nil {
			return nil, err
		}
		chip := m.TPM()
		clock := m.Clock
		row := Figure3Row{TPM: chip.Profile().Name, Cells: map[string]Figure3Cell{}}

		samples := map[string]*sim.Sample{}
		for _, op := range Figure3Ops {
			samples[op] = &sim.Sample{}
		}
		payload := make([]byte, tpm.SealGenPayload)
		for trial := 0; trial < cfg.Trials; trial++ {
			// PCR Extend.
			sw := sim.StartStopwatch(clock)
			if _, err := chip.Extend(10, tpm.Measure([]byte("event"))); err != nil {
				return nil, err
			}
			samples["PCR Extend"].Add(sw.Elapsed())

			// Seal (1 KB payload, the PAL Gen convention).
			sw = sim.StartStopwatch(clock)
			blob, err := chip.Seal(tpm.Selection{10}, payload)
			if err != nil {
				return nil, err
			}
			samples["Seal"].Add(sw.Elapsed())

			// Quote.
			sw = sim.StartStopwatch(clock)
			if _, err := chip.QuoteCommand(tpm.Selection{10}, []byte("nonce")); err != nil {
				return nil, err
			}
			samples["Quote"].Add(sw.Elapsed())

			// Unseal.
			sw = sim.StartStopwatch(clock)
			if _, err := chip.Unseal(blob); err != nil {
				return nil, err
			}
			samples["Unseal"].Add(sw.Elapsed())

			// GetRandom 128 B.
			sw = sim.StartStopwatch(clock)
			if _, err := chip.GetRandom(128); err != nil {
				return nil, err
			}
			samples["GetRand 128B"].Add(sw.Elapsed())
		}
		for op, s := range samples {
			row.Cells[op] = Figure3Cell{Mean: s.Mean(), Stdev: s.Stdev()}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure3 writes the bars as a table (TPMs as rows).
func RenderFigure3(w io.Writer, rows []Figure3Row) {
	fmt.Fprintln(w, "Figure 3. TPM benchmarks: mean ms (stdev) over trials")
	fmt.Fprintf(w, "%-28s", "TPM")
	for _, op := range Figure3Ops {
		fmt.Fprintf(w, " %18s", op)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s", r.TPM)
		for _, op := range Figure3Ops {
			c := r.Cells[op]
			fmt.Fprintf(w, " %18s", fmt.Sprintf("%s (±%.1f)", fmtMS(c.Mean), ms(c.Stdev)))
		}
		fmt.Fprintln(w)
	}
}
