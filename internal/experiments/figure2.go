package experiments

import (
	"fmt"
	"io"
	"time"

	"minimaltcb/internal/osker"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sea"
	"minimaltcb/internal/sim"
)

// Figure2Bar is one stacked bar of Figure 2: a flow and its phase
// decomposition.
type Figure2Bar struct {
	// Name is "PAL Gen", "Quote" or "PAL Use".
	Name string
	// Phases maps phase name (SKINIT, Seal, Unseal, Quote) to mean time.
	Phases map[string]time.Duration
	// Total is the mean end-to-end overhead.
	Total time.Duration
}

// Figure2 reproduces "Figure 2. Breakdown of overheads that will be
// incurred by generic applications implemented in the SEA model" on the
// HP dc5750 (Broadcom TPM): PAL Gen (SKINIT + Seal), TPM Quote, and PAL
// Use (SKINIT + Unseal + Seal). The paper averages 100 runs; Trials
// controls that here.
func Figure2(cfg Config) ([]Figure2Bar, error) {
	cfg = cfg.withDefaults()
	p := platform.HPdc5750()
	p.KeyBits = cfg.KeyBits
	p.Seed = cfg.Seed

	gen := Figure2Bar{Name: "PAL Gen", Phases: map[string]time.Duration{}}
	quote := Figure2Bar{Name: "Quote", Phases: map[string]time.Duration{}}
	use := Figure2Bar{Name: "PAL Use", Phases: map[string]time.Duration{}}
	var genTotal, quoteTotal, useTotal sim.Sample

	for trial := 0; trial < cfg.Trials; trial++ {
		m, err := platform.New(p)
		if err != nil {
			return nil, err
		}
		rt := sea.NewRuntime(osker.NewKernel(m))

		// PAL Gen.
		s, err := rt.RunPALGen()
		if err != nil {
			return nil, fmt.Errorf("figure2 PAL Gen: %w", err)
		}
		accumulate(gen.Phases, s.Breakdown, cfg.Trials)
		genTotal.Add(s.Total)

		// Quote.
		_, qd, err := rt.Quote([]byte("figure2 nonce"))
		if err != nil {
			return nil, err
		}
		quote.Phases[sea.PhaseQuote] += qd / time.Duration(cfg.Trials)
		quoteTotal.Add(qd)

		// PAL Use needs state sealed to its own identity; provision it
		// exactly as a prior PAL Use session would have left it.
		useImage := sea.BuildPALUse(true)
		prior, err := rt.SealForImage(useImage, make([]byte, sea.GenPayload))
		if err != nil {
			return nil, err
		}
		u, err := rt.RunPALUse(prior, true)
		if err != nil {
			return nil, fmt.Errorf("figure2 PAL Use: %w", err)
		}
		accumulate(use.Phases, u.Breakdown, cfg.Trials)
		useTotal.Add(u.Total)
	}
	gen.Total = genTotal.Mean()
	quote.Total = quoteTotal.Mean()
	use.Total = useTotal.Mean()
	return []Figure2Bar{gen, quote, use}, nil
}

// accumulate adds breakdown/trials into dst (streaming mean).
func accumulate(dst, src map[string]time.Duration, trials int) {
	for k, v := range src {
		dst[k] += v / time.Duration(trials)
	}
}

// figure2PhaseOrder is the stacking order of the paper's legend.
var figure2PhaseOrder = []string{sea.PhaseLaunch, sea.PhaseSeal, sea.PhaseUnseal, sea.PhaseQuote}

// RenderFigure2 writes the bars as a text table (phases as columns).
func RenderFigure2(w io.Writer, bars []Figure2Bar) {
	fmt.Fprintln(w, "Figure 2. SEA application overhead breakdown, HP dc5750 + Broadcom TPM (ms)")
	fmt.Fprintf(w, "%-10s", "")
	for _, ph := range figure2PhaseOrder {
		fmt.Fprintf(w, " %10s", ph)
	}
	fmt.Fprintf(w, " %10s\n", "Total")
	for _, b := range bars {
		fmt.Fprintf(w, "%-10s", b.Name)
		for _, ph := range figure2PhaseOrder {
			if d, ok := b.Phases[ph]; ok && d > 0 {
				fmt.Fprintf(w, " %10s", fmtMS(d))
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintf(w, " %10s\n", fmtMS(b.Total))
	}
}
