package experiments

import (
	"fmt"
	"io"
	"time"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sea"
	"minimaltcb/internal/sksm"
	"minimaltcb/internal/tpm"
)

// This file holds the ablation studies DESIGN.md §5 calls out: design
// choices the paper discusses qualitatively, quantified on the simulator.

// --- Ablation 1: hash-on-TPM (AMD) vs hash-on-CPU (Intel) ---

// HashLocationPoint compares the two late-launch designs at one PAL size.
type HashLocationPoint struct {
	Size       int
	AMD, Intel time.Duration
}

// AblationHashLocation sweeps PAL sizes to locate the crossover between
// AMD's ship-the-PAL-to-the-TPM design and Intel's hash-on-CPU design
// (§4.3.2: "for large PALs, Intel's implementation decision pays off").
func AblationHashLocation(cfg Config, sizes []int) ([]HashLocationPoint, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{4 << 10, 8 << 10, 9 << 10, 10 << 10, 12 << 10, 16 << 10, 32 << 10, 64 << 10}
	}
	amd := platform.HPdc5750()
	intel := platform.IntelTEP()
	amd.KeyBits, intel.KeyBits = cfg.KeyBits, cfg.KeyBits
	var out []HashLocationPoint
	for _, size := range sizes {
		a, err := lateLaunchLatencyFresh(amd, size)
		if err != nil {
			return nil, err
		}
		i, err := lateLaunchLatencyFresh(intel, size)
		if err != nil {
			return nil, err
		}
		out = append(out, HashLocationPoint{Size: size, AMD: a, Intel: i})
	}
	return out, nil
}

// RenderHashLocation writes the sweep and marks the crossover.
func RenderHashLocation(w io.Writer, pts []HashLocationPoint) {
	fmt.Fprintln(w, "Ablation: late-launch hash location (AMD hash-on-TPM vs Intel hash-on-CPU)")
	fmt.Fprintf(w, "%8s %12s %12s %s\n", "PAL", "AMD ms", "Intel ms", "winner")
	for _, p := range pts {
		winner := "AMD"
		if p.Intel < p.AMD {
			winner = "Intel"
		}
		fmt.Fprintf(w, "%7dK %12s %12s %s\n", p.Size/1024, fmtMS(p.AMD), fmtMS(p.Intel), winner)
	}
}

// --- Ablation 2: TPM wait-state behaviour ---

// TPMWaitResult contrasts a long-wait TPM with a full-bus-speed TPM.
type TPMWaitResult struct {
	LongWait, FullSpeed time.Duration
	Factor              float64
}

// AblationTPMWait quantifies how much of SKINIT's cost is the TPM's
// long-wait cycles: a 64 KB launch through the dc5750's wait-stating TPM
// versus a hypothetical full-bus-speed TPM (the paper reads the Tyan's
// 8.82 ms as "representative of the performance of future TPMs").
func AblationTPMWait(cfg Config) (*TPMWaitResult, error) {
	cfg = cfg.withDefaults()
	slow := platform.HPdc5750()
	slow.KeyBits = cfg.KeyBits
	fast := platform.HPdc5750()
	fast.KeyBits = cfg.KeyBits
	fast.BusTiming = lpc.FullSpeed()
	a, err := lateLaunchLatencyFresh(slow, 64<<10)
	if err != nil {
		return nil, err
	}
	b, err := lateLaunchLatencyFresh(fast, 64<<10)
	if err != nil {
		return nil, err
	}
	return &TPMWaitResult{LongWait: a, FullSpeed: b, Factor: float64(a) / float64(b)}, nil
}

// RenderTPMWait writes the contrast.
func RenderTPMWait(w io.Writer, r *TPMWaitResult) {
	fmt.Fprintln(w, "Ablation: TPM long-wait cycles (64 KB SKINIT)")
	fmt.Fprintf(w, "  wait-stating TPM:   %s ms\n", fmtMS(r.LongWait))
	fmt.Fprintf(w, "  full-bus-speed TPM: %s ms\n", fmtMS(r.FullSpeed))
	fmt.Fprintf(w, "  factor: %.1fx\n", r.Factor)
}

// --- Ablation 3: sePCR provisioning ---

// SePCRPoint reports admission behaviour at one register count.
type SePCRPoint struct {
	SePCRs   int
	Offered  int
	Admitted int
	Rejected int
}

// AblationSePCRCount offers a fixed load of concurrent (suspended) PALs to
// TPMs provisioned with different sePCR counts: the register count is the
// hard concurrency limit §5.4 describes ("the number of sePCRs present in
// a TPM establishes the limit for the number of concurrently executing
// PALs").
func AblationSePCRCount(cfg Config, offered int, counts []int) ([]SePCRPoint, error) {
	cfg = cfg.withDefaults()
	if offered <= 0 {
		offered = 8
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	im := pal.MustBuild(`
		svc 1
		ldi r0, 0
		svc 0
	`)
	var out []SePCRPoint
	for _, n := range counts {
		p := platform.Recommended(platform.HPdc5750(), n)
		p.KeyBits = cfg.KeyBits
		p.NumCPUs = 2
		m, err := platform.New(p)
		if err != nil {
			return nil, err
		}
		mg, err := sksm.NewManager(osker.NewKernel(m))
		if err != nil {
			return nil, err
		}
		pt := SePCRPoint{SePCRs: n, Offered: offered}
		core := m.CPUs[1]
		for i := 0; i < offered; i++ {
			s, err := mg.NewSECB(im, 0, 0)
			if err != nil {
				return nil, err
			}
			// Launch and immediately yield: the PAL stays live
			// (suspended), holding its register.
			if _, err := mg.RunSlice(core, s); err != nil {
				pt.Rejected++
				continue
			}
			pt.Admitted++
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderSePCRCount writes the admission table.
func RenderSePCRCount(w io.Writer, pts []SePCRPoint) {
	fmt.Fprintln(w, "Ablation: sePCR provisioning vs concurrent-PAL admission")
	fmt.Fprintf(w, "%8s %8s %10s %10s\n", "sePCRs", "offered", "admitted", "rejected")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %8d %10d %10d\n", p.SePCRs, p.Offered, p.Admitted, p.Rejected)
	}
}

// --- Ablation 4: preemption quantum ---

// QuantumPoint reports scheduling behaviour at one quantum.
type QuantumPoint struct {
	Quantum  time.Duration
	Slices   int
	Wall     time.Duration
	Overhead float64 // context-switch time as a share of wall time
}

// AblationQuantum sweeps the SECB preemption timer for a fixed-work PAL:
// small quanta bound PAL monopolization of a core (availability for the
// legacy OS) at the price of more world switches (§5.3, §6).
func AblationQuantum(cfg Config, quanta []time.Duration) ([]QuantumPoint, error) {
	cfg = cfg.withDefaults()
	if len(quanta) == 0 {
		quanta = []time.Duration{
			time.Microsecond, 5 * time.Microsecond, 20 * time.Microsecond,
			100 * time.Microsecond, 0, // 0 = run to completion
		}
	}
	im := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 50000
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		ldi	r0, 0
		svc	0
	`)
	var out []QuantumPoint
	for _, q := range quanta {
		p := platform.Recommended(platform.HPdc5750(), 1)
		p.KeyBits = cfg.KeyBits
		m, err := platform.New(p)
		if err != nil {
			return nil, err
		}
		mg, err := sksm.NewManager(osker.NewKernel(m))
		if err != nil {
			return nil, err
		}
		s, err := mg.NewSECB(im, 0, q)
		if err != nil {
			return nil, err
		}
		core := m.CPUs[1]
		start := m.Clock.Now()
		if err := mg.RunToCompletion(core, s); err != nil {
			return nil, err
		}
		wall := m.Clock.Now() - start
		switchTime := time.Duration(s.Resumes) * (core.Params.VMEnter + core.Params.VMExit)
		out = append(out, QuantumPoint{
			Quantum:  q,
			Slices:   s.Slices,
			Wall:     wall,
			Overhead: float64(switchTime) / float64(wall),
		})
	}
	return out, nil
}

// RenderQuantum writes the sweep.
func RenderQuantum(w io.Writer, pts []QuantumPoint) {
	fmt.Fprintln(w, "Ablation: preemption quantum vs context-switch overhead (150k-instruction PAL)")
	fmt.Fprintf(w, "%14s %8s %12s %10s\n", "quantum", "slices", "wall", "switch ovh")
	for _, p := range pts {
		q := "run-to-end"
		if p.Quantum > 0 {
			q = p.Quantum.String()
		}
		fmt.Fprintf(w, "%14s %8d %12v %9.2f%%\n", q, p.Slices, p.Wall, 100*p.Overhead)
	}
}

// --- Ablation 5: Figure 2 across TPM vendors ---

// CrossPlatformRow is Figure 2's flows on one machine.
type CrossPlatformRow struct {
	Machine string
	PALGen  time.Duration
	Quote   time.Duration
	PALUse  time.Duration
}

// AblationFigure2CrossPlatform repeats Figure 2's generic-application
// measurement on every TPM-equipped machine, not just the dc5750 the
// paper charts: the vendor spread of Figure 3 propagates directly into
// application-level overheads, supporting the paper's point that the TPM
// is the bottleneck.
func AblationFigure2CrossPlatform(cfg Config) ([]CrossPlatformRow, error) {
	cfg = cfg.withDefaults()
	machines := []platform.Profile{
		platform.HPdc5750(),
		platform.AMDInfineonWS(),
		platform.LenovoT60(),
		platform.IntelTEP(),
	}
	var out []CrossPlatformRow
	for _, p := range machines {
		p.KeyBits = cfg.KeyBits
		p.Seed = cfg.Seed
		m, err := platform.New(p)
		if err != nil {
			return nil, err
		}
		rt := sea.NewRuntime(osker.NewKernel(m))
		gen, err := rt.RunPALGen()
		if err != nil {
			return nil, fmt.Errorf("%s: PAL Gen: %w", p.Name, err)
		}
		_, qd, err := rt.Quote([]byte("xplat nonce"))
		if err != nil {
			return nil, err
		}
		useImage := sea.BuildPALUse(true)
		prior, err := rt.SealForImage(useImage, make([]byte, sea.GenPayload))
		if err != nil {
			return nil, err
		}
		use, err := rt.RunPALUse(prior, true)
		if err != nil {
			return nil, fmt.Errorf("%s: PAL Use: %w", p.Name, err)
		}
		out = append(out, CrossPlatformRow{
			Machine: p.Name,
			PALGen:  gen.Total,
			Quote:   qd,
			PALUse:  use.Total,
		})
	}
	return out, nil
}

// RenderCrossPlatform writes the vendor sweep.
func RenderCrossPlatform(w io.Writer, rows []CrossPlatformRow) {
	fmt.Fprintln(w, "Ablation: Figure 2's flows across TPM vendors (ms)")
	fmt.Fprintf(w, "%-36s %10s %10s %10s\n", "Machine", "PAL Gen", "Quote", "PAL Use")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %10s %10s %10s\n",
			r.Machine, fmtMS(r.PALGen), fmtMS(r.Quote), fmtMS(r.PALUse))
	}
}

// --- Ablation 6: seal payload size ---

// SealPayloadPoint is one payload size's Seal latency.
type SealPayloadPoint struct {
	Payload int
	Latency time.Duration
}

// AblationSealPayload sweeps TPM_Seal payload sizes on the Broadcom,
// exposing the base + per-KB structure the paper's two published Seal
// numbers (11.39 ms and 20.01 ms) imply.
func AblationSealPayload(cfg Config, payloads []int) ([]SealPayloadPoint, error) {
	cfg = cfg.withDefaults()
	if len(payloads) == 0 {
		payloads = []int{0, 256, 1024, 4096, 16384, 65536}
	}
	p := platform.HPdc5750()
	p.KeyBits = cfg.KeyBits
	m, err := platform.New(p)
	if err != nil {
		return nil, err
	}
	chip := m.TPM()
	var out []SealPayloadPoint
	for _, n := range payloads {
		// Average a few trials to smooth profile jitter.
		var total time.Duration
		for trial := 0; trial < cfg.Trials; trial++ {
			start := m.Clock.Now()
			if _, err := chip.Seal(tpm.Selection{0}, make([]byte, n)); err != nil {
				return nil, err
			}
			total += m.Clock.Now() - start
		}
		out = append(out, SealPayloadPoint{Payload: n, Latency: total / time.Duration(cfg.Trials)})
	}
	return out, nil
}

// RenderSealPayload writes the sweep.
func RenderSealPayload(w io.Writer, pts []SealPayloadPoint) {
	fmt.Fprintln(w, "Ablation: TPM_Seal latency vs payload size (Broadcom)")
	fmt.Fprintf(w, "%10s %12s\n", "payload", "latency ms")
	for _, p := range pts {
		fmt.Fprintf(w, "%9dB %12s\n", p.Payload, fmtMS(p.Latency))
	}
}
