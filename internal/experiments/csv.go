package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters: every experiment can also render as machine-readable
// rows for plotting, one file/section per artefact. All durations are in
// milliseconds except Table 2 and the impact comparison's recommended
// path, which use microseconds (matching the paper's units).

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// CSVTable1 emits machine,size_kb,latency_ms rows.
func CSVTable1(out io.Writer, rows []Table1Row) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"machine", "tpm", "pal_kb", "latency_ms"}}
	for _, r := range rows {
		for _, size := range Table1Sizes {
			recs = append(recs, []string{
				r.Config, strconv.FormatBool(r.HasTPM),
				strconv.Itoa(size / 1024), f(ms(r.Avg[size])),
			})
		}
	}
	return writeAll(w, recs)
}

// CSVFigure2 emits flow,phase,latency_ms rows plus totals.
func CSVFigure2(out io.Writer, bars []Figure2Bar) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"flow", "phase", "latency_ms"}}
	for _, b := range bars {
		for _, ph := range figure2PhaseOrder {
			if d, ok := b.Phases[ph]; ok && d > 0 {
				recs = append(recs, []string{b.Name, ph, f(ms(d))})
			}
		}
		recs = append(recs, []string{b.Name, "total", f(ms(b.Total))})
	}
	return writeAll(w, recs)
}

// CSVFigure3 emits tpm,operation,mean_ms,stdev_ms rows.
func CSVFigure3(out io.Writer, rows []Figure3Row) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"tpm", "operation", "mean_ms", "stdev_ms"}}
	for _, r := range rows {
		for _, op := range Figure3Ops {
			c := r.Cells[op]
			recs = append(recs, []string{r.TPM, op, f(ms(c.Mean)), f(ms(c.Stdev))})
		}
	}
	return writeAll(w, recs)
}

// CSVTable2 emits platform,operation,mean_us,stdev_us rows.
func CSVTable2(out io.Writer, rows []Table2Row) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"platform", "operation", "mean_us", "stdev_us"}}
	for _, r := range rows {
		recs = append(recs,
			[]string{r.Platform, "vm_enter", f(us(r.EnterAvg)), f(us(r.EnterStd))},
			[]string{r.Platform, "vm_exit", f(us(r.ExitAvg)), f(us(r.ExitStd))})
	}
	return writeAll(w, recs)
}

// CSVImpact emits the §5.7 comparison.
func CSVImpact(out io.Writer, r *ImpactResult) error {
	w := csv.NewWriter(out)
	return writeAll(w, [][]string{
		{"path", "value", "unit"},
		{"legacy_switch_in", f(ms(r.LegacySwitchIn)), "ms"},
		{"legacy_switch_out", f(ms(r.LegacySwitchOut)), "ms"},
		{"legacy_round_trip", f(ms(r.LegacyRoundTrip)), "ms"},
		{"recommended_switch_in", f(us(r.RecommendedSwitchIn)), "us"},
		{"recommended_switch_out", f(us(r.RecommendedSwitchOut)), "us"},
		{"recommended_round_trip", f(us(r.RecommendedRoundTrip)), "us"},
		{"speedup", f(r.Speedup), "x"},
		{"orders_of_magnitude", f(r.OrdersOfMagnitude), "log10"},
	})
}

// CSVConcurrency emits the sweep.
func CSVConcurrency(out io.Writer, pts []ConcurrencyPoint) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"pals", "legacy_share_sea", "legacy_share_rec",
		"wall_sea_ms", "wall_rec_ms", "jobs_sea", "jobs_rec"}}
	for _, p := range pts {
		recs = append(recs, []string{
			strconv.Itoa(p.PALs), f(p.LegacyShareSEA), f(p.LegacyShareRec),
			f(ms(p.WallSEA)), f(ms(p.WallRec)),
			strconv.FormatInt(p.JobsSEA, 10), strconv.FormatInt(p.JobsRec, 10),
		})
	}
	return writeAll(w, recs)
}

// CSVHashLocation emits the AMD/Intel crossover sweep.
func CSVHashLocation(out io.Writer, pts []HashLocationPoint) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"pal_kb", "amd_ms", "intel_ms"}}
	for _, p := range pts {
		recs = append(recs, []string{
			strconv.Itoa(p.Size / 1024), f(ms(p.AMD)), f(ms(p.Intel)),
		})
	}
	return writeAll(w, recs)
}

// WriteAllCSV runs every experiment and writes one labelled CSV section
// per artefact — the single-call export cmd/seabench -format csv uses.
func WriteAllCSV(out io.Writer, cfg Config) error {
	section := func(name string) { fmt.Fprintf(out, "# %s\n", name) }

	section("table1")
	t1, err := Table1(cfg)
	if err != nil {
		return err
	}
	if err := CSVTable1(out, t1); err != nil {
		return err
	}

	section("figure2")
	f2, err := Figure2(cfg)
	if err != nil {
		return err
	}
	if err := CSVFigure2(out, f2); err != nil {
		return err
	}

	section("figure3")
	f3, err := Figure3(cfg)
	if err != nil {
		return err
	}
	if err := CSVFigure3(out, f3); err != nil {
		return err
	}

	section("table2")
	t2, err := Table2(cfg)
	if err != nil {
		return err
	}
	if err := CSVTable2(out, t2); err != nil {
		return err
	}

	section("impact")
	imp, err := Impact(cfg)
	if err != nil {
		return err
	}
	if err := CSVImpact(out, imp); err != nil {
		return err
	}

	section("concurrency")
	conc, err := Concurrency(cfg, nil)
	if err != nil {
		return err
	}
	if err := CSVConcurrency(out, conc); err != nil {
		return err
	}

	section("hash_location")
	hl, err := AblationHashLocation(cfg, nil)
	if err != nil {
		return err
	}
	return CSVHashLocation(out, hl)
}
