// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// returns structured results and can render itself as text in the paper's
// layout; cmd/seabench is a thin wrapper, and bench_test.go at the module
// root wraps each experiment in a testing.B benchmark.
//
// All results are in *virtual* time: the simulator charges calibrated
// hardware latencies to a virtual clock (see internal/sim), so regenerated
// numbers are directly comparable to the paper's tables regardless of the
// host machine.
package experiments

import (
	"fmt"
	"time"
)

// Config tunes experiment execution.
type Config struct {
	// Trials is the number of repetitions per data point. The paper uses
	// 100 for Figure 2 and 20 for Figure 3/Table 2.
	Trials int
	// KeyBits sizes the RSA keys of simulated TPMs. Experiments default
	// to 1024 for speed: modeled latencies come from the vendor timing
	// profiles, not from the host's RSA throughput, so key size does not
	// affect any reported number.
	KeyBits int
	// Seed drives simulation randomness (TPM jitter, GetRandom).
	Seed uint64
}

// Default returns the configuration used for the committed EXPERIMENTS.md
// numbers.
func Default() Config { return Config{Trials: 20, KeyBits: 1024, Seed: 42} }

// Quick returns a reduced-trials configuration for smoke tests.
func Quick() Config { return Config{Trials: 3, KeyBits: 1024, Seed: 42} }

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 20
	}
	if c.KeyBits == 0 {
		c.KeyBits = 1024
	}
	return c
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// us renders a duration as fractional microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// fmtMS formats a duration like the paper's tables (two decimals, ms).
func fmtMS(d time.Duration) string { return fmt.Sprintf("%.2f", ms(d)) }
