package experiments

import (
	"fmt"
	"io"
	"math"
)

// Check is one paper-vs-measured comparison of the verification report.
type Check struct {
	// Artefact names the table/figure; Metric the specific number.
	Artefact, Metric string
	// Paper is the published value; Measured the regenerated one; Unit
	// the shared unit label.
	Paper, Measured float64
	Unit            string
	// TolFrac is the acceptance band as a fraction of the paper value.
	TolFrac float64
	// OK reports whether Measured lies within the band.
	OK bool
}

func check(artefact, metric string, paper, measured float64, unit string, tol float64) Check {
	ok := math.Abs(measured-paper) <= paper*tol
	if paper < 0.05 {
		// "0.00"/"0.01 ms"-class rows are at the paper's measurement
		// noise floor; accept anything under a tenth of the unit.
		ok = math.Abs(measured) <= 0.1
	}
	return Check{Artefact: artefact, Metric: metric, Paper: paper,
		Measured: measured, Unit: unit, TolFrac: tol, OK: ok}
}

// VerifyAll regenerates the evaluation and compares every number the paper
// prints (and its headline claims) against the simulator, returning one
// Check per comparison. It is the executable form of EXPERIMENTS.md.
func VerifyAll(cfg Config) ([]Check, error) {
	cfg = cfg.withDefaults()
	var out []Check

	// --- Table 1 ---
	t1, err := Table1(cfg)
	if err != nil {
		return nil, err
	}
	paperT1 := []struct {
		row   int
		wants map[int]float64
	}{
		{0, map[int]float64{0: 0, 4096: 11.94, 8192: 22.98, 16384: 45.05, 32768: 89.21, 65536: 177.52}},
		{1, map[int]float64{0: 0.01, 4096: 0.56, 8192: 1.11, 16384: 2.21, 32768: 4.41, 65536: 8.82}},
		{2, map[int]float64{0: 26.39, 4096: 26.88, 8192: 27.38, 16384: 28.37, 32768: 30.46, 65536: 34.35}},
	}
	for _, row := range paperT1 {
		for _, size := range Table1Sizes {
			out = append(out, check("Table 1", fmt.Sprintf("%s @%dKB", t1[row.row].Config, size/1024),
				row.wants[size], ms(t1[row.row].Avg[size]), "ms", 0.02))
		}
	}

	// --- Figure 2 ---
	f2, err := Figure2(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out,
		check("Figure 2", "PAL Gen total (\"approximately 200 ms\")", 200, ms(f2[0].Total), "ms", 0.05),
		check("Figure 2", "PAL Use total (\"over a second\")", 1100, ms(f2[2].Total), "ms", 0.10),
		check("Figure 2", "PAL Use Unseal", 905, ms(f2[2].Phases["Unseal"]), "ms", 0.03),
	)

	// --- Figure 3 text anchors ---
	f3, err := Figure3(cfg)
	if err != nil {
		return nil, err
	}
	byName := map[string]Figure3Row{}
	for _, r := range f3 {
		byName[r.TPM] = r
	}
	broadcom := byName["Broadcom (HP dc5750)"]
	infineon := byName["Infineon (AMD workstation)"]
	out = append(out,
		check("Figure 3", "Broadcom Seal (1 KB)", 20.01, ms(broadcom.Cells["Seal"].Mean), "ms", 0.15),
		check("Figure 3", "Infineon Unseal", 390.98, ms(infineon.Cells["Unseal"].Mean), "ms", 0.03),
		check("Figure 3", "Broadcom-Infineon Quote+Unseal delta", 1132,
			ms(broadcom.Cells["Quote"].Mean+broadcom.Cells["Unseal"].Mean)-
				ms(infineon.Cells["Quote"].Mean+infineon.Cells["Unseal"].Mean), "ms", 0.03),
	)

	// --- Table 2 ---
	t2, err := Table2(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out,
		check("Table 2", "AMD VM enter", 0.5580, us(t2[0].EnterAvg), "µs", 0.01),
		check("Table 2", "AMD VM exit", 0.5193, us(t2[0].ExitAvg), "µs", 0.01),
		check("Table 2", "Intel VM enter", 0.4457, us(t2[1].EnterAvg), "µs", 0.01),
		check("Table 2", "Intel VM exit", 0.4491, us(t2[1].ExitAvg), "µs", 0.01),
	)

	// --- §5.7 headline ---
	imp, err := Impact(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out,
		check("§5.7", "orders of magnitude (\"six\")", 6, imp.OrdersOfMagnitude, "log10", 0.10),
	)
	return out, nil
}

// RenderVerify writes the report; it returns the number of failed checks.
func RenderVerify(w io.Writer, checks []Check) int {
	fmt.Fprintln(w, "Reproduction verification: paper value vs regenerated value")
	fmt.Fprintf(w, "%-10s %-44s %12s %12s %6s %s\n",
		"artefact", "metric", "paper", "measured", "tol", "verdict")
	failed := 0
	for _, c := range checks {
		verdict := "ok"
		if !c.OK {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%-10s %-44s %9.4f %s %9.4f %s %5.0f%% %s\n",
			c.Artefact, c.Metric, c.Paper, c.Unit, c.Measured, c.Unit, 100*c.TolFrac, verdict)
	}
	fmt.Fprintf(w, "%d checks, %d failed\n", len(checks), failed)
	return failed
}
