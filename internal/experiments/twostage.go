package experiments

import (
	"fmt"
	"io"
	"time"

	"minimaltcb/internal/boot"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
)

// --- Ablation 7: footnote 4's two-stage AMD PAL ---

// TwoStagePoint compares single-stage and two-stage launch at one size.
type TwoStagePoint struct {
	TotalSize int
	// SingleStage is the stock SKINIT: the whole PAL crosses the slow
	// TPM bus.
	SingleStage time.Duration
	// TwoStage is footnote 4's construction: a small stage-1 loader is
	// measured by SKINIT; stage 1 then hashes stage 2 on the CPU and
	// extends the digest before transferring control.
	TwoStage time.Duration
}

// twoStageLoaderSize is the measured stage-1 loader: 4 KB, enough for a
// hashing loop plus the extend call.
const twoStageLoaderSize = 4 << 10

// AblationTwoStageAMD quantifies the paper's footnote 4: "a PAL for an AMD
// system [can] be written in two parts ... this will enable a PAL on AMD
// systems to achieve improved performance" — i.e. AMD can emulate Intel's
// hash-on-CPU trick in software. Measured on the HP dc5750.
func AblationTwoStageAMD(cfg Config, sizes []int) ([]TwoStagePoint, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{8 << 10, 16 << 10, 32 << 10, 64 << 10}
	}
	prof := platform.HPdc5750()
	prof.KeyBits = cfg.KeyBits
	prof.Seed = cfg.Seed
	var out []TwoStagePoint
	for _, size := range sizes {
		if size <= twoStageLoaderSize {
			return nil, fmt.Errorf("twostage: size %d not above the %d-byte loader", size, twoStageLoaderSize)
		}
		single, err := lateLaunchLatencyFresh(prof, size)
		if err != nil {
			return nil, err
		}
		two, err := twoStageLatency(prof, size)
		if err != nil {
			return nil, err
		}
		out = append(out, TwoStagePoint{TotalSize: size, SingleStage: single, TwoStage: two})
	}
	return out, nil
}

// twoStageLatency measures one two-stage launch: SKINIT of the loader,
// then the loader's on-CPU hash of stage 2 and a TPM extend of the digest
// (the microcode-level costs of footnote 4's construction).
func twoStageLatency(prof platform.Profile, totalSize int) (time.Duration, error) {
	m, err := platform.New(prof)
	if err != nil {
		return 0, err
	}
	k := osker.NewKernel(m)
	core := m.BootCPU()

	loader, err := pal.MustBuild("ldi r0, 0\nsvc 0").Pad(twoStageLoaderSize)
	if err != nil {
		return 0, err
	}
	stage2 := make([]byte, totalSize-twoStageLoaderSize)
	sim.NewRNG(7).Fill(stage2)

	region, err := k.PlaceImage(loader.Bytes, (len(stage2)+4095)/4096)
	if err != nil {
		return 0, err
	}
	if err := m.Chipset.Memory().WriteRaw(region.Base+uint32(loader.Len()), stage2); err != nil {
		return 0, err
	}

	sw := sim.StartStopwatch(m.Clock)
	if _, err := m.LateLaunch(core, region.Base); err != nil {
		return 0, err
	}
	// Stage 1 hashes stage 2 on the CPU and extends the digest: only 20
	// bytes cross the LPC bus, exactly Intel's ACMod trick in software.
	digest := core.HashOnCPU(stage2)
	if _, err := m.TPM().Extend(17, digest); err != nil {
		return 0, err
	}
	return sw.Elapsed(), nil
}

// RenderTwoStage writes the comparison.
func RenderTwoStage(w io.Writer, pts []TwoStagePoint) {
	fmt.Fprintln(w, "Ablation: footnote 4's two-stage AMD PAL (4 KB measured loader + on-CPU hash)")
	fmt.Fprintf(w, "%8s %14s %14s %8s\n", "PAL", "single-stage", "two-stage", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%7dK %11s ms %11s ms %7.1fx\n",
			p.TotalSize/1024, fmtMS(p.SingleStage), fmtMS(p.TwoStage),
			float64(p.SingleStage)/float64(p.TwoStage))
	}
}

// --- Motivation artefact: TCB size under trusted boot vs a PAL ---

// TCBComparison is the paper's §1 motivation in numbers.
type TCBComparison struct {
	// Components is the number of measured layers under trusted boot.
	Components int
	// TrustedBootBytes is the code a trusted-boot verifier vouches for.
	TrustedBootBytes int
	// PALBytes is the late-launch alternative: one PAL, at most 64 KB.
	PALBytes int
	// Ratio is TrustedBootBytes / PALBytes.
	Ratio float64
}

// TCBSizes builds the trusted-boot baseline with internal/boot and
// compares it against the PAL bound.
func TCBSizes() TCBComparison {
	chain := boot.TypicalChain()
	tb := chain.TCBBytes()
	return TCBComparison{
		Components:       len(chain),
		TrustedBootBytes: tb,
		PALBytes:         pal.MaxImageSize,
		Ratio:            float64(tb) / float64(pal.MaxImageSize),
	}
}

// RenderTCBSizes writes the motivation table.
func RenderTCBSizes(w io.Writer, c TCBComparison) {
	fmt.Fprintln(w, "Motivation (§1): code a verifier must vouch for")
	fmt.Fprintf(w, "  trusted boot: %d components, %.1f MB of measured code\n",
		c.Components, float64(c.TrustedBootBytes)/(1<<20))
	fmt.Fprintf(w, "  late-launched PAL: at most %d KB — %.0fx less\n",
		c.PALBytes/1024, c.Ratio)
}
