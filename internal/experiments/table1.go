package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"minimaltcb/internal/cpu"
	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
)

// Table1Sizes are the PAL sizes the paper sweeps (bytes).
var Table1Sizes = []int{0, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// Table1Row is one machine's late-launch latency ladder.
type Table1Row struct {
	// Config is the machine name; HasTPM mirrors the paper's first column.
	Config string
	HasTPM bool
	// Avg maps PAL size (bytes) to mean launch latency.
	Avg map[int]time.Duration
}

// Table1 reproduces "Table 1. SKINIT and SENTER benchmarks": late-launch
// latency versus PAL size on the HP dc5750 (SKINIT through a wait-stating
// TPM), the Tyan n3600R (SKINIT, no TPM) and the Intel TEP (SENTER).
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	profiles := []platform.Profile{platform.HPdc5750(), platform.TyanN3600R(), platform.IntelTEP()}
	rows := make([]Table1Row, 0, len(profiles))
	for _, p := range profiles {
		p.KeyBits = cfg.KeyBits
		p.Seed = cfg.Seed
		lab, err := labFor(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		row := Table1Row{Config: p.Name, HasTPM: p.HasTPM, Avg: map[int]time.Duration{}}
		for _, size := range Table1Sizes {
			var sample sim.Sample
			for trial := 0; trial < cfg.Trials; trial++ {
				d, err := lateLaunchLatency(lab.k, lab.core, p, size)
				if err != nil {
					return nil, fmt.Errorf("%s @%d: %w", p.Name, size, err)
				}
				sample.Add(d)
			}
			row.Avg[size] = sample.Mean()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// launchLab is one cached machine for the latency-sweep experiments.
type launchLab struct {
	k    *osker.Kernel
	core *cpu.CPU
}

// Latency sweeps (Table 1, the hash-location and two-stage ablations)
// reuse one machine per profile across calls: every measured launch
// restores the machine to its pre-launch state, latencies come from a
// stopwatch on the virtual clock (absolute time is irrelevant), and the
// launch path draws nothing from the TPM's RNG — so a cached machine
// measures exactly what a fresh one would, without paying machine
// construction per sweep. Profiles are plain value structs, so the profile
// itself is the cache key; two profiles differing only in bus timing (the
// TPM-wait ablation) therefore get distinct machines.
var (
	labMu    sync.Mutex
	labCache = map[platform.Profile]*launchLab{}
)

func labFor(p platform.Profile) (*launchLab, error) {
	labMu.Lock()
	defer labMu.Unlock()
	if lab, ok := labCache[p]; ok {
		return lab, nil
	}
	m, err := platform.New(p)
	if err != nil {
		return nil, err
	}
	lab := &launchLab{k: osker.NewKernel(m), core: m.BootCPU()}
	if len(labCache) >= 64 {
		labCache = map[platform.Profile]*launchLab{}
	}
	labCache[p] = lab
	return lab, nil
}

// lateLaunchLatencyFresh measures one late launch on the profile's cached
// lab machine — the convenience path for one-off ablation points.
func lateLaunchLatencyFresh(p platform.Profile, size int) (time.Duration, error) {
	lab, err := labFor(p)
	if err != nil {
		return 0, err
	}
	return lateLaunchLatency(lab.k, lab.core, p, size)
}

// lateLaunchLatency measures one late launch of a PAL padded to size bytes.
// Size 0 reproduces the paper's "empty PAL" row: the hash-transfer sequence
// is skipped entirely, leaving only CPU reinitialization (the <10 µs the
// paper reports as 0.00/0.01 ms) — plus, on Intel, the ACMod transfer and
// signature check, which happen regardless of PAL size. The launch's
// machine state is undone afterwards so the kernel and core can be reused
// for the next trial.
func lateLaunchLatency(k *osker.Kernel, core *cpu.CPU, p platform.Profile, size int) (time.Duration, error) {
	image := pal.MustBuild("ldi r0, 0\nsvc 0")
	if size > 0 {
		var err error
		image, err = image.Pad(size)
		if err != nil {
			return 0, err
		}
	}

	if size == 0 && p.CPUParams.Vendor == cpu.AMD {
		// AMD empty PAL: no TPM_HASH sequence, just core init.
		return p.CPUParams.InitCost, nil
	}

	m := k.Machine
	region, err := k.PlaceImage(image.Bytes, 0)
	if err != nil {
		return 0, err
	}
	defer func() {
		// Undo the launch: DMA protection off, core back to its boot
		// state, pages returned to the OS pool.
		m.Chipset.SetDEVRegion(region, false)
		core.Reset()
		k.ReleaseRegion(region)
	}()
	sw := sim.StartStopwatch(m.Clock)
	if _, err := m.LateLaunch(core, region.Base); err != nil {
		return 0, err
	}
	d := sw.Elapsed()
	if size == 0 {
		// Intel empty PAL: subtract the (tiny) on-CPU hash of the
		// minimal image so the row reflects the ACMod-only cost.
		d -= time.Duration(image.Len()) * p.CPUParams.HashPerKB / 1024
	}
	return d, nil
}

// Render writes the rows in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1. SKINIT and SENTER benchmarks (avg ms by PAL size)")
	fmt.Fprintf(w, "%-4s %-36s", "TPM", "System Configuration")
	for _, s := range Table1Sizes {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("%dKB", s/1024))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		tpmCol := "Yes"
		if !r.HasTPM {
			tpmCol = "No"
		}
		fmt.Fprintf(w, "%-4s %-36s", tpmCol, r.Config)
		for _, s := range Table1Sizes {
			fmt.Fprintf(w, " %8s", fmtMS(r.Avg[s]))
		}
		fmt.Fprintln(w)
	}
}
