package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sea"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/sksm"
)

// ImpactResult is §5.7's headline comparison: the cost of protecting PAL
// state across a context switch on today's hardware (TPM seal/unseal plus
// a fresh late launch) versus on recommended hardware (SECB save/restore
// at world-switch cost).
type ImpactResult struct {
	// LegacySwitchOut is the seal-based suspend (Seal of PAL state).
	LegacySwitchOut time.Duration
	// LegacySwitchIn is the resume: SKINIT of the 64 KB PAL + Unseal.
	LegacySwitchIn time.Duration
	// LegacyRoundTrip is out + in.
	LegacyRoundTrip time.Duration
	// RecommendedSwitchOut is the SYIELD/suspend path (VM-exit cost).
	RecommendedSwitchOut time.Duration
	// RecommendedSwitchIn is the SLAUNCH resume (VM-enter cost).
	RecommendedSwitchIn time.Duration
	// RecommendedRoundTrip is out + in.
	RecommendedRoundTrip time.Duration
	// Speedup is LegacyRoundTrip / RecommendedRoundTrip.
	Speedup float64
	// OrdersOfMagnitude is log10(Speedup); the paper claims six.
	OrdersOfMagnitude float64
}

// impactLab caches the two machines Impact drives, keyed by (KeyBits,
// Seed). Between calls each machine's TPM is rebooted: power-on rewinds
// the chip's deterministic RNG and resets the PCRs, so a reused machine
// replays the exact seal/unseal/launch sequence — same blobs, same
// measurements, same charged latencies — as a freshly built one, without
// paying machine construction per call.
type impactLab struct {
	legacyRT *sea.Runtime
	recM     *platform.Machine
	recMG    *sksm.Manager
}

var (
	impactMu   sync.Mutex
	impactLabs = map[[2]uint64]*impactLab{}
)

func impactLabFor(cfg Config) (*impactLab, error) {
	impactMu.Lock()
	defer impactMu.Unlock()
	key := [2]uint64{uint64(cfg.KeyBits), cfg.Seed}
	if lab, ok := impactLabs[key]; ok {
		return lab, nil
	}
	p := platform.HPdc5750()
	p.KeyBits = cfg.KeyBits
	p.Seed = cfg.Seed
	m, err := platform.New(p)
	if err != nil {
		return nil, err
	}
	rp := platform.Recommended(platform.HPdc5750(), 2)
	rp.KeyBits = cfg.KeyBits
	rp.Seed = cfg.Seed
	rm, err := platform.New(rp)
	if err != nil {
		return nil, err
	}
	mg, err := sksm.NewManager(osker.NewKernel(rm))
	if err != nil {
		return nil, err
	}
	lab := &impactLab{legacyRT: sea.NewRuntime(osker.NewKernel(m)), recM: rm, recMG: mg}
	if len(impactLabs) >= 64 {
		impactLabs = map[[2]uint64]*impactLab{}
	}
	impactLabs[key] = lab
	return lab, nil
}

// Impact measures §5.7 end to end on the HP dc5750: both switch paths are
// actually executed, not computed from constants.
func Impact(cfg Config) (*ImpactResult, error) {
	cfg = cfg.withDefaults()
	res := &ImpactResult{}
	lab, err := impactLabFor(cfg)
	if err != nil {
		return nil, err
	}

	// --- Legacy path: measure a real PAL Use resume and its seal-out.
	rt := lab.legacyRT
	rt.Kernel.Machine.TPM().Boot() // replay the chip's randomness stream
	useImage := sea.BuildPALUse(true)
	prior, err := rt.SealForImage(useImage, make([]byte, sea.GenPayload))
	if err != nil {
		return nil, err
	}
	s, err := rt.RunPALUse(prior, true)
	if err != nil {
		return nil, err
	}
	res.LegacySwitchIn = s.Breakdown[sea.PhaseLaunch] + s.Breakdown[sea.PhaseUnseal]
	res.LegacySwitchOut = s.Breakdown[sea.PhaseSeal]
	res.LegacyRoundTrip = res.LegacySwitchIn + res.LegacySwitchOut

	// --- Recommended path: measure a real suspend/resume round trip.
	rm, mg := lab.recM, lab.recMG
	im := pal.MustBuild(`
		svc 1
		svc 1
		ldi r0, 0
		svc 0
	`)
	secb, err := mg.NewSECB(im, 0, 0)
	if err != nil {
		return nil, err
	}
	core := rm.CPUs[1]
	// First slice: launch (measured separately, not a context switch).
	if _, err := mg.RunSlice(core, secb); err != nil {
		return nil, err
	}
	// Second slice: resume + yield = one full round trip.
	sw := sim.StartStopwatch(rm.Clock)
	if _, err := mg.RunSlice(core, secb); err != nil {
		return nil, err
	}
	roundTrip := sw.Elapsed()
	res.RecommendedSwitchIn = core.Params.VMEnter
	res.RecommendedSwitchOut = core.Params.VMExit
	res.RecommendedRoundTrip = roundTrip
	// Drive the PAL to its exit and return its pages and sePCR (freed
	// unquoted — nothing attests here), so the cached machine is clean
	// for the next call.
	if err := mg.RunToCompletion(core, secb); err != nil {
		return nil, err
	}
	if err := rm.TPM().FreeSePCR(secb.SePCRHandle); err != nil {
		return nil, err
	}
	if err := mg.Release(secb); err != nil {
		return nil, err
	}

	res.Speedup = float64(res.LegacyRoundTrip) / float64(res.RecommendedRoundTrip)
	res.OrdersOfMagnitude = math.Log10(res.Speedup)
	return res, nil
}

// RenderImpact writes the §5.7 comparison.
func RenderImpact(w io.Writer, r *ImpactResult) {
	fmt.Fprintln(w, "Section 5.7: PAL context-switch cost, today vs recommended hardware")
	fmt.Fprintf(w, "%-34s %14s\n", "Path", "Cost")
	fmt.Fprintf(w, "%-34s %11s ms\n", "Today: switch in (SKINIT+Unseal)", fmtMS(r.LegacySwitchIn))
	fmt.Fprintf(w, "%-34s %11s ms\n", "Today: switch out (Seal)", fmtMS(r.LegacySwitchOut))
	fmt.Fprintf(w, "%-34s %11s ms\n", "Today: round trip", fmtMS(r.LegacyRoundTrip))
	fmt.Fprintf(w, "%-34s %11.4f µs\n", "Recommended: switch in (SLAUNCH)", us(r.RecommendedSwitchIn))
	fmt.Fprintf(w, "%-34s %11.4f µs\n", "Recommended: switch out (SYIELD)", us(r.RecommendedSwitchOut))
	fmt.Fprintf(w, "%-34s %11.4f µs\n", "Recommended: round trip", us(r.RecommendedRoundTrip))
	fmt.Fprintf(w, "Speedup: %.0fx (%.1f orders of magnitude; the paper projects six)\n",
		r.Speedup, r.OrdersOfMagnitude)
}
