package experiments

import (
	"fmt"
	"io"
	"time"

	"minimaltcb/internal/osker"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/platform"
	"minimaltcb/internal/sea"
	"minimaltcb/internal/sksm"
)

// ConcurrencyPoint is one sweep point: with `PALs` secure jobs to run,
// what share of the platform's CPU-seconds remains for the legacy
// workload under each architecture?
type ConcurrencyPoint struct {
	PALs int
	// LegacyShareSEA is 1 - stalled/total under SKINIT-based SEA, where
	// every PAL slice halts every core.
	LegacyShareSEA float64
	// LegacyShareRec is the same under SLAUNCH, where a PAL occupies a
	// single core.
	LegacyShareRec float64
	// WallSEA and WallRec are the virtual times to finish all PAL work.
	WallSEA, WallRec time.Duration
	// JobsSEA and JobsRec are how many legacy jobs (10 ms of CPU each)
	// completed in the idle CPU time each architecture left while the
	// same secure work ran — the user-visible cost of whole-platform
	// stalls.
	JobsSEA, JobsRec int64
}

// legacyJobCost is the CPU time of one modeled legacy job.
const legacyJobCost = 10 * time.Millisecond

// concurrencyPALSource is the secure job used by the sweep: S slices of
// compute with yields between them — under SEA each slice is a full
// session whose state crosses via seal/unseal; under SLAUNCH the yields
// are hardware context switches.
const concurrencySlices = 4

// seaSliceSource is one slice as a standalone SEA PAL: unseal state (or
// start fresh), burn compute, reseal.
const seaSliceSource = `
	ldi	r0, blob
	ldi	r1, 2048
	svc	7		; input previous blob (may be empty)
	ldi	r2, 0
	cmp	r0, r2
	jz	fresh		; no prior state
	mov	r1, r0
	ldi	r0, blob
	ldi	r2, data
	svc	4		; unseal
fresh:
	ldi	r3, 0
	ldi	r4, 2000
burn:	addi	r3, 1
	cmp	r3, r4
	jnz	burn
	ldi	r0, data
	ldi	r1, 64
	ldi	r2, blob
	svc	3		; reseal state
	mov	r1, r0
	ldi	r0, blob
	svc	6
	ldi	r0, 0
	svc	0
data:	.space 64
blob:	.space 2048
stack:	.space 64
`

// recJobSource is the same job as one resumable PAL: identical compute per
// slice, SYIELD between slices, no sealing needed.
const recJobSource = `
	ldi	r5, 0		; slice counter
slice:
	ldi	r3, 0
	ldi	r4, 2000
burn:	addi	r3, 1
	cmp	r3, r4
	jnz	burn
	addi	r5, 1
	ldi	r6, 4
	cmp	r5, r6
	jz	done
	svc	1		; yield between slices
	jmp	slice
done:
	ldi	r0, 0
	svc	0
stack:	.space 64
`

// Concurrency sweeps the number of concurrent secure jobs and reports the
// legacy workload's share of the platform under both architectures — the
// experiment behind §4.2's "most of the computer's processing power and
// responsiveness vanish" and §5's Figure 4 goal.
func Concurrency(cfg Config, palCounts []int) ([]ConcurrencyPoint, error) {
	cfg = cfg.withDefaults()
	if len(palCounts) == 0 {
		palCounts = []int{1, 2, 4, 8}
	}
	var out []ConcurrencyPoint
	for _, k := range palCounts {
		pt, err := concurrencyPoint(cfg, k)
		if err != nil {
			return nil, err
		}
		out = append(out, *pt)
	}
	return out, nil
}

func concurrencyPoint(cfg Config, k int) (*ConcurrencyPoint, error) {
	pt := &ConcurrencyPoint{PALs: k}

	// --- SEA: every slice of every job is a full whole-platform session.
	p := platform.HPdc5750()
	p.NumCPUs = 4
	p.KeyBits = cfg.KeyBits
	p.Seed = cfg.Seed
	m, err := platform.New(p)
	if err != nil {
		return nil, err
	}
	kern := osker.NewKernel(m)
	rt := sea.NewRuntime(kern)
	sliceImage := pal.MustBuild(seaSliceSource)
	blobs := make([][]byte, k)
	for slice := 0; slice < concurrencySlices; slice++ {
		for job := 0; job < k; job++ {
			s, err := rt.Execute(sliceImage, blobs[job])
			if err != nil {
				return nil, err
			}
			if s.ExitStatus != 0 {
				return nil, fmt.Errorf("concurrency: SEA slice exited %d", s.ExitStatus)
			}
			blobs[job] = s.Output
		}
	}
	pt.WallSEA = m.Clock.Now()
	pt.LegacyShareSEA = legacyShare(m)
	pt.JobsSEA = osker.LegacyWorkload{JobCost: legacyJobCost}.JobsCompleted(kern)

	// --- Recommended: one SECB per job, scheduled across PAL cores.
	rp := platform.Recommended(platform.HPdc5750(), k)
	rp.NumCPUs = 4
	rp.KeyBits = cfg.KeyBits
	rp.Seed = cfg.Seed
	rm, err := platform.New(rp)
	if err != nil {
		return nil, err
	}
	rkern := osker.NewKernel(rm)
	mg, err := sksm.NewManager(rkern)
	if err != nil {
		return nil, err
	}
	sch := sksm.NewScheduler(mg)
	jobImage := pal.MustBuild(recJobSource)
	var secbs []*sksm.SECB
	for job := 0; job < k; job++ {
		s, err := mg.NewSECB(jobImage, 0, 0)
		if err != nil {
			return nil, err
		}
		secbs = append(secbs, s)
	}
	faults, err := sch.RunConcurrently(secbs, nil)
	if err != nil {
		return nil, err
	}
	if len(faults) != 0 {
		return nil, fmt.Errorf("concurrency: PAL faults %v", faults)
	}
	pt.WallRec = rm.Clock.Now()
	pt.LegacyShareRec = legacyShare(rm)
	pt.JobsRec = osker.LegacyWorkload{JobCost: legacyJobCost}.JobsCompleted(rkern)
	return pt, nil
}

// legacyShare computes the fraction of platform CPU-seconds not consumed
// (stalled or occupied) by secure execution over the elapsed horizon.
func legacyShare(m *platform.Machine) float64 {
	horizon := m.Clock.Now()
	if horizon == 0 {
		return 1
	}
	var busy time.Duration
	for _, c := range m.CPUs {
		busy += c.Timeline.Busy
	}
	total := time.Duration(len(m.CPUs)) * horizon
	share := 1 - float64(busy)/float64(total)
	if share < 0 {
		return 0
	}
	return share
}

// RenderConcurrency writes the sweep as a table.
func RenderConcurrency(w io.Writer, pts []ConcurrencyPoint) {
	fmt.Fprintln(w, "Concurrency: legacy capacity while secure jobs run (4-core dc5750, 10 ms legacy jobs)")
	fmt.Fprintf(w, "%6s %18s %18s %14s %14s %10s %10s\n",
		"PALs", "legacy share SEA", "legacy share rec.", "wall SEA", "wall rec.",
		"jobs SEA", "jobs rec.")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %17.1f%% %17.1f%% %11s ms %11s ms %10d %10d\n",
			p.PALs, 100*p.LegacyShareSEA, 100*p.LegacyShareRec,
			fmtMS(p.WallSEA), fmtMS(p.WallRec), p.JobsSEA, p.JobsRec)
	}
}
