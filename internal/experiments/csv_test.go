package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestCSVTable1WellFormed(t *testing.T) {
	rows, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CSVTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 3 machines × 6 sizes.
	if len(recs) != 1+3*len(Table1Sizes) {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "machine" || recs[0][3] != "latency_ms" {
		t.Fatalf("header %v", recs[0])
	}
	for _, r := range recs[1:] {
		if len(r) != 4 {
			t.Fatalf("row width %d", len(r))
		}
	}
}

func TestCSVFigure3WellFormed(t *testing.T) {
	rows, err := Figure3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CSVFigure3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+4*len(Figure3Ops) {
		t.Fatalf("%d records", len(recs))
	}
}

func TestWriteAllCSVSections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllCSV(&buf, Quick()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{
		"# table1", "# figure2", "# figure3", "# table2",
		"# impact", "# concurrency", "# hash_location",
	} {
		if !strings.Contains(out, section+"\n") {
			t.Errorf("missing section %q", section)
		}
	}
	// Spot-check a calibrated value appears (four-decimal CSV format).
	if !strings.Contains(out, "177.519") {
		t.Error("Table 1's 177.52 ms missing from CSV")
	}
}
