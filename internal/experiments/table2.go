package experiments

import (
	"fmt"
	"io"
	"time"

	"minimaltcb/internal/platform"
	"minimaltcb/internal/sim"
)

// Table2Row is one platform's VM world-switch costs.
type Table2Row struct {
	Platform           string
	EnterAvg, EnterStd time.Duration
	ExitAvg, ExitStd   time.Duration
}

// Table2 reproduces "Table 2. Benchmarks showing the average runtime of VM
// Entry and VM Exit" on the Tyan n3600R (AMD SVM) and the Intel TEP
// (Intel TXT/VT). These are the costs the paper projects for SLAUNCH
// context switches (§5.7).
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	profiles := []platform.Profile{platform.TyanN3600R(), platform.IntelTEP()}
	rows := make([]Table2Row, 0, len(profiles))
	for _, p := range profiles {
		p.KeyBits = cfg.KeyBits
		p.Seed = cfg.Seed
		m, err := platform.New(p)
		if err != nil {
			return nil, err
		}
		core := m.BootCPU()
		var enter, exit sim.Sample
		for trial := 0; trial < cfg.Trials; trial++ {
			sw := sim.StartStopwatch(m.Clock)
			core.VMEnter()
			enter.Add(sw.Elapsed())
			sw = sim.StartStopwatch(m.Clock)
			core.VMExit()
			exit.Add(sw.Elapsed())
		}
		rows = append(rows, Table2Row{
			Platform: p.Name,
			EnterAvg: enter.Mean(), EnterStd: enter.Stdev(),
			ExitAvg: exit.Mean(), ExitStd: exit.Stdev(),
		})
	}
	return rows, nil
}

// RenderTable2 writes the rows in the paper's layout (µs, four decimals).
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2. VM Entry / VM Exit runtime (µs)")
	fmt.Fprintf(w, "%-36s %12s %10s %12s %10s\n", "Platform", "Enter avg", "stdev", "Exit avg", "stdev")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %12.4f %10.4f %12.4f %10.4f\n",
			r.Platform, us(r.EnterAvg), us(r.EnterStd), us(r.ExitAvg), us(r.ExitStd))
	}
}
