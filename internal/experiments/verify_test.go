package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestVerifyAllPasses(t *testing.T) {
	checks, err := VerifyAll(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 25 {
		t.Fatalf("only %d checks", len(checks))
	}
	var buf bytes.Buffer
	failed := RenderVerify(&buf, checks)
	if failed != 0 {
		t.Fatalf("%d checks failed:\n%s", failed, buf.String())
	}
	if !strings.Contains(buf.String(), "0 failed") {
		t.Fatal("report summary missing")
	}
}

func TestCheckBands(t *testing.T) {
	if c := check("a", "m", 100, 101, "ms", 0.02); !c.OK {
		t.Fatal("within-band check failed")
	}
	if c := check("a", "m", 100, 103, "ms", 0.02); c.OK {
		t.Fatal("out-of-band check passed")
	}
	// Noise-floor rows.
	if c := check("a", "m", 0.01, 0.002, "ms", 0.02); !c.OK {
		t.Fatal("noise-floor row failed")
	}
	if c := check("a", "m", 0, 0.5, "ms", 0.02); c.OK {
		t.Fatal("half-millisecond passed a zero row")
	}
}
