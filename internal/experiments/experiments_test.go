package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	lo, hi := want*(1-frac), want*(1+frac)
	if want < 0 {
		lo, hi = hi, lo
	}
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want %.3f ± %.0f%%", name, got, want, frac*100)
	}
}

func TestTable1ReproducesPaper(t *testing.T) {
	rows, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper's Table 1, in ms.
	want := map[string]map[int]float64{
		rows[0].Config: {0: 0.005, 4096: 11.94, 8192: 22.98, 16384: 45.05, 32768: 89.21, 65536: 177.52},
		rows[1].Config: {0: 0.005, 4096: 0.56, 8192: 1.11, 16384: 2.21, 32768: 4.41, 65536: 8.82},
		rows[2].Config: {0: 26.39, 4096: 26.88, 8192: 27.38, 16384: 28.37, 32768: 30.46, 65536: 34.35},
	}
	for _, r := range rows {
		for size, wantMS := range want[r.Config] {
			gotMS := ms(r.Avg[size])
			if size == 0 {
				// "0.00"/"0.01"-class: must be under 30 ms on Intel,
				// under 0.1 ms on AMD.
				if wantMS < 1 && gotMS > 0.1 {
					t.Errorf("%s @0KB = %.3f ms, want ~0", r.Config, gotMS)
				}
				if wantMS > 1 {
					within(t, r.Config+"@0KB", gotMS, wantMS, 0.02)
				}
				continue
			}
			within(t, r.Config+"@"+string(rune('0'+size/16384)), gotMS, wantMS, 0.02)
		}
	}
}

func TestTable1Render(t *testing.T) {
	rows, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Table 1", "177.52", "8.82", "34.35", "64KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2ReproducesPaper(t *testing.T) {
	bars, err := Figure2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 3 {
		t.Fatalf("%d bars", len(bars))
	}
	gen, quote, use := bars[0], bars[1], bars[2]
	// PAL Gen ≈ 200 ms (SKINIT 177.5 + Seal ~20).
	within(t, "PAL Gen total", ms(gen.Total), 199, 0.05)
	within(t, "PAL Gen SKINIT", ms(gen.Phases["SKINIT"]), 177.5, 0.03)
	within(t, "PAL Gen Seal", ms(gen.Phases["Seal"]), 20, 0.25)
	// Quote ≈ 949 ms.
	within(t, "Quote", ms(quote.Total), 949, 0.03)
	// PAL Use > 1 s: SKINIT + Unseal (~905) + Seal.
	if ms(use.Total) < 1000 {
		t.Errorf("PAL Use total = %.1f ms, want > 1000", ms(use.Total))
	}
	within(t, "PAL Use Unseal", ms(use.Phases["Unseal"]), 905, 0.03)
}

func TestFigure3ReproducesPaper(t *testing.T) {
	rows, err := Figure3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Figure3Row{}
	for _, r := range rows {
		byName[r.TPM] = r
	}
	broadcom := byName["Broadcom (HP dc5750)"]
	infineon := byName["Infineon (AMD workstation)"]
	// Text anchors.
	within(t, "Broadcom Seal", ms(broadcom.Cells["Seal"].Mean), 20.01, 0.2)
	within(t, "Infineon Unseal", ms(infineon.Cells["Unseal"].Mean), 390.98, 0.05)
	// Broadcom slowest Quote and Unseal.
	for name, r := range byName {
		if name == broadcom.TPM {
			continue
		}
		if r.Cells["Quote"].Mean >= broadcom.Cells["Quote"].Mean {
			t.Errorf("%s Quote >= Broadcom", name)
		}
		if r.Cells["Unseal"].Mean >= broadcom.Cells["Unseal"].Mean {
			t.Errorf("%s Unseal >= Broadcom", name)
		}
	}
	// The combined Quote+Unseal delta the paper quotes: 1132 ms.
	delta := ms(broadcom.Cells["Quote"].Mean+broadcom.Cells["Unseal"].Mean) -
		ms(infineon.Cells["Quote"].Mean+infineon.Cells["Unseal"].Mean)
	within(t, "Quote+Unseal delta", delta, 1132, 0.05)
}

func TestTable2ReproducesPaper(t *testing.T) {
	rows, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	amd, intel := rows[0], rows[1]
	within(t, "AMD VM enter", us(amd.EnterAvg), 0.558, 0.01)
	within(t, "AMD VM exit", us(amd.ExitAvg), 0.519, 0.01)
	within(t, "Intel VM enter", us(intel.EnterAvg), 0.446, 0.01)
	within(t, "Intel VM exit", us(intel.ExitAvg), 0.449, 0.01)
}

func TestImpactSixOrdersOfMagnitude(t *testing.T) {
	r, err := Impact(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Today: over a second for the in-switch (SKINIT+Unseal ≈ 1082 ms).
	if ms(r.LegacyRoundTrip) < 1000 {
		t.Errorf("legacy round trip %.1f ms, want > 1000", ms(r.LegacyRoundTrip))
	}
	// Recommended: microseconds.
	if r.RecommendedRoundTrip > 10*time.Microsecond {
		t.Errorf("recommended round trip %v, want < 10µs", r.RecommendedRoundTrip)
	}
	// Five-to-six orders of magnitude.
	if r.OrdersOfMagnitude < 5 || r.OrdersOfMagnitude > 7 {
		t.Errorf("improvement = %.2f orders of magnitude, want ≈6", r.OrdersOfMagnitude)
	}
}

func TestConcurrencyRecommendedWins(t *testing.T) {
	pts, err := Concurrency(Quick(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// SEA stalls the whole platform; legacy share near zero.
		if p.LegacyShareSEA > 0.2 {
			t.Errorf("PALs=%d: SEA legacy share %.2f, want ~0", p.PALs, p.LegacyShareSEA)
		}
		// Recommended leaves most of the 4-core machine available.
		if p.LegacyShareRec < 0.5 {
			t.Errorf("PALs=%d: recommended legacy share %.2f, want > 0.5", p.PALs, p.LegacyShareRec)
		}
		// And finishes the same secure work orders of magnitude sooner.
		if p.WallRec*100 > p.WallSEA {
			t.Errorf("PALs=%d: wall rec %v vs SEA %v — expected >100x gap", p.PALs, p.WallRec, p.WallSEA)
		}
		// Legacy jobs: SEA's whole-platform stall leaves ~none; the
		// recommended architecture completes some on the free cores
		// whenever the horizon spans at least one job.
		if p.JobsSEA > p.JobsRec {
			t.Errorf("PALs=%d: SEA completed more legacy jobs (%d) than recommended (%d)",
				p.PALs, p.JobsSEA, p.JobsRec)
		}
	}
}

func TestAblationHashLocationCrossover(t *testing.T) {
	pts, err := AblationHashLocation(Quick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// AMD wins at 4 KB; Intel wins at 64 KB; crossover in between.
	first, last := pts[0], pts[len(pts)-1]
	if first.AMD >= first.Intel {
		t.Error("AMD should win at the smallest size")
	}
	if last.Intel >= last.AMD {
		t.Error("Intel should win at the largest size")
	}
	crossed := false
	for _, p := range pts {
		if p.Intel < p.AMD {
			crossed = true
			// Crossover must fall in the 8–12 KB band (paper: ACMod
			// ≈ 10 KB of AMD-equivalent transfer).
			if p.Size < 8<<10 || p.Size > 12<<10 {
				t.Errorf("crossover at %d KB, want 8–12 KB", p.Size/1024)
			}
			break
		}
	}
	if !crossed {
		t.Error("no crossover found")
	}
}

func TestAblationTPMWait(t *testing.T) {
	r, err := AblationTPMWait(Quick())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "long-wait launch", ms(r.LongWait), 177.52, 0.02)
	within(t, "full-speed launch", ms(r.FullSpeed), 8.82, 0.02)
	within(t, "wait factor", r.Factor, 20.1, 0.05)
}

func TestAblationSePCRCount(t *testing.T) {
	pts, err := AblationSePCRCount(Quick(), 8, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		wantAdmitted := p.SePCRs
		if wantAdmitted > p.Offered {
			wantAdmitted = p.Offered
		}
		if p.Admitted != wantAdmitted {
			t.Errorf("sePCRs=%d: admitted %d, want %d", p.SePCRs, p.Admitted, wantAdmitted)
		}
		if p.Admitted+p.Rejected != p.Offered {
			t.Errorf("sePCRs=%d: admitted+rejected != offered", p.SePCRs)
		}
	}
}

func TestAblationQuantum(t *testing.T) {
	pts, err := AblationQuantum(Quick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller quanta -> more slices; run-to-end -> exactly one slice.
	for i := 1; i < len(pts)-1; i++ {
		if pts[i].Slices > pts[i-1].Slices {
			t.Errorf("slices increased with quantum: %v", pts)
		}
	}
	last := pts[len(pts)-1]
	if last.Quantum != 0 || last.Slices != 1 {
		t.Errorf("run-to-end point: %+v", last)
	}
	if pts[0].Overhead <= last.Overhead {
		t.Error("context-switch overhead should fall with larger quanta")
	}
}

func TestAblationSealPayload(t *testing.T) {
	pts, err := AblationSealPayload(Quick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency <= pts[i-1].Latency {
			t.Errorf("seal latency not increasing with payload: %v", pts)
		}
	}
	// Anchors: ~11.4 ms at 0 B, ~20 ms at 1 KB.
	within(t, "seal 0B", ms(pts[0].Latency), 11.39, 0.2)
	within(t, "seal 1KB", ms(pts[2].Latency), 20.01, 0.2)
}

func TestAblationCrossPlatform(t *testing.T) {
	rows, err := AblationFigure2CrossPlatform(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CrossPlatformRow{}
	for _, r := range rows {
		byName[r.Machine] = r
		// Every machine: PAL Use is the most expensive flow, since it
		// stacks Unseal on top of launch and Seal.
		if r.PALUse <= r.PALGen {
			t.Errorf("%s: PAL Use (%v) not above PAL Gen (%v)", r.Machine, r.PALUse, r.PALGen)
		}
	}
	// The vendor spread propagates: the Infineon machine has the cheapest
	// Quote and PAL Use (fastest Quote/Unseal), the Broadcom the dearest.
	infineon := byName["AMD workstation (Infineon TPM)"]
	broadcom := byName["HP dc5750 (AMD + Broadcom TPM)"]
	if infineon.Quote >= broadcom.Quote {
		t.Error("Infineon Quote not cheaper than Broadcom's")
	}
	if infineon.PALUse >= broadcom.PALUse {
		t.Error("Infineon PAL Use not cheaper than Broadcom's")
	}
	// But the Broadcom wins PAL Gen (fastest Seal).
	if broadcom.PALGen >= infineon.PALGen {
		t.Error("Broadcom PAL Gen not cheaper than Infineon's")
	}
}

func TestAblationTwoStage(t *testing.T) {
	pts, err := AblationTwoStageAMD(Quick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Footnote 4's claim: two-stage wins for large PALs (the loader
	// overhead amortizes), and the win grows with size.
	last := pts[len(pts)-1]
	if last.TwoStage >= last.SingleStage {
		t.Errorf("two-stage not faster at %d KB: %v vs %v",
			last.TotalSize/1024, last.TwoStage, last.SingleStage)
	}
	speedup := float64(last.SingleStage) / float64(last.TwoStage)
	if speedup < 3 || speedup > 6 {
		t.Errorf("64 KB speedup %.1fx, want ≈4x", speedup)
	}
	// Small PALs: the extra TPM_Extend makes two-stage a loss at 8 KB.
	first := pts[0]
	if first.TwoStage <= first.SingleStage {
		t.Errorf("two-stage should lose at %d KB", first.TotalSize/1024)
	}
	// Bad input validation.
	if _, err := AblationTwoStageAMD(Quick(), []int{1 << 10}); err == nil {
		t.Error("size below the loader accepted")
	}
}

func TestTCBSizes(t *testing.T) {
	c := TCBSizes()
	if c.Ratio < 50 {
		t.Fatalf("trusted-boot TCB only %.1fx a PAL — motivation evaporated", c.Ratio)
	}
	if c.Components < 10 || c.PALBytes != 64<<10 {
		t.Fatalf("%+v", c)
	}
}

func TestRendersDoNotPanic(t *testing.T) {
	var buf bytes.Buffer
	cfg := Quick()
	if bars, err := Figure2(cfg); err == nil {
		RenderFigure2(&buf, bars)
	}
	if rows, err := Figure3(cfg); err == nil {
		RenderFigure3(&buf, rows)
	}
	if rows, err := Table2(cfg); err == nil {
		RenderTable2(&buf, rows)
	}
	if r, err := Impact(cfg); err == nil {
		RenderImpact(&buf, r)
	}
	if pts, err := Concurrency(cfg, []int{1}); err == nil {
		RenderConcurrency(&buf, pts)
	}
	if pts, err := AblationHashLocation(cfg, []int{4096, 65536}); err == nil {
		RenderHashLocation(&buf, pts)
	}
	if r, err := AblationTPMWait(cfg); err == nil {
		RenderTPMWait(&buf, r)
	}
	if pts, err := AblationSePCRCount(cfg, 4, []int{2}); err == nil {
		RenderSePCRCount(&buf, pts)
	}
	if pts, err := AblationQuantum(cfg, nil); err == nil {
		RenderQuantum(&buf, pts)
	}
	if pts, err := AblationSealPayload(cfg, nil); err == nil {
		RenderSealPayload(&buf, pts)
	}
	if buf.Len() == 0 {
		t.Fatal("no render output")
	}
}
