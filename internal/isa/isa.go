// Package isa defines the instruction set executed by simulated PALs
// (Pieces of Application Logic) and the legacy workload.
//
// The paper's late-launch instructions measure the PAL binary byte-for-byte
// before executing it, so a faithful reproduction needs PALs to be real byte
// programs rather than Go closures: the SHA-1 that lands in PCR 17 must be a
// hash of the same bytes the CPU then runs. This package provides that
// program representation — a small 32-bit load/store architecture with eight
// general-purpose registers — along with an assembler and disassembler.
//
// Encoding: every instruction is one 32-bit little-endian word,
//
//	[ opcode:8 | ra:4 | rb:4 | imm:16 ]
//
// Addresses in load/store and branch instructions are offsets from the base
// of the PAL's memory region, which makes PAL binaries position-independent:
// the untrusted OS may place a PAL at any physical address without changing
// its measurement.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Opcode identifies an instruction.
type Opcode uint8

// The instruction set. Arithmetic is register-register; immediates enter via
// LDI/LUI/ADDI. CMP sets the Z (equal), C (unsigned below) and N (signed
// less) flags consumed by the conditional jumps.
const (
	OpNop    Opcode = iota // no operation
	OpHalt                 // stop execution; PAL exit
	OpMov                  // ra = rb
	OpLdi                  // ra = zero-extended imm16
	OpLui                  // ra = (ra & 0xffff) | imm16<<16
	OpAddi                 // ra += sign-extended imm16
	OpAdd                  // ra += rb
	OpSub                  // ra -= rb
	OpMul                  // ra *= rb
	OpDivu                 // ra /= rb (unsigned; rb==0 faults)
	OpRemu                 // ra %= rb (unsigned; rb==0 faults)
	OpAnd                  // ra &= rb
	OpOr                   // ra |= rb
	OpXor                  // ra ^= rb
	OpShl                  // ra <<= rb&31
	OpShr                  // ra >>= rb&31 (logical)
	OpLoad                 // ra = mem32[rb + imm16]
	OpLoadb                // ra = mem8[rb + imm16]
	OpStore                // mem32[rb + imm16] = ra
	OpStoreb               // mem8[rb + imm16] = ra & 0xff
	OpCmp                  // set flags from ra - rb
	OpJmp                  // pc = imm16
	OpJz                   // if Z: pc = imm16
	OpJnz                  // if !Z: pc = imm16
	OpJc                   // if C (unsigned <): pc = imm16
	OpJnc                  // if !C: pc = imm16
	OpJn                   // if N (signed <): pc = imm16
	OpJmpr                 // pc = ra
	OpCall                 // push pc+4; pc = imm16
	OpRet                  // pc = pop
	OpPush                 // sp -= 4; mem32[sp] = ra
	OpPop                  // ra = mem32[sp]; sp += 4
	OpSvc                  // service call imm16 (platform hypercall)
	opMax
)

// NumRegs is the number of general-purpose registers (r0..r7).
const NumRegs = 8

// WordSize is the size in bytes of one encoded instruction.
const WordSize = 4

// Instruction is one decoded instruction.
type Instruction struct {
	Op  Opcode
	RA  uint8  // first register operand
	RB  uint8  // second register operand
	Imm uint16 // immediate / address operand
}

var mnemonics = [...]string{
	OpNop: "nop", OpHalt: "halt", OpMov: "mov", OpLdi: "ldi", OpLui: "lui",
	OpAddi: "addi", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDivu: "divu",
	OpRemu: "remu", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpLoad: "load", OpLoadb: "loadb", OpStore: "store",
	OpStoreb: "storeb", OpCmp: "cmp", OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpJc: "jc", OpJnc: "jnc", OpJn: "jn", OpJmpr: "jmpr", OpCall: "call",
	OpRet: "ret", OpPush: "push", OpPop: "pop", OpSvc: "svc",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(mnemonics) && mnemonics[op] != "" {
		return mnemonics[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op names a defined instruction.
func (op Opcode) Valid() bool { return op < opMax }

// operandKind classifies how an opcode uses its fields, shared between the
// assembler, disassembler and interpreter.
type operandKind int

const (
	operandsNone   operandKind = iota // nop, halt, ret
	operandsRegReg                    // mov, add, ... cmp
	operandsRegImm                    // ldi, lui, addi
	operandsRegMem                    // load/store family: ra, [rb+imm]
	operandsImm                       // jmp family, call, svc
	operandsReg                       // push, pop, jmpr
)

func operandsOf(op Opcode) operandKind {
	switch op {
	case OpNop, OpHalt, OpRet:
		return operandsNone
	case OpMov, OpAdd, OpSub, OpMul, OpDivu, OpRemu, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpCmp:
		return operandsRegReg
	case OpLdi, OpLui, OpAddi:
		return operandsRegImm
	case OpLoad, OpLoadb, OpStore, OpStoreb:
		return operandsRegMem
	case OpJmp, OpJz, OpJnz, OpJc, OpJnc, OpJn, OpCall, OpSvc:
		return operandsImm
	case OpPush, OpPop, OpJmpr:
		return operandsReg
	}
	return operandsNone
}

// Encode packs the instruction into its 32-bit wire representation.
func (in Instruction) Encode() uint32 {
	return uint32(in.Op)<<24 | uint32(in.RA&0x0f)<<20 | uint32(in.RB&0x0f)<<16 |
		uint32(in.Imm)
}

// Decode unpacks a 32-bit word into an instruction. It returns an error for
// an undefined opcode or an out-of-range register so that executing
// arbitrary (e.g. attacker-corrupted) bytes faults instead of silently
// doing something.
func Decode(word uint32) (Instruction, error) {
	in := Instruction{
		Op:  Opcode(word >> 24),
		RA:  uint8(word >> 20 & 0x0f),
		RB:  uint8(word >> 16 & 0x0f),
		Imm: uint16(word),
	}
	if !in.Op.Valid() {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if in.RA >= NumRegs || in.RB >= NumRegs {
		return Instruction{}, fmt.Errorf("isa: register out of range in %s r%d,r%d",
			in.Op, in.RA, in.RB)
	}
	return in, nil
}

// String renders the instruction in assembler syntax.
func (in Instruction) String() string {
	switch operandsOf(in.Op) {
	case operandsNone:
		return in.Op.String()
	case operandsRegReg:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.RA, in.RB)
	case operandsRegImm:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.RA, in.Imm)
	case operandsRegMem:
		return fmt.Sprintf("%s r%d, [r%d+%d]", in.Op, in.RA, in.RB, in.Imm)
	case operandsImm:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case operandsReg:
		return fmt.Sprintf("%s r%d", in.Op, in.RA)
	}
	return in.Op.String()
}

// EncodeProgram serializes a sequence of instructions to bytes.
func EncodeProgram(prog []Instruction) []byte {
	out := make([]byte, 0, len(prog)*WordSize)
	var buf [WordSize]byte
	for _, in := range prog {
		binary.LittleEndian.PutUint32(buf[:], in.Encode())
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeProgram parses bytes as instructions. len(b) must be a multiple of
// WordSize.
func DecodeProgram(b []byte) ([]Instruction, error) {
	if len(b)%WordSize != 0 {
		return nil, fmt.Errorf("isa: program length %d not a multiple of %d", len(b), WordSize)
	}
	prog := make([]Instruction, 0, len(b)/WordSize)
	for i := 0; i < len(b); i += WordSize {
		in, err := Decode(binary.LittleEndian.Uint32(b[i:]))
		if err != nil {
			return nil, fmt.Errorf("isa: at offset %d: %w", i, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}
