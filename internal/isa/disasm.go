package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a binary image as assembler text, one instruction per
// line prefixed with its offset. Words that do not decode as instructions
// are rendered as .word directives, so any image round-trips through the
// disassembler (PAL images routinely mix code and data).
func Disassemble(b []byte) string {
	var sb strings.Builder
	for off := 0; off < len(b); off += WordSize {
		if off+WordSize <= len(b) {
			word := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
			if in, err := Decode(word); err == nil {
				fmt.Fprintf(&sb, "%04x:  %s\n", off, in)
				continue
			}
			fmt.Fprintf(&sb, "%04x:  .word 0x%08x\n", off, word)
			continue
		}
		// Trailing bytes shorter than a word.
		for _, v := range b[off:] {
			fmt.Fprintf(&sb, "%04x:  .byte 0x%02x\n", off, v)
			off++
		}
		break
	}
	return sb.String()
}
