package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembler source into a PAL binary image. The syntax
// is one statement per line:
//
//	; comment (also "#" and "//")
//	label:
//	        ldi   r0, 42
//	        ldi   r1, buffer       ; labels are immediate operands
//	        load  r2, [r1+4]
//	        cmp   r0, r2
//	        jz    done
//	done:   halt
//	buffer: .word 1, 2, 3
//	        .byte 0xff, 'A'
//	        .space 64
//	        .ascii "hello"
//
// Directives: .word (32-bit little-endian values), .byte, .space N (zero
// fill), .ascii "...", .align N. Numbers may be decimal, 0x hex, or
// character literals. Assemble is a classic two-pass assembler: pass one
// assigns label offsets, pass two encodes.
func Assemble(src string) ([]byte, error) {
	lines := strings.Split(src, "\n")

	type stmt struct {
		line   int
		label  string
		mnem   string
		args   []string
		offset int
	}
	var stmts []stmt
	labels := make(map[string]int)
	offset := 0

	// Pass 1: tokenize, place labels, compute sizes.
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s := stmt{line: ln + 1}
		if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
			s.label = strings.TrimSpace(line[:i])
			line = strings.TrimSpace(line[i+1:])
		}
		if s.label != "" {
			if _, dup := labels[s.label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", s.line, s.label)
			}
			labels[s.label] = offset
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		s.mnem = strings.ToLower(fields[0])
		if rest := strings.TrimSpace(line[len(fields[0]):]); rest != "" {
			s.args = splitArgs(rest)
		}
		s.offset = offset
		size, err := stmtSize(s.mnem, s.args, offset)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", s.line, err)
		}
		offset += size
		stmts = append(stmts, s)
	}
	if offset > 1<<16 {
		return nil, fmt.Errorf("isa: program is %d bytes; the 16-bit address space caps PALs at 64 KB", offset)
	}

	// Pass 2: encode.
	out := make([]byte, 0, offset)
	for _, s := range stmts {
		b, err := encodeStmt(s.mnem, s.args, s.offset, labels)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", s.line, err)
		}
		out = append(out, b...)
	}
	return out, nil
}

// MustAssemble is Assemble for statically known-good sources (examples,
// tests); it panics on error.
func MustAssemble(src string) []byte {
	b, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return b
}

func stripComment(line string) string {
	for _, marker := range []string{";", "#", "//"} {
		inStr := false
		for i := 0; i+len(marker) <= len(line); i++ {
			if line[i] == '"' {
				inStr = !inStr
			}
			if !inStr && strings.HasPrefix(line[i:], marker) {
				line = line[:i]
				break
			}
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// splitArgs splits on commas not inside a string literal.
func splitArgs(s string) []string {
	var args []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}

func stmtSize(mnem string, args []string, offset int) (int, error) {
	switch mnem {
	case ".word":
		return 4 * len(args), nil
	case ".byte":
		return len(args), nil
	case ".space":
		if len(args) != 1 {
			return 0, fmt.Errorf(".space wants 1 argument")
		}
		n, err := parseNum(args[0])
		if err != nil {
			return 0, err
		}
		return int(n), nil
	case ".ascii":
		if len(args) != 1 {
			return 0, fmt.Errorf(".ascii wants 1 argument")
		}
		s, err := parseString(args[0])
		if err != nil {
			return 0, err
		}
		return len(s), nil
	case ".align":
		if len(args) != 1 {
			return 0, fmt.Errorf(".align wants 1 argument")
		}
		n, err := parseNum(args[0])
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, fmt.Errorf(".align 0 is invalid")
		}
		pad := (int(n) - offset%int(n)) % int(n)
		return pad, nil
	default:
		if _, ok := opcodeByName(mnem); !ok {
			return 0, fmt.Errorf("unknown mnemonic %q", mnem)
		}
		return WordSize, nil
	}
}

func encodeStmt(mnem string, args []string, offset int, labels map[string]int) ([]byte, error) {
	resolve := func(tok string) (uint32, error) {
		if v, ok := labels[tok]; ok {
			return uint32(v), nil
		}
		return parseNum(tok)
	}
	switch mnem {
	case ".word":
		out := make([]byte, 0, 4*len(args))
		for _, a := range args {
			v, err := resolve(a)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return out, nil
	case ".byte":
		out := make([]byte, 0, len(args))
		for _, a := range args {
			v, err := resolve(a)
			if err != nil {
				return nil, err
			}
			if v > 0xff {
				return nil, fmt.Errorf(".byte value %d out of range", v)
			}
			out = append(out, byte(v))
		}
		return out, nil
	case ".space":
		n, err := parseNum(args[0])
		if err != nil {
			return nil, err
		}
		return make([]byte, n), nil
	case ".ascii":
		s, err := parseString(args[0])
		if err != nil {
			return nil, err
		}
		return []byte(s), nil
	case ".align":
		n, _ := parseNum(args[0])
		pad := (int(n) - offset%int(n)) % int(n)
		return make([]byte, pad), nil
	}

	op, _ := opcodeByName(mnem)
	in := Instruction{Op: op}
	wantArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operand(s), got %d", mnem, n, len(args))
		}
		return nil
	}
	switch operandsOf(op) {
	case operandsNone:
		if len(args) != 0 && !(len(args) == 1 && args[0] == "") {
			return nil, fmt.Errorf("%s takes no operands", mnem)
		}
	case operandsRegReg:
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		rb, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		in.RA, in.RB = ra, rb
	case operandsRegImm:
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, err := resolve(args[1])
		if err != nil {
			return nil, err
		}
		if imm > 0xffff && imm < 0xffff8000 { // allow negative 16-bit for addi
			return nil, fmt.Errorf("immediate %d does not fit in 16 bits", int32(imm))
		}
		in.RA, in.Imm = ra, uint16(imm)
	case operandsRegMem:
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		rb, imm, err := parseMem(args[1], labels)
		if err != nil {
			return nil, err
		}
		in.RA, in.RB, in.Imm = ra, rb, imm
	case operandsImm:
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		imm, err := resolve(args[0])
		if err != nil {
			return nil, err
		}
		if imm > 0xffff {
			return nil, fmt.Errorf("address %d does not fit in 16 bits", imm)
		}
		in.Imm = uint16(imm)
	case operandsReg:
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		in.RA = ra
	}
	return EncodeProgram([]Instruction{in}), nil
}

func opcodeByName(name string) (Opcode, bool) {
	for op, m := range mnemonics {
		if m == name {
			return Opcode(op), true
		}
	}
	return 0, false
}

func parseReg(tok string) (uint8, error) {
	tok = strings.ToLower(strings.TrimSpace(tok))
	switch tok {
	case "sp":
		// sp is an alias handled by the CPU as r7 by convention.
		return 7, nil
	}
	if len(tok) >= 2 && tok[0] == 'r' {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

// parseMem parses "[rb+imm]", "[rb]", or "[label]" (absolute, rb=r0 … no:
// absolute uses imm with rb required; a bare [label] is rejected to avoid
// silently clobbering a base register).
func parseMem(tok string, labels map[string]int) (uint8, uint16, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	inner := strings.TrimSpace(tok[1 : len(tok)-1])
	base := inner
	disp := ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		base, disp = strings.TrimSpace(inner[:i]), strings.TrimSpace(inner[i:])
	}
	rb, err := parseReg(base)
	if err != nil {
		return 0, 0, err
	}
	if disp == "" {
		return rb, 0, nil
	}
	neg := disp[0] == '-'
	disp = strings.TrimSpace(disp[1:])
	var v uint32
	if lv, ok := labels[disp]; ok {
		v = uint32(lv)
	} else if v, err = parseNum(disp); err != nil {
		return 0, 0, err
	}
	if v > 0xffff {
		return 0, 0, fmt.Errorf("displacement %d does not fit in 16 bits", v)
	}
	if neg {
		return rb, uint16(-int32(v)), nil
	}
	return rb, uint16(v), nil
}

func parseNum(tok string) (uint32, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return 0, fmt.Errorf("empty numeric operand")
	}
	if len(tok) >= 3 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
		inner := tok[1 : len(tok)-1]
		if len(inner) == 1 {
			return uint32(inner[0]), nil
		}
		if len(inner) == 2 && inner[0] == '\\' {
			switch inner[1] {
			case 'n':
				return '\n', nil
			case 't':
				return '\t', nil
			case '0':
				return 0, nil
			case '\\':
				return '\\', nil
			}
		}
		return 0, fmt.Errorf("bad character literal %s", tok)
	}
	neg := false
	if tok[0] == '-' {
		neg = true
		tok = tok[1:]
	}
	v, err := strconv.ParseUint(tok, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	if neg {
		return uint32(-int32(v)), nil
	}
	return uint32(v), nil
}

func parseString(tok string) (string, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != '"' || tok[len(tok)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", tok)
	}
	s, err := strconv.Unquote(tok)
	if err != nil {
		return "", fmt.Errorf("bad string literal %s: %v", tok, err)
	}
	return s, nil
}
