package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that everything it
// accepts disassembles and (for pure-code sources) re-decodes cleanly.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"ldi r0, 5\nhalt",
		"loop: addi r0, 1\njmp loop",
		".word 1, 2, 3\n.byte 'x'\n.ascii \"hi\"\n.space 9\n.align 8",
		"l: call l\nret\npush r1\npop r1",
		"store r1, [r2-4]\nload r3, [sp+0]",
		"; comment only",
		"svc 65535",
		".space 70000",
		"ldi r9, 1",
		"a: nop\na: nop",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Assemble(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(b) > MaxProgram() {
			t.Fatalf("assembler exceeded size cap: %d bytes", len(b))
		}
		// Whatever assembled must disassemble without panicking.
		_ = Disassemble(b)
	})
}

// MaxProgram exposes the 64 KB cap for the fuzzer's invariant.
func MaxProgram() int { return 1 << 16 }

// FuzzDecodeProgram checks the decoder is total: any byte string either
// decodes or errors, and decoded programs re-encode to the same bytes.
func FuzzDecodeProgram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeProgram([]Instruction{{Op: OpLdi, RA: 1, Imm: 42}, {Op: OpHalt}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		prog, err := DecodeProgram(b)
		if err != nil {
			return
		}
		re := EncodeProgram(prog)
		if len(re) != len(b) {
			t.Fatalf("re-encode length %d != %d", len(re), len(b))
		}
		for i := range b {
			if re[i] != b[i] {
				t.Fatalf("byte %d: %#x != %#x", i, re[i], b[i])
			}
		}
	})
}

// FuzzAssembleDisassembleAssemble checks that disassembler output for
// valid programs is itself assemblable (modulo the offset prefixes, which
// we strip).
func FuzzAssembleDisassembleAssemble(f *testing.F) {
	f.Add("ldi r0, 1\nadd r0, r1\nhalt")
	f.Add("cmp r1, r2\njz 0\njmp 4")
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Assemble(src)
		if err != nil || len(b)%WordSize != 0 {
			return
		}
		if _, err := DecodeProgram(b); err != nil {
			return // contains data words; disassembly is .word soup
		}
		text := Disassemble(b)
		var clean strings.Builder
		for _, line := range strings.Split(text, "\n") {
			if i := strings.Index(line, ":  "); i >= 0 {
				line = line[i+3:]
			}
			clean.WriteString(line)
			clean.WriteByte('\n')
		}
		b2, err := Assemble(clean.String())
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
		if len(b2) != len(b) {
			t.Fatalf("reassembly size %d != %d", len(b2), len(b))
		}
		for i := range b {
			if b2[i] != b[i] {
				t.Fatalf("byte %d differs after round trip", i)
			}
		}
	})
}
