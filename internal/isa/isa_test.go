package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMov, RA: 1, RB: 2},
		{Op: OpLdi, RA: 7, Imm: 0xbeef},
		{Op: OpLoad, RA: 3, RB: 4, Imm: 0x0100},
		{Op: OpJz, Imm: 0x1234},
		{Op: OpSvc, Imm: 5},
	}
	for _, in := range cases {
		got, err := Decode(in.Encode())
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip %v -> %v", in, got)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(0xff << 24); err == nil {
		t.Fatal("invalid opcode decoded without error")
	}
}

func TestDecodeRejectsBadRegister(t *testing.T) {
	// Register 9 in RA field of a mov.
	w := uint32(OpMov)<<24 | 9<<20
	if _, err := Decode(w); err == nil {
		t.Fatal("register 9 decoded without error")
	}
}

// Property: every instruction with valid fields round-trips exactly.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, ra, rb uint8, imm uint16) bool {
		in := Instruction{
			Op:  Opcode(op % uint8(opMax)),
			RA:  ra % NumRegs,
			RB:  rb % NumRegs,
			Imm: imm,
		}
		got, err := Decode(in.Encode())
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	prog := []Instruction{
		{Op: OpLdi, RA: 0, Imm: 10},
		{Op: OpLdi, RA: 1, Imm: 32},
		{Op: OpAdd, RA: 0, RB: 1},
		{Op: OpHalt},
	}
	b := EncodeProgram(prog)
	if len(b) != 16 {
		t.Fatalf("encoded length %d, want 16", len(b))
	}
	got, err := DecodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instructions", len(got))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("instruction %d: %v != %v", i, got[i], prog[i])
		}
	}
}

func TestDecodeProgramBadLength(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, 7)); err == nil {
		t.Fatal("odd-length program decoded without error")
	}
}

func TestOpcodeString(t *testing.T) {
	if OpLdi.String() != "ldi" {
		t.Fatalf("OpLdi = %q", OpLdi.String())
	}
	if got := Opcode(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("unknown opcode string %q", got)
	}
}

func TestInstructionString(t *testing.T) {
	cases := map[string]Instruction{
		"halt":             {Op: OpHalt},
		"mov r1, r2":       {Op: OpMov, RA: 1, RB: 2},
		"ldi r0, 99":       {Op: OpLdi, RA: 0, Imm: 99},
		"load r3, [r4+16]": {Op: OpLoad, RA: 3, RB: 4, Imm: 16},
		"jmp 8":            {Op: OpJmp, Imm: 8},
		"push r5":          {Op: OpPush, RA: 5},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}
