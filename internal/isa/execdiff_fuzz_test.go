package isa_test

import (
	"bytes"
	"testing"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/cpu"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/sim"
)

// FuzzExecDifferential is the executable extension of the ISA fuzz harness:
// any byte string, run as a program, must behave bit-identically under the
// interpreter and the threaded-code tier — registers, memory, flags, the
// virtual clock, retirement counts, stop reasons, and fault PCs/messages
// all included.
//
// The harness deliberately stresses the tier's hard cases:
//
//   - Programs run repeatedly, so leaders cross the heat threshold and the
//     later passes execute compiled blocks.
//   - Execution is driven in quantum slices, so blocks are preempted
//     mid-stream and must bail to the interpreter at the exact instruction
//     the timer hits.
//   - Stores land anywhere in the region, including over the program's own
//     instructions, exercising mid-block invalidation and recompilation.
//   - Undecodable words and runtime faults (division by zero, stack
//     over/underflow, out-of-region accesses) must surface the identical
//     error at the identical PC.
//
// This lives in package isa_test (not isa) because it needs the cpu
// package, which imports isa.
func FuzzExecDifferential(f *testing.F) {
	enc := func(prog ...isa.Instruction) []byte { return isa.EncodeProgram(prog) }

	// A hot loop with a fused cmp+branch.
	f.Add(enc(
		isa.Instruction{Op: isa.OpLdi, RA: 0, Imm: 0},
		isa.Instruction{Op: isa.OpLdi, RA: 1, Imm: 30},
		isa.Instruction{Op: isa.OpAddi, RA: 0, Imm: 1}, // loop
		isa.Instruction{Op: isa.OpAdd, RA: 2, RB: 0},
		isa.Instruction{Op: isa.OpCmp, RA: 0, RB: 1},
		isa.Instruction{Op: isa.OpJnz, Imm: 8},
		isa.Instruction{Op: isa.OpHalt},
	), uint32(0), uint32(0), uint8(9))

	// Self-modifying: the loop stores a fresh word over its own body.
	f.Add(enc(
		isa.Instruction{Op: isa.OpLdi, RA: 0, Imm: 0},
		isa.Instruction{Op: isa.OpLdi, RA: 2, Imm: 12},
		isa.Instruction{Op: isa.OpLdi, RA: 3, Imm: 9},
		isa.Instruction{Op: isa.OpAddi, RA: 0, Imm: 1}, // loop; also the store target
		isa.Instruction{Op: isa.OpStore, RA: 3, RB: 2},
		isa.Instruction{Op: isa.OpCmp, RA: 0, RB: 1},
		isa.Instruction{Op: isa.OpJnz, Imm: 12},
		isa.Instruction{Op: isa.OpHalt},
	), uint32(0), uint32(0), uint8(3))

	// Division faults once r1 counts down to zero.
	f.Add(enc(
		isa.Instruction{Op: isa.OpLdi, RA: 1, Imm: 5},
		isa.Instruction{Op: isa.OpLdi, RA: 2, Imm: 1},
		isa.Instruction{Op: isa.OpLdi, RA: 3, Imm: 100}, // loop
		isa.Instruction{Op: isa.OpDivu, RA: 3, RB: 1},
		isa.Instruction{Op: isa.OpSub, RA: 1, RB: 2},
		isa.Instruction{Op: isa.OpJmp, Imm: 8},
	), uint32(0), uint32(0), uint8(5))

	// Stack traffic: call/ret plus fused pop pairs.
	f.Add(enc(
		isa.Instruction{Op: isa.OpLdi, RA: 0, Imm: 7},
		isa.Instruction{Op: isa.OpCall, Imm: 16},
		isa.Instruction{Op: isa.OpHalt},
		isa.Instruction{Op: isa.OpNop},
		isa.Instruction{Op: isa.OpPush, RA: 0}, // sub
		isa.Instruction{Op: isa.OpPush, RA: 0},
		isa.Instruction{Op: isa.OpPop, RA: 1},
		isa.Instruction{Op: isa.OpPop, RA: 2},
		isa.Instruction{Op: isa.OpRet},
	), uint32(3), uint32(4), uint8(0))

	// Raw garbage: must fault identically.
	f.Add([]byte{0xff, 0x13, 0x22, 0x9c, 0x01, 0x02}, uint32(1), uint32(2), uint8(2))

	f.Fuzz(func(t *testing.T, prog []byte, r0, r1 uint32, qsel uint8) {
		if len(prog) == 0 || len(prog) > 256*isa.WordSize {
			return
		}
		prog = prog[:len(prog)/isa.WordSize*isa.WordSize]
		if len(prog) == 0 {
			return
		}
		// The region holds the program plus a stack/data page; sp starts at
		// the region top, clear of the code.
		const base = 0x4000
		size := len(prog) + int(mem.PageSize)

		type machine struct {
			c  *cpu.CPU
			cs *chipset.Chipset
		}
		mk := func(compile bool) machine {
			clock := sim.NewClock()
			cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
			c := cpu.New(0, cpu.ParamsAMDdc5750(), cs)
			if err := cs.Memory().WriteRaw(base, prog); err != nil {
				t.Fatal(err)
			}
			c.Reset()
			c.SetBlockCompile(compile)
			return machine{c, cs}
		}
		on, off := mk(true), mk(false)
		region := mem.Region{Base: base, Size: size}

		// quantum 0 would never preempt an infinite loop; always slice.
		quantum := time.Duration(1+int(qsel%32)) * cpu.ParamsAMDdc5750().InstrCost

		// Drive both machines through identical slices for several passes:
		// early passes heat the leaders, later ones execute compiled
		// blocks. Slices are capped so looping fuzz inputs terminate.
		const passes, maxSlices = 12, 64
		for pass := 0; pass < passes; pass++ {
			for _, m := range []machine{on, off} {
				m.c.EnterRegion(region, 0)
				m.c.Regs[0], m.c.Regs[1] = r0, r1
			}
			for slice := 0; slice < maxSlices; slice++ {
				reasonOn, errOn := on.c.Run(quantum)
				reasonOff, errOff := off.c.Run(quantum)
				if reasonOn != reasonOff {
					t.Fatalf("pass %d slice %d: stop reasons diverge: compiled %v, interpreted %v",
						pass, slice, reasonOn, reasonOff)
				}
				if (errOn == nil) != (errOff == nil) ||
					(errOn != nil && errOn.Error() != errOff.Error()) {
					t.Fatalf("pass %d slice %d: errors diverge:\n  compiled    %v\n  interpreted %v",
						pass, slice, errOn, errOff)
				}
				if on.c.PC != off.c.PC {
					t.Fatalf("pass %d slice %d: PC diverges: compiled %d, interpreted %d",
						pass, slice, on.c.PC, off.c.PC)
				}
				if on.c.Regs != off.c.Regs {
					t.Fatalf("pass %d slice %d: registers diverge:\n  compiled    %v\n  interpreted %v",
						pass, slice, on.c.Regs, off.c.Regs)
				}
				if on.c.FlagZ != off.c.FlagZ || on.c.FlagC != off.c.FlagC || on.c.FlagN != off.c.FlagN {
					t.Fatalf("pass %d slice %d: flags diverge", pass, slice)
				}
				if on.c.Retired != off.c.Retired {
					t.Fatalf("pass %d slice %d: retirement counts diverge: compiled %d, interpreted %d",
						pass, slice, on.c.Retired, off.c.Retired)
				}
				if on.c.Clock().Now() != off.c.Clock().Now() {
					t.Fatalf("pass %d slice %d: virtual clocks diverge: compiled %v, interpreted %v",
						pass, slice, on.c.Clock().Now(), off.c.Clock().Now())
				}
				if reasonOn != cpu.StopPreempted {
					break // halted, yielded, or faulted — identically
				}
			}
		}
		mOn, err := on.cs.Memory().ReadRaw(0, 16*mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		mOff, err := off.cs.Memory().ReadRaw(0, 16*mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mOn, mOff) {
			t.Fatal("memory contents diverge between compiled and interpreted runs")
		}
	})
}
