package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	b, err := Assemble(`
		ldi r0, 5
		ldi r1, 7
		add r0, r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := DecodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []Instruction{
		{Op: OpLdi, RA: 0, Imm: 5},
		{Op: OpLdi, RA: 1, Imm: 7},
		{Op: OpAdd, RA: 0, RB: 1},
		{Op: OpHalt},
	}
	for i := range want {
		if prog[i] != want[i] {
			t.Fatalf("instruction %d = %v, want %v", i, prog[i], want[i])
		}
	}
}

func TestAssembleLabels(t *testing.T) {
	b, err := Assemble(`
	start:
		ldi r0, 0
	loop:
		addi r0, 1
		ldi r1, 10
		cmp r0, r1
		jnz loop
		jmp done
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := DecodeProgram(b)
	// "jnz loop" is instruction 4; loop is at byte offset 4.
	if prog[4].Op != OpJnz || prog[4].Imm != 4 {
		t.Fatalf("jnz = %v, want jnz 4", prog[4])
	}
	// "jmp done" is instruction 5; done is at byte offset 24.
	if prog[5].Op != OpJmp || prog[5].Imm != 24 {
		t.Fatalf("jmp = %v, want jmp 24", prog[5])
	}
}

func TestAssembleComments(t *testing.T) {
	b, err := Assemble(`
		; full-line comment
		# hash comment
		// slash comment
		nop   ; trailing
		halt  # trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 8 {
		t.Fatalf("length %d, want 8 (two instructions)", len(b))
	}
}

func TestAssembleDirectives(t *testing.T) {
	b, err := Assemble(`
		halt
	data:
		.word 0x11223344, 5
		.byte 1, 2, 0xff, 'A'
		.space 3
		.ascii "hi"
	`)
	if err != nil {
		t.Fatal(err)
	}
	// 4 (halt) + 8 (.word) + 4 (.byte) + 3 (.space) + 2 (.ascii)
	if len(b) != 21 {
		t.Fatalf("length %d, want 21", len(b))
	}
	if b[4] != 0x44 || b[5] != 0x33 || b[6] != 0x22 || b[7] != 0x11 {
		t.Fatalf(".word not little-endian: % x", b[4:8])
	}
	if b[12] != 1 || b[15] != 'A' {
		t.Fatalf(".byte wrong: % x", b[12:16])
	}
	if b[19] != 'h' || b[20] != 'i' {
		t.Fatalf(".ascii wrong: % x", b[19:21])
	}
}

func TestAssembleAlign(t *testing.T) {
	b, err := Assemble(`
		.byte 1
		.align 4
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 8 {
		t.Fatalf("length %d, want 8", len(b))
	}
	prog, err := DecodeProgram(b[4:])
	if err != nil || prog[0].Op != OpHalt {
		t.Fatalf("halt not aligned to offset 4: %v %v", prog, err)
	}
}

func TestAssembleLabelAsImmediate(t *testing.T) {
	b, err := Assemble(`
		ldi r0, data
		load r1, [r0+0]
		halt
	data:
		.word 42
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := DecodeProgram(b[:12])
	if prog[0].Imm != 12 {
		t.Fatalf("ldi imm = %d, want 12 (offset of data)", prog[0].Imm)
	}
}

func TestAssembleMemOperands(t *testing.T) {
	b, err := Assemble(`
		load r1, [r2]
		load r3, [r4+8]
		store r5, [r6-4]
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := DecodeProgram(b)
	if prog[0].RB != 2 || prog[0].Imm != 0 {
		t.Fatalf("bare base: %v", prog[0])
	}
	if prog[1].RB != 4 || prog[1].Imm != 8 {
		t.Fatalf("positive disp: %v", prog[1])
	}
	if prog[2].RB != 6 || prog[2].Imm != 0xfffc {
		t.Fatalf("negative disp: %v", prog[2])
	}
}

func TestAssembleSpAlias(t *testing.T) {
	b, err := Assemble(`mov sp, r1`)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := DecodeProgram(b)
	if prog[0].RA != 7 {
		t.Fatalf("sp did not alias to r7: %v", prog[0])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"bogus r0, r1":    "unknown mnemonic",
		"ldi r9, 1":       "bad register",
		"ldi r0":          "wants 2 operand",
		"jmp 99999":       "16 bits",
		"add r0, r1, r2":  "wants 2 operand",
		"l: nop\nl: nop":  "duplicate label",
		"ldi r0, nowhere": "bad number",
		".space":          "wants 1 argument",
		".byte 300":       "out of range",
		"load r0, r1":     "bad memory operand",
		".ascii hello":    "bad string literal",
		"halt r0":         "takes no operands",
		"ldi r0, 'abc'":   "bad character literal",
		".align 0":        ".align 0 is invalid",
	}
	for src, wantSub := range cases {
		_, err := Assemble(src)
		if err == nil {
			t.Fatalf("Assemble(%q) succeeded, want error containing %q", src, wantSub)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("Assemble(%q) error %q does not contain %q", src, err, wantSub)
		}
	}
}

func TestAssembleTooLarge(t *testing.T) {
	_, err := Assemble(".space 70000")
	if err == nil || !strings.Contains(err.Error(), "64 KB") {
		t.Fatalf("oversized program error = %v", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("not an instruction at all!")
}

func TestAssembleCharEscapes(t *testing.T) {
	b, err := Assemble(`.byte '\n', '\t', '\0', '\\'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{'\n', '\t', 0, '\\'}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("escape %d = %#x, want %#x", i, b[i], want[i])
		}
	}
}

func TestAssembleNegativeImmediates(t *testing.T) {
	b, err := Assemble("addi r0, -1")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := DecodeProgram(b)
	if prog[0].Imm != 0xffff {
		t.Fatalf("addi -1 imm = %#x, want 0xffff", prog[0].Imm)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		ldi r0, 5
		ldi r1, 7
		add r0, r1
		cmp r0, r1
		jz 0
		halt
	`
	b := MustAssemble(src)
	text := Disassemble(b)
	for _, want := range []string{"ldi r0, 5", "add r0, r1", "jz 0", "halt"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestDisassembleData(t *testing.T) {
	// 0xffffffff is not a valid instruction; must render as .word.
	text := Disassemble([]byte{0xff, 0xff, 0xff, 0xff, 0xaa})
	if !strings.Contains(text, ".word 0xffffffff") {
		t.Fatalf("data word not rendered: %s", text)
	}
	if !strings.Contains(text, ".byte 0xaa") {
		t.Fatalf("trailing byte not rendered: %s", text)
	}
}
