package cpu

import (
	"bytes"
	"sync"
	"time"

	"minimaltcb/internal/tpm"
)

// The launch-measurement cache removes the dominant host-side cost of a
// late launch: hashing the same SLB image on every invocation. Profiles of
// the Table 1 and context-switch experiments put ~85% of wall time in
// crypto/sha1 — the simulator re-measures a byte-identical image thousands
// of times while the *virtual* cost model (bus transfer time, HashPerKB)
// is what the experiment actually reports.
//
// The cache is validated by full content compare, not by identity or page
// versions: launch microcode streams images through pooled scratch buffers
// (so slice identity is meaningless), and experiments rewrite the image
// into memory before every trial (so page versions never match). A memcmp
// of the freshly read bytes against the cached private copy is ~100×
// cheaper than SHA-1 and makes the cache exact by construction: a hit
// proves the bytes are the ones the stored digest was computed from.
//
// Virtual charging is untouched — callers advance the clock for bus
// transfers and on-CPU hashing exactly as before; only the host-side
// digest computation is served from cache.

// launchCacheEntries is the number of digest slots. The cache is fully
// associative with round-robin eviction: a latency sweep launches a
// handful of distinct image sizes in rotation, and a direct-mapped table
// would let two sizes sharing a slot evict each other on every pass.
const launchCacheEntries = 16

// acmTag indexes the SENTER ACMod measurement, which has no region base.
const acmTag = 0xac000000

type launchEntry struct {
	tag  uint32 // region base (or acmTag); narrows the scan, never trusted
	size int
	img  []byte // private copy of the measured bytes
	meas tpm.Digest
}

// launchMemo is process-global, not per-CPU: experiment sweeps build fresh
// machines by the dozen, and a per-CPU cache would re-copy and re-hash the
// same images for every one of them. The digest is a pure function of the
// bytes and the content compare guards every hit, so sharing across
// machines cannot leak state between them.
var launchMemo struct {
	mu      sync.Mutex
	clock   int
	entries [launchCacheEntries]launchEntry
}

// measureCached returns SHA-1 of data, serving repeats of byte-identical
// inputs from the shared cache. A hit requires the full content compare;
// tag and size only cheapen the scan.
func (c *CPU) measureCached(tag uint32, data []byte) tpm.Digest {
	lm := &launchMemo
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for i := range lm.entries {
		e := &lm.entries[i]
		if e.tag == tag && e.size == len(data) && e.img != nil && bytes.Equal(e.img, data) {
			return e.meas
		}
	}
	d := tpm.Measure(data)
	e := &lm.entries[lm.clock%launchCacheEntries]
	lm.clock++
	e.tag = tag
	e.size = len(data)
	e.img = append(e.img[:0], data...)
	e.meas = d
	return d
}

// hashOnCPUCached is HashOnCPU with the digest served through the launch
// cache: the virtual charge (the ACMod's on-CPU hash rate) is identical.
func (c *CPU) hashOnCPUCached(tag uint32, data []byte) tpm.Digest {
	c.Clock().Advance(time.Duration(len(data)) * c.Params.HashPerKB / 1024)
	return c.measureCached(tag, data)
}
