package cpu

import (
	"testing"

	"minimaltcb/internal/lpc"
)

// Edge-case coverage for less-travelled interpreter paths.

func TestUnsignedBranches(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		; 0xffffffff vs 1: unsigned above, signed below.
		ldi	r0, 0xffff
		lui	r0, 0xffff
		ldi	r1, 1
		cmp	r0, r1
		jc	below		; must NOT take: 0xffffffff !< 1 unsigned
		ldi	r2, 1
		jmp	next
	below:	ldi	r2, 2
	next:	cmp	r1, r0
		jc	below2		; must take: 1 < 0xffffffff unsigned
		ldi	r3, 1
		halt
	below2:	ldi	r3, 2
		halt
	`)
	if c.Regs[2] != 1 {
		t.Fatalf("jc taken on unsigned-above: r2=%d", c.Regs[2])
	}
	if c.Regs[3] != 2 {
		t.Fatalf("jc not taken on unsigned-below: r3=%d", c.Regs[3])
	}
}

func TestJncAndJnBranches(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi	r0, 5
		ldi	r1, 5
		cmp	r0, r1
		jnc	equal		; 5 !< 5, so jnc takes
		ldi	r2, 0
		halt
	equal:	ldi	r2, 1
		; signed: -1 < 0
		ldi	r3, 0
		addi	r3, -1
		ldi	r4, 0
		cmp	r3, r4
		jn	neg
		ldi	r5, 0
		halt
	neg:	ldi	r5, 1
		halt
	`)
	if c.Regs[2] != 1 || c.Regs[5] != 1 {
		t.Fatalf("r2=%d r5=%d", c.Regs[2], c.Regs[5])
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift counts use only the low 5 bits, like x86.
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi	r0, 1
		ldi	r1, 33		; & 31 = 1
		shl	r0, r1
		ldi	r2, 0x8000
		lui	r2, 0
		ldi	r3, 47		; & 31 = 15
		shr	r2, r3
		halt
	`)
	if c.Regs[0] != 2 {
		t.Fatalf("shl by 33 = %d, want 2", c.Regs[0])
	}
	if c.Regs[2] != 1 {
		t.Fatalf("shr by 47 = %d, want 1", c.Regs[2])
	}
}

func TestStorebTruncates(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi	r0, 0x1234
		ldi	r1, buf
		storeb	r0, [r1+1]	; only 0x34 lands
		load	r2, [r1]
		halt
	buf:	.word 0
	`)
	if c.Regs[2] != 0x3400 {
		t.Fatalf("word = %#x, want 0x3400", c.Regs[2])
	}
}

func TestNegativeDisplacement(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi	r1, after
		load	r0, [r1-4]	; the word right before 'after'
		halt
	val:	.word 77
	after:	.word 0
	`)
	if c.Regs[0] != 77 {
		t.Fatalf("r0 = %d, want 77", c.Regs[0])
	}
}

func TestWritingCodeIsAllowedWithinRegion(t *testing.T) {
	// PALs may self-modify inside their own region (no W^X is modeled;
	// measurement already happened at launch, which is exactly the
	// paper's load-time-attestation caveat in §3.3's footnote).
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi	r1, patch
		ldi	r0, 0x0001	; encoding of "halt" is op 1 in the top byte
		lui	r0, 0x0100
		store	r0, [r1]
	patch:	nop		; overwritten with halt before reaching it? no:
			; the store targets this slot, then execution arrives.
		nop
		halt
	`)
	_ = c // reaching halt (either patched or original) without fault is the point
}

func TestReadWordHelpersBounds(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, "halt")
	if _, err := r.cpu.ReadWord(1 << 20); err == nil {
		t.Fatal("out-of-region ReadWord succeeded")
	}
	if err := r.cpu.WriteWord(1<<20, 1); err == nil {
		t.Fatal("out-of-region WriteWord succeeded")
	}
	if _, err := r.cpu.ReadBytes(0, -1); err == nil {
		t.Fatal("negative-length read succeeded")
	}
}

func TestRetiredCounts(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, "nop\nnop\nhalt")
	before := r.cpu.Retired
	r.cpu.Run(0)
	if got := r.cpu.Retired - before; got != 3 {
		t.Fatalf("retired %d, want 3", got)
	}
}
