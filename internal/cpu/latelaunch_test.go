package cpu

import (
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/acmod"
	"minimaltcb/internal/chipset"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// place writes an image padded to size at a fixed base and returns the base.
func place(t *testing.T, cs *chipset.Chipset, size int) uint32 {
	t.Helper()
	im := pal.MustBuild(`
		ldi r0, 7
		halt
	`)
	if size > 0 {
		var err error
		im, err = im.Pad(size)
		if err != nil {
			t.Fatal(err)
		}
	}
	base := uint32(8 * mem.PageSize)
	if err := cs.Memory().WriteRaw(base, im.Bytes); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestSKINITMeasuresAndRuns(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := place(t, r.chip, 0)
	res, err := r.cpu.SKINIT(base)
	if err != nil {
		t.Fatal(err)
	}
	// PCR17 = extend(0, SHA1(image)).
	img, _ := r.chip.Memory().ReadRaw(res.Region.Base, res.Region.Size)
	wantMeas := tpm.Measure(img)
	if res.PALMeasurement != wantMeas {
		t.Fatal("reported measurement is not the image hash")
	}
	pcr17, _ := r.chip.TPM().PCRValue(17)
	if pcr17 != res.PCR17 {
		t.Fatal("result PCR17 differs from TPM state")
	}
	// Interrupts off, ring 0, PC at entry.
	if r.cpu.IntrEnabled || r.cpu.Ring != 0 {
		t.Fatal("CPU not in trusted state after SKINIT")
	}
	// The PAL actually runs.
	reason, err := r.cpu.Run(0)
	if err != nil || reason != StopHalt {
		t.Fatalf("PAL run: %v %v", reason, err)
	}
	if r.cpu.Regs[0] != 7 {
		t.Fatalf("PAL result %d", r.cpu.Regs[0])
	}
}

func TestSKINITSetsDEV(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := place(t, r.chip, 4096)
	res, err := r.cpu.SKINIT(base)
	if err != nil {
		t.Fatal(err)
	}
	nic := chipset.NewDevice("nic", r.chip)
	if _, err := nic.Read(res.Region.Base, 16); !errors.Is(err, mem.ErrDenied) {
		t.Fatalf("DMA into SLB after SKINIT: %v", err)
	}
}

// Table 1, row 1: SKINIT on the HP dc5750 (TPM with long wait cycles).
func TestSKINITTimingMatchesTable1WithTPM(t *testing.T) {
	cases := map[int]float64{ // size -> expected ms
		4096:  11.94,
		8192:  22.98,
		16384: 45.05,
		32768: 89.21,
		65536: 177.52,
	}
	for size, wantMS := range cases {
		r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
		base := place(t, r.chip, size)
		start := r.clock.Now()
		if _, err := r.cpu.SKINIT(base); err != nil {
			t.Fatal(err)
		}
		gotMS := float64(r.clock.Now()-start) / float64(time.Millisecond)
		if gotMS < wantMS*0.995 || gotMS > wantMS*1.005 {
			t.Errorf("SKINIT %d KB: %.2f ms, want ≈%.2f", size/1024, gotMS, wantMS)
		}
	}
}

// Table 1, row 2: SKINIT on the Tyan n3600R (no TPM).
func TestSKINITTimingMatchesTable1NoTPM(t *testing.T) {
	cases := map[int]float64{
		4096:  0.56,
		8192:  1.11,
		16384: 2.21,
		32768: 4.41,
		65536: 8.82,
	}
	for size, wantMS := range cases {
		r := newRig(t, ParamsAMDTyan(), lpc.FullSpeed(), false)
		base := place(t, r.chip, size)
		start := r.clock.Now()
		if _, err := r.cpu.SKINIT(base); err != nil {
			t.Fatal(err)
		}
		gotMS := float64(r.clock.Now()-start) / float64(time.Millisecond)
		if gotMS < wantMS*0.98 || gotMS > wantMS*1.02 {
			t.Errorf("Tyan SKINIT %d KB: %.3f ms, want ≈%.2f", size/1024, gotMS, wantMS)
		}
	}
}

func TestSKINITWrongVendor(t *testing.T) {
	r := newRig(t, ParamsIntelTEP(), lpc.FullSpeed(), true)
	base := place(t, r.chip, 0)
	if _, err := r.cpu.SKINIT(base); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("SKINIT on Intel: %v", err)
	}
}

func TestSKINITBadHeader(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := uint32(8 * mem.PageSize)
	r.chip.Memory().WriteRaw(base, []byte{2, 0, 99, 0}) // length 2 < header
	if _, err := r.cpu.SKINIT(base); err == nil {
		t.Fatal("bad SLB header launched")
	}
}

func senterRig(t *testing.T) (*rig, *acmod.Module, *acmod.Vendor) {
	t.Helper()
	r := newRig(t, ParamsIntelTEP(), intelTEPBusTiming(), true)
	vendor, err := acmod.NewVendor(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	module, err := vendor.Sign(nil)
	if err != nil {
		t.Fatal(err)
	}
	return r, module, vendor
}

// intelTEPBusTiming is the TEP's LPC profile: the ACMod transfer accounts
// for most of SENTER's 26.39 ms base.
func intelTEPBusTiming() lpc.Timing {
	return lpc.Timing{
		HashStartEnd:    900 * time.Microsecond,
		HashDataPerKB:   2400 * time.Microsecond,
		CommandOverhead: 150 * time.Microsecond,
		BytesPerCommand: 4,
	}
}

func TestSENTERMeasuresBothPCRs(t *testing.T) {
	r, module, vendor := senterRig(t)
	base := place(t, r.chip, 4096)
	res, err := r.cpu.SENTER(base, module, vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	// PCR17 holds the ACMod measurement; PCR18 the PAL's.
	pcr17, _ := r.chip.TPM().PCRValue(17)
	pcr18, _ := r.chip.TPM().PCRValue(18)
	if pcr17 != res.PCR17 || pcr18 != res.PCR18 {
		t.Fatal("result PCRs differ from TPM state")
	}
	img, _ := r.chip.Memory().ReadRaw(res.Region.Base, res.Region.Size)
	if res.PALMeasurement != tpm.Measure(img) {
		t.Fatal("PAL measurement is not the image hash")
	}
	if pcr17 == pcr18 {
		t.Fatal("ACMod and PAL measurements collide")
	}
	reason, err := r.cpu.Run(0)
	if err != nil || reason != StopHalt {
		t.Fatalf("PAL run after SENTER: %v %v", reason, err)
	}
}

func TestSENTERRejectsForgedACMod(t *testing.T) {
	r, module, vendor := senterRig(t)
	base := place(t, r.chip, 4096)
	forged := &acmod.Module{Code: append([]byte(nil), module.Code...), Signature: module.Signature}
	forged.Code[100] ^= 0xff
	_, err := r.cpu.SENTER(base, forged, vendor.Public())
	if err == nil {
		t.Fatal("forged ACMod launched")
	}
	// Abort must undo the memory protection.
	on, _ := r.chip.Memory().DEV(8)
	if on {
		t.Fatal("DEV protection leaked after aborted SENTER")
	}
}

// Table 1, row 3: SENTER on the Intel TEP.
func TestSENTERTimingMatchesTable1(t *testing.T) {
	cases := map[int]float64{
		4096:  26.88,
		8192:  27.38,
		16384: 28.37,
		65536: 34.35,
	}
	for size, wantMS := range cases {
		r, module, vendor := senterRig(t)
		base := place(t, r.chip, size)
		start := r.clock.Now()
		if _, err := r.cpu.SENTER(base, module, vendor.Public()); err != nil {
			t.Fatal(err)
		}
		gotMS := float64(r.clock.Now()-start) / float64(time.Millisecond)
		if gotMS < wantMS*0.99 || gotMS > wantMS*1.01 {
			t.Errorf("SENTER %d KB: %.2f ms, want ≈%.2f", size/1024, gotMS, wantMS)
		}
	}
}

func TestSENTERWrongVendorCPU(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := place(t, r.chip, 0)
	if _, err := r.cpu.SENTER(base, nil, nil); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("SENTER on AMD: %v", err)
	}
}

func TestSENTERNeedsTPM(t *testing.T) {
	r := newRig(t, ParamsIntelTEP(), lpc.FullSpeed(), false)
	base := place(t, r.chip, 0)
	if _, err := r.cpu.SENTER(base, nil, nil); err == nil {
		t.Fatal("SENTER without TPM succeeded")
	}
}

// The crossover the paper highlights: AMD is cheaper for small PALs (only
// the PAL crosses the bus), Intel for large ones (PAL hashed on-CPU).
func TestHashLocationCrossover(t *testing.T) {
	launchAMD := func(size int) time.Duration {
		r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
		base := place(t, r.chip, size)
		start := r.clock.Now()
		if _, err := r.cpu.SKINIT(base); err != nil {
			t.Fatal(err)
		}
		return r.clock.Now() - start
	}
	launchIntel := func(size int) time.Duration {
		r, module, vendor := senterRig(t)
		base := place(t, r.chip, size)
		start := r.clock.Now()
		if _, err := r.cpu.SENTER(base, module, vendor.Public()); err != nil {
			t.Fatal(err)
		}
		return r.clock.Now() - start
	}
	if launchAMD(4096) >= launchIntel(4096) {
		t.Error("AMD should win at 4 KB")
	}
	if launchAMD(65536) <= launchIntel(65536) {
		t.Error("Intel should win at 64 KB")
	}
}
