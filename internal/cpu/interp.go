package cpu

import (
	"fmt"
	"time"

	"minimaltcb/internal/isa"
)

// Run executes instructions from the current region until the PAL halts,
// yields, faults, or — when quantum > 0 — the execution quantum expires
// (the preemption timer of §5.3, which on recommended hardware the
// untrusted OS configures in the SECB). The charged virtual time per
// instruction is Params.InstrCost.
//
// On StopFault the returned error describes the fault; for the other stop
// reasons the error is nil.
//
// The quantum counts instruction time only: virtual time a service call
// spends inside the TPM does not advance the preemption timer, mirroring
// hardware where the timer gates CPU execution and TPM commands complete
// atomically from the scheduler's viewpoint.
func (c *CPU) Run(quantum time.Duration) (StopReason, error) {
	var elapsed time.Duration
	// atLeader tracks whether PC sits at a basic-block boundary (Run
	// entry or the target of a control transfer) — the only places the
	// threaded-code tier (tcode.go) is consulted. Compiled blocks are
	// keyed by their leader, so looking up mid-block PCs would only waste
	// a probe per sequential instruction.
	atLeader := true
	for {
		if quantum > 0 && elapsed >= quantum {
			return StopPreempted, nil
		}
		if atLeader && !c.tcodeOff && c.tracer == nil {
			if e := c.blockFor(quantum, elapsed); e != nil {
				executed, err := c.runBlock(e)
				// Block-granular charging: one Advance for every
				// instruction that retired. Nothing observed the clock
				// between them — SVC and HALT terminate blocks at
				// compile time — so this is bit-identical to the
				// interpreter's per-instruction Advance.
				cost := time.Duration(executed) * c.Params.InstrCost
				c.Clock().Advance(cost)
				elapsed += cost
				c.Retired += int64(executed)
				if err != nil {
					return StopFault, err
				}
				continue
			}
		}
		in, err := c.fetch()
		if err != nil {
			return StopFault, err
		}
		if c.tracer != nil {
			c.tracer(c, c.PC, in)
		}
		c.Clock().Advance(c.Params.InstrCost)
		elapsed += c.Params.InstrCost
		c.Retired++
		if c.prof != nil {
			c.prof.RetireInstr(c.PC, in.Op, c.Params.InstrCost)
		}

		next := c.PC + isa.WordSize
		action, err := c.execute(in)
		if err != nil {
			return StopFault, err
		}
		// Control transfers land on leaders; so does the instruction
		// after an SVC, since blocks are compiled up to (not through)
		// service calls.
		atLeader = c.PC != next || in.Op == isa.OpSvc
		switch action {
		case SvcExit:
			return StopHalt, nil
		case SvcYield:
			return StopYield, nil
		}
	}
}

// fetch decodes the instruction at PC, through the decode cache when it is
// enabled (decodecache.go). The region bounds check runs on every fetch
// regardless; only the access-table consultation and decode are cached.
func (c *CPU) fetch() (isa.Instruction, error) {
	phys, err := c.translate(c.PC, isa.WordSize)
	if err != nil {
		return isa.Instruction{}, fmt.Errorf("%w: fetch at pc=%d: %v", ErrFault, c.PC, err)
	}
	in, err := c.fetchCached(phys)
	if err != nil {
		return isa.Instruction{}, fmt.Errorf("%w: pc=%d: %v", ErrFault, c.PC, err)
	}
	return in, nil
}

// execute runs one decoded instruction. It returns the action requested by
// a service call (SvcContinue otherwise).
func (c *CPU) execute(in isa.Instruction) (SvcAction, error) {
	next := c.PC + isa.WordSize
	ra, rb := in.RA, in.RB
	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		c.PC = next
		return SvcExit, nil
	case isa.OpMov:
		c.Regs[ra] = c.Regs[rb]
	case isa.OpLdi:
		c.Regs[ra] = uint32(in.Imm)
	case isa.OpLui:
		c.Regs[ra] = (c.Regs[ra] & 0xffff) | uint32(in.Imm)<<16
	case isa.OpAddi:
		c.Regs[ra] += uint32(int32(int16(in.Imm)))
	case isa.OpAdd:
		c.Regs[ra] += c.Regs[rb]
	case isa.OpSub:
		c.Regs[ra] -= c.Regs[rb]
	case isa.OpMul:
		c.Regs[ra] *= c.Regs[rb]
	case isa.OpDivu:
		if c.Regs[rb] == 0 {
			return 0, fmt.Errorf("%w: divide by zero at pc=%d", ErrFault, c.PC)
		}
		c.Regs[ra] /= c.Regs[rb]
	case isa.OpRemu:
		if c.Regs[rb] == 0 {
			return 0, fmt.Errorf("%w: remainder by zero at pc=%d", ErrFault, c.PC)
		}
		c.Regs[ra] %= c.Regs[rb]
	case isa.OpAnd:
		c.Regs[ra] &= c.Regs[rb]
	case isa.OpOr:
		c.Regs[ra] |= c.Regs[rb]
	case isa.OpXor:
		c.Regs[ra] ^= c.Regs[rb]
	case isa.OpShl:
		c.Regs[ra] <<= c.Regs[rb] & 31
	case isa.OpShr:
		c.Regs[ra] >>= c.Regs[rb] & 31
	case isa.OpLoad:
		v, err := c.ReadWord(c.Regs[rb] + uint32(int32(int16(in.Imm))))
		if err != nil {
			return 0, err
		}
		c.Regs[ra] = v
	case isa.OpLoadb:
		b, err := c.LoadByte(c.Regs[rb] + uint32(int32(int16(in.Imm))))
		if err != nil {
			return 0, err
		}
		c.Regs[ra] = uint32(b)
	case isa.OpStore:
		if err := c.WriteWord(c.Regs[rb]+uint32(int32(int16(in.Imm))), c.Regs[ra]); err != nil {
			return 0, err
		}
	case isa.OpStoreb:
		if err := c.StoreByte(c.Regs[rb]+uint32(int32(int16(in.Imm))), byte(c.Regs[ra])); err != nil {
			return 0, err
		}
	case isa.OpCmp:
		a, b := c.Regs[ra], c.Regs[rb]
		c.FlagZ = a == b
		c.FlagC = a < b
		c.FlagN = int32(a) < int32(b)
	case isa.OpJmp:
		c.PC = uint32(in.Imm)
		return SvcContinue, nil
	case isa.OpJz:
		if c.FlagZ {
			c.PC = uint32(in.Imm)
			return SvcContinue, nil
		}
	case isa.OpJnz:
		if !c.FlagZ {
			c.PC = uint32(in.Imm)
			return SvcContinue, nil
		}
	case isa.OpJc:
		if c.FlagC {
			c.PC = uint32(in.Imm)
			return SvcContinue, nil
		}
	case isa.OpJnc:
		if !c.FlagC {
			c.PC = uint32(in.Imm)
			return SvcContinue, nil
		}
	case isa.OpJn:
		if c.FlagN {
			c.PC = uint32(in.Imm)
			return SvcContinue, nil
		}
	case isa.OpJmpr:
		c.PC = c.Regs[ra]
		return SvcContinue, nil
	case isa.OpCall:
		if err := c.push(next); err != nil {
			return 0, err
		}
		c.PC = uint32(in.Imm)
		return SvcContinue, nil
	case isa.OpRet:
		v, err := c.pop()
		if err != nil {
			return 0, err
		}
		c.PC = v
		return SvcContinue, nil
	case isa.OpPush:
		if err := c.push(c.Regs[ra]); err != nil {
			return 0, err
		}
	case isa.OpPop:
		v, err := c.pop()
		if err != nil {
			return 0, err
		}
		c.Regs[ra] = v
	case isa.OpSvc:
		c.PC = next // handler sees the post-SVC PC, as after a trap
		if handled, err := c.handleArchService(in.Imm); handled {
			return SvcContinue, err
		}
		if c.svc == nil {
			return 0, fmt.Errorf("%w (SVC %d)", ErrNoService, in.Imm)
		}
		return c.svc(c, in.Imm)
	default:
		return 0, fmt.Errorf("%w: unimplemented opcode %v at pc=%d", ErrFault, in.Op, c.PC)
	}
	c.PC = next
	return SvcContinue, nil
}

// push writes v to the descending stack at r7.
func (c *CPU) push(v uint32) error {
	sp := c.Regs[7]
	if sp < isa.WordSize {
		return fmt.Errorf("%w: stack overflow (sp=%d)", ErrFault, sp)
	}
	sp -= isa.WordSize
	if err := c.WriteWord(sp, v); err != nil {
		return err
	}
	c.Regs[7] = sp
	return nil
}

// pop reads the top-of-stack word at r7.
func (c *CPU) pop() (uint32, error) {
	sp := c.Regs[7]
	v, err := c.ReadWord(sp)
	if err != nil {
		return 0, fmt.Errorf("%w: stack underflow (sp=%d): %v", ErrFault, sp, err)
	}
	c.Regs[7] = sp + isa.WordSize
	return v, nil
}
