package cpu

import (
	"errors"
	"testing"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// rig is a minimal single-CPU platform for interpreter tests.
type rig struct {
	clock *sim.Clock
	chip  *chipset.Chipset
	cpu   *CPU
}

func newRig(t *testing.T, params Params, busTiming lpc.Timing, withTPM bool) *rig {
	t.Helper()
	clock := sim.NewClock()
	m := mem.New(64 * mem.PageSize)
	bus := lpc.NewBus(clock, busTiming)
	var chip *tpm.TPM
	if withTPM {
		var err error
		chip, err = tpm.New(clock, bus, tpm.Config{KeyBits: 1024, NumSePCRs: 4})
		if err != nil {
			t.Fatal(err)
		}
	}
	cs := chipset.New(clock, m, bus, chip)
	return &rig{clock: clock, chip: cs, cpu: New(0, params, cs)}
}

// loadPAL places an image at a page boundary and enters it directly
// (bypassing late launch) for pure interpreter tests.
func (r *rig) loadPAL(t *testing.T, src string) mem.Region {
	t.Helper()
	im := pal.MustBuild(src)
	region := mem.Region{Base: 4 * mem.PageSize, Size: im.Len()}
	if err := r.chip.Memory().WriteRaw(region.Base, im.Bytes); err != nil {
		t.Fatal(err)
	}
	r.cpu.Reset()
	r.cpu.EnterRegion(region, im.Entry)
	return region
}

func run(t *testing.T, r *rig, src string) *CPU {
	t.Helper()
	r.loadPAL(t, src)
	reason, err := r.cpu.Run(0)
	if err != nil {
		t.Fatalf("run fault: %v", err)
	}
	if reason != StopHalt {
		t.Fatalf("stop reason %v, want halt", reason)
	}
	return r.cpu
}

func TestArithmetic(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi r0, 100
		ldi r1, 7
		add r0, r1    ; 107
		ldi r2, 3
		mul r0, r2    ; 321
		ldi r3, 10
		divu r0, r3   ; 32
		ldi r4, 5
		remu r0, r4   ; 2
		halt
	`)
	if c.Regs[0] != 2 {
		t.Fatalf("r0 = %d, want 2", c.Regs[0])
	}
}

func TestBitOpsAndShifts(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi r0, 0xf0f0
		ldi r1, 0x0ff0
		and r0, r1     ; 0x0ff0... wait: 0xf0f0 & 0x0ff0 = 0x00f0
		ldi r2, 0x000f
		or r0, r2      ; 0x00ff
		ldi r3, 0x00f0
		xor r0, r3     ; 0x000f
		ldi r4, 4
		shl r0, r4     ; 0x00f0
		ldi r5, 2
		shr r0, r5     ; 0x003c
		halt
	`)
	if c.Regs[0] != 0x3c {
		t.Fatalf("r0 = %#x, want 0x3c", c.Regs[0])
	}
}

func TestLuiAddi(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi r0, 0x1234
		lui r0, 0xdead   ; 0xdead1234
		ldi r1, 10
		addi r1, -3      ; 7
		halt
	`)
	if c.Regs[0] != 0xdead1234 {
		t.Fatalf("r0 = %#x", c.Regs[0])
	}
	if c.Regs[1] != 7 {
		t.Fatalf("r1 = %d", c.Regs[1])
	}
}

func TestLoopAndBranches(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	// Sum 1..10 = 55.
	c := run(t, r, `
		ldi r0, 0      ; sum
		ldi r1, 1      ; i
		ldi r2, 11     ; limit
	loop:
		add r0, r1
		addi r1, 1
		cmp r1, r2
		jnz loop
		halt
	`)
	if c.Regs[0] != 55 {
		t.Fatalf("sum = %d, want 55", c.Regs[0])
	}
}

func TestMemoryAndDataLabels(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi r1, table
		load r0, [r1+4]    ; second entry = 20
		ldi r2, out
		store r0, [r2]
		load r3, [r2+0]
		loadb r4, [r1+0]   ; low byte of first entry = 10
		halt
	table:
		.word 10, 20, 30
	out:
		.word 0
	`)
	if c.Regs[0] != 20 || c.Regs[3] != 20 || c.Regs[4] != 10 {
		t.Fatalf("r0=%d r3=%d r4=%d", c.Regs[0], c.Regs[3], c.Regs[4])
	}
}

func TestCallRetAndStack(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi r0, 5
		call double
		call double
		halt
	double:
		push r1
		mov r1, r0
		add r0, r1
		pop r1
		ret
	stack:
		.space 64   ; PAL images carry their own stack space at the top
	`)
	if c.Regs[0] != 20 {
		t.Fatalf("r0 = %d, want 20", c.Regs[0])
	}
}

func TestSignedComparison(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	c := run(t, r, `
		ldi r0, 0
		addi r0, -5     ; r0 = -5
		ldi r1, 3
		cmp r0, r1
		jn negative     ; signed: -5 < 3
		ldi r2, 0
		halt
	negative:
		ldi r2, 1
		halt
	`)
	if c.Regs[2] != 1 {
		t.Fatal("signed comparison failed")
	}
	// Unsigned view: 0xfffffffb > 3, so C must be clear.
	if c.FlagC {
		t.Fatal("unsigned below flag set for large unsigned value")
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi r0, 1
		ldi r1, 0
		divu r0, r1
		halt
	`)
	reason, err := r.cpu.Run(0)
	if reason != StopFault || !errors.Is(err, ErrFault) {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestOutOfRegionAccessFaults(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi r0, 0xffff
		lui r0, 0x7fff
		load r1, [r0]
		halt
	`)
	reason, err := r.cpu.Run(0)
	if reason != StopFault || !errors.Is(err, ErrFault) {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestPCEscapeFaults(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	// Jump via register to far beyond the region.
	r.loadPAL(t, `
		ldi r0, 0xfff0
		jmpr r0
	`)
	reason, err := r.cpu.Run(0)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestStackOverflowFaults(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi r7, 4
		push r0
		push r0     ; sp would go below 0
		halt
	`)
	reason, err := r.cpu.Run(0)
	if reason != StopFault || !errors.Is(err, ErrFault) {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestSvcWithoutHandlerFaults(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `svc 3`)
	reason, err := r.cpu.Run(0)
	if reason != StopFault || !errors.Is(err, ErrNoService) {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestSvcHandlerActions(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		svc 1      ; yield
		svc 0      ; exit
		halt
	`)
	var calls []uint16
	r.cpu.SetService(func(c *CPU, num uint16) (SvcAction, error) {
		calls = append(calls, num)
		switch num {
		case SvcNumExit:
			return SvcExit, nil
		case SvcNumYield:
			return SvcYield, nil
		}
		return SvcContinue, nil
	})
	reason, err := r.cpu.Run(0)
	if err != nil || reason != StopYield {
		t.Fatalf("first run: %v %v", reason, err)
	}
	reason, err = r.cpu.Run(0)
	if err != nil || reason != StopHalt {
		t.Fatalf("second run: %v %v", reason, err)
	}
	if len(calls) != 2 || calls[0] != 1 || calls[1] != 0 {
		t.Fatalf("svc calls %v", calls)
	}
}

func TestPreemptionQuantum(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
	spin:
		jmp spin
	`)
	reason, err := r.cpu.Run(100 * time.Nanosecond)
	if err != nil || reason != StopPreempted {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
	// Resume where it left off; preempt again.
	reason, _ = r.cpu.Run(50 * time.Nanosecond)
	if reason != StopPreempted {
		t.Fatalf("resumed reason=%v", reason)
	}
	if r.cpu.Retired < 100 {
		t.Fatalf("retired %d instructions", r.cpu.Retired)
	}
}

func TestInstructionTimeCharged(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		nop
		nop
		nop
		halt
	`)
	start := r.clock.Now()
	r.cpu.Run(0)
	if got := r.clock.Now() - start; got != 4*time.Nanosecond {
		t.Fatalf("charged %v for 4 instructions", got)
	}
}

func TestSaveLoadState(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi r0, 42
		svc 1
		addi r0, 1
		halt
	`)
	r.cpu.SetService(func(c *CPU, num uint16) (SvcAction, error) { return SvcYield, nil })
	r.cpu.Run(0)
	saved := r.cpu.SaveState()
	region := r.cpu.Region()

	// Simulate a context switch away and back.
	r.cpu.ClearMicroarchState()
	if r.cpu.Regs[0] != 0 {
		t.Fatal("microarch clear left register contents")
	}
	r.cpu.Reset()
	r.cpu.region = region
	r.cpu.LoadState(saved)
	r.cpu.SetService(func(c *CPU, num uint16) (SvcAction, error) { return SvcContinue, nil })
	reason, err := r.cpu.Run(0)
	if err != nil || reason != StopHalt {
		t.Fatalf("resume: %v %v", reason, err)
	}
	if r.cpu.Regs[0] != 43 {
		t.Fatalf("r0 = %d after resume, want 43", r.cpu.Regs[0])
	}
}

func TestVMEnterExitChargesTable2(t *testing.T) {
	r := newRig(t, ParamsAMDTyan(), lpc.FullSpeed(), false)
	start := r.clock.Now()
	r.cpu.VMEnter()
	if d := r.clock.Now() - start; d != 558*time.Nanosecond {
		t.Fatalf("AMD VM enter %v, want 558ns", d)
	}
	start = r.clock.Now()
	r.cpu.VMExit()
	if d := r.clock.Now() - start; d != 519*time.Nanosecond {
		t.Fatalf("AMD VM exit %v, want 519ns", d)
	}
	ri := newRig(t, ParamsIntelTEP(), lpc.FullSpeed(), false)
	start = ri.clock.Now()
	ri.cpu.VMEnter()
	ri.cpu.VMExit()
	if d := ri.clock.Now() - start; d != 895*time.Nanosecond {
		t.Fatalf("Intel round trip %v, want 895ns", d)
	}
}

func TestEnterRegionInitializesStack(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	region := r.loadPAL(t, "halt")
	if r.cpu.Regs[7] != uint32(region.Size) {
		t.Fatalf("sp = %d, want region size %d", r.cpu.Regs[7], region.Size)
	}
}

func TestVendorAndStopReasonStrings(t *testing.T) {
	if AMD.String() != "AMD" || Intel.String() != "Intel" {
		t.Fatal("vendor names")
	}
	for _, s := range []StopReason{StopHalt, StopYield, StopPreempted, StopFault} {
		if s.String() == "" {
			t.Fatal("empty stop reason name")
		}
	}
	if StopReason(42).String() == "" {
		t.Fatal("unknown stop reason renders empty")
	}
}

func TestInterpreterIsolationFromOtherCPU(t *testing.T) {
	// A PAL running on CPU 0 with protected pages: another core's request
	// for the same memory is refused at the chipset.
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	region := r.loadPAL(t, `
		ldi r0, 123
		halt
	`)
	if err := r.chip.ProtectRegion(region, 0); err != nil {
		t.Fatal(err)
	}
	if reason, err := r.cpu.Run(0); err != nil || reason != StopHalt {
		t.Fatalf("protected PAL run: %v %v", reason, err)
	}
	other := New(1, ParamsAMDdc5750(), r.chip)
	other.Reset()
	other.EnterRegion(region, pal.HeaderSize)
	if _, err := other.Run(0); err == nil {
		t.Fatal("other core executed inside a protected region")
	}
}
