package cpu

import "time"

// Per-machine CPU parameter sets for the paper's test platforms. The VM
// entry/exit values are Table 2's measurements; the Intel hash rate and
// signature-verification cost are calibrated so SENTER reproduces Table
// 1's bottom row (26.39 ms base + 0.124375 ms/KB).

// ParamsAMDdc5750 models the 2.2 GHz Athlon64 X2 4200+ in the HP dc5750,
// the paper's primary test machine.
func ParamsAMDdc5750() Params {
	return Params{
		Vendor:        AMD,
		ClockGHz:      2.2,
		InstrCost:     time.Nanosecond,
		InitCost:      2 * time.Microsecond,
		VMEnter:       558 * time.Nanosecond, // Table 2 (AMD SVM)
		VMExit:        519 * time.Nanosecond,
		HashPerKB:     124375 * time.Nanosecond,
		SigVerifyCost: 0,
	}
}

// ParamsAMDTyan models the 1.8 GHz dual-dual-core Opteron Tyan n3600R
// server board (no TPM), used to isolate SKINIT from TPM overhead.
func ParamsAMDTyan() Params {
	p := ParamsAMDdc5750()
	p.ClockGHz = 1.8
	return p
}

// ParamsIntelTEP models the 2.66 GHz Core 2 Duo in the MPC ClientPro
// Advantage 385 TXT Technology Enabling Platform.
func ParamsIntelTEP() Params {
	return Params{
		Vendor:        Intel,
		ClockGHz:      2.66,
		InstrCost:     time.Nanosecond,
		InitCost:      2 * time.Microsecond,
		VMEnter:       446 * time.Nanosecond, // Table 2 (Intel TXT): 0.4457 µs
		VMExit:        449 * time.Nanosecond, // 0.4491 µs
		HashPerKB:     124375 * time.Nanosecond,
		SigVerifyCost: 770 * time.Microsecond,
	}
}
