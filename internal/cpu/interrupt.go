package cpu

import (
	"errors"
	"fmt"
)

// This file implements the §6 "PAL Interrupt Handling" extension. The
// paper's default is that a PAL runs with interrupts disabled; a PAL that
// genuinely needs them (keyboard input for a trusted-path prompt is the
// paper's example) may configure an Interrupt Descriptor Table and enable
// delivery. The IDT lives in CPU state, set up via two architecture-level
// services the interpreter handles itself (so both runtimes inherit them):
//
//	svc 9  (SvcNumSetIDT):  IDT[r0] = r1 (handler offset; 0 clears)
//	svc 10 (SvcNumIntrCtl): interrupts enabled iff r0 != 0
//
// Delivery pushes the interrupted PC on the PAL stack and jumps to the
// handler; the handler returns with a plain ret.

// NumIntrVectors is the size of the PAL-visible IDT.
const NumIntrVectors = 8

// Architecture-level service numbers (continuing the ABI in cpu.go).
const (
	SvcNumSetIDT  = 9  // IDT[r0] = r1
	SvcNumIntrCtl = 10 // enable (r0!=0) / disable (r0==0) interrupts
)

// Interrupt-delivery errors.
var (
	ErrIntrMasked    = errors.New("cpu: interrupts disabled; interrupt dropped")
	ErrIntrUnhandled = errors.New("cpu: no handler registered for vector")
	ErrBadVector     = errors.New("cpu: interrupt vector out of range")
)

// handleArchService processes the architecture-level SVCs. It reports
// whether it consumed the call.
func (c *CPU) handleArchService(num uint16) (bool, error) {
	switch num {
	case SvcNumSetIDT:
		v := c.Regs[0]
		if v >= NumIntrVectors {
			return true, fmt.Errorf("%w: %d", ErrBadVector, v)
		}
		handler := c.Regs[1]
		if handler != 0 && int(handler) >= c.region.Size {
			return true, fmt.Errorf("%w: handler %d outside PAL region", ErrFault, handler)
		}
		c.idt[v] = uint16(handler)
		return true, nil
	case SvcNumIntrCtl:
		c.IntrEnabled = c.Regs[0] != 0
		return true, nil
	}
	return false, nil
}

// DeliverInterrupt injects interrupt vector v into the PAL currently
// entered on this core, between instructions (callers invoke it while the
// core is stopped — e.g. after a preempted Run slice). Delivery fails,
// leaving state untouched, when interrupts are masked or the vector has no
// handler; per §6 extraneous vectors are simply not routed to the PAL.
func (c *CPU) DeliverInterrupt(v int) error {
	if v < 0 || v >= NumIntrVectors {
		return fmt.Errorf("%w: %d", ErrBadVector, v)
	}
	if !c.IntrEnabled {
		return ErrIntrMasked
	}
	if c.idt[v] == 0 {
		return fmt.Errorf("%w: vector %d", ErrIntrUnhandled, v)
	}
	if err := c.push(c.PC); err != nil {
		return err
	}
	c.PC = uint32(c.idt[v])
	c.Retired++ // the delivery micro-op
	c.Clock().Advance(c.Params.InstrCost)
	return nil
}

// IDTEntry returns the registered handler offset for a vector (0 = none).
func (c *CPU) IDTEntry(v int) (uint16, error) {
	if v < 0 || v >= NumIntrVectors {
		return 0, fmt.Errorf("%w: %d", ErrBadVector, v)
	}
	return c.idt[v], nil
}

// clearIDT wipes the table; called on Reset so one PAL's handlers never
// survive into another's execution.
func (c *CPU) clearIDT() { c.idt = [NumIntrVectors]uint16{} }
