package cpu

import (
	"testing"
	"testing/quick"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
)

// Differential test: a tiny reference evaluator for the ALU subset of the
// ISA, mirrored against the real interpreter over random instruction
// sequences. Divergence here means the CPU silently computes wrong values,
// which would invalidate every experiment built on PAL execution.

type goldenState struct {
	regs    [isa.NumRegs]uint32
	z, c, n bool
}

// stepGolden executes one ALU/compare instruction on the reference state.
// It returns false for instructions outside the modeled subset.
func stepGolden(st *goldenState, in isa.Instruction) bool {
	a, b := in.RA, in.RB
	switch in.Op {
	case isa.OpNop:
	case isa.OpMov:
		st.regs[a] = st.regs[b]
	case isa.OpLdi:
		st.regs[a] = uint32(in.Imm)
	case isa.OpLui:
		st.regs[a] = (st.regs[a] & 0xffff) | uint32(in.Imm)<<16
	case isa.OpAddi:
		st.regs[a] += uint32(int32(int16(in.Imm)))
	case isa.OpAdd:
		st.regs[a] += st.regs[b]
	case isa.OpSub:
		st.regs[a] -= st.regs[b]
	case isa.OpMul:
		st.regs[a] *= st.regs[b]
	case isa.OpAnd:
		st.regs[a] &= st.regs[b]
	case isa.OpOr:
		st.regs[a] |= st.regs[b]
	case isa.OpXor:
		st.regs[a] ^= st.regs[b]
	case isa.OpShl:
		st.regs[a] <<= st.regs[b] & 31
	case isa.OpShr:
		st.regs[a] >>= st.regs[b] & 31
	case isa.OpCmp:
		st.z = st.regs[a] == st.regs[b]
		st.c = st.regs[a] < st.regs[b]
		st.n = int32(st.regs[a]) < int32(st.regs[b])
	default:
		return false
	}
	return true
}

// aluOps is the modeled subset, used to coerce random opcodes.
var aluOps = []isa.Opcode{
	isa.OpNop, isa.OpMov, isa.OpLdi, isa.OpLui, isa.OpAddi, isa.OpAdd,
	isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
	isa.OpShr, isa.OpCmp,
}

func TestInterpreterMatchesGoldenModel(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := sim.NewRNG(seed)
		count := int(n)%200 + 1

		// Generate a straight-line ALU program.
		prog := make([]isa.Instruction, 0, count+1)
		for i := 0; i < count; i++ {
			prog = append(prog, isa.Instruction{
				Op:  aluOps[rng.Intn(len(aluOps))],
				RA:  uint8(rng.Intn(7)), // avoid r7=sp for clarity
				RB:  uint8(rng.Intn(7)),
				Imm: uint16(rng.Uint64()),
			})
		}
		prog = append(prog, isa.Instruction{Op: isa.OpHalt})

		// Reference execution.
		var golden goldenState
		for _, in := range prog {
			if in.Op == isa.OpHalt {
				break
			}
			if !stepGolden(&golden, in) {
				t.Fatalf("generator produced unmodeled op %v", in.Op)
			}
		}

		// Real execution.
		image, err := pal.FromCode(isa.EncodeProgram(prog), pal.HeaderSize)
		if err != nil {
			return false
		}
		clock := sim.NewClock()
		cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
		c := New(0, ParamsAMDdc5750(), cs)
		if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
			return false
		}
		c.Reset()
		c.EnterRegion(mem.Region{Base: 0x4000, Size: image.Len()}, image.Entry)
		reason, err := c.Run(0)
		if err != nil || reason != StopHalt {
			t.Logf("run: %v %v", reason, err)
			return false
		}
		for i := 0; i < 7; i++ {
			if c.Regs[i] != golden.regs[i] {
				t.Logf("r%d: cpu %#x golden %#x", i, c.Regs[i], golden.regs[i])
				return false
			}
		}
		return c.FlagZ == golden.z && c.FlagC == golden.c && c.FlagN == golden.n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
