package cpu

import (
	"bytes"
	"testing"
	"testing/quick"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
)

// Differential tests for the decoded-instruction cache: the cached fast
// path must be architecturally invisible. Every program must leave the
// machine — registers, flags, and memory — in exactly the state the
// always-checked slow path leaves it in, including programs that overwrite
// their own code (the page-version check must invalidate stale decodes).

// runImage executes image on a fresh single-CPU machine with the decode
// cache on or off, returning the halted CPU and its chipset.
func runImage(t *testing.T, image pal.Image, cacheOn bool) (*CPU, *chipset.Chipset) {
	t.Helper()
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	c.SetDecodeCache(cacheOn)
	c.EnterRegion(mem.Region{Base: 0x4000, Size: image.Len()}, image.Entry)
	reason, err := c.Run(0)
	if err != nil || reason != StopHalt {
		t.Fatalf("run (cache=%v): %v %v", cacheOn, reason, err)
	}
	return c, cs
}

// sameArchState compares the full architectural state of two halted runs.
func sameArchState(t *testing.T, on, off *CPU, csOn, csOff *chipset.Chipset) {
	t.Helper()
	if on.Regs != off.Regs {
		t.Fatalf("registers diverge:\n  cached %v\n  slow   %v", on.Regs, off.Regs)
	}
	if on.FlagZ != off.FlagZ || on.FlagC != off.FlagC || on.FlagN != off.FlagN {
		t.Fatalf("flags diverge: cached Z=%v C=%v N=%v, slow Z=%v C=%v N=%v",
			on.FlagZ, on.FlagC, on.FlagN, off.FlagZ, off.FlagC, off.FlagN)
	}
	mOn, err := csOn.Memory().ReadRaw(0, 16*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	mOff, err := csOff.Memory().ReadRaw(0, 16*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mOn, mOff) {
		t.Fatal("memory contents diverge between cached and slow runs")
	}
}

// TestDecodeCacheDifferentialLoopedPrograms runs random ALU programs inside
// a three-pass loop — passes two and three replay from the cache — and
// requires bit-identical final state with the cache disabled.
func TestDecodeCacheDifferentialLoopedPrograms(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := sim.NewRNG(seed)
		count := int(n)%60 + 1

		// Body clobbers only r0–r4; r5 holds zero and r6 the loop counter.
		prog := []isa.Instruction{
			{Op: isa.OpLdi, RA: 5, Imm: 0},
			{Op: isa.OpLdi, RA: 6, Imm: 3},
		}
		for i := 0; i < count; i++ {
			prog = append(prog, isa.Instruction{
				Op:  aluOps[rng.Intn(len(aluOps))],
				RA:  uint8(rng.Intn(5)),
				RB:  uint8(rng.Intn(5)),
				Imm: uint16(rng.Uint64()),
			})
		}
		loopTop := uint16(pal.HeaderSize + 2*isa.WordSize)
		prog = append(prog,
			isa.Instruction{Op: isa.OpAddi, RA: 6, Imm: 0xffff}, // r6 -= 1
			isa.Instruction{Op: isa.OpCmp, RA: 6, RB: 5},
			isa.Instruction{Op: isa.OpJnz, Imm: loopTop},
			isa.Instruction{Op: isa.OpHalt},
		)
		image, err := pal.FromCode(isa.EncodeProgram(prog), pal.HeaderSize)
		if err != nil {
			return false
		}
		on, csOn := runImage(t, image, true)
		off, csOff := runImage(t, image, false)
		sameArchState(t, on, off, csOn, csOff)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeCacheSelfModifyingCode executes an instruction, overwrites it
// in place, and executes the same address again. The write bumps the page
// version, so the cached decode must be discarded; the patched instruction
// — not the stale one — must run, and the final state must match the
// cache-off run exactly.
func TestDecodeCacheSelfModifyingCode(t *testing.T) {
	const (
		e          = pal.HeaderSize
		targetAddr = e + 1*isa.WordSize // address of the patched instruction
		doneAddr   = e + 10*isa.WordSize
	)
	patched := isa.Instruction{Op: isa.OpLdi, RA: 0, Imm: 42}.Encode()
	prog := []isa.Instruction{
		{Op: isa.OpLdi, RA: 5, Imm: 1},
		{Op: isa.OpLdi, RA: 0, Imm: 7}, // TARGET: replaced by `ldi r0, 42`
		{Op: isa.OpCmp, RA: 6, RB: 5},
		{Op: isa.OpJz, Imm: doneAddr}, // second pass: exit with patched r0
		{Op: isa.OpMov, RA: 6, RB: 5}, // mark pass two
		{Op: isa.OpLdi, RA: 1, Imm: targetAddr},
		{Op: isa.OpLdi, RA: 2, Imm: uint16(patched)},
		{Op: isa.OpLui, RA: 2, Imm: uint16(patched >> 16)},
		{Op: isa.OpStore, RA: 2, RB: 1}, // overwrite TARGET in place
		{Op: isa.OpJmp, Imm: targetAddr},
		{Op: isa.OpHalt},
	}
	image, err := pal.FromCode(isa.EncodeProgram(prog), pal.HeaderSize)
	if err != nil {
		t.Fatal(err)
	}
	on, csOn := runImage(t, image, true)
	off, csOff := runImage(t, image, false)
	if off.Regs[0] != 42 {
		t.Fatalf("slow path r0 = %d, want 42 (test program broken)", off.Regs[0])
	}
	if on.Regs[0] != 42 {
		t.Fatalf("cached path executed a stale decode: r0 = %d, want 42", on.Regs[0])
	}
	sameArchState(t, on, off, csOn, csOff)
}

// TestFetchSteadyStateAllocs pins the zero-allocation claim for the
// instruction-fetch fast path: once an entry is cached, re-fetching the
// same address must not allocate.
func TestFetchSteadyStateAllocs(t *testing.T) {
	image := pal.MustBuild("ldi r0, 0\nsvc 0")
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	c.EnterRegion(mem.Region{Base: 0x4000, Size: image.Len()}, image.Entry)

	phys := uint32(0x4000 + int(image.Entry))
	if _, err := c.fetchCached(phys); err != nil { // warm: fills the entry
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		_, err = c.fetchCached(phys)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("cached fetch allocates %v allocs/op, want 0", allocs)
	}
}
