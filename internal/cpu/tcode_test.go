package cpu

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
)

// Tests for the threaded-code tier (tcode.go). The contract under test is
// bit-identity: with the tier on, every architecturally observable output —
// registers, flags, memory, PC at faults, error values, retirement count,
// and the virtual clock — must match a pure-interpreter run instruction for
// instruction.

// tcodePasses is enough Run passes to push every leader past blockHeatMin
// and then re-execute the compiled blocks several times.
const tcodePasses = 3 * blockHeatMin

// newTCodeMachine builds a fresh machine with image placed at 0x4000.
func newTCodeMachine(t *testing.T, image pal.Image, compile bool) (*CPU, *chipset.Chipset, mem.Region) {
	t.Helper()
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	c.SetBlockCompile(compile)
	return c, cs, mem.Region{Base: 0x4000, Size: image.Len()}
}

// runPasses executes image `passes` times on one machine; heat counters and
// compiled blocks accumulate across passes exactly as they do across jobs
// on a palsvc machine. Each pass must halt cleanly.
func runPasses(t *testing.T, image pal.Image, compile bool, passes int) (*CPU, *chipset.Chipset) {
	t.Helper()
	c, cs, region := newTCodeMachine(t, image, compile)
	for i := 0; i < passes; i++ {
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != StopHalt {
			t.Fatalf("pass %d (compile=%v): %v %v", i, compile, reason, err)
		}
	}
	return c, cs
}

// sameRun compares every observable of two finished runs.
func sameRun(t *testing.T, on, off *CPU, csOn, csOff *chipset.Chipset) {
	t.Helper()
	sameArchState(t, on, off, csOn, csOff)
	if on.Retired != off.Retired {
		t.Fatalf("retired diverge: compiled %d, interpreted %d", on.Retired, off.Retired)
	}
	if on.Clock().Now() != off.Clock().Now() {
		t.Fatalf("virtual clocks diverge: compiled %v, interpreted %v",
			on.Clock().Now(), off.Clock().Now())
	}
	if on.PC != off.PC {
		t.Fatalf("PC diverges: compiled %d, interpreted %d", on.PC, off.PC)
	}
}

// TestBlockCompileDifferentialHotLoop: the canonical case — a hot loop that
// compiles (cmp+jnz fuses) and then re-executes from the block cache many
// times must end bit-identical to pure interpretation.
func TestBlockCompileDifferentialHotLoop(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 25
	loop:	addi	r0, 1
		add	r2, r0
		cmp	r0, r1
		jnz	loop
		halt
	`)
	on, csOn := runPasses(t, image, true, tcodePasses)
	off, csOff := runPasses(t, image, false, tcodePasses)
	sameRun(t, on, off, csOn, csOff)

	st := on.TCodeStatsSnapshot()
	if st.Compiled == 0 || st.Execs == 0 || st.Instrs == 0 {
		t.Fatalf("tier never engaged: %+v", st)
	}
	if off.TCodeStatsSnapshot().Execs != 0 {
		t.Fatal("compile-off machine executed compiled blocks")
	}
}

// TestBlockCompileDifferentialFusionShapes covers every fusion rule — the
// load+ALU pair, pop/pop, pop/push, and cmp+branch — plus the lookahead
// that reserves a cmp for the branch behind it.
func TestBlockCompileDifferentialFusionShapes(t *testing.T) {
	src := `
		ldi	r0, 0
		ldi	r1, 12
	loop:	ldi	r2, v
		load	r3, [r2]
		addi	r3, 3
		store	r3, [r2]
		push	r3
		push	r0
		pop	r4
		pop	r5
		push	r4
		pop	r6
		load	r3, [r2]
		cmp	r3, r1
		addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	v:	.word 5
		.space	64	; stack: sp starts at the region top
	`
	image := pal.MustBuild(src)
	on, csOn := runPasses(t, image, true, tcodePasses)
	off, csOff := runPasses(t, image, false, tcodePasses)
	sameRun(t, on, off, csOn, csOff)
}

// TestBlockCompileFaultMidBlock: a fault raised from inside a compiled
// block must report the same error, leave PC on the faulting instruction,
// and charge exactly the retired instructions (the faulting one included),
// matching the interpreter's charge-before-execute contract.
func TestBlockCompileFaultMidBlock(t *testing.T) {
	// The counter at v survives across passes; pass 12 makes the divisor
	// zero, well after the fb block compiled on pass blockHeatMin.
	image := pal.MustBuild(`
		ldi	r2, v
		load	r0, [r2]
		addi	r0, 1
		store	r0, [r2]
		jmp	fb
	fb:	ldi	r1, 12
		sub	r1, r0
		ldi	r3, 100
		divu	r3, r1
		halt
	v:	.word 0
	`)
	run := func(compile bool) (*CPU, *chipset.Chipset, error) {
		c, cs, region := newTCodeMachine(t, image, compile)
		for i := 0; i < 11; i++ {
			c.EnterRegion(region, image.Entry)
			if reason, err := c.Run(0); err != nil || reason != StopHalt {
				t.Fatalf("pass %d: %v %v", i, reason, err)
			}
		}
		c.EnterRegion(region, image.Entry)
		reason, err := c.Run(0)
		if reason != StopFault || err == nil {
			t.Fatalf("pass 12: want fault, got %v %v", reason, err)
		}
		return c, cs, err
	}
	on, csOn, errOn := run(true)
	off, csOff, errOff := run(false)
	if errOn.Error() != errOff.Error() {
		t.Fatalf("fault errors diverge:\n  compiled    %v\n  interpreted %v", errOn, errOff)
	}
	if !errors.Is(errOn, ErrFault) {
		t.Fatalf("compiled fault does not wrap ErrFault: %v", errOn)
	}
	sameRun(t, on, off, csOn, csOff)
	if st := on.TCodeStatsSnapshot(); st.Execs == 0 {
		t.Fatalf("fault path never ran compiled: %+v", st)
	}
}

// TestBlockCompileSelfModifyInvalidation: patching an instruction inside an
// already-compiled block must be observed — the stale closure chain may
// never run the old semantics. The patch happens from *outside* the block,
// so it is caught by lookup-time revalidation (version moved, bytes
// changed), counted as an invalidation, and recompiled.
func TestBlockCompileSelfModifyInvalidation(t *testing.T) {
	patched := isa.Instruction{Op: isa.OpLdi, RA: 4, Imm: 99}.Encode()
	src := fmt.Sprintf(`
		ldi	r5, 0
	start:	ldi	r0, 0
		ldi	r1, 10
	lp1:	addi	r0, 1
	mark:	ldi	r4, 1
		cmp	r0, r1
		jnz	lp1
		ldi	r6, 1
		cmp	r5, r6
		jz	done
		mov	r5, r6
		ldi	r3, %d
		lui	r3, %d
		ldi	r2, mark
		store	r3, [r2]
		jmp	start
	done:	halt
	`, patched&0xffff, patched>>16)
	image := pal.MustBuild(src)
	on, csOn := runPasses(t, image, true, 1)
	off, csOff := runPasses(t, image, false, 1)
	sameRun(t, on, off, csOn, csOff)
	if on.Regs[4] != 99 {
		t.Fatalf("patched instruction did not execute: r4=%d, want 99", on.Regs[4])
	}
	st := on.TCodeStatsSnapshot()
	if st.Invalidations == 0 {
		t.Fatalf("patch went unnoticed by the block cache: %+v", st)
	}
	if st.Compiled < 2 {
		t.Fatalf("block was not recompiled after the patch: %+v", st)
	}
}

// TestBlockCompileMidBlockStoreBailout: a store inside a hot block that
// dirties the block's own pages must stop the block right after the store
// (its effects are architecturally complete) and resume interpretation at
// the next instruction. Repeated offenders get poisoned so the tier stops
// paying compile + bailout for them.
func TestBlockCompileMidBlockStoreBailout(t *testing.T) {
	// The store rewrites mark with its existing bytes: semantics never
	// change, but every write bumps the page version, so each compiled
	// execution bails mid-block.
	word := isa.Instruction{Op: isa.OpLdi, RA: 4, Imm: 7}.Encode()
	src := fmt.Sprintf(`
		ldi	r0, 0
		ldi	r1, 40
		ldi	r3, %d
		lui	r3, %d
		ldi	r2, mark
	loop:	addi	r0, 1
		store	r3, [r2]
	mark:	ldi	r4, 7
		cmp	r0, r1
		jnz	loop
		halt
	`, word&0xffff, word>>16)
	image := pal.MustBuild(src)
	on, csOn := runPasses(t, image, true, 2)
	off, csOff := runPasses(t, image, false, 2)
	sameRun(t, on, off, csOn, csOff)
	st := on.TCodeStatsSnapshot()
	if st.Bailouts == 0 {
		t.Fatalf("self-dirtying block never bailed: %+v", st)
	}
	// 40 iterations × 2 passes is far past maxBlockBails: the loop leader
	// must have been poisoned instead of bailing ~70 times.
	if st.Bailouts > maxBlockBails+2 {
		t.Fatalf("poisoning did not engage: %d bailouts, %+v", st.Bailouts, st)
	}
}

// TestBlockCompileQuantumDifferential: preemption must land on exactly the
// same instruction with the tier on — a block only runs when all of it fits
// the remaining quantum, otherwise the interpreter runs the tail.
func TestBlockCompileQuantumDifferential(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 30
	loop:	addi	r0, 1
		add	r2, r0
		xor	r3, r2
		cmp	r0, r1
		jnz	loop
		halt
	`)
	instr := ParamsAMDdc5750().InstrCost
	for _, qn := range []int{1, 2, 3, 5, 7, 64} {
		quantum := time.Duration(qn) * instr
		drive := func(compile bool) (*CPU, *chipset.Chipset, []uint32) {
			c, cs, region := newTCodeMachine(t, image, compile)
			var stops []uint32
			for pass := 0; pass < tcodePasses; pass++ {
				c.EnterRegion(region, image.Entry)
				for {
					reason, err := c.Run(quantum)
					if err != nil {
						t.Fatalf("q=%d pass %d: %v", qn, pass, err)
					}
					if reason == StopHalt {
						break
					}
					if reason != StopPreempted {
						t.Fatalf("q=%d pass %d: unexpected %v", qn, pass, reason)
					}
					stops = append(stops, c.PC)
				}
			}
			return c, cs, stops
		}
		on, csOn, stopsOn := drive(true)
		off, csOff, stopsOff := drive(false)
		sameRun(t, on, off, csOn, csOff)
		if len(stopsOn) != len(stopsOff) {
			t.Fatalf("q=%d: preemption counts diverge: %d vs %d", qn, len(stopsOn), len(stopsOff))
		}
		for i := range stopsOn {
			if stopsOn[i] != stopsOff[i] {
				t.Fatalf("q=%d: preemption %d lands at pc=%d compiled, pc=%d interpreted",
					qn, i, stopsOn[i], stopsOff[i])
			}
		}
	}
}

// TestBlockCompileProfilerParity: with a plain Profiler installed, the
// compiled tier must report the identical (pc, op, cost) retirement stream
// as the interpreter — per instruction, in program order, fused pairs
// included.
func TestBlockCompileProfilerParity(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 9
	loop:	ldi	r2, v
		load	r3, [r2]
		add	r3, r0
		addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	v:	.word 21
	`)
	record := func(compile bool) *fakeProfiler {
		c, _, region := newTCodeMachine(t, image, compile)
		f := &fakeProfiler{}
		c.SetProfiler(f)
		for i := 0; i < tcodePasses; i++ {
			c.EnterRegion(region, image.Entry)
			if reason, err := c.Run(0); err != nil || reason != StopHalt {
				t.Fatalf("pass %d: %v %v", i, reason, err)
			}
		}
		if int64(len(f.pcs)) != c.Retired {
			t.Fatalf("profiler saw %d retirements, CPU retired %d", len(f.pcs), c.Retired)
		}
		return f
	}
	on, off := record(true), record(false)
	if len(on.pcs) != len(off.pcs) {
		t.Fatalf("retirement streams diverge in length: %d vs %d", len(on.pcs), len(off.pcs))
	}
	for i := range on.pcs {
		if on.pcs[i] != off.pcs[i] || on.ops[i] != off.ops[i] {
			t.Fatalf("retirement %d diverges: compiled (pc=%d %v), interpreted (pc=%d %v)",
				i, on.pcs[i], on.ops[i], off.pcs[i], off.ops[i])
		}
	}
	if on.total != off.total {
		t.Fatalf("charged cost diverges: %v vs %v", on.total, off.total)
	}
}

// tierProfiler implements BlockProfiler: it sees which tier retired each
// instruction.
type tierProfiler struct {
	fakeProfiler
	compiled int
}

func (p *tierProfiler) RetireCompiled(pc uint32, op isa.Opcode, cost time.Duration) {
	p.compiled++
	p.RetireInstr(pc, op, cost)
}

// TestBlockProfilerSeesCompiledTier: a profiler implementing the optional
// BlockProfiler interface is routed compiled retirements through
// RetireCompiled, and the union of both callbacks covers every retirement.
func TestBlockProfilerSeesCompiledTier(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 10
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	c, _, region := newTCodeMachine(t, image, true)
	p := &tierProfiler{}
	c.SetProfiler(p)
	for i := 0; i < tcodePasses; i++ {
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != StopHalt {
			t.Fatalf("pass %d: %v %v", i, reason, err)
		}
	}
	if int64(len(p.pcs)) != c.Retired {
		t.Fatalf("profiler saw %d retirements, CPU retired %d", len(p.pcs), c.Retired)
	}
	if p.compiled == 0 {
		t.Fatal("BlockProfiler never saw a compiled retirement")
	}
	if int64(p.compiled) != c.TCodeStatsSnapshot().Instrs {
		t.Fatalf("profiler counted %d compiled retirements, tier counted %d",
			p.compiled, c.TCodeStatsSnapshot().Instrs)
	}
}

// TestSetBlockCompile: the switch mirrors SetDecodeCache — disabling drops
// all tier state and re-enabling starts cold.
func TestSetBlockCompile(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 10
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	c, _, region := newTCodeMachine(t, image, true)
	if !c.BlockCompileEnabled() {
		t.Fatal("tier not enabled by default")
	}
	for i := 0; i < tcodePasses; i++ {
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != StopHalt {
			t.Fatalf("pass %d: %v %v", i, reason, err)
		}
	}
	if c.bcache == nil {
		t.Fatal("hot run left no block cache")
	}
	c.SetBlockCompile(false)
	if c.BlockCompileEnabled() || c.bcache != nil || c.bheat != nil {
		t.Fatal("SetBlockCompile(false) did not drop tier state")
	}
	before := c.TCodeStatsSnapshot().Execs
	c.EnterRegion(region, image.Entry)
	if reason, err := c.Run(0); err != nil || reason != StopHalt {
		t.Fatalf("compile-off run: %v %v", reason, err)
	}
	if c.TCodeStatsSnapshot().Execs != before {
		t.Fatal("disabled tier still executed compiled blocks")
	}
}

// TestBlockCompileTracerDisablesTier: palasm -trace must observe the
// interpreter — a CPU with a tracer installed never consults the tier.
func TestBlockCompileTracerDisablesTier(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 10
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	c, _, region := newTCodeMachine(t, image, true)
	traced := 0
	c.SetTracer(func(_ *CPU, _ uint32, _ isa.Instruction) { traced++ })
	for i := 0; i < tcodePasses; i++ {
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != StopHalt {
			t.Fatalf("pass %d: %v %v", i, reason, err)
		}
	}
	if traced == 0 {
		t.Fatal("tracer never fired")
	}
	if int64(traced) != c.Retired {
		t.Fatalf("tracer saw %d of %d retirements — compiled blocks bypassed it", traced, c.Retired)
	}
	if st := c.TCodeStatsSnapshot(); st.Execs != 0 {
		t.Fatalf("tier ran under a tracer: %+v", st)
	}
}

// TestRunSteadyStateAllocsCompiled pins the compiled tier's hot path: once
// every leader is compiled, re-running the program end to end must not
// allocate — lookup, revalidation, and the closure chains are all
// allocation-free.
func TestRunSteadyStateAllocsCompiled(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 8
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	c, _, region := newTCodeMachine(t, image, true)
	for i := 0; i < tcodePasses; i++ { // warm: compile every leader
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != StopHalt {
			t.Fatalf("warm pass %d: %v %v", i, reason, err)
		}
	}
	if st := c.TCodeStatsSnapshot(); st.Execs == 0 {
		t.Fatalf("warm-up never reached the compiled tier: %+v", st)
	}
	execsBefore := c.TCodeStatsSnapshot().Execs
	var (
		reason StopReason
		err    error
	)
	allocs := testing.AllocsPerRun(100, func() {
		c.EnterRegion(region, image.Entry)
		reason, err = c.Run(0)
	})
	if err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state compiled Run allocates %v allocs/op, want 0", allocs)
	}
	if c.TCodeStatsSnapshot().Execs == execsBefore {
		t.Fatal("timed runs did not execute compiled blocks")
	}
}

// TestRunSteadyStateAllocsCompileOff pins the tier-off path: with
// SetBlockCompile(false) the only new per-iteration work is one boolean
// test, so the PR 3 zero-allocation gate must still hold.
func TestRunSteadyStateAllocsCompileOff(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 8
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	c, _, region := newTCodeMachine(t, image, false)
	c.EnterRegion(region, image.Entry)
	if reason, err := c.Run(0); err != nil || reason != StopHalt { // warm decode cache
		t.Fatalf("warm run: %v %v", reason, err)
	}
	var (
		reason StopReason
		err    error
	)
	allocs := testing.AllocsPerRun(100, func() {
		c.EnterRegion(region, image.Entry)
		reason, err = c.Run(0)
	})
	if err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	if allocs != 0 {
		t.Fatalf("compile-off Run allocates %v allocs/op, want 0", allocs)
	}
}

// TestBlockCompileRandomPrograms is the in-package cousin of the isa-level
// differential fuzzer: random branchy ALU programs inside a loop must end
// bit-identical under both tiers.
func TestBlockCompileRandomPrograms(t *testing.T) {
	ops := []string{"add", "sub", "mul", "and", "or", "xor", "shl", "shr", "cmp", "mov"}
	for seed := uint64(1); seed <= 24; seed++ {
		rng := sim.NewRNG(seed)
		n := int(rng.Uint64()%40) + 4
		src := "\tldi\tr6, 0\n\tldi\tr5, 13\nloop:\taddi\tr6, 1\n"
		for i := 0; i < n; i++ {
			op := ops[rng.Uint64()%uint64(len(ops))]
			ra := rng.Uint64() % 5 // r0-r4 scratch
			rb := rng.Uint64() % 5
			src += fmt.Sprintf("\t%s\tr%d, r%d\n", op, ra, rb)
		}
		src += "\tcmp\tr6, r5\n\tjnz\tloop\n\thalt\n"
		image := pal.MustBuild(src)
		on, csOn := runPasses(t, image, true, tcodePasses)
		off, csOff := runPasses(t, image, false, tcodePasses)
		sameRun(t, on, off, csOn, csOff)
	}
}

// TestDecodeCacheStats: the new accessor must account for every fetch —
// cold misses, steady hits, version evictions after self-modification, and
// the page-boundary bypass that used to be invisible.
func TestDecodeCacheStats(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 6
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	c, _, region := newTCodeMachine(t, image, false) // interpreter only: every fetch is counted
	c.EnterRegion(region, image.Entry)
	if reason, err := c.Run(0); err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	st := c.DecodeCacheStatsSnapshot()
	if st.Misses == 0 {
		t.Fatalf("cold run recorded no misses: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("looped run recorded no hits: %+v", st)
	}
	if got := st.Hits + st.Misses + st.BoundarySkips; got != c.Retired {
		t.Fatalf("stats cover %d fetches, CPU retired %d: %+v", got, c.Retired, st)
	}

	// A store into the code page makes the next trip through the loop
	// refetch stale entries: same slot, same address, moved version.
	selfmod := pal.MustBuild(`
		ldi	r2, v
		ldi	r3, 0
	loop:	addi	r3, 1
		store	r3, [r2]
		ldi	r4, 3
		cmp	r3, r4
		jnz	loop
		halt
	v:	.word 0
	`)
	c2, _, region2 := newTCodeMachine(t, selfmod, false)
	c2.EnterRegion(region2, selfmod.Entry)
	if reason, err := c2.Run(0); err != nil || reason != StopHalt {
		t.Fatalf("selfmod run: %v %v", reason, err)
	}
	if st2 := c2.DecodeCacheStatsSnapshot(); st2.VersionEvictions == 0 {
		t.Fatalf("store into code page recorded no version evictions: %+v", st2)
	}
}

// TestDecodeCacheStatsBoundarySkip places an instruction across a page
// boundary and checks the bypass is counted rather than silent.
func TestDecodeCacheStatsBoundarySkip(t *testing.T) {
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	c.Reset()
	c.SetBlockCompile(false)
	// Region starts 2 bytes before a page boundary: the first word
	// straddles pages and must bypass the cache.
	base := uint32(mem.PageSize - 2)
	prog := isa.EncodeProgram([]isa.Instruction{{Op: isa.OpNop}, {Op: isa.OpHalt}})
	if err := cs.Memory().WriteRaw(base, prog); err != nil {
		t.Fatal(err)
	}
	c.EnterRegion(mem.Region{Base: base, Size: len(prog)}, 0)
	if reason, err := c.Run(0); err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	if st := c.DecodeCacheStatsSnapshot(); st.BoundarySkips == 0 {
		t.Fatalf("straddling fetch not counted: %+v", st)
	}
}
