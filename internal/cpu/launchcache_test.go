package cpu

import (
	"fmt"
	"testing"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// Tests for the launch-measurement cache (launchcache.go). The cache may
// only ever change wall-clock cost: every measurement it returns must be
// the SHA-1 of the bytes actually in memory at launch time (a full content
// compare guards every hit), and the virtual time charged must be identical
// on hits and misses.

func TestLaunchCacheRepeatedSKINITIdentical(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := place(t, r.chip, 4096)

	start := r.cpu.Clock().Now()
	first, err := r.cpu.SKINIT(base)
	if err != nil {
		t.Fatal(err)
	}
	missCost := r.cpu.Clock().Now() - start

	start = r.cpu.Clock().Now()
	second, err := r.cpu.SKINIT(base)
	if err != nil {
		t.Fatal(err)
	}
	hitCost := r.cpu.Clock().Now() - start

	if first.PALMeasurement != second.PALMeasurement {
		t.Fatal("cached launch reported a different measurement")
	}
	if first.PCR17 != second.PCR17 {
		t.Fatal("cached launch produced a different PCR 17")
	}
	img, _ := r.chip.Memory().ReadRaw(first.Region.Base, first.Region.Size)
	if want := tpm.Measure(img); first.PALMeasurement != want {
		t.Fatal("measurement is not the image hash")
	}
	if missCost != hitCost {
		t.Fatalf("virtual launch cost changed with the cache: miss %v, hit %v", missCost, hitCost)
	}
}

// TestLaunchCacheTamperInvalidates: changing even one byte of the SLB after
// a cached launch must produce the new content's hash — the hit path does a
// full compare against the cached copy, never trusting the address tag.
func TestLaunchCacheTamperInvalidates(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := place(t, r.chip, 4096)
	first, err := r.cpu.SKINIT(base)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the padded body, past the header.
	raw, err := r.chip.Memory().ReadRaw(base+2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.chip.Memory().WriteRaw(base+2048, []byte{raw[0] ^ 0xa5}); err != nil {
		t.Fatal(err)
	}
	second, err := r.cpu.SKINIT(base)
	if err != nil {
		t.Fatal(err)
	}
	if second.PALMeasurement == first.PALMeasurement {
		t.Fatal("tampered SLB measured as the original — the cache trusted a stale digest")
	}
	img, _ := r.chip.Memory().ReadRaw(second.Region.Base, second.Region.Size)
	if want := tpm.Measure(img); second.PALMeasurement != want {
		t.Fatal("post-tamper measurement is not the current image hash")
	}
}

// TestLaunchCacheEvictionCorrectness: launching more distinct images than
// the cache holds (16 entries, round-robin eviction) stays correct — every
// launch reports the hash of its own bytes.
func TestLaunchCacheEvictionCorrectness(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.LongWait(), true)
	base := uint32(8 * mem.PageSize)
	for round := 0; round < 2; round++ {
		for i := 0; i < launchCacheEntries+4; i++ {
			im := pal.MustBuild(fmt.Sprintf("ldi r0, %d\nhalt", i))
			im, err := im.Pad(4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.chip.Memory().WriteRaw(base, im.Bytes); err != nil {
				t.Fatal(err)
			}
			res, err := r.cpu.SKINIT(base)
			if err != nil {
				t.Fatal(err)
			}
			if want := tpm.Measure(im.Bytes); res.PALMeasurement != want {
				t.Fatalf("round %d image %d: measurement is not the image hash", round, i)
			}
		}
	}
}

// TestLaunchCacheSENTERTamperAborts: after priming the cache with a genuine
// launch, an in-place corruption of the ACMod must still abort SENTER —
// the content compare refuses the cached digest, and the fresh digest fails
// signature verification.
func TestLaunchCacheSENTERTamperAborts(t *testing.T) {
	r, module, vendor := senterRig(t)
	base := place(t, r.chip, 4096)
	if _, err := r.cpu.SENTER(base, module, vendor.Public()); err != nil {
		t.Fatal(err)
	}
	module.Code[100] ^= 1
	if _, err := r.cpu.SENTER(base, module, vendor.Public()); err == nil {
		t.Fatal("SENTER accepted a tampered ACMod after a cached genuine launch")
	}
}

// TestLaunchCacheSENTERRepeatIdentical mirrors the SKINIT test on the
// Intel path, where the PAL hash runs on the CPU (hashOnCPUCached) and the
// ACMod digest feeds both TPM_HASH and signature verification.
func TestLaunchCacheSENTERRepeatIdentical(t *testing.T) {
	r, module, vendor := senterRig(t)
	base := place(t, r.chip, 4096)
	first, err := r.cpu.SENTER(base, module, vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.cpu.SENTER(base, module, vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	if first.PALMeasurement != second.PALMeasurement ||
		first.PCR17 != second.PCR17 || first.PCR18 != second.PCR18 {
		t.Fatal("cached SENTER diverged from the first launch")
	}
	img, _ := r.chip.Memory().ReadRaw(first.Region.Base, first.Region.Size)
	if want := tpm.Measure(img); first.PALMeasurement != want {
		t.Fatal("SENTER measurement is not the PAL hash")
	}
}
