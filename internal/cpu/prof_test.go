package cpu

import (
	"testing"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
)

// Tests for the retirement-profiler hook: with a profiler installed the
// interpreter must report every retired instruction exactly once, and with
// no profiler the hook must cost nothing — neither allocations nor any
// architecturally visible difference.

// fakeProfiler records every retirement callback.
type fakeProfiler struct {
	pcs   []uint32
	ops   []isa.Opcode
	total time.Duration
}

func (f *fakeProfiler) RetireInstr(pc uint32, op isa.Opcode, cost time.Duration) {
	f.pcs = append(f.pcs, pc)
	f.ops = append(f.ops, op)
	f.total += cost
}

// runImageProfiled executes image on a fresh machine with p installed.
func runImageProfiled(t *testing.T, image pal.Image, p Profiler) (*CPU, *chipset.Chipset) {
	t.Helper()
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	c.SetProfiler(p)
	c.EnterRegion(mem.Region{Base: 0x4000, Size: image.Len()}, image.Entry)
	reason, err := c.Run(0)
	if err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	return c, cs
}

func TestProfilerHookObservesEveryRetirement(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 4
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	f := &fakeProfiler{}
	c, _ := runImageProfiled(t, image, f)
	if int64(len(f.pcs)) != c.Retired {
		t.Fatalf("profiler saw %d retirements, CPU retired %d", len(f.pcs), c.Retired)
	}
	if f.total != time.Duration(c.Retired)*c.Params.InstrCost {
		t.Fatalf("charged %v, want %v", f.total, time.Duration(c.Retired)*c.Params.InstrCost)
	}
	// The hook reports pre-execution PCs: the first is the entry point.
	if f.pcs[0] != uint32(image.Entry) {
		t.Fatalf("first retirement at pc=0x%x, want entry 0x%x", f.pcs[0], image.Entry)
	}
	// The loop body retires four times; its PC appears that often.
	body := uint32(image.Entry) + 2*isa.WordSize
	n := 0
	for _, pc := range f.pcs {
		if pc == body {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("loop body retired %d times, want 4", n)
	}
}

// TestProfilerDifferential: a run with the hook installed must be
// bit-identical to one without — same registers, flags, memory, retirement
// count, and virtual clock. The profiler observes; it must never perturb.
func TestProfilerDifferential(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 3
		ldi	r1, 7
		mul	r0, r1
		ldi	r2, v
		store	r0, [r2]
		load	r3, [r2]
		halt
	v:	.word 0
	`)
	on, csOn := runImageProfiled(t, image, &fakeProfiler{})
	off, csOff := runImage(t, image, true)
	sameArchState(t, on, off, csOn, csOff)
	if on.Retired != off.Retired {
		t.Fatalf("retired diverge: %d vs %d", on.Retired, off.Retired)
	}
	if on.Clock().Now() != off.Clock().Now() {
		t.Fatalf("virtual clocks diverge: %v vs %v", on.Clock().Now(), off.Clock().Now())
	}
}

// TestProfilerClearedWithMicroarchState: the hook is execution-context
// state, wiped with the rest of the microarchitectural state on suspend so
// a later unprofiled run cannot leak retirements into a stale collector.
func TestProfilerClearedWithMicroarchState(t *testing.T) {
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(4*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	f := &fakeProfiler{}
	c.SetProfiler(f)
	if c.prof == nil {
		t.Fatal("SetProfiler did not install the hook")
	}
	c.ClearMicroarchState()
	if c.prof != nil {
		t.Fatal("ClearMicroarchState left the profiler installed")
	}
}

// TestRunSteadyStateAllocsProfilerOff pins the profiler-off cost of the
// full fetch/execute loop: with no profiler installed and the decode cache
// warm, re-running a program end to end must not allocate — the PR 3
// zero-allocation gate extended over the new nil check.
func TestRunSteadyStateAllocsProfilerOff(t *testing.T) {
	image := pal.MustBuild(`
		ldi	r0, 0
		ldi	r1, 8
	loop:	addi	r0, 1
		cmp	r0, r1
		jnz	loop
		halt
	`)
	clock := sim.NewClock()
	cs := chipset.New(clock, mem.New(16*mem.PageSize), lpc.NewBus(clock, lpc.FullSpeed()), nil)
	c := New(0, ParamsAMDdc5750(), cs)
	if err := cs.Memory().WriteRaw(0x4000, image.Bytes); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	region := mem.Region{Base: 0x4000, Size: image.Len()}
	// Warm until every leader is past blockHeatMin: the decode cache fills
	// on the first pass, and the threaded-code tier must finish compiling
	// before the timed runs or its one-time allocations would be charged
	// to the steady state.
	for i := 0; i < 3*blockHeatMin; i++ {
		c.EnterRegion(region, image.Entry)
		if reason, err := c.Run(0); err != nil || reason != StopHalt {
			t.Fatalf("warm run: %v %v", reason, err)
		}
	}
	var (
		reason StopReason
		err    error
	)
	allocs := testing.AllocsPerRun(100, func() {
		c.EnterRegion(region, image.Entry)
		reason, err = c.Run(0)
	})
	if err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	if allocs != 0 {
		t.Fatalf("profiler-off Run allocates %v allocs/op, want 0", allocs)
	}
}
