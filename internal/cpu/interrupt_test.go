package cpu

import (
	"errors"
	"testing"

	"minimaltcb/internal/lpc"
)

// interruptPAL registers a handler for vector 2, enables interrupts, and
// spins; the handler increments a counter and returns.
const interruptPAL = `
	ldi	r0, 2
	ldi	r1, handler
	svc	9		; IDT[2] = handler
	ldi	r0, 1
	svc	10		; enable interrupts
spin:
	jmp	spin

handler:
	push	r1
	ldi	r1, count
	load	r0, [r1]
	addi	r0, 1
	store	r0, [r1]
	pop	r1
	ret

count:	.word 0
stack:	.space 64
`

func TestInterruptDelivery(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	region := r.loadPAL(t, interruptPAL)
	// Run until preempted (the PAL spins forever).
	reason, err := r.cpu.Run(200)
	if err != nil || reason != StopPreempted {
		t.Fatalf("%v %v", reason, err)
	}
	// Deliver three interrupts, resuming between them.
	for i := 0; i < 3; i++ {
		if err := r.cpu.DeliverInterrupt(2); err != nil {
			t.Fatal(err)
		}
		if reason, err := r.cpu.Run(200); err != nil || reason != StopPreempted {
			t.Fatalf("resume %d: %v %v", i, reason, err)
		}
	}
	// The counter in PAL memory reflects every delivery.
	countAddr := findWordAfterHandler(t, r, region.Size)
	v, err := r.cpu.ReadWord(countAddr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("count = %d, want 3", v)
	}
}

// findWordAfterHandler locates the count word: it sits right before the
// 64-byte stack at the image end.
func findWordAfterHandler(t *testing.T, r *rig, regionSize int) uint32 {
	t.Helper()
	return uint32(regionSize - 64 - 4)
}

func TestInterruptMaskedDropped(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi	r0, 2
		ldi	r1, 28	; any in-region offset
		svc	9
	spin:	jmp	spin
	stack:	.space 32
	`)
	// Interrupts never enabled: delivery is refused.
	if reason, _ := r.cpu.Run(100); reason != StopPreempted {
		t.Fatal("PAL did not preempt")
	}
	if err := r.cpu.DeliverInterrupt(2); !errors.Is(err, ErrIntrMasked) {
		t.Fatalf("masked delivery: %v", err)
	}
}

func TestInterruptUnhandledVector(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi	r0, 1
		svc	10	; enable, but no handlers registered
	spin:	jmp	spin
	stack:	.space 32
	`)
	r.cpu.Run(100)
	if err := r.cpu.DeliverInterrupt(3); !errors.Is(err, ErrIntrUnhandled) {
		t.Fatalf("unhandled vector: %v", err)
	}
	if err := r.cpu.DeliverInterrupt(99); !errors.Is(err, ErrBadVector) {
		t.Fatalf("bad vector: %v", err)
	}
	if err := r.cpu.DeliverInterrupt(-1); !errors.Is(err, ErrBadVector) {
		t.Fatalf("negative vector: %v", err)
	}
}

func TestSetIDTValidation(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	// Vector out of range faults the PAL.
	r.loadPAL(t, `
		ldi	r0, 99
		ldi	r1, 4
		svc	9
		halt
	`)
	if reason, err := r.cpu.Run(0); reason != StopFault || err == nil {
		t.Fatalf("bad vector accepted: %v %v", reason, err)
	}
	// Handler outside the region faults too.
	r2 := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r2.loadPAL(t, `
		ldi	r0, 1
		ldi	r1, 0xff00
		svc	9
		halt
	`)
	if reason, err := r2.cpu.Run(0); reason != StopFault || err == nil {
		t.Fatalf("out-of-region handler accepted: %v %v", reason, err)
	}
}

func TestIDTClearedOnReset(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	r.loadPAL(t, `
		ldi	r0, 1
		ldi	r1, 16
		svc	9
		ldi	r0, 1
		svc	10
		halt
	nop
	stack:	.space 32
	`)
	if _, err := r.cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if h, _ := r.cpu.IDTEntry(1); h == 0 {
		t.Fatal("IDT entry not set")
	}
	r.cpu.Reset()
	if h, _ := r.cpu.IDTEntry(1); h != 0 {
		t.Fatal("IDT survived reset — one PAL's handlers leaked to the next")
	}
	if _, err := r.cpu.IDTEntry(99); !errors.Is(err, ErrBadVector) {
		t.Fatalf("IDTEntry(99): %v", err)
	}
}

func TestInterruptConfigSurvivesSuspendResume(t *testing.T) {
	r := newRig(t, ParamsAMDdc5750(), lpc.FullSpeed(), false)
	region := r.loadPAL(t, interruptPAL)
	r.cpu.Run(200)
	saved := r.cpu.SaveState()
	r.cpu.ClearMicroarchState()
	if r.cpu.IntrEnabled {
		t.Fatal("interrupt enable leaked through microarch clear")
	}
	// Resume: interrupt config restored with the architectural state.
	r.cpu.Reset()
	r.cpu.EnterRegion(region, 4)
	r.cpu.LoadState(saved)
	if !r.cpu.IntrEnabled {
		t.Fatal("interrupt enable not restored")
	}
	if err := r.cpu.DeliverInterrupt(2); err != nil {
		t.Fatalf("delivery after resume: %v", err)
	}
}
