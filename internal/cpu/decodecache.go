package cpu

import (
	"minimaltcb/internal/isa"
	"minimaltcb/internal/mem"
)

// The decoded-instruction cache removes the per-step fetch cost of the
// interpreter: without it every Run iteration performs a checked memory
// read plus an isa.Decode of the same word it decoded on the previous trip
// through a loop.
//
// The cache is direct-mapped on the word's physical address and validated
// against the page's version counter, which internal/mem bumps on every
// write, ZeroRange, and access-control transition (Claim/Seclude/Release/
// Share/Unshare) touching the page. A version match therefore proves both
// that the cached bytes are current (self-modifying PALs invalidate
// themselves by writing) and that the access check performed when the entry
// was filled still holds (SKILL zeroing, page hand-off to another CPU, and
// suspend all bump the version). Fetches whose word straddles a page
// boundary bypass the cache so a single version covers each entry.
//
// The cache is private to its core and only ever touched by the goroutine
// driving that core, so it needs no locking; it is dropped wholesale on
// Reset, matching real hardware where late launch begins from a clean
// microarchitectural state.

// decodeCacheSize is the number of direct-mapped entries (words).
const decodeCacheSize = 4096

type decodeEntry struct {
	key uint32 // physical address + 1; 0 = empty
	ver uint32 // page version when filled
	in  isa.Instruction
}

// SetDecodeCache enables or disables the decoded-instruction cache. It is
// enabled by default; differential tests disable it to compare the cached
// fast path against the always-checked slow path. Disabling drops all
// entries.
func (c *CPU) SetDecodeCache(on bool) {
	c.decodeOff = !on
	if !on {
		c.dcache = nil
	}
}

// DecodeCacheEnabled reports whether the decode cache is active.
func (c *CPU) DecodeCacheEnabled() bool { return !c.decodeOff }

// DecodeCacheStats counts the decode cache's outcomes. Words straddling a
// page boundary bypass the cache entirely (one page version cannot vouch
// for two pages) — before BoundarySkips existed that bypass was invisible,
// making straddling fetch patterns look like unexplained slowdowns.
type DecodeCacheStats struct {
	// Hits and Misses count lookups of in-page words.
	Hits, Misses int64
	// BoundarySkips counts fetches that bypassed the cache because the
	// word straddles a page boundary.
	BoundarySkips int64
	// VersionEvictions counts misses whose slot held the same address
	// with a stale page version (self-modified code or an ownership
	// transition), as opposed to cold or conflict misses.
	VersionEvictions int64
}

// DecodeCacheStatsSnapshot returns the cache's counters. The counters are
// plain increments on the fetch hot path, so — like every CPUProfiler
// method — this must be called under whatever lock serializes the machine
// (palsvc holds its per-machine mutex across /debug/profile snapshots).
func (c *CPU) DecodeCacheStatsSnapshot() DecodeCacheStats { return c.dstats }

// fetchCached returns the decoded instruction at physical address phys,
// consulting the cache when the word lies within one page.
func (c *CPU) fetchCached(phys uint32) (isa.Instruction, error) {
	if c.decodeOff {
		return c.fetchSlow(phys)
	}
	if phys&(mem.PageSize-1) > mem.PageSize-isa.WordSize {
		c.dstats.BoundarySkips++
		return c.fetchSlow(phys)
	}
	ver := c.chip.Memory().PageVersion(int(phys) / mem.PageSize)
	if c.dcache == nil {
		c.dcache = make([]decodeEntry, decodeCacheSize)
	}
	e := &c.dcache[(phys>>2)&(decodeCacheSize-1)]
	if e.key == phys+1 && e.ver == ver {
		c.dstats.Hits++
		return e.in, nil
	}
	if e.key == phys+1 {
		c.dstats.VersionEvictions++
	}
	c.dstats.Misses++
	in, err := c.fetchSlow(phys)
	if err != nil {
		return in, err
	}
	*e = decodeEntry{key: phys + 1, ver: ver, in: in}
	return in, nil
}

// fetchSlow performs the fully checked read-and-decode.
func (c *CPU) fetchSlow(phys uint32) (isa.Instruction, error) {
	word, err := c.chip.CPUReadWord(c.ID, phys)
	if err != nil {
		return isa.Instruction{}, err
	}
	return isa.Decode(word)
}
