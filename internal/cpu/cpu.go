// Package cpu models the processor cores of the simulated platform: an
// interpreter for the PAL instruction set with per-page access checks on
// every memory reference, the late-launch microcode of today's hardware
// (AMD SKINIT, Intel SENTER), on-CPU hashing, and the VM entry/exit
// primitives whose latency Table 2 reports.
//
// The proposed-hardware instructions (SLAUNCH, SYIELD, SFREE, SKILL) build
// on these primitives but live in internal/sksm, keeping this package an
// honest model of what shipped in 2007.
package cpu

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/chipset"
	"minimaltcb/internal/isa"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// Vendor distinguishes the two late-launch implementations.
type Vendor int

// CPU vendors.
const (
	AMD Vendor = iota
	Intel
)

// String names the vendor.
func (v Vendor) String() string {
	if v == Intel {
		return "Intel"
	}
	return "AMD"
}

// Params is the per-model timing and capability description of a core.
type Params struct {
	// Vendor selects SKINIT (AMD) or SENTER (Intel) late launch.
	Vendor Vendor
	// ClockGHz is the nominal frequency, for reporting.
	ClockGHz float64
	// InstrCost is the virtual time charged per executed instruction.
	InstrCost time.Duration
	// InitCost is the cost of resetting the core to its trusted state at
	// late launch; Table 1's 0 KB row shows this is under 10 µs.
	InitCost time.Duration
	// VMEnter and VMExit are the world-switch costs of Table 2.
	VMEnter, VMExit time.Duration
	// HashPerKB is the on-CPU SHA-1 rate; Intel's ACMod hashes the PAL
	// on the main CPU at this rate (Table 1: 0.124375 ms/KB).
	HashPerKB time.Duration
	// SigVerifyCost is the chipset's ACMod signature check (Intel only).
	SigVerifyCost time.Duration
}

// StopReason explains why CPU.Run returned.
type StopReason int

// Stop reasons.
const (
	StopHalt      StopReason = iota // HALT or SVC exit
	StopYield                       // PAL voluntarily yielded
	StopPreempted                   // execution quantum exhausted
	StopFault                       // illegal instruction, memory fault, ...
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopYield:
		return "yield"
	case StopPreempted:
		return "preempted"
	case StopFault:
		return "fault"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// SvcAction is a service handler's verdict on how execution proceeds.
type SvcAction int

// Service actions.
const (
	SvcContinue SvcAction = iota
	SvcExit
	SvcYield
)

// ServiceFunc handles SVC instructions. It may read and write the CPU's
// registers and the PAL's memory, and charge virtual time (e.g. for TPM
// operations). A returned error faults the PAL.
type ServiceFunc func(c *CPU, num uint16) (SvcAction, error)

// Well-known service numbers forming the PAL ABI. The SEA runtime and the
// recommended-hardware runtime both implement these.
const (
	SvcNumExit    = 0 // terminate; r0 = status
	SvcNumYield   = 1 // voluntarily yield the CPU
	SvcNumExtend  = 2 // extend measurement of [r0,r0+r1) into the PAL's PCR
	SvcNumSeal    = 3 // seal [r0,r0+r1) to the PAL identity; blob to [r2]; r0 = blob len
	SvcNumUnseal  = 4 // unseal blob [r0,r0+r1); plaintext to [r2]; r0 = len, r1 = status
	SvcNumRandom  = 5 // r1 TPM-random bytes to [r0]
	SvcNumOutput  = 6 // append [r0,r0+r1) to the PAL output channel
	SvcNumInput   = 7 // copy up to r1 input bytes to [r0]; r0 = copied
	SvcNumGetTime = 8 // r0 = low 32 bits of virtual ns (diagnostics)
)

// Errors surfaced by the core.
var (
	ErrFault      = errors.New("cpu: fault")
	ErrNoService  = errors.New("cpu: SVC executed with no service handler installed")
	ErrWrongModel = errors.New("cpu: instruction not available on this CPU model")
)

// CPU is one core.
type CPU struct {
	// ID is the core number; memory requests carry it to the chipset.
	ID int
	// Params is the core's timing model.
	Params Params
	// Timeline records this core's busy time for utilization reporting.
	Timeline sim.Timeline

	chip *chipset.Chipset

	// Architectural state.
	Regs        [isa.NumRegs]uint32
	PC          uint32 // offset within the current region
	FlagZ       bool
	FlagC       bool
	FlagN       bool
	Ring        int
	IntrEnabled bool

	region  mem.Region // current execution region (the PAL's memory)
	svc     ServiceFunc
	idt     [NumIntrVectors]uint16 // PAL interrupt handlers (§6 extension)
	tracer  Tracer
	prof    Profiler
	Retired int64 // instructions executed (statistics)

	// Decoded-instruction cache (decodecache.go). Lazily allocated;
	// private to the goroutine driving this core.
	dcache    []decodeEntry
	decodeOff bool
	dstats    DecodeCacheStats

	// Threaded-code tier (tcode.go): compiled basic blocks, leader heat
	// counters, and the profiler's compiled-tier hook. Lazily allocated
	// and, like dcache, private to the goroutine driving the core; the
	// statistics counters alone are updated atomically so metrics scrapes
	// can read them without the machine lock.
	bcache   []*blockEntry
	bheat    []heatEntry
	tcodeOff bool
	bprof    BlockProfiler
	tstats   tcodeCounters

}

// Tracer observes each instruction before it executes, for debugging
// tooling (palasm run -trace). pc is the PAL-relative program counter.
type Tracer func(c *CPU, pc uint32, in isa.Instruction)

// SetTracer installs (or, with nil, removes) an instruction tracer.
func (c *CPU) SetTracer(t Tracer) { c.tracer = t }

// Profiler receives exact per-instruction cycle attribution from the
// interpreter: one call per retired instruction with the pre-execution PC
// and the virtual time charged. internal/obs/prof implements it; the
// interface lives here so this package stays dependency-free. With no
// profiler installed the run loop pays a single nil check per instruction
// (the same contract as Tracer).
type Profiler interface {
	RetireInstr(pc uint32, op isa.Opcode, cost time.Duration)
}

// BlockProfiler is the optional extension a Profiler may implement to
// distinguish instructions retired through the threaded-code tier
// (tcode.go) from interpreted ones. The arguments carry exactly what
// RetireInstr would have received for the same instruction; a profiler
// that does not implement it sees compiled retirements through
// RetireInstr and cannot tell the tiers apart.
type BlockProfiler interface {
	Profiler
	RetireCompiled(pc uint32, op isa.Opcode, cost time.Duration)
}

// SetProfiler installs (or, with nil, removes) the cycle profiler. Like
// the SVC handler it is execution-context state: ClearMicroarchState
// removes it, and the launching microcode reinstalls it per PAL.
func (c *CPU) SetProfiler(p Profiler) {
	c.prof = p
	if bp, ok := p.(BlockProfiler); ok {
		c.bprof = bp
	} else {
		c.bprof = nil
	}
}

// New creates a core attached to a chipset.
func New(id int, params Params, chip *chipset.Chipset) *CPU {
	return &CPU{ID: id, Params: params, chip: chip, Ring: 3, IntrEnabled: true}
}

// Chipset returns the attached chipset.
func (c *CPU) Chipset() *chipset.Chipset { return c.chip }

// Clock returns the platform clock.
func (c *CPU) Clock() *sim.Clock { return c.chip.Clock() }

// Region returns the current execution region.
func (c *CPU) Region() mem.Region { return c.region }

// SetService installs the SVC handler for the current execution context.
func (c *CPU) SetService(f ServiceFunc) { c.svc = f }

// Reset reinitializes the core to its well-known trusted state: registers
// cleared, flat protected mode at ring 0, interrupts disabled — the state
// both SKINIT and the proposed SLAUNCH establish.
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint32{}
	c.PC = 0
	c.FlagZ, c.FlagC, c.FlagN = false, false, false
	c.Ring = 0
	c.IntrEnabled = false
	c.region = mem.Region{}
	c.clearIDT()
	// The decode cache survives Reset: entries are validated against the
	// page's version counter on every hit, so stale decodes are already
	// impossible, and the cache holds no architectural state (the decoded
	// form is a pure function of the bytes it was decoded from). Dropping
	// it here would cost a fresh 64 KB allocation per launch on cores the
	// OS resets between PAL runs. Compiled blocks (tcode.go) survive for
	// the same reason: every lookup revalidates the block's region, page
	// versions, and — when versions moved — its exact bytes.
}

// EnterRegion begins executing at entry within region, with the stack
// pointer initialized to the region's top (§5.1: "allowing the PAL to
// confirm the size of its data memory region").
func (c *CPU) EnterRegion(r mem.Region, entry uint16) {
	c.region = r
	c.PC = uint32(entry)
	c.Regs[7] = uint32(r.Size) // sp, PAL-relative
}

// ArchState is the saved architectural state of a suspended PAL — the CPU
// state block the hardware writes into the SECB on SYIELD (§5.3). It
// includes the PAL's interrupt configuration so a resumed PAL keeps its
// handlers (§6).
type ArchState struct {
	Regs                [isa.NumRegs]uint32
	PC                  uint32
	FlagZ, FlagC, FlagN bool
	IntrEnabled         bool
	IDT                 [NumIntrVectors]uint16
}

// SaveState captures the architectural state.
func (c *CPU) SaveState() ArchState {
	return ArchState{
		Regs: c.Regs, PC: c.PC,
		FlagZ: c.FlagZ, FlagC: c.FlagC, FlagN: c.FlagN,
		IntrEnabled: c.IntrEnabled, IDT: c.idt,
	}
}

// LoadState restores previously saved architectural state.
func (c *CPU) LoadState(s ArchState) {
	c.Regs = s.Regs
	c.PC = s.PC
	c.FlagZ, c.FlagC, c.FlagN = s.FlagZ, s.FlagC, s.FlagN
	c.IntrEnabled = s.IntrEnabled
	c.idt = s.IDT
}

// ClearMicroarchState models the secure state clear on PAL suspend/exit:
// any residue that could leak PAL secrets (registers here; cache lines in
// real hardware) is zeroed (§5.3, §5.6).
func (c *CPU) ClearMicroarchState() {
	c.Regs = [isa.NumRegs]uint32{}
	c.FlagZ, c.FlagC, c.FlagN = false, false, false
	c.PC = 0
	c.region = mem.Region{}
	c.svc = nil
	c.prof = nil
	c.bprof = nil
	c.IntrEnabled = false
	c.clearIDT()
}

// translate converts a PAL-relative address range to a physical one,
// faulting on any access outside the PAL's region — the PAL's address
// space is exactly its allocated memory.
func (c *CPU) translate(addr uint32, n int) (uint32, error) {
	if n < 0 || int(addr)+n > c.region.Size {
		return 0, fmt.Errorf("%w: access [%d,%d) outside PAL region of %d bytes",
			ErrFault, addr, int(addr)+n, c.region.Size)
	}
	return c.region.Base + addr, nil
}

// ReadBytes reads n bytes at a PAL-relative address with full checks.
func (c *CPU) ReadBytes(addr uint32, n int) ([]byte, error) {
	phys, err := c.translate(addr, n)
	if err != nil {
		return nil, err
	}
	return c.chip.CPURead(c.ID, phys, n)
}

// ReadBytesInto reads len(dst) bytes at a PAL-relative address with full
// checks into a caller-supplied buffer, allocating nothing.
func (c *CPU) ReadBytesInto(addr uint32, dst []byte) error {
	phys, err := c.translate(addr, len(dst))
	if err != nil {
		return err
	}
	return c.chip.CPUReadInto(c.ID, phys, dst)
}

// WriteBytes writes bytes at a PAL-relative address with full checks.
func (c *CPU) WriteBytes(addr uint32, b []byte) error {
	phys, err := c.translate(addr, len(b))
	if err != nil {
		return err
	}
	return c.chip.CPUWrite(c.ID, phys, b)
}

// ReadWord reads a 32-bit little-endian word at a PAL-relative address.
func (c *CPU) ReadWord(addr uint32) (uint32, error) {
	phys, err := c.translate(addr, 4)
	if err != nil {
		return 0, err
	}
	return c.chip.CPUReadWord(c.ID, phys)
}

// WriteWord writes a 32-bit little-endian word at a PAL-relative address.
func (c *CPU) WriteWord(addr, v uint32) error {
	phys, err := c.translate(addr, 4)
	if err != nil {
		return err
	}
	return c.chip.CPUWriteWord(c.ID, phys, v)
}

// LoadByte reads one byte at a PAL-relative address.
func (c *CPU) LoadByte(addr uint32) (byte, error) {
	phys, err := c.translate(addr, 1)
	if err != nil {
		return 0, err
	}
	return c.chip.CPUReadByte(c.ID, phys)
}

// StoreByte writes one byte at a PAL-relative address.
func (c *CPU) StoreByte(addr uint32, v byte) error {
	phys, err := c.translate(addr, 1)
	if err != nil {
		return err
	}
	return c.chip.CPUWriteByte(c.ID, phys, v)
}

// HashOnCPU computes SHA-1 over data on this core, charging the core's
// hash rate — the operation Intel's ACMod performs on the PAL (§4.3.2).
func (c *CPU) HashOnCPU(data []byte) tpm.Digest {
	c.Clock().Advance(time.Duration(len(data)) * c.Params.HashPerKB / 1024)
	return sha1.Sum(data)
}

// VMEnter charges one guest-entry world switch (Table 2's VM Enter row)
// and returns the charged duration.
func (c *CPU) VMEnter() time.Duration {
	c.Clock().Advance(c.Params.VMEnter)
	return c.Params.VMEnter
}

// VMExit charges one guest-exit world switch (Table 2's VM Exit row).
func (c *CPU) VMExit() time.Duration {
	c.Clock().Advance(c.Params.VMExit)
	return c.Params.VMExit
}
