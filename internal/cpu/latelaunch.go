package cpu

import (
	"crypto/rsa"
	"fmt"
	"sync"

	"minimaltcb/internal/acmod"
	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// slbBufPool recycles the scratch buffer the launch microcode streams the
// SLB image through; an SLB is at most 64 KB, so one buffer per concurrent
// launch suffices instead of a fresh image-sized copy per launch. The
// buffer never outlives the launch: everything downstream (Measure,
// TransferHash, HashData, HashOnCPU) consumes it synchronously.
var slbBufPool = sync.Pool{New: func() any { b := make([]byte, 64<<10); return &b }}

// readImage fills a pooled buffer with the region's bytes. The caller must
// slbBufPool.Put(bufp) when done; the image must not be used afterwards.
// (Returning the pool pointer rather than a release closure keeps the hot
// launch path from allocating the closure.)
func readImage(m *mem.Memory, r mem.Region) (image []byte, bufp *[]byte, err error) {
	bufp = slbBufPool.Get().(*[]byte)
	if cap(*bufp) < r.Size {
		*bufp = make([]byte, r.Size)
	}
	image = (*bufp)[:r.Size]
	if err := m.ReadInto(image, r.Base); err != nil {
		slbBufPool.Put(bufp)
		return nil, nil, err
	}
	return image, bufp, nil
}

// This file implements the late-launch microcode of 2007 hardware.
//
// SKINIT (AMD, §2.2.1): DEV-protect the SLB, reset the core to its trusted
// state with interrupts disabled, stream the entire SLB to the TPM over the
// LPC bus (TPM_HASH_START/DATA/END at locality 4, which resets the dynamic
// PCRs and extends PCR 17), then jump to the SLB's entry point.
//
// SENTER (Intel, §2.2.2): additionally loads an Intel-signed Authenticated
// Code Module; the chipset verifies its signature with a fused key and the
// ACMod itself — running on the main CPU — hashes the PAL and extends
// PCR 18. Only the ~10 KB ACMod crosses the slow bus, which is why Intel's
// Table 1 column starts high but grows slowly.

// LaunchResult reports what a late launch measured and where execution
// begins.
type LaunchResult struct {
	// Region is the protected memory region covering the SLB.
	Region mem.Region
	// Entry is the PAL entry offset.
	Entry uint16
	// PALMeasurement is SHA1 of the full SLB image.
	PALMeasurement tpm.Digest
	// PCR17 and PCR18 are the dynamic PCR values after launch (PCR18
	// meaningful on Intel only).
	PCR17, PCR18 tpm.Digest
}

// SKINIT performs AMD late launch of the SLB at physical address slbBase.
// On return the core is inside the PAL region with PC at its entry point;
// the caller then drives execution with Run. On platforms without a TPM
// the bus transfer still happens (the Tyan n3600R measurement) but no
// measurement is recorded.
func (c *CPU) SKINIT(slbBase uint32) (*LaunchResult, error) {
	if c.Params.Vendor != AMD {
		return nil, fmt.Errorf("%w: SKINIT on %v", ErrWrongModel, c.Params.Vendor)
	}
	if c.Ring != 0 {
		// Invoked from kernel mode; model callers run the kernel path.
		c.Ring = 0
	}
	chip := c.chip

	// Read the SLB header with microcode (raw) access.
	var hdr [pal.HeaderSize]byte
	if err := chip.Memory().ReadInto(hdr[:], slbBase); err != nil {
		return nil, fmt.Errorf("cpu: SKINIT header: %w", err)
	}
	length, entry, err := pal.ParseHeader(hdr[:])
	if err != nil {
		return nil, fmt.Errorf("cpu: SKINIT: %w", err)
	}
	region := mem.Region{Base: slbBase, Size: length}

	// DMA-protect the SLB pages via the DEV before anything else — the
	// window between measurement and execution must be closed to devices.
	if err := chip.SetDEVRegion(region, true); err != nil {
		return nil, fmt.Errorf("cpu: SKINIT DEV: %w", err)
	}

	// Reset the core: clean state, interrupts off, debug access disabled.
	c.Reset()
	c.Clock().Advance(c.Params.InitCost)

	image, bufp, err := readImage(chip.Memory(), region)
	if err != nil {
		return nil, fmt.Errorf("cpu: SKINIT image: %w", err)
	}
	defer slbBufPool.Put(bufp)

	// The measurement is served from the launch cache (launchcache.go)
	// when the same bytes launched recently; a memcmp validates the hit.
	meas := c.measureCached(region.Base, image)
	res := &LaunchResult{Region: region, Entry: entry, PALMeasurement: meas}

	bus := chip.Bus()
	if err := bus.SetLocality(4); err != nil {
		return nil, err
	}
	defer bus.SetLocality(0)

	if chip.HasTPM() {
		t := chip.TPM()
		if err := t.HashStart(); err != nil {
			return nil, fmt.Errorf("cpu: SKINIT hash start: %w", err)
		}
		bus.TransferHash(image) // the Table 1 cost: SLB bytes through the TPM's wait states
		if err := t.HashDataPremeasured(image, meas); err != nil {
			return nil, err
		}
		pcr17, err := t.HashEnd()
		if err != nil {
			return nil, err
		}
		res.PCR17 = pcr17
	} else {
		// No TPM: the transfer still crosses the LPC bus at full speed.
		bus.TransferHash(image)
	}

	c.EnterRegion(region, entry)
	return res, nil
}

// SENTER performs Intel late launch: module is the Authenticated Code
// Module and fused is the chipset's burned-in verification key. The launch
// aborts — undoing memory protections — if the module's signature does not
// verify.
func (c *CPU) SENTER(slbBase uint32, module *acmod.Module, fused *rsa.PublicKey) (*LaunchResult, error) {
	if c.Params.Vendor != Intel {
		return nil, fmt.Errorf("%w: SENTER on %v", ErrWrongModel, c.Params.Vendor)
	}
	chip := c.chip
	if !chip.HasTPM() {
		return nil, fmt.Errorf("cpu: SENTER requires a TPM")
	}

	var hdr [pal.HeaderSize]byte
	if err := chip.Memory().ReadInto(hdr[:], slbBase); err != nil {
		return nil, fmt.Errorf("cpu: SENTER header: %w", err)
	}
	length, entry, err := pal.ParseHeader(hdr[:])
	if err != nil {
		return nil, fmt.Errorf("cpu: SENTER: %w", err)
	}
	region := mem.Region{Base: slbBase, Size: length}

	// The MPT protects the ACMod+PAL region from outside access; the DEV
	// bit vector models it.
	if err := chip.SetDEVRegion(region, true); err != nil {
		return nil, fmt.Errorf("cpu: SENTER MPT: %w", err)
	}

	c.Reset()
	c.Clock().Advance(c.Params.InitCost)

	bus := chip.Bus()
	if err := bus.SetLocality(4); err != nil {
		return nil, err
	}
	defer bus.SetLocality(0)

	t := chip.TPM()

	// Phase 1: the ACMod crosses the LPC bus and is measured into PCR 17.
	// The launch cache vouches for the digest by content compare, so both
	// the TPM_HASH sequence and the signature check below reuse it.
	acmDigest := c.measureCached(acmTag, module.Code)
	if err := t.HashStart(); err != nil {
		return nil, fmt.Errorf("cpu: SENTER hash start: %w", err)
	}
	bus.TransferHash(module.Code)
	if err := t.HashDataPremeasured(module.Code, acmDigest); err != nil {
		return nil, err
	}
	pcr17, err := t.HashEnd()
	if err != nil {
		return nil, err
	}

	// The chipset verifies the ACMod signature against the fused key.
	c.Clock().Advance(c.Params.SigVerifyCost)
	if err := acmod.VerifyWithDigest(fused, module, acmDigest); err != nil {
		chip.SetDEVRegion(region, false) // abort: undo protections
		return nil, fmt.Errorf("cpu: SENTER aborted: %w", err)
	}

	// Phase 2: the ACMod hashes the PAL on the main CPU and extends the
	// 20-byte digest into PCR 18 — only a constant amount crosses the bus.
	image, bufp, err := readImage(chip.Memory(), region)
	if err != nil {
		return nil, fmt.Errorf("cpu: SENTER image: %w", err)
	}
	meas := c.hashOnCPUCached(region.Base, image)
	slbBufPool.Put(bufp)
	pcr18, err := t.ExtendMicrocode(18, meas)
	if err != nil {
		return nil, err
	}

	c.EnterRegion(region, entry)
	return &LaunchResult{
		Region:         region,
		Entry:          entry,
		PALMeasurement: meas,
		PCR17:          pcr17,
		PCR18:          pcr18,
	}, nil
}
