package cpu

import (
	"fmt"
	"sync/atomic"
	"time"

	"minimaltcb/internal/isa"
	"minimaltcb/internal/mem"
)

// The threaded-code tier removes the interpreter's per-instruction
// dispatch: once a basic block has executed blockHeatMin times, it is
// compiled into a chain of direct-threaded steps — one operand record per
// instruction bound to a shared per-opcode function, with common pairs
// (cmp+branch, pop/pop, pop/push, load+ALU) fused into superinstructions —
// and subsequent executions run the step chain with no fetch, no
// isa.Decode, and no opcode switch.
//
// Everything observable stays bit-identical to the interpreter:
//
//   - Virtual-clock charging is block-granular. The interpreter advances
//     sim.Clock once per instruction, but nothing can observe the clock
//     between two instructions of the same basic block: SVC (the only way
//     into a handler) and HALT terminate a block at compile time, so the
//     clock is only read after the block completes. Run therefore issues a
//     single Advance of executed×InstrCost when the block finishes — or
//     when it stops early on a fault or a mid-block bailout, in which case
//     only the instructions that actually retired (including the faulting
//     one, which the interpreter charges before executing) are charged.
//   - Faults leave PC at the faulting instruction and return the same
//     error values: each closure updates PC only on success, so the
//     invariant "PC == the step's own pc on entry" carries the faulting
//     address exactly as the interpreter's late `c.PC = next` does.
//   - Preemption quanta are honored at the interpreter's granularity: a
//     block only runs when every one of its instructions would have passed
//     the `elapsed >= quantum` check; otherwise execution falls back to
//     the interpreter, which stops at exactly the right instruction.
//   - Profiler callbacks fire per retired instruction in program order
//     with the same (pc, op, cost) arguments. A profiler implementing
//     BlockProfiler can additionally distinguish compiled-tier
//     retirements; plain Profilers can't tell the tiers apart.
//   - Tracers disable the tier entirely (Run checks per iteration), so
//     palasm -trace always observes the interpreter.
//
// Invalidation rides the same page-version protocol as the decoded-
// instruction cache: a compiled block records the version of every page
// its words span (at most two) and is revalidated on lookup. A version
// mismatch does not immediately discard the block — ownership transitions
// bump versions on every suspend/resume cycle without changing bytes — so
// the block's stored words are re-read through the access-checked path and
// compared; only a content or permission change forces recompilation.
// Stores *inside* a running block re-check the covered pages after every
// writing step and bail out to the interpreter if they changed, which is
// what makes self-modifying code exact: the overwritten instruction is
// refetched and reinterpreted before it can execute stale.

const (
	// blockCacheSize is the number of direct-mapped compiled-block slots.
	blockCacheSize = 512
	// blockHeatSize is the number of direct-mapped leader heat counters.
	blockHeatSize = 1024
	// blockHeatMin is how many times a leader must execute before its
	// block is compiled.
	blockHeatMin = 8
	// maxBlockInstrs caps a block's length; with 4-byte words it keeps
	// every block within two pages.
	maxBlockInstrs = 64
	// maxBlockBails poisons a block after this many mid-block bailouts
	// (a PAL whose stack shares a page with its code would otherwise
	// recompile forever).
	maxBlockBails = 4
)

// tstep is one compiled step: a single instruction or a fused pair. It is
// an operand record dispatched through a function shared by every
// compilation of its opcode — the step functions capture nothing, so
// compiling a block costs O(1) allocations (the record slices), not one
// closure per instruction. That matters because experiment sweeps build
// fresh machines by the dozen: a per-instruction closure tax on every
// short-lived machine showed up directly in the benchcmp allocation gate.
// run returns how many instructions retired (charged) and the fault, if
// any.
type tstep struct {
	run  func(c *CPU, e *blockEntry, s *tstep) (int, error)
	n    uint8      // instructions this step retires on success
	wr   bool       // step may write PAL memory (store/storeb/push/call)
	ra   uint8      // register operands
	rb   uint8
	op   isa.Opcode // retired opcode
	op2  isa.Opcode // branch opcode of a fused cmp+branch
	a, b int16      // constituent indices into blockEntry.recs for pairs
	pc   uint32     // PAL-relative address of the step's first instruction
	next uint32     // fall-through PC after the whole step
	imm  uint32     // zero-extended immediate; branch/jump target
	simm uint32     // sign-extended immediate
	cond func(*CPU) bool // shared flag predicate for branches
}

func (s *tstep) exec(c *CPU, e *blockEntry) (int, error) { return s.run(c, e, s) }

// blockEntry is one compiled basic block in the direct-mapped cache. The
// fixed-size members (encoded words, step order) live inline so a compile
// allocates exactly one slice — the step records — and a recompile into
// the same slot usually allocates nothing.
type blockEntry struct {
	key     uint32 // leader physical address + 1; 0 = empty
	base    uint32 // region the block was compiled for
	size    int
	startPC uint32 // PAL-relative leader
	n       int    // total instructions
	nsteps  int    // fused steps actually executed
	// recs[0:n] are the per-instruction steps (pair dispatch indexes into
	// them); fused superinstructions are appended after.
	recs    []tstep
	stepIdx [maxBlockInstrs]int16  // indices into recs, execution order
	words   [maxBlockInstrs]uint32 // encoded words, for content revalidation
	pages   [2]int32               // physical pages the words span
	vers    [2]uint32
	npages  int
	bails   uint8
	poison  bool // true: run this leader in the interpreter forever
}

// heatEntry is one leader's execution counter.
type heatEntry struct {
	key  uint32 // leader physical address + 1
	heat uint32
}

// tcodeCounters are the tier's statistics, updated with atomic adds so
// metrics scrapes can read them without the machine lock.
type tcodeCounters struct {
	compiled      int64
	execs         int64
	instrs        int64
	bailouts      int64
	invalidations int64
}

// TCodeStats is a snapshot of the threaded-code tier's counters.
type TCodeStats struct {
	// Compiled counts block compilations (including recompilations).
	Compiled int64
	// Execs counts compiled-block executions; Instrs the instructions
	// retired through them.
	Execs, Instrs int64
	// Bailouts counts early exits to the interpreter: quantum budget too
	// small for the block, or a mid-block store invalidating the block.
	Bailouts int64
	// Invalidations counts compiled blocks discarded because their bytes
	// or access rights changed.
	Invalidations int64
}

// SetBlockCompile enables or disables the threaded-code tier. It is
// enabled by default; differential tests disable it to pin the compiled
// tier against the interpreter. Disabling drops all compiled blocks and
// heat counters.
func (c *CPU) SetBlockCompile(on bool) {
	c.tcodeOff = !on
	if !on {
		c.bcache = nil
		c.bheat = nil
	}
}

// BlockCompileEnabled reports whether the threaded-code tier is active.
func (c *CPU) BlockCompileEnabled() bool { return !c.tcodeOff }

// TCodeStatsSnapshot returns the tier's counters. Safe to call from any
// goroutine.
func (c *CPU) TCodeStatsSnapshot() TCodeStats {
	return TCodeStats{
		Compiled:      atomic.LoadInt64(&c.tstats.compiled),
		Execs:         atomic.LoadInt64(&c.tstats.execs),
		Instrs:        atomic.LoadInt64(&c.tstats.instrs),
		Bailouts:      atomic.LoadInt64(&c.tstats.bailouts),
		Invalidations: atomic.LoadInt64(&c.tstats.invalidations),
	}
}

// retireStep is the compiled tier's per-instruction profiler hook,
// mirroring the interpreter's `c.prof.RetireInstr(c.PC, in.Op, cost)`.
func (c *CPU) retireStep(pc uint32, op isa.Opcode) {
	if c.bprof != nil {
		c.bprof.RetireCompiled(pc, op, c.Params.InstrCost)
	} else if c.prof != nil {
		c.prof.RetireInstr(pc, op, c.Params.InstrCost)
	}
}

// blockFor returns a valid compiled block starting at the current PC, or
// nil when execution should stay in the interpreter (cold leader, poisoned
// block, quantum budget too small, or untranslatable PC — the interpreter
// raises that fault with its own message).
func (c *CPU) blockFor(quantum, elapsed time.Duration) *blockEntry {
	phys, err := c.translate(c.PC, isa.WordSize)
	if err != nil {
		return nil
	}
	if c.bcache == nil {
		// Pointer slots, filled as blocks compile: a machine that runs a
		// handful of hot blocks pays for those entries, not for 512.
		c.bcache = make([]*blockEntry, blockCacheSize)
		c.bheat = make([]heatEntry, blockHeatSize)
	}
	e := c.bcache[(phys>>2)&(blockCacheSize-1)]
	if e != nil && e.key == phys+1 && e.base == c.region.Base && e.size == c.region.Size {
		if e.poison {
			return nil
		}
		if c.blockPagesCurrent(e) || c.revalidateBlock(e) {
			return c.blockFits(e, quantum, elapsed)
		}
		// The block's bytes or permissions changed: recompile in place.
		atomic.AddInt64(&c.tstats.invalidations, 1)
	} else {
		h := &c.bheat[(phys>>2)&(blockHeatSize-1)]
		if h.key != phys+1 {
			h.key = phys + 1
			h.heat = 1
			return nil
		}
		if h.heat++; h.heat < blockHeatMin {
			return nil
		}
	}
	if ne := c.compileBlock(c.PC, phys); ne != nil && !ne.poison {
		return c.blockFits(ne, quantum, elapsed)
	}
	return nil
}

// blockFits checks the preemption budget: the block may only run whole if
// every one of its instructions would have passed the interpreter's
// `elapsed >= quantum` gate. Otherwise the interpreter runs the tail of
// the quantum and stops at exactly the instruction the timer hits.
func (c *CPU) blockFits(e *blockEntry, quantum, elapsed time.Duration) *blockEntry {
	if quantum > 0 && elapsed+time.Duration(e.n-1)*c.Params.InstrCost >= quantum {
		atomic.AddInt64(&c.tstats.bailouts, 1)
		return nil
	}
	return e
}

// blockPagesCurrent reports whether every page the block's words span
// still has the version recorded at compile (or revalidation) time.
func (c *CPU) blockPagesCurrent(e *blockEntry) bool {
	m := c.chip.Memory()
	for i := 0; i < e.npages; i++ {
		if m.PageVersion(int(e.pages[i])) != e.vers[i] {
			return false
		}
	}
	return true
}

// revalidateBlock re-reads the block's words through the access-checked
// path and compares them with the compiled form. Version bumps from
// ownership transitions (every suspend/resume cycle) change no bytes, so
// this turns them into a cheap word compare instead of a recompile. A
// failed read (permissions revoked) or changed word invalidates.
func (c *CPU) revalidateBlock(e *blockEntry) bool {
	phys := e.key - 1
	for i := 0; i < e.n; i++ {
		got, err := c.chip.CPUReadWord(c.ID, phys+uint32(i*isa.WordSize))
		if err != nil || got != e.words[i] {
			return false
		}
	}
	m := c.chip.Memory()
	for i := 0; i < e.npages; i++ {
		e.vers[i] = m.PageVersion(int(e.pages[i]))
	}
	return true
}

// runBlock executes a compiled block. It returns the number of
// instructions retired — the caller advances the virtual clock once for
// all of them — and the fault, if any. A mid-block store that touches the
// block's own pages stops execution after the store (its effects are
// architecturally complete) and lets the interpreter refetch from the next
// instruction.
func (c *CPU) runBlock(e *blockEntry) (int, error) {
	atomic.AddInt64(&c.tstats.execs, 1)
	executed := 0
	var rerr error
	for i := 0; i < e.nsteps; i++ {
		s := &e.recs[e.stepIdx[i]]
		k, err := s.run(c, e, s)
		executed += k
		if err != nil {
			rerr = err
			break
		}
		if s.wr && !c.blockPagesCurrent(e) {
			atomic.AddInt64(&c.tstats.bailouts, 1)
			if e.bails++; e.bails >= maxBlockBails {
				e.poison = true
			}
			break
		}
	}
	atomic.AddInt64(&c.tstats.instrs, int64(executed))
	return executed, rerr
}

// isBlockEnd reports whether op terminates a basic block (control
// transfer; SVC and HALT are excluded from blocks before this is asked).
func isBlockEnd(op isa.Opcode) bool {
	switch op {
	case isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJc, isa.OpJnc, isa.OpJn,
		isa.OpJmpr, isa.OpCall, isa.OpRet:
		return true
	}
	return false
}

// branchCond returns the flag predicate of a conditional branch, or nil
// for other opcodes. The returned funcs capture nothing, so they are
// shared across all compilations.
func branchCond(op isa.Opcode) func(*CPU) bool {
	switch op {
	case isa.OpJz:
		return condZ
	case isa.OpJnz:
		return condNZ
	case isa.OpJc:
		return condC
	case isa.OpJnc:
		return condNC
	case isa.OpJn:
		return condN
	}
	return nil
}

func condZ(c *CPU) bool  { return c.FlagZ }
func condNZ(c *CPU) bool { return !c.FlagZ }
func condC(c *CPU) bool  { return c.FlagC }
func condNC(c *CPU) bool { return !c.FlagC }
func condN(c *CPU) bool  { return c.FlagN }

// compileBlock scans the basic block whose leader is at PAL-relative pc
// (physical phys), compiles it into the direct-mapped slot for phys, and
// returns the entry. A leader with nothing compilable (SVC or HALT first,
// or an undecodable word) is negatively cached as poisoned so the hot
// loop stops re-scanning it.
func (c *CPU) compileBlock(pc, phys uint32) *blockEntry {
	// The scan buffers are fixed-size locals: a compile must stay cheap
	// enough that short-lived machines (experiment sweeps build them by
	// the dozen) don't pay an allocation tax per launch.
	var (
		ins [maxBlockInstrs]isa.Instruction
		pcs [maxBlockInstrs]uint32
		n   int
	)
	scanPC := pc
	for n < maxBlockInstrs {
		if int(scanPC)+isa.WordSize > c.region.Size {
			break
		}
		in, err := c.fetchSlow(c.region.Base + scanPC)
		if err != nil {
			break
		}
		if in.Op == isa.OpSvc || in.Op == isa.OpHalt {
			break
		}
		ins[n], pcs[n] = in, scanPC
		n++
		scanPC += isa.WordSize
		if isBlockEnd(in.Op) {
			break
		}
	}

	idx := (phys >> 2) & (blockCacheSize - 1)
	e := c.bcache[idx]
	if e == nil {
		e = new(blockEntry)
		c.bcache[idx] = e
	}
	// Recycle the slot's record slice: an invalidation-driven recompile of
	// a same-sized block allocates nothing.
	recs := e.recs[:0]
	*e = blockEntry{key: phys + 1, base: c.region.Base, size: c.region.Size, startPC: pc}
	if n == 0 {
		e.poison = true
		return e
	}

	e.n = n
	for i := 0; i < n; i++ {
		e.words[i] = ins[i].Encode()
	}
	p0 := int32(phys / mem.PageSize)
	pLast := int32((phys + uint32(n*isa.WordSize) - 1) / mem.PageSize)
	e.pages[0], e.npages = p0, 1
	if pLast != p0 {
		e.pages[1], e.npages = pLast, 2
	}
	m := c.chip.Memory()
	for i := 0; i < e.npages; i++ {
		e.vers[i] = m.PageVersion(int(e.pages[i]))
	}

	// At most n/2 fused records follow the n per-instruction ones, so one
	// allocation covers the worst case.
	if cap(recs) < n+n/2 {
		recs = make([]tstep, n, n+n/2)
	} else {
		recs = recs[:n]
	}
	for i := 0; i < n; i++ {
		recs[i] = stepFor(ins[i], pcs[i])
	}
	ns := 0
	for i := 0; i < n; i++ {
		in, ipc := ins[i], pcs[i]
		if i+1 < n {
			nx := ins[i+1]
			if in.Op == isa.OpCmp && branchCond(nx.Op) != nil {
				recs = append(recs, fuseCmpBranch(in, nx, ipc))
				e.stepIdx[ns] = int16(len(recs) - 1)
				ns++
				i++
				continue
			}
			if fusablePair(in, nx) &&
				// Leave a cmp for the cmp+branch fusion behind it.
				!(nx.Op == isa.OpCmp && i+2 < n && branchCond(ins[i+2].Op) != nil) {
				recs = append(recs, fusePair(recs, i, i+1))
				e.stepIdx[ns] = int16(len(recs) - 1)
				ns++
				i++
				continue
			}
		}
		e.stepIdx[ns] = int16(i)
		ns++
	}
	e.recs = recs
	e.nsteps = ns
	atomic.AddInt64(&c.tstats.compiled, 1)
	return e
}

// fusablePair reports whether (a, b) may run as one superinstruction. A
// writing first half is never fusable: its store could overwrite b's word,
// and the staleness check only runs between steps. b must not be a
// control transfer (cmp+branch has its own fused form).
func fusablePair(a, b isa.Instruction) bool {
	if isBlockEnd(b.Op) || b.Op == isa.OpSvc || b.Op == isa.OpHalt {
		return false
	}
	switch a.Op {
	case isa.OpLoad: // load+op
		return isALU(b.Op)
	case isa.OpPop: // pop/pop, pop/push sequences
		return b.Op == isa.OpPop || b.Op == isa.OpPush
	}
	return false
}

// isALU reports the register-only ops a load may fuse with.
func isALU(op isa.Opcode) bool {
	switch op {
	case isa.OpMov, isa.OpLdi, isa.OpLui, isa.OpAddi, isa.OpAdd, isa.OpSub,
		isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpCmp, isa.OpNop:
		return true
	}
	return false
}

// fusePair chains the constituent steps at record indices i and j into one
// superinstruction, keeping per-constituent retirement exact: a fault in
// the second half reports the first as retired, exactly as the interpreter
// would.
func fusePair(recs []tstep, i, j int) tstep {
	return tstep{run: stepPair, n: recs[i].n + recs[j].n,
		wr: recs[i].wr || recs[j].wr, a: int16(i), b: int16(j)}
}

func stepPair(c *CPU, e *blockEntry, s *tstep) (int, error) {
	k, err := e.recs[s.a].exec(c, e)
	if err != nil {
		return k, err
	}
	k2, err := e.recs[s.b].exec(c, e)
	return k + k2, err
}

// fuseCmpBranch compiles the classic compare-and-branch superinstruction:
// flags are still set architecturally (the interpreter's cmp persists
// them), then the branch picks the target without a second dispatch.
func fuseCmpBranch(cmp, br isa.Instruction, pc uint32) tstep {
	return tstep{run: stepCmpBranch, n: 2, op: isa.OpCmp, op2: br.Op,
		ra: cmp.RA, rb: cmp.RB, pc: pc, next: pc + 2*isa.WordSize,
		imm: uint32(br.Imm), cond: branchCond(br.Op)}
}

func stepCmpBranch(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, isa.OpCmp)
	a, b := c.Regs[s.ra], c.Regs[s.rb]
	c.FlagZ = a == b
	c.FlagC = a < b
	c.FlagN = int32(a) < int32(b)
	c.retireStep(s.pc+isa.WordSize, s.op2)
	if s.cond(c) {
		c.PC = s.imm
	} else {
		c.PC = s.next
	}
	return 2, nil
}

// stepFor compiles one instruction into an operand record. Every step
// function assumes c.PC == s.pc on entry (the previous step's success path
// established it), touches PC only on success, and mirrors the
// interpreter's execute() case for its opcode exactly — including error
// values and the charge-before-execute contract (a faulting instruction
// retires).
func stepFor(in isa.Instruction, pc uint32) tstep {
	s := tstep{n: 1, op: in.Op, ra: in.RA, rb: in.RB,
		pc: pc, next: pc + isa.WordSize,
		imm: uint32(in.Imm), simm: uint32(int32(int16(in.Imm)))}
	switch in.Op {
	case isa.OpNop:
		s.run = stepNop
	case isa.OpMov:
		s.run = stepMov
	case isa.OpLdi:
		s.run = stepLdi
	case isa.OpLui:
		s.run = stepLui
	case isa.OpAddi:
		s.run = stepAddi
	case isa.OpAdd:
		s.run = stepAdd
	case isa.OpSub:
		s.run = stepSub
	case isa.OpMul:
		s.run = stepMul
	case isa.OpDivu:
		s.run = stepDivu
	case isa.OpRemu:
		s.run = stepRemu
	case isa.OpAnd:
		s.run = stepAnd
	case isa.OpOr:
		s.run = stepOr
	case isa.OpXor:
		s.run = stepXor
	case isa.OpShl:
		s.run = stepShl
	case isa.OpShr:
		s.run = stepShr
	case isa.OpLoad:
		s.run = stepLoad
	case isa.OpLoadb:
		s.run = stepLoadb
	case isa.OpStore:
		s.run, s.wr = stepStore, true
	case isa.OpStoreb:
		s.run, s.wr = stepStoreb, true
	case isa.OpCmp:
		s.run = stepCmp
	case isa.OpJmp:
		s.run = stepJmp
	case isa.OpJz, isa.OpJnz, isa.OpJc, isa.OpJnc, isa.OpJn:
		s.run, s.cond = stepBranch, branchCond(in.Op)
	case isa.OpJmpr:
		s.run = stepJmpr
	case isa.OpCall:
		s.run, s.wr = stepCall, true
	case isa.OpRet:
		s.run = stepRet
	case isa.OpPush:
		s.run, s.wr = stepPush, true
	case isa.OpPop:
		s.run = stepPop
	default:
		// isa.Decode validated the opcode, and SVC/HALT never enter
		// blocks; the defensive fallback faults exactly like the
		// interpreter's default.
		s.run = stepBadOp
	}
	return s
}

func stepNop(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.PC = s.next
	return 1, nil
}

func stepMov(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] = c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepLdi(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] = s.imm
	c.PC = s.next
	return 1, nil
}

func stepLui(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] = (c.Regs[s.ra] & 0xffff) | s.imm<<16
	c.PC = s.next
	return 1, nil
}

func stepAddi(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] += s.simm
	c.PC = s.next
	return 1, nil
}

func stepAdd(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] += c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepSub(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] -= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepMul(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] *= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepDivu(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if c.Regs[s.rb] == 0 {
		return 1, fmt.Errorf("%w: divide by zero at pc=%d", ErrFault, s.pc)
	}
	c.Regs[s.ra] /= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepRemu(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if c.Regs[s.rb] == 0 {
		return 1, fmt.Errorf("%w: remainder by zero at pc=%d", ErrFault, s.pc)
	}
	c.Regs[s.ra] %= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepAnd(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] &= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepOr(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] |= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepXor(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] ^= c.Regs[s.rb]
	c.PC = s.next
	return 1, nil
}

func stepShl(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] <<= c.Regs[s.rb] & 31
	c.PC = s.next
	return 1, nil
}

func stepShr(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.Regs[s.ra] >>= c.Regs[s.rb] & 31
	c.PC = s.next
	return 1, nil
}

func stepLoad(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	v, err := c.ReadWord(c.Regs[s.rb] + s.simm)
	if err != nil {
		return 1, err
	}
	c.Regs[s.ra] = v
	c.PC = s.next
	return 1, nil
}

func stepLoadb(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	b, err := c.LoadByte(c.Regs[s.rb] + s.simm)
	if err != nil {
		return 1, err
	}
	c.Regs[s.ra] = uint32(b)
	c.PC = s.next
	return 1, nil
}

func stepStore(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if err := c.WriteWord(c.Regs[s.rb]+s.simm, c.Regs[s.ra]); err != nil {
		return 1, err
	}
	c.PC = s.next
	return 1, nil
}

func stepStoreb(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if err := c.StoreByte(c.Regs[s.rb]+s.simm, byte(c.Regs[s.ra])); err != nil {
		return 1, err
	}
	c.PC = s.next
	return 1, nil
}

func stepCmp(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	a, b := c.Regs[s.ra], c.Regs[s.rb]
	c.FlagZ = a == b
	c.FlagC = a < b
	c.FlagN = int32(a) < int32(b)
	c.PC = s.next
	return 1, nil
}

func stepJmp(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.PC = s.imm
	return 1, nil
}

func stepBranch(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if s.cond(c) {
		c.PC = s.imm
	} else {
		c.PC = s.next
	}
	return 1, nil
}

func stepJmpr(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	c.PC = c.Regs[s.ra]
	return 1, nil
}

func stepCall(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if err := c.push(s.next); err != nil {
		return 1, err
	}
	c.PC = s.imm
	return 1, nil
}

func stepRet(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	v, err := c.pop()
	if err != nil {
		return 1, err
	}
	c.PC = v
	return 1, nil
}

func stepPush(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	if err := c.push(c.Regs[s.ra]); err != nil {
		return 1, err
	}
	c.PC = s.next
	return 1, nil
}

func stepPop(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	v, err := c.pop()
	if err != nil {
		return 1, err
	}
	c.Regs[s.ra] = v
	c.PC = s.next
	return 1, nil
}

func stepBadOp(c *CPU, _ *blockEntry, s *tstep) (int, error) {
	c.retireStep(s.pc, s.op)
	return 1, fmt.Errorf("%w: unimplemented opcode %v at pc=%d", ErrFault, s.op, s.pc)
}
