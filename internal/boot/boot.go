// Package boot models the static measured-boot chain of §2.1.1 — the
// "originally envisioned" TCG usage the paper contrasts SEA against: every
// layer loaded since power-on (BIOS, option ROMs, bootloader, kernel,
// modules) is measured into the static PCRs, and a verifier must assess
// the entire resulting list to trust the platform.
//
// The package exists for that contrast: experiments and examples use it to
// show how large the attested TCB is under trusted boot versus the single
// PAL measurement a late launch yields, which is the paper's motivation in
// one number.
package boot

import (
	"fmt"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/tpm"
)

// Standard static PCR assignments (TCG PC client conventions, simplified).
const (
	PCRFirmware   = 0 // BIOS/firmware code
	PCRConfig     = 1 // firmware configuration
	PCROptionROMs = 2 // peripheral firmware
	PCRBootloader = 4 // MBR/bootloader code
	PCRKernel     = 8 // OS kernel and modules (bootloader-measured)
)

// Component is one measured layer of the boot chain.
type Component struct {
	// PCR is the static register the component extends.
	PCR int
	// Name describes the layer ("BIOS v2.3", "GRUB stage2", ...).
	Name string
	// Code is the component image; its hash is the measurement.
	Code []byte
}

// Chain is an ordered boot sequence.
type Chain []Component

// TypicalChain returns a representative 2007 software stack: firmware,
// two option ROMs, bootloader, kernel, and a pile of modules — the layers
// §1 lists as each application's inherited TCB.
func TypicalChain() Chain {
	mk := func(pcr int, name string, size int, fill byte) Component {
		code := make([]byte, size)
		for i := range code {
			code[i] = fill ^ byte(i)
		}
		return Component{PCR: pcr, Name: name, Code: code}
	}
	chain := Chain{
		mk(PCRFirmware, "BIOS", 512<<10, 0x11),
		mk(PCRConfig, "BIOS configuration", 4<<10, 0x22),
		mk(PCROptionROMs, "NIC option ROM", 64<<10, 0x33),
		mk(PCROptionROMs, "storage option ROM", 48<<10, 0x44),
		mk(PCRBootloader, "bootloader", 32<<10, 0x55),
		mk(PCRKernel, "kernel", 4<<20, 0x66),
	}
	for i := 0; i < 12; i++ {
		chain = append(chain, mk(PCRKernel, fmt.Sprintf("module-%02d", i), 128<<10, byte(0x70+i)))
	}
	return chain
}

// Measure executes the chain against a TPM: each component is hashed and
// extended into its static PCR, and the returned log is what the platform
// presents to verifiers.
func (c Chain) Measure(chip *tpm.TPM) (attest.Log, error) {
	log := make(attest.Log, 0, len(c))
	for _, comp := range c {
		m := tpm.Measure(comp.Code)
		if _, err := chip.Extend(comp.PCR, m); err != nil {
			return nil, fmt.Errorf("boot: measuring %s: %w", comp.Name, err)
		}
		log = append(log, attest.Event{PCR: comp.PCR, Description: comp.Name, Measurement: m})
	}
	return log, nil
}

// PCRs returns the distinct static registers the chain touches, in first-
// appearance order — the selection a trusted-boot quote covers.
func (c Chain) PCRs() tpm.Selection {
	var sel tpm.Selection
	seen := map[int]bool{}
	for _, comp := range c {
		if !seen[comp.PCR] {
			seen[comp.PCR] = true
			sel = append(sel, comp.PCR)
		}
	}
	return sel
}

// TCBBytes sums the measured code — the amount of software a trusted-boot
// verifier must vouch for.
func (c Chain) TCBBytes() int {
	total := 0
	for _, comp := range c {
		total += len(comp.Code)
	}
	return total
}

// VerifyChainQuote is the verifier side of §2.1.1: validate the quote
// signature and nonce, check the log replays to the quoted composite, then
// insist every single component is on the known-good list. One
// unrecognized module anywhere in the stack — the situation that makes
// trusted boot unmanageable at scale — fails the whole platform. It
// returns the recognized component names in boot order.
func VerifyChainQuote(cert *attest.AIKCert, q *tpm.Quote, log attest.Log, nonce []byte, knownGood map[tpm.Digest]string) ([]string, error) {
	if err := tpm.VerifyQuote(cert.AIK, q); err != nil {
		return nil, fmt.Errorf("boot: quote signature: %w", err)
	}
	if string(q.Nonce) != string(nonce) {
		return nil, fmt.Errorf("boot: nonce mismatch")
	}
	finals := log.Replay()
	vals := make([]tpm.Digest, len(q.Selection))
	for i, idx := range q.Selection {
		vals[i] = finals[idx]
	}
	if tpm.CompositeDigest(q.Selection, vals) != q.Composite {
		return nil, fmt.Errorf("boot: log does not replay to quoted composite")
	}
	names := make([]string, 0, len(log))
	for _, e := range log {
		name, ok := knownGood[e.Measurement]
		if !ok {
			return nil, fmt.Errorf("boot: unrecognized component %q in the chain — platform untrusted", e.Description)
		}
		names = append(names, name)
	}
	return names, nil
}
