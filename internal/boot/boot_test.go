package boot

import (
	"strings"
	"testing"

	"minimaltcb/internal/attest"
	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

func newChip(t *testing.T) *tpm.TPM {
	t.Helper()
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := tpm.New(clock, bus, tpm.Config{KeyBits: 1024, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func approveAll(c Chain) map[tpm.Digest]string {
	m := map[tpm.Digest]string{}
	for _, comp := range c {
		m[tpm.Measure(comp.Code)] = comp.Name
	}
	return m
}

func TestTrustedBootHappyPath(t *testing.T) {
	chip := newChip(t)
	chain := TypicalChain()
	log, err := chain.Measure(chip)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := attest.NewPrivacyCA(31, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cert, _ := ca.Certify("tb-platform", chip.AIKPublic())
	nonce := []byte("tb nonce")
	q, err := chip.QuoteCommand(chain.PCRs(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	names, err := VerifyChainQuote(cert, q, log, nonce, approveAll(chain))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(chain) {
		t.Fatalf("%d names for %d components", len(names), len(chain))
	}
	if names[0] != "BIOS" {
		t.Fatalf("first component %q", names[0])
	}
}

func TestTrustedBootOneRogueModuleFailsEverything(t *testing.T) {
	chip := newChip(t)
	chain := TypicalChain()
	known := approveAll(chain)
	// One kernel module is replaced post-approval.
	chain[len(chain)-1].Code = []byte("rootkit.ko")
	log, err := chain.Measure(chip)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := attest.NewPrivacyCA(31, 1024)
	cert, _ := ca.Certify("tb-platform", chip.AIKPublic())
	nonce := []byte("tb nonce 2")
	q, _ := chip.QuoteCommand(chain.PCRs(), nonce)
	if _, err := VerifyChainQuote(cert, q, log, nonce, known); err == nil {
		t.Fatal("platform with rogue module verified")
	} else if !strings.Contains(err.Error(), "unrecognized component") {
		t.Fatalf("error %v", err)
	}
}

func TestTrustedBootLogOmissionDetected(t *testing.T) {
	chip := newChip(t)
	chain := TypicalChain()
	fullLog, err := chain.Measure(chip)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := attest.NewPrivacyCA(31, 1024)
	cert, _ := ca.Certify("tb-platform", chip.AIKPublic())
	nonce := []byte("tb nonce 3")
	q, _ := chip.QuoteCommand(chain.PCRs(), nonce)
	// The platform hides one module from the log it presents: replay no
	// longer matches the quoted PCRs.
	trimmed := fullLog[:len(fullLog)-1]
	if _, err := VerifyChainQuote(cert, q, trimmed, nonce, approveAll(chain)); err == nil {
		t.Fatal("trimmed log verified")
	}
}

// The paper's motivation in one comparison: the software a verifier must
// vouch for under trusted boot versus under a late-launched PAL.
func TestTCBSizeContrast(t *testing.T) {
	chain := TypicalChain()
	trustedBootTCB := chain.TCBBytes()
	palTCB := 64 << 10 // the largest possible PAL
	if trustedBootTCB < 80*palTCB {
		t.Fatalf("trusted-boot TCB %d bytes not dramatically above the %d-byte PAL cap",
			trustedBootTCB, palTCB)
	}
	// And the verifier's policy burden: one hash per component (and one
	// per update of each!) versus one hash per PAL.
	if len(chain) < 10 {
		t.Fatalf("typical chain only %d components", len(chain))
	}
}

func TestChainPCRSelection(t *testing.T) {
	sel := TypicalChain().PCRs()
	want := map[int]bool{PCRFirmware: true, PCRConfig: true, PCROptionROMs: true,
		PCRBootloader: true, PCRKernel: true}
	if len(sel) != len(want) {
		t.Fatalf("selection %v", sel)
	}
	for _, idx := range sel {
		if !want[idx] {
			t.Fatalf("unexpected PCR %d", idx)
		}
	}
}
