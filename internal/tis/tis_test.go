package tis

import (
	"bytes"
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"encoding/binary"
	"testing"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

func testDriver(t *testing.T, sePCRs int) (*Driver, *tpm.TPM) {
	t.Helper()
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := tpm.New(clock, bus, tpm.Config{KeyBits: 1024, Seed: 4, NumSePCRs: sePCRs})
	if err != nil {
		t.Fatal(err)
	}
	return NewDriver(chip), chip
}

// exec runs a command and asserts the return code.
func exec(t *testing.T, d *Driver, ordinal uint32, params []byte, wantRC uint32) []byte {
	t.Helper()
	resp, err := d.Execute(EncodeRequest(ordinal, params))
	if err != nil {
		t.Fatal(err)
	}
	rc, body, err := DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if rc != wantRC {
		t.Fatalf("ordinal %#x: rc=%d, want %d", ordinal, rc, wantRC)
	}
	return body
}

func TestFraming(t *testing.T) {
	req := EncodeRequest(OrdPCRRead, []byte{1, 2, 3})
	ord, params, err := DecodeRequest(req)
	if err != nil || ord != OrdPCRRead || !bytes.Equal(params, []byte{1, 2, 3}) {
		t.Fatalf("%v %v %v", ord, params, err)
	}
	resp := EncodeResponse(RCSuccess, []byte{9})
	rc, body, err := DecodeResponse(resp)
	if err != nil || rc != RCSuccess || body[0] != 9 {
		t.Fatalf("%v %v %v", rc, body, err)
	}
}

func TestFramingErrors(t *testing.T) {
	if _, _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	// Wrong tag.
	bad := EncodeRequest(OrdPCRRead, nil)
	bad[0] = 0xff
	if _, _, err := DecodeRequest(bad); err == nil {
		t.Fatal("bad tag accepted")
	}
	// Lying size field.
	bad = EncodeRequest(OrdPCRRead, nil)
	binary.BigEndian.PutUint32(bad[2:6], 99)
	if _, _, err := DecodeRequest(bad); err == nil {
		t.Fatal("bad size accepted")
	}
	// Response-side symmetry.
	if _, _, err := DecodeResponse([]byte{1}); err == nil {
		t.Fatal("short response accepted")
	}
	if _, _, err := DecodeResponse(EncodeRequest(OrdPCRRead, nil)); err == nil {
		t.Fatal("request tag accepted as response")
	}
}

func TestExtendAndRead(t *testing.T) {
	d, chip := testDriver(t, 0)
	meas := tpm.Measure([]byte("event"))
	body := exec(t, d, OrdExtend, ExtendParams(5, meas), RCSuccess)
	direct, _ := chip.PCRValue(5)
	if !bytes.Equal(body, direct[:]) {
		t.Fatal("wire extend result differs from chip state")
	}
	body = exec(t, d, OrdPCRRead, PCRReadParams(5), RCSuccess)
	if !bytes.Equal(body, direct[:]) {
		t.Fatal("wire read differs from chip state")
	}
	exec(t, d, OrdExtend, ExtendParams(99, meas), RCFail)
	exec(t, d, OrdExtend, []byte{1}, RCBadParam)
	exec(t, d, OrdPCRRead, nil, RCBadParam)
}

func TestGetRandomWire(t *testing.T) {
	d, _ := testDriver(t, 0)
	body := exec(t, d, OrdGetRandom, GetRandomParams(32), RCSuccess)
	if binary.BigEndian.Uint32(body[:4]) != 32 || len(body) != 36 {
		t.Fatalf("body %d bytes", len(body))
	}
	exec(t, d, OrdGetRandom, GetRandomParams(1<<21), RCBadParam)
	exec(t, d, OrdGetRandom, []byte{1, 2}, RCBadParam)
}

func TestSealUnsealWire(t *testing.T) {
	d, _ := testDriver(t, 0)
	secret := []byte("wire-level secret")
	blob := exec(t, d, OrdSeal, SealParams(tpm.Selection{0, 17}, secret), RCSuccess)
	got := exec(t, d, OrdUnseal, blob, RCSuccess)
	if !bytes.Equal(got, secret) {
		t.Fatalf("unsealed %q", got)
	}
	// PCR change breaks release, via the wire too.
	exec(t, d, OrdExtend, ExtendParams(0, tpm.Measure([]byte("x"))), RCSuccess)
	exec(t, d, OrdUnseal, blob, RCFail)
	// Malformed seal params.
	exec(t, d, OrdSeal, []byte{0}, RCBadParam)
	exec(t, d, OrdSeal, append(encodeSelection(tpm.Selection{0}), 0, 0, 0, 9), RCBadParam)
}

func TestQuoteWire(t *testing.T) {
	d, chip := testDriver(t, 0)
	nonce := []byte("wire nonce")
	body := exec(t, d, OrdQuote, QuoteParams(tpm.Selection{17}, nonce), RCSuccess)
	composite, sig, err := ParseQuoteResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the quote and verify with the chip's AIK.
	q := &tpm.Quote{Composite: composite, Nonce: nonce, Signature: sig, SePCRHandle: -1}
	if err := tpm.VerifyQuote(chip.AIKPublic(), q); err != nil {
		t.Fatalf("wire quote rejected: %v", err)
	}
	exec(t, d, OrdQuote, []byte{}, RCBadParam)
}

func TestSePCRWire(t *testing.T) {
	d, chip := testDriver(t, 2)
	meas := tpm.Measure([]byte("pal"))
	h, err := chip.AllocateSePCR(3, meas)
	if err != nil {
		t.Fatal(err)
	}
	// Extend over the wire with the right owner.
	params := make([]byte, 8)
	binary.BigEndian.PutUint32(params[0:4], uint32(h))
	binary.BigEndian.PutUint32(params[4:8], 3)
	params = append(params, meas[:]...)
	exec(t, d, OrdSePCRExtend, params, RCSuccess)
	// Wrong owner fails at the chip, surfacing as RCFail.
	bad := make([]byte, 8)
	binary.BigEndian.PutUint32(bad[0:4], uint32(h))
	binary.BigEndian.PutUint32(bad[4:8], 7)
	bad = append(bad, meas[:]...)
	exec(t, d, OrdSePCRExtend, bad, RCFail)

	chip.ReleaseSePCR(h, 3)
	// Quote over the wire, then the register is Free.
	qp := make([]byte, 8)
	binary.BigEndian.PutUint32(qp[0:4], uint32(h))
	binary.BigEndian.PutUint32(qp[4:8], 2)
	qp = append(qp, 'n', '1')
	body := exec(t, d, OrdSePCRQuote, qp, RCSuccess)
	composite, sig, err := ParseQuoteResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	digest := sha1.Sum(append(append([]byte("QUOT"), composite[:]...), 'n', '1'))
	if err := rsa.VerifyPKCS1v15(chip.AIKPublic(), crypto.SHA1, digest[:], sig); err != nil {
		t.Fatalf("wire sePCR quote rejected: %v", err)
	}
	st, _ := chip.SePCRStateOf(h)
	if st != tpm.SePCRFree {
		t.Fatalf("state %v after wire quote", st)
	}

	// TPM_SEPCR_Free over the wire.
	h2, _ := chip.AllocateSePCR(0, meas)
	chip.ReleaseSePCR(h2, 0)
	fp := make([]byte, 4)
	binary.BigEndian.PutUint32(fp, uint32(h2))
	exec(t, d, OrdSePCRFree, fp, RCSuccess)
	exec(t, d, OrdSePCRFree, fp, RCFail) // already Free
	exec(t, d, OrdSePCRFree, []byte{1}, RCBadParam)
}

func TestUnknownOrdinal(t *testing.T) {
	d, _ := testDriver(t, 0)
	exec(t, d, 0x12345678, nil, RCBadOrdinal)
}

func TestParseQuoteResponseErrors(t *testing.T) {
	if _, _, err := ParseQuoteResponse([]byte{1, 2}); err == nil {
		t.Fatal("short response parsed")
	}
	bad := make([]byte, tpm.DigestSize+4+2)
	binary.BigEndian.PutUint32(bad[tpm.DigestSize:], 99)
	if _, _, err := ParseQuoteResponse(bad); err == nil {
		t.Fatal("size-lying response parsed")
	}
}
