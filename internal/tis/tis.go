// Package tis implements a byte-level command interface to the software
// TPM, in the spirit of the TPM v1.2 command transport the paper's
// platforms use (TPM Main Specification part 3 framing over the TIS
// interface): big-endian request/response frames with a tag, a parameter
// size and an ordinal or return code.
//
// The higher layers of this repository call the TPM's Go API directly; this
// package exists for the parts of the system that genuinely exchange bytes
// — the remote-attestation service and tools that want driver-level access
// — and as a contract test that every TPM feature is reachable through a
// serialized interface.
package tis

import (
	"encoding/binary"
	"errors"
	"fmt"

	"minimaltcb/internal/tpm"
)

// Request/response tags (TPM 1.2 values).
const (
	TagRequest  = 0x00C1 // TPM_TAG_RQU_COMMAND
	TagResponse = 0x00C4 // TPM_TAG_RSP_COMMAND
)

// Ordinals for the implemented commands. Values for the standard commands
// match TPM 1.2; the sePCR family uses a vendor-specific range.
const (
	OrdExtend    = 0x00000014
	OrdPCRRead   = 0x00000015
	OrdQuote     = 0x00000016
	OrdSeal      = 0x00000017
	OrdUnseal    = 0x00000018
	OrdGetRandom = 0x00000046

	OrdSePCRExtend = 0x20000001
	OrdSePCRQuote  = 0x20000002
	OrdSePCRFree   = 0x20000003
)

// Return codes.
const (
	RCSuccess    = 0
	RCBadTag     = 30
	RCBadOrdinal = 10
	RCFail       = 9
	RCBadParam   = 3
)

// headerSize is tag(2) + paramSize(4) + ordinal/returncode(4).
const headerSize = 10

// Errors for malformed frames.
var (
	ErrShortFrame = errors.New("tis: frame shorter than header")
	ErrBadSize    = errors.New("tis: paramSize disagrees with frame length")
)

// EncodeRequest frames a command.
func EncodeRequest(ordinal uint32, params []byte) []byte {
	out := make([]byte, headerSize+len(params))
	binary.BigEndian.PutUint16(out[0:2], TagRequest)
	binary.BigEndian.PutUint32(out[2:6], uint32(len(out)))
	binary.BigEndian.PutUint32(out[6:10], ordinal)
	copy(out[headerSize:], params)
	return out
}

// DecodeRequest validates and splits a command frame.
func DecodeRequest(frame []byte) (ordinal uint32, params []byte, err error) {
	if len(frame) < headerSize {
		return 0, nil, ErrShortFrame
	}
	if binary.BigEndian.Uint16(frame[0:2]) != TagRequest {
		return 0, nil, fmt.Errorf("tis: bad request tag %#x", binary.BigEndian.Uint16(frame[0:2]))
	}
	if int(binary.BigEndian.Uint32(frame[2:6])) != len(frame) {
		return 0, nil, ErrBadSize
	}
	return binary.BigEndian.Uint32(frame[6:10]), frame[headerSize:], nil
}

// EncodeResponse frames a response.
func EncodeResponse(rc uint32, params []byte) []byte {
	out := make([]byte, headerSize+len(params))
	binary.BigEndian.PutUint16(out[0:2], TagResponse)
	binary.BigEndian.PutUint32(out[2:6], uint32(len(out)))
	binary.BigEndian.PutUint32(out[6:10], rc)
	copy(out[headerSize:], params)
	return out
}

// DecodeResponse validates and splits a response frame.
func DecodeResponse(frame []byte) (rc uint32, params []byte, err error) {
	if len(frame) < headerSize {
		return 0, nil, ErrShortFrame
	}
	if binary.BigEndian.Uint16(frame[0:2]) != TagResponse {
		return 0, nil, fmt.Errorf("tis: bad response tag %#x", binary.BigEndian.Uint16(frame[0:2]))
	}
	if int(binary.BigEndian.Uint32(frame[2:6])) != len(frame) {
		return 0, nil, ErrBadSize
	}
	return binary.BigEndian.Uint32(frame[6:10]), frame[headerSize:], nil
}

// Driver dispatches framed commands to a TPM instance, as the kernel's TPM
// driver would through the TIS MMIO window.
type Driver struct {
	chip *tpm.TPM
}

// NewDriver binds a driver to a chip.
func NewDriver(chip *tpm.TPM) *Driver { return &Driver{chip: chip} }

// Execute runs one framed command and returns the framed response. Framing
// errors surface as Go errors; TPM-level failures surface as non-zero
// return codes in a well-formed response, as on real hardware.
func (d *Driver) Execute(frame []byte) ([]byte, error) {
	ordinal, params, err := DecodeRequest(frame)
	if err != nil {
		return nil, err
	}
	rc, out := d.dispatch(ordinal, params)
	return EncodeResponse(rc, out), nil
}

// dispatch implements each ordinal's parameter layout.
func (d *Driver) dispatch(ordinal uint32, p []byte) (uint32, []byte) {
	switch ordinal {
	case OrdExtend:
		// [pcrIndex:4][digest:20]
		if len(p) != 4+tpm.DigestSize {
			return RCBadParam, nil
		}
		var digest tpm.Digest
		copy(digest[:], p[4:])
		v, err := d.chip.Extend(int(binary.BigEndian.Uint32(p[0:4])), digest)
		if err != nil {
			return RCFail, nil
		}
		return RCSuccess, v[:]

	case OrdPCRRead:
		// [pcrIndex:4]
		if len(p) != 4 {
			return RCBadParam, nil
		}
		v, err := d.chip.PCRRead(int(binary.BigEndian.Uint32(p[0:4])))
		if err != nil {
			return RCFail, nil
		}
		return RCSuccess, v[:]

	case OrdGetRandom:
		// [bytesRequested:4] -> [randomBytesSize:4][bytes]
		if len(p) != 4 {
			return RCBadParam, nil
		}
		n := int(binary.BigEndian.Uint32(p[0:4]))
		if n > 1<<20 {
			return RCBadParam, nil
		}
		b, err := d.chip.GetRandom(n)
		if err != nil {
			return RCFail, nil
		}
		out := make([]byte, 4+len(b))
		binary.BigEndian.PutUint32(out[0:4], uint32(len(b)))
		copy(out[4:], b)
		return RCSuccess, out

	case OrdSeal:
		// [nsel:2][sel...][dataSize:4][data] -> [blob]
		sel, rest, ok := parseSelection(p)
		if !ok || len(rest) < 4 {
			return RCBadParam, nil
		}
		n := int(binary.BigEndian.Uint32(rest[0:4]))
		if len(rest) != 4+n {
			return RCBadParam, nil
		}
		blob, err := d.chip.Seal(sel, rest[4:])
		if err != nil {
			return RCFail, nil
		}
		return RCSuccess, blob

	case OrdUnseal:
		// [blob] -> [data]
		data, err := d.chip.Unseal(p)
		if err != nil {
			return RCFail, nil
		}
		return RCSuccess, data

	case OrdQuote:
		// [nsel:2][sel...][nonceSize:4][nonce] ->
		// [composite:20][sigSize:4][sig]
		sel, rest, ok := parseSelection(p)
		if !ok || len(rest) < 4 {
			return RCBadParam, nil
		}
		n := int(binary.BigEndian.Uint32(rest[0:4]))
		if len(rest) != 4+n {
			return RCBadParam, nil
		}
		q, err := d.chip.QuoteCommand(sel, rest[4:])
		if err != nil {
			return RCFail, nil
		}
		out := make([]byte, tpm.DigestSize+4+len(q.Signature))
		copy(out, q.Composite[:])
		binary.BigEndian.PutUint32(out[tpm.DigestSize:], uint32(len(q.Signature)))
		copy(out[tpm.DigestSize+4:], q.Signature)
		return RCSuccess, out

	case OrdSePCRExtend:
		// [handle:4][owner:4][digest:20]
		if len(p) != 8+tpm.DigestSize {
			return RCBadParam, nil
		}
		var digest tpm.Digest
		copy(digest[:], p[8:])
		v, err := d.chip.SePCRExtend(
			int(binary.BigEndian.Uint32(p[0:4])),
			int(binary.BigEndian.Uint32(p[4:8])), digest)
		if err != nil {
			return RCFail, nil
		}
		return RCSuccess, v[:]

	case OrdSePCRQuote:
		// [handle:4][nonceSize:4][nonce] -> [value:20][sigSize:4][sig]
		if len(p) < 8 {
			return RCBadParam, nil
		}
		n := int(binary.BigEndian.Uint32(p[4:8]))
		if len(p) != 8+n {
			return RCBadParam, nil
		}
		q, err := d.chip.QuoteSePCR(int(binary.BigEndian.Uint32(p[0:4])), p[8:])
		if err != nil {
			return RCFail, nil
		}
		out := make([]byte, tpm.DigestSize+4+len(q.Signature))
		copy(out, q.Composite[:])
		binary.BigEndian.PutUint32(out[tpm.DigestSize:], uint32(len(q.Signature)))
		copy(out[tpm.DigestSize+4:], q.Signature)
		return RCSuccess, out

	case OrdSePCRFree:
		// [handle:4]
		if len(p) != 4 {
			return RCBadParam, nil
		}
		if err := d.chip.FreeSePCR(int(binary.BigEndian.Uint32(p[0:4]))); err != nil {
			return RCFail, nil
		}
		return RCSuccess, nil
	}
	return RCBadOrdinal, nil
}

// parseSelection reads [nsel:2][index:1...] and returns the remainder.
func parseSelection(p []byte) (tpm.Selection, []byte, bool) {
	if len(p) < 2 {
		return nil, nil, false
	}
	n := int(binary.BigEndian.Uint16(p[0:2]))
	if len(p) < 2+n {
		return nil, nil, false
	}
	sel := make(tpm.Selection, n)
	for i := 0; i < n; i++ {
		sel[i] = int(p[2+i])
	}
	return sel, p[2+n:], true
}

// Helper encoders for clients.

// ExtendParams builds OrdExtend parameters.
func ExtendParams(pcr int, digest tpm.Digest) []byte {
	out := make([]byte, 4+tpm.DigestSize)
	binary.BigEndian.PutUint32(out[0:4], uint32(pcr))
	copy(out[4:], digest[:])
	return out
}

// PCRReadParams builds OrdPCRRead parameters.
func PCRReadParams(pcr int) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(pcr))
	return out
}

// GetRandomParams builds OrdGetRandom parameters.
func GetRandomParams(n int) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(n))
	return out
}

// SealParams builds OrdSeal parameters.
func SealParams(sel tpm.Selection, data []byte) []byte {
	out := encodeSelection(sel)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(data)))
	out = append(out, l[:]...)
	return append(out, data...)
}

// QuoteParams builds OrdQuote parameters.
func QuoteParams(sel tpm.Selection, nonce []byte) []byte {
	out := encodeSelection(sel)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(nonce)))
	out = append(out, l[:]...)
	return append(out, nonce...)
}

func encodeSelection(sel tpm.Selection) []byte {
	out := make([]byte, 2, 2+len(sel))
	binary.BigEndian.PutUint16(out, uint16(len(sel)))
	for _, idx := range sel {
		out = append(out, byte(idx))
	}
	return out
}

// ParseQuoteResponse splits an OrdQuote/OrdSePCRQuote response body.
func ParseQuoteResponse(p []byte) (composite tpm.Digest, sig []byte, err error) {
	if len(p) < tpm.DigestSize+4 {
		return tpm.Digest{}, nil, fmt.Errorf("tis: short quote response")
	}
	copy(composite[:], p[:tpm.DigestSize])
	n := int(binary.BigEndian.Uint32(p[tpm.DigestSize:]))
	if len(p) != tpm.DigestSize+4+n {
		return tpm.Digest{}, nil, fmt.Errorf("tis: quote response size mismatch")
	}
	return composite, p[tpm.DigestSize+4:], nil
}
