package lpc

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"minimaltcb/internal/sim"
)

// almostEqual allows 0.5% slack for per-byte rounding in the cost model.
func almostEqual(got, want time.Duration) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	tol := want / 200
	if tol < 10*time.Microsecond {
		tol = 10 * time.Microsecond
	}
	return diff <= tol
}

// The LongWait profile must reproduce the paper's Table 1 dc5750 column.
func TestLongWaitMatchesTable1(t *testing.T) {
	tm := LongWait()
	cases := map[int]time.Duration{
		0:     0,
		4096:  11940 * time.Microsecond,
		8192:  22980 * time.Microsecond,
		16384: 45050 * time.Microsecond,
		32768: 89210 * time.Microsecond,
		65536: 177520 * time.Microsecond,
	}
	for n, want := range cases {
		got := tm.HashTransferCost(n)
		if !almostEqual(got, want) {
			t.Errorf("LongWait %d bytes: got %v, want ≈%v", n, got, want)
		}
	}
}

// The FullSpeed profile must reproduce the Tyan n3600R column.
func TestFullSpeedMatchesTable1(t *testing.T) {
	tm := FullSpeed()
	cases := map[int]time.Duration{
		4096:  560 * time.Microsecond,
		8192:  1110 * time.Microsecond,
		16384: 2210 * time.Microsecond,
		32768: 4410 * time.Microsecond,
		65536: 8820 * time.Microsecond,
	}
	for n, want := range cases {
		got := tm.HashTransferCost(n)
		if !almostEqual(got, want) {
			t.Errorf("FullSpeed %d bytes: got %v, want ≈%v", n, got, want)
		}
	}
}

func TestValidateRejectsSuperluminalBus(t *testing.T) {
	tm := Timing{HashDataPerKB: 10 * time.Microsecond} // ~100 MB/s
	if err := tm.Validate(); err == nil {
		t.Fatal("bus faster than LPC ceiling validated")
	}
	if err := (Timing{}).Validate(); err == nil {
		t.Fatal("zero per-byte cost validated")
	}
	if err := FullSpeed().Validate(); err != nil {
		t.Fatalf("FullSpeed invalid: %v", err)
	}
	if err := LongWait().Validate(); err != nil {
		t.Fatalf("LongWait invalid: %v", err)
	}
}

func TestHashTransferChargesClock(t *testing.T) {
	clock := sim.NewClock()
	bus := NewBus(clock, FullSpeed())
	d := bus.TransferHash(make([]byte, 65536))
	if clock.Now() != d {
		t.Fatalf("clock %v != returned %v", clock.Now(), d)
	}
	if !almostEqual(d, 8820*time.Microsecond) {
		t.Fatalf("64KB transfer = %v", d)
	}
	if bus.Transferred != 65536 {
		t.Fatalf("Transferred = %d", bus.Transferred)
	}
}

func TestZeroLengthTransferIsFree(t *testing.T) {
	clock := sim.NewClock()
	bus := NewBus(clock, LongWait())
	if d := bus.TransferHash(nil); d != 0 {
		t.Fatalf("empty transfer cost %v", d)
	}
	if clock.Now() != 0 {
		t.Fatalf("clock advanced %v", clock.Now())
	}
}

func TestCommandCost(t *testing.T) {
	clock := sim.NewClock()
	bus := NewBus(clock, FullSpeed())
	d := bus.Command(30, 20)
	want := FullSpeed().CommandOverhead + 50*FullSpeed().HashDataPerKB/1024
	if d != want {
		t.Fatalf("Command = %v, want %v", d, want)
	}
	if bus.Transferred != 50 {
		t.Fatalf("Transferred = %d", bus.Transferred)
	}
}

func TestCommandFallsBackToHashRate(t *testing.T) {
	// With CommandPerKB unset, ordinary commands pay the hash-data rate.
	tm := Timing{
		HashStartEnd:    time.Millisecond,
		HashDataPerKB:   1024 * time.Microsecond, // 1 µs/byte
		CommandOverhead: 0,
	}
	clock := sim.NewClock()
	bus := NewBus(clock, tm)
	if d := bus.Command(512, 512); d != 1024*time.Microsecond {
		t.Fatalf("fallback command cost %v, want 1.024ms", d)
	}
}

func TestLocality(t *testing.T) {
	bus := NewBus(sim.NewClock(), FullSpeed())
	if bus.Locality() != 0 {
		t.Fatalf("initial locality %d", bus.Locality())
	}
	if err := bus.SetLocality(4); err != nil {
		t.Fatal(err)
	}
	if bus.Locality() != 4 {
		t.Fatalf("locality %d after set", bus.Locality())
	}
	if err := bus.SetLocality(5); err == nil {
		t.Fatal("locality 5 accepted")
	}
	if err := bus.SetLocality(-1); err == nil {
		t.Fatal("locality -1 accepted")
	}
}

func TestHardwareLock(t *testing.T) {
	bus := NewBus(sim.NewClock(), FullSpeed())
	if bus.Holder() != -1 {
		t.Fatalf("initial holder %d", bus.Holder())
	}
	if err := bus.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := bus.Acquire(0); err != nil {
		t.Fatalf("re-acquire by holder: %v", err)
	}
	if err := bus.Acquire(1); !errors.Is(err, ErrLocked) {
		t.Fatalf("contended acquire: %v", err)
	}
	bus.Release(1) // non-holder release is a no-op
	if bus.Holder() != 0 {
		t.Fatal("non-holder release dropped the lock")
	}
	bus.Release(0)
	if err := bus.Acquire(1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// Property: transfer cost is monotone in size and exactly linear past zero.
func TestHashTransferLinearityProperty(t *testing.T) {
	tm := LongWait()
	f := func(a, b uint16) bool {
		na, nb := int(a)+1, int(b)+1
		ca, cb := tm.HashTransferCost(na), tm.HashTransferCost(nb)
		if na < nb && ca >= cb {
			return false
		}
		// Linearity: cost(na)+cost(nb) == cost(na+nb) + one extra
		// framing, up to 2 ns of integer-division rounding.
		sum := ca + cb
		joint := tm.HashTransferCost(na+nb) + tm.HashStartEnd
		diff := sum - joint
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2*time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
