// Package lpc models the Low Pin Count bus that connects the TPM to the
// rest of an x86 platform.
//
// Table 1 of the paper is, at heart, a measurement of this bus: SKINIT
// streams the entire SLB to the TPM as a TPM_HASH_START / TPM_HASH_DATA* /
// TPM_HASH_END command sequence, and the TPM is allowed to stall each
// command for the LPC "long wait" period. On the HP dc5750 the TPM does
// exactly that, turning a 3.8 ms best-case 64 KB transfer (at the 16.67 MB/s
// LPC ceiling) into 177.52 ms; on the TPM-less Tyan n3600R the same
// transfer takes 8.82 ms, which the paper takes as representative of a
// future full-bus-speed TPM. The Timing struct captures those two knobs —
// per-command data latency and fixed start/end framing — so each platform
// profile reproduces its measured line exactly.
package lpc

import (
	"errors"
	"fmt"
	"time"

	"minimaltcb/internal/sim"
)

// Timing parameterizes the bus + TPM-wait-state cost model.
type Timing struct {
	// HashStartEnd is the combined fixed cost of the TPM_HASH_START and
	// TPM_HASH_END commands framing a measured transfer.
	HashStartEnd time.Duration
	// HashDataPerKB is the effective cost of moving 1024 bytes of
	// TPM_HASH_DATA payload, including any long-wait cycles the TPM
	// inserts. Costs are accounted per KB because the per-byte cost is a
	// fraction of a nanosecond on a fast bus.
	HashDataPerKB time.Duration
	// CommandOverhead is the framing cost of one ordinary TPM command
	// (request out + response in), excluding the TPM's own compute time.
	CommandOverhead time.Duration
	// CommandPerKB is the per-KB payload cost of ordinary commands.
	// Unlike TPM_HASH_DATA, ordinary command payloads move at normal
	// LPC speed even on chips that wait-state the hash sequence; zero
	// falls back to HashDataPerKB.
	CommandPerKB time.Duration
	// BytesPerCommand is how many payload bytes one TPM_HASH_DATA carries
	// (the spec allows one to four); only used for reporting.
	BytesPerCommand int
}

// MaxLPCBandwidth is the theoretical ceiling of the LPC bus, 16.67 MB/s
// (Intel LPC interface specification 1.1). Profiles cannot beat it.
const MaxLPCBandwidth = 16.67e6

// FullSpeed returns the timing of a bus whose TPM inserts no wait states,
// i.e. the Tyan n3600R behaviour: ~0.01 ms framing + 0.1377 ms/KB.
func FullSpeed() Timing {
	return Timing{
		HashStartEnd:    5 * time.Microsecond,
		HashDataPerKB:   137700 * time.Nanosecond, // 0.1377 ms/KB
		CommandOverhead: 10 * time.Microsecond,
		CommandPerKB:    137700 * time.Nanosecond,
		BytesPerCommand: 4,
	}
}

// LongWait returns the timing of a bus whose TPM consumes most of the long
// wait cycle on every TPM_HASH_DATA command — the HP dc5750 behaviour:
// 0.901 ms framing + 2.75968 ms/KB, which reproduces the paper's
// 11.94/22.98/45.05/89.21/177.52 ms SKINIT ladder.
func LongWait() Timing {
	return Timing{
		HashStartEnd:    8965 * 100 * time.Nanosecond, // 0.8965 ms
		HashDataPerKB:   2759700 * time.Nanosecond,    // 2.7597 ms/KB
		CommandOverhead: 150 * time.Microsecond,
		CommandPerKB:    137700 * time.Nanosecond, // ordinary commands skip the long wait
		BytesPerCommand: 4,
	}
}

// Validate checks the timing is physically plausible: the data rate must
// not exceed the LPC ceiling.
func (t Timing) Validate() error {
	if t.HashDataPerKB <= 0 {
		return errors.New("lpc: non-positive per-KB cost")
	}
	rate := 1024 * float64(time.Second) / float64(t.HashDataPerKB)
	if rate > MaxLPCBandwidth {
		return fmt.Errorf("lpc: %.1f MB/s exceeds the 16.67 MB/s LPC ceiling", rate/1e6)
	}
	return nil
}

// HashTransferCost returns the virtual time to stream n bytes to the TPM
// via TPM_HASH_START/DATA/END. Zero bytes cost nothing: SKINIT of an empty
// SLB does not engage the hash sequence (Table 1's 0 KB row is ~0 ms).
func (t Timing) HashTransferCost(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return t.HashStartEnd + time.Duration(n)*t.HashDataPerKB/1024
}

// Bus is an LPC bus instance bound to a clock, with the hardware TPM-access
// lock of §5.4.5: with multiple CPUs running PALs concurrently, TPM access
// must be arbitrated in hardware rather than by (untrusted) software locks.
type Bus struct {
	clock    *sim.Clock
	timing   Timing
	locality int
	lockedBy int // CPU holding the TPM lock, or -1
	// Transferred accumulates total bytes moved, for reporting.
	Transferred int64
}

// ErrLocked is returned when a CPU attempts TPM access while another CPU
// holds the hardware lock.
var ErrLocked = errors.New("lpc: TPM bus locked by another CPU")

// NewBus creates a bus with the given timing on the given clock.
func NewBus(clock *sim.Clock, timing Timing) *Bus {
	return &Bus{clock: clock, timing: timing, lockedBy: -1}
}

// Timing returns the bus cost model.
func (b *Bus) Timing() Timing { return b.timing }

// Clock returns the clock the bus charges.
func (b *Bus) Clock() *sim.Clock { return b.clock }

// Locality returns the currently asserted TPM locality (0–4). Locality 4 is
// hardware-only: the CPU asserts it during late launch, which is what
// authorizes the dynamic-PCR reset.
func (b *Bus) Locality() int { return b.locality }

// SetLocality asserts a locality on the bus. Values outside 0–4 error.
func (b *Bus) SetLocality(l int) error {
	if l < 0 || l > 4 {
		return fmt.Errorf("lpc: invalid locality %d", l)
	}
	b.locality = l
	return nil
}

// Acquire takes the hardware TPM lock for cpu. Re-acquisition by the holder
// is idempotent; contention returns ErrLocked (the caller retries when the
// holder releases — §5.4.5's "all other CPUs learn that the TPM lock is set
// and wait").
func (b *Bus) Acquire(cpu int) error {
	if b.lockedBy != -1 && b.lockedBy != cpu {
		return fmt.Errorf("%w (held by CPU%d, wanted by CPU%d)", ErrLocked, b.lockedBy, cpu)
	}
	b.lockedBy = cpu
	return nil
}

// Release drops the hardware TPM lock if cpu holds it.
func (b *Bus) Release(cpu int) {
	if b.lockedBy == cpu {
		b.lockedBy = -1
	}
}

// Holder returns the CPU holding the TPM lock, or -1.
func (b *Bus) Holder() int { return b.lockedBy }

// TransferHash charges the clock for streaming data to the TPM with the
// TPM_HASH_* sequence and returns the elapsed bus time.
func (b *Bus) TransferHash(data []byte) time.Duration {
	d := b.timing.HashTransferCost(len(data))
	b.clock.Advance(d)
	b.Transferred += int64(len(data))
	return d
}

// Command charges the clock for an ordinary TPM command exchange of the
// given request and response payload sizes and returns the elapsed time.
// The TPM's own compute latency is charged separately by the TPM model.
func (b *Bus) Command(reqLen, respLen int) time.Duration {
	perKB := b.timing.CommandPerKB
	if perKB == 0 {
		perKB = b.timing.HashDataPerKB
	}
	d := b.timing.CommandOverhead + time.Duration(reqLen+respLen)*perKB/1024
	b.clock.Advance(d)
	b.Transferred += int64(reqLen + respLen)
	return d
}
