package attest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"

	"minimaltcb/internal/tpm"
)

// encodeChallenge renders ch as the gob byte stream a client would send.
func encodeChallenge(t *testing.T, ch Challenge) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func asTimeout(err error, te **TimeoutError) bool { return errors.As(err, te) }

// TestServeTimedOutConnectionDoesNotConsumeQuote pins the one-shot-quote
// fix: a connection whose exchange budget is exhausted while it waits for
// the serialized platform must fail WITHOUT the responder being invoked.
// sePCR quotes zero the register (QuoteSePCR transitions it to Free), so
// consuming one for a peer that has already been cut off would leave that
// register unattestable forever.
func TestServeTimedOutConnectionDoesNotConsumeQuote(t *testing.T) {
	tb := newTPMWithBus(t, 31, 2)
	chip := tb.chip

	// Two registers parked in the Quote state, as if two PALs had exited
	// cleanly and were awaiting attestation.
	meas := tpm.Measure([]byte("one-shot PAL"))
	var handles [2]int
	for i := range handles {
		h, err := chip.AllocateSePCR(0, meas)
		if err != nil {
			t.Fatal(err)
		}
		if err := chip.ReleaseSePCR(h, 0); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// The responder blocks on gate before touching the TPM, standing in
	// for a platform busy with another tenant's PAL. Each delivered quote
	// is announced on quoted: the TPM is externally serialized (Serve's
	// platform mutex), so the test needs an explicit happens-before edge
	// before it inspects sePCR state directly.
	gate := make(chan struct{})
	quoted := make(chan int, 4)
	respond := func(ch Challenge) (*Evidence, error) {
		<-gate
		q, err := chip.QuoteSePCR(ch.Handle, ch.Nonce)
		if err != nil {
			return nil, err
		}
		quoted <- ch.Handle
		return &Evidence{Cert: &AIKCert{}, Quote: q}, nil
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	const budget = 200 * time.Millisecond
	go Serve(l, respond, WithTimeout(budget))

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Connection 1 reaches the responder and parks on the gate, holding
	// the platform mutex.
	err1 := make(chan error, 1)
	go func() {
		_, err := Request(dial(), Challenge{Nonce: []byte("n1"), SePCR: true, Handle: handles[0]},
			WithTimeout(2*time.Second))
		err1 <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// Connection 2 queues behind it; by the time the mutex frees, its
	// whole exchange budget is gone.
	err2 := make(chan error, 1)
	go func() {
		_, err := Request(dial(), Challenge{Nonce: []byte("n2"), SePCR: true, Handle: handles[1]},
			WithTimeout(2*time.Second))
		err2 <- err
	}()
	time.Sleep(budget + 100*time.Millisecond)
	close(gate)

	if err := <-err2; err == nil {
		t.Fatal("timed-out connection still received evidence")
	}
	// Connection 1's evidence may or may not have made it out before its
	// own conn deadline; either way its exchange legitimately started and
	// its quote was taken.
	<-err1
	if h := <-quoted; h != handles[0] {
		t.Fatalf("first delivered quote was for sePCR %d, want %d", h, handles[0])
	}

	// The decisive assertion: connection 2's register was NOT quoted — it
	// is still in the Quote state, attestable by a later verifier.
	if st, err := chip.SePCRStateOf(handles[1]); err != nil || st != tpm.SePCRQuote {
		t.Fatalf("sePCR %d state %v (err %v), want Quote: the timed-out exchange consumed the one-shot quote",
			handles[1], st, err)
	}
	// Connection 1's register was consumed (the quote really is one-shot,
	// so the handles[1] assertion above is meaningful).
	if st, _ := chip.SePCRStateOf(handles[0]); st != tpm.SePCRFree {
		t.Fatalf("sePCR %d state %v, want Free after a delivered quote", handles[0], st)
	}

	// A fresh, unhurried verifier can still attest register 2.
	ev, err := Request(dial(), Challenge{Nonce: []byte("n3"), SePCR: true, Handle: handles[1]},
		WithTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("register unattestable after the timed-out exchange: %v", err)
	}
	if ev.Quote == nil || ev.Quote.SePCRHandle != handles[1] {
		t.Fatalf("bad evidence for retry: %+v", ev.Quote)
	}
	<-quoted
	if st, _ := chip.SePCRStateOf(handles[1]); st != tpm.SePCRFree {
		t.Fatal("delivered retry quote did not free the register")
	}
}

// noDeadlineConn models a transport that silently ignores deadlines (some
// net.Conn implementations do): the only protection left is ServeOne's own
// wall-clock re-check before consulting the platform.
type noDeadlineConn struct{ net.Conn }

func (noDeadlineConn) SetDeadline(time.Time) error      { return nil }
func (noDeadlineConn) SetReadDeadline(time.Time) error  { return nil }
func (noDeadlineConn) SetWriteDeadline(time.Time) error { return nil }

// TestServeOneExpiredBudgetFailsBeforeRespond covers the same invariant on
// the single-exchange path: when the challenge decodes only after the
// budget has already passed, ServeOne reports a timeout without calling
// respond.
func TestServeOneExpiredBudgetFailsBeforeRespond(t *testing.T) {
	called := false
	respond := func(ch Challenge) (*Evidence, error) {
		called = true
		return &Evidence{}, nil
	}
	client, server := net.Pipe()
	defer client.Close()
	done := make(chan error, 1)
	go func() { done <- ServeOne(noDeadlineConn{server}, respond, WithTimeout(80*time.Millisecond)) }()

	// Deliver the challenge as a slow trickle: the gob stream completes
	// after the budget has run out, so decode succeeds but the platform
	// must no longer be consulted.
	enc := encodeChallenge(t, Challenge{Nonce: []byte("slow")})
	half := len(enc) / 2
	if _, err := client.Write(enc[:half]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // past the 80ms budget
	if _, err := client.Write(enc[half:]); err != nil {
		t.Fatal(err)
	}

	err := <-done
	if called {
		t.Fatal("respond was consulted after the deadline passed")
	}
	var te *TimeoutError
	if !asTimeout(err, &te) || te.Op != "awaiting platform" {
		t.Fatalf("want 'awaiting platform' timeout, got %v", err)
	}
}
