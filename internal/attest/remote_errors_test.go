package attest

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"minimaltcb/internal/tpm"
)

// These tests cover the remote protocol's failure modes: truncated and
// oversized frames, slow-loris clients hitting the exchange deadline, a
// panicking responder, and many concurrent verifier clients against one
// server.

func TestServeOneTruncatedChallenge(t *testing.T) {
	respond, _, _, _ := platformSide(t, []byte("pal"))
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeOne(server, respond, WithTimeout(2*time.Second)) }()

	// Write a few bytes that cannot complete a gob stream, then hang up.
	if _, err := client.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "decoding challenge") {
		t.Fatalf("truncated challenge: got %v", err)
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		t.Fatalf("truncation misreported as timeout: %v", err)
	}
}

func TestServeOneOversizedNonce(t *testing.T) {
	respond, _, _, _ := platformSide(t, []byte("pal"))
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeOne(server, respond, WithTimeout(2*time.Second)) }()

	big := make([]byte, 300) // over the 256-byte bound
	if _, err := Request(client, Challenge{Nonce: big}, WithTimeout(2*time.Second)); err == nil {
		t.Fatal("oversized nonce produced evidence")
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "nonce") {
		t.Fatalf("server error: %v", err)
	}
}

func TestServeOneSlowLorisHitsDeadline(t *testing.T) {
	respond, _, _, _ := platformSide(t, []byte("pal"))
	client, server := net.Pipe()
	defer client.Close()
	done := make(chan error, 1)
	go func() { done <- ServeOne(server, respond, WithTimeout(50*time.Millisecond)) }()

	// The client connects and never sends a byte.
	err := <-done
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("slow-loris client: want *TimeoutError, got %v", err)
	}
	if !te.Timeout() {
		t.Fatal("TimeoutError.Timeout() = false")
	}
	if te.Op != "reading challenge" {
		t.Fatalf("timed-out op %q", te.Op)
	}
	if te.Limit != 50*time.Millisecond {
		t.Fatalf("timeout limit %v", te.Limit)
	}
}

func TestRequestTimesOutOnSilentPlatform(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	// Accept and read the challenge, then never answer.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		conn.Read(buf)
		time.Sleep(2 * time.Second)
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Request(conn, Challenge{Nonce: []byte("n")}, WithTimeout(60*time.Millisecond))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("silent platform: want *TimeoutError, got %v", err)
	}
	if te.Op != "reading evidence" {
		t.Fatalf("timed-out op %q", te.Op)
	}
}

func TestServeSurvivesPanickingResponder(t *testing.T) {
	image := []byte("panic PAL")
	respond, _, _, ca := platformSide(t, image)
	panicky := func(ch Challenge) (*Evidence, error) {
		if string(ch.Nonce) == "panic-now" {
			panic("responder exploded")
		}
		return respond(ch)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	go Serve(l, panicky, WithTimeout(2*time.Second))

	// First client triggers the panic; its connection just dies.
	c1, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Request(c1, Challenge{Nonce: []byte("panic-now")}, WithTimeout(time.Second)); err == nil {
		t.Fatal("panicking responder produced evidence")
	}

	// The server must still answer the next client.
	v := NewVerifier(ca.Public())
	v.Approve("panic-pal", tpm.Measure(image))
	c2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	name, err := v.ChallengeAndVerify(c2, []byte("after-panic"), false, 0, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("server dead after responder panic: %v", err)
	}
	if name != "panic-pal" {
		t.Fatalf("name %q", name)
	}
}

func TestConcurrentVerifierClients(t *testing.T) {
	image := []byte("concurrent PAL")
	respond, _, _, ca := platformSide(t, image)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	go Serve(l, respond, WithTimeout(5*time.Second))

	// One shared verifier: Verifier must be safe for concurrent use, and
	// its memoization should collapse the repeated cert verifications.
	v := NewVerifier(ca.Public())
	v.Approve("conc-pal", tpm.Measure(image))

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			nonce := []byte(fmt.Sprintf("conc-nonce-%d", i))
			name, err := v.ChallengeAndVerify(conn, nonce, false, 0, WithTimeout(5*time.Second))
			if err != nil {
				errs <- err
				return
			}
			if name != "conc-pal" {
				errs <- fmt.Errorf("client %d: name %q", i, name)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := v.MemoStats()
	if misses == 0 {
		t.Fatal("no RSA verification was ever performed")
	}
	if hits == 0 {
		t.Fatalf("cert memoization never hit across %d clients (hits=%d misses=%d)", clients, hits, misses)
	}
}
