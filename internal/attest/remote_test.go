package attest

import (
	"net"
	"strings"
	"testing"

	"minimaltcb/internal/tpm"
)

// platformSide builds a responder backed by a real TPM that has late
// launched the given image.
func platformSide(t *testing.T, image []byte) (Responder, *tpm.TPM, *AIKCert, *PrivacyCA) {
	t.Helper()
	tb := newTPMWithBus(t, 21, 2)
	tb.bus.SetLocality(4)
	tb.chip.HashStart()
	tb.chip.HashData(image)
	tb.chip.HashEnd()
	tb.bus.SetLocality(0)

	ca := newCA(t)
	cert, err := ca.Certify("remote-platform", tb.chip.AIKPublic())
	if err != nil {
		t.Fatal(err)
	}
	log := Log{{PCR: 17, Description: "PAL", Measurement: tpm.Measure(image)}}
	respond := func(ch Challenge) (*Evidence, error) {
		q, err := tb.chip.QuoteCommand(tpm.Selection{17}, ch.Nonce)
		if err != nil {
			return nil, err
		}
		return &Evidence{Cert: cert, Quote: q, Log: log}, nil
	}
	return respond, tb.chip, cert, ca
}

func TestRemoteAttestationOverPipe(t *testing.T) {
	image := []byte("remote PAL image")
	respond, _, _, ca := platformSide(t, image)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeOne(server, respond) }()

	v := NewVerifier(ca.Public())
	v.Approve("remote-pal", tpm.Measure(image))
	name, err := v.ChallengeAndVerify(client, []byte("remote nonce 1"), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "remote-pal" {
		t.Fatalf("name %q", name)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestRemoteAttestationOverTCP(t *testing.T) {
	image := []byte("tcp PAL image")
	respond, _, _, ca := platformSide(t, image)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	go Serve(l, respond)

	v := NewVerifier(ca.Public())
	v.Approve("tcp-pal", tpm.Measure(image))
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	name, err := v.ChallengeAndVerify(conn, []byte("tcp nonce"), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tcp-pal" {
		t.Fatalf("name %q", name)
	}

	// Second connection with a new nonce also works.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ChallengeAndVerify(conn2, []byte("tcp nonce 2"), false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteVerifierRejectsUnapprovedPAL(t *testing.T) {
	image := []byte("unknown PAL")
	respond, _, _, ca := platformSide(t, image)
	client, server := net.Pipe()
	go ServeOne(server, respond)

	v := NewVerifier(ca.Public()) // nothing approved
	if _, err := v.ChallengeAndVerify(client, []byte("n"), false, 0); err == nil {
		t.Fatal("unapproved PAL verified remotely")
	}
}

func TestRemoteVerifierRejectsWrongCA(t *testing.T) {
	image := []byte("pal")
	respond, _, _, _ := platformSide(t, image)
	client, server := net.Pipe()
	go ServeOne(server, respond)

	otherCA, err := NewPrivacyCA(77, 1024)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(otherCA.Public())
	v.Approve("pal", tpm.Measure(image))
	if _, err := v.ChallengeAndVerify(client, []byte("n"), false, 0); err == nil {
		t.Fatal("evidence verified against an untrusted CA")
	}
}

func TestServeOneRejectsEmptyNonce(t *testing.T) {
	respond, _, _, _ := platformSide(t, []byte("pal"))
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeOne(server, respond) }()
	if _, err := Request(client, Challenge{Nonce: nil}); err == nil {
		t.Fatal("empty-nonce exchange produced evidence")
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "nonce") {
		t.Fatalf("server error: %v", err)
	}
}

func TestRemoteSePCRAttestation(t *testing.T) {
	tb := newTPMWithBus(t, 23, 2)
	ca := newCA(t)
	cert, _ := ca.Certify("rec-platform", tb.chip.AIKPublic())
	meas := tpm.Measure([]byte("rec pal"))
	h, err := tb.chip.AllocateSePCR(0, meas)
	if err != nil {
		t.Fatal(err)
	}
	tb.chip.ReleaseSePCR(h, 0)
	log := Log{{PCR: -1, Description: "PAL", Measurement: meas}}
	respond := func(ch Challenge) (*Evidence, error) {
		if !ch.SePCR {
			return nil, errNotSePCR
		}
		q, err := tb.chip.QuoteSePCR(ch.Handle, ch.Nonce)
		if err != nil {
			return nil, err
		}
		return &Evidence{Cert: cert, Quote: q, Log: log}, nil
	}

	client, server := net.Pipe()
	go ServeOne(server, respond)
	v := NewVerifier(ca.Public())
	v.Approve("rec-pal", meas)
	name, err := v.ChallengeAndVerify(client, []byte("sepcr nonce"), true, h)
	if err != nil {
		t.Fatal(err)
	}
	if name != "rec-pal" {
		t.Fatalf("name %q", name)
	}
}

var errNotSePCR = &net.AddrError{Err: "not a sePCR challenge"}
