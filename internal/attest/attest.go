// Package attest implements the external-verification side of the paper's
// execution model (§3.1): the Privacy CA that certifies a TPM's Attestation
// Identity Key, the event log a verifier replays, and the verifier itself,
// which decides — from a quote and nothing else on the platform — whether a
// specific PAL really executed under hardware protection.
package attest

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"errors"
	"fmt"
	"sync"

	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// Event is one entry of the measurement log software keeps alongside the
// TPM's PCRs (§2.1.1).
type Event struct {
	// PCR is the register the measurement was extended into.
	PCR int
	// Description says what was measured ("PAL: rootkit-detector v3").
	Description string
	// Measurement is the SHA-1 the TPM received.
	Measurement tpm.Digest
}

// Log is an ordered measurement log.
type Log []Event

// Replay folds the log into final register values, starting from the
// post-late-launch state (dynamic PCRs zero). A verifier compares the
// result against quoted values: matching values prove the log is complete
// and untampered, because PCRs are append-only.
func (l Log) Replay() map[int]tpm.Digest {
	out := map[int]tpm.Digest{}
	for _, e := range l {
		out[e.PCR] = tpm.ExtendDigest(out[e.PCR], e.Measurement)
	}
	return out
}

// AIKCert binds an AIK public key to a platform identity, signed by a
// Privacy CA (§2.1.1).
type AIKCert struct {
	// PlatformID names the certified platform.
	PlatformID string
	// AIK is the certified public key.
	AIK *rsa.PublicKey
	// Signature is the CA's signature over the certificate body.
	Signature []byte
}

// certDigest is the signed message of an AIK certificate.
func certDigest(platformID string, aik *rsa.PublicKey) []byte {
	h := sha1.New()
	h.Write([]byte("AIK-CERT"))
	h.Write([]byte(platformID))
	h.Write(aik.N.Bytes())
	var e [4]byte
	e[0], e[1], e[2], e[3] = byte(aik.E>>24), byte(aik.E>>16), byte(aik.E>>8), byte(aik.E)
	h.Write(e[:])
	return h.Sum(nil)
}

// PrivacyCA issues AIK certificates. Verifiers trust its public key.
type PrivacyCA struct {
	key *rsa.PrivateKey
}

// CA keys are cached per (seed, bits): within a process the same seed
// always names the same CA, so independently constructed verifier and
// platform sides share a trust anchor. (rsa.GenerateKey consumes its
// randomness source unpredictably, so the cache — not the stream — is what
// provides the determinism.)
var (
	caCacheMu sync.Mutex
	caCache   = map[[2]uint64]*rsa.PrivateKey{}
)

// NewPrivacyCA creates a CA with a per-seed (process-lifetime) key pair.
func NewPrivacyCA(seed uint64, bits int) (*PrivacyCA, error) {
	if bits == 0 {
		bits = 2048
	}
	caCacheMu.Lock()
	defer caCacheMu.Unlock()
	ck := [2]uint64{seed, uint64(bits)}
	if key, ok := caCache[ck]; ok {
		return &PrivacyCA{key: key}, nil
	}
	key, err := rsa.GenerateKey(sim.NewRNG(seed^0x50434100), bits)
	if err != nil {
		return nil, fmt.Errorf("attest: CA key: %w", err)
	}
	caCache[ck] = key
	return &PrivacyCA{key: key}, nil
}

// Public returns the CA verification key.
func (ca *PrivacyCA) Public() *rsa.PublicKey { return &ca.key.PublicKey }

// Certify issues an AIK certificate. A real Privacy CA first validates the
// TPM's endorsement credentials; the simulation trusts its caller to hand
// it genuine AIKs, which is the same trust boundary.
func (ca *PrivacyCA) Certify(platformID string, aik *rsa.PublicKey) (*AIKCert, error) {
	sig, err := rsa.SignPKCS1v15(nil, ca.key, crypto.SHA1, certDigest(platformID, aik))
	if err != nil {
		return nil, fmt.Errorf("attest: certify: %w", err)
	}
	return &AIKCert{PlatformID: platformID, AIK: aik, Signature: sig}, nil
}

// VerifyCert checks an AIK certificate against a CA public key.
func VerifyCert(caPub *rsa.PublicKey, cert *AIKCert) error {
	if cert == nil || cert.AIK == nil {
		return errors.New("attest: nil certificate")
	}
	if err := rsa.VerifyPKCS1v15(caPub, crypto.SHA1,
		certDigest(cert.PlatformID, cert.AIK), cert.Signature); err != nil {
		return fmt.Errorf("attest: AIK certificate invalid: %w", err)
	}
	return nil
}

// Verifier is the external party of §3.1: it trusts a Privacy CA and a set
// of known-good PAL measurements, and nothing on the attesting platform.
//
// A Verifier is safe for concurrent use: a single verifier instance can
// serve many challenge/verify exchanges at once (the palsvc worker pool and
// concurrent attestd clients rely on this). RSA verification results are
// memoized — an AIK certificate or quote signature that has already been
// validated byte-for-byte skips the RSA work on later exchanges, so
// repeated tenants against the same platform pay the public-key cost once.
type Verifier struct {
	caPub *rsa.PublicKey

	mu sync.Mutex
	// known maps PAL measurement -> human-readable name.
	known map[tpm.Digest]string
	// nonceCur and noncePrev provide replay protection as a rotating
	// two-generation window (see consumeNonce): membership in either
	// generation is a replay; inserts go to nonceCur; when nonceCur
	// reaches nonceWindow entries it becomes noncePrev and a fresh
	// generation starts. Total footprint is bounded by 2*nonceWindow
	// entries however long the verifier lives.
	nonceCur  map[string]bool
	noncePrev map[string]bool
	// replays counts rejected replay attempts (see NonceReplays).
	replays uint64
	// verifiedCerts and verifiedSigs memoize successful RSA
	// verifications, keyed by the exact signed message plus signature
	// bytes — a memo hit is only possible for an input that already
	// passed verification unchanged. Both are emptied at nonceWindow
	// entries (nonces make most keys single-use, so these would
	// otherwise grow with the nonce history).
	verifiedCerts map[string]bool
	verifiedSigs  map[string]bool
	memoHits      uint64
	memoMisses    uint64
}

// nonceWindow bounds each replay-window generation (and each RSA memo
// table). Two generations deep, the verifier always detects a replay of
// any of the last nonceWindow nonces, and of up to 2*nonceWindow depending
// on rotation phase. Nonces older than that are outside the detection
// horizon — acceptable because nonces are verifier-chosen and verified
// promptly; a challenge is not a bearer token with a shelf life.
const nonceWindow = 4096

// NewVerifier builds a verifier trusting the given CA.
func NewVerifier(caPub *rsa.PublicKey) *Verifier {
	return &Verifier{
		caPub:         caPub,
		known:         map[tpm.Digest]string{},
		nonceCur:      map[string]bool{},
		verifiedCerts: map[string]bool{},
		verifiedSigs:  map[string]bool{},
	}
}

// Approve registers a PAL image hash as known-good. Verifiers approve
// code, not platforms: any platform may run an approved PAL.
func (v *Verifier) Approve(name string, palMeasurement tpm.Digest) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.known[palMeasurement] = name
}

// MemoStats reports how many RSA signature verifications were skipped
// (hits) versus performed (misses) since the verifier was created.
func (v *Verifier) MemoStats() (hits, misses uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.memoHits, v.memoMisses
}

// verifyCertMemo is VerifyCert with memoization of successful results.
func (v *Verifier) verifyCertMemo(cert *AIKCert) error {
	if cert == nil || cert.AIK == nil {
		return errors.New("attest: nil certificate")
	}
	key := string(certDigest(cert.PlatformID, cert.AIK)) + "|" + string(cert.Signature)
	v.mu.Lock()
	if v.verifiedCerts[key] {
		v.memoHits++
		v.mu.Unlock()
		return nil
	}
	v.memoMisses++
	v.mu.Unlock()
	if err := VerifyCert(v.caPub, cert); err != nil {
		return err
	}
	v.mu.Lock()
	if len(v.verifiedCerts) >= nonceWindow {
		v.verifiedCerts = map[string]bool{}
	}
	v.verifiedCerts[key] = true
	v.mu.Unlock()
	return nil
}

// verifyQuoteSigMemo is tpm.VerifyQuote with memoization of successful
// results. The key binds the AIK, the quoted composite, the nonce and the
// signature bytes, so a hit can only replay an identical verification.
func (v *Verifier) verifyQuoteSigMemo(aik *rsa.PublicKey, q *tpm.Quote) error {
	if q == nil || aik == nil {
		return errors.New("attest: nil quote or AIK")
	}
	key := string(aik.N.Bytes()) + "|" + string(q.Composite[:]) + "|" +
		string(q.Nonce) + "|" + string(q.Signature)
	v.mu.Lock()
	if v.verifiedSigs[key] {
		v.memoHits++
		v.mu.Unlock()
		return nil
	}
	v.memoMisses++
	v.mu.Unlock()
	if err := tpm.VerifyQuote(aik, q); err != nil {
		return err
	}
	v.mu.Lock()
	if len(v.verifiedSigs) >= nonceWindow {
		v.verifiedSigs = map[string]bool{}
	}
	v.verifiedSigs[key] = true
	v.mu.Unlock()
	return nil
}

// consumeNonce atomically checks freshness and marks the nonce used. It is
// called only after all other validation passed, so a failed verification
// never burns a nonce. The used set is a rotating two-generation window:
// a long-running verifier holds at most 2*nonceWindow entries instead of
// one per nonce ever seen.
func (v *Verifier) consumeNonce(nonce []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := string(nonce)
	if v.nonceCur[n] || v.noncePrev[n] {
		v.replays++
		return ErrNonceReplay
	}
	if len(v.nonceCur) >= nonceWindow {
		v.noncePrev = v.nonceCur
		v.nonceCur = make(map[string]bool, nonceWindow)
	}
	v.nonceCur[n] = true
	return nil
}

// NonceWindowSize reports how many nonces the replay window currently
// holds across both generations. It can never exceed 2*nonceWindow — the
// soak asserts exactly that to pin the bounded-memory fix.
func (v *Verifier) NonceWindowSize() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.nonceCur) + len(v.noncePrev)
}

// NonceWindowBound is the maximum NonceWindowSize can reach.
const NonceWindowBound = 2 * nonceWindow

// NonceReplays counts rejected replay attempts over the verifier's
// lifetime — the soak asserts it stays zero under an honest workload.
func (v *Verifier) NonceReplays() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.replays
}

// lookup returns the approved name for a measurement.
func (v *Verifier) lookup(m tpm.Digest) (string, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	name, ok := v.known[m]
	return name, ok
}

// Verification errors.
var (
	ErrUnknownPAL   = errors.New("attest: quoted measurement is not an approved PAL")
	ErrNonceReplay  = errors.New("attest: nonce already used")
	ErrWrongNonce   = errors.New("attest: quote nonce does not match challenge")
	ErrNotLaunched  = errors.New("attest: PCR17 indicates no late launch occurred (reboot value)")
	ErrLogMismatch  = errors.New("attest: event log does not replay to quoted composite")
	ErrBadSignature = errors.New("attest: quote signature invalid")
)

// VerifyPALQuote validates the complete SEA attestation chain for a quote
// over PCR 17 (and optionally 18): certificate, signature, nonce freshness,
// and that the quoted composite equals a late launch of an approved PAL.
// It returns the approved PAL's name.
//
// sel must be the selection the quote covers; log must contain the
// measurement events the platform claims (for the simple SEA flow this is
// one event: the PAL into PCR 17, plus the ACMod and PAL on Intel).
func (v *Verifier) VerifyPALQuote(cert *AIKCert, q *tpm.Quote, log Log, nonce []byte) (string, error) {
	if err := v.verifyCertMemo(cert); err != nil {
		return "", err
	}
	if err := v.verifyQuoteSigMemo(cert.AIK, q); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if string(q.Nonce) != string(nonce) {
		return "", ErrWrongNonce
	}

	// Replay the log and reconstruct the composite.
	finals := log.Replay()
	// The reboot value of a dynamic PCR is all-ones; a log claiming no
	// events for PCR17 can never match a genuine late launch.
	if _, ok := finals[tpm.FirstDynamicPCR]; !ok {
		return "", ErrNotLaunched
	}
	vals := make([]tpm.Digest, len(q.Selection))
	for i, idx := range q.Selection {
		vals[i] = finals[idx]
	}
	if tpm.CompositeDigest(q.Selection, vals) != q.Composite {
		return "", ErrLogMismatch
	}

	// The first event extended into the freshly reset PCR 17 is the
	// late-launch measurement — the PAL on AMD, the ACMod on Intel
	// (where the PAL lands in PCR 18). Accept whichever dynamic PCR's
	// root is an approved PAL.
	name, err := v.rootApproved(log, q.Selection)
	if err != nil {
		return "", err
	}
	if err := v.consumeNonce(nonce); err != nil {
		return "", err
	}
	return name, nil
}

// rootApproved finds, for each selected PCR, the first event extended into
// it and reports the first one naming an approved PAL. Later events are
// inputs the PAL chose to extend and carry no code identity.
func (v *Verifier) rootApproved(log Log, sel tpm.Selection) (string, error) {
	seen := map[int]bool{}
	for _, e := range log {
		if seen[e.PCR] {
			continue
		}
		seen[e.PCR] = true
		inSel := false
		for _, idx := range sel {
			if idx == e.PCR {
				inSel = true
			}
		}
		if !inSel {
			continue
		}
		if name, ok := v.lookup(e.Measurement); ok {
			return name, nil
		}
	}
	return "", ErrUnknownPAL
}

// VerifySePCRQuote validates an attestation over a sePCR on recommended
// hardware (§5.4.3): same chain, but the composite is the single register
// value and the log is the PAL measurement (plus any input extensions).
func (v *Verifier) VerifySePCRQuote(cert *AIKCert, q *tpm.Quote, log Log, nonce []byte) (string, error) {
	if err := v.verifyCertMemo(cert); err != nil {
		return "", err
	}
	if err := v.verifyQuoteSigMemo(cert.AIK, q); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if string(q.Nonce) != string(nonce) {
		return "", ErrWrongNonce
	}
	if q.SePCRHandle < 0 {
		return "", errors.New("attest: quote does not cover a sePCR")
	}
	// Replay the sePCR chain and approve its root (session.go shares this
	// with the batched paths).
	name, err := v.approveSePCRLog(log, q.Composite)
	if err != nil {
		return "", err
	}
	if err := v.consumeNonce(nonce); err != nil {
		return "", err
	}
	return name, nil
}
