package attest

import (
	"errors"
	"testing"
	"testing/quick"

	"minimaltcb/internal/lpc"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

func newCA(t *testing.T) *PrivacyCA {
	t.Helper()
	ca, err := NewPrivacyCA(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func newTPM(t *testing.T, seed uint64, sePCRs int) *tpm.TPM {
	t.Helper()
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := tpm.New(clock, bus, tpm.Config{KeyBits: 1024, Seed: seed, NumSePCRs: sePCRs})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// tpmWithBus pairs a TPM with its bus so tests can assert locality 4
// around the late-launch hash sequence.
type tpmWithBus struct {
	chip *tpm.TPM
	bus  *lpc.Bus
}

func newTPMWithBus(t *testing.T, seed uint64, sePCRs int) tpmWithBus {
	t.Helper()
	clock := sim.NewClock()
	bus := lpc.NewBus(clock, lpc.FullSpeed())
	chip, err := tpm.New(clock, bus, tpm.Config{KeyBits: 1024, Seed: seed, NumSePCRs: sePCRs})
	if err != nil {
		t.Fatal(err)
	}
	return tpmWithBus{chip: chip, bus: bus}
}

func TestLogReplay(t *testing.T) {
	m1 := tpm.Measure([]byte("pal"))
	m2 := tpm.Measure([]byte("input"))
	log := Log{
		{PCR: 17, Measurement: m1},
		{PCR: 17, Measurement: m2},
		{PCR: 18, Measurement: m1},
	}
	finals := log.Replay()
	want17 := tpm.ExtendDigest(tpm.ExtendDigest(tpm.Digest{}, m1), m2)
	if finals[17] != want17 {
		t.Fatal("PCR17 replay wrong")
	}
	if finals[18] != tpm.ExtendDigest(tpm.Digest{}, m1) {
		t.Fatal("PCR18 replay wrong")
	}
}

// Property: replaying a log equals folding ExtendDigest per PCR, and a
// log's replay is prefix-consistent (replaying more events never erases
// earlier ones — PCRs are append-only).
func TestLogReplayFoldProperty(t *testing.T) {
	f := func(raw []struct {
		PCR  uint8
		Data []byte
	}) bool {
		var log Log
		want := map[int]tpm.Digest{}
		for _, e := range raw {
			pcr := int(e.PCR) % 4
			m := tpm.Measure(e.Data)
			log = append(log, Event{PCR: pcr, Measurement: m})
			want[pcr] = tpm.ExtendDigest(want[pcr], m)
		}
		got := log.Replay()
		if len(got) != len(want) {
			return false
		}
		for pcr, v := range want {
			if got[pcr] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyAndVerify(t *testing.T) {
	ca := newCA(t)
	chip := newTPM(t, 3, 0)
	cert, err := ca.Certify("hp-dc5750-001", chip.AIKPublic())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCert(ca.Public(), cert); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCertRejectsForgery(t *testing.T) {
	ca := newCA(t)
	other, err := NewPrivacyCA(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	chip := newTPM(t, 3, 0)
	cert, _ := other.Certify("platform", chip.AIKPublic())
	if err := VerifyCert(ca.Public(), cert); err == nil {
		t.Fatal("certificate from untrusted CA verified")
	}
	// Tampered platform ID.
	cert, _ = ca.Certify("platform", chip.AIKPublic())
	cert.PlatformID = "evil-platform"
	if err := VerifyCert(ca.Public(), cert); err == nil {
		t.Fatal("tampered certificate verified")
	}
	if err := VerifyCert(ca.Public(), nil); err == nil {
		t.Fatal("nil certificate verified")
	}
}

// Full chain: launch an approved PAL, quote, verify.
func TestVerifyPALQuoteEndToEnd(t *testing.T) {
	ca := newCA(t)
	tb := newTPMWithBus(t, 5, 0)
	image := []byte("the rootkit detector PAL image")
	tb.bus.SetLocality(4)
	tb.chip.HashStart()
	tb.chip.HashData(image)
	tb.chip.HashEnd()
	tb.bus.SetLocality(0)
	log := Log{{PCR: 17, Description: "PAL", Measurement: tpm.Measure(image)}}

	cert, _ := ca.Certify("dc5750", tb.chip.AIKPublic())
	nonce := []byte("fresh challenge 1")
	q, err := tb.chip.QuoteCommand(tpm.Selection{17}, nonce)
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(ca.Public())
	v.Approve("rootkit-detector", tpm.Measure(image))
	name, err := v.VerifyPALQuote(cert, q, log, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if name != "rootkit-detector" {
		t.Fatalf("name %q", name)
	}
	// Replay with same nonce refused.
	if _, err := v.VerifyPALQuote(cert, q, log, nonce); !errors.Is(err, ErrNonceReplay) {
		t.Fatalf("nonce replay: %v", err)
	}
}

func TestVerifyPALQuoteRejectsUnapprovedPAL(t *testing.T) {
	ca := newCA(t)
	tb := newTPMWithBus(t, 5, 0)
	image := []byte("malicious PAL")
	tb.bus.SetLocality(4)
	tb.chip.HashStart()
	tb.chip.HashData(image)
	tb.chip.HashEnd()
	log := Log{{PCR: 17, Measurement: tpm.Measure(image)}}
	cert, _ := ca.Certify("dc5750", tb.chip.AIKPublic())
	nonce := []byte("n2")
	q, _ := tb.chip.QuoteCommand(tpm.Selection{17}, nonce)

	v := NewVerifier(ca.Public())
	v.Approve("good-pal", tpm.Measure([]byte("something else")))
	if _, err := v.VerifyPALQuote(cert, q, log, nonce); !errors.Is(err, ErrUnknownPAL) {
		t.Fatalf("unapproved PAL: %v", err)
	}
}

func TestVerifyPALQuoteRejectsRebootState(t *testing.T) {
	// Quote over PCR17 straight after boot: the verifier must notice no
	// late launch happened (log has no PCR17 event that replays to the
	// quoted -1...-1 composite).
	ca := newCA(t)
	tb := newTPMWithBus(t, 5, 0)
	cert, _ := ca.Certify("dc5750", tb.chip.AIKPublic())
	nonce := []byte("n3")
	q, _ := tb.chip.QuoteCommand(tpm.Selection{17}, nonce)
	v := NewVerifier(ca.Public())
	_, err := v.VerifyPALQuote(cert, q, Log{}, nonce)
	if !errors.Is(err, ErrNotLaunched) {
		t.Fatalf("reboot-state quote: %v", err)
	}
}

func TestVerifyPALQuoteRejectsWrongNonceAndLog(t *testing.T) {
	ca := newCA(t)
	tb := newTPMWithBus(t, 5, 0)
	image := []byte("pal")
	tb.bus.SetLocality(4)
	tb.chip.HashStart()
	tb.chip.HashData(image)
	tb.chip.HashEnd()
	log := Log{{PCR: 17, Measurement: tpm.Measure(image)}}
	cert, _ := ca.Certify("p", tb.chip.AIKPublic())
	q, _ := tb.chip.QuoteCommand(tpm.Selection{17}, []byte("right"))
	v := NewVerifier(ca.Public())
	v.Approve("pal", tpm.Measure(image))
	if _, err := v.VerifyPALQuote(cert, q, log, []byte("wrong")); !errors.Is(err, ErrWrongNonce) {
		t.Fatalf("wrong nonce: %v", err)
	}
	badLog := Log{{PCR: 17, Measurement: tpm.Measure([]byte("lie"))}}
	if _, err := v.VerifyPALQuote(cert, q, badLog, []byte("right")); err == nil {
		t.Fatal("mismatched log verified")
	}
}

func TestVerifySePCRQuoteEndToEnd(t *testing.T) {
	ca := newCA(t)
	chip := newTPM(t, 6, 2)
	image := []byte("factoring PAL")
	meas := tpm.Measure(image)
	h, err := chip.AllocateSePCR(0, meas)
	if err != nil {
		t.Fatal(err)
	}
	input := tpm.Measure([]byte("work unit 7"))
	chip.SePCRExtend(h, 0, input)
	chip.ReleaseSePCR(h, 0)
	nonce := []byte("challenge")
	q, err := chip.QuoteSePCR(h, nonce)
	if err != nil {
		t.Fatal(err)
	}

	log := Log{
		{PCR: -1, Description: "PAL", Measurement: meas},
		{PCR: -1, Description: "input", Measurement: input},
	}
	cert, _ := ca.Certify("ws", chip.AIKPublic())
	v := NewVerifier(ca.Public())
	v.Approve("factoring", meas)
	name, err := v.VerifySePCRQuote(cert, q, log, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if name != "factoring" {
		t.Fatalf("name %q", name)
	}
}

func TestVerifySePCRQuoteRejectsKilledPAL(t *testing.T) {
	ca := newCA(t)
	chip := newTPM(t, 6, 1)
	meas := tpm.Measure([]byte("pal"))
	h, _ := chip.AllocateSePCR(0, meas)
	// SKILL the PAL, then try to pass its register off as clean: the
	// register went straight to Free, so no quote is even possible.
	if err := chip.KillSePCR(h); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.QuoteSePCR(h, []byte("n")); err == nil {
		t.Fatal("killed PAL's register quoted")
	}
	// And a forged log containing the SKILL marker is rejected.
	v := NewVerifier(ca.Public())
	v.Approve("pal", meas)
	cert, _ := ca.Certify("ws", chip.AIKPublic())
	h2, _ := chip.AllocateSePCR(0, meas)
	chip.SePCRExtend(h2, 0, tpm.SKillMarker)
	chip.ReleaseSePCR(h2, 0)
	nonce := []byte("n9")
	q, _ := chip.QuoteSePCR(h2, nonce)
	log := Log{
		{PCR: -1, Measurement: meas},
		{PCR: -1, Measurement: tpm.SKillMarker},
	}
	if _, err := v.VerifySePCRQuote(cert, q, log, nonce); err == nil {
		t.Fatal("log with SKILL marker verified")
	}
}

func TestVerifySePCRQuoteRootMustBeApproved(t *testing.T) {
	ca := newCA(t)
	chip := newTPM(t, 6, 1)
	evil := tpm.Measure([]byte("evil pal"))
	good := tpm.Measure([]byte("good pal"))
	h, _ := chip.AllocateSePCR(0, evil)
	// Evil PAL extends the good PAL's measurement as an "input", hoping
	// the verifier matches on it.
	chip.SePCRExtend(h, 0, good)
	chip.ReleaseSePCR(h, 0)
	nonce := []byte("n10")
	q, _ := chip.QuoteSePCR(h, nonce)
	log := Log{
		{PCR: -1, Measurement: evil},
		{PCR: -1, Measurement: good},
	}
	v := NewVerifier(ca.Public())
	v.Approve("good", good)
	cert, _ := ca.Certify("ws", chip.AIKPublic())
	if _, err := v.VerifySePCRQuote(cert, q, log, nonce); !errors.Is(err, ErrUnknownPAL) {
		t.Fatalf("root-spoofed log: %v", err)
	}
}
