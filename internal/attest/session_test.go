package attest

import (
	"errors"
	"fmt"
	"testing"

	"minimaltcb/internal/tpm"
)

// batchFixture prepares n identically-trusted PALs on one chip, batch-
// quotes them, and returns everything a verifier-side test needs.
type batchFixture struct {
	ca     *PrivacyCA
	chip   *tpm.TPM
	cert   *AIKCert
	v      *Verifier
	q      *tpm.BatchQuote
	logs   []Log
	nonces [][]byte
}

func newBatchFixture(t *testing.T, n int, sessionID uint64, chip *tpm.TPM) *batchFixture {
	t.Helper()
	ca := newCA(t)
	if chip == nil {
		chip = newTPM(t, 6, n+1)
	}
	v := NewVerifier(ca.Public())
	cert, err := ca.Certify("ws", chip.AIKPublic())
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]tpm.BatchRequest, n)
	logs := make([]Log, n)
	nonces := make([][]byte, n)
	for i := 0; i < n; i++ {
		image := []byte(fmt.Sprintf("pal-%d", i))
		meas := tpm.Measure(image)
		v.Approve(fmt.Sprintf("pal-%d", i), meas)
		h, err := chip.AllocateSePCR(i, meas)
		if err != nil {
			t.Fatal(err)
		}
		input := tpm.Measure([]byte(fmt.Sprintf("input-%d", i)))
		if _, err := chip.SePCRExtend(h, i, input); err != nil {
			t.Fatal(err)
		}
		if err := chip.ReleaseSePCR(h, i); err != nil {
			t.Fatal(err)
		}
		nonces[i] = []byte(fmt.Sprintf("nonce-%d-%d", sessionID, i))
		reqs[i] = tpm.BatchRequest{Handle: h, Nonce: nonces[i]}
		logs[i] = Log{
			{PCR: -1, Description: "PAL", Measurement: meas},
			{PCR: -1, Description: "input", Measurement: input},
		}
	}
	q, err := chip.QuoteSePCRBatch(reqs, []byte("batch-nonce"), sessionID)
	if err != nil {
		t.Fatal(err)
	}
	return &batchFixture{ca: ca, chip: chip, cert: cert, v: v, q: q, logs: logs, nonces: nonces}
}

func TestVerifyBatchedQuoteStateless(t *testing.T) {
	f := newBatchFixture(t, 4, 0, nil)
	for i := range f.logs {
		name, err := f.v.VerifyBatchedQuote(f.cert, f.q, i, f.logs[i], f.nonces[i])
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if want := fmt.Sprintf("pal-%d", i); name != want {
			t.Fatalf("entry %d approved as %q, want %q", i, name, want)
		}
	}
	// The root signature was verified once; later entries hit the memo.
	hits, _ := f.v.MemoStats()
	if hits < 3 {
		t.Fatalf("batch signature memo hits = %d, want >= 3", hits)
	}
	// Replaying an already-consumed per-job nonce fails.
	if _, err := f.v.VerifyBatchedQuote(f.cert, f.q, 0, f.logs[0], f.nonces[0]); !errors.Is(err, ErrNonceReplay) {
		t.Fatalf("replay: err = %v, want ErrNonceReplay", err)
	}
}

func TestSessionVerifyBatchedQuote(t *testing.T) {
	chip := newTPM(t, 6, 4)
	sess, err := chip.OpenQuoteSession([]byte("open-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	f := newBatchFixture(t, 3, sess.ID, chip)
	s, err := f.v.NewSession(f.cert, sess, []byte("open-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	_, missesBefore := f.v.MemoStats()
	for i := range f.logs {
		name, err := s.VerifyBatchedQuote(f.q, i, f.logs[i], f.nonces[i])
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if want := fmt.Sprintf("pal-%d", i); name != want {
			t.Fatalf("entry %d approved as %q, want %q", i, name, want)
		}
	}
	// The HMAC channel did all the work: zero new RSA verifications.
	if _, misses := f.v.MemoStats(); misses != missesBefore {
		t.Fatalf("session path performed %d RSA verifications, want 0", misses-missesBefore)
	}
	if s.Batches() != 1 {
		t.Fatalf("session counted %d batches, want 1", s.Batches())
	}
}

func TestSessionTamperCases(t *testing.T) {
	chip := newTPM(t, 6, 6)
	sess, err := chip.OpenQuoteSession([]byte("open-a"))
	if err != nil {
		t.Fatal(err)
	}
	f := newBatchFixture(t, 2, sess.ID, chip)
	s, err := f.v.NewSession(f.cert, sess, []byte("open-a"))
	if err != nil {
		t.Fatal(err)
	}

	// Stale session HMAC: a MAC under a different (old) session key.
	var oldKey tpm.Digest
	oldKey[7] = 0x42
	stale := *f.q
	stale.SessionMAC = tpm.SessionMAC(oldKey, tpm.BatchSignedDigest(stale.Root, stale.Count, stale.Nonce))
	if _, err := s.VerifyBatchedQuote(&stale, 0, f.logs[0], f.nonces[0]); !errors.Is(err, ErrStaleSession) {
		t.Fatalf("stale MAC: err = %v, want ErrStaleSession", err)
	}

	// Batch bound to a different session ID.
	other := *f.q
	other.SessionID = sess.ID + 100
	if _, err := s.VerifyBatchedQuote(&other, 0, f.logs[0], f.nonces[0]); !errors.Is(err, ErrWrongSession) {
		t.Fatalf("wrong session: err = %v, want ErrWrongSession", err)
	}

	// A failed verification consumed nothing: the genuine batch still
	// verifies with the same nonces.
	if _, err := s.VerifyBatchedQuote(f.q, 0, f.logs[0], f.nonces[0]); err != nil {
		t.Fatalf("genuine batch after tamper attempts: %v", err)
	}

	// Proof for the wrong job at the session layer.
	mut := *f.q
	mut.Entries = append([]tpm.BatchEntry(nil), f.q.Entries...)
	wrong := mut.Entries[1]
	wrong.Proof = f.q.Entries[0].Proof
	wrong.Index = f.q.Entries[0].Index
	mut.Entries[1] = wrong
	if _, err := s.VerifyBatchedQuote(&mut, 1, f.logs[1], f.nonces[1]); !errors.Is(err, ErrBadProof) {
		t.Fatalf("wrong-job proof: err = %v, want ErrBadProof", err)
	}
	// ... and the untampered entry still verifies afterwards.
	if _, err := s.VerifyBatchedQuote(f.q, 1, f.logs[1], f.nonces[1]); err != nil {
		t.Fatalf("entry 1 after tamper attempt: %v", err)
	}
}

func TestNewSessionRejectsBadGrant(t *testing.T) {
	chip := newTPM(t, 6, 2)
	ca := newCA(t)
	v := NewVerifier(ca.Public())
	cert, _ := ca.Certify("ws", chip.AIKPublic())
	sess, err := chip.OpenQuoteSession([]byte("n1"))
	if err != nil {
		t.Fatal(err)
	}
	// Forged key: grant signature no longer covers it.
	forged := *sess
	forged.Key[0] ^= 0xff
	if _, err := v.NewSession(cert, &forged, []byte("n1")); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("forged grant: err = %v, want ErrBadGrant", err)
	}
	// Wrong nonce binding.
	if _, err := v.NewSession(cert, sess, []byte("other")); !errors.Is(err, ErrWrongNonce) {
		t.Fatalf("wrong nonce: err = %v, want ErrWrongNonce", err)
	}
	// The failures above burned nothing: the genuine open succeeds.
	s, err := v.NewSession(cert, sess, []byte("n1"))
	if err != nil {
		t.Fatal(err)
	}
	if s.PlatformID() != "ws" {
		t.Fatalf("platform = %q", s.PlatformID())
	}
	// Re-opening with the same (now consumed) nonce is a replay.
	if _, err := v.NewSession(cert, sess, []byte("n1")); !errors.Is(err, ErrNonceReplay) {
		t.Fatalf("grant replay: err = %v, want ErrNonceReplay", err)
	}
}

// TestNonceWindowBounded pins the replay-window fix: far more nonces than
// the window can hold pass through, memory stays bounded, and recent
// nonces are still replay-protected.
func TestNonceWindowBounded(t *testing.T) {
	v := NewVerifier(newCA(t).Public())
	total := NonceWindowBound + 2500
	for i := 0; i < total; i++ {
		if err := v.consumeNonce([]byte(fmt.Sprintf("n-%d", i))); err != nil {
			t.Fatalf("nonce %d: %v", i, err)
		}
	}
	if got := v.NonceWindowSize(); got > NonceWindowBound {
		t.Fatalf("window holds %d nonces, bound is %d", got, NonceWindowBound)
	}
	// The most recent nonce is still inside the window.
	if err := v.consumeNonce([]byte(fmt.Sprintf("n-%d", total-1))); !errors.Is(err, ErrNonceReplay) {
		t.Fatalf("recent replay: err = %v, want ErrNonceReplay", err)
	}
}
