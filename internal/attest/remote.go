package attest

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"minimaltcb/internal/tpm"
)

// This file implements the wire protocol between the attesting platform
// and the external verifier of §3.1. The verifier connects, sends a fresh
// challenge, and receives the evidence bundle — AIK certificate, quote,
// and measurement log — that VerifyPALQuote / VerifySePCRQuote consume.
// Everything security-relevant is inside the signed quote; the transport
// needs no secrecy, matching the paper's trust model (the adversary
// "can monitor all network traffic").

// Challenge is the verifier's request.
type Challenge struct {
	// Nonce must be fresh per request; the verifier rejects replays.
	Nonce []byte
	// SePCR selects a secure-execution-PCR quote instead of a dynamic
	// PCR quote (recommended-hardware platforms).
	SePCR bool
	// Handle is the sePCR to quote when SePCR is set.
	Handle int
	// TraceID and ParentSpan carry the verifier's propagated trace
	// context (the compact obs.TraceID string form), so the platform's
	// challenge span nests in the caller's distributed trace instead of
	// rooting an orphan. Empty means untraced. Gob matches struct fields
	// by name, so old peers on either side simply ignore them.
	TraceID    string
	ParentSpan uint64

	// Batch, when set, asks for ONE batched quote (tpm.QuoteSePCRBatch)
	// covering Handles, with JobNonces[i] bound into Handles[i]'s leaf;
	// Nonce becomes the batch-level nonce. OpenSession additionally asks
	// the platform to open a quote session, return its grant, and MAC the
	// batch under it. Old platforms ignore all three (gob matches by
	// name) and answer the one-shot path — the verifier detects the
	// downgrade by the missing Evidence.Batch.
	Batch       bool
	Handles     []int
	JobNonces   [][]byte
	OpenSession bool
}

// Evidence is the platform's response. Exactly one of Quote (one-shot) or
// Batch (batched challenge) is set.
type Evidence struct {
	Cert  *AIKCert
	Quote *tpm.Quote
	Log   Log

	// Batch carries the batched quote, Logs the per-entry event logs
	// (Logs[i] belongs to Batch.Entries[i]), and Grant the session grant
	// when the challenge asked to open one. Old verifiers ignore them.
	Batch *tpm.BatchQuote
	Logs  []Log
	Grant *tpm.QuoteSession
}

// Responder produces evidence for a challenge; the platform side supplies
// it (typically wrapping TPM quote generation and its event log).
type Responder func(ch Challenge) (*Evidence, error)

// DefaultTimeout bounds one remote exchange (challenge in, evidence out)
// unless overridden with WithTimeout.
const DefaultTimeout = 10 * time.Second

// TimeoutError reports that a remote attestation exchange exceeded its
// deadline. It wraps the underlying net error and satisfies
// net.Error-style Timeout() checks, so callers can distinguish a stalled
// peer from a protocol failure.
type TimeoutError struct {
	// Op names the phase that timed out ("reading challenge", ...).
	Op string
	// Limit is the deadline that was exceeded.
	Limit time.Duration
	// Err is the underlying error.
	Err error
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("attest: %s timed out after %v: %v", e.Op, e.Limit, e.Err)
}

// Unwrap exposes the underlying net error to errors.Is/As.
func (e *TimeoutError) Unwrap() error { return e.Err }

// Timeout reports true, mirroring net.Error.
func (e *TimeoutError) Timeout() bool { return true }

// Option configures a remote exchange.
type Option func(*exchangeConfig)

type exchangeConfig struct {
	timeout    time.Duration
	traceID    string
	parentSpan uint64
}

// WithTimeout bounds the whole exchange on one connection. d <= 0 disables
// the deadline entirely (the exchange then trusts the peer to make
// progress). Without this option, DefaultTimeout applies.
func WithTimeout(d time.Duration) Option {
	return func(c *exchangeConfig) { c.timeout = d }
}

// WithTraceContext propagates the caller's trace context on the outgoing
// challenge (verifier side: Request, ChallengeAndVerify), so the
// responding platform's spans join the caller's trace. traceID is the
// compact obs.TraceID form; parentSpan the caller-side span ID the
// platform's spans nest under.
func WithTraceContext(traceID string, parentSpan uint64) Option {
	return func(c *exchangeConfig) { c.traceID, c.parentSpan = traceID, parentSpan }
}

func newExchangeConfig(opts []Option) exchangeConfig {
	cfg := exchangeConfig{timeout: DefaultTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// wrapTimeout converts deadline-induced failures into *TimeoutError while
// passing every other error through untouched.
func wrapTimeout(op string, limit time.Duration, err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &TimeoutError{Op: op, Limit: limit, Err: err}
	}
	return err
}

// ServeOne answers exactly one challenge on conn. It is the unit Serve
// loops over and what tests drive directly over a net.Pipe. The exchange
// must complete within the configured timeout (DefaultTimeout unless
// overridden), so a slow-loris client that connects and never sends a
// complete challenge is cut off with a *TimeoutError.
func ServeOne(conn net.Conn, respond Responder, opts ...Option) error {
	cfg := newExchangeConfig(opts)
	defer conn.Close()
	var deadline time.Time
	if cfg.timeout > 0 {
		// Wall-clock (not virtual) deadline: the peer is a real socket.
		deadline = time.Now().Add(cfg.timeout)
		_ = conn.SetDeadline(deadline)
	}
	var ch Challenge
	dec := gob.NewDecoder(conn)
	if err := dec.Decode(&ch); err != nil {
		return wrapTimeout("reading challenge", cfg.timeout,
			fmt.Errorf("attest: decoding challenge: %w", err))
	}
	if len(ch.Nonce) == 0 || len(ch.Nonce) > 256 {
		return errors.New("attest: refusing challenge with absent or oversized nonce")
	}
	if ch.Batch {
		// A malformed batch challenge is rejected BEFORE the platform is
		// consulted: batch assembly must not be able to fail mid-flight
		// with registers already consumed, and the verifier's nonces must
		// stay unburned (they are only consumed against evidence that
		// verifies). tpm.QuoteSePCRBatch upholds the same contract below
		// us by validating every register before mutating any.
		if len(ch.Handles) == 0 {
			return errors.New("attest: refusing batch challenge with no handles")
		}
		if len(ch.Handles) != len(ch.JobNonces) {
			return fmt.Errorf("attest: batch challenge with %d handles but %d job nonces",
				len(ch.Handles), len(ch.JobNonces))
		}
		for _, n := range ch.JobNonces {
			if len(n) == 0 || len(n) > 256 {
				return errors.New("attest: refusing batch challenge with absent or oversized job nonce")
			}
		}
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		// The deadline expired before the platform was consulted (a
		// slow-read client can burn the whole budget on the challenge).
		// Fail WITHOUT calling respond: a quote is one-shot — generating
		// it zeroes the sePCR — so producing evidence that can no longer
		// be delivered would leave the register unattestable forever.
		return &TimeoutError{Op: "awaiting platform", Limit: cfg.timeout, Err: os.ErrDeadlineExceeded}
	}
	ev, err := respond(ch)
	if err != nil {
		// Encode an empty evidence so the peer gets a definite answer.
		_ = gob.NewEncoder(conn).Encode(&Evidence{})
		return err
	}
	return wrapTimeout("sending evidence", cfg.timeout, gob.NewEncoder(conn).Encode(ev))
}

// Serve accepts connections until the listener closes, answering one
// challenge per connection. Each connection is handled on its own
// goroutine — with a panic-safe close — so a slow or stalled client cannot
// block the accept loop. The responder itself is serialized with a mutex:
// it typically fronts a single-threaded simulated platform (see
// internal/sim), so only the network I/O runs concurrently.
func Serve(l net.Listener, respond Responder, opts ...Option) error {
	cfg := newExchangeConfig(opts)
	var mu sync.Mutex
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		accepted := time.Now()
		go func(c net.Conn) {
			defer func() {
				if r := recover(); r != nil {
					_ = c.Close()
				}
			}()
			// The serial responder is built per connection so it can
			// re-check this connection's budget after the mutex wait:
			// a stalled exchange ahead of us can eat the whole timeout,
			// and quotes are one-shot — consuming one for a connection
			// whose peer has already been cut off by its deadline would
			// leave that sePCR unattestable forever.
			serial := func(ch Challenge) (*Evidence, error) {
				mu.Lock()
				defer mu.Unlock()
				if cfg.timeout > 0 && time.Since(accepted) > cfg.timeout {
					return nil, &TimeoutError{Op: "awaiting platform", Limit: cfg.timeout, Err: os.ErrDeadlineExceeded}
				}
				return respond(ch)
			}
			_ = ServeOne(c, serial, opts...)
		}(conn)
	}
}

// Request performs the verifier side of one exchange on conn.
func Request(conn net.Conn, ch Challenge, opts ...Option) (*Evidence, error) {
	cfg := newExchangeConfig(opts)
	if cfg.traceID != "" {
		ch.TraceID, ch.ParentSpan = cfg.traceID, cfg.parentSpan
	}
	defer conn.Close()
	if cfg.timeout > 0 {
		// Wall-clock (not virtual) deadline: the peer is a real socket.
		_ = conn.SetDeadline(time.Now().Add(cfg.timeout))
	}
	if err := gob.NewEncoder(conn).Encode(&ch); err != nil {
		return nil, wrapTimeout("sending challenge", cfg.timeout,
			fmt.Errorf("attest: sending challenge: %w", err))
	}
	var ev Evidence
	if err := gob.NewDecoder(conn).Decode(&ev); err != nil {
		return nil, wrapTimeout("reading evidence", cfg.timeout,
			fmt.Errorf("attest: decoding evidence: %w", err))
	}
	if ev.Cert == nil || (ev.Quote == nil && ev.Batch == nil) {
		return nil, errors.New("attest: platform returned no evidence")
	}
	if ch.Batch && ev.Batch == nil {
		// A legacy platform ignored the batch fields and answered the
		// one-shot path; surface the downgrade rather than mis-verifying.
		return nil, errors.New("attest: platform does not support batched quotes")
	}
	return &ev, nil
}

// ChallengeAndVerify runs the complete verifier flow over conn: send a
// challenge, receive evidence, and validate it against this verifier's
// trust anchors. It returns the approved PAL's name.
func (v *Verifier) ChallengeAndVerify(conn net.Conn, nonce []byte, sePCR bool, handle int, opts ...Option) (string, error) {
	ev, err := Request(conn, Challenge{Nonce: nonce, SePCR: sePCR, Handle: handle}, opts...)
	if err != nil {
		return "", err
	}
	if sePCR {
		return v.VerifySePCRQuote(ev.Cert, ev.Quote, ev.Log, nonce)
	}
	return v.VerifyPALQuote(ev.Cert, ev.Quote, ev.Log, nonce)
}

// ChallengeAndVerifyBatch runs one batched exchange over conn: a single
// challenge covering every handle, one signature (and network round trip)
// for the whole set, then per-entry verification against this verifier's
// trust anchors. jobNonces[i] is the fresh per-job nonce for handles[i].
// When session is non-nil the batch is verified over the session's HMAC
// channel; otherwise the stateless (RSA) path is used. It returns the
// approved PAL names in handle order; on ANY entry failing, no result and
// the first error (per-job nonces of entries that verified before the
// failure are consumed — each entry is an independent attestation).
func (v *Verifier) ChallengeAndVerifyBatch(conn net.Conn, session *Session, nonce []byte, handles []int, jobNonces [][]byte, opts ...Option) ([]string, error) {
	ev, err := Request(conn, Challenge{
		Nonce:     nonce,
		SePCR:     true,
		Batch:     true,
		Handles:   handles,
		JobNonces: jobNonces,
	}, opts...)
	if err != nil {
		return nil, err
	}
	if len(ev.Logs) != len(handles) {
		return nil, fmt.Errorf("attest: batch evidence with %d logs for %d handles", len(ev.Logs), len(handles))
	}
	names := make([]string, len(handles))
	for i := range handles {
		var name string
		if session != nil {
			name, err = session.VerifyBatchedQuote(ev.Batch, i, ev.Logs[i], jobNonces[i])
		} else {
			name, err = v.VerifyBatchedQuote(ev.Cert, ev.Batch, i, ev.Logs[i], jobNonces[i])
		}
		if err != nil {
			return nil, fmt.Errorf("attest: batch entry %d: %w", i, err)
		}
		names[i] = name
	}
	return names, nil
}

// OpenRemoteSession opens a verification session against a platform over
// conn: it challenges with OpenSession set, expects a session grant in the
// evidence, and validates grant + certificate chain once (NewSession). The
// evidence's batch, if any, is NOT verified here — callers hold the
// returned session and verify batches as they arrive.
func (v *Verifier) OpenRemoteSession(conn net.Conn, nonce []byte, handles []int, jobNonces [][]byte, opts ...Option) (*Session, *Evidence, error) {
	ev, err := Request(conn, Challenge{
		Nonce:       nonce,
		SePCR:       true,
		Batch:       true,
		Handles:     handles,
		JobNonces:   jobNonces,
		OpenSession: true,
	}, opts...)
	if err != nil {
		return nil, nil, err
	}
	if ev.Grant == nil {
		return nil, nil, errors.New("attest: platform did not return a session grant")
	}
	s, err := v.NewSession(ev.Cert, ev.Grant, nonce)
	if err != nil {
		return nil, nil, err
	}
	return s, ev, nil
}
