package attest

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"minimaltcb/internal/tpm"
)

// This file implements the wire protocol between the attesting platform
// and the external verifier of §3.1. The verifier connects, sends a fresh
// challenge, and receives the evidence bundle — AIK certificate, quote,
// and measurement log — that VerifyPALQuote / VerifySePCRQuote consume.
// Everything security-relevant is inside the signed quote; the transport
// needs no secrecy, matching the paper's trust model (the adversary
// "can monitor all network traffic").

// Challenge is the verifier's request.
type Challenge struct {
	// Nonce must be fresh per request; the verifier rejects replays.
	Nonce []byte
	// SePCR selects a secure-execution-PCR quote instead of a dynamic
	// PCR quote (recommended-hardware platforms).
	SePCR bool
	// Handle is the sePCR to quote when SePCR is set.
	Handle int
}

// Evidence is the platform's response.
type Evidence struct {
	Cert  *AIKCert
	Quote *tpm.Quote
	Log   Log
}

// Responder produces evidence for a challenge; the platform side supplies
// it (typically wrapping TPM quote generation and its event log).
type Responder func(ch Challenge) (*Evidence, error)

// ServeOne answers exactly one challenge on conn. It is the unit Serve
// loops over and what tests drive directly over a net.Pipe.
func ServeOne(conn net.Conn, respond Responder) error {
	defer conn.Close()
	var ch Challenge
	dec := gob.NewDecoder(conn)
	if err := dec.Decode(&ch); err != nil {
		return fmt.Errorf("attest: decoding challenge: %w", err)
	}
	if len(ch.Nonce) == 0 || len(ch.Nonce) > 256 {
		return errors.New("attest: refusing challenge with absent or oversized nonce")
	}
	ev, err := respond(ch)
	if err != nil {
		// Encode an empty evidence so the peer gets a definite answer.
		_ = gob.NewEncoder(conn).Encode(&Evidence{})
		return err
	}
	return gob.NewEncoder(conn).Encode(ev)
}

// Serve accepts connections until the listener closes, answering one
// challenge per connection.
func Serve(l net.Listener, respond Responder) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		// Connections are handled serially: the simulated platform is
		// single-threaded by design (see internal/sim).
		_ = ServeOne(conn, respond)
	}
}

// Request performs the verifier side of one exchange on conn.
func Request(conn net.Conn, ch Challenge) (*Evidence, error) {
	defer conn.Close()
	// Wall-clock (not virtual) deadline: the peer is a real socket.
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := gob.NewEncoder(conn).Encode(&ch); err != nil {
		return nil, fmt.Errorf("attest: sending challenge: %w", err)
	}
	var ev Evidence
	if err := gob.NewDecoder(conn).Decode(&ev); err != nil {
		return nil, fmt.Errorf("attest: decoding evidence: %w", err)
	}
	if ev.Quote == nil || ev.Cert == nil {
		return nil, errors.New("attest: platform returned no evidence")
	}
	return &ev, nil
}

// ChallengeAndVerify runs the complete verifier flow over conn: send a
// challenge, receive evidence, and validate it against this verifier's
// trust anchors. It returns the approved PAL's name.
func (v *Verifier) ChallengeAndVerify(conn net.Conn, nonce []byte, sePCR bool, handle int) (string, error) {
	ev, err := Request(conn, Challenge{Nonce: nonce, SePCR: sePCR, Handle: handle})
	if err != nil {
		return "", err
	}
	if sePCR {
		return v.VerifySePCRQuote(ev.Cert, ev.Quote, ev.Log, nonce)
	}
	return v.VerifyPALQuote(ev.Cert, ev.Quote, ev.Log, nonce)
}
