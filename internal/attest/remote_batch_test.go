package attest

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"minimaltcb/internal/tpm"
)

// batchPlatform is the platform side of a batched remote exchange: a chip
// with registers parked in the Quote state and a Responder answering batch
// challenges from them.
type batchPlatform struct {
	chip  *tpm.TPM
	cert  *AIKCert
	logs  map[int]Log // per-handle event logs
	calls atomic.Int64
}

func newBatchPlatform(t *testing.T, v *Verifier, ca *PrivacyCA, n int) *batchPlatform {
	t.Helper()
	chip := newTPM(t, 6, n)
	cert, err := ca.Certify("ws", chip.AIKPublic())
	if err != nil {
		t.Fatal(err)
	}
	p := &batchPlatform{chip: chip, cert: cert, logs: map[int]Log{}}
	for i := 0; i < n; i++ {
		image := []byte(fmt.Sprintf("pal-%d", i))
		meas := tpm.Measure(image)
		v.Approve(fmt.Sprintf("pal-%d", i), meas)
		h, err := chip.AllocateSePCR(i, meas)
		if err != nil {
			t.Fatal(err)
		}
		if err := chip.ReleaseSePCR(h, i); err != nil {
			t.Fatal(err)
		}
		p.logs[h] = Log{{PCR: -1, Description: "PAL", Measurement: meas}}
	}
	return p
}

// respond answers batch challenges; one-shot challenges are refused so a
// downgrade cannot slip through silently in these tests.
func (p *batchPlatform) respond(ch Challenge) (*Evidence, error) {
	p.calls.Add(1)
	if !ch.Batch {
		return nil, errors.New("batch-only platform")
	}
	ev := &Evidence{Cert: p.cert}
	var sessionID uint64
	if ch.OpenSession {
		grant, err := p.chip.OpenQuoteSession(ch.Nonce)
		if err != nil {
			return nil, err
		}
		ev.Grant = grant
		sessionID = grant.ID
	}
	reqs := make([]tpm.BatchRequest, len(ch.Handles))
	for i, h := range ch.Handles {
		reqs[i] = tpm.BatchRequest{Handle: h, Nonce: ch.JobNonces[i]}
	}
	q, err := p.chip.QuoteSePCRBatch(reqs, ch.Nonce, sessionID)
	if err != nil {
		return nil, err
	}
	ev.Batch = q
	ev.Logs = make([]Log, len(ch.Handles))
	for i, h := range ch.Handles {
		ev.Logs[i] = p.logs[h]
	}
	return ev, nil
}

// exchange drives ServeOne and a verifier-side call over a pipe.
func exchange(t *testing.T, respond Responder, client func(conn net.Conn)) {
	t.Helper()
	server, clientConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeOne(server, respond, WithTimeout(5*time.Second))
	}()
	client(clientConn)
	<-done
}

func jobNonces(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-job-%d", prefix, i))
	}
	return out
}

func TestChallengeAndVerifyBatchRemote(t *testing.T) {
	ca := newCA(t)
	v := NewVerifier(ca.Public())
	p := newBatchPlatform(t, v, ca, 3)
	handles := []int{0, 1, 2}
	nonces := jobNonces("stateless", 3)
	exchange(t, p.respond, func(conn net.Conn) {
		names, err := v.ChallengeAndVerifyBatch(conn, nil, []byte("batch-1"), handles, nonces, WithTimeout(5*time.Second))
		if err != nil {
			t.Errorf("batched exchange: %v", err)
			return
		}
		if len(names) != 3 || names[2] != "pal-2" {
			t.Errorf("names = %v", names)
		}
	})
}

func TestRemoteSessionResumption(t *testing.T) {
	ca := newCA(t)
	v := NewVerifier(ca.Public())
	p := newBatchPlatform(t, v, ca, 4)

	// First exchange opens the session and carries a batch of two.
	var sess *Session
	exchange(t, p.respond, func(conn net.Conn) {
		s, ev, err := v.OpenRemoteSession(conn, []byte("open-1"), []int{0, 1}, jobNonces("a", 2), WithTimeout(5*time.Second))
		if err != nil {
			t.Errorf("open session: %v", err)
			return
		}
		sess = s
		for i, n := range jobNonces("a", 2) {
			if _, err := s.VerifyBatchedQuote(ev.Batch, i, ev.Logs[i], n); err != nil {
				t.Errorf("first batch entry %d: %v", i, err)
			}
		}
	})
	if sess == nil {
		t.Fatal("no session")
	}

	// Second exchange rides the session: HMAC only, zero new RSA.
	_, missesBefore := v.MemoStats()
	handles := []int{2, 3}
	nonces := jobNonces("b", 2)
	exchange(t, func(ch Challenge) (*Evidence, error) {
		// The platform keeps MACing under the open session.
		reqs := []tpm.BatchRequest{{Handle: 2, Nonce: ch.JobNonces[0]}, {Handle: 3, Nonce: ch.JobNonces[1]}}
		q, err := p.chip.QuoteSePCRBatch(reqs, ch.Nonce, 1)
		if err != nil {
			return nil, err
		}
		return &Evidence{Cert: p.cert, Batch: q, Logs: []Log{p.logs[2], p.logs[3]}}, nil
	}, func(conn net.Conn) {
		names, err := v.ChallengeAndVerifyBatch(conn, sess, []byte("batch-2"), handles, nonces, WithTimeout(5*time.Second))
		if err != nil {
			t.Errorf("sessionful exchange: %v", err)
			return
		}
		if len(names) != 2 || names[0] != "pal-2" {
			t.Errorf("names = %v", names)
		}
	})
	if _, misses := v.MemoStats(); misses != missesBefore {
		t.Fatalf("sessionful exchange performed %d RSA verifications, want 0", misses-missesBefore)
	}
}

// TestBatchFailureMidFlightConsumesNothing is the batch-path mirror of the
// PR5 one-shot fix: when batch assembly fails on the platform (a register
// not in Quote state, an injected TPM fault), no register is consumed and
// no verifier nonce is burned — the retry with the SAME nonces succeeds.
func TestBatchFailureMidFlightConsumesNothing(t *testing.T) {
	ca := newCA(t)
	v := NewVerifier(ca.Public())
	p := newBatchPlatform(t, v, ca, 2)
	handles := []int{0, 1}
	nonces := jobNonces("retry", 2)

	// First attempt: the batch includes a handle whose register is Free —
	// assembly fails mid-flight, after handle 0 was already "collected".
	exchange(t, p.respond, func(conn net.Conn) {
		_, err := v.ChallengeAndVerifyBatch(conn, nil, []byte("bn-1"), []int{0, 5}, [][]byte{nonces[0], []byte("x")}, WithTimeout(5*time.Second))
		if err == nil {
			t.Error("batch over an invalid handle verified")
		}
	})
	// Handle 0 must still be attestable…
	if st, _ := p.chip.SePCRStateOf(0); st != tpm.SePCRQuote {
		t.Fatalf("sePCR 0 = %v after failed batch, want Quote", st)
	}
	// …and nonces[0] unburned: the retry reuses it and verifies.
	exchange(t, p.respond, func(conn net.Conn) {
		names, err := v.ChallengeAndVerifyBatch(conn, nil, []byte("bn-2"), handles, nonces, WithTimeout(5*time.Second))
		if err != nil {
			t.Errorf("retry failed: %v", err)
			return
		}
		if len(names) != 2 {
			t.Errorf("names = %v", names)
		}
	})
}

// TestMalformedBatchChallengeRejectedBeforePlatform: a batch challenge
// with mismatched handles/nonces never reaches the responder — the
// platform cannot be made to consume registers for a request whose
// evidence could not be verified anyway.
func TestMalformedBatchChallengeRejectedBeforePlatform(t *testing.T) {
	ca := newCA(t)
	v := NewVerifier(ca.Public())
	p := newBatchPlatform(t, v, ca, 2)
	cases := []Challenge{
		{Nonce: []byte("n"), Batch: true}, // no handles
		{Nonce: []byte("n"), Batch: true, Handles: []int{0, 1}, JobNonces: [][]byte{[]byte("a")}}, // length mismatch
		{Nonce: []byte("n"), Batch: true, Handles: []int{0}, JobNonces: [][]byte{nil}},            // empty job nonce
	}
	for i, ch := range cases {
		server, client := net.Pipe()
		errc := make(chan error, 1)
		go func() { errc <- ServeOne(server, p.respond, WithTimeout(2*time.Second)) }()
		_, reqErr := Request(client, ch, WithTimeout(2*time.Second))
		if reqErr == nil {
			t.Errorf("case %d: malformed challenge produced evidence", i)
		}
		if err := <-errc; err == nil || !strings.Contains(err.Error(), "refusing") && !strings.Contains(err.Error(), "batch challenge") {
			t.Errorf("case %d: server err = %v", i, err)
		}
	}
	if p.calls.Load() != 0 {
		t.Fatalf("responder consulted %d times for malformed challenges", p.calls.Load())
	}
}
