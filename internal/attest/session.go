package attest

import (
	"crypto/hmac"
	"crypto/rsa"
	"errors"
	"fmt"
	"sync"

	"minimaltcb/internal/tpm"
)

// This file is the verifier's side of batched and sessionful attestation
// (tpm/batch.go). Two layers:
//
//   - VerifyBatchedQuote on the Verifier: the stateless path. Full AIK
//     cert chain plus the batch's one RSA signature, then the caller's
//     inclusion proof. Every batch pays one RSA verify, amortized over its
//     N entries.
//
//   - Session: the resumption path. NewSession verifies the cert chain
//     and the TPM's signed session grant ONCE, then holds the grant's
//     HMAC key; VerifyBatchedQuote on the session authenticates each
//     subsequent batch by HMAC alone — no RSA at all on the steady-state
//     path. The session key's authenticity rests entirely on the grant
//     signature checked at open time, which is why a session must never
//     accept a batch whose MAC fails (ErrStaleSession): a stale or
//     cross-session MAC is indistinguishable from a forgery.

// Batch verification errors.
var (
	ErrBadProof     = errors.New("attest: batch inclusion proof invalid")
	ErrStaleSession = errors.New("attest: session MAC invalid or stale")
	ErrWrongSession = errors.New("attest: batch bound to a different session")
	ErrBadGrant     = errors.New("attest: session grant signature invalid")
)

// verifyBatchEntry validates one job's slice of a batch quote against the
// (already authenticated) root: per-job nonce binding, inclusion proof,
// log replay, SKILL marker, and PAL approval. It does NOT consume the
// nonce; callers do that last.
func (v *Verifier) verifyBatchEntry(q *tpm.BatchQuote, entry int, log Log, nonce []byte) (string, error) {
	if entry < 0 || entry >= len(q.Entries) {
		return "", fmt.Errorf("attest: batch entry %d out of range (batch of %d)", entry, len(q.Entries))
	}
	e := &q.Entries[entry]
	if string(e.Nonce) != string(nonce) {
		return "", ErrWrongNonce
	}
	leaf := tpm.BatchLeaf(e.Handle, e.Composite, e.Nonce)
	if !tpm.VerifyBatchInclusion(leaf, e.Index, q.Count, e.Proof, q.Root) {
		return "", ErrBadProof
	}
	return v.approveSePCRLog(log, e.Composite)
}

// approveSePCRLog replays a sePCR event log against a quoted composite and
// returns the approved PAL name — the common trailing half of
// VerifySePCRQuote and the batched paths.
func (v *Verifier) approveSePCRLog(log Log, composite tpm.Digest) (string, error) {
	var value tpm.Digest
	for _, e := range log {
		value = tpm.ExtendDigest(value, e.Measurement)
	}
	if value != composite {
		return "", ErrLogMismatch
	}
	// A killed PAL's register contains the SKILL marker; its chain will
	// not match an approved-PAL-only log, but defend explicitly anyway.
	for _, e := range log {
		if e.Measurement == tpm.SKillMarker {
			return "", fmt.Errorf("%w: PAL was killed (SKILL marker in log)", ErrUnknownPAL)
		}
	}
	// The root of a sePCR chain is the PAL measurement SLAUNCH extended
	// at allocation; it must be approved code.
	if len(log) == 0 {
		return "", ErrUnknownPAL
	}
	name, ok := v.lookup(log[0].Measurement)
	if !ok {
		return "", ErrUnknownPAL
	}
	return name, nil
}

// VerifyBatchedQuote validates one entry of a batch quote without session
// state: AIK certificate chain, the batch's single RSA signature over the
// Merkle root, the entry's inclusion proof, and the sePCR log chain. The
// per-job nonce is consumed last, so a failed verification (including a
// batch that dies mid-assembly) never burns it.
func (v *Verifier) VerifyBatchedQuote(cert *AIKCert, q *tpm.BatchQuote, entry int, log Log, nonce []byte) (string, error) {
	if q == nil {
		return "", errors.New("attest: nil batch quote")
	}
	if err := v.verifyCertMemo(cert); err != nil {
		return "", err
	}
	if err := v.verifyBatchSigMemo(cert.AIK, q); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	name, err := v.verifyBatchEntry(q, entry, log, nonce)
	if err != nil {
		return "", err
	}
	if err := v.consumeNonce(nonce); err != nil {
		return "", err
	}
	return name, nil
}

// verifyBatchSigMemo is tpm.VerifyBatchQuote's signature check with the
// verifier's success memo: the root signature is shared by every entry of
// the batch, so N jobs verifying the same batch pay one RSA verify.
// Structural checks (count/entries agreement) are repeated per call; only
// the signature is memoized.
func (v *Verifier) verifyBatchSigMemo(aik *rsa.PublicKey, q *tpm.BatchQuote) error {
	if q.Count == 0 || len(q.Entries) == 0 {
		return tpm.ErrEmptyBatch
	}
	if len(q.Entries) != q.Count {
		return fmt.Errorf("attest: batch count %d but %d entries", q.Count, len(q.Entries))
	}
	signed := tpm.BatchSignedDigest(q.Root, q.Count, q.Nonce)
	key := string(aik.N.Bytes()) + "|batch|" + string(signed[:]) + "|" + string(q.Signature)
	v.mu.Lock()
	if v.verifiedSigs[key] {
		v.memoHits++
		v.mu.Unlock()
		return nil
	}
	v.memoMisses++
	v.mu.Unlock()
	if err := tpm.VerifyBatchSignature(aik, q); err != nil {
		return err
	}
	v.mu.Lock()
	if len(v.verifiedSigs) >= nonceWindow {
		v.verifiedSigs = map[string]bool{}
	}
	v.verifiedSigs[key] = true
	v.mu.Unlock()
	return nil
}

// Session is a resumed verification channel to one platform: the AIK cert
// chain and the TPM's session grant were verified once at open time, and
// every batch since is authenticated by HMAC under the grant key. A
// Session is safe for concurrent use.
type Session struct {
	v    *Verifier
	cert *AIKCert
	id   uint64
	key  tpm.Digest

	mu sync.Mutex
	// seen memoizes HMAC-authenticated batch digests (bounded like the
	// verifier's memo tables); batches counts distinct batches admitted,
	// for amortization accounting.
	seen    map[tpm.Digest]bool
	batches uint64
}

// NewSession opens a verification session from a TPM session grant: it
// verifies the AIK certificate chain (the expensive once-per-session
// work), checks the grant signature binding {ID, key} to the AIK and to
// the caller's nonce, and consumes the nonce — last, so a bad grant
// doesn't burn it. The returned session trusts grant.Key for HMAC
// authentication of batches.
func (v *Verifier) NewSession(cert *AIKCert, grant *tpm.QuoteSession, nonce []byte) (*Session, error) {
	if grant == nil {
		return nil, errors.New("attest: nil session grant")
	}
	if err := v.verifyCertMemo(cert); err != nil {
		return nil, err
	}
	if string(grant.Nonce) != string(nonce) {
		return nil, ErrWrongNonce
	}
	if err := tpm.VerifySessionGrant(cert.AIK, grant); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadGrant, err)
	}
	if err := v.consumeNonce(nonce); err != nil {
		return nil, err
	}
	return &Session{
		v:    v,
		cert: cert,
		id:   grant.ID,
		key:  grant.Key,
		seen: map[tpm.Digest]bool{},
	}, nil
}

// PlatformID names the platform the session is bound to.
func (s *Session) PlatformID() string { return s.cert.PlatformID }

// Batches reports how many distinct batches the session has authenticated.
func (s *Session) Batches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// VerifyBatchedQuote validates one entry of a batch quote over the
// session's HMAC channel: no RSA anywhere on this path. The batch must be
// bound to this session (SessionID) and carry a valid MAC under the
// session key over the batch's signed digest; then the entry verifies
// exactly as in the stateless path, with the per-job nonce consumed last.
func (s *Session) VerifyBatchedQuote(q *tpm.BatchQuote, entry int, log Log, nonce []byte) (string, error) {
	if q == nil {
		return "", errors.New("attest: nil batch quote")
	}
	if q.SessionID != s.id {
		return "", ErrWrongSession
	}
	if q.Count == 0 || len(q.Entries) == 0 {
		return "", tpm.ErrEmptyBatch
	}
	if len(q.Entries) != q.Count {
		return "", fmt.Errorf("attest: batch count %d but %d entries", q.Count, len(q.Entries))
	}
	signed := tpm.BatchSignedDigest(q.Root, q.Count, q.Nonce)
	s.mu.Lock()
	known := s.seen[signed]
	s.mu.Unlock()
	if !known {
		if !hmac.Equal(q.SessionMAC, tpm.SessionMAC(s.key, signed)) {
			return "", ErrStaleSession
		}
		s.mu.Lock()
		if !s.seen[signed] {
			if len(s.seen) >= nonceWindow {
				s.seen = map[tpm.Digest]bool{}
			}
			s.seen[signed] = true
			s.batches++
		}
		s.mu.Unlock()
	}
	name, err := s.v.verifyBatchEntry(q, entry, log, nonce)
	if err != nil {
		return "", err
	}
	if err := s.v.consumeNonce(nonce); err != nil {
		return "", err
	}
	return name, nil
}
