package merkle

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"
)

func leaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = LeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return out
}

func TestEmptyRootIsHashOfEmptyString(t *testing.T) {
	if got, want := Root(nil), Hash(sha256.Sum256(nil)); got != want {
		t.Fatalf("empty root = %v, want %v", got, want)
	}
}

func TestSingleLeafIsRoot(t *testing.T) {
	l := leaves(1)
	if Root(l) != l[0] {
		t.Fatalf("single-leaf root must be the leaf")
	}
	if p := InclusionProof(l, 0); p != nil {
		t.Fatalf("single-leaf proof must be nil, got %v", p)
	}
	if !VerifyInclusion(l[0], 0, 1, nil, l[0]) {
		t.Fatalf("single-leaf inclusion must verify")
	}
}

func TestInclusionAllIndicesAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		l := leaves(n)
		root := Root(l)
		for i := 0; i < n; i++ {
			p := InclusionProof(l, i)
			if !VerifyInclusion(l[i], i, n, p, root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			// Wrong index must not verify (except trivially identical paths
			// cannot exist: the leaf hash differs).
			if j := (i + 1) % n; n > 1 && VerifyInclusion(l[j], i, n, p, root) {
				t.Fatalf("n=%d i=%d: proof accepted for wrong leaf", n, i)
			}
			// Bit-flip one proof node.
			if len(p) > 0 {
				p[0][0] ^= 0xff
				if VerifyInclusion(l[i], i, n, p, root) {
					t.Fatalf("n=%d i=%d: tampered proof accepted", n, i)
				}
			}
		}
	}
}

func TestConsistencyAllPrefixes(t *testing.T) {
	const n = 25
	l := leaves(n)
	full := Root(l)
	for m := 1; m < n; m++ {
		p := ConsistencyProof(l, m)
		if !VerifyConsistency(m, n, Root(l[:m]), full, p) {
			t.Fatalf("m=%d: valid consistency proof rejected", m)
		}
		// A different old root must not verify.
		var bogus Hash
		bogus[0] = 0xaa
		if VerifyConsistency(m, n, bogus, full, p) {
			t.Fatalf("m=%d: consistency accepted for wrong old root", m)
		}
	}
	if !VerifyConsistency(0, n, Hash{}, full, nil) {
		t.Fatalf("empty tree must be a prefix of everything")
	}
	if !VerifyConsistency(n, n, full, full, nil) {
		t.Fatalf("identical trees must be consistent with empty proof")
	}
}

func TestHashJSONRoundTrip(t *testing.T) {
	h := LeafHash([]byte("round-trip"))
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Hash
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: %v != %v", got, h)
	}
	if err := json.Unmarshal([]byte(`"zz"`), &got); err == nil {
		t.Fatalf("bad hex must error")
	}
}
