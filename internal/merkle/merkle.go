// Package merkle implements the RFC 6962 / RFC 9162 Merkle tree used by
// both the attestation audit log (internal/audit) and batched sePCR quotes
// (internal/tpm): leaf and interior hashing with domain-separating prefixes,
// the Merkle tree head over an arbitrary (non-power-of-two) number of
// leaves, and inclusion / consistency proof generation with their
// standalone verification algorithms. The verifiers take nothing but
// hashes, sizes and indices, so callers can replay proofs offline without
// the tree (or the node that built it) present.
//
// The package sits below internal/tpm and internal/audit in the import
// graph and must stay dependency-free so either side can use it.
package merkle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Hash is a SHA-256 tree node.
type Hash [32]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// MarshalJSON encodes the hash as a hex string.
func (h Hash) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON decodes a hex string.
func (h *Hash) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("merkle: hash must be a JSON string")
	}
	raw, err := hex.DecodeString(string(b[1 : len(b)-1]))
	if err != nil || len(raw) != len(h) {
		return fmt.Errorf("merkle: bad hash %q", b)
	}
	copy(h[:], raw)
	return nil
}

// Domain-separation prefixes from RFC 6962 §2.1: a leaf hash can never
// collide with an interior node hash.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one canonical record into its tree leaf.
func LeafHash(canonical []byte) Hash {
	var buf [1]byte
	buf[0] = leafPrefix
	h := sha256.New()
	h.Write(buf[:])
	h.Write(canonical)
	var out Hash
	h.Sum(out[:0])
	return out
}

// NodeHash combines two child hashes into their parent. Exported so tests
// (and documentation examples) can state expected tree shapes literally.
func NodeHash(l, r Hash) Hash { return nodeHash(l, r) }

// nodeHash combines two child hashes into their parent.
func nodeHash(l, r Hash) Hash {
	var buf [1 + 2*len(l)]byte
	buf[0] = nodePrefix
	copy(buf[1:], l[:])
	copy(buf[1+len(l):], r[:])
	return sha256.Sum256(buf[:])
}

// splitPoint returns the largest power of two strictly less than n (n ≥ 2):
// the left-subtree width in RFC 6962's MTH recursion.
func splitPoint(n int) int {
	k := 1
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// Root computes the RFC 6962 tree head over the given leaf hashes.
// The empty tree hashes the empty string.
func Root(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return sha256.Sum256(nil)
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(Root(leaves[:k]), Root(leaves[k:]))
}

// InclusionProof builds the audit path for leaf index i in a tree over
// leaves (RFC 6962 §2.1.1). Nil for a single-leaf tree, where the leaf is
// the root.
func InclusionProof(leaves []Hash, i int) []Hash {
	n := len(leaves)
	if i < 0 || i >= n || n <= 1 {
		return nil
	}
	k := splitPoint(n)
	if i < k {
		return append(InclusionProof(leaves[:k], i), Root(leaves[k:]))
	}
	return append(InclusionProof(leaves[k:], i-k), Root(leaves[:k]))
}

// VerifyInclusion checks an audit path against a tree head, per the
// RFC 9162 §2.1.3.2 algorithm. It needs only the leaf hash, its index, the
// tree size the head covers, the proof, and the head's root.
func VerifyInclusion(leaf Hash, index, size int, proof []Hash, root Hash) bool {
	if index < 0 || size <= 0 || index >= size {
		return false
	}
	fn, sn := uint64(index), uint64(size-1)
	r := leaf
	for _, p := range proof {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			r = nodeHash(p, r)
			if fn&1 == 0 {
				for fn&1 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && r == root
}

// ConsistencyProof builds the proof that the tree over leaves[:m] is a
// prefix of the tree over all of leaves (RFC 6962 §2.1.2). m must satisfy
// 0 < m < len(leaves); other values return nil (m == n needs no proof).
func ConsistencyProof(leaves []Hash, m int) []Hash {
	n := len(leaves)
	if m <= 0 || m >= n {
		return nil
	}
	return subProof(leaves, m, true)
}

// subProof is RFC 6962's SUBPROOF: complete marks whether the m-leaf
// subtree is the original old tree (whose root the verifier already holds).
func subProof(d []Hash, m int, complete bool) []Hash {
	n := len(d)
	if m == n {
		if complete {
			return nil
		}
		return []Hash{Root(d)}
	}
	k := splitPoint(n)
	if m <= k {
		return append(subProof(d[:k], m, complete), Root(d[k:]))
	}
	return append(subProof(d[k:], m-k, false), Root(d[:k]))
}

// VerifyConsistency checks that the tree of size second with head
// secondRoot is an append-only extension of the tree of size first with
// head firstRoot, per the RFC 9162 §2.1.4.2 algorithm.
func VerifyConsistency(first, second int, firstRoot, secondRoot Hash, proof []Hash) bool {
	switch {
	case first < 0 || second < first:
		return false
	case first == second:
		return firstRoot == secondRoot && len(proof) == 0
	case first == 0:
		// The empty tree is a prefix of everything; nothing to prove.
		return len(proof) == 0
	}
	// If first is an exact power of two, the old root itself is the first
	// proof node.
	path := proof
	if first&(first-1) == 0 {
		path = append([]Hash{firstRoot}, proof...)
	}
	if len(path) == 0 {
		return false
	}
	fn, sn := uint64(first-1), uint64(second-1)
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			if fn&1 == 0 {
				for fn&1 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && fr == firstRoot && sr == secondRoot
}
