package sksm

import (
	"bytes"
	"testing"

	"minimaltcb/internal/obs"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/tpm"
)

// sumPALSource loops enough to exercise the decode cache, then outputs the
// accumulated sum and exits.
const sumPALSource = `
	ldi	r1, sum
	ldi	r0, 0
	ldi	r2, 10
	ldi	r3, 0
loop:
	addi	r3, 1
	add	r0, r3
	cmp	r3, r2
	jnz	loop
	store	r0, [r1]
	ldi	r0, sum
	ldi	r1, 4
	svc	6		; output the sum
	ldi	r0, 0
	svc	0
sum:	.word 0
stack:	.space 64
`

func attrValue(r obs.Record, key string) (string, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// TestSLAUNCHMeasureCacheAttr launches the same image twice and checks the
// trace records the measurement-cache outcome: miss on the first launch of
// a fresh image, hit on the relaunch.
func TestSLAUNCHMeasureCacheAttr(t *testing.T) {
	mg := newManager(t, 2)
	tracer := obs.NewTracer(1024)
	mg.Trace = obs.NewScope(tracer, mg.Kernel.Machine.Clock)
	core := mg.Kernel.Machine.CPUs[1]

	// A source string unique to this test, so no other test's launch has
	// already warmed the process-wide measurement memo for these bytes.
	im := pal.MustBuild("ldi r0, 30911\nldi r0, 0\nsvc 0")
	for i := 0; i < 2; i++ {
		s, err := mg.NewSECB(im, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := mg.RunToCompletion(core, s); err != nil {
			t.Fatal(err)
		}
		if err := mg.Kernel.Machine.TPM().FreeSePCR(s.SePCRHandle); err != nil {
			t.Fatal(err)
		}
		if err := mg.Release(s); err != nil {
			t.Fatal(err)
		}
	}

	recs, _ := tracer.Snapshot()
	var outcomes []string
	for _, r := range recs {
		if r.Name != "SLAUNCH" {
			continue
		}
		if v, ok := attrValue(r, "measure_cache"); ok {
			outcomes = append(outcomes, v)
		}
	}
	if len(outcomes) != 2 {
		t.Fatalf("got %d SLAUNCH spans with measure_cache, want 2 (records: %+v)", len(outcomes), recs)
	}
	if outcomes[0] != "miss" {
		t.Errorf("first launch measure_cache = %q, want miss", outcomes[0])
	}
	if outcomes[1] != "hit" {
		t.Errorf("relaunch measure_cache = %q, want hit", outcomes[1])
	}
}

// TestLaunchStateIndependentOfDecodeCache runs a looping PAL through the
// full launch pipeline with the decode cache on and off: the measurement,
// output, and exit status must be identical — the cache is a simulator
// optimization with no architectural footprint.
func TestLaunchStateIndependentOfDecodeCache(t *testing.T) {
	run := func(cacheOn bool) (tpm.Digest, []byte, uint32) {
		t.Helper()
		mg := newManager(t, 1)
		core := mg.Kernel.Machine.CPUs[1]
		core.SetDecodeCache(cacheOn)
		s, err := mg.NewSECB(pal.MustBuild(sumPALSource), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := mg.RunToCompletion(core, s); err != nil {
			t.Fatal(err)
		}
		return s.Measurement, s.Output, s.ExitStatus
	}
	mOn, outOn, stOn := run(true)
	mOff, outOff, stOff := run(false)
	if mOn != mOff {
		t.Errorf("measurements diverge: cached %x, slow %x", mOn, mOff)
	}
	if !bytes.Equal(outOn, outOff) {
		t.Errorf("outputs diverge: cached %v, slow %v", outOn, outOff)
	}
	if stOn != stOff {
		t.Errorf("exit status diverges: cached %d, slow %d", stOn, stOff)
	}
	if len(outOn) != 4 || outOn[0] != 55 { // 1+2+…+10
		t.Errorf("sum PAL output %v, want [55 0 0 0]", outOn)
	}
}
