package sksm

import (
	"encoding/hex"

	"minimaltcb/internal/mem"
	"minimaltcb/internal/obs/prof"
)

// crashBundle assembles the flight-recorder snapshot for a faulted or
// killed SECB. It runs after the fault path's Suspend — the architectural
// state in s.CPUState is what the hardware saved at the moment of the
// fault — and, on the skill path, before the pages are zeroed, so the
// memory-ownership map still shows the PAL's seclusion. Must be called
// under the machine's serialization, like everything else here.
func (mg *Manager) crashBundle(s *SECB, reason string, ferr error) *prof.CrashBundle {
	m := mg.Kernel.Machine
	b := &prof.CrashBundle{
		VirtNs:  m.Clock.Now().Nanoseconds(),
		Reason:  reason,
		Tenant:  mg.Job.Tenant,
		Trace:   mg.Job.Trace,
		Machine: mg.Job.Machine,
		CPU:     s.OwnerCPU,
		Image:   hex.EncodeToString(s.Measurement[:]),
		Slices:  s.Slices,
		Resumes: s.Resumes,
		SePCR:   s.SePCRHandle,
		Regs:    s.CPUState,
		Region: prof.RegionInfo{
			Base:     s.Region.Base,
			Size:     s.Region.Size,
			Entry:    s.Entry,
			SECBBase: s.SECBRegion.Base,
		},
		HotPCs: mg.Prof.HotPCs(s.Measurement, 8),
	}
	if ferr != nil {
		b.Error = ferr.Error()
	}

	t := m.TPM()
	for h := 0; h < t.NumSePCRs(); h++ {
		st, err := t.SePCRStateOf(h)
		if err != nil {
			break
		}
		b.SePCRBank = append(b.SePCRBank, st.String())
	}

	memory := m.Chipset.Memory()
	for p := 0; p < memory.NumPages(); p++ {
		st, err := memory.State(p)
		if err != nil {
			break
		}
		switch {
		case st == mem.AccessAll:
			b.Memory.PagesAll++
		case st == mem.AccessNone:
			b.Memory.PagesNone++
		default:
			b.Memory.PagesOwned++
		}
	}
	full := s.fullRegion()
	for p := mem.PageOf(full.Base); p <= mem.PageOf(full.Base+uint32(full.Size)-1); p++ {
		st, err := memory.State(p)
		if err != nil {
			break
		}
		b.Memory.RegionPages = append(b.Memory.RegionPages, prof.PageInfo{
			Page:    p,
			State:   st.String(),
			Version: memory.PageVersion(p),
		})
	}
	return b
}
