package sksm

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"minimaltcb/internal/mem"
	"minimaltcb/internal/pal"
	"minimaltcb/internal/sim"
	"minimaltcb/internal/tpm"
)

// System-level property: under any random interleaving of slice
// scheduling, SKILLs, and core choices, the platform invariants hold after
// every step:
//
//  1. no physical page is accessible to two different CPUs (unless ALL);
//  2. a suspended or done PAL's pages are never CPU-accessible, and an
//     executing PAL's pages belong exactly to its owner;
//  3. sePCR states track SECB states (Execute/Suspend -> Exclusive,
//     Done -> Quote or Free);
//  4. no pages leak: after driving every PAL to Done and releasing, the
//     allocator is back to its starting level.
func TestRandomScheduleInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		mg := newManager(t, 4)
		kern := mg.Kernel
		freeBefore := kern.Alloc.FreePages()

		// A mix of PAL shapes: yielding counters, spinners (preempted),
		// and one crasher.
		var secbs []*SECB
		for i := 0; i < 4; i++ {
			var src string
			switch i % 3 {
			case 0:
				src = counterPALSource
			case 1:
				src = "spin: jmp spin"
			default:
				src = "svc 1\nldi r0, 1\nldi r1, 0\ndivu r0, r1"
			}
			s, err := mg.NewSECB(pal.MustBuild(src), 0, 5*time.Microsecond)
			if err != nil {
				t.Log(err)
				return false
			}
			secbs = append(secbs, s)
		}

		check := func() bool {
			m := kern.Machine.Chipset.Memory()
			for _, s := range secbs {
				for _, p := range s.fullRegion().Pages() {
					st, _ := m.State(p)
					switch s.State {
					case StateExecute:
						if st != mem.PageState(s.OwnerCPU) {
							t.Logf("executing PAL page %d state %v owner %d", p, st, s.OwnerCPU)
							return false
						}
					case StateSuspend:
						if st != mem.AccessNone {
							t.Logf("suspended PAL page %d state %v", p, st)
							return false
						}
					case StateDone:
						if st != mem.AccessAll {
							t.Logf("done PAL page %d state %v", p, st)
							return false
						}
					}
				}
				if s.SePCRHandle >= 0 {
					st, _ := kern.Machine.TPM().SePCRStateOf(s.SePCRHandle)
					switch s.State {
					case StateExecute, StateSuspend:
						if st != tpm.SePCRExclusive {
							t.Logf("PAL %v sePCR state %v", s.State, st)
							return false
						}
					}
				}
			}
			return true
		}

		// Random driving loop.
		for step := 0; step < 120; step++ {
			i := rng.Intn(len(secbs))
			s := secbs[i]
			core := kern.Machine.CPUs[1+rng.Intn(3)]
			switch {
			case s.State == StateDone:
				continue
			case s.State == StateSuspend && rng.Intn(4) == 0:
				if err := mg.SKILL(s); err != nil {
					t.Log(err)
					return false
				}
			default:
				_, err := mg.RunSlice(core, s)
				if err != nil && !errors.Is(err, ErrPALFault) && !errors.Is(err, ErrLaunchFailed) {
					t.Log(err)
					return false
				}
			}
			if !check() {
				return false
			}
		}

		// Drain: kill everything still live, then release.
		for _, s := range secbs {
			for s.State != StateDone {
				if s.State == StateSuspend {
					if err := mg.SKILL(s); err != nil {
						t.Log(err)
						return false
					}
					continue
				}
				if _, err := mg.RunSlice(kern.Machine.CPUs[1], s); err != nil {
					continue // fault paths leave the PAL suspended
				}
			}
			// Free the sePCR if the PAL exited cleanly (Quote state).
			if st, _ := kern.Machine.TPM().SePCRStateOf(s.SePCRHandle); st == tpm.SePCRQuote {
				kern.Machine.TPM().FreeSePCR(s.SePCRHandle)
			}
			if err := mg.Release(s); err != nil {
				t.Log(err)
				return false
			}
		}
		if got := kern.Alloc.FreePages(); got != freeBefore {
			t.Logf("page leak: %d free, started with %d", got, freeBefore)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
